// Retail data-warehouse walk-through: the paper's running example
// (Figures 1 and 6) in full detail.
//
// The example prints each stage of the framework: the enumerated
// sub-expressions, the candidate statistics sets generated for |O⋈P⋈C| and
// H^pid_{O⋈C}, the optimal observation set, the values actually observed in
// the instrumented run, and finally the exact cardinality of every
// sub-expression — including the ones the initial plan never produces.
//
//	go run ./examples/retaildw
package main

import (
	"fmt"
	"log"

	"github.com/essential-stats/etlopt/internal/core"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

func main() {
	specs := []data.TableSpec{
		{Rel: "Orders", Card: 20000, Columns: []data.ColumnSpec{
			{Name: "oid", Serial: true},
			{Name: "pid", Domain: 400, Skew: 1.6},
			{Name: "cid", Domain: 250, Skew: 1.4},
		}},
		{Rel: "Product", Card: 600, Columns: []data.ColumnSpec{
			{Name: "pid", Domain: 400, Skew: 1.1},
			{Name: "price", Domain: 2000},
		}},
		{Rel: "Customer", Card: 300, Columns: []data.ColumnSpec{
			{Name: "cid", Domain: 250, Skew: 1.1},
			{Name: "region", Domain: 25},
		}},
	}
	db := engine.DB{}
	cat := &workflow.Catalog{}
	for i, s := range specs {
		tbl := data.Generate(s, 100+int64(i))
		db[s.Rel] = tbl
		cat.Relations = append(cat.Relations, data.CatalogEntry(tbl, s))
	}

	b := workflow.NewBuilder("retail-dw")
	o := b.Source("Orders")
	p := b.Source("Product")
	c := b.Source("Customer")
	j1 := b.Join(o, p, workflow.Attr{Rel: "Orders", Col: "pid"}, workflow.Attr{Rel: "Product", Col: "pid"})
	j2 := b.Join(j1, c, workflow.Attr{Rel: "Orders", Col: "cid"}, workflow.Attr{Rel: "Customer", Col: "cid"})
	b.Sink(j2, "warehouse")

	cy, err := core.Run(b.Graph(), cat, db, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	blk := cy.Analysis.Blocks[0]
	sp := cy.CSS.Space(0)

	fmt.Println("── 1. sub-expressions over all plans (Section 3.2.2) ──")
	for _, se := range sp.SEs {
		mark := " "
		if sp.Initial[se] {
			mark = "*" // produced by the designed plan
		}
		fmt.Printf(" %s %s\n", mark, se.Label(blk))
	}
	fmt.Println("   (* = observable in the designed plan (O⋈P)⋈C)")

	fmt.Println("\n── 2. candidate statistics sets for |O⋈P⋈C| (Section 4.3) ──")
	full := stats.NewCard(stats.BlockSE(0, sp.Full()))
	for _, cs := range cy.CSS.CSS[full.Key()] {
		fmt.Printf("  %s\n", cs.Label(blk))
	}

	fmt.Println("\n── 3. optimal statistics to observe (Section 5) ──")
	fmt.Printf("  method=%s optimal=%v memory=%d units\n", cy.Selection.Method, cy.Selection.Optimal, cy.Selection.Memory)
	for _, s := range cy.Selection.Observe {
		fmt.Printf("  observe %s\n", s.Label(blk))
	}

	fmt.Println("\n── 4. observed values after one instrumented run ──")
	fmt.Print(indent(cy.Observed.Observed.Dump(blk)))

	fmt.Println("── 5. exact cardinality of EVERY sub-expression ──")
	for _, se := range sp.SEs {
		card, err := cy.Estimator.CardOf(0, se)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if !sp.Initial[se] {
			note = "   (derived — never executed!)"
		}
		fmt.Printf("  |%s| = %d%s\n", se.Label(blk), card, note)
	}

	fmt.Println("\n── 6. cost-based optimization with exact cardinalities ──")
	fmt.Printf("  designed:  %s  cost %.0f\n", blk.Initial.Render(blk), cy.Plans.TotalInitialCost)
	fmt.Printf("  optimized: %s  cost %.0f  (%.2fx better)\n",
		cy.Plans.Plans[0].Tree.Render(blk), cy.Plans.TotalCost, cy.Improvement())

	// Sanity: the estimate for the unobservable O⋈C SE matches a real
	// execution of that ordering.
	var oIdx, cIdx int
	for i, in := range blk.Inputs {
		switch in.SourceRel {
		case "Orders":
			oIdx = i
		case "Customer":
			cIdx = i
		}
	}
	est, _ := cy.Estimator.CardOf(0, expr.NewSet(oIdx, cIdx))
	truth := bruteJoin(db["Orders"], db["Customer"],
		workflow.Attr{Rel: "Orders", Col: "cid"}, workflow.Attr{Rel: "Customer", Col: "cid"})
	fmt.Printf("\n  check: |Orders⋈Customer| derived=%d, brute force=%d\n", est, truth)
}

func bruteJoin(l, r *data.Table, la, ra workflow.Attr) int64 {
	lc, rc := l.Col(la), r.Col(ra)
	counts := map[int64]int64{}
	for _, row := range r.Rows {
		counts[row[rc]]++
	}
	var total int64
	for _, row := range l.Rows {
		total += counts[row[lc]]
	}
	return total
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		if line != "" {
			out += "  " + line + "\n"
		}
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
