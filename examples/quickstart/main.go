// Quickstart: the smallest end-to-end use of the library.
//
// A three-relation ETL workflow (the paper's Figure 1) is analyzed, the
// minimal sufficient statistics are chosen, one instrumented execution of
// the designed plan collects them, and the optimizer then costs every
// reordering exactly and picks the best.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/essential-stats/etlopt/internal/core"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/workflow"
)

func main() {
	// 1. Describe the source relations and generate skewed sample data.
	specs := []data.TableSpec{
		{Rel: "Orders", Card: 5000, Columns: []data.ColumnSpec{
			{Name: "oid", Serial: true},
			{Name: "pid", Domain: 100, Skew: 1.5},
			{Name: "cid", Domain: 60, Skew: 1.3},
		}},
		{Rel: "Product", Card: 120, Columns: []data.ColumnSpec{
			{Name: "pid", Domain: 100, Skew: 1.1},
			{Name: "price", Domain: 900},
		}},
		{Rel: "Customer", Card: 70, Columns: []data.ColumnSpec{
			{Name: "cid", Domain: 60, Skew: 1.1},
			{Name: "region", Domain: 12},
		}},
	}
	db := engine.DB{}
	cat := &workflow.Catalog{}
	for i, s := range specs {
		tbl := data.Generate(s, int64(i)+1)
		db[s.Rel] = tbl
		cat.Relations = append(cat.Relations, data.CatalogEntry(tbl, s))
	}

	// 2. Design the workflow the way an ETL developer would:
	//    (Orders ⋈ Product) ⋈ Customer → warehouse.
	b := workflow.NewBuilder("retail")
	o := b.Source("Orders")
	p := b.Source("Product")
	c := b.Source("Customer")
	j1 := b.Join(o, p, workflow.Attr{Rel: "Orders", Col: "pid"}, workflow.Attr{Rel: "Product", Col: "pid"})
	j2 := b.Join(j1, c, workflow.Attr{Rel: "Orders", Col: "cid"}, workflow.Attr{Rel: "Customer", Col: "cid"})
	b.Sink(j2, "warehouse")

	// 3. One optimization cycle: analyze → choose statistics → run the
	//    designed plan instrumented → optimize with exact cardinalities.
	cy, err := core.Run(b.Graph(), cat, db, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	blk := cy.Analysis.Blocks[0]
	fmt.Printf("sub-expressions enumerated: %d\n", cy.CSS.NumSEs())
	fmt.Printf("candidate statistics sets:  %d\n", cy.CSS.NumCSS())
	fmt.Printf("statistics chosen (%s, memory %d units):\n", cy.Selection.Method, cy.Selection.Memory)
	for _, s := range cy.Selection.Observe {
		fmt.Printf("  observe %s\n", s.Label(blk))
	}
	fmt.Printf("\ndesigned plan:  %s (cost %.0f)\n", blk.Initial.Render(blk), cy.Plans.TotalInitialCost)
	fmt.Printf("optimized plan: %s (cost %.0f)\n", cy.Plans.Plans[0].Tree.Render(blk), cy.Plans.TotalCost)
	fmt.Printf("improvement:    %.2fx\n", cy.Improvement())

	// 4. Execute the optimized plan; the warehouse content is identical.
	opt, err := cy.RunOptimized()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwarehouse rows: %d (initial) = %d (optimized)\n",
		cy.Observed.Sinks["warehouse"].Card(), opt.Sinks["warehouse"].Card())
	fmt.Printf("engine work:    %d rows (initial) vs %d rows (optimized)\n",
		cy.Observed.Rows, opt.Rows)
}
