// Memory budget: the resource-constrained observation of Section 6.1.
//
// When the optimal statistics do not fit the per-run memory limit, the
// framework schedules observation across several executions: the first run
// observes what the initial plan exposes within budget; later runs are
// re-ordered so remaining statistics (often plain trivial-CSS counters)
// become directly observable. The example sweeps the budget and prints the
// resulting schedules.
//
//	go run ./examples/memorybudget
package main

import (
	"fmt"
	"log"

	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/estimate"
	"github.com/essential-stats/etlopt/internal/schedule"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/suite"
)

func main() {
	// wf03 is the union–division showcase: its unconstrained optimum is a
	// few hundred units, but pretend memory is scarcer still.
	w := suite.MustGet(3)
	an, err := w.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	coster := costmodel.NewMemoryCoster(res, an.Cat)
	u, err := selector.NewUniverse(res, coster)
	if err != nil {
		log.Fatal(err)
	}
	unconstrained, err := selector.SelectUniverse(u, selector.Options{Method: selector.MethodExact})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow %s — unconstrained optimum: %d memory units in ONE run\n\n",
		w.Name, unconstrained.Memory)

	blk := an.Blocks[0]
	for _, budget := range []int64{2 * unconstrained.Memory, unconstrained.Memory / 2, 64, 16} {
		plan, err := selector.PlanWithBudget(u, budget)
		if err != nil {
			fmt.Printf("budget %4d: %v\n", budget, err)
			continue
		}
		fmt.Printf("budget %4d units → %d run(s), total cost %.0f\n", budget, plan.NumRuns(), plan.TotalCost)
		for r, run := range plan.Runs {
			fmt.Printf("  run %d (mem %d):\n", r+1, plan.Memory[r])
			for _, i := range run {
				note := ""
				if r > 0 {
					note = "  [plan re-ordered to expose this]"
				}
				fmt.Printf("    observe %s%s\n", u.Stats[i].Label(blk), note)
			}
		}
		fmt.Println()
	}
	fmt.Println("Tighter budgets trade memory for executions, mirroring the space–time")
	fmt.Println("trade-off the paper describes in Sections 6.1 and 8.2.")

	// Execute the tightest schedule for real: build concrete re-ordered
	// plans per run, run them, and derive every SE cardinality from the
	// merged observations.
	plan, err := schedule.Build(u, 64)
	if err != nil {
		log.Fatal(err)
	}
	db := w.Data(0.002)
	eng := engine.New(an, db, nil)
	store, err := schedule.Execute(eng, res, plan)
	if err != nil {
		log.Fatal(err)
	}
	est := estimate.New(res, store)
	fmt.Printf("\nexecuted %d scheduled run(s) at budget 64; derived cardinalities:\n", len(plan.Runs))
	for _, se := range res.Space(0).SEs {
		card, err := est.CardOf(0, se)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  |%s| = %d\n", se.Label(blk), card)
	}
}
