// Scheduler: how a production deployment uses the framework across
// scheduled runs (fresh process each time).
//
// Night 1 runs the designed plan instrumented and saves the observed
// statistics to disk. Following nights load the statistics, optimize
// WITHOUT re-observing, and execute the optimized plan. Each night also
// measures drift against the saved statistics; when the data moves beyond a
// threshold, the workflow is re-instrumented and the statistics refreshed —
// the paper's "repeat at a user defined interval" made data-driven.
//
//	go run ./examples/scheduler
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/essential-stats/etlopt/internal/core"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/workflow"
)

const driftThreshold = 0.25

func main() {
	g := buildFlow()
	// "Disk": the statistics file handed from one scheduled run to the next.
	var statsFile bytes.Buffer

	// Five nights; the weblog grows sharply on night 4.
	logCards := []int64{1200, 1300, 1250, 9000, 9100}
	var lastObserved *core.Cycle

	for night, logCard := range logCards {
		db, cat := nightData(int64(night), logCard)
		fmt.Printf("night %d (weblog %d rows):\n", night+1, logCard)

		if statsFile.Len() == 0 {
			// No statistics yet: instrumented run (night 1, or after drift).
			cy, err := core.Run(g, cat, db, core.DefaultConfig())
			if err != nil {
				log.Fatal(err)
			}
			statsFile.Reset()
			if err := cy.SaveStats(&statsFile); err != nil {
				log.Fatal(err)
			}
			lastObserved = cy
			fmt.Printf("  instrumented run: observed %d statistics, saved %d bytes\n",
				cy.Observed.Observed.Len(), statsFile.Len())
			fmt.Printf("  plan for next runs: %s\n\n", planString(cy))
			continue
		}

		// Fresh process: optimize from the saved statistics, no observation.
		saved := bytes.NewReader(statsFile.Bytes())
		_, plans, err := core.OptimizeFromSaved(g, cat, saved, core.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		an, err := workflow.Analyze(g, cat)
		if err != nil {
			log.Fatal(err)
		}
		eng := engine.New(an, db, nil)
		run, err := eng.RunPlans(plans.Trees(), nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  optimized run from saved statistics: %d rows of work\n", run.Rows)

		// Cheap drift probe: re-observe this night's statistics and compare.
		probe, err := core.Run(g, cat, db, core.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		drift := probe.DriftFrom(lastObserved)
		fmt.Printf("  drift vs saved statistics: max %.2f (threshold %.2f)\n", drift.MaxRel, driftThreshold)
		if drift.Exceeds(driftThreshold) {
			statsFile.Reset()
			if err := probe.SaveStats(&statsFile); err != nil {
				log.Fatal(err)
			}
			lastObserved = probe
			fmt.Printf("  → data drifted; statistics refreshed, new plan: %s\n", planString(probe))
		}
		fmt.Println()
	}
}

func planString(cy *core.Cycle) string {
	blk := cy.Analysis.Blocks[0]
	return cy.Plans.Plans[0].Tree.Render(blk)
}

func buildFlow() *workflow.Graph {
	b := workflow.NewBuilder("nightly-load")
	o := b.Source("Orders")
	l := b.Source("Weblog")
	r := b.Source("Region")
	j1 := b.Join(o, l, workflow.Attr{Rel: "Orders", Col: "sid"}, workflow.Attr{Rel: "Weblog", Col: "sid"})
	j2 := b.Join(j1, r, workflow.Attr{Rel: "Orders", Col: "rid"}, workflow.Attr{Rel: "Region", Col: "rid"})
	b.Sink(j2, "warehouse")
	return b.Graph()
}

func nightData(night, logCard int64) (engine.DB, *workflow.Catalog) {
	specs := []data.TableSpec{
		{Rel: "Orders", Card: 2500, Columns: []data.ColumnSpec{
			{Name: "oid", Serial: true},
			{Name: "sid", Domain: 400, Skew: 1.2},
			{Name: "rid", Domain: 200, Skew: 1.2},
		}},
		{Rel: "Weblog", Card: logCard, Columns: []data.ColumnSpec{
			{Name: "sid", Domain: 400, Skew: 1.2},
		}},
		{Rel: "Region", Card: 30, Columns: []data.ColumnSpec{
			{Name: "rid", Domain: 200},
		}},
	}
	db := engine.DB{}
	cat := &workflow.Catalog{}
	for i, s := range specs {
		// Orders and Region stay stable across nights; only the weblog is
		// regenerated (its seed varies by night).
		seed := int64(i) * 13
		if s.Rel == "Weblog" {
			seed += night * 101
		}
		tbl := data.Generate(s, seed)
		db[s.Rel] = tbl
		cat.Relations = append(cat.Relations, data.CatalogEntry(tbl, s))
	}
	return db, cat
}
