// Drift: the design-once / execute-repeatedly loop of the paper under
// changing data.
//
// An ETL workflow runs once per "day". The data characteristics drift day
// by day (a promotion makes one product dominate, then the customer base
// explodes). Each day's execution is instrumented, and the next day's run
// uses the plan that the freshly learned statistics prove optimal — so the
// chosen join order follows the data.
//
//	go run ./examples/drift
package main

import (
	"fmt"
	"log"

	"github.com/essential-stats/etlopt/internal/core"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// day describes one day's data shape.
type day struct {
	label             string
	orders, logs, res int64
	logSkew           float64
}

func main() {
	days := []day{
		{"day 1: balanced", 1500, 1000, 40, 1.2},
		{"day 2: promo launches (log traffic spikes)", 1500, 3000, 40, 1.7},
		{"day 3: promo peak", 1500, 5000, 40, 1.9},
		{"day 4: reservations triple", 1500, 600, 900, 1.2},
		{"day 5: quiet day", 600, 300, 40, 1.1},
	}

	b := workflow.NewBuilder("daily-load")
	o := b.Source("Orders")
	l := b.Source("Weblog")
	r := b.Source("Reservation")
	j1 := b.Join(o, l, workflow.Attr{Rel: "Orders", Col: "sid"}, workflow.Attr{Rel: "Weblog", Col: "sid"})
	j2 := b.Join(j1, r, workflow.Attr{Rel: "Orders", Col: "rid"}, workflow.Attr{Rel: "Reservation", Col: "rid"})
	b.Sink(j2, "warehouse")
	g := b.Graph()

	for di, d := range days {
		db, cat := generate(d, int64(di))
		cy, err := core.Run(g, cat, db, core.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		blk := cy.Analysis.Blocks[0]
		opt, err := cy.RunOptimized()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", d.label)
		fmt.Printf("  designed plan %s work=%d rows\n", blk.Initial.Render(blk), cy.Observed.Rows)
		fmt.Printf("  learned plan  %s work=%d rows (%.2fx plan-cost improvement)\n\n",
			cy.Plans.Plans[0].Tree.Render(blk), opt.Rows, cy.Improvement())
	}
	fmt.Println("The learned join order tracks the drift: when the weblog explodes the")
	fmt.Println("reservation join runs first, and vice versa — with no designer involved.")
}

func generate(d day, seed int64) (engine.DB, *workflow.Catalog) {
	specs := []data.TableSpec{
		{Rel: "Orders", Card: d.orders, Columns: []data.ColumnSpec{
			{Name: "oid", Serial: true},
			{Name: "sid", Domain: 500, Skew: 1.3},
			{Name: "rid", Domain: 300, Skew: 1.3},
		}},
		{Rel: "Weblog", Card: d.logs, Columns: []data.ColumnSpec{
			{Name: "sid", Domain: 500, Skew: d.logSkew},
		}},
		{Rel: "Reservation", Card: d.res, Columns: []data.ColumnSpec{
			{Name: "rid", Domain: 300, Skew: 1.1},
		}},
	}
	db := engine.DB{}
	cat := &workflow.Catalog{}
	for i, s := range specs {
		tbl := data.Generate(s, seed*17+int64(i))
		db[s.Rel] = tbl
		cat.Relations = append(cat.Relations, data.CatalogEntry(tbl, s))
	}
	return db, cat
}
