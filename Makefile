GO ?= go

.PHONY: build test race short bench vet lint check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel engine paths are the main race surface; this is the gate
# CI runs in addition to the plain test job.
race:
	$(GO) test -race ./...

short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

vet:
	$(GO) vet ./...

# lint always vets; staticcheck runs only where it is installed (CI
# installs it, minimal dev containers may not have it).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

check: build lint test race
