GO ?= go
FUZZTIME ?= 5s

.PHONY: build test race short bench examples vet lint check fuzz serve-smoke

build:
	$(GO) build ./...

test: fuzz
	$(GO) test ./...

# fuzz smoke: run each hostile-input fuzzer briefly beyond its checked-in
# seed corpus (go test accepts one -fuzz target per invocation, hence two
# runs). FUZZTIME=2m makes it a real session.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/data
	$(GO) test -run='^$$' -fuzz='^FuzzReadStore$$' -fuzztime=$(FUZZTIME) ./internal/stats

# serve-smoke drives the statistics daemon end to end: run -save-stats,
# observe upload, optimize solve + cache hit, metrics, SIGTERM drain.
serve-smoke:
	./scripts/serve_smoke.sh

# The parallel engine paths are the main race surface; this is the gate
# CI runs in addition to the plain test job.
race:
	$(GO) test -race ./...

short:
	$(GO) test -short ./...

# bench runs every benchmark once with allocation stats and records the
# machine-readable results (ns/op, B/op, allocs/op per benchmark) in
# BENCH_pr3.json via cmd/benchjson; the text output still streams through.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=^$$ . | $(GO) run ./cmd/benchjson -out BENCH_pr3.json

# examples smoke-runs every runnable example program; each must exit 0.
examples:
	@set -e; for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d >/dev/null; \
	done

vet:
	$(GO) vet ./...

# lint always vets; staticcheck runs only where it is installed (CI
# installs it, minimal dev containers may not have it).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

check: build lint test race
