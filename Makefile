GO ?= go
FUZZTIME ?= 5s
# Benchmark pinning: single-iteration numbers are noise, so bench always
# runs a fixed iteration count per benchmark and repeats the whole set.
# Override BENCHTIME/BENCHCOUNT for longer local sessions.
BENCHTIME ?= 3x
BENCHCOUNT ?= 2
BENCHOUT ?= BENCH_pr9.json
SERVEBENCH ?= BENCH_serve.json

.PHONY: build test race short bench bench-regress examples vet lint check fuzz serve-smoke distributed-smoke load-smoke

build:
	$(GO) build ./...

test: fuzz
	$(GO) test ./...

# fuzz smoke: run each hostile-input fuzzer briefly beyond its checked-in
# seed corpus (go test accepts one -fuzz target per invocation, hence two
# runs). FUZZTIME=2m makes it a real session.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/data
	$(GO) test -run='^$$' -fuzz='^FuzzReadStore$$' -fuzztime=$(FUZZTIME) ./internal/stats

# serve-smoke drives the statistics daemon end to end: run -save-stats,
# observe upload, optimize solve + cache hit, metrics, SIGTERM drain.
serve-smoke:
	./scripts/serve_smoke.sh

# distributed-smoke runs a coordinator against two real worker processes,
# SIGKILLs one mid-run, and requires exit 0 with stdout byte-identical to
# the single-process run.
distributed-smoke:
	./scripts/distributed_smoke.sh

# load-smoke drives an under-provisioned daemon (1 solve slot, no queue)
# with cmd/loadgen: zero 5xx, the 429 shed path must fire, clean drain.
load-smoke:
	./scripts/load_smoke.sh

# The parallel engine paths are the main race surface; this is the gate
# CI runs in addition to the plain test job. The suite's cross-engine
# matrix (8 configurations × 30 workflows, twice) outgrows go test's
# default 10m package budget under the race detector.
race:
	$(GO) test -race -timeout 40m ./...

short:
	$(GO) test -short ./...

# bench runs every benchmark with allocation stats at a pinned iteration
# count ($(BENCHTIME)) and repetition count ($(BENCHCOUNT)), then records
# the machine-readable results (ns/op, B/op, allocs/op per benchmark) in
# $(BENCHOUT) via cmd/benchjson; the text output still streams through.
# benchjson rejects single-iteration lines and folds the -count repetitions
# into one entry per benchmark (best ns/bytes/allocs, iterations summed).
bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) -run=^$$ . | $(GO) run ./cmd/benchjson -min-iters 2 -out $(BENCHOUT)
	$(GO) run ./cmd/loadgen -spec loadspecs/bench.yaml -out $(SERVEBENCH)

# bench-regress compares the committed benchmark records: allocs/op in
# $(BENCHOUT) must not regress against the BENCH_pr8.json baseline in any
# metrics-off configuration.
bench-regress:
	./scripts/bench_regress.sh BENCH_pr8.json $(BENCHOUT)

# examples smoke-runs every runnable example program; each must exit 0.
examples:
	@set -e; for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d >/dev/null; \
	done

vet:
	$(GO) vet ./...

# lint always vets; staticcheck runs only where it is installed (CI
# installs it, minimal dev containers may not have it).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

check: build lint test race
