GO ?= go

.PHONY: build test race short bench vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel engine paths are the main race surface; this is the gate
# CI runs in addition to the plain test job.
race:
	$(GO) test -race ./...

short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

vet:
	$(GO) vet ./...

check: build vet test race
