#!/usr/bin/env bash
# Distributed-execution smoke test: build the CLI, start two worker
# processes, run a multi-block workflow distributed, SIGKILL one worker
# while the run is in flight, and require exit 0 with stdout
# byte-identical to the single-process reference; then repeat with the
# dead worker still configured (the reassign/degrade path from the very
# first dispatch). CI runs this as its own job; `make distributed-smoke`
# runs it locally.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
wf=8
scale=0.1
p1="${SMOKE_WORKER1_PORT:-18091}"
p2="${SMOKE_WORKER2_PORT:-18092}"
addrs="http://127.0.0.1:$p1,http://127.0.0.1:$p2"
trap 'rm -rf "$work"; kill "${w1:-}" "${w2:-}" 2>/dev/null || true' EXIT

echo "== build"
go build -o "$work/etlopt" ./cmd/etlopt

echo "== single-process reference"
"$work/etlopt" run -wf "$wf" -scale "$scale" > "$work/ref.out"

echo "== start 2 workers"
"$work/etlopt" worker -addr "127.0.0.1:$p1" 2> "$work/w1.log" &
w1=$!
"$work/etlopt" worker -addr "127.0.0.1:$p2" 2> "$work/w2.log" &
w2=$!
disown "$w1" "$w2" # suppress job-control noise when the SIGKILL lands
for p in "$p1" "$p2"; do
    for i in $(seq 1 50); do
        if curl -sf "http://127.0.0.1:$p/v1/worker/health" >/dev/null 2>&1; then break; fi
        sleep 0.1
    done
    curl -sf "http://127.0.0.1:$p/v1/worker/health" | grep -q ok
done

echo "== distributed run, one worker SIGKILLed mid-run"
"$work/etlopt" run -wf "$wf" -scale "$scale" -distributed -worker-addrs "$addrs" \
    > "$work/dist.out" 2> "$work/dist.err" &
run=$!
sleep 0.25
kill -9 "$w1" 2>/dev/null || true
rc=0
wait "$run" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "distributed run exited $rc, want 0" >&2
    cat "$work/dist.err" >&2
    exit 1
fi
grep -q '^distributed:' "$work/dist.err"

echo "== outputs byte-identical to the single-process run"
cmp "$work/ref.out" "$work/dist.out"

echo "== re-run with the dead worker still configured"
rc=0
"$work/etlopt" run -wf "$wf" -scale "$scale" -distributed -worker-addrs "$addrs" \
    > "$work/dist2.out" 2> "$work/dist2.err" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "second distributed run exited $rc, want 0" >&2
    cat "$work/dist2.err" >&2
    exit 1
fi
grep -q '^distributed:' "$work/dist2.err"
cmp "$work/ref.out" "$work/dist2.out"

echo "PASS: distributed runs survive a SIGKILLed worker with identical outputs"
