#!/usr/bin/env bash
# Load smoke: start the daemon deliberately under-provisioned (one solve
# slot, no wait queue, cache off) and drive it with cmd/loadgen's smoke
# profile. Overload must be shed cleanly: zero 5xx, zero transport errors,
# at least one 429 (visible both in the loadgen report and the daemon's
# shed counter), and a clean SIGTERM drain afterwards. CI runs this as its
# own job; `make load-smoke` runs it locally.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
addr="127.0.0.1:${SMOKE_PORT:-18109}"
trap 'rm -rf "$work"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT

echo "== build"
go build -o "$work/etlopt" ./cmd/etlopt
go build -o "$work/loadgen" ./cmd/loadgen

echo "== start daemon (1 solve slot, no queue, cache off)"
"$work/etlopt" serve -catalog "$work/catalog" -addr "$addr" \
    -cache=false -max-solves 1 -solve-queue 0 &
pid=$!
for i in $(seq 1 50); do
    if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -sf "http://$addr/healthz" | grep -q ok

echo "== drive the smoke profile"
"$work/loadgen" -spec loadspecs/smoke.yaml -addr "http://$addr" -out "$work/load.json"
cat "$work/load.json"

echo "== no 5xx, no transport errors"
grep -q '"5xx": 0' "$work/load.json"
if grep -q '"error"' "$work/load.json"; then
    echo "loadgen report contains transport errors" >&2
    exit 1
fi

echo "== the 429 path fired"
if grep -q '"429": 0,' "$work/load.json"; then
    echo "no request was shed despite 1 solve slot and no queue" >&2
    exit 1
fi
curl -sf "http://$addr/metrics" > "$work/metrics"
grep -Eq 'etlopt_serve_sheds_total [1-9]' "$work/metrics"
grep -q 'etlopt_serve_solve_queue_depth 0' "$work/metrics"

echo "== graceful SIGTERM drain"
kill -TERM "$pid"
wait "$pid"
rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
    echo "daemon exited $rc on SIGTERM, want 0" >&2
    exit 1
fi
echo "load smoke OK"
