#!/usr/bin/env bash
# Serve-daemon smoke test: build the CLI, produce a statistics store with
# an instrumented run, start the daemon, drive the observe → optimize round
# trip over HTTP, and check that SIGTERM drains and exits 0. CI runs this
# as its own job; `make serve-smoke` runs it locally.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
addr="127.0.0.1:${SMOKE_PORT:-18099}"
trap 'rm -rf "$work"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT

echo "== build"
go build -o "$work/etlopt" ./cmd/etlopt

echo "== observed statistics via run -save-stats"
"$work/etlopt" run -wf 3 -scale 0.002 -save-stats "$work/wf03.stats" >/dev/null

echo "== start daemon"
"$work/etlopt" serve -catalog "$work/catalog" -addr "$addr" &
pid=$!
for i in $(seq 1 50); do
    if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -sf "http://$addr/healthz" | grep -q ok

echo "== observe upload"
curl -sf --data-binary "@$work/wf03.stats" \
    "http://$addr/v1/observe?workflow=wf03" | grep -q '"generation": 1'

echo "== optimize (solve, then cache hit)"
curl -sf -X POST -d '{"workflow":"wf03"}' "http://$addr/v1/optimize" \
    > "$work/opt1.json"
grep -q '"totalCost"' "$work/opt1.json"
curl -sf -D "$work/headers" -X POST -d '{"workflow":"wf03"}' \
    "http://$addr/v1/optimize" > "$work/opt2.json"
grep -qi '^x-cache: hit' "$work/headers"
cmp "$work/opt1.json" "$work/opt2.json"

echo "== estimate"
curl -sf -X POST -d '{"workflow":"wf03"}' "http://$addr/v1/estimate" \
    | grep -q '"observe"'

echo "== metrics"
# One optimize solve + one estimate solve, and exactly one cache hit from
# the repeated optimize.
curl -sf "http://$addr/metrics" > "$work/metrics"
grep -q 'etlopt_serve_solves_total 2' "$work/metrics"
grep -q 'etlopt_serve_cache_hits_total 1' "$work/metrics"
grep -q 'etlopt_serve_catalog_generation{workflow="wf03"} 1' "$work/metrics"

echo "== graceful SIGTERM drain"
kill -TERM "$pid"
wait "$pid"
rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
    echo "daemon exited $rc on SIGTERM, want 0" >&2
    exit 1
fi
echo "serve smoke OK"
