#!/usr/bin/env bash
# bench_regress.sh — CI gate for allocation regressions in the engine's
# metrics-off configurations.
#
# Usage: scripts/bench_regress.sh [BASE.json] [HEAD.json]
#
# Compares allocs/op between the two committed benchjson records (default:
# the PR3 row-engine baseline vs the PR6 columnar record) for every
# benchmark that runs without metrics collection. Exits nonzero if any of
# them allocates more than the baseline; cmd/benchdiff prints the full
# comparison table either way.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE="${1:-BENCH_pr3.json}"
HEAD="${2:-BENCH_pr6.json}"

for f in "$BASE" "$HEAD"; do
    if [[ ! -f "$f" ]]; then
        echo "bench_regress: missing benchmark record $f" >&2
        exit 1
    fi
done

# Tolerance: sequential row/columnar runs have deterministic allocation
# counts, but the streaming engine's goroutine scheduling and sync.Pool
# state make its allocs/op vary ~3% BETWEEN bench sessions (re-measuring
# the very commit that recorded wf18/stream-w1=455 yields 470-472 in a
# fresh session). 5% rides above that session-to-session noise while still
# catching real leaks — a per-row or per-batch allocation regression moves
# these counters by tens of percent, not single digits.
exec go run ./cmd/benchdiff -base "$BASE" -head "$HEAD" -tolerance 0.05
