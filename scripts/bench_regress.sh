#!/usr/bin/env bash
# bench_regress.sh — CI gate for allocation regressions in the engine's
# metrics-off configurations.
#
# Usage: scripts/bench_regress.sh [BASE.json] [HEAD.json]
#
# Compares allocs/op between the two committed benchjson records (default:
# the PR3 row-engine baseline vs the PR6 columnar record) for every
# benchmark that runs without metrics collection. Exits nonzero if any of
# them allocates more than the baseline; cmd/benchdiff prints the full
# comparison table either way.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE="${1:-BENCH_pr3.json}"
HEAD="${2:-BENCH_pr6.json}"

for f in "$BASE" "$HEAD"; do
    if [[ ! -f "$f" ]]; then
        echo "bench_regress: missing benchmark record $f" >&2
        exit 1
    fi
done

exec go run ./cmd/benchdiff -base "$BASE" -head "$HEAD"
