package physical

import (
	"fmt"
	"strings"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Options tune one compilation.
type Options struct {
	// Plans overrides the join tree per block (nil map or missing entry =
	// the designed initial tree).
	Plans map[int]*workflow.JoinTree
	// Res classifies statistic observability and resolves the physical
	// attributes of taps; nil compiles an uninstrumented plan.
	Res *css.Result
	// Observe lists the statistics to attach as taps.
	Observe []stats.Stat
	// AnyPoint drops the initial-plan observability filter: every
	// statistic is registered and attached wherever the compiled plans
	// actually produce its target (the pay-as-you-go exploration mode).
	// Taps whose columns cannot be resolved at their point are silently
	// dropped instead of failing the compilation.
	AnyPoint bool
	// Reg resolves transform UDF names (nil = DefaultRegistry).
	Reg Registry
}

// seKey addresses a cooked sub-expression of a block.
type seKey struct {
	block int
	set   expr.Set
}

// compiler carries the tap index: the observable statistics of the
// selection keyed by observation point — chain points (block, input,
// depth), cooked SEs (block, set) and reject singletons (block, input,
// edge). This replaces the engines' runtime tap routing.
type compiler struct {
	an       *workflow.Analysis
	db       DB
	reg      Registry
	res      *css.Result
	anyPoint bool

	chain  map[[3]int][]stats.Stat
	se     map[seKey][]stats.Stat
	reject map[[3]int][]stats.Stat
}

// Compile lowers every block of the analysis into a physical plan over the
// database, with the statistics of opt.Observe attached as taps at their
// observation points. Unless opt.AnyPoint is set, statistics not observable
// under the initial plan are skipped (they are derived later by the
// estimator).
func Compile(an *workflow.Analysis, db DB, opt Options) (*Plan, error) {
	reg := opt.Reg
	if reg == nil {
		reg = DefaultRegistry()
	}
	c := &compiler{
		an: an, db: db, reg: reg, res: opt.Res, anyPoint: opt.AnyPoint,
		chain:  make(map[[3]int][]stats.Stat),
		se:     make(map[seKey][]stats.Stat),
		reject: make(map[[3]int][]stats.Stat),
	}
	if opt.Res != nil {
		for _, s := range opt.Observe {
			if !opt.AnyPoint && !opt.Res.StatObservable(s) {
				continue
			}
			tgt := s.Target
			switch {
			case tgt.IsChainPoint():
				k := [3]int{tgt.Block, tgt.Set.Lowest(), tgt.Depth}
				c.chain[k] = append(c.chain[k], s)
			case tgt.IsReject():
				k := [3]int{tgt.Block, tgt.RejectInput, tgt.RejectEdge}
				c.reject[k] = append(c.reject[k], s)
			default:
				k := seKey{tgt.Block, tgt.Set}
				c.se[k] = append(c.se[k], s)
			}
		}
	}
	p := &Plan{An: an}
	for _, blk := range an.Blocks {
		tree := blk.Initial
		if opt.Plans != nil {
			if t, ok := opt.Plans[blk.Index]; ok && t != nil {
				tree = t
			}
		}
		bp, err := c.compileBlock(p, blk, tree)
		if err != nil {
			return nil, fmt.Errorf("compile block %d: %w", blk.Index, err)
		}
		p.Blocks = append(p.Blocks, bp)
	}
	return p, nil
}

func (c *compiler) compileBlock(p *Plan, blk *workflow.Block, tree *workflow.JoinTree) (*BlockPlan, error) {
	bp := &BlockPlan{Block: blk, Tree: tree, Chains: make([][]*Node, len(blk.Inputs))}
	add := func(n *Node) *Node {
		n.ID = len(bp.Nodes)
		bp.Nodes = append(bp.Nodes, n)
		return n
	}
	for i := range blk.Inputs {
		chain, err := c.compileChain(p, blk, i, add)
		if err != nil {
			return nil, fmt.Errorf("input %d (%s): %w", i, blk.Inputs[i].Name, err)
		}
		bp.Chains[i] = chain
	}
	var root *Node
	if tree == nil {
		if len(blk.Inputs) != 1 {
			return nil, fmt.Errorf("join-free block with %d inputs", len(blk.Inputs))
		}
		root = bp.Chains[0][len(bp.Chains[0])-1]
	} else {
		var err error
		root, err = c.compileTree(blk, tree, bp, add)
		if err != nil {
			return nil, err
		}
		bp.JoinRoot = root
	}
	for _, op := range blk.TopOps {
		n, err := c.compileOp(root, op)
		if err != nil {
			return nil, fmt.Errorf("top op %q: %w", op.ID, err)
		}
		add(n)
		bp.TopNodes = append(bp.TopNodes, n)
		root = n
	}
	bp.Root = root
	return bp, nil
}

// compileChain lowers input i's scan and pushed-down operators, attaching
// the chain-point taps at every depth (the cooked end doubles as the
// singleton SE).
func (c *compiler) compileChain(p *Plan, blk *workflow.Block, i int, add func(*Node) *Node) ([]*Node, error) {
	in := blk.Inputs[i]
	scan := &Node{Kind: OpScan, FromBlock: -1, ChainInput: i, Edge: -1}
	switch {
	case in.SourceRel != "":
		src, ok := c.db[in.SourceRel]
		if !ok {
			return nil, fmt.Errorf("relation %q not in database", in.SourceRel)
		}
		scan.Src = src
		scan.SourceRel = in.SourceRel
		scan.Attrs = src.Attrs
		scan.Label = "scan " + in.SourceRel
	case in.FromBlock >= 0:
		up := p.Blocks[in.FromBlock] // blocks compile in topological order
		scan.FromBlock = in.FromBlock
		scan.Attrs = up.Root.Attrs
		scan.Label = fmt.Sprintf("scan block%d", in.FromBlock)
	default:
		return nil, fmt.Errorf("input %d has neither source nor upstream block", i)
	}
	if err := c.attachChainTaps(blk, scan, i, 0, len(in.Ops)); err != nil {
		return nil, err
	}
	add(scan)
	chain := []*Node{scan}
	cur := scan
	for d, op := range in.Ops {
		n, err := c.compileOp(cur, op)
		if err != nil {
			return nil, fmt.Errorf("chain op %q: %w", op.ID, err)
		}
		n.ChainInput, n.ChainDepth = i, d+1
		if err := c.attachChainTaps(blk, n, i, d+1, len(in.Ops)); err != nil {
			return nil, err
		}
		add(n)
		chain = append(chain, n)
		cur = n
	}
	return chain, nil
}

// compileOp lowers one unary operator — the single definition of operator
// schema evolution shared by chains and top operators, and (through the
// executors) by the batch and streaming engines.
func (c *compiler) compileOp(in *Node, op *workflow.Node) (*Node, error) {
	n := &Node{Input: in, Origin: op.ID, ChainInput: -1, FromBlock: -1, Edge: -1}
	switch op.Kind {
	case workflow.KindSelect:
		col := idxOf(in.Attrs, op.Pred.Attr)
		if col < 0 {
			return nil, fmt.Errorf("select attr %s not in schema", op.Pred.Attr)
		}
		n.Kind, n.Pred, n.PredCol = OpFilter, op.Pred, col
		n.Attrs = in.Attrs
		n.Label = "filter " + op.Pred.String()
	case workflow.KindProject:
		cols, err := colsOf(in.Attrs, op.Cols)
		if err != nil {
			return nil, fmt.Errorf("project: %w", err)
		}
		n.Kind, n.Cols = OpProject, cols
		n.Attrs = append([]workflow.Attr(nil), op.Cols...)
		n.Label = "project " + attrList(op.Cols)
	case workflow.KindTransform:
		fn, ok := c.reg[op.Transform.Fn]
		if !ok {
			return nil, fmt.Errorf("unknown UDF %q", op.Transform.Fn)
		}
		ins, err := colsOf(in.Attrs, op.Transform.Ins)
		if err != nil {
			return nil, fmt.Errorf("transform: %w", err)
		}
		n.Kind, n.Fn, n.FnName, n.FnIns = OpTransform, fn, op.Transform.Fn, ins
		n.Attrs = append(append([]workflow.Attr(nil), in.Attrs...), op.Transform.Out)
		n.Label = fmt.Sprintf("transform %s(%s)→%s", op.Transform.Fn, attrList(op.Transform.Ins), op.Transform.Out)
	case workflow.KindGroupBy:
		cols, err := colsOf(in.Attrs, op.Cols)
		if err != nil {
			return nil, fmt.Errorf("group-by: %w", err)
		}
		n.Kind, n.Cols = OpGroupBy, cols
		n.Attrs = append([]workflow.Attr(nil), op.Cols...)
		n.Label = "groupby " + attrList(op.Cols)
	case workflow.KindAggregateUDF:
		fn, ok := c.reg[op.Transform.Fn]
		if !ok {
			return nil, fmt.Errorf("unknown aggregate UDF %q", op.Transform.Fn)
		}
		ins, err := colsOf(in.Attrs, op.Transform.Ins)
		if err != nil {
			return nil, fmt.Errorf("aggregate: %w", err)
		}
		n.Kind, n.Fn, n.FnName, n.FnIns = OpAggregateUDF, fn, op.Transform.Fn, ins
		attrs := make([]workflow.Attr, 0, len(op.Transform.Ins)+1)
		attrs = append(attrs, op.Transform.Ins...)
		attrs = append(attrs, op.Transform.Out)
		n.Attrs = attrs
		n.Label = fmt.Sprintf("aggudf %s(%s)→%s", op.Transform.Fn, attrList(op.Transform.Ins), op.Transform.Out)
	case workflow.KindMaterialize:
		n.Kind, n.Rel = OpMaterialize, op.Rel
		n.Attrs = in.Attrs
		n.Label = "materialize " + op.Rel
	default:
		return nil, fmt.Errorf("unexpected operator kind %v in block", op.Kind)
	}
	return n, nil
}

// compileTree lowers a join tree bottom-up. Leaves resolve to the cooked
// chain-end nodes; internal nodes become hash joins with normalized sides,
// SE taps and reject instrumentation.
func (c *compiler) compileTree(blk *workflow.Block, t *workflow.JoinTree, bp *BlockPlan, add func(*Node) *Node) (*Node, error) {
	if t.IsLeaf() {
		ch := bp.Chains[t.Leaf]
		return ch[len(ch)-1], nil
	}
	left, err := c.compileTree(blk, t.Left, bp, add)
	if err != nil {
		return nil, err
	}
	right, err := c.compileTree(blk, t.Right, bp, add)
	if err != nil {
		return nil, err
	}
	edge := blk.Joins[t.Join]
	la, ra := edge.LeftAttr, edge.RightAttr
	// Normalize the attributes to the sides as executed.
	if idxOf(left.Attrs, la) < 0 {
		la, ra = ra, la
	}
	lc, rc := idxOf(left.Attrs, la), idxOf(right.Attrs, ra)
	if lc < 0 || rc < 0 {
		return nil, fmt.Errorf("join %q: attrs %s/%s not found (schemas %v / %v)",
			edge.Node, la, ra, left.Attrs, right.Attrs)
	}
	n := &Node{
		Kind: OpHashJoin, Origin: edge.Node, ChainInput: -1, FromBlock: -1,
		Left: left, Right: right, Edge: t.Join, LeftCol: lc, RightCol: rc,
		Attrs: append(append([]workflow.Attr(nil), left.Attrs...), right.Attrs...),
		SE:    left.SE.Union(right.SE),
		Label: fmt.Sprintf("join %s=%s", la, ra),
	}
	if err := c.attach(n, c.se[seKey{blk.Index, n.SE}]); err != nil {
		return nil, err
	}
	// Union–division reject instrumentation: a side that is a bare input
	// joined over this edge can feed reject statistics.
	if left.SE.Len() == 1 {
		n.LeftReject, err = c.compileReject(blk, bp, left.SE.Lowest(), t.Join, left.Attrs)
		if err != nil {
			return nil, err
		}
	}
	if right.SE.Len() == 1 {
		n.RightReject, err = c.compileReject(blk, bp, right.SE.Lowest(), t.Join, right.Attrs)
		if err != nil {
			return nil, err
		}
	}
	// A designed reject link materializes the left side's misses.
	if g := c.an.Graph.Node(edge.Node); g != nil && g.Join != nil && g.Join.RejectLink {
		n.RejectLink = string(edge.Node) + ".reject"
	}
	add(n)
	return n, nil
}

// compileReject binds the reject statistics registered at (input t, edge f)
// against the miss-row schema: singletons observe the misses directly,
// two-input variants compile to auxiliary joins with their partner input
// (wider variants are derived, not observed).
func (c *compiler) compileReject(blk *workflow.Block, bp *BlockPlan, t, f int, missAttrs []workflow.Attr) (*RejectTaps, error) {
	list := c.reject[[3]int{blk.Index, t, f}]
	if len(list) == 0 {
		return nil, nil
	}
	rt := &RejectTaps{Input: t, Edge: f}
	for _, s := range list {
		rest := s.Target.Set.Without(expr.NewSet(t))
		if rest.Empty() {
			tap, err := c.resolveTap(s, missAttrs)
			if err != nil {
				if c.anyPoint {
					continue
				}
				return nil, err
			}
			rt.Singles = append(rt.Singles, tap)
			continue
		}
		if rest.Len() != 1 {
			continue
		}
		r := rest.Lowest()
		g := -1
		for j, e := range blk.Joins {
			if e.LeftInput == t && e.RightInput == r || e.LeftInput == r && e.RightInput == t {
				g = j
				break
			}
		}
		if g < 0 {
			continue
		}
		la, ra := blk.Joins[g].LeftAttr, blk.Joins[g].RightAttr
		if idxOf(missAttrs, la) < 0 {
			la, ra = ra, la
		}
		partner := bp.Chains[r][len(bp.Chains[r])-1]
		mc, pc := idxOf(missAttrs, la), idxOf(partner.Attrs, ra)
		if mc < 0 || pc < 0 {
			continue // the runtime join would fail; the statistic is skipped
		}
		attrs := append(append([]workflow.Attr(nil), missAttrs...), partner.Attrs...)
		tap, err := c.resolveTap(s, attrs)
		if err != nil {
			continue // unresolvable aux statistics are skipped, as at runtime
		}
		rt.Aux = append(rt.Aux, &AuxJoin{
			Stat: s, Partner: r, MissCol: mc, PartnerCol: pc, Attrs: attrs, Cols: tap.Cols,
		})
	}
	if len(rt.Singles) == 0 && len(rt.Aux) == 0 {
		return nil, nil
	}
	return rt, nil
}

// attachChainTaps attaches the statistics registered at chain point
// (block, input, depth); the cooked end of the chain doubles as the
// singleton SE.
func (c *compiler) attachChainTaps(blk *workflow.Block, n *Node, input, depth, chainLen int) error {
	if err := c.attach(n, c.chain[[3]int{blk.Index, input, depth}]); err != nil {
		return err
	}
	if depth == chainLen {
		n.SE = expr.NewSet(input)
		if err := c.attach(n, c.se[seKey{blk.Index, n.SE}]); err != nil {
			return err
		}
	}
	return nil
}

// attach resolves and appends taps for the listed statistics against the
// node's schema. With AnyPoint, unresolvable taps are dropped (the plans
// under exploration may not carry a statistic's attributes everywhere).
func (c *compiler) attach(n *Node, list []stats.Stat) error {
	for _, s := range list {
		tap, err := c.resolveTap(s, n.Attrs)
		if err != nil {
			if c.anyPoint {
				continue
			}
			return err
		}
		n.Taps = append(n.Taps, tap)
	}
	return nil
}

// resolveTap binds one statistic's class-representative attributes to
// physical columns of a schema. Histograms are recorded under the
// class-representative labels, so the estimation algebra composes
// histograms from different relations without renaming.
func (c *compiler) resolveTap(s stats.Stat, attrs []workflow.Attr) (Tap, error) {
	if s.Kind == stats.Card {
		return Tap{Stat: s}, nil
	}
	phys, err := c.res.PhysicalAttrs(s)
	if err != nil {
		return Tap{}, err
	}
	cols := make([]int, len(phys))
	for i, a := range phys {
		cols[i] = idxOf(attrs, a)
		if cols[i] < 0 {
			// The class representative itself may be the physical column
			// (e.g. a derived attribute).
			cols[i] = idxOf(attrs, s.Attrs[i])
		}
		if cols[i] < 0 {
			return Tap{}, fmt.Errorf("attribute %s not present at observation point (schema %v)", phys[i], attrs)
		}
	}
	tap := Tap{Stat: s, Cols: cols}
	if s.Kind == stats.CMHist {
		// Count-min buckets over the attribute's full catalog domain
		// ([1, |a|] in this framework); resolving the spec here, once, keeps
		// every observer shard on an identical layout so merges are exact
		// counter additions.
		dom, err := c.an.Cat.Domain(phys[0])
		if err != nil {
			if dom, err = c.an.Cat.Domain(s.Attrs[0]); err != nil {
				return Tap{}, fmt.Errorf("cm-hist %v: %w", s.Key(), err)
			}
		}
		tap.Spec = stats.CMSpecFor(1, dom)
	}
	return tap, nil
}

// idxOf returns a's position within attrs, or -1.
func idxOf(attrs []workflow.Attr, a workflow.Attr) int {
	for i, x := range attrs {
		if x == a {
			return i
		}
	}
	return -1
}

// colsOf maps attributes to positions within a schema.
func colsOf(attrs []workflow.Attr, want []workflow.Attr) ([]int, error) {
	out := make([]int, len(want))
	for i, a := range want {
		out[i] = idxOf(attrs, a)
		if out[i] < 0 {
			return nil, fmt.Errorf("attribute %s not in schema %v", a, attrs)
		}
	}
	return out, nil
}

// attrList renders attributes comma-separated in declaration order.
func attrList(as []workflow.Attr) string {
	parts := make([]string, len(as))
	for i, a := range as {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}
