package physical

import (
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
)

// Metrics holds one operator's runtime counters, populated by the engines
// when metrics collection is enabled (it stays zero otherwise). The
// counters split the paper's Section 5.4 observation-cost question into
// measurable parts: WallNanos is the time spent producing the node's rows,
// TapNanos is — timed separately — the overhead of the statistic taps
// attached to the node (per-row observers, reject collection and the
// post-stream auxiliary union–division joins).
//
// Semantics per engine:
//
//   - RowsOut and the derived RowsIn are execution-strategy independent:
//     both engines, at any worker count, report identical values (the
//     cross-engine equivalence test pins this).
//   - Calls counts operator invocations: 1 per batch evaluation, one per
//     pipeline shard in the streaming engine — a worker-count-dependent
//     diagnostic, excluded from the deterministic report.
//   - WallNanos is per-operator in the batch engine (inputs are already
//     materialized when an operator runs). In the streaming engine
//     pipelines interleave, so WallNanos is cumulative along a pipeline:
//     a node's time includes its streamed upstream; worker-parallel probe
//     cascades attribute the cascade's time to the spine root. Wall times
//     are wall-clock and therefore never part of deterministic output.
type Metrics struct {
	// RowsOut counts rows the operator emitted.
	RowsOut int64
	// Calls counts operator invocations (batch: 1; streaming: shards).
	Calls int64
	// WallNanos is time spent producing the node's rows, excluding
	// TapNanos.
	WallNanos int64
	// TapNanos is the statistic-tap observation overhead at this node.
	TapNanos int64
}

// Merge folds another shard of the same node's metrics into m — the
// worker-parallel paths give every worker a private shard and merge after
// the operator drains, exactly like the statistic-observer shards, so
// enabling metrics never perturbs observed statistics.
func (m *Metrics) Merge(o *Metrics) {
	m.RowsOut += o.RowsOut
	m.Calls += o.Calls
	m.WallNanos += o.WallNanos
	m.TapNanos += o.TapNanos
}

// NodeMetrics is one node's metrics snapshot, carrying enough identity to
// render a report without the plan. Timing fields are excluded from JSON:
// the JSON form is the deterministic report, and wall times differ run to
// run (they remain available programmatically).
type NodeMetrics struct {
	Block int    `json:"block"`
	Node  int    `json:"node"`
	Op    string `json:"op"`
	Label string `json:"label"`
	// SE is the sub-expression the node produces (join and chain-end
	// nodes), 0 otherwise.
	SE expr.Set `json:"se,omitempty"`
	// ChainInput/ChainDepth place chain nodes (-1 input otherwise).
	ChainInput int `json:"chainInput"`
	ChainDepth int `json:"chainDepth"`
	// RowsIn is the sum of the input nodes' RowsOut (RowsOut for scans).
	RowsIn  int64 `json:"rowsIn"`
	RowsOut int64 `json:"rowsOut"`
	Calls   int64 `json:"-"`
	// WallNanos/TapNanos: see Metrics.
	WallNanos int64 `json:"-"`
	TapNanos  int64 `json:"-"`
}

// RunMetrics is the per-operator metrics of one execution, in deterministic
// order (block index, then node ID).
type RunMetrics struct {
	Nodes []NodeMetrics
}

// MetricsSnapshot extracts the plan's populated node metrics after a run.
// RowsIn is derived from the operator DAG: the sum of the direct inputs'
// RowsOut (a scan's RowsIn equals its RowsOut — every source row is read).
func (p *Plan) MetricsSnapshot() *RunMetrics {
	rm := &RunMetrics{}
	for _, bp := range p.Blocks {
		for _, n := range bp.Nodes {
			nm := NodeMetrics{
				Block:      bp.Block.Index,
				Node:       n.ID,
				Op:         n.Kind.String(),
				Label:      n.Label,
				SE:         n.SE,
				ChainInput: n.ChainInput,
				ChainDepth: n.ChainDepth,
				RowsOut:    n.Metrics.RowsOut,
				Calls:      n.Metrics.Calls,
				WallNanos:  n.Metrics.WallNanos,
				TapNanos:   n.Metrics.TapNanos,
			}
			switch {
			case n.Kind == OpScan:
				nm.RowsIn = n.Metrics.RowsOut
			case n.Kind == OpHashJoin:
				nm.RowsIn = n.Left.Metrics.RowsOut + n.Right.Metrics.RowsOut
			case n.Input != nil:
				nm.RowsIn = n.Input.Metrics.RowsOut
			}
			rm.Nodes = append(rm.Nodes, nm)
		}
	}
	return rm
}

// Totals sums operator wall time and tap overhead across all nodes — the
// run-level split between execution work and observation work.
func (rm *RunMetrics) Totals() (wallNanos, tapNanos int64) {
	for _, n := range rm.Nodes {
		wallNanos += n.WallNanos
		tapNanos += n.TapNanos
	}
	return wallNanos, tapNanos
}

// Actuals returns the actual cardinality of every statistic target the
// executed plan materialized: each block's sub-expressions (join and
// chain-end nodes) under their cooked Depth=-1 identity, and every chain
// point. These are the ground truths the estimate-feedback report compares
// derived estimates against.
func (rm *RunMetrics) Actuals() map[stats.Target]int64 {
	out := make(map[stats.Target]int64)
	for _, n := range rm.Nodes {
		if n.Op == OpMaterialize.String() {
			continue
		}
		if !n.SE.Empty() {
			out[stats.BlockSE(n.Block, n.SE)] = n.RowsOut
		}
		if n.ChainInput >= 0 {
			out[stats.ChainPoint(n.Block, n.ChainInput, n.ChainDepth)] = n.RowsOut
		}
	}
	return out
}

// BlockActuals reads one block's statistic-target cardinalities straight
// off the live plan's node metrics — the per-boundary slice of Actuals the
// adaptive check accumulates as blocks commit, without snapshotting the
// whole plan at every boundary.
func (p *Plan) BlockActuals(block int) map[stats.Target]int64 {
	out := make(map[stats.Target]int64)
	for _, bp := range p.Blocks {
		if bp.Block.Index != block {
			continue
		}
		for _, n := range bp.Nodes {
			if n.Kind == OpMaterialize {
				continue
			}
			if !n.SE.Empty() {
				out[stats.BlockSE(block, n.SE)] = n.Metrics.RowsOut
			}
			if n.ChainInput >= 0 {
				out[stats.ChainPoint(block, n.ChainInput, n.ChainDepth)] = n.Metrics.RowsOut
			}
		}
	}
	return out
}
