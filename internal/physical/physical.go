// Package physical lowers analyzed workflow blocks into a typed physical
// operator DAG — the shared intermediate representation both execution
// engines interpret. The compiler resolves everything that can be decided
// before the first row flows: operator schemas, column positions, UDF
// implementations, hash-join sides and probe/build columns, reject-link
// routing, and — centrally — the *tap attachment points*: which selected
// statistics observe which operator outputs, with their physical columns
// already bound (the paper's Section 3.2.5 instrumentation, made
// declarative).
//
// The batch engine interprets the DAG table-at-a-time, the streaming engine
// pipelines it row-at-a-time, and the worker-parallel paths schedule its
// nodes across goroutines; all of them read the same nodes, so operator
// semantics, observer wiring and reject routing live in exactly one place.
package physical

import (
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// DB maps base relation names to materialized tables.
type DB map[string]*data.Table

// UDF is a scalar transformation function applied per tuple.
type UDF func(vals []int64) int64

// Registry resolves transform function names to implementations.
type Registry map[string]UDF

// DefaultRegistry returns the built-in UDFs used by the examples and the
// benchmark suite.
func DefaultRegistry() Registry {
	return Registry{
		// identity passes the first input through.
		"identity": func(v []int64) int64 { return v[0] },
		// bucket10 maps values into ten buckets.
		"bucket10": func(v []int64) int64 { return v[0]%10 + 1 },
		// sum adds all inputs.
		"sum": func(v []int64) int64 {
			var t int64
			for _, x := range v {
				t += x
			}
			return t
		},
		// scramble is a cheap value scrambler standing in for opaque
		// cleansing code.
		"scramble": func(v []int64) int64 { return (v[0]*2654435761 + 17) % 100003 },
	}
}

// OpKind enumerates the physical operators.
type OpKind int

// Physical operator kinds.
const (
	// OpScan reads a base relation or an upstream block's boundary output.
	OpScan OpKind = iota
	// OpFilter drops rows failing a single-attribute predicate.
	OpFilter
	// OpProject keeps a column subset.
	OpProject
	// OpTransform appends one derived column computed by a UDF.
	OpTransform
	// OpGroupBy emits one row per distinct key combination.
	OpGroupBy
	// OpAggregateUDF emits one row per distinct input combination plus the
	// aggregate value (the opaque custom aggregate of the paper).
	OpAggregateUDF
	// OpHashJoin equi-joins two nodes, exposing each side's non-matching
	// rows for reject statistics and reject links.
	OpHashJoin
	// OpMaterialize records its input under a target name; it produces no
	// new rows and does not count toward the work metric.
	OpMaterialize
)

// String names the operator kind.
func (k OpKind) String() string {
	switch k {
	case OpScan:
		return "scan"
	case OpFilter:
		return "filter"
	case OpProject:
		return "project"
	case OpTransform:
		return "transform"
	case OpGroupBy:
		return "groupby"
	case OpAggregateUDF:
		return "aggudf"
	case OpHashJoin:
		return "hashjoin"
	case OpMaterialize:
		return "materialize"
	default:
		return "op?"
	}
}

// Tap is one statistic collector attached to a node's output. For Distinct
// and Hist statistics (and their sketch-backed variants) Cols holds the
// physical column positions of the statistic's (class-representative)
// attributes, resolved at compile time; Card taps need no columns. CMHist
// taps additionally carry the bucket spec, resolved from the attribute's
// catalog domain at compile time so every worker shard buckets
// identically.
type Tap struct {
	Stat stats.Stat
	Cols []int
	Spec stats.BucketSpec
}

// AuxJoin is a compiled union–division counter (rule J4): a two-input
// reject statistic T̄t ⋈ r observed by joining the miss rows of input t with
// partner input r after the block's pipeline drains.
type AuxJoin struct {
	Stat stats.Stat
	// Partner is the block-input index joined against the misses.
	Partner int
	// MissCol / PartnerCol are the equi-join columns on the miss rows and
	// the partner's cooked input.
	MissCol, PartnerCol int
	// Attrs is the schema of the auxiliary join output (miss ++ partner).
	Attrs []workflow.Attr
	// Cols are Stat's resolved columns within Attrs (nil for Card).
	Cols []int
}

// RejectTaps is the reject instrumentation of one side of a hash join whose
// side is a bare input: Singles observe the miss rows directly, Aux are the
// deferred auxiliary joins for two-input reject variants.
type RejectTaps struct {
	// Input is the block-input index whose misses are observed; Edge is the
	// join edge (Block.Joins index) defining the rejects.
	Input, Edge int
	Singles     []Tap
	Aux         []*AuxJoin
}

// Node is one physical operator. Exactly the fields of its Kind are set;
// the rest keep zero values (-1 for the index fields).
type Node struct {
	// ID is the node's position in BlockPlan.Nodes (topological execution
	// order).
	ID   int
	Kind OpKind
	// Label is a deterministic human-readable rendering of the operator.
	Label string
	// Origin is the workflow graph node this operator was lowered from
	// ("" for scans).
	Origin workflow.NodeID
	// Attrs is the node's output schema.
	Attrs []workflow.Attr

	// Input is the upstream node of unary operators.
	Input *Node

	// Scan: exactly one of Src (a base relation, resolved at compile time)
	// or FromBlock (an upstream block's boundary output, resolved when the
	// block runs) is set. SourceRel names the base relation for display.
	Src       *data.Table
	SourceRel string
	FromBlock int

	// ChainInput/ChainDepth place chain nodes: the node produces chain
	// point (block, ChainInput, ChainDepth). ChainInput is -1 for join and
	// top-operator nodes.
	ChainInput int
	ChainDepth int

	// Filter.
	Pred    *workflow.Predicate
	PredCol int

	// Project and GroupBy key columns.
	Cols []int

	// Transform / AggregateUDF: the resolved function and its input
	// columns.
	Fn     UDF
	FnName string
	FnIns  []int

	// HashJoin. Left streams/probes, Right is the build side. LeftCol and
	// RightCol are the join columns on the sides as executed (the compiler
	// normalizes the edge's attribute pair onto the sides). SE is the
	// sub-expression the node produces (also set on chain-end nodes).
	Left, Right       *Node
	Edge              int
	LeftCol, RightCol int
	SE                expr.Set
	// LeftReject/RightReject carry reject instrumentation when the
	// respective side is a bare input with registered reject statistics.
	LeftReject, RightReject *RejectTaps
	// RejectLink, when non-empty, materializes the left side's misses
	// under this name (a designed reject link).
	RejectLink string

	// Materialize target name.
	Rel string

	// Taps are the statistic collectors on this node's output.
	Taps []Tap

	// Metrics holds the node's runtime counters after an instrumented
	// run; the engines leave it zero unless metrics collection is on.
	Metrics Metrics
}

// BlockPlan is the compiled physical plan of one optimizable block.
type BlockPlan struct {
	Block *workflow.Block
	// Tree is the join tree as executed (the initial tree or the
	// optimizer's override); nil for join-free blocks.
	Tree *workflow.JoinTree
	// Nodes is the topological execution order: every input chain in input
	// order, then joins bottom-up, then top operators.
	Nodes []*Node
	// Chains holds each input's nodes: Chains[i][d] produces chain point
	// depth d of input i (Chains[i][0] is the scan).
	Chains [][]*Node
	// JoinRoot is the root of the join DAG (a chain-end node when the tree
	// is a single leaf; nil for join-free blocks).
	JoinRoot *Node
	// TopNodes are the pinned top operators in execution order.
	TopNodes []*Node
	// Root is the block's final node; its output crosses the boundary.
	Root *Node
}

// Plan is the compiled physical plan of a whole workflow, one BlockPlan per
// optimizable block in topological order.
type Plan struct {
	An     *workflow.Analysis
	Blocks []*BlockPlan
}
