package physical_test

import (
	"strings"
	"testing"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/suite"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// compileSuite compiles one suite workflow's physical plan instrumented
// with every observable statistic.
func compileSuite(t *testing.T, id int) (*physical.Plan, *css.Result) {
	t.Helper()
	w := suite.MustGet(id)
	an, err := w.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	plan, err := physical.Compile(an, w.Data(0.002), physical.Options{
		Res: res, Observe: res.ObservableStats(),
	})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return plan, res
}

// TestCompileDeterministic pins the explain contract: compiling the same
// workflow twice renders the identical plan, for every suite workflow.
func TestCompileDeterministic(t *testing.T) {
	for _, w := range suite.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			a, _ := compileSuite(t, w.ID)
			b, _ := compileSuite(t, w.ID)
			if a.String() != b.String() {
				t.Errorf("nondeterministic plan rendering:\n%s\nvs\n%s", a, b)
			}
			if a.String() == "" {
				t.Error("empty plan rendering")
			}
		})
	}
}

// TestCompileStructure checks the structural invariants every executor
// relies on: topological node order, schema composition at joins, chain
// bookkeeping, and single attachment per observed statistic.
func TestCompileStructure(t *testing.T) {
	for _, w := range suite.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			plan, _ := compileSuite(t, w.ID)
			seen := map[stats.Key]string{} // stat key → node label
			for _, bp := range plan.Blocks {
				blk := bp.Block
				if len(bp.Chains) != len(blk.Inputs) {
					t.Fatalf("block %d: %d chains for %d inputs", blk.Index, len(bp.Chains), len(blk.Inputs))
				}
				for i, ch := range bp.Chains {
					if len(ch) != len(blk.Inputs[i].Ops)+1 {
						t.Errorf("block %d input %d: chain length %d, want %d",
							blk.Index, i, len(ch), len(blk.Inputs[i].Ops)+1)
					}
					// The logical Attrs list is an availability set; the
					// physical schema must stay within it.
					end := ch[len(ch)-1]
					if len(end.Attrs) == 0 || !subsetOf(end.Attrs, blk.Inputs[i].Attrs) {
						t.Errorf("block %d input %d: cooked schema %v escapes %v",
							blk.Index, i, end.Attrs, blk.Inputs[i].Attrs)
					}
				}
				if len(bp.Root.Attrs) == 0 || !subsetOf(bp.Root.Attrs, blk.OutAttrs) {
					t.Errorf("block %d: root schema %v escapes %v", blk.Index, bp.Root.Attrs, blk.OutAttrs)
				}
				for pos, n := range bp.Nodes {
					if n.ID != pos {
						t.Fatalf("block %d: node %q has ID %d at position %d", blk.Index, n.Label, n.ID, pos)
					}
					if n.Input != nil && n.Input.ID >= n.ID {
						t.Errorf("block %d: node %q consumes later node", blk.Index, n.Label)
					}
					if n.Kind == physical.OpHashJoin {
						if n.Left.ID >= n.ID || n.Right.ID >= n.ID {
							t.Errorf("block %d: join %q consumes later node", blk.Index, n.Label)
						}
						if len(n.Attrs) != len(n.Left.Attrs)+len(n.Right.Attrs) {
							t.Errorf("block %d: join %q schema arity %d, want %d",
								blk.Index, n.Label, len(n.Attrs), len(n.Left.Attrs)+len(n.Right.Attrs))
						}
						if n.LeftCol < 0 || n.LeftCol >= len(n.Left.Attrs) ||
							n.RightCol < 0 || n.RightCol >= len(n.Right.Attrs) {
							t.Errorf("block %d: join %q columns out of range", blk.Index, n.Label)
						}
					}
					for _, tap := range n.Taps {
						key := tap.Stat.Key()
						if prev, dup := seen[key]; dup {
							t.Errorf("block %d: statistic %v attached at both %q and %q",
								blk.Index, key, prev, n.Label)
						}
						seen[key] = n.Label
						for _, c := range tap.Cols {
							if c < 0 || c >= len(n.Attrs) {
								t.Errorf("block %d: tap %v column %d outside schema of %q",
									blk.Index, key, c, n.Label)
							}
						}
					}
				}
			}
			if len(seen) == 0 {
				t.Error("no taps attached anywhere")
			}
		})
	}
}

// subsetOf reports whether every attribute in got also appears in allowed.
func subsetOf(got, allowed []workflow.Attr) bool {
	set := map[workflow.Attr]bool{}
	for _, a := range allowed {
		set[a] = true
	}
	for _, a := range got {
		if !set[a] {
			return false
		}
	}
	return true
}

// TestCompileTapCoverage checks that every statistic an instrumented run is
// expected to collect (the old engines' contract) is wired somewhere in the
// plan: as a node tap, a reject singleton, or an auxiliary join.
func TestCompileTapCoverage(t *testing.T) {
	plan, res := compileSuite(t, 5) // wf05 exercises SE, chain and reject taps
	attached := map[stats.Key]bool{}
	for _, bp := range plan.Blocks {
		for _, n := range bp.Nodes {
			for _, tap := range n.Taps {
				attached[tap.Stat.Key()] = true
			}
			for _, rt := range []*physical.RejectTaps{n.LeftReject, n.RightReject} {
				if rt == nil {
					continue
				}
				for _, tap := range rt.Singles {
					attached[tap.Stat.Key()] = true
				}
				for _, aj := range rt.Aux {
					attached[aj.Stat.Key()] = true
				}
			}
		}
	}
	for _, s := range res.ObservableStats() {
		if !attached[s.Key()] {
			t.Errorf("observable statistic %v not attached anywhere", s.Key())
		}
	}
}

// TestExplainRendering spot-checks the printed plan: tap lines carry the
// paper's statistic notation and join nodes reference both children.
func TestExplainRendering(t *testing.T) {
	plan, _ := compileSuite(t, 3)
	out := plan.String()
	for _, want := range []string{"block 0:", "scan T1", "join ", "tap ", "⋈", "root "} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering misses %q:\n%s", want, out)
		}
	}
}
