package physical

import (
	"fmt"
	"io"
	"strings"

	"github.com/essential-stats/etlopt/internal/workflow"
)

// String renders the whole plan; see BlockPlan.Format for the layout. The
// output is deterministic: node order is the compiled execution order and
// tap order follows the selection's statistic order.
func (p *Plan) String() string {
	var b strings.Builder
	p.Format(&b)
	return b.String()
}

// Format writes the plan's blocks to w.
func (p *Plan) Format(w io.Writer) {
	for i, bp := range p.Blocks {
		if i > 0 {
			fmt.Fprintln(w)
		}
		bp.Format(w)
	}
}

// Format writes one block's physical plan: a header with the executed join
// tree, then one line per node in execution order with its operator, input
// references and output arity, then indented tap lines naming the observed
// statistics in the paper's notation.
func (bp *BlockPlan) Format(w io.Writer) {
	blk := bp.Block
	fmt.Fprintf(w, "block %d: %d input(s), %d join(s)", blk.Index, len(blk.Inputs), len(blk.Joins))
	if bp.Tree != nil {
		fmt.Fprintf(w, ", plan %s", bp.Tree.Render(blk))
	}
	fmt.Fprintln(w)
	for _, n := range bp.Nodes {
		fmt.Fprintf(w, "  n%02d %s%s  (%d cols)\n", n.ID, n.Label, refs(n), len(n.Attrs))
		for _, t := range n.Taps {
			fmt.Fprintf(w, "       tap %s %s\n", t.Stat.Kind, t.Stat.Label(blk))
		}
		for _, rt := range []*RejectTaps{n.LeftReject, n.RightReject} {
			if rt == nil {
				continue
			}
			side := "left"
			if rt == n.RightReject {
				side = "right"
			}
			fmt.Fprintf(w, "       reject %s (input %d, edge %d):%s\n", side, rt.Input, rt.Edge, rejectLine(blk, rt))
		}
		if n.RejectLink != "" {
			fmt.Fprintf(w, "       reject-link → %s\n", n.RejectLink)
		}
	}
	fmt.Fprintf(w, "  root n%02d → %s\n", bp.Root.ID, rootName(bp))
}

// refs renders a node's input references, e.g. "(n03)" or "(n03 ⋈ n01)".
func refs(n *Node) string {
	switch {
	case n.Kind == OpHashJoin:
		return fmt.Sprintf(" (n%02d ⋈ n%02d)", n.Left.ID, n.Right.ID)
	case n.Input != nil:
		return fmt.Sprintf(" (n%02d)", n.Input.ID)
	default:
		return ""
	}
}

// rejectLine renders one side's reject taps: the singleton statistics first,
// then the auxiliary union–division joins.
func rejectLine(blk *workflow.Block, rt *RejectTaps) string {
	var parts []string
	for _, t := range rt.Singles {
		parts = append(parts, fmt.Sprintf(" tap %s %s", t.Stat.Kind, t.Stat.Label(blk)))
	}
	for _, a := range rt.Aux {
		parts = append(parts, fmt.Sprintf(" aux⋈%s %s %s", blk.Inputs[a.Partner].Name, a.Stat.Kind, a.Stat.Label(blk)))
	}
	return strings.Join(parts, ";")
}

// NumTaps counts every tap attached anywhere in the block plan (node taps,
// reject singletons and auxiliary joins).
func (bp *BlockPlan) NumTaps() int {
	n := 0
	for _, nd := range bp.Nodes {
		n += len(nd.Taps)
		for _, rt := range []*RejectTaps{nd.LeftReject, nd.RightReject} {
			if rt != nil {
				n += len(rt.Singles) + len(rt.Aux)
			}
		}
	}
	return n
}

// NumTaps counts every tap attached anywhere in the plan.
func (p *Plan) NumTaps() int {
	n := 0
	for _, bp := range p.Blocks {
		n += bp.NumTaps()
	}
	return n
}

// rootName names what the block's output feeds: the terminal node's label.
func rootName(bp *BlockPlan) string {
	if bp.Block.Terminal != "" {
		return "boundary " + string(bp.Block.Terminal)
	}
	return "boundary"
}
