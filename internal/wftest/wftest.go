// Package wftest generates random but deterministic ETL workflows with
// matching synthetic data, for property-based testing across the library:
// tree-shaped join graphs, random pushed-down selections and transforms,
// and bounded join fan-out so materialized results stay small.
package wftest

import (
	"fmt"
	"math/rand"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// DB matches engine.DB structurally so test packages can convert without
// importing the engine (which would cycle through the engine's own tests).
type DB = map[string]*data.Table

// Options bound the generated workflows.
type Options struct {
	// MaxRelations caps the join width (default 5, minimum 2).
	MaxRelations int
	// MaxCard caps base relation cardinality (default 160).
	MaxCard int64
}

// Generate builds a random workflow, its catalog and its data from the
// seed. Equal seeds produce identical results.
func Generate(seed int64, opt Options) (*workflow.Graph, *workflow.Catalog, DB) {
	if opt.MaxRelations < 2 {
		opt.MaxRelations = 5
	}
	if opt.MaxCard <= 0 {
		opt.MaxCard = 160
	}
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(opt.MaxRelations-1)
	cat := &workflow.Catalog{}
	db := DB{}
	b := workflow.NewBuilder(fmt.Sprintf("rand%d", seed))

	// Relation i joins its tree parent on the shared key column "k<i>".
	parent := make([]int, n)
	edgeDom := make([]int64, n)
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
		edgeDom[i] = int64(25 + rng.Intn(60))
	}
	specs := make([]data.TableSpec, n)
	for i := 0; i < n; i++ {
		spec := data.TableSpec{
			Rel:  fmt.Sprintf("R%d", i),
			Card: 40 + rng.Int63n(opt.MaxCard-40+1),
		}
		spec.Columns = append(spec.Columns, data.ColumnSpec{Name: "id", Serial: true})
		if i > 0 {
			spec.Columns = append(spec.Columns, data.ColumnSpec{
				Name: fmt.Sprintf("k%d", i), Domain: edgeDom[i], Skew: 1 + rng.Float64()*0.3,
			})
		}
		for j := i + 1; j < n; j++ {
			if parent[j] == i {
				spec.Columns = append(spec.Columns, data.ColumnSpec{
					Name: fmt.Sprintf("k%d", j), Domain: edgeDom[j], Skew: 1 + rng.Float64()*0.3,
				})
			}
		}
		spec.Columns = append(spec.Columns, data.ColumnSpec{Name: "v", Domain: 30, Skew: 1.3})
		specs[i] = spec
	}
	for i, spec := range specs {
		tbl := data.Generate(spec, seed*31+int64(i))
		db[spec.Rel] = tbl
		cat.Relations = append(cat.Relations, data.CatalogEntry(tbl, spec))
	}

	// Source chains.
	nodes := make([]workflow.NodeID, n)
	for i := 0; i < n; i++ {
		rel := fmt.Sprintf("R%d", i)
		cur := b.Source(rel)
		if rng.Intn(3) == 0 {
			cur = b.Select(cur, workflow.Predicate{
				Attr:  workflow.Attr{Rel: rel, Col: "v"},
				Op:    workflow.CmpLe,
				Const: int64(10 + rng.Intn(20)),
			})
		}
		if rng.Intn(4) == 0 {
			out := workflow.Attr{Rel: "X" + rel, Col: "t"}
			cur = b.Transform(cur, "bucket10", out, workflow.Attr{Rel: rel, Col: "v"})
			cat.AddDerived(out, 10)
		}
		nodes[i] = cur
	}

	// Join in a randomized tree-respecting order.
	joined := map[int]bool{0: true}
	cur := nodes[0]
	for len(joined) < n {
		for i := 1; i < n; i++ {
			if joined[i] || !joined[parent[i]] {
				continue
			}
			if rng.Intn(2) == 0 && len(joined) < n-1 {
				continue
			}
			pa := workflow.Attr{Rel: fmt.Sprintf("R%d", parent[i]), Col: fmt.Sprintf("k%d", i)}
			ca := workflow.Attr{Rel: fmt.Sprintf("R%d", i), Col: fmt.Sprintf("k%d", i)}
			cur = b.Join(cur, nodes[i], pa, ca)
			joined[i] = true
		}
	}
	// Occasionally add a group-by boundary followed by one more join, so
	// random workflows exercise the cross-block rules too.
	if rng.Intn(3) == 0 {
		g := b.GroupBy(cur, workflow.Attr{Rel: "R0", Col: "v"})
		extraSpec := data.TableSpec{Rel: "Band", Card: 20 + rng.Int63n(40), Columns: []data.ColumnSpec{
			{Name: "v", Domain: 30, Skew: 1.2},
			{Name: "w", Domain: 10},
		}}
		tbl := data.Generate(extraSpec, seed*97+7)
		db["Band"] = tbl
		cat.Relations = append(cat.Relations, data.CatalogEntry(tbl, extraSpec))
		band := b.Source("Band")
		cur = b.Join(g, band, workflow.Attr{Rel: "R0", Col: "v"}, workflow.Attr{Rel: "Band", Col: "v"})
	}
	b.Sink(cur, "dw")
	return b.Graph(), cat, db
}
