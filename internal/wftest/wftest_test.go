package wftest

import (
	"testing"

	"github.com/essential-stats/etlopt/internal/workflow"
)

func TestGenerateValidAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g1, cat1, db1 := Generate(seed, Options{})
		if err := g1.Validate(); err != nil {
			t.Fatalf("seed %d: invalid workflow: %v", seed, err)
		}
		if _, err := workflow.Analyze(g1, cat1); err != nil {
			t.Fatalf("seed %d: Analyze: %v", seed, err)
		}
		g2, _, db2 := Generate(seed, Options{})
		if len(g1.Nodes) != len(g2.Nodes) {
			t.Fatalf("seed %d: node count differs across runs", seed)
		}
		for rel, t1 := range db1 {
			t2 := db2[rel]
			if t2 == nil || t1.Card() != t2.Card() {
				t.Fatalf("seed %d: table %s differs", seed, rel)
			}
		}
	}
}

func TestGenerateBounds(t *testing.T) {
	g, _, db := Generate(7, Options{MaxRelations: 3, MaxCard: 50})
	srcs := 0
	for _, n := range g.Nodes {
		if n.Kind == workflow.KindSource {
			srcs++
		}
	}
	if srcs > 4 { // 3 relations + optional Band
		t.Fatalf("sources = %d, above bound", srcs)
	}
	for rel, tbl := range db {
		if rel != "Band" && tbl.Card() > 50 {
			t.Fatalf("%s has %d rows, above MaxCard", rel, tbl.Card())
		}
	}
}
