// Package optimizer implements the final step of the paper's loop (Section
// 3.2.7): classical cost-based join-order optimization per optimizable
// block, driven by the cardinalities the estimation layer derives from the
// observed statistics. Because the derived cardinalities are exact, the
// optimizer costs every alternative plan exactly — the property the whole
// statistics-selection framework exists to establish.
package optimizer

import (
	"fmt"
	"math"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// CardSource supplies SE cardinalities; package estimate's Estimator
// satisfies it.
type CardSource interface {
	CardOf(block int, se expr.Set) (int64, error)
}

// CostModel prices a join given input and output cardinalities.
type CostModel int

// Supported cost models.
const (
	// Cout sums the cardinalities of all intermediate results — the
	// classical C_out metric, which isolates join-order quality from
	// physical details.
	Cout CostModel = iota
	// HashJoin prices each join as build + probe + output
	// (|build| + |probe| + |out|), a closer proxy for a batch ETL engine.
	HashJoin
)

// Plan is an optimized plan for one block.
type Plan struct {
	Block int
	// Tree is the chosen join order (nil for join-free blocks).
	Tree *workflow.JoinTree
	// Cost is the plan's estimated cost under the chosen model.
	Cost float64
	// InitialCost is the user-designed plan's cost, for comparison.
	InitialCost float64
}

// Result is the optimization outcome for a whole workflow.
type Result struct {
	Plans map[int]*Plan
	// TotalCost and TotalInitialCost aggregate across blocks.
	TotalCost, TotalInitialCost float64
	// Fallbacks lists the blocks (ascending) left on their initial plans
	// because their cardinalities could not be derived — the degraded-run
	// outcome when observation failures leave SEs uncovered and
	// Options.FallbackInitial is set. Their cost contribution is zero on
	// both sides (unknown, not free).
	Fallbacks []int
}

// Trees returns the per-block join trees in the shape engine.RunPlans
// expects.
func (r *Result) Trees() map[int]*workflow.JoinTree {
	out := make(map[int]*workflow.JoinTree, len(r.Plans))
	for b, p := range r.Plans {
		out[b] = p.Tree
	}
	return out
}

// Options tune the optimizer's plan space.
type Options struct {
	// LeftDeepOnly restricts the search to left-deep trees (the right side
	// of every join is a single input) — the plan shape fully pipelined
	// ETL engines prefer, since only single-relation build sides are
	// materialized.
	LeftDeepOnly bool
	// FallbackInitial keeps a block on its user-designed initial plan
	// instead of failing the whole optimization when its cardinalities
	// cannot be derived (statistics lost to observation failures). Fallback
	// blocks are reported in Result.Fallbacks.
	FallbackInitial bool
	// Only restricts optimization to the named block indices; the others
	// are skipped entirely (absent from Result.Plans and the totals). The
	// mid-run adaptive path sets it to re-optimize just the not-yet-executed
	// cone. Nil optimizes every block.
	Only map[int]bool
}

// Optimize chooses the cheapest join order for every block by dynamic
// programming over connected sub-expressions (the same plan space the CSS
// generation enumerated), costing each composition with cardinalities from
// the card source.
func Optimize(res *css.Result, cards CardSource, model CostModel) (*Result, error) {
	return OptimizeOpts(res, cards, model, Options{})
}

// OptimizeOpts is Optimize with explicit plan-space options.
func OptimizeOpts(res *css.Result, cards CardSource, model CostModel, opt Options) (*Result, error) {
	out := &Result{Plans: make(map[int]*Plan)}
	for bi, sp := range res.Spaces {
		if opt.Only != nil && !opt.Only[bi] {
			continue
		}
		blk := res.Analysis.Blocks[bi]
		p, err := optimizeBlock(bi, blk, sp, cards, model, opt)
		if err != nil {
			if !opt.FallbackInitial {
				return nil, fmt.Errorf("block %d: %w", bi, err)
			}
			p = &Plan{Block: bi, Tree: blk.Initial}
			out.Fallbacks = append(out.Fallbacks, bi)
		}
		out.Plans[bi] = p
		out.TotalCost += p.Cost
		out.TotalInitialCost += p.InitialCost
	}
	return out, nil
}

func optimizeBlock(bi int, blk *workflow.Block, sp *expr.Space, cards CardSource, model CostModel, opt Options) (*Plan, error) {
	if blk.Initial == nil || blk.RejectPinned {
		// Join-free or pinned blocks admit exactly one plan.
		cost := 0.0
		if blk.Initial != nil {
			c, err := treeCost(bi, blk, sp, blk.Initial, cards, model)
			if err != nil {
				return nil, err
			}
			cost = c
		}
		return &Plan{Block: bi, Tree: blk.Initial, Cost: cost, InitialCost: cost}, nil
	}
	card := func(se expr.Set) (float64, error) {
		c, err := cards.CardOf(bi, se)
		if err != nil {
			return 0, err
		}
		return float64(c), nil
	}
	type entry struct {
		cost float64
		tree *workflow.JoinTree
	}
	best := make(map[expr.Set]entry)
	for _, se := range sp.SEs { // sorted by size: DP order
		if se.Len() == 1 {
			best[se] = entry{cost: 0, tree: &workflow.JoinTree{Leaf: se.Lowest(), Join: -1}}
			continue
		}
		cur := entry{cost: math.Inf(1)}
		outCard, err := card(se)
		if err != nil {
			return nil, err
		}
		for _, p := range sp.Plans[se] {
			left, right := p.Left, p.Right
			if opt.LeftDeepOnly {
				// Keep only compositions with a single-input probe side;
				// either half may play that role (joins commute).
				switch {
				case right.Len() == 1:
				case left.Len() == 1:
					left, right = right, left
				default:
					continue
				}
			}
			l, okL := best[left]
			r, okR := best[right]
			if !okL || !okR {
				continue
			}
			lCard, err := card(left)
			if err != nil {
				return nil, err
			}
			rCard, err := card(right)
			if err != nil {
				return nil, err
			}
			c := l.cost + r.cost + joinCost(model, lCard, rCard, outCard)
			// Strict < keeps the earliest enumerated plan on cost ties;
			// sp.Plans order is deterministic (SEs sorted, subset splits
			// ordered), so the chosen tree is stable across runs.
			if c < cur.cost {
				cur = entry{
					cost: c,
					tree: &workflow.JoinTree{Leaf: -1, Join: p.Edge, Left: l.tree, Right: r.tree},
				}
			}
		}
		if math.IsInf(cur.cost, 1) {
			return nil, fmt.Errorf("no plan for SE %s", se.Label(blk))
		}
		best[se] = cur
	}
	full := best[sp.Full()]
	initCost, err := treeCost(bi, blk, sp, blk.Initial, cards, model)
	if err != nil {
		return nil, err
	}
	return &Plan{Block: bi, Tree: full.tree, Cost: full.cost, InitialCost: initCost}, nil
}

// treeCost prices a concrete join tree.
func treeCost(bi int, blk *workflow.Block, sp *expr.Space, t *workflow.JoinTree, cards CardSource, model CostModel) (float64, error) {
	if t == nil || t.IsLeaf() {
		return 0, nil
	}
	lc, err := treeCost(bi, blk, sp, t.Left, cards, model)
	if err != nil {
		return 0, err
	}
	rc, err := treeCost(bi, blk, sp, t.Right, cards, model)
	if err != nil {
		return 0, err
	}
	lSet := expr.NewSet(t.Left.Inputs()...)
	rSet := expr.NewSet(t.Right.Inputs()...)
	lCard, err := cards.CardOf(bi, lSet)
	if err != nil {
		return 0, err
	}
	rCard, err := cards.CardOf(bi, rSet)
	if err != nil {
		return 0, err
	}
	oCard, err := cards.CardOf(bi, lSet.Union(rSet))
	if err != nil {
		return 0, err
	}
	return lc + rc + joinCost(model, float64(lCard), float64(rCard), float64(oCard)), nil
}

func joinCost(model CostModel, left, right, out float64) float64 {
	switch model {
	case HashJoin:
		build := math.Min(left, right)
		probe := math.Max(left, right)
		return build*1.5 + probe + out
	default: // Cout
		return out
	}
}
