package optimizer

import (
	"fmt"
	"testing"

	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/estimate"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/wftest"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// TestDPOptimalAgainstEnumerationFuzz verifies the dynamic program against
// exhaustive plan enumeration: on random workflows with exact learned
// cardinalities, the DP's chosen cost must match the minimum over every
// valid join tree, for both cost models.
func TestDPOptimalAgainstEnumerationFuzz(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g, cat, db := wftest.Generate(seed, wftest.Options{MaxRelations: 4})
			an, err := workflow.Analyze(g, cat)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			res, err := css.Generate(an, css.DefaultOptions())
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			coster := costmodel.NewMemoryCoster(res, an.Cat)
			sel, err := selector.Select(res, coster, selector.Options{Method: selector.MethodGreedy})
			if err != nil {
				t.Fatalf("Select: %v", err)
			}
			run, err := engine.New(an, db, nil).RunObserved(res, sel.Observe)
			if err != nil {
				t.Fatalf("RunObserved: %v", err)
			}
			est := estimate.New(res, run.Observed)
			for _, model := range []CostModel{Cout, HashJoin} {
				out, err := Optimize(res, est, model)
				if err != nil {
					t.Fatalf("Optimize: %v", err)
				}
				for bi, sp := range res.Spaces {
					blk := an.Blocks[bi]
					if blk.Initial == nil || blk.RejectPinned {
						continue
					}
					best, count := enumerateMin(t, bi, blk, sp, est, model)
					got := out.Plans[bi].Cost
					if diff := got - best; diff > 1e-6 || diff < -1e-6 {
						t.Errorf("block %d model %v: DP cost %v, enumeration min %v over %d trees",
							bi, model, got, best, count)
					}
				}
			}
		})
	}
}

// enumerateMin exhaustively builds every join tree over the block's plan
// space and returns the minimum cost.
func enumerateMin(t *testing.T, bi int, blk *workflow.Block, sp *expr.Space, est *estimate.Estimator, model CostModel) (float64, int) {
	t.Helper()
	var trees func(se expr.Set) []*workflow.JoinTree
	memo := make(map[expr.Set][]*workflow.JoinTree)
	trees = func(se expr.Set) []*workflow.JoinTree {
		if ts, ok := memo[se]; ok {
			return ts
		}
		var out []*workflow.JoinTree
		if se.Len() == 1 {
			out = []*workflow.JoinTree{{Leaf: se.Lowest(), Join: -1}}
		} else {
			for _, p := range sp.Plans[se] {
				for _, lt := range trees(p.Left) {
					for _, rt := range trees(p.Right) {
						out = append(out, &workflow.JoinTree{Leaf: -1, Join: p.Edge, Left: lt, Right: rt})
					}
				}
			}
		}
		memo[se] = out
		return out
	}
	all := trees(sp.Full())
	if len(all) == 0 {
		t.Fatalf("block %d: no trees enumerated", bi)
	}
	best := -1.0
	for _, tree := range all {
		c, err := treeCost(bi, blk, sp, tree, est, model)
		if err != nil {
			t.Fatalf("treeCost: %v", err)
		}
		if best < 0 || c < best {
			best = c
		}
	}
	return best, len(all)
}

// TestLeftDeepOnlyNeverBeatsBushy: restricting the plan space can only keep
// or worsen the optimum, never improve it; and on star joins (where
// left-deep is complete) the two coincide.
func TestLeftDeepOnlyNeverBeatsBushy(t *testing.T) {
	for seed := int64(400); seed < 415; seed++ {
		g, cat, db := wftest.Generate(seed, wftest.Options{})
		an, err := workflow.Analyze(g, cat)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := css.Generate(an, css.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		coster := costmodel.NewMemoryCoster(res, an.Cat)
		sel, err := selector.Select(res, coster, selector.Options{Method: selector.MethodGreedy})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		run, err := engine.New(an, engine.DB(db), nil).RunObserved(res, sel.Observe)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		est := estimate.New(res, run.Observed)
		bushy, err := Optimize(res, est, Cout)
		if err != nil {
			t.Fatalf("seed %d bushy: %v", seed, err)
		}
		ld, err := OptimizeOpts(res, est, Cout, Options{LeftDeepOnly: true})
		if err != nil {
			t.Fatalf("seed %d left-deep: %v", seed, err)
		}
		if ld.TotalCost < bushy.TotalCost-1e-9 {
			t.Errorf("seed %d: left-deep %v beat bushy %v", seed, ld.TotalCost, bushy.TotalCost)
		}
	}
}
