package optimizer

import (
	"testing"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// fixedCards is a CardSource with hand-set cardinalities.
type fixedCards map[expr.Set]int64

func (f fixedCards) CardOf(block int, se expr.Set) (int64, error) {
	if block != 0 {
		return 1, nil
	}
	if v, ok := f[se]; ok {
		return v, nil
	}
	return 1, nil
}

// chain3 builds O-P-C with the initial (bad) plan (O⋈P)⋈C.
func chain3(t *testing.T) *css.Result {
	t.Helper()
	cat := &workflow.Catalog{Relations: []*workflow.Relation{
		{Name: "O", Card: 1000, Columns: []workflow.Column{{Name: "p", Domain: 10}, {Name: "c", Domain: 10}}},
		{Name: "P", Card: 100, Columns: []workflow.Column{{Name: "p", Domain: 10}}},
		{Name: "C", Card: 100, Columns: []workflow.Column{{Name: "c", Domain: 10}}},
	}}
	b := workflow.NewBuilder("chain3")
	o := b.Source("O")
	p := b.Source("P")
	c := b.Source("C")
	j1 := b.Join(o, p, workflow.Attr{Rel: "O", Col: "p"}, workflow.Attr{Rel: "P", Col: "p"})
	j2 := b.Join(j1, c, workflow.Attr{Rel: "O", Col: "c"}, workflow.Attr{Rel: "C", Col: "c"})
	b.Sink(j2, "dw")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.Options{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return res
}

func TestOptimizePicksCheaperOrder(t *testing.T) {
	res := chain3(t)
	blk := res.Analysis.Blocks[0]
	var oI, pI, cI int
	for i, in := range blk.Inputs {
		switch in.SourceRel {
		case "O":
			oI = i
		case "P":
			pI = i
		case "C":
			cI = i
		}
	}
	full := res.Space(0).Full()
	// O⋈P is huge (100000), O⋈C tiny (10): the optimizer must flip.
	cards := fixedCards{
		expr.NewSet(oI):     1000,
		expr.NewSet(pI):     100,
		expr.NewSet(cI):     100,
		expr.NewSet(oI, pI): 100000,
		expr.NewSet(oI, cI): 10,
		full:                10,
	}
	out, err := Optimize(res, cards, Cout)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	p := out.Plans[0]
	if p.Cost >= p.InitialCost {
		t.Fatalf("optimized cost %v not better than initial %v", p.Cost, p.InitialCost)
	}
	if p.Cost != 10+10 { // |OC| + |OPC| under Cout
		t.Fatalf("optimized cost = %v, want 20", p.Cost)
	}
	// The chosen tree joins O with C first.
	firstJoin := p.Tree
	for !firstJoin.Left.IsLeaf() {
		firstJoin = firstJoin.Left
	}
	lSet := expr.NewSet(p.Tree.Left.Inputs()...)
	if lSet != expr.NewSet(oI, cI) && lSet != expr.NewSet(pI) {
		t.Logf("tree: %s", p.Tree.Render(blk))
	}
	inner := expr.NewSet(firstJoin.Inputs()...)
	_ = inner
}

func TestOptimizeInitialAlreadyBest(t *testing.T) {
	res := chain3(t)
	blk := res.Analysis.Blocks[0]
	var oI, pI, cI int
	for i, in := range blk.Inputs {
		switch in.SourceRel {
		case "O":
			oI = i
		case "P":
			pI = i
		case "C":
			cI = i
		}
	}
	cards := fixedCards{
		expr.NewSet(oI):     1000,
		expr.NewSet(pI):     100,
		expr.NewSet(cI):     100,
		expr.NewSet(oI, pI): 10,
		expr.NewSet(oI, cI): 100000,
		res.Space(0).Full(): 10,
	}
	out, err := Optimize(res, cards, Cout)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	p := out.Plans[0]
	if p.Cost != p.InitialCost {
		t.Fatalf("initial plan is optimal; cost %v vs initial %v", p.Cost, p.InitialCost)
	}
}

// TestOptimizeDeterministicUnderTies forces every plan of the block to
// cost exactly the same (all cardinalities 1) and checks that repeated
// optimization returns the identical tree — the tie must break on plan
// enumeration order, not on map iteration or other incidental state.
func TestOptimizeDeterministicUnderTies(t *testing.T) {
	res := chain3(t)
	cards := fixedCards{} // every SE defaults to card 1: all plans tie
	var prev string
	for trial := 0; trial < 5; trial++ {
		out, err := Optimize(res, cards, Cout)
		if err != nil {
			t.Fatalf("Optimize: %v", err)
		}
		got := out.Plans[0].Tree.String()
		if trial == 0 {
			prev = got
			continue
		}
		if got != prev {
			t.Fatalf("trial %d picked %s, first trial picked %s", trial, got, prev)
		}
	}
}

func TestOptimizeHashJoinModel(t *testing.T) {
	res := chain3(t)
	cards := fixedCards{res.Space(0).Full(): 10}
	out, err := Optimize(res, cards, HashJoin)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if out.Plans[0].Cost <= 0 {
		t.Fatalf("hash-join cost = %v, want positive", out.Plans[0].Cost)
	}
	trees := out.Trees()
	if trees[0] == nil {
		t.Fatal("Trees() lost the plan")
	}
}

func TestOptimizeRejectPinnedBlock(t *testing.T) {
	cat := &workflow.Catalog{Relations: []*workflow.Relation{
		{Name: "A", Card: 10, Columns: []workflow.Column{{Name: "k", Domain: 5}}},
		{Name: "B", Card: 10, Columns: []workflow.Column{{Name: "k", Domain: 5}}},
	}}
	b := workflow.NewBuilder("pinned")
	a := b.Source("A")
	bb := b.Source("B")
	j := b.RejectJoin(a, bb, workflow.Attr{Rel: "A", Col: "k"}, workflow.Attr{Rel: "B", Col: "k"})
	b.Sink(j, "out")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.Options{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	out, err := Optimize(res, fixedCards{}, Cout)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	p := out.Plans[0]
	if p.Tree != an.Blocks[0].Initial {
		t.Fatal("pinned block must keep its initial tree")
	}
}

// TestOptimizeOnly pins the partial-workflow mode the adaptive path uses:
// with Only set, unnamed blocks are skipped entirely — absent from Plans
// and from the cost totals.
func TestOptimizeOnly(t *testing.T) {
	res := chain3(t)
	all, err := OptimizeOpts(res, fixedCards{}, Cout, Options{})
	if err != nil {
		t.Fatalf("OptimizeOpts: %v", err)
	}
	only, err := OptimizeOpts(res, fixedCards{}, Cout, Options{Only: map[int]bool{0: true}})
	if err != nil {
		t.Fatalf("OptimizeOpts(Only): %v", err)
	}
	if len(only.Plans) != 1 || only.Plans[0] == nil {
		t.Fatalf("Only={0} produced plans for %d blocks, want 1", len(only.Plans))
	}
	if got, want := only.Plans[0].Tree.Render(res.Analysis.Blocks[0]), all.Plans[0].Tree.Render(res.Analysis.Blocks[0]); got != want {
		t.Fatalf("Only changed block 0's plan:\n%s\nvs\n%s", got, want)
	}
	none, err := OptimizeOpts(res, fixedCards{}, Cout, Options{Only: map[int]bool{}})
	if err != nil {
		t.Fatalf("OptimizeOpts(empty Only): %v", err)
	}
	if len(none.Plans) != 0 || none.TotalCost != 0 {
		t.Fatalf("empty Only still optimized: %d plans, cost %v", len(none.Plans), none.TotalCost)
	}
}
