// Package ilp solves 0–1 integer linear programs by LP-based branch and
// bound, with support for lazy constraints: when the relaxation produces an
// integral candidate, a caller-supplied callback may reject it and supply
// globally valid cutting planes. The statistics-selection model of Section
// 5.2 of the paper needs this hook because its covering constraints admit
// circularly-supported integral solutions that are not genuine derivations.
package ilp

import (
	"fmt"
	"math"
	"time"

	"github.com/essential-stats/etlopt/internal/lp"
)

// Model is a linear program plus a set of binary variables.
type Model struct {
	// LP is the base relaxation (all rows globally valid).
	LP *lp.Problem
	// Binary lists variable indexes constrained to {0,1}. Bounds xᵢ ≤ 1
	// are added automatically.
	Binary []int
}

// Options tune the search.
type Options struct {
	// MaxNodes caps the number of branch-and-bound nodes (0 = 100000).
	MaxNodes int
	// Timeout caps wall-clock time (0 = none).
	Timeout time.Duration
	// Incumbent optionally seeds an initial feasible objective bound.
	Incumbent float64
	// HasIncumbent marks Incumbent as valid.
	HasIncumbent bool
	// OnIntegral is consulted whenever the relaxation yields integral
	// binaries. It may accept the candidate, or reject it and return
	// globally valid cut rows to add; rejection without cuts discards the
	// candidate node. A nil callback accepts every integral candidate.
	OnIntegral func(x []float64) (accept bool, cuts []lp.Row)
}

// Status summarizes a solve.
type Status int

// Solve outcomes.
const (
	// Optimal: the returned solution is proven optimal.
	Optimal Status = iota
	// Feasible: a solution was found but the node or time budget expired
	// before proving optimality.
	Feasible
	// Infeasible: no 0-1 assignment satisfies the constraints.
	Infeasible
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Result is the outcome of a branch-and-bound run.
type Result struct {
	Status Status
	// X is the best solution found (nil when none).
	X []float64
	// Obj is its objective value.
	Obj float64
	// Nodes is the number of explored nodes.
	Nodes int
	// Cuts is the number of lazy cuts added.
	Cuts int
}

const intTol = 1e-6

// Solve runs branch and bound on the model.
func Solve(m *Model, opt Options) (*Result, error) {
	base := &lp.Problem{NumVars: m.LP.NumVars, C: m.LP.C}
	base.Rows = append(base.Rows, m.LP.Rows...)
	isBin := make(map[int]bool, len(m.Binary))
	for _, j := range m.Binary {
		if j < 0 || j >= base.NumVars {
			return nil, fmt.Errorf("ilp: binary variable %d out of range", j)
		}
		if !isBin[j] {
			base.AddRow(lp.LE, 1, map[int]float64{j: 1})
		}
		isBin[j] = true
	}
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 100000
	}
	deadline := time.Time{}
	if opt.Timeout > 0 {
		deadline = time.Now().Add(opt.Timeout)
	}

	res := &Result{Status: Infeasible, Obj: math.Inf(1)}
	if opt.HasIncumbent {
		res.Obj = opt.Incumbent
	}

	type node struct {
		fixed map[int]float64
	}
	stack := []node{{fixed: map[int]float64{}}}
	exhausted := false

	for len(stack) > 0 {
		if res.Nodes >= maxNodes || (!deadline.IsZero() && time.Now().After(deadline)) {
			exhausted = true
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Nodes++

	resolve:
		prob := &lp.Problem{NumVars: base.NumVars, C: base.C}
		prob.Rows = append(prob.Rows, base.Rows...)
		for j, v := range nd.fixed {
			prob.AddRow(lp.EQ, v, map[int]float64{j: 1})
		}
		sol, err := lp.Solve(prob)
		if err != nil {
			return nil, err
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			return nil, fmt.Errorf("ilp: relaxation unbounded")
		case lp.IterLimit:
			return nil, fmt.Errorf("ilp: relaxation hit pivot limit")
		}
		if sol.Obj >= res.Obj-1e-9 {
			continue // bound: cannot beat incumbent
		}
		// Find the most fractional binary.
		branch := -1
		worst := intTol
		for _, j := range m.Binary {
			f := math.Abs(sol.X[j] - math.Round(sol.X[j]))
			if f > worst {
				worst = f
				branch = j
			}
		}
		if branch < 0 {
			// Integral candidate.
			if opt.OnIntegral != nil {
				accept, cuts := opt.OnIntegral(sol.X)
				if !accept {
					if len(cuts) == 0 {
						continue
					}
					base.Rows = append(base.Rows, cuts...)
					res.Cuts += len(cuts)
					goto resolve
				}
			}
			res.X = append([]float64(nil), sol.X...)
			res.Obj = sol.Obj
			res.Status = Feasible
			continue
		}
		// Branch: explore the rounded side last so it pops first.
		up := map[int]float64{branch: 1}
		down := map[int]float64{branch: 0}
		for j, v := range nd.fixed {
			up[j] = v
			down[j] = v
		}
		if sol.X[branch] >= 0.5 {
			stack = append(stack, node{fixed: down}, node{fixed: up})
		} else {
			stack = append(stack, node{fixed: up}, node{fixed: down})
		}
	}

	if res.X != nil {
		if exhausted {
			res.Status = Feasible
		} else {
			res.Status = Optimal
		}
	} else if opt.HasIncumbent && !exhausted {
		// The seeded incumbent is optimal: nothing in the tree beat it.
		res.Status = Optimal
	}
	return res, nil
}
