package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/essential-stats/etlopt/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 10x0+13x1+7x2 s.t. 3x0+4x1+2x2 <= 6 (min of negation).
	// Best: x0+x2 (weight 5, value 17)? x1+x2 = weight 6, value 20. → 20.
	p := &lp.Problem{NumVars: 3, C: []float64{-10, -13, -7}}
	p.AddRow(lp.LE, 6, map[int]float64{0: 3, 1: 4, 2: 2})
	res, err := Solve(&Model{LP: p, Binary: []int{0, 1, 2}}, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != Optimal || math.Abs(res.Obj+20) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want optimal -20", res.Status, res.Obj)
	}
	if res.X[1] < 0.5 || res.X[2] < 0.5 || res.X[0] > 0.5 {
		t.Fatalf("x = %v, want [0 1 1]", res.X)
	}
}

func TestSetCoverIntegrality(t *testing.T) {
	// The LP relaxation of this cover is fractional (1.5); the ILP must
	// reach 2.
	p := &lp.Problem{NumVars: 3, C: []float64{1, 1, 1}}
	p.AddRow(lp.GE, 1, map[int]float64{0: 1, 2: 1})
	p.AddRow(lp.GE, 1, map[int]float64{0: 1, 1: 1})
	p.AddRow(lp.GE, 1, map[int]float64{1: 1, 2: 1})
	res, err := Solve(&Model{LP: p, Binary: []int{0, 1, 2}}, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != Optimal || math.Abs(res.Obj-2) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want optimal 2", res.Status, res.Obj)
	}
}

func TestInfeasible(t *testing.T) {
	p := &lp.Problem{NumVars: 2, C: []float64{1, 1}}
	p.AddRow(lp.GE, 3, map[int]float64{0: 1, 1: 1}) // x+y >= 3 with x,y binary
	res, err := Solve(&Model{LP: p, Binary: []int{0, 1}}, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestOnIntegralCuts(t *testing.T) {
	// min x0+x1 s.t. x0+x1 >= 1. The callback rejects any solution not
	// containing x1, forcing a cut x1 >= 1.
	p := &lp.Problem{NumVars: 2, C: []float64{1, 2}}
	p.AddRow(lp.GE, 1, map[int]float64{0: 1, 1: 1})
	rejected := 0
	res, err := Solve(&Model{LP: p, Binary: []int{0, 1}}, Options{
		OnIntegral: func(x []float64) (bool, []lp.Row) {
			if x[1] < 0.5 {
				rejected++
				return false, []lp.Row{{Coef: map[int]float64{1: 1}, Op: lp.GE, RHS: 1}}
			}
			return true, nil
		},
	})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.X[1] < 0.5 {
		t.Fatalf("x = %v, want x1 = 1", res.X)
	}
	if rejected == 0 {
		t.Fatal("callback never rejected; cut path untested")
	}
	if res.Cuts == 0 {
		t.Fatal("no cuts recorded")
	}
}

func TestIncumbentPruning(t *testing.T) {
	// Seeding the optimal objective as incumbent: search proves optimality
	// without finding a better solution; X stays nil but status optimal.
	p := &lp.Problem{NumVars: 2, C: []float64{1, 1}}
	p.AddRow(lp.GE, 2, map[int]float64{0: 1, 1: 1})
	res, err := Solve(&Model{LP: p, Binary: []int{0, 1}}, Options{Incumbent: 2, HasIncumbent: true})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != Optimal || res.X != nil {
		t.Fatalf("status=%v X=%v, want optimal with nil X (incumbent stands)", res.Status, res.X)
	}
}

func TestNodeLimit(t *testing.T) {
	// A tiny limit must stop early and report the incumbent found so far
	// (or infeasible if none).
	p := &lp.Problem{NumVars: 4, C: []float64{1, 1, 1, 1}}
	p.AddRow(lp.GE, 2, map[int]float64{0: 1, 1: 1, 2: 1, 3: 1})
	p.AddRow(lp.GE, 1, map[int]float64{0: 1, 1: 1})
	res, err := Solve(&Model{LP: p, Binary: []int{0, 1, 2, 3}}, Options{MaxNodes: 1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Nodes > 1 {
		t.Fatalf("nodes = %d, want <= 1", res.Nodes)
	}
	_ = res.Status // either feasible or infeasible depending on first node
}

func TestRandomVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 6
		p := &lp.Problem{NumVars: n, C: make([]float64, n)}
		for j := range p.C {
			p.C[j] = float64(rng.Intn(20) + 1)
		}
		// Three random covering rows.
		var rows [][]int
		for r := 0; r < 3; r++ {
			var members []int
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					members = append(members, j)
				}
			}
			if len(members) == 0 {
				members = []int{rng.Intn(n)}
			}
			coef := map[int]float64{}
			for _, j := range members {
				coef[j] = 1
			}
			p.AddRow(lp.GE, 1, coef)
			rows = append(rows, members)
		}
		res, err := Solve(&Model{LP: p, Binary: []int{0, 1, 2, 3, 4, 5}}, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Brute force over all 2^n assignments.
		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for _, members := range rows {
				hit := false
				for _, j := range members {
					if mask&(1<<j) != 0 {
						hit = true
						break
					}
				}
				if !hit {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cost := 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					cost += p.C[j]
				}
			}
			if cost < best {
				best = cost
			}
		}
		if res.Status != Optimal || math.Abs(res.Obj-best) > 1e-6 {
			t.Fatalf("trial %d: got %v/%v, brute force %v", trial, res.Status, res.Obj, best)
		}
	}
}

func TestTimeout(t *testing.T) {
	// A hard instance with an immediate timeout: the solver must return
	// (not hang) with whatever it has.
	n := 18
	p := &lp.Problem{NumVars: n, C: make([]float64, n)}
	bins := make([]int, n)
	for j := 0; j < n; j++ {
		p.C[j] = float64(j%7 + 1)
		bins[j] = j
	}
	for r := 0; r < n; r++ {
		coef := map[int]float64{}
		for j := 0; j < n; j++ {
			if (r+j)%3 == 0 {
				coef[j] = 1
			}
		}
		if len(coef) > 0 {
			p.AddRow(lp.GE, 1, coef)
		}
	}
	res, err := Solve(&Model{LP: p, Binary: bins}, Options{Timeout: 1 * time.Nanosecond})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status == Optimal && res.Nodes > 2 {
		t.Fatalf("nanosecond timeout explored %d nodes", res.Nodes)
	}
}

func TestBinaryOutOfRange(t *testing.T) {
	p := &lp.Problem{NumVars: 1, C: []float64{1}}
	p.AddRow(lp.GE, 1, map[int]float64{0: 1})
	if _, err := Solve(&Model{LP: p, Binary: []int{5}}, Options{}); err == nil {
		t.Fatal("out-of-range binary: want error")
	}
}
