package css

import (
	"sort"

	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// applyIdentityRules implements lines 17–21 of Algorithm 1. The identity
// rules are applied one level and only over statistics the regular rules
// already generated — otherwise repeated application of I2 would blow the
// universe up exponentially (a histogram on any attribute superset can
// stand in for a histogram, but a coarser histogram is always cheaper, so
// new supersets are never worth introducing).
//
//   - I1: a target's cardinality is computable from any existing histogram
//     on the same target (sum the buckets).
//   - I2: a histogram is computable from any existing histogram on a strict
//     attribute superset of the same target (marginalize). Expressing I2 as
//     its own candidate set — rather than substituting supersets into every
//     CSS as the paper's prose does — yields identical coverage through the
//     closure (the substituted CSS is covered exactly when the superset
//     histogram makes the coarser one computable) while keeping the CSS
//     count linear in the number of statistics.
func (g *generator) applyIdentityRules() {
	// Index the generated histogram statistics by target, so superset
	// lookups touch only existing statistics.
	histsByTarget := make(map[stats.Target][]stats.Stat)
	for _, s := range g.res.Stats {
		if s.Kind == stats.Hist {
			histsByTarget[s.Target] = append(histsByTarget[s.Target], s)
		}
	}
	for t := range histsByTarget {
		sort.Slice(histsByTarget[t], func(i, j int) bool {
			a, b := histsByTarget[t][i], histsByTarget[t][j]
			if len(a.Attrs) != len(b.Attrs) {
				return len(a.Attrs) < len(b.Attrs)
			}
			return workflow.AttrsString(a.Attrs) < workflow.AttrsString(b.Attrs)
		})
	}

	for k, s := range g.res.Stats {
		switch s.Kind {
		case stats.Card:
			// I1: |T| from any histogram on T.
			for _, h := range histsByTarget[s.Target] {
				g.res.CSS[k] = append(g.res.CSS[k], stats.CSS{Rule: "I1", Inputs: []stats.Stat{h}})
			}
		case stats.Hist:
			// I2: H^a_T from any existing H^{a∪b}_T.
			for _, super := range histsByTarget[s.Target] {
				if len(super.Attrs) <= len(s.Attrs) {
					continue
				}
				if !repsSubset(s.Attrs, super.Attrs) {
					continue
				}
				g.res.CSS[k] = append(g.res.CSS[k], stats.CSS{Rule: "I2", Inputs: []stats.Stat{super}})
			}
		}
	}
}
