package css

import (
	"fmt"

	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Generate runs Algorithm 1 of the paper over every optimizable block of
// the analyzed workflow: starting from the required cardinalities of all
// SEs, it applies the operator rules transitively to build the statistic
// universe and each statistic's candidate statistics sets, then applies the
// identity rules one level without introducing new statistics, and finally
// classifies observability against the initial plan.
func Generate(an *workflow.Analysis, opt Options) (*Result, error) {
	res := &Result{
		Analysis:        an,
		Stats:           make(map[stats.Key]stats.Stat),
		CSS:             make(map[stats.Key][]stats.CSS),
		Observable:      make(map[stats.Key]bool),
		NeedsRejectLink: make(map[stats.Key]bool),
		opt:             opt,
	}
	for i := range an.Blocks {
		bc, err := newBlockCtx(an, i)
		if err != nil {
			return nil, err
		}
		res.blocks = append(res.blocks, bc)
		res.Spaces = append(res.Spaces, bc.sp)
	}

	g := &generator{res: res, an: an, opt: opt}
	// Seed the worklist with S_C: the cardinality of every SE of every
	// block (lines 4–5 of Algorithm 1).
	for _, bc := range res.blocks {
		for _, se := range bc.sp.SEs {
			s := stats.NewCard(stats.BlockSE(bc.idx, se))
			res.Required = append(res.Required, s)
			g.push(s)
		}
	}
	// Worklist loop (lines 6–16).
	for len(g.work) > 0 {
		s := g.work[len(g.work)-1]
		g.work = g.work[:len(g.work)-1]
		if err := g.expand(s); err != nil {
			return nil, err
		}
	}
	// Identity rules, one level, no new statistics (lines 17–21).
	g.applyIdentityRules()
	// Observability classification of the whole universe.
	g.classifyObservable()
	g.dedupeCSS()
	return res, nil
}

type generator struct {
	res  *Result
	an   *workflow.Analysis
	opt  Options
	work []stats.Stat
}

// push adds a statistic to the universe and worklist if unseen.
func (g *generator) push(s stats.Stat) {
	k := s.Key()
	if _, ok := g.res.Stats[k]; ok {
		return
	}
	g.res.Stats[k] = s
	g.work = append(g.work, s)
}

// addCSS records a candidate statistics set for target and pushes its
// inputs onto the worklist.
func (g *generator) addCSS(target stats.Stat, rule string, inputs ...stats.Stat) {
	g.addJoinCSS(target, rule, workflow.Attr{}, inputs...)
}

// addJoinCSS is addCSS carrying the join-attribute class the estimation
// layer needs to evaluate join rules.
func (g *generator) addJoinCSS(target stats.Stat, rule string, join workflow.Attr, inputs ...stats.Stat) {
	// A CSS referencing its own target would be circular.
	tk := target.Key()
	for _, in := range inputs {
		if in.Key() == tk {
			return
		}
	}
	g.res.CSS[tk] = append(g.res.CSS[tk], stats.CSS{Rule: rule, Inputs: inputs, Join: join})
	for _, in := range inputs {
		g.push(in)
	}
}

// expand generates the CSSs of one statistic by dispatching on its target
// shape.
func (g *generator) expand(s stats.Stat) error {
	bc := g.res.blocks[s.Target.Block]
	switch {
	case s.Kind == stats.Distinct:
		// A distinct count is the bucket count of the matching histogram
		// (used by rule G1's input and generally derivable).
		g.addCSS(s, "D1", stats.Stat{Kind: stats.Hist, Target: s.Target, Attrs: s.Attrs})
		return nil
	case s.Target.IsChainPoint():
		return g.expandChainPoint(bc, s)
	case s.Target.IsReject():
		return g.expandReject(bc, s)
	case s.Target.Set.Len() >= 2:
		return g.expandJoinSE(bc, s)
	default:
		return g.expandSingleton(bc, s)
	}
}

// expandJoinSE applies the join rules J1–J5 (and the FK metadata shortcut)
// to a statistic over a multi-input SE.
func (g *generator) expandJoinSE(bc *blockCtx, s stats.Stat) error {
	se := s.Target.Set
	for _, p := range bc.sp.Plans[se] {
		la, _ := bc.sp.JoinAttrsOf(p)
		class := bc.sp.ClassOf(la)
		switch s.Kind {
		case stats.Card:
			// J1: |L ⋈ R| from the join-column distributions.
			g.addJoinCSS(s, "J1", class,
				stats.NewHist(stats.BlockSE(bc.idx, p.Left), class),
				stats.NewHist(stats.BlockSE(bc.idx, p.Right), class))
			// FK shortcut: a look-up join keeps the fact side's
			// cardinality.
			if g.opt.FKShortcut {
				if fact, ok := g.fkFactSide(bc, p); ok {
					g.addCSS(s, "FK", stats.NewCard(stats.BlockSE(bc.idx, fact)))
				}
			}
		case stats.Hist:
			if inL, inR, ok := g.splitAttrs(bc, p, class, s.Attrs); ok {
				rule := "J2"
				if len(s.Attrs) == 1 && s.Attrs[0] == class {
					rule = "J3"
				}
				g.addJoinCSS(s, rule, class,
					stats.NewHist(stats.BlockSE(bc.idx, p.Left), inL...),
					stats.NewHist(stats.BlockSE(bc.idx, p.Right), inR...))
			}
		}
	}
	if g.opt.UnionDivision {
		g.expandUnionDivision(bc, s)
	}
	return nil
}

// splitAttrs partitions a histogram's attribute classes across the two
// sides of a plan and adds the join class to both, producing the inputs of
// the generalized J2/J3 rule. ok is false when an attribute lives on
// neither side.
func (g *generator) splitAttrs(bc *blockCtx, p expr.Plan, class workflow.Attr, attrs []workflow.Attr) (inL, inR []workflow.Attr, ok bool) {
	inL = []workflow.Attr{class}
	inR = []workflow.Attr{class}
	for _, a := range attrs {
		if a == class {
			continue // carried by the join attribute itself
		}
		if _, okL := bc.sp.MemberIn(p.Left, a); okL {
			inL = append(inL, a)
			continue
		}
		if _, okR := bc.sp.MemberIn(p.Right, a); okR {
			inR = append(inR, a)
			continue
		}
		return nil, nil, false
	}
	return inL, inR, true
}

// fkFactSide reports whether plan p is a look-up join: its dimension side
// is the bare FK-target input with no filtering operators. It returns the
// fact side when so.
func (g *generator) fkFactSide(bc *blockCtx, p expr.Plan) (expr.Set, bool) {
	e := bc.blk.Joins[p.Edge]
	if !e.ForeignKey {
		return 0, false
	}
	dim := expr.NewSet(e.RightInput)
	var fact expr.Set
	switch {
	case p.Right == dim:
		fact = p.Left
	case p.Left == dim:
		fact = p.Right
	default:
		return 0, false
	}
	for _, op := range bc.blk.Inputs[e.RightInput].Ops {
		if op.Kind == workflow.KindSelect {
			return 0, false // a filtered dimension breaks the look-up property
		}
	}
	return fact, true
}

// expandUnionDivision applies rules J4/J5: for an SE e whose statistics are
// wanted, and an observable super-SE o = e ∪ {k} of the initial plan where
// k joins some t ∈ e, the statistic on e is computable from o's
// distribution on the (t,k) join attribute, k's distribution, and the
// statistic over the reject variant of e (t replaced by its rows rejected
// by the (t,k) predicate).
func (g *generator) expandUnionDivision(bc *blockCtx, s stats.Stat) {
	// Union–division is generated for cardinalities and single-attribute
	// distributions (the paper's J4/J5 shapes). Joint-distribution variants
	// would square the candidate universe on wide joins for statistics the
	// selection never favors.
	if s.Kind == stats.Hist && len(s.Attrs) > 1 {
		return
	}
	se := s.Target.Set
	for k := 0; k < bc.blk.NumInputs(); k++ {
		if se.Has(k) {
			continue
		}
		o := se.Add(k)
		if !bc.sp.Initial[o] {
			continue
		}
		for f, e := range bc.blk.Joins {
			var t int
			switch {
			case e.LeftInput == k && se.Has(e.RightInput):
				t = e.RightInput
			case e.RightInput == k && se.Has(e.LeftInput):
				t = e.LeftInput
			default:
				continue
			}
			class := bc.sp.ClassOf(e.LeftAttr)
			switch s.Kind {
			case stats.Card:
				// J4: |e| = |H^a_o / H^a_k| + |reject variant of e|.
				g.addJoinCSS(s, "J4", class,
					stats.NewHist(stats.BlockSE(bc.idx, o), class),
					stats.NewHist(stats.BlockSE(bc.idx, expr.NewSet(k)), class),
					stats.NewCard(stats.BlockRejectSE(bc.idx, se, t, f)))
			case stats.Hist:
				// J5 additionally carries the wanted attributes through the
				// division; they must all live inside e.
				if !bc.seHasAttrs(se, s.Attrs) {
					continue
				}
				oAttrs := append([]workflow.Attr{class}, s.Attrs...)
				g.addJoinCSS(s, "J5", class,
					stats.NewHist(stats.BlockSE(bc.idx, o), oAttrs...),
					stats.NewHist(stats.BlockSE(bc.idx, expr.NewSet(k)), class),
					stats.NewHist(stats.BlockRejectSE(bc.idx, se, t, f), s.Attrs...))
			}
		}
	}
}

// expandReject generates CSSs for statistics over reject variants: the
// reject variant of a multi-input SE joins the reject rows of input t with
// the rest of the SE, so the join rules apply with the t side replaced by
// its reject singleton. The reject singleton itself can be derived from the
// base input's joint distribution and the partner's join-column
// distribution (the rows whose join value finds no partner).
func (g *generator) expandReject(bc *blockCtx, s stats.Stat) error {
	se := s.Target.Set
	t := s.Target.RejectInput
	f := s.Target.RejectEdge
	if se.Len() == 1 {
		// Singleton reject T̄t: derivable from H_t on (join attr ∪ attrs)
		// plus the partner's join-column distribution (rule R1, the
		// anti-join complement of J1/J2).
		e := bc.blk.Joins[f]
		k := e.LeftInput
		if k == t {
			k = e.RightInput
		}
		class := bc.sp.ClassOf(e.LeftAttr)
		switch s.Kind {
		case stats.Card:
			g.addJoinCSS(s, "R1", class,
				stats.NewHist(stats.BlockSE(bc.idx, expr.NewSet(t)), class),
				stats.NewHist(stats.BlockSE(bc.idx, expr.NewSet(k)), class))
		case stats.Hist:
			tAttrs := append([]workflow.Attr{class}, s.Attrs...)
			g.addJoinCSS(s, "R1", class,
				stats.NewHist(stats.BlockSE(bc.idx, expr.NewSet(t)), tAttrs...),
				stats.NewHist(stats.BlockSE(bc.idx, expr.NewSet(k)), class))
		}
		return nil
	}
	// Multi-input reject variant: join the reject singleton with the rest
	// of the SE over the unique tree edge connecting t to the rest.
	rest := se.Without(expr.NewSet(t))
	if !bc.sp.Connected(rest) {
		return nil
	}
	gEdge := -1
	for j, e := range bc.blk.Joins {
		if e.LeftInput == t && rest.Has(e.RightInput) || e.RightInput == t && rest.Has(e.LeftInput) {
			gEdge = j
			break
		}
	}
	if gEdge < 0 {
		return nil
	}
	class := bc.sp.ClassOf(bc.blk.Joins[gEdge].LeftAttr)
	switch s.Kind {
	case stats.Card:
		g.addJoinCSS(s, "J1", class,
			stats.NewHist(stats.BlockRejectSE(bc.idx, expr.NewSet(t), t, f), class),
			stats.NewHist(stats.BlockSE(bc.idx, rest), class))
	case stats.Hist:
		// Split wanted attributes between the reject singleton and the
		// rest, as in the generalized J2.
		tAttrs := []workflow.Attr{class}
		restAttrs := []workflow.Attr{class}
		for _, a := range s.Attrs {
			if a == class {
				continue
			}
			if _, ok := bc.sp.MemberIn(expr.NewSet(t), a); ok {
				tAttrs = append(tAttrs, a)
				continue
			}
			if _, ok := bc.sp.MemberIn(rest, a); ok {
				restAttrs = append(restAttrs, a)
				continue
			}
			return nil
		}
		g.addJoinCSS(s, "J2", class,
			stats.NewHist(stats.BlockRejectSE(bc.idx, expr.NewSet(t), t, f), tAttrs...),
			stats.NewHist(stats.BlockSE(bc.idx, rest), restAttrs...))
	}
	return nil
}

// expandSingleton handles statistics over a cooked single input: when the
// input has pushed-down operators, the chain rules (S/P/U) relate it to the
// previous chain point; when it is an upstream block's output, the
// cross-block boundary rules (G/U/pass-through) relate it to the upstream
// block's full SE.
func (g *generator) expandSingleton(bc *blockCtx, s stats.Stat) error {
	i := s.Target.Set.Lowest()
	n := bc.chainLen(i)
	if n > 0 {
		g.chainRule(bc, s, i, n)
		return nil
	}
	if g.opt.CrossBlock {
		g.crossBlockRule(bc, s, i)
	}
	return nil
}

// expandChainPoint handles statistics at intermediate chain points.
func (g *generator) expandChainPoint(bc *blockCtx, s stats.Stat) error {
	i := s.Target.Set.Lowest()
	d := s.Target.Depth
	if d > 0 {
		g.chainRule(bc, s, i, d)
		return nil
	}
	if g.opt.CrossBlock {
		g.crossBlockRule(bc, s, i)
	}
	return nil
}

// chainTarget canonicalizes a chain-point reference: depth equal to the
// chain length is the cooked SE; depth 0 with no upstream block and no ops
// is also the cooked SE.
func (g *generator) chainTarget(bc *blockCtx, i, d int) stats.Target {
	if d >= bc.chainLen(i) {
		return stats.BlockSE(bc.idx, expr.NewSet(i))
	}
	return stats.Target{Block: bc.idx, Set: expr.NewSet(i), Depth: d, RejectInput: -1, RejectEdge: -1}
}

// chainRule relates the statistic at chain point d of input i to the point
// d-1 through operator ops[d-1], per Tables 2 and 5 of the paper.
func (g *generator) chainRule(bc *blockCtx, s stats.Stat, i, d int) {
	op := bc.blk.Inputs[i].Ops[d-1]
	prev := g.chainTarget(bc, i, d-1)
	switch op.Kind {
	case workflow.KindSelect:
		predClass := bc.sp.ClassOf(op.Pred.Attr)
		switch s.Kind {
		case stats.Card:
			// S1: |σ_a(T)| from H^a_T.
			g.addCSS(s, "S1", stats.NewHist(prev, predClass))
		case stats.Hist:
			// S2: H^b of the selection from H^{a∪b} of the input (when b
			// already contains a this is just H^b).
			need := append([]workflow.Attr(nil), s.Attrs...)
			if !attrInReps(need, predClass) {
				need = append(need, predClass)
			}
			if _, ok := bc.membersAt(i, d-1, need); !ok {
				return
			}
			g.addCSS(s, "S2", stats.NewHist(prev, need...))
		}
	case workflow.KindProject:
		switch s.Kind {
		case stats.Card:
			// P1: projection preserves cardinality.
			g.addCSS(s, "P1", stats.NewCard(prev))
		case stats.Hist:
			// P2: distributions over retained columns are unchanged.
			if _, ok := bc.membersAt(i, d-1, s.Attrs); !ok {
				return
			}
			g.addCSS(s, "P2", stats.NewHist(prev, s.Attrs...))
		}
	case workflow.KindTransform:
		outClass := bc.sp.ClassOf(op.Transform.Out)
		switch s.Kind {
		case stats.Card:
			// U1: transforms preserve cardinality.
			g.addCSS(s, "U1", stats.NewCard(prev))
		case stats.Hist:
			// U2: distributions not involving the derived attribute are
			// unchanged; distributions over it are black-box.
			if attrInReps(s.Attrs, outClass) {
				return
			}
			if _, ok := bc.membersAt(i, d-1, s.Attrs); !ok {
				return
			}
			g.addCSS(s, "U2", stats.NewHist(prev, s.Attrs...))
		}
	}
}

// crossBlockRule relates a block input fed by an upstream block to the
// upstream block's full SE through the boundary operator.
func (g *generator) crossBlockRule(bc *blockCtx, s stats.Stat, i int) {
	in := bc.blk.Inputs[i]
	if in.FromBlock < 0 {
		return // base relation: only direct observation
	}
	up := g.res.blocks[in.FromBlock]
	upFull := stats.BlockSE(up.idx, up.sp.Full())
	// Only single-terminator blocks have a clean boundary derivation; a
	// longer pinned pipeline is treated as opaque.
	if len(up.blk.TopOps) > 1 {
		return
	}
	var term *workflow.Node
	if len(up.blk.TopOps) == 1 {
		term = up.blk.TopOps[0]
	}
	// Translate attribute classes from this block's space to the upstream
	// block's. A downstream class representative may not exist upstream;
	// find a physical member in the boundary schema first.
	translate := func(reps []workflow.Attr) ([]workflow.Attr, bool) {
		out := make([]workflow.Attr, 0, len(reps))
		for _, rep := range reps {
			phys, ok := bc.memberAt(i, 0, rep)
			if !ok {
				return nil, false
			}
			upRep := up.sp.ClassOf(phys)
			if _, ok := up.sp.MemberIn(up.sp.Full(), upRep); !ok {
				return nil, false
			}
			out = append(out, upRep)
		}
		return out, true
	}
	switch {
	case term == nil || term.Kind == workflow.KindMaterialize:
		// Pass-through: the boundary record-set is the upstream SE.
		switch s.Kind {
		case stats.Card:
			g.addCSS(s, "B0", stats.NewCard(upFull))
		case stats.Hist:
			if attrs, ok := translate(s.Attrs); ok {
				g.addCSS(s, "B0", stats.NewHist(upFull, attrs...))
			}
		}
	case term.Kind == workflow.KindGroupBy:
		keys, ok := translate(classReps(bc.sp, term.Cols))
		if !ok {
			return
		}
		switch s.Kind {
		case stats.Card:
			// G1: |G(T,a)| = |a_T|.
			g.addCSS(s, "G1", stats.NewDistinct(upFull, keys...))
		case stats.Hist:
			// G2: distributions over (subsets of) the grouping keys come
			// from the upstream key distribution, one count per group.
			attrs, ok := translate(s.Attrs)
			if !ok || !repsSubset(attrs, keys) {
				return
			}
			g.addCSS(s, "G2", stats.NewHist(upFull, keys...))
		}
	case term.Kind == workflow.KindTransform:
		outClass := bc.sp.ClassOf(term.Transform.Out)
		switch s.Kind {
		case stats.Card:
			g.addCSS(s, "U1", stats.NewCard(upFull))
		case stats.Hist:
			if attrInReps(s.Attrs, outClass) {
				return
			}
			if attrs, ok := translate(s.Attrs); ok {
				g.addCSS(s, "U2", stats.NewHist(upFull, attrs...))
			}
		}
	default:
		// Aggregate UDFs are black boxes: no derivation (trivial CSS only).
	}
}

func attrInReps(reps []workflow.Attr, a workflow.Attr) bool {
	for _, r := range reps {
		if r == a {
			return true
		}
	}
	return false
}

func repsSubset(sub, super []workflow.Attr) bool {
	for _, a := range sub {
		if !attrInReps(super, a) {
			return false
		}
	}
	return true
}

func classReps(sp *expr.Space, attrs []workflow.Attr) []workflow.Attr {
	out := make([]workflow.Attr, 0, len(attrs))
	for _, a := range attrs {
		out = append(out, sp.ClassOf(a))
	}
	return workflow.SortAttrs(dedupe(out))
}

func dedupe(attrs []workflow.Attr) []workflow.Attr {
	seen := make(map[workflow.Attr]bool, len(attrs))
	out := attrs[:0]
	for _, a := range attrs {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// dedupeCSS removes duplicate candidate sets (same rule inputs produced by
// different plans) per target.
func (g *generator) dedupeCSS() {
	for k, list := range g.res.CSS {
		seen := make(map[string]bool, len(list))
		var out []stats.CSS
		for _, c := range list {
			sig := fmt.Sprintf("%v", c.Keys())
			if seen[sig] {
				continue
			}
			seen[sig] = true
			out = append(out, c)
		}
		g.res.CSS[k] = out
	}
}
