package css

import (
	"testing"

	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// retailAnalysis builds the paper's running example (Figure 1(a)):
// (Orders ⋈ Product) ⋈ Customer as a single optimizable block.
func retailAnalysis(t *testing.T) *workflow.Analysis {
	t.Helper()
	cat := &workflow.Catalog{Relations: []*workflow.Relation{
		{Name: "Orders", Card: 10000, Columns: []workflow.Column{
			{Name: "oid", Domain: 10000}, {Name: "pid", Domain: 500}, {Name: "cid", Domain: 2000},
		}},
		{Name: "Product", Card: 500, Columns: []workflow.Column{
			{Name: "pid", Domain: 500}, {Name: "price", Domain: 1000},
		}},
		{Name: "Customer", Card: 2000, Columns: []workflow.Column{
			{Name: "cid", Domain: 2000}, {Name: "region", Domain: 50},
		}},
	}}
	b := workflow.NewBuilder("retail")
	o := b.Source("Orders")
	p := b.Source("Product")
	c := b.Source("Customer")
	j1 := b.Join(o, p, workflow.Attr{Rel: "Orders", Col: "pid"}, workflow.Attr{Rel: "Product", Col: "pid"})
	j2 := b.Join(j1, c, workflow.Attr{Rel: "Orders", Col: "cid"}, workflow.Attr{Rel: "Customer", Col: "cid"})
	b.Sink(j2, "dw")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return an
}

func inputIdx(t *testing.T, blk *workflow.Block, name string) int {
	t.Helper()
	for i, in := range blk.Inputs {
		if in.Name == name {
			return i
		}
	}
	t.Fatalf("input %q not found", name)
	return -1
}

func TestGenerateRetailRequiredSet(t *testing.T) {
	an := retailAnalysis(t)
	res, err := Generate(an, DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// S_C is the cardinality of all 6 SEs (O, P, C, OP, OC, OPC).
	if got := len(res.Required); got != 6 {
		t.Fatalf("|S_C| = %d, want 6", got)
	}
	if got := res.NumSEs(); got != 6 {
		t.Fatalf("NumSEs = %d, want 6", got)
	}
	for _, s := range res.Required {
		if s.Kind != stats.Card {
			t.Errorf("required stat %v is not a cardinality", s.Key())
		}
	}
}

func TestGenerateRetailJ1CSS(t *testing.T) {
	an := retailAnalysis(t)
	res, err := Generate(an, Options{}) // no union-division
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	blk := an.Blocks[0]
	sp := res.Space(0)
	o := inputIdx(t, blk, "Orders")
	p := inputIdx(t, blk, "Product")
	c := inputIdx(t, blk, "Customer")
	full := expr.NewSet(o, p, c)

	// |OPC| must have the two J1 CSSs of Section 4.3: {H^cid_OP, H^cid_C}
	// and {H^pid_OC, H^pid_P}.
	cardFull := stats.NewCard(stats.BlockSE(0, full)).Key()
	csss := res.CSS[cardFull]
	var j1 int
	for _, cs := range csss {
		if cs.Rule == "J1" {
			j1++
			if len(cs.Inputs) != 2 {
				t.Errorf("J1 CSS has %d inputs", len(cs.Inputs))
			}
		}
	}
	if j1 != 2 {
		t.Fatalf("|OPC| has %d J1 CSSs, want 2: %+v", j1, csss)
	}
	// H^pid_OC must get the J2 CSS {H^{pid,cid}_O, H^cid_C} (Section 4.3).
	pidClass := sp.ClassOf(workflow.Attr{Rel: "Orders", Col: "pid"})
	cidClass := sp.ClassOf(workflow.Attr{Rel: "Orders", Col: "cid"})
	hOC := stats.NewHist(stats.BlockSE(0, expr.NewSet(o, c)), pidClass)
	found := false
	for _, cs := range res.CSS[hOC.Key()] {
		if cs.Rule != "J2" || len(cs.Inputs) != 2 {
			continue
		}
		var hasJoint, hasCid bool
		for _, in := range cs.Inputs {
			if in.Target.Set == expr.NewSet(o) && len(in.Attrs) == 2 {
				hasJoint = true
			}
			if in.Target.Set == expr.NewSet(c) && len(in.Attrs) == 1 && in.Attrs[0] == cidClass {
				hasCid = true
			}
		}
		if hasJoint && hasCid {
			found = true
		}
	}
	if !found {
		t.Errorf("H^pid_OC lacks the J2 CSS {H^{pid,cid}_O, H^cid_C}: %+v", res.CSS[hOC.Key()])
	}
}

func TestGenerateUnionDivisionAddsCSS(t *testing.T) {
	an := retailAnalysis(t)
	plain, err := Generate(an, Options{})
	if err != nil {
		t.Fatalf("Generate(plain): %v", err)
	}
	ud, err := Generate(an, Options{UnionDivision: true})
	if err != nil {
		t.Fatalf("Generate(ud): %v", err)
	}
	if ud.NumCSS() <= plain.NumCSS() {
		t.Fatalf("union-division should add CSSs: %d vs %d", ud.NumCSS(), plain.NumCSS())
	}
	// |OC| is unobservable in the initial plan; union-division must offer
	// a J4 CSS exploiting the observable OPC.
	blk := an.Blocks[0]
	o := inputIdx(t, blk, "Orders")
	c := inputIdx(t, blk, "Customer")
	cardOC := stats.NewCard(stats.BlockSE(0, expr.NewSet(o, c))).Key()
	var hasJ4 bool
	for _, cs := range ud.CSS[cardOC] {
		if cs.Rule == "J4" {
			hasJ4 = true
			if len(cs.Inputs) != 3 {
				t.Errorf("J4 CSS has %d inputs, want 3", len(cs.Inputs))
			}
			var rejects int
			for _, in := range cs.Inputs {
				if in.Target.IsReject() {
					rejects++
				}
			}
			if rejects != 1 {
				t.Errorf("J4 CSS has %d reject inputs, want 1", rejects)
			}
		}
	}
	if !hasJ4 {
		t.Fatalf("|OC| lacks a J4 CSS: %+v", ud.CSS[cardOC])
	}
}

func TestGenerateRejectSingletonObservable(t *testing.T) {
	an := retailAnalysis(t)
	res, err := Generate(an, DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// The initial plan joins Orders directly with Product (edge 0), so
	// T̄Orders w.r.t. that edge is observable via an added reject link.
	blk := an.Blocks[0]
	o := inputIdx(t, blk, "Orders")
	foundObservableReject := false
	for k, s := range res.Stats {
		if s.Target.IsReject() && s.Target.Set.Len() == 1 && s.Target.RejectInput == o {
			if res.Observable[k] {
				foundObservableReject = true
				if !res.NeedsRejectLink[k] {
					t.Error("observable reject stat should be marked NeedsRejectLink")
				}
			}
		}
	}
	if !foundObservableReject {
		t.Fatal("no observable reject singleton found")
	}
}

func TestGenerateObservability(t *testing.T) {
	an := retailAnalysis(t)
	res, err := Generate(an, Options{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	blk := an.Blocks[0]
	o := inputIdx(t, blk, "Orders")
	p := inputIdx(t, blk, "Product")
	c := inputIdx(t, blk, "Customer")
	// OP is in the initial plan: |OP| observable. OC is not.
	if !res.Observable[stats.NewCard(stats.BlockSE(0, expr.NewSet(o, p))).Key()] {
		t.Error("|OP| should be observable")
	}
	if res.Observable[stats.NewCard(stats.BlockSE(0, expr.NewSet(o, c))).Key()] {
		t.Error("|OC| should not be observable")
	}
	// Base relations always observable.
	for _, i := range []int{o, p, c} {
		if !res.Observable[stats.NewCard(stats.BlockSE(0, expr.NewSet(i))).Key()] {
			t.Errorf("base input %d cardinality should be observable", i)
		}
	}
}

func TestGenerateIdentityRules(t *testing.T) {
	an := retailAnalysis(t)
	res, err := Generate(an, Options{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// I1: every SE cardinality gains CSSs from existing histograms on the
	// same target.
	blk := an.Blocks[0]
	o := inputIdx(t, blk, "Orders")
	cardO := stats.NewCard(stats.BlockSE(0, expr.NewSet(o))).Key()
	var hasI1 bool
	for _, cs := range res.CSS[cardO] {
		if cs.Rule == "I1" {
			hasI1 = true
			if len(cs.Inputs) != 1 || cs.Inputs[0].Kind != stats.Hist {
				t.Errorf("I1 CSS malformed: %+v", cs)
			}
		}
	}
	if !hasI1 {
		t.Error("|Orders| lacks an I1 CSS")
	}
	// I2: the paper's example — H^cid_OP computable from the finer
	// H^{cid,pid}_OP generated by the regular rules, which covers the
	// substituted CSS {H^{cid,pid}_OP, H^cid_C} for |OPC| through the
	// closure.
	var hasI2 bool
	for k := range res.CSS {
		for _, cs := range res.CSS[k] {
			if cs.Rule == "I2" {
				if len(cs.Inputs) != 1 || cs.Inputs[0].Kind != stats.Hist {
					t.Errorf("I2 CSS malformed: %+v", cs)
				}
				if len(cs.Inputs[0].Attrs) <= len(res.Stats[k].Attrs) {
					t.Errorf("I2 input not a strict superset: %+v", cs)
				}
				hasI2 = true
			}
		}
	}
	if !hasI2 {
		t.Error("no I2 CSS generated anywhere")
	}
	// No CSS may reference its own target.
	for k, list := range res.CSS {
		for _, cs := range list {
			for _, in := range cs.Inputs {
				if in.Key() == k {
					t.Errorf("CSS for %v references itself", k)
				}
			}
		}
	}
	// Every CSS input must be part of the universe.
	for _, list := range res.CSS {
		for _, cs := range list {
			for _, in := range cs.Inputs {
				if _, ok := res.Stats[in.Key()]; !ok {
					t.Errorf("CSS input %v missing from universe", in.Key())
				}
			}
		}
	}
}

func TestGenerateFKShortcut(t *testing.T) {
	cat := &workflow.Catalog{Relations: []*workflow.Relation{
		{Name: "Fact", Card: 1000, Columns: []workflow.Column{{Name: "k", Domain: 100}}},
		{Name: "Dim", Card: 100, Columns: []workflow.Column{{Name: "k", Domain: 100}}},
	}}
	b := workflow.NewBuilder("fk")
	f := b.Source("Fact")
	d := b.Source("Dim")
	j := b.FKJoin(f, d, workflow.Attr{Rel: "Fact", Col: "k"}, workflow.Attr{Rel: "Dim", Col: "k"})
	b.Sink(j, "dw")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := Generate(an, DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	full := res.Space(0).Full()
	var hasFK bool
	for _, cs := range res.CSS[stats.NewCard(stats.BlockSE(0, full)).Key()] {
		if cs.Rule == "FK" {
			hasFK = true
			if len(cs.Inputs) != 1 || cs.Inputs[0].Kind != stats.Card {
				t.Errorf("FK CSS malformed: %+v", cs)
			}
		}
	}
	if !hasFK {
		t.Error("FK join lacks the look-up shortcut CSS")
	}
	// With the shortcut disabled it must vanish.
	res2, err := Generate(an, Options{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, cs := range res2.CSS[stats.NewCard(stats.BlockSE(0, full)).Key()] {
		if cs.Rule == "FK" {
			t.Error("FK CSS generated despite disabled option")
		}
	}
}

func TestGenerateChainRules(t *testing.T) {
	// Orders is filtered then joined: the chain rules must relate the
	// filtered input's stats to the raw source via S1/S2.
	cat := &workflow.Catalog{Relations: []*workflow.Relation{
		{Name: "Orders", Card: 1000, Columns: []workflow.Column{
			{Name: "pid", Domain: 50}, {Name: "qty", Domain: 10},
		}},
		{Name: "Product", Card: 50, Columns: []workflow.Column{{Name: "pid", Domain: 50}}},
	}}
	b := workflow.NewBuilder("chainrules")
	o := b.Source("Orders")
	f := b.Select(o, workflow.Predicate{Attr: workflow.Attr{Rel: "Orders", Col: "qty"}, Op: workflow.CmpGt, Const: 5})
	p := b.Source("Product")
	j := b.Join(f, p, workflow.Attr{Rel: "Orders", Col: "pid"}, workflow.Attr{Rel: "Product", Col: "pid"})
	b.Sink(j, "dw")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := Generate(an, Options{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	blk := an.Blocks[0]
	oIdx := inputIdx(t, blk, "Orders")
	// |σ(Orders)| must have an S1 CSS referencing the raw chain point.
	cardO := stats.NewCard(stats.BlockSE(0, expr.NewSet(oIdx))).Key()
	var hasS1 bool
	for _, cs := range res.CSS[cardO] {
		if cs.Rule == "S1" {
			hasS1 = true
			in := cs.Inputs[0]
			if !in.Target.IsChainPoint() || in.Target.Depth != 0 {
				t.Errorf("S1 input should be the raw chain point, got %+v", in.Target)
			}
		}
	}
	if !hasS1 {
		t.Errorf("filtered input lacks S1 CSS: %+v", res.CSS[cardO])
	}
	// H^pid of the filtered input needs the joint (pid,qty) on the raw
	// source (S2).
	sp := res.Space(0)
	pidClass := sp.ClassOf(workflow.Attr{Rel: "Orders", Col: "pid"})
	hO := stats.NewHist(stats.BlockSE(0, expr.NewSet(oIdx)), pidClass).Key()
	var hasS2 bool
	for _, cs := range res.CSS[hO] {
		if cs.Rule == "S2" && len(cs.Inputs) == 1 && len(cs.Inputs[0].Attrs) == 2 {
			hasS2 = true
		}
	}
	if !hasS2 {
		t.Errorf("H^pid of filtered input lacks S2 CSS: %+v", res.CSS[hO])
	}
	// Chain points are observable.
	raw := stats.NewHist(stats.ChainPoint(0, oIdx, 0), pidClass, sp.ClassOf(workflow.Attr{Rel: "Orders", Col: "qty"}))
	if !res.Observable[raw.Key()] {
		t.Error("raw chain point histogram should be observable")
	}
}

func TestGenerateCrossBlockGroupBy(t *testing.T) {
	cat := &workflow.Catalog{Relations: []*workflow.Relation{
		{Name: "Orders", Card: 1000, Columns: []workflow.Column{
			{Name: "pid", Domain: 50}, {Name: "cid", Domain: 20},
		}},
		{Name: "Product", Card: 50, Columns: []workflow.Column{{Name: "pid", Domain: 50}}},
		{Name: "Customer", Card: 20, Columns: []workflow.Column{{Name: "cid", Domain: 20}}},
	}}
	b := workflow.NewBuilder("crossblock")
	o := b.Source("Orders")
	p := b.Source("Product")
	c := b.Source("Customer")
	j1 := b.Join(o, p, workflow.Attr{Rel: "Orders", Col: "pid"}, workflow.Attr{Rel: "Product", Col: "pid"})
	gby := b.GroupBy(j1, workflow.Attr{Rel: "Orders", Col: "cid"})
	j2 := b.Join(gby, c, workflow.Attr{Rel: "Orders", Col: "cid"}, workflow.Attr{Rel: "Customer", Col: "cid"})
	b.Sink(j2, "dw")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := Generate(an, DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(an.Blocks) != 2 {
		t.Fatalf("want 2 blocks, got %d", len(an.Blocks))
	}
	// The downstream block's group-by input must gain a G1 CSS for its
	// cardinality referencing the upstream distinct count.
	blk1 := an.Blocks[1]
	gIdx := -1
	for i, in := range blk1.Inputs {
		if in.FromBlock == 0 {
			gIdx = i
		}
	}
	if gIdx < 0 {
		t.Fatal("downstream block lacks the upstream input")
	}
	cardG := stats.NewCard(stats.BlockSE(1, expr.NewSet(gIdx))).Key()
	var hasG1 bool
	for _, cs := range res.CSS[cardG] {
		if cs.Rule == "G1" {
			hasG1 = true
			if cs.Inputs[0].Kind != stats.Distinct || cs.Inputs[0].Target.Block != 0 {
				t.Errorf("G1 input should be the upstream distinct count, got %+v", cs.Inputs[0])
			}
		}
	}
	if !hasG1 {
		t.Errorf("group-by boundary lacks G1 CSS: %+v", res.CSS[cardG])
	}
	// Without cross-block derivation the G1 CSS disappears.
	res2, err := Generate(an, Options{UnionDivision: true})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, cs := range res2.CSS[cardG] {
		if cs.Rule == "G1" {
			t.Error("G1 generated despite disabled cross-block option")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	an := retailAnalysis(t)
	r1, err := Generate(an, DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	r2, err := Generate(an, DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(r1.Stats) != len(r2.Stats) || r1.NumCSS() != r2.NumCSS() {
		t.Fatalf("nondeterministic generation: %d/%d stats, %d/%d CSS",
			len(r1.Stats), len(r2.Stats), r1.NumCSS(), r2.NumCSS())
	}
}

func TestPhysicalAttrs(t *testing.T) {
	an := retailAnalysis(t)
	res, err := Generate(an, DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	blk := an.Blocks[0]
	sp := res.Space(0)
	p := inputIdx(t, blk, "Product")
	class := sp.ClassOf(workflow.Attr{Rel: "Product", Col: "pid"})
	// On the Product singleton, the class must resolve to Product.pid even
	// if the representative is Orders.pid.
	s := stats.NewHist(stats.BlockSE(0, expr.NewSet(p)), class)
	phys, err := res.PhysicalAttrs(s)
	if err != nil {
		t.Fatalf("PhysicalAttrs: %v", err)
	}
	if len(phys) != 1 || phys[0] != (workflow.Attr{Rel: "Product", Col: "pid"}) {
		t.Fatalf("PhysicalAttrs = %v, want Product.pid", phys)
	}
}

func TestBoundaryClassAndChainDepth(t *testing.T) {
	cat := &workflow.Catalog{Relations: []*workflow.Relation{
		{Name: "Orders", Card: 100, Columns: []workflow.Column{
			{Name: "pid", Domain: 10}, {Name: "cid", Domain: 10},
		}},
		{Name: "Product", Card: 10, Columns: []workflow.Column{{Name: "pid", Domain: 10}}},
		{Name: "Customer", Card: 10, Columns: []workflow.Column{{Name: "cid", Domain: 10}}},
	}}
	b := workflow.NewBuilder("xb")
	o := b.Source("Orders")
	f := b.Select(o, workflow.Predicate{Attr: workflow.Attr{Rel: "Orders", Col: "pid"}, Op: workflow.CmpGt, Const: 2})
	p := b.Source("Product")
	c := b.Source("Customer")
	j1 := b.Join(f, p, workflow.Attr{Rel: "Orders", Col: "pid"}, workflow.Attr{Rel: "Product", Col: "pid"})
	g := b.GroupBy(j1, workflow.Attr{Rel: "Orders", Col: "cid"})
	j2 := b.Join(g, c, workflow.Attr{Rel: "Orders", Col: "cid"}, workflow.Attr{Rel: "Customer", Col: "cid"})
	b.Sink(j2, "dw")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := Generate(an, DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Block 0's Orders input carries one pushed-down select.
	blk0 := an.Blocks[0]
	oIdx := inputIdx(t, blk0, "Orders")
	if d := res.ChainDepth(0, oIdx); d != 1 {
		t.Fatalf("ChainDepth(Orders) = %d, want 1", d)
	}
	// Block 1's upstream input translates its class to block 0's space.
	blk1 := an.Blocks[1]
	upIdx := -1
	for i, in := range blk1.Inputs {
		if in.FromBlock == 0 {
			upIdx = i
		}
	}
	if upIdx < 0 {
		t.Fatal("block 1 lacks the boundary input")
	}
	downClass := res.Space(1).ClassOf(workflow.Attr{Rel: "Orders", Col: "cid"})
	upClass, err := res.BoundaryClass(1, upIdx, downClass)
	if err != nil {
		t.Fatalf("BoundaryClass: %v", err)
	}
	if res.Space(0).ClassOf(workflow.Attr{Rel: "Orders", Col: "cid"}) != upClass {
		t.Fatalf("BoundaryClass = %v", upClass)
	}
	// A base-relation input is not a boundary.
	cIdx := -1
	for i, in := range blk1.Inputs {
		if in.SourceRel == "Customer" {
			cIdx = i
		}
	}
	if _, err := res.BoundaryClass(1, cIdx, downClass); err == nil {
		t.Fatal("BoundaryClass over a base input: want error")
	}
}

func TestStatObservableOutOfRange(t *testing.T) {
	an := retailAnalysis(t)
	res, err := Generate(an, DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Out-of-range blocks and edges must answer false, not panic.
	if res.StatObservable(stats.NewCard(stats.BlockSE(9, expr.NewSet(0)))) {
		t.Fatal("out-of-range block observable")
	}
	if res.StatObservable(stats.NewCard(stats.BlockRejectSE(0, expr.NewSet(0), 0, 99))) {
		t.Fatal("out-of-range edge observable")
	}
}
