// Package css generates candidate statistics sets (CSSs) for every
// statistic needed to cost any reordering of an ETL workflow, implementing
// Section 4 of Halasipuram et al. (EDBT 2014): the per-operator rules of
// Tables 2–5 (select, project, join, group-by, transform), the identity
// rules I1/I2, and the union–division rules J4/J5 that exploit reject
// links. Algorithm 1's worklist drives rule application.
package css

import (
	"fmt"

	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Options control CSS generation.
type Options struct {
	// UnionDivision enables rules J4/J5, which derive statistics of
	// unobservable SEs from an observable super-SE plus reject-link
	// statistics. Figures 9 and 11 of the paper sweep this switch.
	UnionDivision bool
	// CrossBlock enables deriving a block input's statistics from the
	// upstream block's statistics through the boundary operator (rules
	// G1/G2, U1/U2 and pass-through at materialization points).
	CrossBlock bool
	// FKShortcut enables the foreign-key metadata rule of Section 3.2.2: a
	// look-up join's output cardinality equals the fact side's.
	FKShortcut bool
}

// DefaultOptions enable every rule family.
func DefaultOptions() Options {
	return Options{UnionDivision: true, CrossBlock: true, FKShortcut: true}
}

// Result is the output of CSS generation for a whole workflow: the
// statistic universe S, the candidate statistics sets per statistic, the
// required set S_C (cardinalities of every SE of every block), and the
// observability classification S_O.
type Result struct {
	Analysis *workflow.Analysis
	// Spaces holds one enumerated plan space per optimizable block.
	Spaces []*expr.Space
	// Stats is the universe S of statistics mentioned anywhere.
	Stats map[stats.Key]stats.Stat
	// CSS maps each statistic to its candidate statistics sets (excluding
	// the trivial CSS, which is represented by direct observation).
	CSS map[stats.Key][]stats.CSS
	// Required is S_C: the cardinality statistics of every SE.
	Required []stats.Stat
	// Observable is S_O: statistics that instrumentation of the initial
	// plan can observe directly (including reject-link statistics that
	// need an added reject link, marked in NeedsRejectLink).
	Observable map[stats.Key]bool
	// NeedsRejectLink marks observable statistics that require adding an
	// explicit reject link (and an auxiliary join for multi-input reject
	// targets) to the initial plan, per Section 4.1.2.
	NeedsRejectLink map[stats.Key]bool

	opt    Options
	blocks []*blockCtx
}

// Space returns the plan space of block b.
func (r *Result) Space(b int) *expr.Space { return r.Spaces[b] }

// Options returns the options the result was generated with.
func (r *Result) Options() Options { return r.opt }

// NumCSS returns the total number of candidate statistics sets across all
// statistics (the quantity plotted in Figure 9 of the paper).
func (r *Result) NumCSS() int {
	n := 0
	for _, cs := range r.CSS {
		n += len(cs)
	}
	return n
}

// NumSEs returns the total number of sub-expressions across blocks.
func (r *Result) NumSEs() int {
	n := 0
	for _, sp := range r.Spaces {
		n += len(sp.SEs)
	}
	return n
}

// blockCtx caches per-block derived structure used by the rules.
type blockCtx struct {
	idx int
	blk *workflow.Block
	sp  *expr.Space
	// chainAttrs[i][d] is the schema of input i's chain at depth d
	// (0 = raw source or upstream boundary, len(ops) = cooked input).
	chainAttrs [][][]workflow.Attr
}

// chainLen returns the number of pushed-down operators on input i.
func (bc *blockCtx) chainLen(i int) int { return len(bc.blk.Inputs[i].Ops) }

// newBlockCtx enumerates the block's plan space and computes chain-point
// schemas.
func newBlockCtx(an *workflow.Analysis, idx int) (*blockCtx, error) {
	blk := an.Blocks[idx]
	sp, err := expr.Enumerate(blk)
	if err != nil {
		return nil, fmt.Errorf("block %d: %w", idx, err)
	}
	bc := &blockCtx{idx: idx, blk: blk, sp: sp}
	for i := range blk.Inputs {
		in := &blk.Inputs[i]
		raw := an.Schema[in.EntryNode]
		attrs := [][]workflow.Attr{raw}
		cur := raw
		for _, op := range in.Ops {
			cur = applyOpSchema(cur, op)
			attrs = append(attrs, cur)
		}
		bc.chainAttrs = append(bc.chainAttrs, attrs)
	}
	return bc, nil
}

// applyOpSchema advances a schema across one unary operator.
func applyOpSchema(in []workflow.Attr, op *workflow.Node) []workflow.Attr {
	switch op.Kind {
	case workflow.KindProject:
		return workflow.SortAttrs(append([]workflow.Attr(nil), op.Cols...))
	case workflow.KindTransform:
		out := append([]workflow.Attr(nil), in...)
		found := false
		for _, a := range out {
			if a == op.Transform.Out {
				found = true
				break
			}
		}
		if !found {
			out = append(out, op.Transform.Out)
		}
		return workflow.SortAttrs(out)
	default: // select keeps the schema
		return in
	}
}

// memberAt returns a physical attribute from rep's join-equivalence class
// that exists in input i's chain schema at depth d, or false.
func (bc *blockCtx) memberAt(i, d int, rep workflow.Attr) (workflow.Attr, bool) {
	schema := bc.chainAttrs[i][d]
	for _, m := range bc.sp.ClassMembers(rep) {
		for _, a := range schema {
			if a == m {
				return a, true
			}
		}
	}
	return workflow.Attr{}, false
}

// membersAt resolves a class-representative attribute list to physical
// attributes at a chain point; ok is false when any attribute is absent.
func (bc *blockCtx) membersAt(i, d int, reps []workflow.Attr) ([]workflow.Attr, bool) {
	out := make([]workflow.Attr, 0, len(reps))
	for _, rep := range reps {
		a, ok := bc.memberAt(i, d, rep)
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}

// seHasAttrs reports whether every class representative has a member in the
// (cooked) SE's schema.
func (bc *blockCtx) seHasAttrs(se expr.Set, reps []workflow.Attr) bool {
	for _, rep := range reps {
		if _, ok := bc.sp.MemberIn(se, rep); !ok {
			return false
		}
	}
	return true
}

// BoundaryClass translates a downstream block's class-representative
// attribute into the upstream block's class representative, across the
// boundary feeding input i of block. It is the attribute mapping behind the
// cross-block rules (B0/G2/U2) and their numeric evaluation.
func (r *Result) BoundaryClass(block, input int, a workflow.Attr) (workflow.Attr, error) {
	bc := r.blocks[block]
	in := bc.blk.Inputs[input]
	if in.FromBlock < 0 {
		return workflow.Attr{}, fmt.Errorf("css: input %d of block %d is not a block boundary", input, block)
	}
	phys, ok := bc.memberAt(input, 0, a)
	if !ok {
		return workflow.Attr{}, fmt.Errorf("css: attribute %v not present at boundary of block %d input %d", a, block, input)
	}
	return r.blocks[in.FromBlock].sp.ClassOf(phys), nil
}

// ChainDepth returns the number of pushed-down operators on the given
// input, i.e. the depth of the cooked chain point.
func (r *Result) ChainDepth(block, input int) int {
	return r.blocks[block].chainLen(input)
}

// PhysicalAttrs resolves a statistic's class-representative attributes to
// the physical attributes present at the statistic's target, for use by the
// instrumentation and estimation layers.
func (r *Result) PhysicalAttrs(s stats.Stat) ([]workflow.Attr, error) {
	bc := r.blocks[s.Target.Block]
	if s.Target.IsChainPoint() {
		i := s.Target.Set.Lowest()
		phys, ok := bc.membersAt(i, s.Target.Depth, s.Attrs)
		if !ok {
			return nil, fmt.Errorf("stat %v: attrs not resolvable at chain point", s.Key())
		}
		return phys, nil
	}
	out := make([]workflow.Attr, 0, len(s.Attrs))
	for _, rep := range s.Attrs {
		var phys workflow.Attr
		found := false
		// Prefer a member owned by the target's own inputs; for reject
		// targets the replaced input still carries its attributes.
		if m, ok := bc.sp.MemberIn(s.Target.Set, rep); ok {
			phys, found = m, true
		}
		if !found {
			return nil, fmt.Errorf("stat %v: attribute class %v absent from target", s.Key(), rep)
		}
		out = append(out, phys)
	}
	return out, nil
}
