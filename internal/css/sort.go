package css

import (
	"sort"

	"github.com/essential-stats/etlopt/internal/stats"
)

// sortStats orders statistics deterministically: by block, kind, SE,
// depth, reject fields, then attribute string.
func sortStats(list []stats.Stat) {
	sort.Slice(list, func(i, j int) bool {
		return statKeyLess(list[i].Key(), list[j].Key())
	})
}

func statKeyLess(a, b stats.Key) bool {
	if a.Block != b.Block {
		return a.Block < b.Block
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Set != b.Set {
		return a.Set < b.Set
	}
	if a.Depth != b.Depth {
		return a.Depth < b.Depth
	}
	if a.RejectInput != b.RejectInput {
		return a.RejectInput < b.RejectInput
	}
	if a.RejectEdge != b.RejectEdge {
		return a.RejectEdge < b.RejectEdge
	}
	return a.Attrs < b.Attrs
}
