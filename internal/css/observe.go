package css

import (
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
)

// classifyObservable partitions the statistic universe into observable and
// derived-only statistics (the S_O of Section 5.1). A statistic is
// observable when the initial plan, suitably instrumented, produces the
// record-set it describes:
//
//   - every chain point of every input runs in every plan;
//   - a cooked SE is produced exactly when it appears in the initial join
//     tree;
//   - a singleton reject set T̄t for join edge f is observable when the
//     initial plan joins {t} directly over f — adding an explicit reject
//     link there captures the rejected rows (Section 4.1.2); such
//     statistics are marked in NeedsRejectLink;
//   - a two-input reject variant T̄t ⋈ r is observable under the same
//     condition when r is a single block input directly joined to t: the
//     instrumented run executes the small auxiliary join of the reject
//     stream with r, which is how the paper observes |T̄1 ⋈ T2| with a
//     plain counter in rule J4;
//   - wider reject variants are derived from those via the join rules.
func (g *generator) classifyObservable() {
	for k, s := range g.res.Stats {
		bc := g.res.blocks[s.Target.Block]
		switch {
		case s.Target.IsChainPoint():
			g.res.Observable[k] = true
		case s.Target.IsReject():
			t, f := s.Target.RejectInput, s.Target.RejectEdge
			if !rejectObservable(bc, t, f) {
				continue
			}
			switch rest := s.Target.Set.Without(expr.NewSet(t)); {
			case rest.Empty():
				g.res.Observable[k] = true
				g.res.NeedsRejectLink[k] = true
			case rest.Len() == 1 && directEdge(bc, t, rest.Lowest()) >= 0:
				g.res.Observable[k] = true
				g.res.NeedsRejectLink[k] = true
			}
		default:
			if bc.sp.Initial[s.Target.Set] {
				g.res.Observable[k] = true
			}
		}
	}
}

// directEdge returns the index of a join edge directly connecting inputs a
// and b, or -1.
func directEdge(bc *blockCtx, a, b int) int {
	for j, e := range bc.blk.Joins {
		if e.LeftInput == a && e.RightInput == b || e.LeftInput == b && e.RightInput == a {
			return j
		}
	}
	return -1
}

// rejectObservable reports whether the initial plan contains a join over
// edge f with one side exactly {t}: the place where a reject link can
// capture T̄t.
func rejectObservable(bc *blockCtx, t, f int) bool {
	single := expr.NewSet(t)
	for _, p := range bc.sp.InitialTree {
		if p.Edge != f {
			continue
		}
		if p.Left == single || p.Right == single {
			return true
		}
	}
	return false
}

// StatObservable reports whether a statistic — possibly one outside the
// generated universe — is observable under the initial plan, using the same
// structural rules as classifyObservable. Instrumentation uses it so
// callers may observe ad-hoc statistics (e.g. extra diagnostics) beyond the
// selector's choice.
func (r *Result) StatObservable(s stats.Stat) bool {
	if k := s.Key(); r.Observable[k] {
		return true
	}
	if s.Target.Block < 0 || s.Target.Block >= len(r.blocks) {
		return false
	}
	bc := r.blocks[s.Target.Block]
	switch {
	case s.Target.IsChainPoint():
		i := s.Target.Set.Lowest()
		return i >= 0 && i < len(bc.blk.Inputs) && s.Target.Depth <= bc.chainLen(i)
	case s.Target.IsReject():
		t, f := s.Target.RejectInput, s.Target.RejectEdge
		if f < 0 || f >= len(bc.blk.Joins) || !rejectObservable(bc, t, f) {
			return false
		}
		rest := s.Target.Set.Without(expr.NewSet(t))
		return rest.Empty() || rest.Len() == 1 && directEdge(bc, t, rest.Lowest()) >= 0
	default:
		return bc.sp.Initial[s.Target.Set]
	}
}

// ObservableStats returns the observable statistics in deterministic order.
func (r *Result) ObservableStats() []stats.Stat {
	var out []stats.Stat
	for k := range r.Observable {
		out = append(out, r.Stats[k])
	}
	sortStats(out)
	return out
}

// AllStats returns the statistic universe in deterministic order.
func (r *Result) AllStats() []stats.Stat {
	out := make([]stats.Stat, 0, len(r.Stats))
	for _, s := range r.Stats {
		out = append(out, s)
	}
	sortStats(out)
	return out
}
