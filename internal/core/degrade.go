package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/payg"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/stats"
)

// The degradation ladder. An instrumented run can lose statistics without
// losing the data work: a tap whose observation fails permanently (injected
// permanent fault, mis-declared statistic, store rejection) is dropped and
// reported in engine.Result.Degraded while the block still completes. The
// cycle then walks down the ladder instead of aborting:
//
//  1. Alternate covering CSS — re-select a covering statistics set that
//     avoids every failed statistic (already-held observations are free),
//     and re-run the initial plan instrumented with just the missing ones.
//     Repeated up to maxReselectRounds times as new failures surface.
//  2. Sketch tier — tap faults model the observation side-memory
//     exhausting, which bounded-memory sketches are immune to: re-observe
//     the approximate variant (HLLDistinct / CMHist) of every failed
//     statistic that has one. When every failure is recovered through its
//     sketch sibling the cycle completes on approximate statistics.
//  3. Pay-as-you-go — when sketches cannot cover the failures either
//     (cardinality taps have no sketch variant), fall back to the Section
//     7.3 baseline: execute the trivial-CSS plan sequence, learning
//     whatever SE cardinalities the re-ordered plans expose.
//  4. Initial plans — blocks whose cardinalities still cannot be derived
//     keep their user-designed plans (optimizer.Options.FallbackInitial).
//
// Every completed cycle therefore carries plans for all blocks; Degradation
// records how far down the ladder it had to go.

// maxReselectRounds bounds alternate-CSS re-observation attempts before the
// ladder drops to the pay-as-you-go rung.
const maxReselectRounds = 3

// Degradation reports how a cycle completed despite permanent observation
// failures. A nil Degradation on the cycle means the run was clean.
type Degradation struct {
	// Failed lists every statistic whose observation failed permanently,
	// in canonical key order.
	Failed []engine.FailedStat
	// Mode is the ladder rung that completed the cycle: "alternate-css"
	// (a covering selection avoiding the failures was re-observed),
	// "sketch" (every failure was recovered through its bounded-memory
	// approximate sibling) or "payg" (the trivial-CSS baseline supplied
	// what it could).
	Mode string
	// Reruns counts extra instrumented executions of the initial plan the
	// alternate-CSS rung performed.
	Reruns int
	// SketchRuns counts executions of the sketch rung (at most one: all
	// recoverable variants are observed in a single instrumented rerun).
	SketchRuns int
	// PaygRuns counts executions the pay-as-you-go rung performed.
	PaygRuns int
	// ExtraRows is the additional engine work (work-metric rows) the
	// ladder cost beyond the first instrumented run.
	ExtraRows int64
	// FallbackBlocks lists blocks (ascending) left on their initial plans
	// because their cardinalities remained underivable.
	FallbackBlocks []int
}

// String renders a one-line summary for reports and the CLI.
func (d *Degradation) String() string {
	if d == nil {
		return ""
	}
	s := fmt.Sprintf("degraded: %d statistic(s) unobservable, completed via %s", len(d.Failed), d.Mode)
	if d.Reruns > 0 {
		s += fmt.Sprintf(", %d re-observation run(s)", d.Reruns)
	}
	if d.SketchRuns > 0 {
		s += fmt.Sprintf(", %d sketch run(s)", d.SketchRuns)
	}
	if d.PaygRuns > 0 {
		s += fmt.Sprintf(", %d payg run(s)", d.PaygRuns)
	}
	if len(d.FallbackBlocks) > 0 {
		s += fmt.Sprintf(", %d block(s) on initial plans", len(d.FallbackBlocks))
	}
	return s
}

// Degraded reports whether the cycle completed via the degradation ladder.
func (cy *Cycle) Degraded() bool { return cy.Degradation != nil }

// degrade walks the ladder after an instrumented run reported permanently
// failed observations. It mutates store (the run's observation store) by
// merging everything later runs learn, and returns the degradation report.
// Only run-level failures (cancellation, permanent operator faults) abort.
func degrade(ctx context.Context, cy *Cycle, eng executor, u *selector.Universe, res *css.Result, store *stats.Store, first []engine.FailedStat) (*Degradation, error) {
	deg := &Degradation{}
	failed := make(map[stats.Key]engine.FailedStat, len(first))
	for _, f := range first {
		failed[f.Stat.Key()] = f
	}
	opt := selector.Options{Method: cy.cfg.Method}

	for round := 0; round < maxReselectRounds && deg.Mode == ""; round++ {
		have := make([]stats.Key, 0)
		for _, v := range store.Values() {
			have = append(have, v.Stat.Key())
		}
		failedKeys := make([]stats.Key, 0, len(failed))
		for k := range failed {
			failedKeys = append(failedKeys, k)
		}
		alt, err := selector.Reselect(u, have, failedKeys, opt)
		if errors.Is(err, selector.ErrNoCover) {
			break // payg is the only rung left
		}
		if err != nil {
			return nil, fmt.Errorf("reselect: %w", err)
		}
		missing := make([]stats.Stat, 0, len(alt.Observe))
		for _, s := range alt.Observe {
			if !store.Has(s) {
				missing = append(missing, s)
			}
		}
		if len(missing) == 0 {
			// The held statistics already cover everything required.
			deg.Mode = "alternate-css"
			break
		}
		rerun, err := eng.RunPlansCtx(ctx, nil, res, missing)
		if err != nil {
			return nil, fmt.Errorf("alternate-css run: %w", err)
		}
		deg.Reruns++
		deg.ExtraRows += rerun.Rows
		store.Merge(rerun.Observed)
		if len(rerun.Degraded) == 0 {
			deg.Mode = "alternate-css"
			break
		}
		for _, f := range rerun.Degraded {
			if _, ok := failed[f.Stat.Key()]; !ok {
				failed[f.Stat.Key()] = f
			}
		}
	}

	if deg.Mode == "" {
		// Sketch rung: the failures' approximate siblings hold a fixed few
		// hundred bytes regardless of data volume, so the side-memory
		// exhaustion that permanent tap faults model cannot touch them (the
		// engines never consult the injector for sketch taps). Observe every
		// recoverable variant in one instrumented rerun.
		sketchKeys := make([]stats.Key, 0, len(failed))
		for k := range failed {
			sketchKeys = append(sketchKeys, k)
		}
		sort.Slice(sketchKeys, func(i, j int) bool { return stats.KeyLess(sketchKeys[i], sketchKeys[j]) })
		var observe []stats.Stat
		for _, k := range sketchKeys {
			v, ok := stats.ApproxVariant(failed[k].Stat)
			if ok && res.StatObservable(v) && !store.Has(v) {
				observe = append(observe, v)
			}
		}
		if len(observe) > 0 {
			rerun, err := eng.RunPlansCtx(ctx, nil, res, observe)
			if err != nil {
				return nil, fmt.Errorf("sketch-tier run: %w", err)
			}
			deg.SketchRuns++
			deg.ExtraRows += rerun.Rows
			store.Merge(rerun.Observed)
			for _, f := range rerun.Degraded {
				if _, ok := failed[f.Stat.Key()]; !ok {
					failed[f.Stat.Key()] = f
				}
			}
			// The rung completes the cycle only if every failed statistic is
			// now covered through its sketch sibling; a residue (cardinality
			// taps have no sketch variant) drops to pay-as-you-go.
			covered := true
			for _, f := range failed {
				if v, ok := stats.ApproxVariant(f.Stat); !ok || !store.Has(v) {
					covered = false
					break
				}
			}
			if covered {
				deg.Mode = "sketch"
			}
		}
	}

	if deg.Mode == "" {
		// Pay-as-you-go: run the trivial-CSS baseline sequence and learn
		// whatever SE cardinalities its re-ordered plans expose. The
		// baseline uses the batch engine regardless of the cycle's engine
		// choice — its plan sequences are short, and the observations are
		// engine-independent.
		rep := payg.Evaluate(res)
		pe := engine.New(cy.Analysis, cy.db, cy.cfg.Registry)
		pe.Workers = cy.cfg.Workers
		pe.MaxRows = cy.cfg.MaxRows
		pe.Faults = cy.cfg.Faults
		pe.RetryMax = cy.cfg.RetryMax
		pe.RetryBackoff = cy.cfg.RetryBackoff
		exec, err := payg.ExecuteCtx(ctx, pe, res, rep)
		if err != nil {
			return nil, fmt.Errorf("payg fallback: %w", err)
		}
		deg.Mode = "payg"
		deg.PaygRuns = exec.Runs
		deg.ExtraRows += exec.RowsTotal
		store.Merge(exec.Learned)
	}

	deg.Failed = make([]engine.FailedStat, 0, len(failed))
	for _, f := range failed {
		deg.Failed = append(deg.Failed, f)
	}
	sortFailed(deg.Failed)
	return deg, nil
}

// sortFailed orders failure reports canonically (stats.KeyLess).
func sortFailed(fs []engine.FailedStat) {
	sort.Slice(fs, func(i, j int) bool {
		return stats.KeyLess(fs[i].Stat.Key(), fs[j].Stat.Key())
	})
}
