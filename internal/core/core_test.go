package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

func statsTarget(block int, se expr.Set) stats.Target { return stats.BlockSE(block, se) }

// skewedRetail builds a flow whose designed order is bad: Orders joins the
// huge Log first although the Region filter join would shrink it far more.
func skewedRetail(t *testing.T) (*workflow.Graph, *workflow.Catalog, engine.DB) {
	t.Helper()
	specs := []data.TableSpec{
		{Rel: "Orders", Card: 3000, Columns: []data.ColumnSpec{
			{Name: "oid", Serial: true},
			{Name: "lid", Domain: 40, Skew: 1.5},
			{Name: "rid", Domain: 30, Skew: 1.3},
		}},
		{Rel: "Log", Card: 2000, Columns: []data.ColumnSpec{
			{Name: "lid", Domain: 40, Skew: 1.5},
		}},
		{Rel: "Region", Card: 8, Columns: []data.ColumnSpec{
			{Name: "rid", Domain: 30},
		}},
	}
	db := engine.DB{}
	cat := &workflow.Catalog{}
	for i, s := range specs {
		tbl := data.Generate(s, 31+int64(i))
		db[s.Rel] = tbl
		cat.Relations = append(cat.Relations, data.CatalogEntry(tbl, s))
	}
	b := workflow.NewBuilder("skewed")
	o := b.Source("Orders")
	l := b.Source("Log")
	r := b.Source("Region")
	j1 := b.Join(o, l, workflow.Attr{Rel: "Orders", Col: "lid"}, workflow.Attr{Rel: "Log", Col: "lid"})
	j2 := b.Join(j1, r, workflow.Attr{Rel: "Orders", Col: "rid"}, workflow.Attr{Rel: "Region", Col: "rid"})
	b.Sink(j2, "dw")
	return b.Graph(), cat, db
}

func TestRunFullCycle(t *testing.T) {
	g, cat, db := skewedRetail(t)
	cy, err := Run(g, cat, db, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if cy.Selection == nil || len(cy.Selection.Observe) == 0 {
		t.Fatal("no statistics selected")
	}
	if cy.Observed == nil || cy.Observed.Observed.Len() == 0 {
		t.Fatal("no statistics observed")
	}
	// The optimizer must find a plan at least as good as the designed one,
	// and the improvement metric must be consistent.
	if cy.Plans.TotalCost > cy.Plans.TotalInitialCost {
		t.Fatalf("optimized cost %v worse than initial %v", cy.Plans.TotalCost, cy.Plans.TotalInitialCost)
	}
	if cy.Improvement() < 1 {
		t.Fatalf("improvement %v < 1", cy.Improvement())
	}
	// Executing the optimized plan must produce identical output
	// cardinality (plans are semantically equivalent).
	init, err := engine.New(cy.Analysis, db, nil).Run()
	if err != nil {
		t.Fatalf("initial run: %v", err)
	}
	opt, err := cy.RunOptimized()
	if err != nil {
		t.Fatalf("RunOptimized: %v", err)
	}
	if init.Sinks["dw"].Card() != opt.Sinks["dw"].Card() {
		t.Fatalf("optimized output %d rows, initial %d", opt.Sinks["dw"].Card(), init.Sinks["dw"].Card())
	}
	if cy.Optimized == nil {
		t.Fatal("cycle did not record the optimized run")
	}
}

func TestCycleTimingsPopulated(t *testing.T) {
	g, cat, db := skewedRetail(t)
	cy, err := Run(g, cat, db, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if cy.Timings.GenerateCSS <= 0 || cy.Timings.Select <= 0 || cy.Timings.ObserveRun <= 0 {
		t.Fatalf("timings not populated: %+v", cy.Timings)
	}
}

func TestRunGreedyMethod(t *testing.T) {
	g, cat, db := skewedRetail(t)
	cfg := DefaultConfig()
	cfg.Method = selector.MethodGreedy
	cy, err := Run(g, cat, db, cfg)
	if err != nil {
		t.Fatalf("Run(greedy): %v", err)
	}
	if cy.Plans.TotalCost > cy.Plans.TotalInitialCost {
		t.Fatal("greedy-selected statistics still must allow full optimization")
	}
}

func TestDriftReoptimization(t *testing.T) {
	// Simulate the paper's design-once-execute-repeatedly drift story: after
	// data changes, a fresh cycle over the new data may choose a different
	// plan; both cycles' optimized plans must stay correct.
	g, cat, db := skewedRetail(t)
	cy1, err := Run(g, cat, db, DefaultConfig())
	if err != nil {
		t.Fatalf("cycle 1: %v", err)
	}
	// Drift: Region grows tenfold and Log shrinks.
	db["Region"] = data.Generate(data.TableSpec{Rel: "Region", Card: 500, Columns: []data.ColumnSpec{
		{Name: "rid", Domain: 30},
	}}, 77)
	db["Log"] = data.Generate(data.TableSpec{Rel: "Log", Card: 50, Columns: []data.ColumnSpec{
		{Name: "lid", Domain: 40, Skew: 1.5},
	}}, 78)
	cy2, err := Run(g, cat, db, DefaultConfig())
	if err != nil {
		t.Fatalf("cycle 2: %v", err)
	}
	for _, cy := range []*Cycle{cy1, cy2} {
		if _, err := cy.RunOptimized(); err != nil {
			t.Fatalf("RunOptimized: %v", err)
		}
	}
}

func TestSecondCycleUsesLearnedSizes(t *testing.T) {
	g, cat, db := skewedRetail(t)
	cfg := DefaultConfig()
	cfg.CPUWeight = 0.001 // engage the CPU metric
	cy1, err := Run(g, cat, db, cfg)
	if err != nil {
		t.Fatalf("cycle 1: %v", err)
	}
	// The second cycle prices CPU with the first cycle's exact sizes.
	cfg2 := cy1.NextConfig()
	if cfg2.Sizes == nil {
		t.Fatal("NextConfig did not carry the learned sizes")
	}
	cy2, err := Run(g, cat, db, cfg2)
	if err != nil {
		t.Fatalf("cycle 2: %v", err)
	}
	// Both cycles produce valid, coverage-complete selections; the learned
	// sizes may change which statistics win, but never correctness.
	for _, cy := range []*Cycle{cy1, cy2} {
		if cy.Plans.TotalCost > cy.Plans.TotalInitialCost {
			t.Fatal("optimizer regressed")
		}
	}
	// Learned sizes answer SE targets exactly.
	blk0full := cy1.CSS.Space(0).Full()
	got, ok := cy1.Estimator.SizeOf(statsTarget(0, blk0full))
	if !ok || got <= 0 {
		t.Fatalf("SizeOf(full) = %v, %v", got, ok)
	}
}

func TestSaveAndOptimizeFromSaved(t *testing.T) {
	g, cat, db := skewedRetail(t)
	cy, err := Run(g, cat, db, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := cy.SaveStats(&buf); err != nil {
		t.Fatalf("SaveStats: %v", err)
	}
	// A "fresh process": rebuild everything from the saved statistics.
	est, plans, err := OptimizeFromSaved(g, cat, &buf, DefaultConfig())
	if err != nil {
		t.Fatalf("OptimizeFromSaved: %v", err)
	}
	if plans.TotalCost != cy.Plans.TotalCost {
		t.Fatalf("reloaded optimization cost %v != original %v", plans.TotalCost, cy.Plans.TotalCost)
	}
	full := cy.CSS.Space(0).Full()
	a, err := cy.Estimator.CardOf(0, full)
	if err != nil {
		t.Fatalf("original CardOf: %v", err)
	}
	b, err := est.CardOf(0, full)
	if err != nil {
		t.Fatalf("reloaded CardOf: %v", err)
	}
	if a != b {
		t.Fatalf("reloaded estimate %d != original %d", b, a)
	}
}

// TestOptimizeFromSavedPartialStore: a store missing required statistics
// (the shape of a partial save from a degraded or cancelled run) must not
// silently feed incomplete statistics to the estimator: the default mode
// fails with a typed MissingStatsError naming them, and AllowPartialStats
// proceeds with the affected blocks on their initial plans.
func TestOptimizeFromSavedPartialStore(t *testing.T) {
	g, cat, db := skewedRetail(t)
	cy, err := Run(g, cat, db, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := cy.SaveStats(&buf); err != nil {
		t.Fatalf("SaveStats: %v", err)
	}
	full, err := stats.ReadStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadStore: %v", err)
	}
	// Drop every histogram: join cardinalities lose their derivation paths
	// while any directly-observed scalars survive.
	partial := stats.NewStore()
	kept := 0
	for _, v := range full.Values() {
		if v.Hist != nil {
			continue
		}
		if err := partial.PutScalar(v.Stat, v.Scalar); err != nil {
			t.Fatal(err)
		}
		kept++
	}
	if kept == full.Len() {
		t.Fatal("test store had no histograms to drop")
	}
	var pbuf bytes.Buffer
	if _, err := partial.WriteTo(&pbuf); err != nil {
		t.Fatal(err)
	}

	// Default mode: typed error naming the missing statistics.
	_, _, err = OptimizeFromSaved(g, cat, bytes.NewReader(pbuf.Bytes()), DefaultConfig())
	var miss *MissingStatsError
	if !errors.As(err, &miss) {
		t.Fatalf("want *MissingStatsError, got %v", err)
	}
	if len(miss.Missing) == 0 || len(miss.Blocks) == 0 || len(miss.Labels) != len(miss.Missing) {
		t.Fatalf("error not fully populated: %+v", miss)
	}
	for _, s := range miss.Missing {
		if s.Kind != stats.Card {
			t.Fatalf("missing statistic %v is not a required cardinality", s.Key())
		}
	}
	if msg := miss.Error(); !strings.Contains(msg, "AllowPartialStats") || !strings.Contains(msg, "|") {
		t.Fatalf("message does not name statistics or the fallback: %q", msg)
	}

	// Fallback mode: the cycle completes with affected blocks on their
	// initial plans.
	cfg := DefaultConfig()
	cfg.AllowPartialStats = true
	_, plans, err := OptimizeFromSaved(g, cat, bytes.NewReader(pbuf.Bytes()), cfg)
	if err != nil {
		t.Fatalf("AllowPartialStats mode: %v", err)
	}
	if len(plans.Fallbacks) == 0 {
		t.Fatal("no fallback blocks despite missing statistics")
	}
	for _, b := range plans.Fallbacks {
		blk := cy.Analysis.Blocks[b]
		p, ok := plans.Plans[b]
		if !ok || p.Tree.Render(blk) != blk.Initial.Render(blk) {
			t.Fatalf("fallback block %d not on its initial plan", b)
		}
	}
	if len(plans.Plans) != len(cy.Analysis.Blocks) {
		t.Fatalf("partial optimization returned %d plans for %d blocks", len(plans.Plans), len(cy.Analysis.Blocks))
	}

	// A complete store must keep working identically in both modes.
	for _, allow := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.AllowPartialStats = allow
		_, p2, err := OptimizeFromSaved(g, cat, bytes.NewReader(buf.Bytes()), cfg)
		if err != nil {
			t.Fatalf("complete store, allow=%v: %v", allow, err)
		}
		if len(p2.Fallbacks) != 0 {
			t.Fatalf("complete store, allow=%v: unexpected fallbacks %v", allow, p2.Fallbacks)
		}
		if p2.TotalCost != cy.Plans.TotalCost {
			t.Fatalf("complete store, allow=%v: cost %v != %v", allow, p2.TotalCost, cy.Plans.TotalCost)
		}
	}
}

func TestDriftFromTriggersOnChange(t *testing.T) {
	g, cat, db := skewedRetail(t)
	cy1, err := Run(g, cat, db, DefaultConfig())
	if err != nil {
		t.Fatalf("cycle 1: %v", err)
	}
	// Same data: negligible drift.
	cy2, err := Run(g, cat, db, DefaultConfig())
	if err != nil {
		t.Fatalf("cycle 2: %v", err)
	}
	if d := cy2.DriftFrom(cy1); d.Exceeds(0.01) {
		t.Fatalf("same-data drift = %+v", d)
	}
	// Changed data: drift exceeds a reasonable threshold.
	db["Log"] = data.Generate(data.TableSpec{Rel: "Log", Card: 16000, Columns: []data.ColumnSpec{
		{Name: "lid", Domain: 40, Skew: 1.9},
	}}, 123)
	cy3, err := Run(g, cat, db, DefaultConfig())
	if err != nil {
		t.Fatalf("cycle 3: %v", err)
	}
	if d := cy3.DriftFrom(cy1); !d.Exceeds(0.2) {
		t.Fatalf("grown-data drift = %+v, expected above 0.2", d)
	}
}

func TestStreamingCycleMatchesBatch(t *testing.T) {
	g, cat, db := skewedRetail(t)
	batchCfg := DefaultConfig()
	cyB, err := Run(g, cat, db, batchCfg)
	if err != nil {
		t.Fatalf("batch cycle: %v", err)
	}
	streamCfg := DefaultConfig()
	streamCfg.Streaming = true
	cyS, err := Run(g, cat, db, streamCfg)
	if err != nil {
		t.Fatalf("streaming cycle: %v", err)
	}
	if cyB.Plans.TotalCost != cyS.Plans.TotalCost {
		t.Fatalf("plan costs differ across engines: %v vs %v", cyB.Plans.TotalCost, cyS.Plans.TotalCost)
	}
	full := cyB.CSS.Space(0).Full()
	a, _ := cyB.Estimator.CardOf(0, full)
	b, _ := cyS.Estimator.CardOf(0, full)
	if a != b {
		t.Fatalf("estimates differ across engines: %d vs %d", a, b)
	}
	optS, err := cyS.RunOptimized()
	if err != nil {
		t.Fatalf("streaming optimized run: %v", err)
	}
	optB, err := cyB.RunOptimized()
	if err != nil {
		t.Fatalf("batch optimized run: %v", err)
	}
	if optS.Sinks["dw"].Card() != optB.Sinks["dw"].Card() {
		t.Fatalf("optimized outputs differ: %d vs %d", optS.Sinks["dw"].Card(), optB.Sinks["dw"].Card())
	}
}

func TestReportRendering(t *testing.T) {
	g, cat, db := skewedRetail(t)
	cy, err := Run(g, cat, db, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := cy.Report(&buf); err != nil {
		t.Fatalf("Report: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Optimization cycle", "## Statistics observed", "## Observed values",
		"## Plans", "## Derivations", "improvement:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
