package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/essential-stats/etlopt/internal/faults"
	"github.com/essential-stats/etlopt/internal/stats"
)

// TestDegradedCyclePermanentTapFaults is the ladder's contract: permanent
// tap faults — at any rate up to "every tap fails" — never abort the
// cycle. It completes with plans for every block, reports the rung used
// (alternate covering CSS or pay-as-you-go), and produces identical sink
// output to a fault-free run (tap faults lose observations, never data).
func TestDegradedCyclePermanentTapFaults(t *testing.T) {
	g, cat, db := skewedRetail(t)
	clean, err := Run(g, cat, db, DefaultConfig())
	if err != nil {
		t.Fatalf("clean Run: %v", err)
	}

	for _, tc := range []struct {
		name string
		rate float64
	}{
		{"some-taps", 0.4},
		{"all-taps", 1},
	} {
		for _, streaming := range []bool{false, true} {
			name := tc.name + "/batch"
			if streaming {
				name = tc.name + "/stream"
			}
			t.Run(name, func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Streaming = streaming
				cfg.Faults = faults.New(11, tc.rate, 0, faults.Tap) // transient=0: permanent
				cy, err := Run(g, cat, db, cfg)
				if err != nil {
					t.Fatalf("faulted Run aborted: %v", err)
				}
				if !cy.Degraded() {
					t.Fatal("rate>0 permanent tap faults produced a clean cycle")
				}
				deg := cy.Degradation
				if len(deg.Failed) == 0 {
					t.Fatal("degradation report lists no failed statistics")
				}
				if deg.Mode != "alternate-css" && deg.Mode != "sketch" && deg.Mode != "payg" {
					t.Fatalf("unexpected degradation mode %q", deg.Mode)
				}
				if tc.rate == 1 && deg.Mode != "payg" {
					// Every tap site fails, including re-observation and
					// payg taps; only the payg rung (and then initial-plan
					// fallback) remains.
					t.Fatalf("all taps failed but mode is %q", deg.Mode)
				}
				if cy.Plans == nil || len(cy.Plans.Plans) != len(cy.Analysis.Blocks) {
					t.Fatal("degraded cycle is missing block plans")
				}
				for _, bi := range deg.FallbackBlocks {
					if p := cy.Plans.Plans[bi]; p == nil {
						t.Fatalf("fallback block %d has no plan", bi)
					}
				}
				// Data output is untouched by observation loss.
				for name, tbl := range clean.Observed.Sinks {
					got := cy.Observed.Sinks[name]
					if got == nil || got.Card() != tbl.Card() {
						t.Fatalf("sink %q differs under tap faults", name)
					}
				}
				if t.Failed() {
					return
				}
				t.Logf("mode=%s failed=%d reruns=%d payg=%d fallback-blocks=%d",
					deg.Mode, len(deg.Failed), deg.Reruns, deg.PaygRuns, len(deg.FallbackBlocks))
			})
		}
	}
}

// TestAlternateCSSRungReached scans injector seeds at a low tap-fault rate
// until the ladder completes on its middle rung: at least one seed must
// lose a statistic the covering structure can route around, producing an
// "alternate-css" cycle with no fallback blocks (every cardinality still
// derivable, so the optimizer runs at full strength).
func TestAlternateCSSRungReached(t *testing.T) {
	g, cat, db := skewedRetail(t)
	for seed := uint64(1); seed <= 32; seed++ {
		cfg := DefaultConfig()
		cfg.Faults = faults.New(seed, 0.15, 0, faults.Tap)
		cy, err := Run(g, cat, db, cfg)
		if err != nil {
			t.Fatalf("seed %d: Run aborted: %v", seed, err)
		}
		if cy.Degradation == nil || cy.Degradation.Mode != "alternate-css" {
			continue
		}
		if n := len(cy.Degradation.FallbackBlocks); n != 0 {
			t.Fatalf("seed %d: alternate-css rung left %d fallback blocks", seed, n)
		}
		if cy.Degradation.Reruns == 0 {
			// Covered by held statistics alone — still the middle rung,
			// but keep scanning for a seed that exercises re-observation.
			continue
		}
		t.Logf("seed %d: alternate-css with %d failed, %d rerun(s)", seed, len(cy.Degradation.Failed), cy.Degradation.Reruns)
		return
	}
	t.Fatal("no injector seed in 1..32 completed via the alternate-css rung with a re-observation run")
}

// TestSketchRungReached scans injector seeds until the ladder completes on
// the sketch rung: every permanently failed statistic recovered through its
// bounded-memory approximate sibling (which tap faults cannot touch), with
// no pay-as-you-go runs and no fallback blocks. The rate is chosen low
// enough that some seed fails only statistics with sketch variants.
func TestSketchRungReached(t *testing.T) {
	g, cat, db := skewedRetail(t)
	for seed := uint64(1); seed <= 64; seed++ {
		cfg := DefaultConfig()
		cfg.Faults = faults.New(seed, 0.3, 0, faults.Tap)
		cy, err := Run(g, cat, db, cfg)
		if err != nil {
			t.Fatalf("seed %d: Run aborted: %v", seed, err)
		}
		deg := cy.Degradation
		if deg == nil || deg.Mode != "sketch" {
			continue
		}
		if deg.SketchRuns != 1 {
			t.Fatalf("seed %d: sketch mode with %d sketch runs", seed, deg.SketchRuns)
		}
		if deg.PaygRuns != 0 {
			t.Fatalf("seed %d: sketch mode ran payg %d time(s)", seed, deg.PaygRuns)
		}
		// Every failure must actually be covered by an observed sketch.
		store := cy.Observed.Observed
		for _, f := range deg.Failed {
			v, ok := stats.ApproxVariant(f.Stat)
			if !ok || !store.Has(v) {
				t.Fatalf("seed %d: failed statistic %v not covered by a sketch", seed, f.Stat.Key())
			}
		}
		if n := len(deg.FallbackBlocks); n != 0 {
			t.Fatalf("seed %d: sketch rung left %d fallback blocks", seed, n)
		}
		t.Logf("seed %d: sketch rung recovered %d failed statistic(s)", seed, len(deg.Failed))
		return
	}
	t.Fatal("no injector seed in 1..64 completed via the sketch rung")
}

// TestDegradedCycleDeterministic re-runs the same faulted configuration and
// expects an identical degradation report — the injector is a pure function
// of (seed, site), so the ladder must walk the same path every time.
func TestDegradedCycleDeterministic(t *testing.T) {
	g, cat, db := skewedRetail(t)
	report := func() *Degradation {
		cfg := DefaultConfig()
		cfg.Faults = faults.New(23, 0.5, 0, faults.Tap)
		cy, err := Run(g, cat, db, cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if cy.Degradation == nil {
			t.Fatal("expected a degraded cycle")
		}
		return cy.Degradation
	}
	a, b := report(), report()
	if a.Mode != b.Mode || len(a.Failed) != len(b.Failed) || a.Reruns != b.Reruns || a.PaygRuns != b.PaygRuns {
		t.Fatalf("degradation not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Failed {
		if a.Failed[i].Stat.Key() != b.Failed[i].Stat.Key() {
			t.Fatalf("failed statistic order differs at %d", i)
		}
	}
}

// TestTransientFaultsRecoverCleanly: transient faults retry inside the
// engine; the cycle itself must come out clean (no degradation) with the
// same selection-observed statistics as a fault-free run.
func TestTransientFaultsRecoverCleanly(t *testing.T) {
	g, cat, db := skewedRetail(t)
	clean, err := Run(g, cat, db, DefaultConfig())
	if err != nil {
		t.Fatalf("clean Run: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Faults = faults.New(1, 1, 1, 0) // every site faults once, retries clear
	cy, err := Run(g, cat, db, cfg)
	if err != nil {
		t.Fatalf("transient-faulted Run: %v", err)
	}
	if cy.Degraded() {
		t.Fatalf("transient faults degraded the cycle: %v", cy.Degradation)
	}
	if cy.Observed.Retries == 0 {
		t.Fatal("no retries recorded despite rate-1 transient faults")
	}
	for _, v := range clean.Observed.Observed.Values() {
		if !cy.Observed.Observed.Has(v.Stat) {
			t.Fatalf("statistic %v missing after transient recovery", v.Stat.Key())
		}
		if v.Hist == nil {
			got, err := cy.Observed.Observed.Scalar(v.Stat)
			if err != nil {
				t.Fatalf("statistic %v: %v", v.Stat.Key(), err)
			}
			if got != v.Scalar {
				t.Fatalf("statistic %v: %d after recovery, want %d", v.Stat.Key(), got, v.Scalar)
			}
		}
	}
}

// TestRunCtxCancelled: a cancelled context aborts the cycle with the
// context's error and a partial cycle for flushing.
func TestRunCtxCancelled(t *testing.T) {
	g, cat, db := skewedRetail(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cy, err := RunCtx(ctx, g, cat, db, DefaultConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if cy == nil {
		t.Fatal("no partial cycle returned on cancellation")
	}
}

// TestRunCtxDeadline: an already-expired deadline surfaces as
// context.DeadlineExceeded.
func TestRunCtxDeadline(t *testing.T) {
	g, cat, db := skewedRetail(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := RunCtx(ctx, g, cat, db, DefaultConfig())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}
