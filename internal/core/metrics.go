package core

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
)

// WriteMetrics renders the cycle's per-operator metrics and the estimate
// feedback in the given format ("table" or "json"). The output is
// deterministic: it carries only execution-strategy-independent fields
// (row counts, q-errors) and is bit-identical across engines, worker
// counts and repeated runs. Timing lives in WriteMetricsTimings, which is
// wall-clock and belongs on stderr.
func (cy *Cycle) WriteMetrics(w io.Writer, format string) error {
	if cy.Metrics == nil {
		return fmt.Errorf("core: no metrics collected (set Config.CollectMetrics)")
	}
	switch format {
	case "json":
		payload := struct {
			Nodes    interface{} `json:"nodes"`
			Feedback interface{} `json:"feedback,omitempty"`
		}{Nodes: cy.Metrics.Nodes, Feedback: cy.Feedback}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(payload)
	case "table", "":
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "BLOCK\tNODE\tOP\tLABEL\tROWS IN\tROWS OUT")
		for _, n := range cy.Metrics.Nodes {
			fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%d\t%d\n",
				n.Block, n.Node, n.Op, n.Label, n.RowsIn, n.RowsOut)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		if cy.Feedback != nil {
			fmt.Fprintln(w)
			if _, err := io.WriteString(w, cy.Feedback.Render()); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("core: unknown metrics format %q (want table or json)", format)
	}
}

// WriteMetricsTimings summarizes the run's wall-clock split between
// operator work and statistic-tap observation. Wall times vary run to run
// (and, in the streaming engine, are cumulative along pipelines), so this
// is kept out of the deterministic WriteMetrics output.
func (cy *Cycle) WriteMetricsTimings(w io.Writer) {
	if cy.Metrics == nil {
		return
	}
	wall, tap := cy.Metrics.Totals()
	pct := 0.0
	if wall+tap > 0 {
		pct = 100 * float64(tap) / float64(wall+tap)
	}
	fmt.Fprintf(w, "operator wall time %.3fms, tap overhead %.3fms (%.1f%% of execution)\n",
		float64(wall)/1e6, float64(tap)/1e6, pct)
}
