package core

import (
	"strings"
	"testing"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// twoBlockSkewed builds a workflow whose analysis yields two blocks: block
// 0 joins Orders with Product and closes at a group-by boundary; block 1
// joins the boundary output with the huge Log first (the designed, bad
// order) although the tiny Region join would shrink it far more.
func twoBlockSkewed(t *testing.T) (*workflow.Graph, *workflow.Catalog, engine.DB) {
	t.Helper()
	specs := []data.TableSpec{
		{Rel: "Orders", Card: 3000, Columns: []data.ColumnSpec{
			{Name: "oid", Serial: true},
			{Name: "pid", Domain: 50, Skew: 1.1},
			{Name: "lid", Domain: 40, Skew: 1.5},
			{Name: "rid", Domain: 30, Skew: 1.3},
		}},
		{Rel: "Product", Card: 50, Columns: []data.ColumnSpec{
			{Name: "pid", Domain: 50},
		}},
		{Rel: "Log", Card: 2000, Columns: []data.ColumnSpec{
			{Name: "lid", Domain: 40, Skew: 1.5},
		}},
		{Rel: "Region", Card: 8, Columns: []data.ColumnSpec{
			{Name: "rid", Domain: 30},
		}},
	}
	db := engine.DB{}
	cat := &workflow.Catalog{}
	for i, s := range specs {
		tbl := data.Generate(s, 57+int64(i))
		db[s.Rel] = tbl
		cat.Relations = append(cat.Relations, data.CatalogEntry(tbl, s))
	}
	b := workflow.NewBuilder("twoblock")
	o := b.Source("Orders")
	p := b.Source("Product")
	j0 := b.Join(o, p, workflow.Attr{Rel: "Orders", Col: "pid"}, workflow.Attr{Rel: "Product", Col: "pid"})
	gby := b.GroupBy(j0,
		workflow.Attr{Rel: "Orders", Col: "oid"},
		workflow.Attr{Rel: "Orders", Col: "lid"},
		workflow.Attr{Rel: "Orders", Col: "rid"})
	l := b.Source("Log")
	r := b.Source("Region")
	j1 := b.Join(gby, l, workflow.Attr{Rel: "Orders", Col: "lid"}, workflow.Attr{Rel: "Log", Col: "lid"})
	j2 := b.Join(j1, r, workflow.Attr{Rel: "Orders", Col: "rid"}, workflow.Attr{Rel: "Region", Col: "rid"})
	b.Sink(j2, "dw")
	return b.Graph(), cat, db
}

// TestAdaptiveReplanSplicesCone is the driver-level tentpole test: a
// forced mid-run replan re-optimizes only the pending cone, splices it in
// through the resume path, changes the sabotaged block's join tree back to
// the optimal one, and the spliced result is identical to a cold run of
// the final plans — with the work metric proving no completed block re-ran.
func TestAdaptiveReplanSplicesCone(t *testing.T) {
	g, cat, db := twoBlockSkewed(t)
	cy, err := Run(g, cat, db, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(cy.Analysis.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(cy.Analysis.Blocks))
	}
	blk1 := cy.Analysis.Blocks[1]
	goodTree := cy.Plans.Plans[1].Tree.Render(blk1)
	if goodTree == blk1.Initial.Render(blk1) {
		t.Fatal("fixture broken: the optimizer kept block 1's designed order")
	}

	// Sabotage: schedule block 1 on its (bad) designed order, then force a
	// replan at block 0's boundary via estimate skew. The shadow
	// re-optimization must restore the good tree before block 1 runs.
	cy.Plans.Plans[1].Tree = blk1.Initial
	ar, err := cy.RunOptimizedAdaptive(AdaptiveOptions{Skew: map[int]float64{0: 5}})
	if err != nil {
		t.Fatalf("RunOptimizedAdaptive: %v", err)
	}
	if len(ar.Replans) != 1 {
		t.Fatalf("replans = %d, want exactly 1 (skew is dropped after the first)", len(ar.Replans))
	}
	rec := ar.Replans[0]
	if rec.AtBlock != 0 || rec.Trigger.Block != 0 {
		t.Fatalf("replan tripped at block %d (trigger block %d), want the block-0 boundary", rec.AtBlock, rec.Trigger.Block)
	}
	if len(rec.Reoptimized) != 1 || rec.Reoptimized[0] != 1 {
		t.Fatalf("reoptimized %v, want only the pending cone [1]", rec.Reoptimized)
	}
	if len(rec.Changed) != 1 || rec.Changed[0] != 1 {
		t.Fatalf("changed %v, want [1]", rec.Changed)
	}
	if got := ar.Plans[1].Render(blk1); got != goodTree {
		t.Fatalf("spliced tree:\n%s\nwant the optimal tree:\n%s", got, goodTree)
	}
	if ar.Checks == 0 {
		t.Fatal("no boundary checks recorded")
	}

	// The spliced run must be identical to a cold run of the final plans.
	cold, err := engine.New(cy.Analysis, db, nil).RunPlansObserving(ar.Plans, cy.CSS, cy.Selection.Observe)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if a, c := ar.Run.Sinks["dw"].Card(), cold.Sinks["dw"].Card(); a != c {
		t.Fatalf("spliced sink %d rows, cold %d", a, c)
	}
	if ar.Run.Rows != cold.Rows {
		t.Fatalf("spliced work %d rows, cold %d — a completed block re-ran or the cone double-executed", ar.Run.Rows, cold.Rows)
	}
	for _, v := range cold.Observed.Values() {
		if !ar.Run.Observed.Has(v.Stat) {
			t.Fatalf("spliced store missing %v", v.Stat.Key())
		}
	}

	sum := ar.Summary()
	if !strings.Contains(sum, "1 replan(s)") || !strings.Contains(sum, "replan 1 after block 0") {
		t.Fatalf("summary not deterministic or incomplete:\n%s", sum)
	}
	if cy.Optimized != ar.Run {
		t.Fatal("cycle did not record the adaptive run")
	}
}

// TestAdaptiveNoReplanOnAccurateEstimates: without skew the plan-time
// estimates are exact (derived from the same data), so no boundary check
// may trip — the adaptive machinery must be inert on accurate plans.
func TestAdaptiveNoReplanOnAccurateEstimates(t *testing.T) {
	g, cat, db := twoBlockSkewed(t)
	cy, err := Run(g, cat, db, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ar, err := cy.RunOptimizedAdaptive(AdaptiveOptions{})
	if err != nil {
		t.Fatalf("RunOptimizedAdaptive: %v", err)
	}
	if len(ar.Replans) != 0 {
		t.Fatalf("accurate estimates replanned: %+v", ar.Replans)
	}
	if ar.Checks == 0 {
		t.Fatal("no boundary checks ran")
	}
	opt, err := engine.New(cy.Analysis, db, nil).RunPlans(cy.Plans.Trees(), nil, nil)
	if err != nil {
		t.Fatalf("plain optimized run: %v", err)
	}
	if ar.Run.Sinks["dw"].Card() != opt.Sinks["dw"].Card() {
		t.Fatalf("adaptive-off-path sink %d rows, plain %d", ar.Run.Sinks["dw"].Card(), opt.Sinks["dw"].Card())
	}
	if !strings.Contains(ar.Summary(), "0 replan(s)") {
		t.Fatalf("summary = %q", ar.Summary())
	}
}

// TestAdaptiveMaxReplansCap: with a skew that would trip at every boundary
// (applied to every block and never satisfiable), the replan budget caps
// the loop instead of flapping.
func TestAdaptiveMaxReplansCap(t *testing.T) {
	g, cat, db := twoBlockSkewed(t)
	cy, err := Run(g, cat, db, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ar, err := cy.RunOptimizedAdaptive(AdaptiveOptions{
		Skew:       map[int]float64{0: 5, 1: 5},
		MaxReplans: 1,
	})
	if err != nil {
		t.Fatalf("RunOptimizedAdaptive: %v", err)
	}
	if len(ar.Replans) > 1 {
		t.Fatalf("replans = %d, want <= 1 under MaxReplans=1", len(ar.Replans))
	}
}
