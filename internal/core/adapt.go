package core

// Mid-run adaptive re-optimization: the first feature that closes the
// observe → estimate → re-plan loop *inside* a run rather than between
// runs. The optimized run executes under an engine AdaptCheck; at every
// block boundary the driver folds the just-committed block's tapped
// actuals into its evidence and compares them, through ConeFeedback,
// against the estimates that justified the not-yet-executed cone. When a
// boundary actual refutes its estimate beyond the de-flapped threshold the
// run stops with a ReplanSignal; the driver injects every actual collected
// so far as an exact cardinality into a shadow statistics store, re-invokes
// the optimizer on only the pending blocks, and splices the re-optimized
// cone in through the engines' Resume path — completed blocks are never
// re-run, and their boundary outputs, materialized tables and observed
// statistics carry over through the checkpoint unchanged.
//
// De-flapping, in three layers:
//
//   - the trigger threshold is widened by the plan-time P90 q-error
//     (Feedback.ReplanThreshold): estimates deviating within the envelope
//     the plan was already justified under are not news;
//   - vacuous 0/0 targets and over-predicted empty SEs never trip
//     (Feedback.TripsReplan) — they are measurement noise, not refutation;
//   - after a replan the absorbed actuals become exact store hits in the
//     shadow estimator (q-error 1), so the same evidence cannot re-trigger;
//     MaxReplans caps pathological workloads outright.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/estimate"
	"github.com/essential-stats/etlopt/internal/optimizer"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// DefaultReplanThreshold is the base q-error a boundary actual must exceed
// to trigger a mid-run replan (before the plan-time calibration widens it).
const DefaultReplanThreshold = 2.0

// DefaultMaxReplans caps replans per run.
const DefaultMaxReplans = 3

// AdaptiveOptions tune one adaptive execution.
type AdaptiveOptions struct {
	// Threshold is the base replan q-error threshold (0 = the default of
	// 2). The effective threshold is widened by the plan-time feedback's
	// P90 q-error when the cycle collected metrics.
	Threshold float64
	// MaxReplans caps mid-run replans (0 = the default of 3).
	MaxReplans int
	// Skew multiplies the derived estimates of the named blocks during the
	// boundary checks — the deterministic forcing knob the equivalence
	// tests and the -replan-skew flag use to provoke a replan without
	// perturbing data. It is dropped after the first replan it causes (the
	// absorbed actuals already correct the skewed blocks), so a skew forces
	// at most one replan.
	Skew map[int]float64
}

// Replan records one mid-run re-optimization.
type Replan struct {
	// AtBlock is the boundary block whose actuals tripped the check.
	AtBlock int
	// Trigger is the report that refuted its estimate.
	Trigger estimate.SEReport
	// Reoptimized lists the pending blocks re-optimized (ascending).
	Reoptimized []int
	// Changed lists the blocks whose join tree actually changed (ascending).
	Changed []int
	// Fallbacks lists pending blocks kept on their current trees because
	// the shadow estimator could not derive their cone (ascending).
	Fallbacks []int
}

// AdaptiveResult is the outcome of one adaptive optimized run.
type AdaptiveResult struct {
	// Run is the final spliced execution result: sinks, materialized
	// tables, observed statistics and the work metric across all segments.
	Run *engine.Result
	// Plans holds the per-block join trees the run finished under —
	// executing them cold reproduces Run exactly (the equivalence suite
	// pins this byte-for-byte).
	Plans map[int]*workflow.JoinTree
	// Replans lists the mid-run re-optimizations in order (empty when the
	// estimates held up).
	Replans []Replan
	// Threshold is the effective replan threshold after calibration.
	Threshold float64
	// Checks counts boundary checks performed across all segments.
	Checks int
}

// Summary renders a deterministic one-block replan report (no timing, no
// map iteration) — the line cmd/etlopt prints under -adaptive.
func (ar *AdaptiveResult) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "adaptive: %d replan(s) in %d boundary check(s), threshold q>%.4g\n",
		len(ar.Replans), ar.Checks, ar.Threshold)
	for i, r := range ar.Replans {
		fmt.Fprintf(&sb, "  replan %d after block %d: %s actual %d est %d (q %.4g); reoptimized %v changed %v",
			i+1, r.AtBlock, r.Trigger.Label, r.Trigger.Actual, r.Trigger.Estimate, r.Trigger.QError,
			r.Reoptimized, r.Changed)
		if len(r.Fallbacks) > 0 {
			fmt.Fprintf(&sb, " fallback %v", r.Fallbacks)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// adaptState is the driver's side of the engine AdaptCheck: evidence
// accumulated across segments, and the trigger captured for the signal
// handler.
type adaptState struct {
	cy        *Cycle
	est       *estimate.Estimator
	skew      map[int]float64
	threshold float64
	remaining int

	actuals map[stats.Target]int64
	checks  int
	trigger estimate.SEReport
}

// check is the engine boundary hook. It runs on the engine's (sequential)
// scheduling goroutine, between blocks, so no locking is needed.
func (st *adaptState) check(plan *physical.Plan, block int, done map[int]bool) bool {
	// Fold in the just-committed block's tapped actuals. Each block commits
	// exactly once across segments (checkpointed blocks never re-fire), so
	// the evidence never double-counts.
	for t, v := range plan.BlockActuals(block) {
		st.actuals[t] = v
	}
	if st.remaining <= 0 {
		return false
	}
	st.checks++
	fb := estimate.ConeFeedback(st.cy.CSS, st.est, st.actuals, st.skew)
	rep, trip := fb.TripsReplan(st.threshold)
	if !trip {
		return false
	}
	st.trigger = rep
	return true
}

// replan absorbs the evidence into a shadow store, re-optimizes the
// pending cone and updates the scheduled trees in place. The returned
// record lists what changed.
func (st *adaptState) replan(cp *engine.Checkpoint, cur map[int]*workflow.JoinTree) (Replan, error) {
	res := st.cy.CSS
	rec := Replan{AtBlock: st.trigger.Block, Trigger: st.trigger}

	// Shadow store: the tapped actuals as exact cardinalities, layered over
	// the plan-time observations (Merge copies only absent keys, so the
	// actuals win wherever both speak).
	shadow := stats.NewStore()
	for t, v := range st.actuals {
		shadow.PutScalar(stats.NewCard(t), v)
	}
	if st.cy.Observed != nil && st.cy.Observed.Observed != nil {
		shadow.Merge(st.cy.Observed.Observed)
	}
	st.est = estimate.New(res, shadow)

	pending := make(map[int]bool)
	for bi := range res.Analysis.Blocks {
		if _, ok := cp.BlockOut[bi]; !ok {
			pending[bi] = true
			rec.Reoptimized = append(rec.Reoptimized, bi)
		}
	}
	sort.Ints(rec.Reoptimized)

	plans, err := optimizer.OptimizeOpts(res, st.est, st.cy.cfg.CostModel,
		optimizer.Options{FallbackInitial: true, Only: pending})
	if err != nil {
		return rec, fmt.Errorf("core: adaptive re-optimize: %w", err)
	}
	fellBack := make(map[int]bool, len(plans.Fallbacks))
	for _, bi := range plans.Fallbacks {
		fellBack[bi] = true
	}
	for _, bi := range rec.Reoptimized {
		p := plans.Plans[bi]
		if p == nil || fellBack[bi] {
			// Underivable cone: keep the tree the run is already scheduled
			// under — the degradation rung for a replan, mirroring how
			// between-run optimization falls back to the initial plan.
			rec.Fallbacks = append(rec.Fallbacks, bi)
			continue
		}
		blk := res.Analysis.Blocks[bi]
		if renderTree(p.Tree, blk) != renderTree(cur[bi], blk) {
			rec.Changed = append(rec.Changed, bi)
		}
		cur[bi] = p.Tree
	}
	sort.Ints(rec.Changed)

	// The skew forced this replan; the absorbed actuals already correct the
	// skewed blocks, so keeping it would only burn the replan budget
	// re-confirming a disagreement the shadow store no longer has.
	st.skew = nil
	st.remaining--
	return rec, nil
}

// renderTree renders a scheduled tree (nil = the block's initial tree, the
// engine's interpretation of a missing map entry).
func renderTree(t *workflow.JoinTree, blk *workflow.Block) string {
	if t == nil {
		t = blk.Initial
	}
	if t == nil {
		return ""
	}
	return t.Render(blk)
}

// newAdaptiveExecutor builds the configured engine with metrics collection
// forced on (the boundary checks read actuals off the live plan's node
// metrics) and the AdaptCheck armed. It returns the two segment entry
// points the driver needs: the instrumented first run and the instrumented
// resume, both without the initial-plan observability filter (the executed
// trees are re-optimized, not initial).
func newAdaptiveExecutor(an *workflow.Analysis, db engine.DB, cfg Config, res *css.Result, check engine.AdaptCheck) (
	runObs func(ctx context.Context, plans map[int]*workflow.JoinTree, observe []stats.Stat) (*engine.Result, error),
	resumeObs func(ctx context.Context, cp *engine.Checkpoint, plans map[int]*workflow.JoinTree, observe []stats.Stat) (*engine.Result, error),
) {
	cfg.CollectMetrics = true
	if cfg.Streaming {
		eng := newExecutor(an, db, cfg).(*engine.StreamEngine)
		eng.AdaptCheck = check
		return func(ctx context.Context, plans map[int]*workflow.JoinTree, observe []stats.Stat) (*engine.Result, error) {
				return eng.RunPlansObservingCtx(ctx, plans, res, observe)
			}, func(ctx context.Context, cp *engine.Checkpoint, plans map[int]*workflow.JoinTree, observe []stats.Stat) (*engine.Result, error) {
				return eng.ResumeObserving(ctx, cp, plans, res, observe)
			}
	}
	eng := newExecutor(an, db, cfg).(*engine.Engine)
	eng.AdaptCheck = check
	return func(ctx context.Context, plans map[int]*workflow.JoinTree, observe []stats.Stat) (*engine.Result, error) {
			return eng.RunPlansObservingCtx(ctx, plans, res, observe)
		}, func(ctx context.Context, cp *engine.Checkpoint, plans map[int]*workflow.JoinTree, observe []stats.Stat) (*engine.Result, error) {
			return eng.ResumeObserving(ctx, cp, plans, res, observe)
		}
}

// RunOptimizedAdaptive executes the cycle's optimized plans with mid-run
// adaptive re-optimization (see the package comment at the top of this
// file). The run is instrumented with the cycle's selected statistics, so
// a following cycle can reuse its observations exactly like RunOptimized's.
func (cy *Cycle) RunOptimizedAdaptive(opts AdaptiveOptions) (*AdaptiveResult, error) {
	return cy.RunOptimizedAdaptiveCtx(context.Background(), opts)
}

// RunOptimizedAdaptiveCtx is RunOptimizedAdaptive under a context.
func (cy *Cycle) RunOptimizedAdaptiveCtx(ctx context.Context, opts AdaptiveOptions) (*AdaptiveResult, error) {
	if cy.Plans == nil || cy.CSS == nil || cy.Selection == nil {
		return nil, fmt.Errorf("core: adaptive run needs a completed optimization cycle")
	}
	if cy.cfg.Dispatcher != nil {
		return nil, fmt.Errorf("core: adaptive execution is incompatible with distributed dispatch (replanning needs the sequential local scheduler)")
	}
	base := opts.Threshold
	if base <= 0 {
		base = DefaultReplanThreshold
	}
	maxReplans := opts.MaxReplans
	if maxReplans <= 0 {
		maxReplans = DefaultMaxReplans
	}
	st := &adaptState{
		cy:        cy,
		est:       cy.Estimator,
		skew:      opts.Skew,
		threshold: cy.Feedback.ReplanThreshold(base),
		remaining: maxReplans,
		actuals:   make(map[stats.Target]int64),
	}
	ar := &AdaptiveResult{Threshold: st.threshold}

	cur := make(map[int]*workflow.JoinTree, len(cy.Plans.Plans))
	for b, p := range cy.Plans.Plans {
		cur[b] = p.Tree
	}
	ar.Plans = cur

	runSeg, resumeSeg := newAdaptiveExecutor(cy.Analysis, cy.db, cy.cfg, cy.CSS, st.check)
	observe := cy.Selection.Observe
	run, err := runSeg(ctx, cur, observe)
	for err != nil {
		var sig *engine.ReplanSignal
		if !errors.As(err, &sig) {
			ar.Run = run
			ar.Checks = st.checks
			return ar, fmt.Errorf("core: adaptive run: %w", err)
		}
		rec, rerr := st.replan(sig.Checkpoint, cur)
		if rerr != nil {
			ar.Run = run
			ar.Checks = st.checks
			return ar, rerr
		}
		ar.Replans = append(ar.Replans, rec)
		// Completed blocks' statistics are already in the checkpointed
		// write-once store; only the pending cone still needs taps.
		pending := make(map[int]bool)
		for bi := range cy.CSS.Analysis.Blocks {
			if _, ok := sig.Checkpoint.BlockOut[bi]; !ok {
				pending[bi] = true
			}
		}
		run, err = resumeSeg(ctx, sig.Checkpoint, cur, selector.ScopeObserve(observe, pending))
	}
	ar.Run = run
	ar.Checks = st.checks
	cy.Optimized = run
	return ar, nil
}
