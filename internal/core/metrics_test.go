package core

import (
	"bytes"
	"testing"

	"github.com/essential-stats/etlopt/internal/suite"
)

// TestMetricsOffByDefault pins the opt-in contract: without
// Config.CollectMetrics the cycle carries no metrics or feedback and
// WriteMetrics refuses with a pointed error.
func TestMetricsOffByDefault(t *testing.T) {
	g, cat, db := skewedRetail(t)
	cy, err := Run(g, cat, db, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if cy.Metrics != nil || cy.Feedback != nil {
		t.Fatal("metrics collected without CollectMetrics")
	}
	if err := cy.WriteMetrics(&bytes.Buffer{}, "table"); err == nil {
		t.Fatal("WriteMetrics without collection: want error")
	}
}

// TestMetricsReportDeterminism verifies the -metrics report is
// bit-identical across engines, worker counts and repeated runs, in both
// formats: it carries only row counts and q-errors, never wall times.
func TestMetricsReportDeterminism(t *testing.T) {
	w := suite.MustGet(7) // block chain: exercises chain taps and parallel paths
	db := w.Data(0.002)

	render := func(streaming bool, workers int) (string, string) {
		t.Helper()
		cfg := DefaultConfig()
		cfg.CollectMetrics = true
		cfg.Streaming = streaming
		cfg.Workers = workers
		cy, err := Run(w.Graph, w.Catalog, db, cfg)
		if err != nil {
			t.Fatalf("Run(streaming=%v workers=%d): %v", streaming, workers, err)
		}
		var tbl, js bytes.Buffer
		if err := cy.WriteMetrics(&tbl, "table"); err != nil {
			t.Fatalf("WriteMetrics table: %v", err)
		}
		if err := cy.WriteMetrics(&js, "json"); err != nil {
			t.Fatalf("WriteMetrics json: %v", err)
		}
		return tbl.String(), js.String()
	}

	refTbl, refJS := render(false, 1)
	if refTbl == "" || refJS == "" {
		t.Fatal("empty metrics report")
	}
	for _, tc := range []struct {
		label     string
		streaming bool
		workers   int
	}{
		{"batch w1 repeat", false, 1},
		{"batch w4", false, 4},
		{"stream w1", true, 1},
		{"stream w4", true, 4},
	} {
		tbl, js := render(tc.streaming, tc.workers)
		if tbl != refTbl {
			t.Errorf("%s: table report differs from batch w1 reference:\n%s\nvs\n%s", tc.label, tbl, refTbl)
		}
		if js != refJS {
			t.Errorf("%s: json report differs from batch w1 reference", tc.label)
		}
	}
}

// TestQErrorFeedbackAllSuite runs an instrumented cycle over every suite
// workflow and checks the estimate feedback: every workflow produces a
// report, and every derivable SE target has q-error exactly 1 — the
// paper's soundness claim (exact statistics derive exact cardinalities)
// restated as feedback.
func TestQErrorFeedbackAllSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	for _, w := range suite.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.CollectMetrics = true
			cy, err := Run(w.Graph, w.Catalog, w.Data(0.001), cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if cy.Metrics == nil || len(cy.Metrics.Nodes) == 0 {
				t.Fatal("no metrics snapshot")
			}
			fb := cy.Feedback
			if fb == nil {
				t.Fatal("no estimate feedback")
			}
			if len(cy.Selection.Observe) > 0 && fb.Total == 0 {
				t.Fatal("statistics selected but feedback has no targets")
			}
			// Exact statistics must derive exactly — except through the FK
			// shortcut, which prices referential integrity the subsampled
			// suite data can break (fact rows whose dimension row was
			// dropped). Surfacing that per-rule inaccuracy is the point of
			// the report, so FK is asserted only to be present in the rule
			// table, not to be exact.
			for _, se := range fb.SEs {
				if !se.Derivable || se.Rule == "FK" {
					continue
				}
				if se.QError != 1 {
					t.Errorf("SE %s: q-error %v (actual %d, estimate %d, rule %s); exact statistics must derive exactly",
						se.Label, se.QError, se.Actual, se.Estimate, se.Rule)
				}
			}
			for _, r := range fb.Rules {
				if r.Rule != "FK" && r.MaxQ != 1 {
					t.Errorf("rule %s: max q-error %v, want 1", r.Rule, r.MaxQ)
				}
			}
			// The report must render without error markers.
			if r := fb.Render(); r == "" {
				t.Error("empty feedback render")
			}
			// Tap overhead is tracked separately from operator time.
			wall, tap := cy.Metrics.Totals()
			if wall <= 0 {
				t.Errorf("operator wall time %d, want > 0", wall)
			}
			if tap < 0 {
				t.Errorf("tap overhead %d, want >= 0", tap)
			}
		})
	}
}
