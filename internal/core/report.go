package core

import (
	"fmt"
	"io"

	"github.com/essential-stats/etlopt/internal/stats"
)

// Report writes a human-readable markdown summary of the cycle: the blocks
// and their plan spaces, the chosen statistics with costs, the observed
// values, per-block plans with costs, and the derivation of every SE
// cardinality. It is the artifact an operator reviews after a cycle.
func (cy *Cycle) Report(w io.Writer) error {
	p := func(format string, args ...interface{}) { fmt.Fprintf(w, format, args...) }
	p("# Optimization cycle — %s\n\n", cy.Analysis.Graph.Name)
	p("- blocks: %d\n- sub-expressions: %d\n- candidate statistics sets: %d\n",
		len(cy.Analysis.Blocks), cy.CSS.NumSEs(), cy.CSS.NumCSS())
	p("- selection: %s (optimal=%v), memory %d units\n", cy.Selection.Method, cy.Selection.Optimal, cy.Selection.Memory)
	p("- phase timings: analyze %v, CSS %v, select %v, observe %v, optimize %v\n\n",
		cy.Timings.Analyze.Round(100_000), cy.Timings.GenerateCSS.Round(100_000),
		cy.Timings.Select.Round(100_000), cy.Timings.ObserveRun.Round(100_000),
		cy.Timings.Optimize.Round(100_000))

	p("## Statistics observed\n\n")
	for _, s := range cy.Selection.Observe {
		blk := cy.Analysis.Blocks[s.Target.Block]
		note := ""
		if cy.CSS.NeedsRejectLink[s.Key()] {
			note = " *(requires added reject link)*"
		}
		p("- block %d: `%s`%s\n", s.Target.Block, s.Label(blk), note)
	}
	p("\n## Observed values\n\n```\n")
	for _, v := range cy.Observed.Observed.Values() {
		blk := cy.Analysis.Blocks[v.Stat.Target.Block]
		if v.Hist != nil {
			p("%s: %d buckets, total %d\n", v.Stat.Label(blk), v.Hist.Buckets(), v.Hist.Total())
		} else {
			p("%s = %d\n", v.Stat.Label(blk), v.Scalar)
		}
	}
	p("```\n\n## Plans\n\n")
	for bi, plan := range cy.Plans.Plans {
		blk := cy.Analysis.Blocks[bi]
		if plan.Tree == nil {
			p("- block %d: join-free\n", bi)
			continue
		}
		p("- block %d designed `%s` (cost %.0f) → optimized `%s` (cost %.0f)\n",
			bi, blk.Initial.Render(blk), plan.InitialCost, plan.Tree.Render(blk), plan.Cost)
	}
	p("\noverall improvement: %.2fx\n\n## Derivations\n\n```\n", cy.Improvement())
	for bi, sp := range cy.CSS.Spaces {
		blk := cy.Analysis.Blocks[bi]
		for _, se := range sp.SEs {
			ex, err := cy.Estimator.Explain(stats.NewCard(stats.BlockSE(bi, se)))
			if err != nil {
				return err
			}
			p("%s", ex.Render(blk))
		}
	}
	p("```\n")
	return nil
}
