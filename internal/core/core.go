// Package core ties the whole framework of the paper together into the
// optimization loop of Figure 2: analyze the workflow into optimizable
// blocks, enumerate sub-expressions, generate candidate statistics sets,
// select a minimum-cost observable set, run the initial plan instrumented
// to collect it, and finally cost-optimize every block with the (exact)
// derived cardinalities. The loop can be repeated as data drifts: each
// optimized run is itself re-instrumented, keeping statistics current.
package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/estimate"
	"github.com/essential-stats/etlopt/internal/faults"
	"github.com/essential-stats/etlopt/internal/optimizer"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Config tunes one optimization cycle.
type Config struct {
	// CSS controls the rule families (union–division, cross-block, FK).
	CSS css.Options
	// Method selects the statistics-selection solver.
	Method selector.Method
	// CostModel prices plans during join-order optimization.
	CostModel optimizer.CostModel
	// UseFDs enables the functional-dependency cost reduction.
	UseFDs bool
	// CPUWeight adds the Section 5.4 CPU metric (tuples scanned per
	// statistic update) to the selection objective; 0 selects on memory
	// alone, the paper's Figure 11 setting.
	CPUWeight float64
	// Sizes supplies SE sizes for the CPU metric — typically the previous
	// cycle's estimator (Cycle.Estimator), closing the Section 5.4 loop.
	// Nil falls back to the independence approximation.
	Sizes costmodel.Sizes
	// FreeSourceStats prices unfiltered source-relation statistics at zero
	// when the relation advertises source-system statistics (Section 6.2).
	FreeSourceStats bool
	// Registry resolves transform UDFs at execution time (nil = defaults).
	Registry engine.Registry
	// Streaming executes with the pipelined Volcano engine instead of the
	// batch engine; results and observations are identical, only the
	// execution strategy (and intermediate materialization) differs.
	Streaming bool
	// Workers bounds execution-layer concurrency: independent blocks run
	// on separate goroutines (both engines), and the streaming engine
	// additionally partitions chain and probe pipelines across workers.
	// Values <= 1 execute sequentially; observed statistics are identical
	// either way.
	Workers int
	// MaxRows caps the total intermediate rows any single execution may
	// produce (both engines); a run exceeding it aborts with a clear
	// intermediate-cardinality-guard error instead of blowing up memory on
	// skewed joins. 0 runs unguarded.
	MaxRows int64
	// CollectMetrics turns on per-operator runtime metrics during
	// execution and builds the estimate-feedback (q-error) report after
	// the instrumented run. Off by default: the hot paths stay timing-free.
	CollectMetrics bool
	// Faults injects deterministic failures into every execution of the
	// cycle (nil, the default, injects nothing). Transient faults retry at
	// block granularity; permanent tap faults degrade the observation and
	// walk the cycle down the degradation ladder instead of aborting it.
	Faults *faults.Injector
	// RetryMax bounds per-block attempts on transient faults (0 = engine
	// default of 3).
	RetryMax int
	// RetryBackoff is the base inter-attempt delay, doubling per retry,
	// capped at 100ms (0 = engine default of 1ms).
	RetryBackoff time.Duration
	// RowMode selects the engines' legacy row-at-a-time interpreters
	// instead of the default columnar executors (the equivalence suite runs
	// every workflow through both).
	RowMode bool
	// StatsTier selects the statistics observation tier: TierExact (the
	// default) observes exact counters and per-value histograms only;
	// TierApprox replaces every exact Distinct/Hist that has a sketch
	// sibling with the sketch (HyperLogLog distinct counts, count-min
	// histograms), cutting observation CPU and statistic payload bytes at
	// a calibrated estimate-accuracy cost; TierAuto admits sketches into
	// the universe and lets the selection objective choose per statistic.
	StatsTier StatsTier
	// MinAccuracy is the per-statistic accuracy floor for the approx and
	// auto tiers (0 admits every sketch at its analytical guarantee).
	MinAccuracy float64
	// AllowPartialStats lets OptimizeFromSaved proceed when the saved
	// store cannot derive every SE cardinality (a partial save from a
	// degraded or cancelled run): blocks whose cardinalities are
	// underivable keep their initial plans (reported in Result.Fallbacks)
	// instead of the whole optimization failing with a MissingStatsError.
	AllowPartialStats bool
	// Dispatcher, when non-nil, schedules every execution's blocks onto
	// remote worker processes (distributed mode; see internal/engine's
	// dispatch layer and internal/serve's Coordinator). Results, observed
	// statistics and the work metric are byte-identical to local runs.
	// Incompatible with CollectMetrics (workers do not ship per-operator
	// metrics) and with adaptive execution (which needs the sequential
	// local scheduler); the run entry points reject those combinations.
	Dispatcher engine.BlockDispatcher
}

// checkDispatch validates the distributed-mode configuration surface.
func (c Config) checkDispatch() error {
	if c.Dispatcher == nil {
		return nil
	}
	if c.CollectMetrics {
		return fmt.Errorf("core: distributed execution is incompatible with CollectMetrics (workers do not ship per-operator metrics)")
	}
	return nil
}

// StatsTier names an observation tier.
type StatsTier string

// The observation tiers.
const (
	TierExact  StatsTier = "exact"
	TierApprox StatsTier = "approx"
	TierAuto   StatsTier = "auto"
)

// ParseStatsTier validates a tier name ("" means exact).
func ParseStatsTier(s string) (StatsTier, error) {
	switch StatsTier(s) {
	case "", TierExact:
		return TierExact, nil
	case TierApprox:
		return TierApprox, nil
	case TierAuto:
		return TierAuto, nil
	default:
		return "", fmt.Errorf("core: unknown stats tier %q (want exact, approx or auto)", s)
	}
}

// approxPolicy maps the configured tier onto the selector's policy.
func (c Config) approxPolicy() selector.ApproxPolicy {
	switch c.StatsTier {
	case TierApprox:
		return selector.ApproxPolicy{Enable: true, MinAccuracy: c.MinAccuracy, Force: true}
	case TierAuto:
		return selector.ApproxPolicy{Enable: true, MinAccuracy: c.MinAccuracy}
	default:
		return selector.ApproxPolicy{}
	}
}

// DefaultConfig enables every rule family with the exact solver and the
// C_out plan metric.
func DefaultConfig() Config {
	return Config{CSS: css.DefaultOptions(), Method: selector.MethodExact, CostModel: optimizer.Cout}
}

// Cycle is the outcome of one optimization cycle over a workflow.
type Cycle struct {
	Analysis  *workflow.Analysis
	CSS       *css.Result
	Selection *selector.Selection
	// Observed is the instrumented initial run.
	Observed *engine.Result
	// Estimator derives any statistic from the observations.
	Estimator *estimate.Estimator
	// Plans is the cost-based optimization outcome.
	Plans *optimizer.Result
	// Optimized is the re-execution under the optimized plans (nil until
	// RunOptimized is called).
	Optimized *engine.Result
	// Metrics is the instrumented run's per-operator metrics snapshot
	// (nil unless Config.CollectMetrics was set).
	Metrics *physical.RunMetrics
	// Feedback compares the instrumented run's actual cardinalities
	// against the estimates derived from the selected statistics (nil
	// unless Config.CollectMetrics was set).
	Feedback *estimate.Feedback
	// Degradation reports how the cycle routed around permanently failed
	// observations (nil on a clean run): the alternate covering CSS or
	// pay-as-you-go rung used, and any blocks left on initial plans.
	Degradation *Degradation
	// Timings records the wall-clock duration of each phase.
	Timings Timings

	cfg Config
	db  engine.DB
}

// Timings holds per-phase wall-clock durations of a cycle.
type Timings struct {
	Analyze, GenerateCSS, Select, ObserveRun, Optimize time.Duration
}

// executor abstracts the two execution engines (batch and streaming).
type executor interface {
	RunPlansCtx(ctx context.Context, plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*engine.Result, error)
}

// newExecutor picks the engine per the configuration.
func newExecutor(an *workflow.Analysis, db engine.DB, cfg Config) executor {
	if cfg.Streaming {
		eng := engine.NewStream(an, db, cfg.Registry)
		eng.Workers = cfg.Workers
		eng.MaxRows = cfg.MaxRows
		eng.CollectMetrics = cfg.CollectMetrics
		eng.Faults = cfg.Faults
		eng.RetryMax = cfg.RetryMax
		eng.RetryBackoff = cfg.RetryBackoff
		eng.RowMode = cfg.RowMode
		eng.Dispatch = cfg.Dispatcher
		return eng
	}
	eng := engine.New(an, db, cfg.Registry)
	eng.Workers = cfg.Workers
	eng.MaxRows = cfg.MaxRows
	eng.CollectMetrics = cfg.CollectMetrics
	eng.Faults = cfg.Faults
	eng.RetryMax = cfg.RetryMax
	eng.RetryBackoff = cfg.RetryBackoff
	eng.RowMode = cfg.RowMode
	eng.Dispatch = cfg.Dispatcher
	return eng
}

// Run executes one full cycle (steps 1–7 of Figure 2) over the workflow and
// database: the initial plan runs once, instrumented with the selected
// statistics, and the returned cycle carries the optimized per-block plans.
func Run(g *workflow.Graph, cat *workflow.Catalog, db engine.DB, cfg Config) (*Cycle, error) {
	return RunCtx(context.Background(), g, cat, db, cfg)
}

// RunCtx is Run under a context: cancellation (or deadline expiry) stops
// the cycle's executions promptly. On error the partial cycle — whatever
// phases completed, including the partial instrumented run and its metrics
// — rides alongside, so callers can flush what the cycle did produce.
//
// Observation failures that are permanent but survivable (failed taps,
// mis-declared statistics) do not error: the cycle completes via the
// degradation ladder and reports how in Cycle.Degradation.
func RunCtx(ctx context.Context, g *workflow.Graph, cat *workflow.Catalog, db engine.DB, cfg Config) (*Cycle, error) {
	cy := &Cycle{cfg: cfg, db: db}
	if err := cfg.checkDispatch(); err != nil {
		return cy, err
	}
	start := time.Now()
	an, err := workflow.Analyze(g, cat)
	if err != nil {
		return cy, fmt.Errorf("core: analyze: %w", err)
	}
	cy.Analysis = an
	cy.Timings.Analyze = time.Since(start)

	start = time.Now()
	res, err := css.Generate(an, cfg.CSS)
	if err != nil {
		return cy, fmt.Errorf("core: generate CSS: %w", err)
	}
	cy.CSS = res
	cy.Timings.GenerateCSS = time.Since(start)

	start = time.Now()
	coster := costmodel.NewMemoryCoster(res, an.Cat)
	coster.UseFDs = cfg.UseFDs
	coster.FreeSourceStats = cfg.FreeSourceStats
	coster.CPUWeight = cfg.CPUWeight
	coster.Sizes = cfg.Sizes
	u, err := selector.NewUniverseOpts(res, coster, selector.UniverseOptions{Approx: cfg.approxPolicy()})
	if err != nil {
		return cy, fmt.Errorf("core: select statistics: %w", err)
	}
	sel, err := selector.SelectUniverse(u, selector.Options{Method: cfg.Method})
	if err != nil {
		return cy, fmt.Errorf("core: select statistics: %w", err)
	}
	cy.Selection = sel
	cy.Timings.Select = time.Since(start)

	start = time.Now()
	eng := newExecutor(an, db, cfg)
	run, err := eng.RunPlansCtx(ctx, nil, res, sel.Observe)
	cy.Observed = run
	if run != nil {
		cy.Metrics = run.Metrics
	}
	if err != nil {
		return cy, fmt.Errorf("core: instrumented run: %w", err)
	}
	cy.Timings.ObserveRun = time.Since(start)

	if len(run.Degraded) > 0 {
		deg, err := degrade(ctx, cy, eng, u, res, run.Observed, run.Degraded)
		if err != nil {
			return cy, fmt.Errorf("core: degraded observation: %w", err)
		}
		cy.Degradation = deg
	}

	start = time.Now()
	cy.Estimator = estimate.New(res, run.Observed)
	plans, err := optimizer.OptimizeOpts(res, cy.Estimator, cfg.CostModel,
		optimizer.Options{FallbackInitial: cy.Degradation != nil})
	if err != nil {
		return cy, fmt.Errorf("core: optimize: %w", err)
	}
	if cy.Degradation != nil {
		cy.Degradation.FallbackBlocks = plans.Fallbacks
	}
	cy.Plans = plans
	cy.Timings.Optimize = time.Since(start)

	if run.Metrics != nil {
		cy.Feedback = estimate.BuildFeedback(res, cy.Estimator, run.Metrics.Actuals())
	}
	return cy, nil
}

// RunOptimized executes the workflow under the optimized per-block plans
// and records the result in the cycle. Subsequent cycles would instrument
// this run in turn; here it returns the executed result so callers can
// compare work metrics against the initial run.
func (cy *Cycle) RunOptimized() (*engine.Result, error) {
	return cy.RunOptimizedCtx(context.Background())
}

// RunOptimizedCtx is RunOptimized under a context.
func (cy *Cycle) RunOptimizedCtx(ctx context.Context) (*engine.Result, error) {
	eng := newExecutor(cy.Analysis, cy.db, cy.cfg)
	out, err := eng.RunPlansCtx(ctx, cy.Plans.Trees(), nil, nil)
	if err != nil {
		return nil, fmt.Errorf("core: optimized run: %w", err)
	}
	cy.Optimized = out
	return out, nil
}

// NextConfig returns the configuration for the following cycle: identical,
// but with this cycle's learned sizes feeding the CPU cost metric, the way
// Section 5.4 breaks the circular size dependency after the first run.
func (cy *Cycle) NextConfig() Config {
	cfg := cy.cfg
	cfg.Sizes = cy.Estimator
	return cfg
}

// SaveStats persists the cycle's observed statistics so a later process can
// optimize without re-observing (ETL runs are usually scheduled in fresh
// processes).
func (cy *Cycle) SaveStats(w io.Writer) error {
	if cy.Observed == nil || cy.Observed.Observed == nil {
		return fmt.Errorf("core: no observed statistics to save")
	}
	_, err := cy.Observed.Observed.WriteTo(w)
	return err
}

// MissingStatsError reports a saved statistics store that cannot support a
// full optimization: for the named statistics (required SE cardinalities)
// no derivation path exists from what the store holds — the signature of a
// partial save from a degraded or cancelled run, or of a store saved under
// different CSS options. Config.AllowPartialStats turns the error into a
// fallback: affected blocks keep their initial plans.
type MissingStatsError struct {
	// Missing lists the underivable required statistics in canonical key
	// order.
	Missing []stats.Stat
	// Blocks lists the affected block indexes, ascending.
	Blocks []int
	// Labels renders Missing in the paper's notation (|T1⋈T2| …), aligned
	// with Missing, so the error message can name the statistics without
	// re-deriving the analysis.
	Labels []string
}

func (e *MissingStatsError) Error() string {
	const show = 5
	labels := e.Labels
	suffix := ""
	if len(labels) > show {
		labels = labels[:show]
		suffix = fmt.Sprintf(" and %d more", len(e.Labels)-show)
	}
	return fmt.Sprintf("core: saved statistics cannot derive %d required statistic(s) across block(s) %v: %s%s (partial save? set AllowPartialStats to optimize the derivable subset)",
		len(e.Missing), e.Blocks, strings.Join(labels, ", "), suffix)
}

// OptimizeFromSaved rebuilds the optimization outcome from previously saved
// statistics, without executing the workflow: analyze, regenerate the CSS
// result, load the store, and cost-optimize. It returns the estimator and
// plans a fresh process needs to run the optimized plan.
//
// A store that cannot derive every required SE cardinality fails with a
// typed *MissingStatsError naming the underivable statistics — silent
// estimation from incomplete statistics is exactly the failure mode the
// paper's framework exists to rule out. Config.AllowPartialStats instead
// optimizes the derivable subset, leaving affected blocks on their initial
// plans (optimizer.Result.Fallbacks).
func OptimizeFromSaved(g *workflow.Graph, cat *workflow.Catalog, r io.Reader, cfg Config) (*estimate.Estimator, *optimizer.Result, error) {
	an, err := workflow.Analyze(g, cat)
	if err != nil {
		return nil, nil, fmt.Errorf("core: analyze: %w", err)
	}
	res, err := css.Generate(an, cfg.CSS)
	if err != nil {
		return nil, nil, fmt.Errorf("core: generate CSS: %w", err)
	}
	store, err := stats.ReadStore(r)
	if err != nil {
		return nil, nil, fmt.Errorf("core: load statistics: %w", err)
	}
	return OptimizeFromStore(res, store, cfg)
}

// OptimizeFromStore is OptimizeFromSaved past the loading phase: callers
// holding an already-generated CSS result and an already-validated store
// (the serving daemon's catalog) enter here, so both paths produce
// identical plans and estimates by construction.
func OptimizeFromStore(res *css.Result, store *stats.Store, cfg Config) (*estimate.Estimator, *optimizer.Result, error) {
	est := estimate.New(res, store)
	if miss := missingRequired(res, est); miss != nil && !cfg.AllowPartialStats {
		return nil, nil, miss
	}
	plans, err := optimizer.OptimizeOpts(res, est, cfg.CostModel,
		optimizer.Options{FallbackInitial: cfg.AllowPartialStats})
	if err != nil {
		return nil, nil, fmt.Errorf("core: optimize: %w", err)
	}
	return est, plans, nil
}

// missingRequired probes every required statistic (the cardinality of
// every SE of every block) against the estimator and reports the
// underivable ones, or nil when the store covers everything.
func missingRequired(res *css.Result, est *estimate.Estimator) *MissingStatsError {
	var miss []stats.Stat
	for _, s := range res.Required {
		if _, err := est.Value(s); err != nil {
			miss = append(miss, s)
		}
	}
	if len(miss) == 0 {
		return nil
	}
	sort.Slice(miss, func(i, j int) bool { return stats.KeyLess(miss[i].Key(), miss[j].Key()) })
	e := &MissingStatsError{Missing: miss}
	blocks := map[int]bool{}
	for _, s := range miss {
		b := s.Target.Block
		e.Labels = append(e.Labels, s.Label(res.Analysis.Blocks[b]))
		if !blocks[b] {
			blocks[b] = true
			e.Blocks = append(e.Blocks, b)
		}
	}
	sort.Ints(e.Blocks)
	return e
}

// DriftFrom measures how far this cycle's observations moved relative to a
// previous cycle's; callers re-optimize when the drift exceeds their
// threshold (the paper's "repeat periodically" made data-driven).
func (cy *Cycle) DriftFrom(prev *Cycle) stats.Drift {
	if cy.Observed == nil || prev == nil || prev.Observed == nil {
		return stats.Drift{}
	}
	return stats.MeasureDrift(prev.Observed.Observed, cy.Observed.Observed)
}

// ShouldReoptimize reports whether the drift since a previous cycle
// warrants re-optimizing. With metrics collected, the base threshold is
// calibrated by the estimate feedback: accurate derivations keep the base,
// inaccurate ones shrink it so a shakily-justified plan re-optimizes
// sooner. Without feedback the base threshold applies directly.
func (cy *Cycle) ShouldReoptimize(prev *Cycle, base float64) bool {
	d := cy.DriftFrom(prev)
	if cy.Feedback != nil {
		return cy.Feedback.ShouldReoptimize(d, base)
	}
	return d.Exceeds(base)
}

// Improvement returns the ratio of initial plan cost to optimized plan cost
// under the cycle's cost model (1.0 = the initial plan was already optimal).
func (cy *Cycle) Improvement() float64 {
	if cy.Plans == nil || cy.Plans.TotalCost == 0 {
		return 1
	}
	return cy.Plans.TotalInitialCost / cy.Plans.TotalCost
}
