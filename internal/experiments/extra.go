package experiments

import (
	"fmt"

	"github.com/essential-stats/etlopt/internal/core"
	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/payg"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/suite"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// E2ERow is one end-to-end soundness measurement: after a single
// instrumented run of the initial plan, how many SE cardinalities does the
// estimator reproduce exactly, and how much does the exact-costed optimizer
// improve the plan.
type E2ERow struct {
	ID  int
	SEs int
	// ExactSEs counts SEs whose derived cardinality equals the brute-force
	// ground truth (the paper's soundness claim is ExactSEs == SEs).
	ExactSEs int
	// InitCost/OptCost are the C_out costs of the designed and optimized
	// plans; Speedup is their ratio.
	InitCost, OptCost, Speedup float64
	// InitRows/OptRows are the engine work metrics of executing both.
	InitRows, OptRows int64
	// MaxQ is the worst q-error across derivable SE targets of the
	// instrumented run's estimate feedback (1 = every estimate exact).
	MaxQ float64
	// TapPct is the share of execution wall time the instrumented run
	// spent observing statistics (100*tap/(wall+tap)).
	TapPct float64
}

// e2eWorkflows are suite entries small enough to execute and verify
// exhaustively while covering joins, chains, boundaries, reject links,
// shared keys and the union–division showcase.
var e2eWorkflows = []int{3, 5, 7, 11, 15, 23}

// EndToEnd runs the full optimization cycle on materialized data for a
// representative subset of the suite and verifies estimator exactness
// against brute-force ground truth.
func EndToEnd(scale float64) ([]*E2ERow, error) {
	var out []*E2ERow
	for _, id := range e2eWorkflows {
		row, err := endToEndOne(id, scale)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// EndToEndWorkflow runs the end-to-end measurement for a single suite
// workflow; an id outside the suite returns *suite.UnknownWorkflowError.
func EndToEndWorkflow(id int, scale float64) (*E2ERow, error) {
	if _, err := suite.Get(id); err != nil {
		return nil, err
	}
	return endToEndOne(id, scale)
}

// endToEndOne runs the cycle and exactness verification for one workflow.
func endToEndOne(id int, scale float64) (*E2ERow, error) {
	{
		w := suite.MustGet(id)
		db := w.Data(scale)
		cfg := core.DefaultConfig()
		cfg.Workers = Workers
		cfg.CollectMetrics = true
		cy, err := core.Run(w.Graph, w.Catalog, db, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		row := &E2ERow{ID: id}
		for bi, sp := range cy.CSS.Spaces {
			blk := cy.Analysis.Blocks[bi]
			for _, se := range sp.SEs {
				row.SEs++
				truth, err := groundTruthCard(cy, db, blk, se)
				if err != nil {
					return nil, fmt.Errorf("%s: ground truth for %s: %w", w.Name, se.Label(blk), err)
				}
				got, err := cy.Estimator.CardOf(bi, se)
				if err != nil {
					return nil, fmt.Errorf("%s: estimate for %s: %w", w.Name, se.Label(blk), err)
				}
				if got == truth {
					row.ExactSEs++
				}
			}
		}
		row.InitCost = cy.Plans.TotalInitialCost
		row.OptCost = cy.Plans.TotalCost
		if row.OptCost > 0 {
			row.Speedup = row.InitCost / row.OptCost
		} else {
			row.Speedup = 1
		}
		row.InitRows = cy.Observed.Rows
		if cy.Feedback != nil {
			row.MaxQ = cy.Feedback.MaxQ
		}
		if cy.Metrics != nil {
			wall, tap := cy.Metrics.Totals()
			if wall+tap > 0 {
				row.TapPct = 100 * float64(tap) / float64(wall+tap)
			}
		}
		opt, err := cy.RunOptimized()
		if err != nil {
			return nil, fmt.Errorf("%s: optimized run: %w", w.Name, err)
		}
		row.OptRows = opt.Rows
		return row, nil
	}
}

// groundTruthCard materializes one SE by hash-joining its inputs along the
// block's join edges, independently of the estimation machinery.
func groundTruthCard(cy *core.Cycle, db engine.DB, blk *workflow.Block, se expr.Set) (int64, error) {
	input := func(i int) (*data.Table, error) {
		in := blk.Inputs[i]
		var tbl *data.Table
		switch {
		case in.SourceRel != "":
			tbl = db[in.SourceRel]
		case in.FromBlock >= 0:
			tbl = cy.Observed.BlockOut[in.FromBlock]
		}
		if tbl == nil {
			return nil, fmt.Errorf("input %d unresolvable", i)
		}
		return applyChain(tbl, in.Ops)
	}
	members := se.Members()
	cur, err := input(members[0])
	if err != nil {
		return 0, err
	}
	joined := expr.NewSet(members[0])
	for joined != se {
		progress := false
		for _, e := range blk.Joins {
			var next int
			switch {
			case joined.Has(e.LeftInput) && se.Has(e.RightInput) && !joined.Has(e.RightInput):
				next = e.RightInput
			case joined.Has(e.RightInput) && se.Has(e.LeftInput) && !joined.Has(e.LeftInput):
				next = e.LeftInput
			default:
				continue
			}
			nt, err := input(next)
			if err != nil {
				return 0, err
			}
			la, ra := e.LeftAttr, e.RightAttr
			if cur.Col(la) < 0 {
				la, ra = ra, la
			}
			cur, err = hashJoinTables(cur, nt, la, ra)
			if err != nil {
				return 0, err
			}
			joined = joined.Add(next)
			progress = true
		}
		if !progress {
			return 0, fmt.Errorf("SE %v not connected", se)
		}
	}
	return cur.Card(), nil
}

// applyChain replays pushed-down unary operators with the default UDF
// registry.
func applyChain(tbl *data.Table, ops []*workflow.Node) (*data.Table, error) {
	reg := engine.DefaultRegistry()
	for _, op := range ops {
		switch op.Kind {
		case workflow.KindSelect:
			c := tbl.Col(op.Pred.Attr)
			if c < 0 {
				return nil, fmt.Errorf("select attr %s missing", op.Pred.Attr)
			}
			res := &data.Table{Rel: tbl.Rel, Attrs: tbl.Attrs}
			for _, r := range tbl.Rows {
				if op.Pred.Matches(r[c]) {
					res.Rows = append(res.Rows, r)
				}
			}
			tbl = res
		case workflow.KindProject:
			cols := make([]int, len(op.Cols))
			for i, a := range op.Cols {
				cols[i] = tbl.Col(a)
			}
			res := &data.Table{Rel: tbl.Rel, Attrs: append([]workflow.Attr(nil), op.Cols...)}
			for _, r := range tbl.Rows {
				row := make(data.Row, len(cols))
				for i, c := range cols {
					row[i] = r[c]
				}
				res.Rows = append(res.Rows, row)
			}
			tbl = res
		case workflow.KindTransform:
			fn, ok := reg[op.Transform.Fn]
			if !ok {
				return nil, fmt.Errorf("unknown UDF %q", op.Transform.Fn)
			}
			ins := make([]int, len(op.Transform.Ins))
			for i, a := range op.Transform.Ins {
				ins[i] = tbl.Col(a)
			}
			res := &data.Table{Rel: tbl.Rel, Attrs: append(append([]workflow.Attr(nil), tbl.Attrs...), op.Transform.Out)}
			for _, r := range tbl.Rows {
				buf := make([]int64, len(ins))
				for i, c := range ins {
					buf[i] = r[c]
				}
				res.Rows = append(res.Rows, append(append(data.Row{}, r...), fn(buf)))
			}
			tbl = res
		}
	}
	return tbl, nil
}

// hashJoinTables is a plain equi-join used for ground truth.
func hashJoinTables(left, right *data.Table, la, ra workflow.Attr) (*data.Table, error) {
	lc, rc := left.Col(la), right.Col(ra)
	if lc < 0 || rc < 0 {
		return nil, fmt.Errorf("join attrs %s/%s missing", la, ra)
	}
	idx := make(map[int64][]data.Row)
	for _, r := range right.Rows {
		idx[r[rc]] = append(idx[r[rc]], r)
	}
	out := &data.Table{Rel: "gt", Attrs: append(append([]workflow.Attr(nil), left.Attrs...), right.Attrs...)}
	for _, l := range left.Rows {
		for _, r := range idx[l[lc]] {
			out.Rows = append(out.Rows, append(append(data.Row{}, l...), r...))
		}
	}
	return out, nil
}

// BudgetRow is one point of the Section 6.1 sweep.
type BudgetRow struct {
	Budget   int64
	Runs     int
	TotalMem int64
}

// BudgetSweep plans multi-run observation for the given workflow under a
// range of per-run memory budgets: double the unconstrained optimum (one
// run suffices), half of it, and two hard limits that force the trivial-CSS
// mix across several re-ordered executions.
func BudgetSweep(id int) ([]*BudgetRow, error) {
	w := suite.MustGet(id)
	an, err := w.Analyze()
	if err != nil {
		return nil, err
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		return nil, err
	}
	coster := costmodel.NewMemoryCoster(res, an.Cat)
	u, err := selector.NewUniverse(res, coster)
	if err != nil {
		return nil, err
	}
	opt, err := selector.SelectUniverse(u, selectOptions())
	if err != nil {
		return nil, err
	}
	budgets := []int64{2 * opt.Memory, opt.Memory / 2, 64, 4}
	var out []*BudgetRow
	for _, budget := range budgets {
		if budget < 4 {
			budget = 4
		}
		plan, err := selector.PlanWithBudget(u, budget)
		if err != nil {
			// Budget too small for even one requirement: report and stop.
			out = append(out, &BudgetRow{Budget: budget, Runs: -1})
			break
		}
		var mem int64
		for _, m := range plan.Memory {
			mem += m
		}
		out = append(out, &BudgetRow{Budget: budget, Runs: plan.NumRuns(), TotalMem: mem})
	}
	return out, nil
}

// FreeRow is one row of the free-source-statistics ablation.
type FreeRow struct {
	ID      int
	Mem     int64
	MemFree int64
}

// FreeSourceAblation compares the optimal observation memory with and
// without Section 6.2's free source statistics (every base relation assumed
// to live in an RDBMS that already publishes statistics).
func FreeSourceAblation() ([]*FreeRow, error) {
	var out []*FreeRow
	for _, id := range []int{3, 5, 11, 16, 23} {
		w := suite.MustGet(id)
		an, err := w.Analyze()
		if err != nil {
			return nil, err
		}
		res, err := css.Generate(an, css.DefaultOptions())
		if err != nil {
			return nil, err
		}
		base := costmodel.NewMemoryCoster(res, an.Cat)
		sel, err := selector.Select(res, base, selectOptions())
		if err != nil {
			return nil, err
		}
		// Every second relation lives in a relational source that publishes
		// statistics; the rest are flat-file feeds (the paper's worst case).
		for i, rel := range an.Cat.Relations {
			rel.HasSourceStats = i%2 == 0
		}
		free := costmodel.NewMemoryCoster(res, an.Cat)
		free.FreeSourceStats = true
		selFree, err := selector.Select(res, free, selectOptions())
		if err != nil {
			return nil, err
		}
		// Memory still counts the paid statistics only: recompute from the
		// free selection ignoring zero-cost stats.
		var memFree int64
		for _, s := range selFree.Observe {
			c, err := free.Cost(s)
			if err != nil {
				return nil, err
			}
			if c > 0 {
				m, err := free.Memory(s)
				if err != nil {
					return nil, err
				}
				memFree += m
			}
		}
		out = append(out, &FreeRow{ID: id, Mem: sel.Memory, MemFree: memFree})
	}
	return out, nil
}

// WorkRow compares the engine work of the pay-as-you-go baseline's full
// plan sequence against the framework's single instrumented run.
type WorkRow struct {
	ID int
	// Runs is the baseline's execution count.
	Runs int
	// BaselineRows and FrameworkRows are the summed engine work metrics.
	BaselineRows, FrameworkRows int64
	// Multiplier is their ratio.
	Multiplier float64
}

// WorkComparison executes both approaches on materialized data.
func WorkComparison(ids []int, scale float64) ([]*WorkRow, error) {
	var out []*WorkRow
	for _, id := range ids {
		w := suite.MustGet(id)
		an, err := w.Analyze()
		if err != nil {
			return nil, err
		}
		res, err := css.Generate(an, css.DefaultOptions())
		if err != nil {
			return nil, err
		}
		db := w.Data(scale)
		eng := engine.New(an, db, nil)
		eng.Workers = Workers

		// Framework: one instrumented run with the optimal statistics.
		coster := costmodel.NewMemoryCoster(res, an.Cat)
		sel, err := selector.Select(res, coster, selectOptions())
		if err != nil {
			return nil, err
		}
		fw, err := eng.RunObserved(res, sel.Observe)
		if err != nil {
			return nil, err
		}

		// Baseline: the whole re-ordered plan sequence.
		rep := payg.Evaluate(res)
		exec, err := payg.Execute(eng, res, rep)
		if err != nil {
			return nil, err
		}
		row := &WorkRow{
			ID:            id,
			Runs:          exec.Runs,
			BaselineRows:  exec.RowsTotal,
			FrameworkRows: fw.Rows,
		}
		if fw.Rows > 0 {
			row.Multiplier = float64(exec.RowsTotal) / float64(fw.Rows)
		}
		out = append(out, row)
	}
	return out, nil
}
