// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7) over the 30-workflow suite:
//
//	E1 — the data-characteristics table (cardinalities / unique values);
//	E2 — Figure 9: workflow complexity (#SEs, #CSS without and with
//	     union–division);
//	E3 — Figure 10: time for CSS generation and optimal-statistics
//	     selection;
//	E4 — Figure 11: memory needed to observe the optimal statistics,
//	     without and with union–division;
//	E5 — Figure 12: executions needed by the trivial-CSS-only baseline;
//	E6 — end-to-end soundness: one instrumented run yields exact
//	     cardinalities for every SE, enabling exact plan costing.
//
// The same entry points back the testing.B benchmarks in the repository
// root, so `go test -bench` regenerates the numbers too.
package experiments

import (
	"sync"
	"time"

	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/payg"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/suite"
)

// Workers bounds execution-layer concurrency for the experiments that run
// the engines (e2e, work); values <= 1 execute sequentially. Observed
// statistics are identical either way, so every measurement is
// worker-count independent except wall-clock time.
var Workers int

// selectOptions caps the exact solver so wide workflows finish promptly;
// the incumbent is still reported (Optimal=false) when the cap bites.
func selectOptions() selector.Options {
	return selector.Options{Method: selector.MethodExact, MaxNodes: 4000, Timeout: 10 * time.Second}
}

// WorkflowRow is one per-workflow measurement row shared by several
// figures.
type WorkflowRow struct {
	ID   int
	Name string

	// Figure 9.
	SEs         int
	CSSPlain    int
	CSSUnionDiv int

	// Figure 10 (durations).
	GenPlain   time.Duration
	GenUD      time.Duration
	SelectTime time.Duration

	// Figure 11 (memory units).
	MemPlain int64
	MemUD    int64
	// OptimalPlain/OptimalUD report whether the solver proved optimality.
	OptimalPlain, OptimalUD bool

	// Figure 12.
	FormulaLB  int
	SemanticLB int
	Found      int

	// Greedy-vs-exact ablation (with union–division).
	GreedyMem int64
}

// RunWorkflow produces the full measurement row for one suite workflow.
func RunWorkflow(w *suite.Workflow) (*WorkflowRow, error) {
	row := &WorkflowRow{ID: w.ID, Name: w.Name}
	an, err := w.Analyze()
	if err != nil {
		return nil, err
	}

	start := time.Now()
	plain, err := css.Generate(an, css.Options{CrossBlock: true, FKShortcut: true})
	if err != nil {
		return nil, err
	}
	row.GenPlain = time.Since(start)

	start = time.Now()
	ud, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		return nil, err
	}
	row.GenUD = time.Since(start)

	row.SEs = ud.NumSEs()
	row.CSSPlain = plain.NumCSS()
	row.CSSUnionDiv = ud.NumCSS()

	// Figure 11: optimal memory without union–division.
	costerPlain := costmodel.NewMemoryCoster(plain, an.Cat)
	selPlain, err := selector.Select(plain, costerPlain, selectOptions())
	if err != nil {
		return nil, err
	}
	row.MemPlain = selPlain.Memory
	row.OptimalPlain = selPlain.Optimal

	// With union–division (also the Figure 10 selection timing).
	costerUD := costmodel.NewMemoryCoster(ud, an.Cat)
	start = time.Now()
	selUD, err := selector.Select(ud, costerUD, selectOptions())
	if err != nil {
		return nil, err
	}
	row.SelectTime = time.Since(start)
	row.MemUD = selUD.Memory
	row.OptimalUD = selUD.Optimal

	// Greedy ablation.
	gr, err := selector.Select(ud, costerUD, selector.Options{Method: selector.MethodGreedy})
	if err != nil {
		return nil, err
	}
	row.GreedyMem = gr.Memory

	// Figure 12 baseline.
	rep := payg.Evaluate(ud)
	row.FormulaLB = rep.FormulaLB
	row.SemanticLB = rep.SemanticLB
	row.Found = rep.Found
	return row, nil
}

// RunWorkflow3 measures the union–division showcase workflow (a shorthand
// for tests and docs).
func RunWorkflow3() (*WorkflowRow, error) { return RunWorkflow(suite.MustGet(3)) }

// RunAllSeq measures every suite workflow sequentially — use this variant
// when the per-workflow timings (Figure 10) matter, since parallel workers
// contend for cores and inflate them.
func RunAllSeq() ([]*WorkflowRow, error) {
	var rows []*WorkflowRow
	for _, w := range suite.All() {
		row, err := RunWorkflow(w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunAll measures every suite workflow, in parallel (workflows are
// independent and deterministic, so concurrency cannot change the rows —
// only the wall-clock time of regenerating the figures).
func RunAll() ([]*WorkflowRow, error) {
	wfs := suite.All()
	rows := make([]*WorkflowRow, len(wfs))
	errs := make([]error, len(wfs))
	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for i, w := range wfs {
		i, w := i, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i], errs[i] = RunWorkflow(w)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// DataCharacteristics generates the suite's source relations (at the given
// scale) and summarizes them the way the paper's Section 7 table does.
func DataCharacteristics(scale float64) data.Characteristics {
	var tables []*data.Table
	for _, w := range suite.All() {
		db := w.Data(scale)
		for _, tbl := range db {
			tables = append(tables, tbl)
		}
	}
	return data.Characterize(tables)
}

// CatalogCharacteristics summarizes the catalog-declared cardinalities
// without materializing data (fast path used by tests).
func CatalogCharacteristics() data.Characteristics {
	var cards []int64
	for _, w := range suite.All() {
		for _, rel := range w.Catalog.Relations {
			if rel.Card > 0 {
				cards = append(cards, rel.Card)
			}
		}
	}
	var ch data.Characteristics
	if len(cards) == 0 {
		return ch
	}
	max, min, mean, median := summarize(cards)
	ch.CardMax, ch.CardMin, ch.CardMean, ch.CardMedian = max, min, mean, median
	return ch
}

func summarize(vals []int64) (max, min, mean, median int64) {
	sorted := append([]int64(nil), vals...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	min, max = sorted[0], sorted[len(sorted)-1]
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	mean = sum / int64(len(sorted))
	median = sorted[len(sorted)/2]
	return
}
