package experiments

import (
	"testing"
	"time"

	"github.com/essential-stats/etlopt/internal/suite"
)

// TestEndToEndExactness is the repository's headline regression: across the
// e2e workflow set, a single instrumented run yields exact cardinalities
// for every sub-expression and the optimizer never regresses.
func TestEndToEndExactness(t *testing.T) {
	rows, err := EndToEnd(0.002)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.ExactSEs != r.SEs {
			t.Errorf("wf%d: only %d/%d SEs exact", r.ID, r.ExactSEs, r.SEs)
		}
		if r.Speedup < 1 {
			t.Errorf("wf%d: optimizer regressed (%.2fx)", r.ID, r.Speedup)
		}
	}
}

// TestRunWorkflowShape spot-checks the figure rows for the paper anecdotes.
func TestRunWorkflowShape(t *testing.T) {
	// wf03: union–division slashes the memory optimum.
	row3, err := RunWorkflow3()
	if err != nil {
		t.Fatal(err)
	}
	if row3.MemUD*100 > row3.MemPlain {
		t.Errorf("wf03: UD memory %d not ≪ plain %d", row3.MemUD, row3.MemPlain)
	}
	if !row3.OptimalPlain || !row3.OptimalUD {
		t.Error("wf03 selections should be provably optimal")
	}
	// Identification stays well under a second.
	if row3.GenUD+row3.SelectTime > time.Second {
		t.Errorf("wf03 identification took %v", row3.GenUD+row3.SelectTime)
	}
}

func TestDataCharacteristicsShape(t *testing.T) {
	ch := DataCharacteristics(0.02)
	if ch.CardMax <= ch.CardMin || ch.CardMean <= 0 {
		t.Fatalf("degenerate characteristics: %+v", ch)
	}
	// High payload skew pushes median unique values below median
	// cardinality, the paper's Section 7 shape.
	if ch.UVMean > ch.CardMean {
		t.Errorf("UV mean %d above card mean %d", ch.UVMean, ch.CardMean)
	}
}

func TestBudgetSweepMonotone(t *testing.T) {
	rows, err := BudgetSweep(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("sweep too short: %d", len(rows))
	}
	prev := 0
	for _, r := range rows {
		if r.Runs < 0 {
			break
		}
		if r.Runs < prev {
			t.Errorf("runs decreased when budget tightened: %+v", rows)
		}
		prev = r.Runs
	}
}

func TestFreeSourceAblationSaves(t *testing.T) {
	rows, err := FreeSourceAblation()
	if err != nil {
		t.Fatal(err)
	}
	saved := false
	for _, r := range rows {
		if r.MemFree > r.Mem {
			t.Errorf("wf%d: free source stats increased memory %d → %d", r.ID, r.Mem, r.MemFree)
		}
		if r.MemFree < r.Mem {
			saved = true
		}
	}
	if !saved {
		t.Error("free source statistics saved nothing anywhere")
	}
}

func TestErrorSweepMonotone(t *testing.T) {
	rows, err := ErrorSweep([]int{5, 17}, 0.002, []int{2, 32, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // the bucket counts plus the appended count-min row
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[2].MeanRelErr != 0 || rows[2].MaxRelErr != 0 {
		t.Fatalf("exact histograms must have zero error: %+v", rows[2])
	}
	if rows[1].MeanRelErr > rows[0].MeanRelErr {
		t.Fatalf("error grew with resolution: %v then %v", rows[0].MeanRelErr, rows[1].MeanRelErr)
	}
	if rows[0].Memory >= rows[1].Memory {
		t.Fatalf("memory should grow with buckets: %d then %d", rows[0].Memory, rows[1].Memory)
	}
	sk := rows[3]
	if !sk.Sketch {
		t.Fatalf("last row should be the count-min point: %+v", sk)
	}
	if sk.CPU <= 0 || sk.CPU >= rows[2].CPU {
		t.Fatalf("sketch observation CPU %.1f should be positive and below exact %.1f",
			sk.CPU, rows[2].CPU)
	}
	if sk.Memory <= 0 {
		t.Fatalf("sketch memory = %d", sk.Memory)
	}
}

func TestWorkComparisonBaselinePaysMore(t *testing.T) {
	rows, err := WorkComparison([]int{5, 30}, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Runs > 1 && r.BaselineRows <= r.FrameworkRows {
			t.Errorf("wf%d: baseline work %d not above framework %d despite %d runs",
				r.ID, r.BaselineRows, r.FrameworkRows, r.Runs)
		}
	}
}

// TestGoldenFigureValues pins exact experiment numbers for key workflows —
// the suite and every algorithm are deterministic, so these reproduce
// bit-identically; any drift means an algorithm change that EXPERIMENTS.md
// must re-record.
func TestGoldenFigureValues(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep skipped in -short mode")
	}
	type golden struct {
		ses, cssPlain, cssUD int
		memPlain, memUD      int64
		formulaLB, found     int
	}
	want := map[int]golden{
		1:  {1, 1, 1, 1, 1, 1, 1},
		3:  {6, 15, 43, 800003, 304, 3, 2},
		16: {21, 145, 455, 57147, 57147, 14, 5},
		21: {135, 21945, 39273, 8, 8, 41, 35},
		23: {6, 15, 43, 3447, 3447, 3, 2},
		30: {37, 1271, 2916, 6, 6, 14, 10},
	}
	for id, g := range want {
		row, err := RunWorkflow(suite.MustGet(id))
		if err != nil {
			t.Fatalf("wf%02d: %v", id, err)
		}
		got := golden{row.SEs, row.CSSPlain, row.CSSUnionDiv, row.MemPlain, row.MemUD, row.FormulaLB, row.Found}
		if got != g {
			t.Errorf("wf%02d: got %+v, golden %+v", id, got, g)
		}
		if !row.OptimalPlain || !row.OptimalUD {
			t.Errorf("wf%02d: selection not proven optimal", id)
		}
	}
}

func TestScaleSweepSmall(t *testing.T) {
	rows, err := ScaleSweep(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // n = 3..5 × two shapes
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if !r.Optimal {
			t.Errorf("%s-%d not proven optimal", r.Shape, r.N)
		}
		if r.Shape == "fk-star" && r.Mem != int64(r.N) {
			t.Errorf("fk-star-%d memory = %d, want %d counters", r.N, r.Mem, r.N)
		}
	}
}
