package experiments

import (
	"fmt"
	"time"

	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/suite"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// ErrorRow is one point on the estimation-error vs histogram-memory curve
// of the Section 8 extension: join cardinalities estimated from bucketized
// histograms at a given resolution.
type ErrorRow struct {
	// Buckets is the per-histogram bucket count (0 = exact per-value).
	Buckets int
	// Sketch marks the count-min row of the sweep: the approximate
	// statistics tier's estimate for the same join edges, at its default
	// sketch dimensions.
	Sketch bool
	// Memory is the total counter count across all observed histograms or
	// sketches.
	Memory int64
	// CPU is the total observation cost under the Section 5.4 model:
	// tuples observed × the per-kind update weight (1 for exact
	// distributions, costmodel.SketchUpdateWeight for sketches).
	CPU float64
	// MeanRelErr and MaxRelErr summarize |est−truth|/truth over all join
	// edges of the measured workflows.
	MeanRelErr, MaxRelErr float64
	// Joins is the number of join edges measured.
	Joins int
}

// ErrorSweep measures join-cardinality estimation error of equi-width
// bucketized histograms against exact truth, over the join edges of the
// given suite workflows at the given data scale. It realizes the
// space–time–error trade-off the paper sketches in Sections 8.1/8.2.
func ErrorSweep(ids []int, scale float64, bucketCounts []int) ([]*ErrorRow, error) {
	type edgeCase struct {
		h1, h2 *stats.Histogram
		lo, hi int64
		truth  int64
	}
	var cases []edgeCase
	for _, id := range ids {
		w := suite.MustGet(id)
		an, err := w.Analyze()
		if err != nil {
			return nil, err
		}
		db := w.Data(scale)
		for _, blk := range an.Blocks {
			for _, e := range blk.Joins {
				c, ok, err := buildEdgeCase(db, blk, e)
				if err != nil {
					return nil, fmt.Errorf("wf%d: %w", id, err)
				}
				if ok {
					cases = append(cases, edgeCase{c.h1, c.h2, c.lo, c.hi, c.truth})
				}
			}
		}
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("experiments: no measurable join edges")
	}
	var out []*ErrorRow
	for _, n := range bucketCounts {
		row := &ErrorRow{Buckets: n, Joins: len(cases)}
		var sum float64
		for _, c := range cases {
			var est float64
			var mem int64
			if n <= 0 { // exact
				v, err := stats.DotProduct(c.h1, c.h2)
				if err != nil {
					return nil, err
				}
				est = float64(v)
				mem = int64(c.h1.Buckets() + c.h2.Buckets())
			} else {
				spec := stats.NewBucketSpec(c.lo, c.hi, n)
				a1, err := stats.Bucketize(c.h1, spec)
				if err != nil {
					return nil, err
				}
				a2, err := stats.Bucketize(c.h2, spec)
				if err != nil {
					return nil, err
				}
				est, err = stats.ApproxDotProduct(a1, a2)
				if err != nil {
					return nil, err
				}
				mem = a1.Memory() + a2.Memory()
			}
			relErr := stats.RelativeError(est, c.truth)
			sum += relErr
			if relErr > row.MaxRelErr {
				row.MaxRelErr = relErr
			}
			row.Memory += mem
			row.CPU += float64(c.h1.Total() + c.h2.Total())
		}
		row.MeanRelErr = sum / float64(len(cases))
		out = append(out, row)
	}
	// The count-min row: the approximate statistics tier's estimate for
	// the same join edges at its default sketch dimensions — the point the
	// -stats-tier=approx cycle actually operates at on this curve.
	row := &ErrorRow{Sketch: true, Joins: len(cases)}
	var sum float64
	for _, c := range cases {
		spec := stats.CMSpecFor(c.lo, c.hi)
		cm1 := stats.NewCMH(spec, stats.DefaultCMDepth, stats.DefaultCMWidth)
		cm2 := stats.NewCMH(spec, stats.DefaultCMDepth, stats.DefaultCMWidth)
		c.h1.Each(func(vals []int64, f int64) { cm1.Inc(vals[0], f) })
		c.h2.Each(func(vals []int64, f int64) { cm2.Inc(vals[0], f) })
		est, err := stats.CMDotProduct(cm1, cm2)
		if err != nil {
			return nil, err
		}
		relErr := stats.RelativeError(est, c.truth)
		sum += relErr
		if relErr > row.MaxRelErr {
			row.MaxRelErr = relErr
		}
		row.Memory += cm1.MemoryUnits() + cm2.MemoryUnits()
		row.CPU += float64(c.h1.Total()+c.h2.Total()) * costmodel.SketchUpdateWeight
	}
	row.MeanRelErr = sum / float64(len(cases))
	out = append(out, row)
	return out, nil
}

type builtEdge struct {
	h1, h2 *stats.Histogram
	lo, hi int64
	truth  int64
}

// buildEdgeCase observes the two join-column distributions of one edge
// directly over the (raw) input tables and computes the exact join
// cardinality. Inputs fed by upstream blocks are skipped — the sweep only
// needs a population of realistic base-relation joins.
func buildEdgeCase(db map[string]*data.Table, blk *workflow.Block, e workflow.BlockJoin) (*builtEdge, bool, error) {
	lt := baseTable(db, blk, e.LeftInput)
	rt := baseTable(db, blk, e.RightInput)
	if lt == nil || rt == nil {
		return nil, false, nil
	}
	lc := lt.Col(e.LeftAttr)
	rc := rt.Col(e.RightAttr)
	if lc < 0 || rc < 0 {
		return nil, false, nil
	}
	h1 := stats.NewHistogram(e.LeftAttr)
	h2 := stats.NewHistogram(e.LeftAttr) // same label: the algebra joins by position
	lo, hi := int64(1), int64(1)
	first := true
	for _, r := range lt.Rows {
		v := r[lc]
		h1.Add(v)
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
	}
	counts := make(map[int64]int64)
	for _, r := range rt.Rows {
		v := r[rc]
		h2.Add(v)
		counts[v]++
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var truth int64
	for _, r := range lt.Rows {
		truth += counts[r[lc]]
	}
	return &builtEdge{h1: h1, h2: h2, lo: lo, hi: hi, truth: truth}, true, nil
}

func baseTable(db map[string]*data.Table, blk *workflow.Block, input int) *data.Table {
	in := blk.Inputs[input]
	if in.SourceRel == "" {
		return nil
	}
	return db[in.SourceRel]
}

// ScaleRow measures statistics-identification cost as join width grows.
type ScaleRow struct {
	// N is the join width; Shape is "chain" or "fk-star".
	N     int
	Shape string
	// Stats and CSS size the generated universe.
	Stats, CSS int
	// Gen and Select are the identification phase durations.
	Gen, Select time.Duration
	// Mem is the optimal observation memory.
	Mem int64
	// Optimal reports whether the solver proved optimality.
	Optimal bool
}

// ScaleSweep generates chains and FK stars of growing width and measures
// the identification pipeline on each — the scalability dimension behind
// Figure 10's per-workflow times.
func ScaleSweep(maxN int) ([]*ScaleRow, error) {
	var out []*ScaleRow
	for n := 3; n <= maxN; n++ {
		for _, shape := range []string{"chain", "fk-star"} {
			g, cat := scaleWorkflow(shape, n)
			an, err := workflow.Analyze(g, cat)
			if err != nil {
				return nil, fmt.Errorf("%s-%d: %w", shape, n, err)
			}
			start := time.Now()
			res, err := css.Generate(an, css.DefaultOptions())
			if err != nil {
				return nil, fmt.Errorf("%s-%d: %w", shape, n, err)
			}
			gen := time.Since(start)
			coster := costmodel.NewMemoryCoster(res, an.Cat)
			start = time.Now()
			sel, err := selector.Select(res, coster, selectOptions())
			if err != nil {
				return nil, fmt.Errorf("%s-%d: %w", shape, n, err)
			}
			out = append(out, &ScaleRow{
				N: n, Shape: shape,
				Stats: len(res.Stats), CSS: res.NumCSS(),
				Gen: gen, Select: time.Since(start),
				Mem: sel.Memory, Optimal: sel.Optimal,
			})
		}
	}
	return out, nil
}

// scaleWorkflow builds a width-n chain or FK star with fixed domains.
func scaleWorkflow(shape string, n int) (*workflow.Graph, *workflow.Catalog) {
	cat := &workflow.Catalog{}
	b := workflow.NewBuilder(fmt.Sprintf("%s-%d", shape, n))
	switch shape {
	case "chain":
		var cur workflow.NodeID
		for i := 0; i < n; i++ {
			rel := fmt.Sprintf("R%d", i)
			r := &workflow.Relation{Name: rel, Card: 50000}
			if i > 0 {
				r.Columns = append(r.Columns, workflow.Column{Name: "p", Domain: 300})
			}
			if i < n-1 {
				r.Columns = append(r.Columns, workflow.Column{Name: "n", Domain: 300})
			}
			cat.Relations = append(cat.Relations, r)
			src := b.Source(rel)
			if i == 0 {
				cur = src
				continue
			}
			cur = b.Join(cur, src,
				workflow.Attr{Rel: fmt.Sprintf("R%d", i-1), Col: "n"},
				workflow.Attr{Rel: rel, Col: "p"})
		}
		b.Sink(cur, "dw")
	default: // fk-star
		fact := &workflow.Relation{Name: "F", Card: 200000}
		for i := 1; i < n; i++ {
			fact.Columns = append(fact.Columns, workflow.Column{Name: fmt.Sprintf("k%d", i), Domain: 500})
		}
		cat.Relations = append(cat.Relations, fact)
		cur := b.Source("F")
		for i := 1; i < n; i++ {
			rel := fmt.Sprintf("D%d", i)
			cat.Relations = append(cat.Relations, &workflow.Relation{Name: rel, Card: 500,
				Columns: []workflow.Column{{Name: "k", Domain: 500}}})
			d := b.Source(rel)
			cur = b.FKJoin(cur, d, workflow.Attr{Rel: "F", Col: fmt.Sprintf("k%d", i)}, workflow.Attr{Rel: rel, Col: "k"})
		}
		b.Sink(cur, "dw")
	}
	return b.Graph(), cat
}
