// Package data generates the synthetic relations of the paper's evaluation
// (Section 7): table cardinalities and attribute value distributions drawn
// from a highly skewed Zipfian distribution, fully deterministic under a
// seed so every experiment is reproducible.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/essential-stats/etlopt/internal/workflow"
)

// Row is one tuple: attribute values in schema order.
type Row []int64

// Table is a materialized relation with its schema.
type Table struct {
	// Rel is the relation name.
	Rel string
	// Attrs is the schema, in canonical order.
	Attrs []workflow.Attr
	// Rows holds the tuples.
	Rows []Row
}

// Col returns the position of attribute a in the schema, or -1.
func (t *Table) Col(a workflow.Attr) int {
	for i, x := range t.Attrs {
		if x == a {
			return i
		}
	}
	return -1
}

// Card returns the number of rows.
func (t *Table) Card() int64 { return int64(len(t.Rows)) }

// DistinctOf returns the number of distinct values of attribute a.
func (t *Table) DistinctOf(a workflow.Attr) (int64, error) {
	c := t.Col(a)
	if c < 0 {
		return 0, fmt.Errorf("data: attribute %s not in table %s", a, t.Rel)
	}
	seen := make(map[int64]bool)
	for _, r := range t.Rows {
		seen[r[c]] = true
	}
	return int64(len(seen)), nil
}

// Zipf draws values in [1, n] with P(k) ∝ 1/k^s, deterministically from the
// given source. It wraps math/rand's Zipf with the paper's "high skew"
// default and 1-based values so 0 can mean NULL-ish absence in tests.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a Zipfian sampler over [1, n] with exponent s (> 1).
func NewZipf(rng *rand.Rand, s float64, n int64) *Zipf {
	if s <= 1 {
		s = 1.0001 // rand.Zipf requires s > 1
	}
	return &Zipf{z: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

// Next draws the next value in [1, n].
func (z *Zipf) Next() int64 { return int64(z.z.Uint64()) + 1 }

// ColumnSpec configures one generated column.
type ColumnSpec struct {
	Name string
	// Domain is the value domain size: values are drawn from [1, Domain].
	Domain int64
	// Skew is the Zipf exponent; 0 means uniform.
	Skew float64
	// Serial makes the column a unique key 1..N (ignores Domain/Skew).
	Serial bool
}

// TableSpec configures one generated relation.
type TableSpec struct {
	Rel     string
	Card    int64
	Columns []ColumnSpec
}

// Generate materializes a table from its spec using the seeded source.
func Generate(spec TableSpec, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{Rel: spec.Rel}
	for _, c := range spec.Columns {
		t.Attrs = append(t.Attrs, workflow.Attr{Rel: spec.Rel, Col: c.Name})
	}
	samplers := make([]func() int64, len(spec.Columns))
	for i, c := range spec.Columns {
		switch {
		case c.Serial:
			next := int64(0)
			samplers[i] = func() int64 { next++; return next }
		case c.Skew > 0:
			z := NewZipf(rng, c.Skew, c.Domain)
			samplers[i] = z.Next
		default:
			dom := c.Domain
			samplers[i] = func() int64 { return rng.Int63n(dom) + 1 }
		}
	}
	t.Rows = make([]Row, spec.Card)
	for r := int64(0); r < spec.Card; r++ {
		row := make(Row, len(samplers))
		for i, s := range samplers {
			row[i] = s()
		}
		t.Rows[r] = row
	}
	return t
}

// CatalogEntry derives the catalog metadata (cardinality, per-column domain
// and observed distinct count) for a generated table.
func CatalogEntry(t *Table, spec TableSpec) *workflow.Relation {
	rel := &workflow.Relation{Name: t.Rel, Card: t.Card()}
	for i, c := range spec.Columns {
		dom := c.Domain
		if c.Serial {
			dom = spec.Card
		}
		distinct, _ := t.DistinctOf(t.Attrs[i])
		rel.Columns = append(rel.Columns, workflow.Column{Name: c.Name, Domain: dom, Distinct: distinct})
	}
	return rel
}

// Characteristics summarizes a set of tables the way the paper's Section 7
// data table does: max, min, mean and median of cardinalities and of
// per-attribute unique-value counts.
type Characteristics struct {
	CardMax, CardMin, CardMean, CardMedian int64
	UVMax, UVMin, UVMean, UVMedian         int64
}

// Characterize computes the summary over the given tables.
func Characterize(tables []*Table) Characteristics {
	var cards, uvs []int64
	for _, t := range tables {
		cards = append(cards, t.Card())
		for _, a := range t.Attrs {
			d, err := t.DistinctOf(a)
			if err == nil {
				uvs = append(uvs, d)
			}
		}
	}
	var ch Characteristics
	ch.CardMax, ch.CardMin, ch.CardMean, ch.CardMedian = summarize(cards)
	ch.UVMax, ch.UVMin, ch.UVMean, ch.UVMedian = summarize(uvs)
	return ch
}

func summarize(vals []int64) (max, min, mean, median int64) {
	if len(vals) == 0 {
		return 0, 0, 0, 0
	}
	sorted := append([]int64(nil), vals...)
	for i := 1; i < len(sorted); i++ { // insertion sort: n is small
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	min = sorted[0]
	max = sorted[len(sorted)-1]
	var sum float64
	for _, v := range sorted {
		sum += float64(v)
	}
	mean = int64(math.Round(sum / float64(len(sorted))))
	median = sorted[len(sorted)/2]
	return max, min, mean, median
}
