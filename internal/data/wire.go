package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/essential-stats/etlopt/internal/workflow"
)

// Table wire format. Distributed execution ships block boundary outputs
// between coordinator and worker processes; the encoding below is the
// canonical byte form of a Table: a magic header, the relation name, the
// attribute schema, then every row as varint-encoded int64 values. It is
// lossless (ReadTable(WriteTable(t)) reproduces t exactly, including
// attribute order and row order) and canonical — the same table always
// encodes to the same bytes — so a block that executes twice on different
// workers returns byte-identical payloads and the coordinator can commit
// whichever copy arrives first.
//
// Like stats.ReadStore, the reader defends against truncated or hostile
// streams: declared counts are capped, every row must carry exactly the
// schema's column count, and allocations grow with bytes actually
// consumed, never with declared counts alone.

// tableMagic versions the stream; bump on any incompatible change.
const tableMagic = "ETBL1"

// Wire limits: a schema wider than maxWireCols or a name longer than
// maxWireName is rejected outright (no workflow in the system approaches
// either), which bounds what a corrupt count can make the reader allocate.
const (
	maxWireCols = 1 << 12
	maxWireName = 1 << 12
)

// WriteTable serializes the table. A nil table encodes as a present/absent
// marker so map values can round-trip without a sidecar.
func WriteTable(w io.Writer, t *Table) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(tableMagic); err != nil {
		return err
	}
	if t == nil {
		if err := bw.WriteByte(0); err != nil {
			return err
		}
		return bw.Flush()
	}
	if err := bw.WriteByte(1); err != nil {
		return err
	}
	if err := writeWireString(bw, t.Rel); err != nil {
		return err
	}
	if len(t.Attrs) > maxWireCols {
		return fmt.Errorf("data: table %q has %d columns, wire cap is %d", t.Rel, len(t.Attrs), maxWireCols)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(t.Attrs)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	for _, a := range t.Attrs {
		if err := writeWireString(bw, a.Rel); err != nil {
			return err
		}
		if err := writeWireString(bw, a.Col); err != nil {
			return err
		}
	}
	n = binary.PutUvarint(buf[:], uint64(len(t.Rows)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if len(r) != len(t.Attrs) {
			return fmt.Errorf("data: table %q row has %d values, schema has %d columns", t.Rel, len(r), len(t.Attrs))
		}
		for _, v := range r {
			n = binary.PutVarint(buf[:], v)
			if _, err := bw.Write(buf[:n]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTable deserializes a table written by WriteTable.
func ReadTable(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(tableMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("data: table header: %w", err)
	}
	if string(magic) != tableMagic {
		return nil, fmt.Errorf("data: bad table magic %q", magic)
	}
	present, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("data: table presence: %w", err)
	}
	switch present {
	case 0:
		return nil, nil
	case 1:
	default:
		return nil, fmt.Errorf("data: bad table presence byte %d", present)
	}
	rel, err := readWireString(br, "relation name")
	if err != nil {
		return nil, err
	}
	ncols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("data: column count: %w", err)
	}
	if ncols > maxWireCols {
		return nil, fmt.Errorf("data: column count %d exceeds wire cap %d", ncols, maxWireCols)
	}
	t := &Table{Rel: rel}
	for i := uint64(0); i < ncols; i++ {
		arel, err := readWireString(br, "attribute relation")
		if err != nil {
			return nil, err
		}
		acol, err := readWireString(br, "attribute column")
		if err != nil {
			return nil, err
		}
		t.Attrs = append(t.Attrs, workflow.Attr{Rel: arel, Col: acol})
	}
	nrows, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("data: row count: %w", err)
	}
	// Rows append as bytes are consumed — a lying count hits EOF, not an
	// oversized allocation.
	for i := uint64(0); i < nrows; i++ {
		row := make(Row, ncols)
		for c := uint64(0); c < ncols; c++ {
			v, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("data: row %d column %d: %w", i, c, err)
			}
			row[c] = v
		}
		t.Rows = append(t.Rows, row)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("data: trailing bytes after %d row(s)", nrows)
	}
	return t, nil
}

func writeWireString(w *bufio.Writer, s string) error {
	if len(s) > maxWireName {
		return fmt.Errorf("data: name longer than wire cap %d", maxWireName)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(s)))
	if _, err := w.Write(buf[:n]); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readWireString(r *bufio.Reader, what string) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", fmt.Errorf("data: %s length: %w", what, err)
	}
	if n > maxWireName {
		return "", fmt.Errorf("data: %s length %d exceeds wire cap %d", what, n, maxWireName)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("data: %s: %w", what, err)
	}
	return string(b), nil
}
