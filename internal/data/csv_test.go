package data

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/essential-stats/etlopt/internal/workflow"
)

func TestCSVRoundTrip(t *testing.T) {
	tbl := Generate(TableSpec{Rel: "orders", Card: 200, Columns: []ColumnSpec{
		{Name: "id", Serial: true},
		{Name: "k", Domain: 20, Skew: 1.4},
	}}, 5)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := readCSV(&buf, "orders")
	if err != nil {
		t.Fatalf("readCSV: %v", err)
	}
	if back.Card() != tbl.Card() || len(back.Attrs) != len(tbl.Attrs) {
		t.Fatalf("shape changed: %dx%d vs %dx%d", back.Card(), len(back.Attrs), tbl.Card(), len(tbl.Attrs))
	}
	for i := range tbl.Rows {
		for j := range tbl.Rows[i] {
			if tbl.Rows[i][j] != back.Rows[i][j] {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty column", "a,,c\n1,2,3\n"},
		{"duplicate column", "a,b,a\n1,2,3\n"},
		{"duplicate after trim", "a, a\n1,2\n"},
		{"ragged row", "a,b\n1,2\n3\n"},
		{"non-integer", "a,b\n1,x\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := readCSV(strings.NewReader(tc.in), "t"); err == nil {
				t.Fatalf("want error for %q", tc.in)
			}
		})
	}
}

func TestCSVDuplicateHeaderMessage(t *testing.T) {
	_, err := readCSV(strings.NewReader("oid,pid,oid\n1,2,3\n"), "orders")
	if err == nil || !strings.Contains(err.Error(), `duplicate column name "oid"`) {
		t.Fatalf("want duplicate-column error naming the column, got %v", err)
	}
}

func TestLoadDirAndInferCatalog(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("orders.csv", "oid,pid\n1,10\n2,10\n3,20\n")
	write("product.csv", "pid,price\n10,100\n20,250\n")
	write("notes.txt", "ignored")

	tables, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(tables) != 2 {
		t.Fatalf("loaded %d tables, want 2", len(tables))
	}
	if tables["orders"].Card() != 3 || tables["product"].Card() != 2 {
		t.Fatalf("cards wrong: %d / %d", tables["orders"].Card(), tables["product"].Card())
	}
	cat := InferCatalog(tables)
	ord := cat.Relation("orders")
	if ord == nil || ord.Card != 3 {
		t.Fatalf("orders catalog: %+v", ord)
	}
	pid := ord.Column("pid")
	if pid == nil || pid.Distinct != 2 {
		t.Fatalf("orders.pid distinct = %+v, want 2", pid)
	}
	// Domain is the observed range 10..20 → 11.
	if pid.Domain != 11 {
		t.Fatalf("orders.pid domain = %d, want 11", pid.Domain)
	}
	// The inferred catalog drives a real analysis.
	b := workflow.NewBuilder("csvflow")
	o := b.Source("orders")
	p := b.Source("product")
	j := b.Join(o, p, workflow.Attr{Rel: "orders", Col: "pid"}, workflow.Attr{Rel: "product", Col: "pid"})
	b.Sink(j, "dw")
	if _, err := workflow.Analyze(b.Graph(), cat); err != nil {
		t.Fatalf("Analyze over inferred catalog: %v", err)
	}
}

func TestLoadDirEmpty(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("empty dir: want error")
	}
	if _, err := LoadDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing dir: want error")
	}
}
