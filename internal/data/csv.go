package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/essential-stats/etlopt/internal/workflow"
)

// CSV flat-file support. The paper's motivating worst case is sources that
// are plain files with no statistics at all; these helpers load a directory
// of CSVs as the engine's database and infer the catalog metadata
// (cardinalities, distinct counts, domain sizes) the analyzer and cost
// model need — the part a relational source would have provided.

// ReadCSV parses one CSV file into a table. The first record must be the
// header (column names); all values must be integers (the engine's value
// domain). The relation name is the file name without extension.
func ReadCSV(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rel := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	t, err := readCSV(f, rel)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

func readCSV(r io.Reader, rel string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	t := &Table{Rel: rel}
	seen := make(map[string]bool, len(header))
	for _, col := range header {
		name := strings.TrimSpace(col)
		if name == "" {
			return nil, fmt.Errorf("empty column name in header")
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate column name %q in header", name)
		}
		seen[name] = true
		t.Attrs = append(t.Attrs, workflow.Attr{Rel: rel, Col: name})
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if len(rec) != len(t.Attrs) {
			return nil, fmt.Errorf("line %d: %d fields, want %d", line, len(rec), len(t.Attrs))
		}
		row := make(Row, len(rec))
		for i, field := range rec {
			v, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d column %s: %w", line, t.Attrs[i].Col, err)
			}
			row[i] = v
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// WriteCSV writes a table as CSV (header + rows).
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Attrs))
	for i, a := range t.Attrs {
		header[i] = a.Col
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(t.Attrs))
	for _, row := range t.Rows {
		for i, v := range row {
			rec[i] = strconv.FormatInt(v, 10)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadDir reads every *.csv file in a directory as a relation.
func LoadDir(dir string) (map[string]*Table, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*Table)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(strings.ToLower(e.Name()), ".csv") {
			continue
		}
		t, err := ReadCSV(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out[t.Rel] = t
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("data: no .csv files in %s", dir)
	}
	return out, nil
}

// InferCatalog derives the catalog metadata the framework needs from
// materialized tables: cardinalities, per-column distinct counts, and
// domain sizes (the observed value range, a practical stand-in for the
// schema-declared domain a DBMS would publish).
func InferCatalog(tables map[string]*Table) *workflow.Catalog {
	cat := &workflow.Catalog{}
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	// Deterministic order.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, name := range names {
		t := tables[name]
		rel := &workflow.Relation{Name: name, Card: t.Card()}
		for c, a := range t.Attrs {
			seen := make(map[int64]bool)
			var lo, hi int64
			for r, row := range t.Rows {
				v := row[c]
				seen[v] = true
				if r == 0 || v < lo {
					lo = v
				}
				if r == 0 || v > hi {
					hi = v
				}
			}
			domain := hi - lo + 1
			if len(t.Rows) == 0 {
				domain = 1
			}
			rel.Columns = append(rel.Columns, workflow.Column{
				Name:     a.Col,
				Domain:   domain,
				Distinct: int64(len(seen)),
			})
		}
		cat.Relations = append(cat.Relations, rel)
	}
	return cat
}
