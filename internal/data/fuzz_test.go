package data

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV drives the flat-file reader with arbitrary bytes. The reader
// is the framework's only parser of external input (the paper's
// no-statistics worst case loads plain CSV files), so it must reject
// malformed input with an error — never a panic — and every table it does
// accept must be internally consistent and survive a write/re-read round
// trip.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("k,val\n1,2\n3,4\n"))
	f.Add([]byte("k\n"))                           // header only
	f.Add([]byte("k,k\n1,2\n"))                    // duplicate column
	f.Add([]byte("k, \n1,2\n"))                    // blank column name
	f.Add([]byte("k,val\n1\n"))                    // ragged row
	f.Add([]byte("k,val\n1,x\n"))                  // non-integer field
	f.Add([]byte("k,val\n1,\"2\n"))                // unterminated quote
	f.Add([]byte("\"a,b\",c\n\"1\",  2 \n"))       // quoted comma, padded int
	f.Add([]byte("k,val\r\n1,2\r\n"))              // CRLF
	f.Add([]byte("k,val\n9223372036854775808,1\n")) // int64 overflow
	f.Add([]byte(""))                              // empty input
	f.Add([]byte("\xff\xfe,\x00\n1,2\n"))          // junk bytes

	f.Fuzz(func(t *testing.T, in []byte) {
		tbl, err := readCSV(bytes.NewReader(in), "fuzz")
		if err != nil {
			return // rejected cleanly — the property under test
		}
		if tbl == nil {
			t.Fatal("nil table with nil error")
		}
		seen := make(map[string]bool, len(tbl.Attrs))
		for _, a := range tbl.Attrs {
			name := a.Col
			if name == "" || name != strings.TrimSpace(name) {
				t.Fatalf("accepted unnormalized column name %q", name)
			}
			if seen[name] {
				t.Fatalf("accepted duplicate column name %q", name)
			}
			seen[name] = true
		}
		for i, row := range tbl.Rows {
			if len(row) != len(tbl.Attrs) {
				t.Fatalf("row %d has %d fields, table has %d columns", i, len(row), len(tbl.Attrs))
			}
		}
		// Catalog inference must accept anything the reader accepts.
		InferCatalog(map[string]*Table{"fuzz": tbl})

		// Round trip: writing the accepted table and re-reading it must
		// reproduce it exactly (the writer quotes whatever the reader let
		// through).
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tbl); err != nil {
			t.Fatalf("write accepted table: %v", err)
		}
		back, err := readCSV(bytes.NewReader(buf.Bytes()), "fuzz")
		if err != nil {
			t.Fatalf("re-read written table: %v\ninput: %q", err, buf.Bytes())
		}
		if len(back.Attrs) != len(tbl.Attrs) || len(back.Rows) != len(tbl.Rows) {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d",
				len(tbl.Rows), len(tbl.Attrs), len(back.Rows), len(back.Attrs))
		}
		for i, a := range tbl.Attrs {
			if back.Attrs[i].Col != a.Col {
				t.Fatalf("round trip changed column %d: %q -> %q", i, a.Col, back.Attrs[i].Col)
			}
		}
		for i, row := range tbl.Rows {
			for j, v := range row {
				if back.Rows[i][j] != v {
					t.Fatalf("round trip changed row %d column %d: %d -> %d", i, j, v, back.Rows[i][j])
				}
			}
		}
	})
}
