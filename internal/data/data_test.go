package data

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/essential-stats/etlopt/internal/workflow"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := TableSpec{Rel: "T", Card: 1000, Columns: []ColumnSpec{
		{Name: "id", Serial: true},
		{Name: "k", Domain: 50, Skew: 1.5},
		{Name: "u", Domain: 100},
	}}
	a := Generate(spec, 7)
	b := Generate(spec, 7)
	if len(a.Rows) != 1000 || len(b.Rows) != 1000 {
		t.Fatalf("cardinality wrong: %d / %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("row %d col %d differs across same-seed runs", i, j)
			}
		}
	}
	c := Generate(spec, 8)
	same := true
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != c.Rows[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSerialColumn(t *testing.T) {
	spec := TableSpec{Rel: "T", Card: 100, Columns: []ColumnSpec{{Name: "id", Serial: true}}}
	tab := Generate(spec, 1)
	for i, r := range tab.Rows {
		if r[0] != int64(i+1) {
			t.Fatalf("serial row %d = %d", i, r[0])
		}
	}
	d, err := tab.DistinctOf(workflow.Attr{Rel: "T", Col: "id"})
	if err != nil || d != 100 {
		t.Fatalf("DistinctOf(serial) = %d, %v", d, err)
	}
}

func TestZipfSkew(t *testing.T) {
	// High skew: the most frequent value should dominate; uniform should
	// not.
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 2.0, 1000)
	counts := map[int64]int{}
	for i := 0; i < 20000; i++ {
		v := z.Next()
		if v < 1 || v > 1000 {
			t.Fatalf("Zipf value %d out of range", v)
		}
		counts[v]++
	}
	if counts[1] < 8000 {
		t.Fatalf("skew 2.0: top value frequency %d, expected heavy head", counts[1])
	}
}

func TestZipfInvalidSkewClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 0.5, 10) // must not panic: clamped above 1
	for i := 0; i < 100; i++ {
		if v := z.Next(); v < 1 || v > 10 {
			t.Fatalf("value %d out of range", v)
		}
	}
}

func TestDomainRespected(t *testing.T) {
	f := func(seed int64) bool {
		spec := TableSpec{Rel: "T", Card: 200, Columns: []ColumnSpec{
			{Name: "k", Domain: 13, Skew: 1.3},
			{Name: "u", Domain: 7},
		}}
		tab := Generate(spec, seed)
		for _, r := range tab.Rows {
			if r[0] < 1 || r[0] > 13 || r[1] < 1 || r[1] > 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogEntry(t *testing.T) {
	spec := TableSpec{Rel: "T", Card: 500, Columns: []ColumnSpec{
		{Name: "id", Serial: true},
		{Name: "k", Domain: 20, Skew: 1.8},
	}}
	tab := Generate(spec, 11)
	rel := CatalogEntry(tab, spec)
	if rel.Card != 500 {
		t.Fatalf("Card = %d", rel.Card)
	}
	if rel.Columns[0].Domain != 500 { // serial domain = card
		t.Fatalf("serial domain = %d", rel.Columns[0].Domain)
	}
	if rel.Columns[1].Domain != 20 {
		t.Fatalf("k domain = %d", rel.Columns[1].Domain)
	}
	if rel.Columns[1].Distinct < 1 || rel.Columns[1].Distinct > 20 {
		t.Fatalf("k distinct = %d", rel.Columns[1].Distinct)
	}
}

func TestCharacterize(t *testing.T) {
	t1 := Generate(TableSpec{Rel: "A", Card: 100, Columns: []ColumnSpec{{Name: "k", Domain: 10, Skew: 1.5}}}, 1)
	t2 := Generate(TableSpec{Rel: "B", Card: 300, Columns: []ColumnSpec{{Name: "k", Domain: 50, Skew: 1.5}}}, 2)
	ch := Characterize([]*Table{t1, t2})
	if ch.CardMax != 300 || ch.CardMin != 100 {
		t.Fatalf("card summary wrong: %+v", ch)
	}
	if ch.CardMean != 200 {
		t.Fatalf("card mean = %d, want 200", ch.CardMean)
	}
	if ch.UVMax < ch.UVMin {
		t.Fatalf("UV summary wrong: %+v", ch)
	}
	empty := Characterize(nil)
	if empty.CardMax != 0 {
		t.Fatalf("empty characterize should be zero: %+v", empty)
	}
}

func TestTableCol(t *testing.T) {
	tab := Generate(TableSpec{Rel: "T", Card: 1, Columns: []ColumnSpec{{Name: "a", Domain: 2}}}, 1)
	if tab.Col(workflow.Attr{Rel: "T", Col: "a"}) != 0 {
		t.Fatal("Col lookup failed")
	}
	if tab.Col(workflow.Attr{Rel: "T", Col: "zz"}) != -1 {
		t.Fatal("Col of missing attr should be -1")
	}
	if _, err := tab.DistinctOf(workflow.Attr{Rel: "T", Col: "zz"}); err == nil {
		t.Fatal("DistinctOf missing attr: want error")
	}
}
