package data

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/essential-stats/etlopt/internal/workflow"
)

func TestTableWireRoundTrip(t *testing.T) {
	tbl := &Table{
		Rel: "Orders",
		Attrs: []workflow.Attr{
			{Rel: "Orders", Col: "id"},
			{Rel: "Orders", Col: "cid"},
		},
		Rows: []Row{{1, -5}, {2, 0}, {1 << 60, -(1 << 60)}},
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, tbl); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	got, err := ReadTable(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTable: %v", err)
	}
	if !reflect.DeepEqual(got, tbl) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tbl)
	}
}

func TestTableWireCanonical(t *testing.T) {
	tbl := &Table{
		Rel:   "T",
		Attrs: []workflow.Attr{{Rel: "T", Col: "a"}},
		Rows:  []Row{{7}, {8}},
	}
	var a, b bytes.Buffer
	if err := WriteTable(&a, tbl); err != nil {
		t.Fatal(err)
	}
	if err := WriteTable(&b, tbl); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same table encoded to different bytes")
	}
}

func TestTableWireNilAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable(&buf, nil); err != nil {
		t.Fatalf("WriteTable(nil): %v", err)
	}
	got, err := ReadTable(bytes.NewReader(buf.Bytes()))
	if err != nil || got != nil {
		t.Fatalf("nil table round trip: got %v, %v", got, err)
	}

	empty := &Table{Rel: "E", Attrs: []workflow.Attr{{Rel: "E", Col: "x"}}}
	buf.Reset()
	if err := WriteTable(&buf, empty); err != nil {
		t.Fatal(err)
	}
	got, err = ReadTable(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rel != "E" || len(got.Attrs) != 1 || len(got.Rows) != 0 {
		t.Fatalf("empty table round trip: %+v", got)
	}
}

func TestTableWireRejectsCorruption(t *testing.T) {
	tbl := &Table{
		Rel:   "T",
		Attrs: []workflow.Attr{{Rel: "T", Col: "a"}},
		Rows:  []Row{{1}, {2}, {3}},
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncation at every prefix length must fail, never mis-decode.
	for n := 0; n < len(full); n++ {
		if _, err := ReadTable(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncated stream of %d/%d bytes decoded without error", n, len(full))
		}
	}
	// Trailing garbage is rejected.
	if _, err := ReadTable(bytes.NewReader(append(append([]byte{}, full...), 0x00))); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Bad magic is rejected.
	bad := append([]byte{}, full...)
	bad[0] ^= 0xff
	if _, err := ReadTable(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}
