package payg

import (
	"context"
	"fmt"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// ExecuteResult is the outcome of actually running the baseline's plan
// sequence.
type ExecuteResult struct {
	// Runs is the number of executions performed.
	Runs int
	// Learned accumulates the trivial-CSS observations (one cardinality
	// counter per SE exposed by some plan).
	Learned *stats.Store
	// RowsTotal sums the engine work across all executions — the price the
	// baseline pays where the framework pays for one run.
	RowsTotal int64
}

// Execute runs the pay-as-you-go baseline for real: each plan of the
// report's per-block sequences executes once (blocks cycle their own
// sequences independently), observing nothing but cardinality counters at
// the points each plan produces. Afterwards Learned holds |e| for every SE
// any plan exposed — the baseline's replacement for the framework's single
// instrumented run.
func Execute(eng *engine.Engine, res *css.Result, rep *Report) (*ExecuteResult, error) {
	return ExecuteCtx(context.Background(), eng, res, rep)
}

// ExecuteCtx is Execute under a context: cancellation stops the plan
// sequence between (and, through the engine, within) executions.
func ExecuteCtx(ctx context.Context, eng *engine.Engine, res *css.Result, rep *Report) (*ExecuteResult, error) {
	// Observation wish-list: the cardinality of every SE of every block.
	var observe []stats.Stat
	for bi, sp := range res.Spaces {
		for _, se := range sp.SEs {
			observe = append(observe, stats.NewCard(stats.BlockSE(bi, se)))
		}
	}
	out := &ExecuteResult{Learned: stats.NewStore()}
	runs := rep.Found
	if runs < 1 {
		runs = 1
	}
	for r := 0; r < runs; r++ {
		plans := make(map[int]*workflow.JoinTree)
		for _, br := range rep.PerBlock {
			if len(br.Plans) == 0 {
				continue
			}
			idx := r
			if idx >= len(br.Plans) {
				idx = len(br.Plans) - 1 // this block's SEs are already covered
			}
			plans[br.Block] = br.Plans[idx]
		}
		run, err := eng.RunPlansObservingCtx(ctx, plans, res, observe)
		if err != nil {
			return nil, fmt.Errorf("payg: execution %d: %w", r+1, err)
		}
		out.Learned.Merge(run.Observed)
		out.RowsTotal += run.Rows
		out.Runs++
	}
	return out, nil
}

// Covered reports whether the learned store holds the cardinality of every
// SE of every block — the baseline's success criterion.
func (r *ExecuteResult) Covered(res *css.Result) bool {
	for bi, sp := range res.Spaces {
		for _, se := range sp.SEs {
			if !r.Learned.Has(stats.NewCard(stats.BlockSE(bi, se))) {
				return false
			}
		}
	}
	return true
}
