package payg

import (
	"testing"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/wftest"
	"github.com/essential-stats/etlopt/internal/workflow"
)

func TestExecuteBaselineLearnsAllCardinalities(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, cat, db := wftest.Generate(seed, wftest.Options{})
		an, err := workflow.Analyze(g, cat)
		if err != nil {
			t.Fatalf("seed %d: Analyze: %v", seed, err)
		}
		res, err := css.Generate(an, css.Options{})
		if err != nil {
			t.Fatalf("seed %d: Generate: %v", seed, err)
		}
		rep := Evaluate(res)
		eng := engine.New(an, db, nil)
		exec, err := Execute(eng, res, rep)
		if err != nil {
			t.Fatalf("seed %d: Execute: %v", seed, err)
		}
		if exec.Runs != rep.Found && rep.Found >= 1 {
			t.Errorf("seed %d: executed %d runs, report said %d", seed, exec.Runs, rep.Found)
		}
		if !exec.Covered(res) {
			t.Errorf("seed %d: baseline did not learn every SE cardinality after %d runs", seed, exec.Runs)
		}
		// The learned counters must agree with a fresh execution of the
		// initial plan for the SEs that plan produces.
		var observe []stats.Stat
		for bi, sp := range res.Spaces {
			for se := range sp.Initial {
				observe = append(observe, stats.NewCard(stats.BlockSE(bi, se)))
			}
		}
		ref, err := eng.RunObserved(res, observe)
		if err != nil {
			t.Fatalf("seed %d: reference run: %v", seed, err)
		}
		for _, s := range observe {
			if !ref.Observed.Has(s) {
				continue
			}
			want, _ := ref.Observed.Scalar(s)
			got, err := exec.Learned.Scalar(s)
			if err != nil {
				t.Errorf("seed %d: baseline missing %v", seed, s.Key())
				continue
			}
			if got != want {
				t.Errorf("seed %d: baseline card %v = %d, reference %d", seed, s.Key(), got, want)
			}
		}
	}
}

func TestExecuteWorkMultiplier(t *testing.T) {
	// The baseline pays roughly Runs× the engine work of one execution.
	g, cat, db := wftest.Generate(11, wftest.Options{MaxRelations: 5})
	an, err := workflow.Analyze(g, cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.Options{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rep := Evaluate(res)
	eng := engine.New(an, db, nil)
	exec, err := Execute(eng, res, rep)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	single, err := eng.Run()
	if err != nil {
		t.Fatalf("single run: %v", err)
	}
	if exec.Runs > 1 && exec.RowsTotal <= single.Rows {
		t.Errorf("baseline total work %d not above one run's %d despite %d runs",
			exec.RowsTotal, single.Rows, exec.Runs)
	}
}
