package payg

import (
	"fmt"
	"testing"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/workflow"
)

func TestFormulaMinExecutions(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1},
		{5, 9},  // the paper's worked example: ⌈(32−7)/3⌉ = 9
		{6, 14}, // workflow 30 in the paper
		{8, 41}, // workflow 21 in the paper
	}
	for _, tc := range cases {
		if got := FormulaMinExecutions(tc.n); got != tc.want {
			t.Errorf("FormulaMinExecutions(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// denseJoin builds an n-way join whose join graph is dense: relation i
// joins relation 0 and, additionally, each relation i joins i-1, so many
// subsets are connected.
func denseJoin(t *testing.T, n int) *css.Result {
	t.Helper()
	cat := &workflow.Catalog{}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("T%d", i)
		cat.Relations = append(cat.Relations, &workflow.Relation{
			Name: names[i], Card: 100,
			Columns: []workflow.Column{{Name: "k", Domain: 10}},
		})
	}
	b := workflow.NewBuilder(fmt.Sprintf("dense%d", n))
	nodes := make([]workflow.NodeID, n)
	for i := 0; i < n; i++ {
		nodes[i] = b.Source(names[i])
	}
	prev := nodes[0]
	for i := 1; i < n; i++ {
		prev = b.Join(prev, nodes[i], workflow.Attr{Rel: "T0", Col: "k"}, workflow.Attr{Rel: names[i], Col: "k"})
	}
	b.Sink(prev, "dw")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.Options{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return res
}

func TestEvaluateCoversAllSEs(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6} {
		res := denseJoin(t, n)
		rep := Evaluate(res)
		if len(rep.PerBlock) != 1 {
			t.Fatalf("n=%d: blocks = %d", n, len(rep.PerBlock))
		}
		br := rep.PerBlock[0]
		// Replay the plan sequence and verify every coverable SE appears
		// as a prefix of some plan.
		sp := res.Space(0)
		blk := res.Analysis.Blocks[0]
		covered := make(map[expr.Set]bool)
		for _, tree := range br.Plans {
			markPrefixes(tree, covered)
		}
		for _, se := range sp.SEs {
			if se.Len() < 2 || se == sp.Full() {
				continue
			}
			if !covered[se] {
				t.Errorf("n=%d: SE %s not covered by the plan sequence", n, se.Label(blk))
			}
		}
		if br.Found < br.SemanticLB {
			t.Errorf("n=%d: found %d below semantic lower bound %d", n, br.Found, br.SemanticLB)
		}
	}
}

// markPrefixes records the internal SEs of a tree (all non-root internal
// nodes plus the root, harmlessly).
func markPrefixes(t *workflow.JoinTree, covered map[expr.Set]bool) {
	if t == nil || t.IsLeaf() {
		return
	}
	covered[expr.NewSet(t.Inputs()...)] = true
	markPrefixes(t.Left, covered)
	markPrefixes(t.Right, covered)
}

func TestEvaluateLinearFlowOneExecution(t *testing.T) {
	cat := &workflow.Catalog{Relations: []*workflow.Relation{
		{Name: "T", Card: 10, Columns: []workflow.Column{{Name: "a", Domain: 5}}},
	}}
	b := workflow.NewBuilder("linear")
	s := b.Source("T")
	f := b.Select(s, workflow.Predicate{Attr: workflow.Attr{Rel: "T", Col: "a"}, Op: workflow.CmpGt, Const: 1})
	b.Sink(f, "out")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.Options{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rep := Evaluate(res)
	if rep.Found != 1 || rep.FormulaLB != 1 || rep.SemanticLB != 1 {
		t.Fatalf("linear flow: %+v, want all 1", rep)
	}
}

func TestEvaluateGrowthWithWidth(t *testing.T) {
	// Executions must grow with join width for the baseline; the framework
	// needs just one (the contrast of Figure 12).
	prev := 0
	for _, n := range []int{4, 5, 6, 7} {
		rep := Evaluate(denseJoin(t, n))
		if rep.Found <= prev {
			t.Errorf("n=%d: found %d did not grow (prev %d)", n, rep.Found, prev)
		}
		prev = rep.Found
	}
}
