// Package payg implements the comparison baseline of Section 7.3: the
// pay-as-you-go / trivial-CSS-only strategy of Chaudhuri et al., which
// observes nothing but cardinality counters and therefore needs repeated
// executions under re-ordered plans until every sub-expression has appeared
// in some plan. The package computes the paper's lower-bound formula
// ⌈(2ⁿ−(n+2))/(n−2)⌉, a semantics-aware lower bound over the actual
// connected SEs, and a concrete greedy sequence of plan re-orderings whose
// length upper-bounds the executions needed (the "found" series of
// Figure 12).
package payg

import (
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// FormulaMinExecutions is the paper's semantics-free lower bound for an
// n-way join: every plan exposes n−2 coverable SEs while 2ⁿ−(n+2) SEs need
// covering. Blocks with fewer than three inputs need exactly one execution.
func FormulaMinExecutions(n int) int {
	if n < 3 {
		return 1
	}
	need := (1 << uint(n)) - (n + 2)
	per := n - 2
	return (need + per - 1) / per
}

// BlockReport is the baseline analysis of one optimizable block.
type BlockReport struct {
	Block int
	// Inputs is the join width n.
	Inputs int
	// FormulaLB is the paper's ⌈(2ⁿ−(n+2))/(n−2)⌉ bound.
	FormulaLB int
	// SemanticLB is the same bound computed over the actual connected SEs
	// (cross products excluded): ⌈#coverable/(n−2)⌉.
	SemanticLB int
	// Found is the length of the concrete plan sequence the greedy cover
	// produced; it upper-bounds the executions needed.
	Found int
	// Plans is the discovered sequence of join orders.
	Plans []*workflow.JoinTree
}

// Report is the baseline analysis of a workflow. Because every execution
// runs all blocks and each block's plan can be varied independently, the
// workflow-level execution count is the maximum over blocks.
type Report struct {
	PerBlock []BlockReport
	// FormulaLB, SemanticLB and Found are the workflow-level counts (max
	// over blocks, minimum 1).
	FormulaLB, SemanticLB, Found int
}

// Evaluate runs the baseline analysis over all blocks of a generated CSS
// result.
func Evaluate(res *css.Result) *Report {
	rep := &Report{FormulaLB: 1, SemanticLB: 1, Found: 1}
	for bi, sp := range res.Spaces {
		blk := res.Analysis.Blocks[bi]
		br := evaluateBlock(bi, blk, sp)
		rep.PerBlock = append(rep.PerBlock, br)
		if br.FormulaLB > rep.FormulaLB {
			rep.FormulaLB = br.FormulaLB
		}
		if br.SemanticLB > rep.SemanticLB {
			rep.SemanticLB = br.SemanticLB
		}
		if br.Found > rep.Found {
			rep.Found = br.Found
		}
	}
	return rep
}

func evaluateBlock(bi int, blk *workflow.Block, sp *expr.Space) BlockReport {
	n := blk.NumInputs()
	br := BlockReport{Block: bi, Inputs: n, FormulaLB: FormulaMinExecutions(n)}
	if n < 3 || blk.RejectPinned {
		// One plan exists; a single execution observes everything a plan
		// can expose.
		br.FormulaLB, br.SemanticLB, br.Found = 1, 1, 1
		if blk.Initial != nil {
			br.Plans = []*workflow.JoinTree{blk.Initial}
		}
		return br
	}
	// SEs needing coverage: everything except the base inputs and the full
	// SE (both are exposed by every plan).
	toCover := make(map[expr.Set]bool)
	for _, se := range sp.SEs {
		if se.Len() >= 2 && se != sp.Full() {
			toCover[se] = true
		}
	}
	per := n - 2
	br.SemanticLB = (len(toCover) + per - 1) / per

	// Greedy cover by left-deep plans: each round builds the join order
	// that exposes the most still-uncovered SEs as prefixes.
	uncovered := toCover
	for len(uncovered) > 0 {
		order := bestOrder(blk, sp, uncovered)
		tree := leftDeep(blk, order)
		br.Plans = append(br.Plans, tree)
		br.Found++
		cur := expr.NewSet(order[0])
		for _, i := range order[1:] {
			cur = cur.Add(i)
			delete(uncovered, cur)
		}
		if br.Found > 4096 {
			break // defensive: cannot happen, every round covers ≥1
		}
	}
	if br.Found == 0 {
		br.Found = 1
		br.Plans = []*workflow.JoinTree{blk.Initial}
	}
	return br
}

// bestOrder builds a connected input order greedily preferring extensions
// whose prefix SE is still uncovered, seeded from every uncovered SE and
// every input, keeping the order that covers the most.
func bestOrder(blk *workflow.Block, sp *expr.Space, uncovered map[expr.Set]bool) []int {
	n := blk.NumInputs()
	var best []int
	bestGain := -1
	trySeed := func(seed expr.Set) {
		order, ok := connectedOrder(blk, sp, seed)
		if !ok {
			return
		}
		order = extendOrder(blk, sp, order, uncovered)
		gain := 0
		cur := expr.NewSet(order[0])
		seen := make(map[expr.Set]bool)
		for _, i := range order[1:] {
			cur = cur.Add(i)
			if uncovered[cur] && !seen[cur] {
				seen[cur] = true
				gain++
			}
		}
		if gain > bestGain {
			bestGain = gain
			best = order
		}
	}
	// Seed with each uncovered SE (smallest first exposes long suffixes).
	for _, se := range sp.SEs {
		if uncovered[se] {
			trySeed(se)
		}
	}
	if best == nil {
		for i := 0; i < n; i++ {
			trySeed(expr.NewSet(i))
		}
	}
	return best
}

// connectedOrder arranges the seed SE's members into a connected order,
// preferring extensions that keep intermediate prefixes connected.
func connectedOrder(blk *workflow.Block, sp *expr.Space, seed expr.Set) ([]int, bool) {
	members := seed.Members()
	if len(members) == 0 {
		return nil, false
	}
	order := []int{members[0]}
	in := expr.NewSet(members[0])
	for in != seed {
		progressed := false
		for _, m := range members {
			if in.Has(m) {
				continue
			}
			if edgeBetween(blk, in, m) {
				order = append(order, m)
				in = in.Add(m)
				progressed = true
				break
			}
		}
		if !progressed {
			return nil, false // seed not connected (cannot happen for SEs)
		}
	}
	return order, true
}

// extendOrder grows a connected order to all inputs, preferring next inputs
// whose resulting prefix SE is uncovered.
func extendOrder(blk *workflow.Block, sp *expr.Space, order []int, uncovered map[expr.Set]bool) []int {
	n := blk.NumInputs()
	in := expr.NewSet(order...)
	for len(order) < n {
		next := -1
		for i := 0; i < n; i++ { // first pass: uncovered extension
			if in.Has(i) || !edgeBetween(blk, in, i) {
				continue
			}
			if uncovered[in.Add(i)] {
				next = i
				break
			}
		}
		if next < 0 {
			for i := 0; i < n; i++ { // fallback: any connected extension
				if !in.Has(i) && edgeBetween(blk, in, i) {
					next = i
					break
				}
			}
		}
		if next < 0 {
			break // disconnected remainder (cannot happen: block is connected)
		}
		order = append(order, next)
		in = in.Add(next)
	}
	return order
}

func edgeBetween(blk *workflow.Block, in expr.Set, i int) bool {
	for _, e := range blk.Joins {
		if in.Has(e.LeftInput) && e.RightInput == i || in.Has(e.RightInput) && e.LeftInput == i {
			return true
		}
	}
	return false
}

// LeftDeepTree builds the left-deep join tree realizing an input order
// (each prefix must be connected in the block's join graph). The schedule
// package reuses it to realize observation plans.
func LeftDeepTree(blk *workflow.Block, order []int) *workflow.JoinTree {
	return leftDeep(blk, order)
}

// leftDeep builds the left-deep join tree for an input order.
func leftDeep(blk *workflow.Block, order []int) *workflow.JoinTree {
	tree := &workflow.JoinTree{Leaf: order[0], Join: -1}
	in := expr.NewSet(order[0])
	for _, i := range order[1:] {
		edge := -1
		for j, e := range blk.Joins {
			if in.Has(e.LeftInput) && e.RightInput == i || in.Has(e.RightInput) && e.LeftInput == i {
				edge = j
				break
			}
		}
		tree = &workflow.JoinTree{
			Leaf: -1, Join: edge,
			Left:  tree,
			Right: &workflow.JoinTree{Leaf: i, Join: -1},
		}
		in = in.Add(i)
	}
	return tree
}
