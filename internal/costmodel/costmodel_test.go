package costmodel

import (
	"testing"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

func retailRes(t *testing.T) (*css.Result, *workflow.Catalog) {
	t.Helper()
	cat := &workflow.Catalog{Relations: []*workflow.Relation{
		{Name: "Orders", Card: 10000, Columns: []workflow.Column{
			{Name: "oid", Domain: 10000}, {Name: "pid", Domain: 500}, {Name: "cid", Domain: 2000},
		}},
		{Name: "Product", Card: 500, Columns: []workflow.Column{
			{Name: "pid", Domain: 500}, {Name: "price", Domain: 1000},
		}},
		{Name: "Customer", Card: 2000, Columns: []workflow.Column{
			{Name: "cid", Domain: 2000}, {Name: "region", Domain: 50},
		}},
	}}
	b := workflow.NewBuilder("retail")
	o := b.Source("Orders")
	p := b.Source("Product")
	c := b.Source("Customer")
	j1 := b.Join(o, p, workflow.Attr{Rel: "Orders", Col: "pid"}, workflow.Attr{Rel: "Product", Col: "pid"})
	j2 := b.Join(j1, c, workflow.Attr{Rel: "Orders", Col: "cid"}, workflow.Attr{Rel: "Customer", Col: "cid"})
	b.Sink(j2, "dw")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return res, an.Cat
}

func inputOf(t *testing.T, res *css.Result, rel string) int {
	t.Helper()
	for i, in := range res.Analysis.Blocks[0].Inputs {
		if in.SourceRel == rel {
			return i
		}
	}
	t.Fatalf("input %s not found", rel)
	return -1
}

func TestMemoryUnits(t *testing.T) {
	res, cat := retailRes(t)
	c := NewMemoryCoster(res, cat)
	o := inputOf(t, res, "Orders")
	sp := res.Space(0)
	pid := sp.ClassOf(workflow.Attr{Rel: "Orders", Col: "pid"})
	cid := sp.ClassOf(workflow.Attr{Rel: "Orders", Col: "cid"})

	// Cardinality: one counter.
	m, err := c.Memory(stats.NewCard(stats.BlockSE(0, expr.NewSet(o))))
	if err != nil || m != 1 {
		t.Fatalf("Memory(card) = %d, %v; want 1", m, err)
	}
	// Single-attribute histogram: the attribute domain (Section 5.4).
	m, err = c.Memory(stats.NewHist(stats.BlockSE(0, expr.NewSet(o)), pid))
	if err != nil || m != 500 {
		t.Fatalf("Memory(H^pid) = %d, %v; want 500", m, err)
	}
	// Joint histogram: the product of domains.
	m, err = c.Memory(stats.NewHist(stats.BlockSE(0, expr.NewSet(o)), pid, cid))
	if err != nil || m != 500*2000 {
		t.Fatalf("Memory(H^{pid,cid}) = %d, %v; want 1000000", m, err)
	}
	// Distinct: same as a histogram.
	m, err = c.Memory(stats.NewDistinct(stats.BlockSE(0, expr.NewSet(o)), cid))
	if err != nil || m != 2000 {
		t.Fatalf("Memory(distinct cid) = %d, %v; want 2000", m, err)
	}
}

func TestMemoryFDReduction(t *testing.T) {
	res, cat := retailRes(t)
	// Orders.oid functionally determines Orders.cid (each order has one
	// customer): the joint (oid, cid) histogram has at most |oid| buckets.
	cat.FDs = append(cat.FDs, workflow.FD{Rel: "Orders", Determines: []string{"oid"}, Dependent: "cid"})
	c := NewMemoryCoster(res, cat)
	c.UseFDs = true
	o := inputOf(t, res, "Orders")
	sp := res.Space(0)
	oid := sp.ClassOf(workflow.Attr{Rel: "Orders", Col: "oid"})
	cid := sp.ClassOf(workflow.Attr{Rel: "Orders", Col: "cid"})
	m, err := c.Memory(stats.NewHist(stats.BlockSE(0, expr.NewSet(o)), oid, cid))
	if err != nil || m != 10000 {
		t.Fatalf("FD-reduced Memory = %d, %v; want 10000 (|oid|)", m, err)
	}
	c.UseFDs = false
	m, err = c.Memory(stats.NewHist(stats.BlockSE(0, expr.NewSet(o)), oid, cid))
	if err != nil || m != 10000*2000 {
		t.Fatalf("unreduced Memory = %d, %v; want 20000000", m, err)
	}
}

func TestCostWeights(t *testing.T) {
	res, cat := retailRes(t)
	c := &Coster{Res: res, Cat: cat, MemWeight: 1, CPUWeight: 1}
	o := inputOf(t, res, "Orders")
	s := stats.NewHist(stats.BlockSE(0, expr.NewSet(o)), res.Space(0).ClassOf(workflow.Attr{Rel: "Orders", Col: "pid"}))
	cost, err := c.Cost(s)
	if err != nil {
		t.Fatalf("Cost: %v", err)
	}
	// memory 500 + CPU ≈ |Orders| = 10000.
	if cost < 10000 || cost > 11000 {
		t.Fatalf("Cost = %v, want ≈ 10500", cost)
	}
}

func TestFreeSourceStats(t *testing.T) {
	res, cat := retailRes(t)
	cat.Relation("Product").HasSourceStats = true
	c := NewMemoryCoster(res, cat)
	c.FreeSourceStats = true
	p := inputOf(t, res, "Product")
	o := inputOf(t, res, "Orders")
	sp := res.Space(0)
	pid := sp.ClassOf(workflow.Attr{Rel: "Orders", Col: "pid"})
	cost, err := c.Cost(stats.NewHist(stats.BlockSE(0, expr.NewSet(p)), pid))
	if err != nil || cost != 0 {
		t.Fatalf("free source stat cost = %v, %v; want 0", cost, err)
	}
	cost, err = c.Cost(stats.NewHist(stats.BlockSE(0, expr.NewSet(o)), pid))
	if err != nil || cost == 0 {
		t.Fatalf("Orders (no source stats) cost = %v, %v; want > 0", cost, err)
	}
	// Joins are never free.
	cost, err = c.Cost(stats.NewCard(stats.BlockSE(0, expr.NewSet(o, p))))
	if err != nil || cost == 0 {
		t.Fatalf("join stat cost = %v, %v; want > 0", cost, err)
	}
}

func TestIndependenceSizes(t *testing.T) {
	res, cat := retailRes(t)
	ind := NewIndependence(res, cat)
	o := inputOf(t, res, "Orders")
	p := inputOf(t, res, "Product")
	sz, ok := ind.SizeOf(stats.BlockSE(0, expr.NewSet(o)))
	if !ok || sz != 10000 {
		t.Fatalf("SizeOf(Orders) = %v, %v; want 10000", sz, ok)
	}
	// |O⋈P| ≈ |O||P|/|pid| = 10000*500/500 = 10000.
	sz, ok = ind.SizeOf(stats.BlockSE(0, expr.NewSet(o, p)))
	if !ok || sz != 10000 {
		t.Fatalf("SizeOf(O⋈P) = %v, %v; want 10000", sz, ok)
	}
	// Reject targets shrink by the reject fraction.
	sz, ok = ind.SizeOf(stats.BlockRejectSE(0, expr.NewSet(o), o, 0))
	if !ok || sz != 1000 {
		t.Fatalf("SizeOf(reject O) = %v, %v; want 1000", sz, ok)
	}
}

func TestMemorySaturatesInsteadOfOverflow(t *testing.T) {
	cat := &workflow.Catalog{Relations: []*workflow.Relation{
		{Name: "A", Card: 10, Columns: []workflow.Column{
			{Name: "x", Domain: 1 << 40}, {Name: "y", Domain: 1 << 40}, {Name: "k", Domain: 10},
		}},
		{Name: "B", Card: 10, Columns: []workflow.Column{{Name: "k", Domain: 10}}},
	}}
	b := workflow.NewBuilder("big")
	a := b.Source("A")
	bb := b.Source("B")
	j := b.Join(a, bb, workflow.Attr{Rel: "A", Col: "k"}, workflow.Attr{Rel: "B", Col: "k"})
	b.Sink(j, "out")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.Options{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	c := NewMemoryCoster(res, an.Cat)
	x := workflow.Attr{Rel: "A", Col: "x"}
	y := workflow.Attr{Rel: "A", Col: "y"}
	m, err := c.Memory(stats.NewHist(stats.BlockSE(0, expr.NewSet(0)), x, y))
	if err != nil {
		t.Fatalf("Memory: %v", err)
	}
	if m <= 0 {
		t.Fatalf("Memory overflowed to %d", m)
	}
}
