// Package costmodel implements the observation cost metrics of Section 5.4
// of the paper: the memory overhead of maintaining a statistic (one counter
// for a cardinality, the attribute domain size — conservatively, the
// product of domain sizes for multi-attribute histograms — for
// distributions) and the CPU cost of updating it (proportional to the
// number of tuples flowing past the observation point).
package costmodel

import (
	"fmt"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Sizes estimates the tuple count of a statistic's target, used for the
// CPU cost metric. Section 5.4 breaks the circular dependency (the sizes
// are what the statistics will estimate) by taking sizes from the previous
// run when available and from an independence-assumption approximation on
// the first run.
type Sizes interface {
	// SizeOf returns the estimated tuple count of the target, or false
	// when unknown.
	SizeOf(t stats.Target) (float64, bool)
}

// Coster prices statistics for the selection step.
type Coster struct {
	// Res is the CSS generation result the statistics belong to.
	Res *css.Result
	// Cat supplies domain sizes and functional dependencies.
	Cat *workflow.Catalog
	// Sizes supplies target tuple counts for the CPU metric; nil falls
	// back to Independence.
	Sizes Sizes
	// MemWeight and CPUWeight combine the two metrics into one objective.
	// The paper's experiments report memory, so the default selection uses
	// MemWeight=1, CPUWeight=0.
	MemWeight, CPUWeight float64
	// UseFDs enables the functional-dependency enhancement of Section 6:
	// attributes functionally determined by others in a histogram's
	// attribute set do not enlarge its domain-size bound.
	UseFDs bool
	// FreeSourceStats implements Section 6.2: statistics over unfiltered
	// base relations whose source system exposes its own statistics cost
	// nothing to "observe".
	FreeSourceStats bool
}

// NewMemoryCoster prices statistics by memory units only, the metric of
// Figure 11.
func NewMemoryCoster(res *css.Result, cat *workflow.Catalog) *Coster {
	return &Coster{Res: res, Cat: cat, MemWeight: 1}
}

// Memory returns the memory overhead of observing the statistic, in
// abstract integer units as in the paper: 1 for a cardinality counter, and
// the (FD-reduced) product of attribute domain sizes for distinct counts
// and histograms.
func (c *Coster) Memory(s stats.Stat) (int64, error) {
	if s.Kind == stats.Card {
		return 1, nil
	}
	// Sketch-backed kinds occupy a fixed budget regardless of the attribute
	// domain — that bound is the whole point of the approximate tier. The
	// units mirror Store.MemoryUnits: 8 HLL registers per unit, one unit per
	// count-min counter.
	switch s.Kind {
	case stats.HLLDistinct:
		return (1 << stats.DefaultHLLP) / 8, nil
	case stats.CMHist:
		return int64(stats.DefaultCMDepth) * int64(stats.DefaultCMWidth), nil
	}
	phys, err := c.Res.PhysicalAttrs(s)
	if err != nil {
		return 0, err
	}
	if c.UseFDs {
		phys = c.reduceByFDs(phys)
	}
	total := int64(1)
	for _, a := range phys {
		d, err := c.domainOf(a)
		if err != nil {
			return 0, err
		}
		if total > 0 && d > 0 && total > (1<<62)/d {
			return 1 << 62, nil // saturate instead of overflowing
		}
		total *= d
	}
	return total, nil
}

// domainOf returns the domain of an attribute, falling back across the
// attribute's join-equivalence class when the physical attribute itself is
// a derived column without registered domain.
func (c *Coster) domainOf(a workflow.Attr) (int64, error) {
	if d, err := c.Cat.Domain(a); err == nil {
		return d, nil
	}
	return 0, fmt.Errorf("costmodel: no domain for attribute %s", a)
}

// reduceByFDs drops attributes functionally determined by the remaining
// attributes of the set; such attributes cannot increase the number of
// distinct combinations.
func (c *Coster) reduceByFDs(attrs []workflow.Attr) []workflow.Attr {
	out := append([]workflow.Attr(nil), attrs...)
	for changed := true; changed; {
		changed = false
		for i, a := range out {
			rest := append(append([]workflow.Attr(nil), out[:i]...), out[i+1:]...)
			if c.Cat.Determined(rest, a) {
				out = rest
				changed = true
				break
			}
		}
	}
	return out
}

// CPU returns the CPU observation cost: the estimated number of tuples at
// the observation point, scaled by the per-kind update weight — each tuple
// costs one update for exact statistics, while sketch updates (a hash and
// a register/counter write, no sorted-map maintenance) are priced at
// UpdateWeight of one.
func (c *Coster) CPU(s stats.Stat) float64 {
	n := 0.0
	if c.Sizes != nil {
		if sz, ok := c.Sizes.SizeOf(s.Target); ok {
			n = sz
		}
	}
	if n == 0 {
		if sz, ok := NewIndependence(c.Res, c.Cat).SizeOf(s.Target); ok {
			n = sz
		}
	}
	return n * UpdateWeight(s.Kind)
}

// SketchUpdateWeight prices one sketch update relative to one exact
// distribution update. Exact distribution updates maintain a sorted
// frequency map; a sketch update is a 64-bit hash plus a bounded number of
// array writes.
const SketchUpdateWeight = 0.1

// CardUpdateWeight prices a cardinality update: a bare counter increment,
// with no key hashing or map maintenance at all — orders of magnitude
// below the exact-distribution unit the weights are relative to.
const CardUpdateWeight = 0.001

// UpdateWeight returns the per-tuple CPU weight of a statistic kind,
// relative to one exact distribution (frequency-map) update.
func UpdateWeight(k stats.Kind) float64 {
	if k == stats.Card {
		return CardUpdateWeight
	}
	if k.Approx() {
		return SketchUpdateWeight
	}
	return 1
}

// Cost combines the metrics per the configured weights. Statistics over
// source relations with free source-system statistics cost zero when
// FreeSourceStats is set.
func (c *Coster) Cost(s stats.Stat) (float64, error) {
	if c.FreeSourceStats && c.isFreeSourceStat(s) {
		return 0, nil
	}
	mem, err := c.Memory(s)
	if err != nil {
		return 0, err
	}
	cost := c.MemWeight * float64(mem)
	if c.CPUWeight != 0 {
		cost += c.CPUWeight * c.CPU(s)
	}
	return cost, nil
}

// isFreeSourceStat reports whether the statistic describes an unmodified
// base relation whose source system publishes statistics (Section 6.2).
func (c *Coster) isFreeSourceStat(s stats.Stat) bool {
	t := s.Target
	if t.IsReject() || t.Set.Len() != 1 {
		return false
	}
	bc := c.Res.Analysis.Blocks[t.Block]
	i := t.Set.Lowest()
	in := bc.Inputs[i]
	if in.SourceRel == "" {
		return false
	}
	// Only the raw relation is covered by source statistics: either the
	// raw chain point, or the cooked input when it has no operators.
	if t.IsChainPoint() && t.Depth != 0 {
		return false
	}
	if !t.IsChainPoint() && len(in.Ops) > 0 {
		return false
	}
	rel := c.Cat.Relation(in.SourceRel)
	return rel != nil && rel.HasSourceStats
}

// Independence estimates target sizes under attribute independence and
// uniformity, the paper's first-run approximation: base sizes from the
// catalog, selectivity 1/domain for equality predicates and 1/3 for range
// predicates, and joins scaled by 1/domain of the join attribute.
type Independence struct {
	res *css.Result
	cat *workflow.Catalog
	// RejectFraction approximates the share of rows a reject link
	// captures.
	RejectFraction float64
}

// NewIndependence returns an independence-assumption size estimator.
func NewIndependence(res *css.Result, cat *workflow.Catalog) *Independence {
	return &Independence{res: res, cat: cat, RejectFraction: 0.1}
}

// SizeOf implements Sizes.
func (ind *Independence) SizeOf(t stats.Target) (float64, bool) {
	bc := ind.res.Analysis.Blocks[t.Block]
	size := 1.0
	for _, i := range t.Set.Members() {
		s, ok := ind.inputSize(bc, i, t)
		if !ok {
			return 0, false
		}
		if t.IsReject() && i == t.RejectInput {
			s *= ind.RejectFraction
		}
		size *= s
	}
	// Each join edge internal to the SE divides by its attribute domain.
	for _, e := range bc.Joins {
		if t.Set.Has(e.LeftInput) && t.Set.Has(e.RightInput) {
			if d, err := ind.cat.Domain(e.LeftAttr); err == nil && d > 0 {
				size /= float64(d)
			}
		}
	}
	if size < 1 {
		size = 1
	}
	return size, true
}

// inputSize estimates the tuple count of one input at the depth addressed
// by the target (full chain for cooked SEs).
func (ind *Independence) inputSize(blk *workflow.Block, i int, t stats.Target) (float64, bool) {
	in := blk.Inputs[i]
	var base float64
	switch {
	case in.SourceRel != "":
		rel := ind.cat.Relation(in.SourceRel)
		if rel == nil || rel.Card <= 0 {
			return 0, false
		}
		base = float64(rel.Card)
	case in.FromBlock >= 0:
		up := ind.res.Analysis.Blocks[in.FromBlock]
		s, ok := ind.SizeOf(stats.BlockSE(in.FromBlock, fullSet(up)))
		if !ok {
			return 0, false
		}
		// A terminating group-by shrinks the boundary record-set.
		for _, op := range up.TopOps {
			if op.Kind == workflow.KindGroupBy || op.Kind == workflow.KindAggregateUDF {
				s /= 3
			}
		}
		base = s
	default:
		return 0, false
	}
	depth := len(in.Ops)
	if t.IsChainPoint() && t.Set.Lowest() == i {
		depth = t.Depth
	}
	for d := 0; d < depth; d++ {
		op := in.Ops[d]
		if op.Kind != workflow.KindSelect {
			continue
		}
		if op.Pred.Op == workflow.CmpEq {
			if dom, err := ind.cat.Domain(op.Pred.Attr); err == nil && dom > 0 {
				base /= float64(dom)
				continue
			}
		}
		base /= 3
	}
	return base, true
}

func fullSet(b *workflow.Block) expr.Set {
	var s expr.Set
	for i := range b.Inputs {
		s = s.Add(i)
	}
	return s
}
