package workflow

import "fmt"

// Builder constructs workflow graphs fluently. Node IDs are generated
// automatically ("n1", "n2", ...). Each method returns the new node's ID so
// it can be wired into later operators.
//
//	b := workflow.NewBuilder("retail")
//	o := b.Source("Orders")
//	p := b.Source("Product")
//	j := b.Join(o, p, workflow.Attr{"Orders", "pid"}, workflow.Attr{"Product", "pid"})
//	b.Sink(j, "warehouse")
//	g := b.Graph()
type Builder struct {
	g    *Graph
	next int
}

// NewBuilder returns a builder for a workflow with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{g: &Graph{Name: name}}
}

func (b *Builder) add(n *Node) NodeID {
	b.next++
	if n.ID == "" {
		n.ID = NodeID(fmt.Sprintf("n%d", b.next))
	}
	b.g.Nodes = append(b.g.Nodes, n)
	return n.ID
}

// Source adds a source node reading relation rel.
func (b *Builder) Source(rel string) NodeID {
	return b.add(&Node{Kind: KindSource, Rel: rel})
}

// Select adds a selection with the given predicate over input in.
func (b *Builder) Select(in NodeID, p Predicate) NodeID {
	return b.add(&Node{Kind: KindSelect, Inputs: []NodeID{in}, Pred: &p})
}

// Project adds a projection keeping cols over input in.
func (b *Builder) Project(in NodeID, cols ...Attr) NodeID {
	return b.add(&Node{Kind: KindProject, Inputs: []NodeID{in}, Cols: cols})
}

// Join adds an equi-join of left and right on la = ra.
func (b *Builder) Join(left, right NodeID, la, ra Attr) NodeID {
	return b.add(&Node{Kind: KindJoin, Inputs: []NodeID{left, right}, Join: &JoinSpec{Left: la, Right: ra}})
}

// JoinSpecd adds an equi-join with full control over the join spec.
func (b *Builder) JoinSpecd(left, right NodeID, spec JoinSpec) NodeID {
	s := spec
	return b.add(&Node{Kind: KindJoin, Inputs: []NodeID{left, right}, Join: &s})
}

// FKJoin adds a foreign-key (look-up) join of left and right on la = ra.
func (b *Builder) FKJoin(left, right NodeID, la, ra Attr) NodeID {
	return b.JoinSpecd(left, right, JoinSpec{Left: la, Right: ra, ForeignKey: true})
}

// RejectJoin adds an equi-join whose left-side non-matching tuples are
// materialized on a reject link.
func (b *Builder) RejectJoin(left, right NodeID, la, ra Attr) NodeID {
	return b.JoinSpecd(left, right, JoinSpec{Left: la, Right: ra, RejectLink: true})
}

// GroupBy adds a group-by on keys over input in.
func (b *Builder) GroupBy(in NodeID, keys ...Attr) NodeID {
	return b.add(&Node{Kind: KindGroupBy, Inputs: []NodeID{in}, Cols: keys})
}

// Transform adds a transform node computing out = fn(ins...).
func (b *Builder) Transform(in NodeID, fn string, out Attr, ins ...Attr) NodeID {
	return b.add(&Node{Kind: KindTransform, Inputs: []NodeID{in}, Transform: &TransformSpec{Ins: ins, Out: out, Fn: fn}})
}

// AggregateUDF adds a blocking custom aggregate computing out = fn(ins...).
func (b *Builder) AggregateUDF(in NodeID, fn string, out Attr, ins ...Attr) NodeID {
	return b.add(&Node{Kind: KindAggregateUDF, Inputs: []NodeID{in}, Transform: &TransformSpec{Ins: ins, Out: out, Fn: fn}})
}

// Materialize adds an explicit materialization of the input into target.
func (b *Builder) Materialize(in NodeID, target string) NodeID {
	return b.add(&Node{Kind: KindMaterialize, Inputs: []NodeID{in}, Rel: target})
}

// Sink adds a target record-set node writing to target.
func (b *Builder) Sink(in NodeID, target string) NodeID {
	return b.add(&Node{Kind: KindSink, Inputs: []NodeID{in}, Rel: target})
}

// Graph returns the constructed workflow.
func (b *Builder) Graph() *Graph { return b.g }
