package workflow

import (
	"strings"
	"testing"
)

// retailCatalog is the Orders/Product/Customer schema from Figure 1 of the
// paper, reused across tests.
func retailCatalog() *Catalog {
	return &Catalog{Relations: []*Relation{
		{Name: "Orders", Card: 10000, Columns: []Column{
			{Name: "oid", Domain: 10000},
			{Name: "pid", Domain: 500},
			{Name: "cid", Domain: 2000},
		}},
		{Name: "Product", Card: 500, Columns: []Column{
			{Name: "pid", Domain: 500},
			{Name: "price", Domain: 1000},
		}},
		{Name: "Customer", Card: 2000, Columns: []Column{
			{Name: "cid", Domain: 2000},
			{Name: "region", Domain: 50},
		}},
	}}
}

// retailFlow builds the plan of Figure 1(a): (Orders ⋈ Product) ⋈ Customer.
func retailFlow() *Graph {
	b := NewBuilder("retail")
	o := b.Source("Orders")
	p := b.Source("Product")
	c := b.Source("Customer")
	j1 := b.Join(o, p, Attr{"Orders", "pid"}, Attr{"Product", "pid"})
	j2 := b.Join(j1, c, Attr{"Orders", "cid"}, Attr{"Customer", "cid"})
	b.Sink(j2, "dw")
	return b.Graph()
}

func TestValidateRetail(t *testing.T) {
	if err := retailFlow().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want string
	}{
		{
			name: "empty",
			g:    &Graph{Name: "x"},
			want: "no nodes",
		},
		{
			name: "duplicate id",
			g: &Graph{Name: "x", Nodes: []*Node{
				{ID: "a", Kind: KindSource, Rel: "R"},
				{ID: "a", Kind: KindSource, Rel: "S"},
			}},
			want: "duplicate node ID",
		},
		{
			name: "bad arity",
			g: &Graph{Name: "x", Nodes: []*Node{
				{ID: "a", Kind: KindSource, Rel: "R"},
				{ID: "j", Kind: KindJoin, Inputs: []NodeID{"a"}, Join: &JoinSpec{}},
			}},
			want: "want 2 inputs",
		},
		{
			name: "unknown input",
			g: &Graph{Name: "x", Nodes: []*Node{
				{ID: "a", Kind: KindSource, Rel: "R"},
				{ID: "s", Kind: KindSink, Inputs: []NodeID{"zzz"}, Rel: "t"},
			}},
			want: "unknown input",
		},
		{
			name: "dangling node",
			g: &Graph{Name: "x", Nodes: []*Node{
				{ID: "a", Kind: KindSource, Rel: "R"},
				{ID: "b", Kind: KindSource, Rel: "S"},
				{ID: "s", Kind: KindSink, Inputs: []NodeID{"a"}, Rel: "t"},
			}},
			want: "no consumer",
		},
		{
			name: "cycle",
			g: &Graph{Name: "x", Nodes: []*Node{
				{ID: "a", Kind: KindSelect, Inputs: []NodeID{"b"}, Pred: &Predicate{}},
				{ID: "b", Kind: KindSelect, Inputs: []NodeID{"a"}, Pred: &Predicate{}},
				{ID: "s", Kind: KindSink, Inputs: []NodeID{"b"}, Rel: "t"},
			}},
			want: "cycle",
		},
		{
			name: "select without predicate",
			g: &Graph{Name: "x", Nodes: []*Node{
				{ID: "a", Kind: KindSource, Rel: "R"},
				{ID: "f", Kind: KindSelect, Inputs: []NodeID{"a"}},
				{ID: "s", Kind: KindSink, Inputs: []NodeID{"f"}, Rel: "t"},
			}},
			want: "missing predicate",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.g.Validate()
			if err == nil {
				t.Fatalf("Validate: want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate: want error containing %q, got %q", tc.want, err)
			}
		})
	}
}

func TestTopoOrder(t *testing.T) {
	g := retailFlow()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	if len(order) != len(g.Nodes) {
		t.Fatalf("TopoOrder: got %d nodes, want %d", len(order), len(g.Nodes))
	}
	pos := make(map[NodeID]int)
	for i, n := range order {
		pos[n.ID] = i
	}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if pos[in] >= pos[n.ID] {
				t.Errorf("node %s at %d before its input %s at %d", n.ID, pos[n.ID], in, pos[in])
			}
		}
	}
}

func TestSchemaPropagation(t *testing.T) {
	g := retailFlow()
	cat := retailCatalog()
	schema, err := g.Schema(cat)
	if err != nil {
		t.Fatalf("Schema: %v", err)
	}
	// The join of all three relations carries all seven columns.
	sink := g.Sinks()[0]
	got := schema[sink.ID]
	if len(got) != 7 {
		t.Fatalf("sink schema: got %d attrs (%v), want 7", len(got), got)
	}
	for _, want := range []Attr{{"Orders", "oid"}, {"Product", "price"}, {"Customer", "region"}} {
		if !attrIn(got, want) {
			t.Errorf("sink schema missing %s", want)
		}
	}
}

func TestSchemaUnknownAttr(t *testing.T) {
	b := NewBuilder("bad")
	o := b.Source("Orders")
	f := b.Select(o, Predicate{Attr: Attr{"Orders", "nope"}, Op: CmpEq, Const: 1})
	b.Sink(f, "t")
	_, err := b.Graph().Schema(retailCatalog())
	if err == nil || !strings.Contains(err.Error(), "not in input schema") {
		t.Fatalf("Schema: want unknown-attr error, got %v", err)
	}
}

func TestPredicateMatches(t *testing.T) {
	cases := []struct {
		op   CmpOp
		c, v int64
		want bool
	}{
		{CmpEq, 5, 5, true}, {CmpEq, 5, 4, false},
		{CmpNe, 5, 4, true}, {CmpNe, 5, 5, false},
		{CmpLt, 5, 4, true}, {CmpLt, 5, 5, false},
		{CmpLe, 5, 5, true}, {CmpLe, 5, 6, false},
		{CmpGt, 5, 6, true}, {CmpGt, 5, 5, false},
		{CmpGe, 5, 5, true}, {CmpGe, 5, 4, false},
	}
	for _, tc := range cases {
		p := Predicate{Attr: Attr{"T", "a"}, Op: tc.op, Const: tc.c}
		if got := p.Matches(tc.v); got != tc.want {
			t.Errorf("(%v %s %d).Matches(%d) = %v, want %v", p.Attr, tc.op, tc.c, tc.v, got, tc.want)
		}
	}
}

func TestAttrsString(t *testing.T) {
	got := AttrsString([]Attr{{"B", "y"}, {"A", "x"}})
	if got != "A.x,B.y" {
		t.Fatalf("AttrsString = %q, want %q", got, "A.x,B.y")
	}
}

func TestCatalogDomain(t *testing.T) {
	cat := retailCatalog()
	d, err := cat.Domain(Attr{"Orders", "pid"})
	if err != nil || d != 500 {
		t.Fatalf("Domain(Orders.pid) = %d, %v; want 500, nil", d, err)
	}
	if _, err := cat.Domain(Attr{"Nope", "x"}); err == nil {
		t.Fatal("Domain(unknown rel): want error")
	}
	if _, err := cat.Domain(Attr{"Orders", "nope"}); err == nil {
		t.Fatal("Domain(unknown col): want error")
	}
	cat.AddDerived(Attr{"Xform", "c"}, 77)
	d, err = cat.Domain(Attr{"Xform", "c"})
	if err != nil || d != 77 {
		t.Fatalf("Domain(derived) = %d, %v; want 77, nil", d, err)
	}
}

func TestCatalogClone(t *testing.T) {
	cat := retailCatalog()
	cl := cat.Clone()
	cl.AddDerived(Attr{"Orders", "extra"}, 9)
	if cat.Relation("Orders").Column("extra") != nil {
		t.Fatal("Clone: mutation leaked into original catalog")
	}
}

func TestCatalogDetermined(t *testing.T) {
	cat := retailCatalog()
	cat.FDs = append(cat.FDs, FD{Rel: "Orders", Determines: []string{"oid"}, Dependent: "pid"})
	if !cat.Determined([]Attr{{"Orders", "oid"}}, Attr{"Orders", "pid"}) {
		t.Fatal("Determined: oid→pid should hold")
	}
	if cat.Determined([]Attr{{"Orders", "cid"}}, Attr{"Orders", "pid"}) {
		t.Fatal("Determined: cid→pid should not hold")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	doc := &Document{Workflow: retailFlow(), Catalog: retailCatalog()}
	data, err := doc.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Workflow.Name != "retail" || len(back.Workflow.Nodes) != len(doc.Workflow.Nodes) {
		t.Fatalf("round trip lost nodes: got %d, want %d", len(back.Workflow.Nodes), len(doc.Workflow.Nodes))
	}
	if !strings.Contains(string(data), `"kind": "join"`) {
		t.Errorf("node kinds should serialize as names, got: %s", data)
	}
	an1, err := Analyze(doc.Workflow, doc.Catalog)
	if err != nil {
		t.Fatalf("Analyze original: %v", err)
	}
	an2, err := Analyze(back.Workflow, back.Catalog)
	if err != nil {
		t.Fatalf("Analyze round-tripped: %v", err)
	}
	if len(an1.Blocks) != len(an2.Blocks) {
		t.Fatalf("block count changed across round trip: %d vs %d", len(an1.Blocks), len(an2.Blocks))
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte(`{`)); err == nil {
		t.Fatal("Unmarshal(truncated): want error")
	}
	if _, err := Unmarshal([]byte(`{"catalog":{"relations":[]}}`)); err == nil {
		t.Fatal("Unmarshal(missing workflow): want error")
	}
	if _, err := Unmarshal([]byte(`{"workflow":{"name":"x","nodes":[]}}`)); err == nil {
		t.Fatal("Unmarshal(missing catalog): want error")
	}
}

func TestDOTRendering(t *testing.T) {
	g := retailFlow()
	cat := retailCatalog()
	an, err := Analyze(g, cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	dot := g.DOT(an)
	for _, want := range []string{"digraph", "cluster_block0", "source\\nOrders", "sink\\ndw", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Bare rendering (no analysis) also works and has no clusters.
	bare := g.DOT(nil)
	if strings.Contains(bare, "cluster") {
		t.Error("bare DOT should have no clusters")
	}
	// Deterministic output.
	if g.DOT(an) != dot {
		t.Error("DOT not deterministic")
	}
}

func TestValidateRejectsSelfJoin(t *testing.T) {
	b := NewBuilder("selfjoin")
	a1 := b.Source("T")
	a2 := b.Source("T")
	j := b.Join(a1, a2, Attr{"T", "a"}, Attr{"T", "a"})
	b.Sink(j, "out")
	err := b.Graph().Validate()
	if err == nil || !strings.Contains(err.Error(), "self-join") {
		t.Fatalf("want self-join error, got %v", err)
	}
}
