package workflow

import "testing"

// figure3Catalog matches the T1..T4 workflow of Figure 3 in the paper.
func figure3Catalog() *Catalog {
	mk := func(name string, cols ...string) *Relation {
		r := &Relation{Name: name, Card: 1000}
		for _, c := range cols {
			r.Columns = append(r.Columns, Column{Name: c, Domain: 100})
		}
		return r
	}
	return &Catalog{Relations: []*Relation{
		mk("T1", "a", "b", "x"),
		mk("T2", "a", "y"),
		mk("T3", "b", "z"),
		mk("T4", "c", "w"),
	}}
}

// figure3Flow reproduces Figure 3: T1 ⋈ T2 with a materialized reject link,
// then ⋈ T3, then a UDF deriving join attribute c from x and y, then ⋈ T4.
func figure3Flow() *Graph {
	b := NewBuilder("figure3")
	t1 := b.Source("T1")
	t2 := b.Source("T2")
	t3 := b.Source("T3")
	t4 := b.Source("T4")
	j1 := b.RejectJoin(t1, t2, Attr{"T1", "a"}, Attr{"T2", "a"})
	j2 := b.Join(j1, t3, Attr{"T1", "b"}, Attr{"T3", "b"})
	x := b.Transform(j2, "derive_c", Attr{"U", "c"}, Attr{"T1", "x"}, Attr{"T2", "y"})
	j3 := b.Join(x, t4, Attr{"U", "c"}, Attr{"T4", "c"})
	b.Sink(j3, "dw")
	return b.Graph()
}

func TestAnalyzeFigure3Blocks(t *testing.T) {
	an, err := Analyze(figure3Flow(), figure3Catalog())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// The paper divides this workflow into three optimizable blocks:
	// B1 after the reject-link join, B2 after the UDF, B3 the final join.
	if len(an.Blocks) != 3 {
		for _, b := range an.Blocks {
			t.Logf("block %d: inputs=%d joins=%d terminal=%s", b.Index, len(b.Inputs), len(b.Joins), b.Terminal)
		}
		t.Fatalf("Analyze: got %d blocks, want 3", len(an.Blocks))
	}
	b0 := an.Blocks[0]
	if !b0.RejectPinned {
		t.Error("block 0 should be pinned by its reject link")
	}
	if len(b0.Inputs) != 2 || len(b0.Joins) != 1 {
		t.Errorf("block 0: got %d inputs / %d joins, want 2 / 1", len(b0.Inputs), len(b0.Joins))
	}
	b1 := an.Blocks[1]
	if len(b1.Inputs) != 2 || len(b1.Joins) != 1 {
		t.Errorf("block 1: got %d inputs / %d joins, want 2 / 1", len(b1.Inputs), len(b1.Joins))
	}
	// Block 1 is terminated by the pinned transform.
	if got := an.Graph.Node(b1.Terminal).Kind; got != KindTransform {
		t.Errorf("block 1 terminal kind = %v, want transform", got)
	}
	b2 := an.Blocks[2]
	if len(b2.Inputs) != 2 || len(b2.Joins) != 1 {
		t.Errorf("block 2: got %d inputs / %d joins, want 2 / 1", len(b2.Inputs), len(b2.Joins))
	}
	// Block 1's non-base input comes from block 0, block 2's from block 1.
	from := map[int]bool{}
	for _, in := range b1.Inputs {
		from[in.FromBlock] = true
	}
	if !from[0] {
		t.Errorf("block 1 inputs should include block 0's output, got %+v", b1.Inputs)
	}
}

func TestAnalyzeRetailSingleBlock(t *testing.T) {
	an, err := Analyze(retailFlow(), retailCatalog())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(an.Blocks) != 1 {
		t.Fatalf("got %d blocks, want 1", len(an.Blocks))
	}
	b := an.Blocks[0]
	if len(b.Inputs) != 3 || len(b.Joins) != 2 {
		t.Fatalf("block: got %d inputs / %d joins, want 3 / 2", len(b.Inputs), len(b.Joins))
	}
	if b.Initial == nil {
		t.Fatal("block should record the initial join tree")
	}
	if got := b.Initial.Render(b); got != "((Orders ⋈ Product) ⋈ Customer)" {
		t.Errorf("initial plan = %s", got)
	}
	if b.RejectPinned {
		t.Error("plain joins should not be pinned")
	}
}

func TestAnalyzeLinearFlow(t *testing.T) {
	b := NewBuilder("linear")
	o := b.Source("Orders")
	f := b.Select(o, Predicate{Attr: Attr{"Orders", "pid"}, Op: CmpGt, Const: 10})
	p := b.Project(f, Attr{"Orders", "pid"}, Attr{"Orders", "cid"})
	b.Sink(p, "t")
	an, err := Analyze(b.Graph(), retailCatalog())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(an.Blocks) != 1 {
		t.Fatalf("got %d blocks, want 1", len(an.Blocks))
	}
	blk := an.Blocks[0]
	if len(blk.Inputs) != 1 || len(blk.Joins) != 0 {
		t.Fatalf("linear block: got %d inputs / %d joins, want 1 / 0", len(blk.Inputs), len(blk.Joins))
	}
	if len(blk.Inputs[0].Ops) != 2 {
		t.Fatalf("linear block input ops = %d, want 2 (select+project)", len(blk.Inputs[0].Ops))
	}
	if blk.Initial != nil {
		t.Error("join-free block should have nil initial join tree")
	}
}

func TestAnalyzeGroupByBoundary(t *testing.T) {
	b := NewBuilder("agg")
	o := b.Source("Orders")
	p := b.Source("Product")
	c := b.Source("Customer")
	j1 := b.Join(o, p, Attr{"Orders", "pid"}, Attr{"Product", "pid"})
	g := b.GroupBy(j1, Attr{"Orders", "cid"})
	j2 := b.Join(g, c, Attr{"Orders", "cid"}, Attr{"Customer", "cid"})
	b.Sink(j2, "dw")
	an, err := Analyze(b.Graph(), retailCatalog())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(an.Blocks) != 2 {
		t.Fatalf("got %d blocks, want 2 (group-by is a boundary)", len(an.Blocks))
	}
	if got := an.Graph.Node(an.Blocks[0].Terminal).Kind; got != KindGroupBy {
		t.Errorf("block 0 terminal = %v, want groupby", got)
	}
}

func TestAnalyzeMaterializeBoundary(t *testing.T) {
	b := NewBuilder("mat")
	o := b.Source("Orders")
	p := b.Source("Product")
	c := b.Source("Customer")
	j1 := b.Join(o, p, Attr{"Orders", "pid"}, Attr{"Product", "pid"})
	m := b.Materialize(j1, "staging")
	j2 := b.Join(m, c, Attr{"Orders", "cid"}, Attr{"Customer", "cid"})
	b.Sink(j2, "dw")
	an, err := Analyze(b.Graph(), retailCatalog())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(an.Blocks) != 2 {
		t.Fatalf("got %d blocks, want 2 (materialize is a boundary)", len(an.Blocks))
	}
}

func TestAnalyzePushdown(t *testing.T) {
	// A selection written above the join must be pushed down to the input
	// owning its attribute so join reordering remains free.
	b := NewBuilder("pushdown")
	o := b.Source("Orders")
	p := b.Source("Product")
	j := b.Join(o, p, Attr{"Orders", "pid"}, Attr{"Product", "pid"})
	f := b.Select(j, Predicate{Attr: Attr{"Product", "price"}, Op: CmpLt, Const: 100})
	b.Sink(f, "dw")
	an, err := Analyze(b.Graph(), retailCatalog())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(an.Blocks) != 1 {
		t.Fatalf("got %d blocks, want 1", len(an.Blocks))
	}
	blk := an.Blocks[0]
	var prodOps int
	for _, in := range blk.Inputs {
		if in.SourceRel == "Product" {
			prodOps = len(in.Ops)
		}
	}
	if prodOps != 1 {
		t.Errorf("select should be pushed to Product input; ops = %d, want 1", prodOps)
	}
	if len(blk.TopOps) != 0 {
		t.Errorf("no top ops expected, got %d", len(blk.TopOps))
	}
}

func TestAnalyzeFloatingTransformNotBoundary(t *testing.T) {
	// A transform above a join whose output is NOT a downstream join
	// attribute does not split the block.
	b := NewBuilder("float")
	o := b.Source("Orders")
	p := b.Source("Product")
	c := b.Source("Customer")
	j1 := b.Join(o, p, Attr{"Orders", "pid"}, Attr{"Product", "pid"})
	x := b.Transform(j1, "concat", Attr{"U", "label"}, Attr{"Orders", "oid"}, Attr{"Product", "price"})
	j2 := b.Join(x, c, Attr{"Orders", "cid"}, Attr{"Customer", "cid"})
	b.Sink(j2, "dw")
	an, err := Analyze(b.Graph(), retailCatalog())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(an.Blocks) != 1 {
		t.Fatalf("got %d blocks, want 1 (floating transform is no boundary)", len(an.Blocks))
	}
	blk := an.Blocks[0]
	if len(blk.Inputs) != 3 || len(blk.Joins) != 2 {
		t.Fatalf("block: got %d inputs / %d joins, want 3 / 2", len(blk.Inputs), len(blk.Joins))
	}
	if len(blk.TopOps) != 1 {
		t.Fatalf("floating transform should be a top op; got %d top ops", len(blk.TopOps))
	}
}

func TestJoinTreeInputs(t *testing.T) {
	an, err := Analyze(retailFlow(), retailCatalog())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	tree := an.Blocks[0].Initial
	got := tree.Inputs()
	if len(got) != 3 {
		t.Fatalf("tree inputs = %v, want all three", got)
	}
	for i, idx := range got {
		if idx != i {
			t.Errorf("tree inputs = %v, want [0 1 2]", got)
			break
		}
	}
}

func TestBlockInputIndexByAttr(t *testing.T) {
	an, err := Analyze(retailFlow(), retailCatalog())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	b := an.Blocks[0]
	idx := b.InputIndexByAttr(Attr{"Customer", "region"})
	if idx < 0 || b.Inputs[idx].SourceRel != "Customer" {
		t.Fatalf("InputIndexByAttr(Customer.region) = %d", idx)
	}
	if got := b.InputIndexByAttr(Attr{"Nope", "x"}); got != -1 {
		t.Fatalf("InputIndexByAttr(unknown) = %d, want -1", got)
	}
}
