package workflow

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the workflow as a Graphviz digraph. When an analysis is
// supplied, nodes are clustered by optimizable block so the §3.2.1
// boundaries are visible; pass nil to render the bare DAG.
func (g *Graph) DOT(an *Analysis) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.Name)
	sb.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=10];\n")

	blockOf := map[NodeID]int{}
	if an != nil {
		for _, n := range g.Nodes {
			if b := an.BlockOf(n.ID); b != nil {
				blockOf[n.ID] = b.Index
			} else {
				blockOf[n.ID] = -1
			}
		}
		// Emit one cluster per block, nodes sorted for determinism.
		byBlock := map[int][]*Node{}
		for _, n := range g.Nodes {
			byBlock[blockOf[n.ID]] = append(byBlock[blockOf[n.ID]], n)
		}
		blocks := make([]int, 0, len(byBlock))
		for b := range byBlock {
			blocks = append(blocks, b)
		}
		sort.Ints(blocks)
		for _, b := range blocks {
			nodes := byBlock[b]
			sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
			if b >= 0 {
				fmt.Fprintf(&sb, "  subgraph cluster_block%d {\n    label=\"block %d\";\n    style=dashed;\n", b, b)
			}
			for _, n := range nodes {
				fmt.Fprintf(&sb, "    %q [label=%q];\n", n.ID, nodeLabel(n))
			}
			if b >= 0 {
				sb.WriteString("  }\n")
			}
		}
	} else {
		nodes := append([]*Node(nil), g.Nodes...)
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
		for _, n := range nodes {
			fmt.Fprintf(&sb, "  %q [label=%q];\n", n.ID, nodeLabel(n))
		}
	}
	// Edges, deterministically ordered.
	type edge struct{ from, to NodeID }
	var edges []edge
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			edges = append(edges, edge{in, n.ID})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		fmt.Fprintf(&sb, "  %q -> %q;\n", e.from, e.to)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// nodeLabel renders a short human-readable operator label.
func nodeLabel(n *Node) string {
	switch n.Kind {
	case KindSource:
		return "source\n" + n.Rel
	case KindSelect:
		return "σ " + n.Pred.String()
	case KindProject:
		return fmt.Sprintf("π %d cols", len(n.Cols))
	case KindJoin:
		label := fmt.Sprintf("⋈ %s=%s", n.Join.Left, n.Join.Right)
		if n.Join.RejectLink {
			label += "\n[reject link]"
		}
		if n.Join.ForeignKey {
			label += "\n[FK lookup]"
		}
		return label
	case KindGroupBy:
		return "γ " + AttrsString(n.Cols)
	case KindTransform:
		return fmt.Sprintf("UDF %s → %s", n.Transform.Fn, n.Transform.Out)
	case KindAggregateUDF:
		return fmt.Sprintf("aggUDF %s → %s", n.Transform.Fn, n.Transform.Out)
	case KindMaterialize:
		return "materialize\n" + n.Rel
	case KindSink:
		return "sink\n" + n.Rel
	default:
		return n.Kind.String()
	}
}
