package workflow

import (
	"fmt"
	"sort"
)

// Column describes one column of a base relation, including the metadata
// the cost model needs: the domain size (number of possible values) used
// for histogram memory estimates, and the observed number of distinct
// values when known.
type Column struct {
	Name string `json:"name"`
	// Domain is the size of the value domain |a| over all relations; it
	// bounds histogram memory (Section 5.4 of the paper).
	Domain int64 `json:"domain"`
	// Distinct is the number of distinct values |a_T| actually present in
	// the relation, if known (0 means unknown).
	Distinct int64 `json:"distinct,omitempty"`
}

// Relation describes a base relation (source table or flat file).
type Relation struct {
	Name string `json:"name"`
	// Card is the relation cardinality |T| if known (0 means unknown).
	Card int64 `json:"card,omitempty"`
	// Columns lists the relation's columns.
	Columns []Column `json:"columns"`
	// HasSourceStats marks relations that live in a relational source
	// system whose own statistics are available for free (Section 6.2).
	HasSourceStats bool `json:"hasSourceStats,omitempty"`
}

// Column returns the named column, or nil.
func (r *Relation) Column(name string) *Column {
	for i := range r.Columns {
		if r.Columns[i].Name == name {
			return &r.Columns[i]
		}
	}
	return nil
}

// FD records a functional dependency within one relation: the determinant
// attribute set functionally determines the dependent attribute. FDs let
// the framework shrink multi-attribute histograms (Section 6 of the paper).
type FD struct {
	Rel        string   `json:"rel"`
	Determines []string `json:"determines"`
	Dependent  string   `json:"dependent"`
}

// Catalog is the metadata the analyzer and the cost model consult:
// relations with domain sizes, plus functional dependencies.
type Catalog struct {
	Relations []*Relation `json:"relations"`
	FDs       []FD        `json:"fds,omitempty"`
}

// Relation returns the named relation, or nil.
func (c *Catalog) Relation(name string) *Relation {
	for _, r := range c.Relations {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Domain returns the domain size of attribute a, or an error if the
// attribute is unknown. Attributes derived by transforms are registered by
// AddDerived.
func (c *Catalog) Domain(a Attr) (int64, error) {
	rel := c.Relation(a.Rel)
	if rel == nil {
		return 0, fmt.Errorf("catalog: unknown relation %q", a.Rel)
	}
	col := rel.Column(a.Col)
	if col == nil {
		return 0, fmt.Errorf("catalog: unknown column %s", a)
	}
	if col.Domain <= 0 {
		return 0, fmt.Errorf("catalog: column %s has no domain size", a)
	}
	return col.Domain, nil
}

// AddDerived registers a derived attribute (the output of a transform) so
// the cost model can size histograms over it. If the relation does not
// exist yet a synthetic relation entry is created.
func (c *Catalog) AddDerived(a Attr, domain int64) {
	rel := c.Relation(a.Rel)
	if rel == nil {
		rel = &Relation{Name: a.Rel}
		c.Relations = append(c.Relations, rel)
	}
	if col := rel.Column(a.Col); col != nil {
		col.Domain = domain
		return
	}
	rel.Columns = append(rel.Columns, Column{Name: a.Col, Domain: domain})
}

// Clone returns a deep copy of the catalog; analyses that register derived
// attributes use a clone so the caller's catalog is untouched.
func (c *Catalog) Clone() *Catalog {
	out := &Catalog{FDs: append([]FD(nil), c.FDs...)}
	for _, r := range c.Relations {
		rc := &Relation{Name: r.Name, Card: r.Card, HasSourceStats: r.HasSourceStats}
		rc.Columns = append(rc.Columns, r.Columns...)
		out.Relations = append(out.Relations, rc)
	}
	return out
}

// FDsFor returns the functional dependencies declared on the given
// relation, deterministically ordered.
func (c *Catalog) FDsFor(rel string) []FD {
	var out []FD
	for _, fd := range c.FDs {
		if fd.Rel == rel {
			out = append(out, fd)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dependent < out[j].Dependent })
	return out
}

// Determined reports whether, per the declared FDs, the attribute dep is
// functionally determined by the attribute set dets (all within one
// relation). Only single-step FDs are consulted; transitive closure is the
// caller's concern and is handled by css.ReduceByFD.
func (c *Catalog) Determined(dets []Attr, dep Attr) bool {
	for _, fd := range c.FDs {
		if fd.Rel != dep.Rel || fd.Dependent != dep.Col {
			continue
		}
		all := true
		for _, d := range fd.Determines {
			if !attrIn(dets, Attr{Rel: fd.Rel, Col: d}) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
