// Package workflow models ETL workflows as directed acyclic graphs of
// operators, in the style of the logical ETL model of Halasipuram,
// Deshpande and Padmanabhan (EDBT 2014).
//
// A workflow graph is built from Node values wired by input edges. Source
// nodes read base relations, intermediate nodes transform and combine
// tuples, and sink nodes materialize target record-sets. The package also
// implements the analysis of Section 3.2.1 of the paper: splitting a
// workflow into optimizable blocks across whose boundaries operators may
// not be reordered.
package workflow

import (
	"fmt"
	"sort"
	"strings"
)

// NodeKind enumerates the operator types supported in a workflow graph.
type NodeKind int

// Supported operator kinds.
const (
	// KindSource reads a base relation (a table or a flat file).
	KindSource NodeKind = iota
	// KindSelect filters tuples by a predicate on one attribute.
	KindSelect
	// KindProject keeps a subset of the input columns.
	KindProject
	// KindJoin equi-joins its two inputs on a pair of attributes.
	KindJoin
	// KindGroupBy groups tuples on a set of attributes, producing one
	// output tuple per distinct key. Group-by is blocking and therefore a
	// block boundary.
	KindGroupBy
	// KindTransform applies a (possibly user-defined) function to one
	// attribute, producing a derived attribute. Transforms preserve
	// cardinality.
	KindTransform
	// KindAggregateUDF is a custom operator that aggregates its input to a
	// smaller number of output tuples. Its semantics are opaque to the
	// optimizer, so it is treated conservatively as a block boundary.
	KindAggregateUDF
	// KindMaterialize explicitly materializes an intermediate result (for
	// diagnostics or reuse in another flow) and is a block boundary.
	KindMaterialize
	// KindSink writes the target record-set.
	KindSink
)

// String returns the lower-case operator name.
func (k NodeKind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindSelect:
		return "select"
	case KindProject:
		return "project"
	case KindJoin:
		return "join"
	case KindGroupBy:
		return "groupby"
	case KindTransform:
		return "transform"
	case KindAggregateUDF:
		return "aggudf"
	case KindMaterialize:
		return "materialize"
	case KindSink:
		return "sink"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// NodeID identifies a node within one workflow graph.
type NodeID string

// Attr names an attribute (column). Attributes are identified by the base
// relation (or derivation) that introduced them plus the column name, so
// that the same logical column can be tracked through joins and projections.
type Attr struct {
	// Rel is the name of the relation that introduced the attribute. For
	// attributes derived by a transform node, Rel is the transform's
	// output relation name.
	Rel string
	// Col is the column name within Rel.
	Col string
}

// String renders the attribute as "Rel.Col".
func (a Attr) String() string { return a.Rel + "." + a.Col }

// Less orders attributes lexicographically; it is used to canonicalize
// attribute sets.
func (a Attr) Less(b Attr) bool {
	if a.Rel != b.Rel {
		return a.Rel < b.Rel
	}
	return a.Col < b.Col
}

// SortAttrs sorts a slice of attributes into canonical order in place and
// returns it.
func SortAttrs(as []Attr) []Attr {
	sort.Slice(as, func(i, j int) bool { return as[i].Less(as[j]) })
	return as
}

// AttrsString renders a canonical comma-separated form of an attribute set.
func AttrsString(as []Attr) string {
	cp := append([]Attr(nil), as...)
	SortAttrs(cp)
	parts := make([]string, len(cp))
	for i, a := range cp {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}

// CmpOp is a comparison operator used in selection predicates.
type CmpOp int

// Supported predicate comparison operators.
const (
	CmpEq CmpOp = iota // attribute = constant
	CmpNe              // attribute ≠ constant
	CmpLt              // attribute < constant
	CmpLe              // attribute ≤ constant
	CmpGt              // attribute > constant
	CmpGe              // attribute ≥ constant
)

// String returns the SQL-ish spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Predicate is a single-attribute comparison against a constant, the
// selection form covered by rules S1/S2 of the paper.
type Predicate struct {
	Attr  Attr  `json:"attr"`
	Op    CmpOp `json:"op"`
	Const int64 `json:"const"`
}

// String renders the predicate as "Rel.Col op const".
func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %d", p.Attr, p.Op, p.Const)
}

// Matches reports whether value v satisfies the predicate.
func (p Predicate) Matches(v int64) bool {
	switch p.Op {
	case CmpEq:
		return v == p.Const
	case CmpNe:
		return v != p.Const
	case CmpLt:
		return v < p.Const
	case CmpLe:
		return v <= p.Const
	case CmpGt:
		return v > p.Const
	case CmpGe:
		return v >= p.Const
	default:
		return false
	}
}

// JoinSpec describes an equi-join between the two inputs of a join node.
type JoinSpec struct {
	// Left and Right are the join attributes from the first and second
	// input respectively.
	Left  Attr `json:"left"`
	Right Attr `json:"right"`
	// RejectLink, when true, materializes the tuples of the first input
	// that found no join partner into a diagnostic record-set (a "reject
	// link"). A materialized reject link pins the join in place and forms
	// a block boundary.
	RejectLink bool `json:"rejectLink,omitempty"`
	// ForeignKey records designer metadata that every left tuple matches
	// exactly one right tuple (a dimension look-up). Optimizers may use it
	// to prune the plan space.
	ForeignKey bool `json:"foreignKey,omitempty"`
}

// TransformSpec describes a transform (UDF) node that computes a derived
// attribute from one or more input attributes.
type TransformSpec struct {
	// Ins are the attributes the function reads. When they span more than
	// one base relation the transform is pinned above the join of those
	// relations (Section 3.2.1 of the paper).
	Ins []Attr `json:"ins"`
	// Out is the derived attribute introduced by the transform.
	Out Attr `json:"out"`
	// Fn names the transformation function; the engine resolves it at
	// execution time. The optimizer treats it as a black box.
	Fn string `json:"fn"`
}

// Node is one operator in a workflow graph.
type Node struct {
	ID   NodeID   `json:"id"`
	Kind NodeKind `json:"kind"`
	// Inputs lists the IDs of the nodes feeding this node, in order. Join
	// nodes take exactly two inputs; sources take none; all other kinds
	// take one.
	Inputs []NodeID `json:"inputs,omitempty"`

	// Rel is the base relation name (sources) or the target record-set
	// name (sinks and materialize nodes).
	Rel string `json:"rel,omitempty"`
	// Pred is the selection predicate (select nodes only).
	Pred *Predicate `json:"pred,omitempty"`
	// Cols are the retained columns (project nodes) or grouping keys
	// (group-by nodes).
	Cols []Attr `json:"cols,omitempty"`
	// Join holds join configuration (join nodes only).
	Join *JoinSpec `json:"join,omitempty"`
	// Transform holds transform configuration (transform and aggregate-UDF
	// nodes).
	Transform *TransformSpec `json:"transform,omitempty"`
}

// Graph is an ETL workflow: a DAG of operator nodes.
type Graph struct {
	// Name labels the workflow (used in reports and serialized form).
	Name string `json:"name"`
	// Nodes holds the operators. Order is not significant; the DAG
	// structure is given by Node.Inputs.
	Nodes []*Node `json:"nodes"`
}

// Node returns the node with the given ID, or nil if absent.
func (g *Graph) Node(id NodeID) *Node {
	for _, n := range g.Nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// Outputs returns the IDs of the nodes that consume node id, in a
// deterministic order.
func (g *Graph) Outputs(id NodeID) []NodeID {
	var out []NodeID
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if in == id {
				out = append(out, n.ID)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sources returns all source nodes in topological (insertion) order.
func (g *Graph) Sources() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind == KindSource {
			out = append(out, n)
		}
	}
	return out
}

// Sinks returns all sink nodes.
func (g *Graph) Sinks() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind == KindSink {
			out = append(out, n)
		}
	}
	return out
}

// Validate checks structural well-formedness: unique node IDs, input arity
// per kind, existing input references, acyclicity, and that every non-sink
// node is consumed. It returns the first problem found.
func (g *Graph) Validate() error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("workflow %q: no nodes", g.Name)
	}
	byID := make(map[NodeID]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.ID == "" {
			return fmt.Errorf("workflow %q: node with empty ID", g.Name)
		}
		if _, dup := byID[n.ID]; dup {
			return fmt.Errorf("workflow %q: duplicate node ID %q", g.Name, n.ID)
		}
		byID[n.ID] = n
	}
	for _, n := range g.Nodes {
		if err := validateArity(n); err != nil {
			return fmt.Errorf("workflow %q: %w", g.Name, err)
		}
		for _, in := range n.Inputs {
			if _, ok := byID[in]; !ok {
				return fmt.Errorf("workflow %q: node %q references unknown input %q", g.Name, n.ID, in)
			}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return fmt.Errorf("workflow %q: %w", g.Name, err)
	}
	consumed := make(map[NodeID]bool)
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			consumed[in] = true
		}
	}
	for _, n := range g.Nodes {
		if n.Kind != KindSink && !consumed[n.ID] {
			return fmt.Errorf("workflow %q: non-sink node %q has no consumer", g.Name, n.ID)
		}
	}
	// Each base relation may enter the flow once: attributes are keyed by
	// their originating relation, so a self-join would make ownership
	// ambiguous throughout the analysis. Stage self-joins by materializing
	// a copy under a different name.
	srcSeen := make(map[string]NodeID)
	for _, n := range g.Nodes {
		if n.Kind != KindSource {
			continue
		}
		if prev, dup := srcSeen[n.Rel]; dup {
			return fmt.Errorf("workflow %q: relation %q read by both %q and %q; self-joins are not supported — stage a copy under another name",
				g.Name, n.Rel, prev, n.ID)
		}
		srcSeen[n.Rel] = n.ID
	}
	return nil
}

func validateArity(n *Node) error {
	want := 1
	switch n.Kind {
	case KindSource:
		want = 0
	case KindJoin:
		want = 2
	}
	if len(n.Inputs) != want {
		return fmt.Errorf("node %q (%s): want %d inputs, have %d", n.ID, n.Kind, want, len(n.Inputs))
	}
	switch n.Kind {
	case KindSource:
		if n.Rel == "" {
			return fmt.Errorf("source node %q: missing relation name", n.ID)
		}
	case KindSelect:
		if n.Pred == nil {
			return fmt.Errorf("select node %q: missing predicate", n.ID)
		}
	case KindProject:
		if len(n.Cols) == 0 {
			return fmt.Errorf("project node %q: no columns", n.ID)
		}
	case KindJoin:
		if n.Join == nil {
			return fmt.Errorf("join node %q: missing join spec", n.ID)
		}
	case KindGroupBy:
		if len(n.Cols) == 0 {
			return fmt.Errorf("group-by node %q: no grouping keys", n.ID)
		}
	case KindTransform, KindAggregateUDF:
		if n.Transform == nil {
			return fmt.Errorf("%s node %q: missing transform spec", n.Kind, n.ID)
		}
		if len(n.Transform.Ins) == 0 {
			return fmt.Errorf("%s node %q: transform has no input attributes", n.Kind, n.ID)
		}
	case KindSink, KindMaterialize:
		if n.Rel == "" {
			return fmt.Errorf("%s node %q: missing target name", n.Kind, n.ID)
		}
	}
	return nil
}

// TopoOrder returns the nodes in a topological order (inputs before
// consumers) or an error if the graph has a cycle.
func (g *Graph) TopoOrder() ([]*Node, error) {
	indeg := make(map[NodeID]int, len(g.Nodes))
	byID := make(map[NodeID]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		byID[n.ID] = n
		indeg[n.ID] += 0
		for range n.Inputs {
			indeg[n.ID]++
		}
	}
	var queue []NodeID
	for _, n := range g.Nodes {
		if indeg[n.ID] == 0 {
			queue = append(queue, n.ID)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	var order []*Node
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, byID[id])
		next := g.Outputs(id)
		for _, o := range next {
			done := true
			for _, in := range byID[o].Inputs {
				seen := false
				for _, d := range order {
					if d.ID == in {
						seen = true
						break
					}
				}
				if !seen {
					done = false
					break
				}
			}
			already := false
			for _, q := range queue {
				if q == o {
					already = true
					break
				}
			}
			for _, d := range order {
				if d.ID == o {
					already = true
					break
				}
			}
			if done && !already {
				queue = append(queue, o)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("cycle detected: ordered %d of %d nodes", len(order), len(g.Nodes))
	}
	return order, nil
}

// Schema computes the output attribute set of every node by propagating
// source schemas (from the catalog) through the operators. Transform nodes
// add their derived attribute; projects and group-bys narrow the set; joins
// union the two sides.
func (g *Graph) Schema(cat *Catalog) (map[NodeID][]Attr, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	out := make(map[NodeID][]Attr, len(order))
	for _, n := range order {
		switch n.Kind {
		case KindSource:
			rel := cat.Relation(n.Rel)
			if rel == nil {
				return nil, fmt.Errorf("node %q: relation %q not in catalog", n.ID, n.Rel)
			}
			attrs := make([]Attr, 0, len(rel.Columns))
			for _, c := range rel.Columns {
				attrs = append(attrs, Attr{Rel: rel.Name, Col: c.Name})
			}
			out[n.ID] = SortAttrs(attrs)
		case KindJoin:
			left, right := out[n.Inputs[0]], out[n.Inputs[1]]
			if !attrIn(left, n.Join.Left) {
				return nil, fmt.Errorf("join %q: left attr %s not in left input schema", n.ID, n.Join.Left)
			}
			if !attrIn(right, n.Join.Right) {
				return nil, fmt.Errorf("join %q: right attr %s not in right input schema", n.ID, n.Join.Right)
			}
			merged := append(append([]Attr(nil), left...), right...)
			out[n.ID] = SortAttrs(dedupAttrs(merged))
		case KindSelect:
			in := out[n.Inputs[0]]
			if !attrIn(in, n.Pred.Attr) {
				return nil, fmt.Errorf("select %q: attr %s not in input schema", n.ID, n.Pred.Attr)
			}
			out[n.ID] = in
		case KindProject, KindGroupBy:
			in := out[n.Inputs[0]]
			for _, c := range n.Cols {
				if !attrIn(in, c) {
					return nil, fmt.Errorf("%s %q: attr %s not in input schema", n.Kind, n.ID, c)
				}
			}
			out[n.ID] = SortAttrs(append([]Attr(nil), n.Cols...))
		case KindTransform, KindAggregateUDF:
			in := out[n.Inputs[0]]
			for _, a := range n.Transform.Ins {
				if !attrIn(in, a) {
					return nil, fmt.Errorf("%s %q: attr %s not in input schema", n.Kind, n.ID, a)
				}
			}
			out[n.ID] = SortAttrs(dedupAttrs(append(append([]Attr(nil), in...), n.Transform.Out)))
		case KindSink, KindMaterialize:
			out[n.ID] = out[n.Inputs[0]]
		default:
			return nil, fmt.Errorf("node %q: unknown kind %v", n.ID, n.Kind)
		}
	}
	return out, nil
}

func attrIn(as []Attr, a Attr) bool {
	for _, x := range as {
		if x == a {
			return true
		}
	}
	return false
}

func dedupAttrs(as []Attr) []Attr {
	seen := make(map[Attr]bool, len(as))
	out := as[:0]
	for _, a := range as {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}
