package workflow

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Document bundles a workflow with its catalog for serialization; it is the
// interchange format analogous to the DataStage XML exports the paper's
// module consumed.
type Document struct {
	Workflow *Graph   `json:"workflow"`
	Catalog  *Catalog `json:"catalog"`
}

// Encode writes the document as indented JSON.
func (d *Document) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("encode workflow document: %w", err)
	}
	return nil
}

// Marshal returns the document as indented JSON bytes.
func (d *Document) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode reads a document from JSON and validates the workflow.
func Decode(r io.Reader) (*Document, error) {
	var d Document
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("decode workflow document: %w", err)
	}
	if d.Workflow == nil {
		return nil, fmt.Errorf("decode workflow document: missing workflow")
	}
	if d.Catalog == nil {
		return nil, fmt.Errorf("decode workflow document: missing catalog")
	}
	if err := d.Workflow.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Unmarshal parses a document from JSON bytes.
func Unmarshal(data []byte) (*Document, error) {
	return Decode(bytes.NewReader(data))
}

// MarshalJSON encodes the node kind as its operator name.
func (k NodeKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes an operator name into a node kind.
func (k *NodeKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for cand := KindSource; cand <= KindSink; cand++ {
		if cand.String() == s {
			*k = cand
			return nil
		}
	}
	return fmt.Errorf("unknown node kind %q", s)
}

// MarshalJSON encodes the comparison operator as its SQL spelling.
func (op CmpOp) MarshalJSON() ([]byte, error) { return json.Marshal(op.String()) }

// UnmarshalJSON decodes a SQL comparison spelling.
func (op *CmpOp) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for cand := CmpEq; cand <= CmpGe; cand++ {
		if cand.String() == s {
			*op = cand
			return nil
		}
	}
	return fmt.Errorf("unknown comparison operator %q", s)
}
