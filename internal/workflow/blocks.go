package workflow

import (
	"fmt"
	"sort"
)

// BlockInput is one leaf of a block's join graph: a base relation or the
// output of an upstream block, together with the unary operators (selects,
// projects, transforms) pushed down onto it. The pushed-down chain is fixed
// relative to the join reordering: the optimizer permutes joins over the
// *results* of these chains.
type BlockInput struct {
	// Name is the logical relation name used in sub-expression labels. For
	// base relations it is the relation name; for upstream block outputs
	// it is "block<k>".
	Name string
	// SourceRel is the base relation name, or "" for block outputs.
	SourceRel string
	// FromBlock is the index of the upstream block feeding this input, or
	// -1 for base relations.
	FromBlock int
	// EntryNode is the graph node whose output enters this block (the
	// source node or the upstream block's terminal node).
	EntryNode NodeID
	// Ops are the pushed-down unary operators applied to this input before
	// any join, in execution order.
	Ops []*Node
	// Attrs is the schema available at the end of Ops.
	Attrs []Attr
}

// BlockJoin is one equi-join edge in a block's join graph.
type BlockJoin struct {
	// LeftInput and RightInput index Block.Inputs. LeftInput owns
	// LeftAttr; RightInput owns RightAttr.
	LeftInput, RightInput int
	LeftAttr, RightAttr   Attr
	// ForeignKey mirrors JoinSpec.ForeignKey.
	ForeignKey bool
	// Node is the join node in the original graph.
	Node NodeID
}

// JoinTree is a binary join tree over block inputs; it records the initial
// plan (the order the designer wrote) and is also the shape produced by the
// optimizer for alternative plans.
type JoinTree struct {
	// Leaf is the Block.Inputs index for leaf nodes, or -1 for internal
	// nodes.
	Leaf int
	// Join indexes Block.Joins for internal nodes (the predicate applied
	// at this node), or -1 for leaves.
	Join        int
	Left, Right *JoinTree
}

// IsLeaf reports whether t is a leaf of the join tree.
func (t *JoinTree) IsLeaf() bool { return t.Leaf >= 0 }

// Inputs returns the sorted set of input indexes under t.
func (t *JoinTree) Inputs() []int {
	var out []int
	var walk func(*JoinTree)
	walk = func(n *JoinTree) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			out = append(out, n.Leaf)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t)
	sort.Ints(out)
	return out
}

// String renders the tree with input names from the block, e.g.
// "((Orders ⋈ Product) ⋈ Customer)".
func (t *JoinTree) String() string { return t.render(nil) }

// Render renders the tree using the block's input names.
func (t *JoinTree) Render(b *Block) string { return t.render(b) }

func (t *JoinTree) render(b *Block) string {
	if t == nil {
		return "∅"
	}
	if t.IsLeaf() {
		if b != nil && t.Leaf < len(b.Inputs) {
			return b.Inputs[t.Leaf].Name
		}
		return fmt.Sprintf("R%d", t.Leaf)
	}
	return "(" + t.Left.render(b) + " ⋈ " + t.Right.render(b) + ")"
}

// Block is an optimizable unit of a workflow: a join graph over a set of
// inputs, plus pinned operators at the top that terminate the block. Joins
// inside a block may be freely reordered (subject to connectivity); nothing
// moves across block boundaries.
type Block struct {
	// Index is the block's position in Analysis.Blocks (topological).
	Index int
	// Inputs are the leaves of the join graph.
	Inputs []BlockInput
	// Joins are the equi-join edges among inputs.
	Joins []BlockJoin
	// Initial is the join tree as designed by the user (nil when the block
	// has a single input).
	Initial *JoinTree
	// TopOps are operators pinned above all joins, in execution order:
	// floating transforms, projects over join results, and the terminator
	// (group-by, aggregate UDF, materialize, pinned transform) when
	// present.
	TopOps []*Node
	// Terminal is the last graph node belonging to this block; its output
	// crosses the block boundary.
	Terminal NodeID
	// RejectPinned marks a block that consists of a single join with a
	// materialized reject link; such a block admits exactly one plan.
	RejectPinned bool
	// OutAttrs is the schema of the block's output.
	OutAttrs []Attr
}

// NumInputs returns the number of join-graph leaves.
func (b *Block) NumInputs() int { return len(b.Inputs) }

// InputIndexByAttr returns the index of the input whose schema owns a, or
// -1 when no input owns it.
func (b *Block) InputIndexByAttr(a Attr) int {
	for i := range b.Inputs {
		if attrIn(b.Inputs[i].Attrs, a) {
			return i
		}
	}
	return -1
}

// JoinBetween returns the index in Joins of an edge connecting an input in
// left with an input in right (both given as sets of input indexes), or -1.
func (b *Block) JoinBetween(left, right map[int]bool) int {
	for j, e := range b.Joins {
		if left[e.LeftInput] && right[e.RightInput] || left[e.RightInput] && right[e.LeftInput] {
			return j
		}
	}
	return -1
}

// Analysis is the result of decomposing a workflow into optimizable blocks.
type Analysis struct {
	Graph  *Graph
	Cat    *Catalog
	Blocks []*Block
	// Schema maps every node to its output attribute set.
	Schema map[NodeID][]Attr
}

// Block containing the given graph node, or nil.
func (an *Analysis) BlockOf(id NodeID) *Block {
	for _, b := range an.Blocks {
		if b.Terminal == id {
			return b
		}
		for _, j := range b.Joins {
			if j.Node == id {
				return b
			}
		}
		for _, in := range b.Inputs {
			for _, op := range in.Ops {
				if op.ID == id {
					return b
				}
			}
		}
		for _, op := range b.TopOps {
			if op.ID == id {
				return b
			}
		}
	}
	return nil
}

// Analyze validates the workflow, infers schemas, registers derived
// attributes in a cloned catalog, and splits the workflow into optimizable
// blocks per Section 3.2.1: boundaries at materialized intermediate results
// (materialize nodes and reject links), at transforms whose derived output
// is a downstream join attribute and whose inputs span a join, and at
// blocking aggregate operators (group-by, aggregate UDFs).
func Analyze(g *Graph, cat *Catalog) (*Analysis, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	cat = cat.Clone()
	registerDerived(g, cat)
	schema, err := g.Schema(cat)
	if err != nil {
		return nil, err
	}
	an := &Analysis{Graph: g, Cat: cat, Schema: schema}

	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	joinAttrs := collectJoinAttrs(g)

	// cut[id] is true when the output edge of node id is a block boundary:
	// downstream operators may not be reordered with anything at or below
	// id.
	cut := make(map[NodeID]bool)
	for _, n := range order {
		switch n.Kind {
		case KindGroupBy, KindAggregateUDF, KindMaterialize:
			cut[n.ID] = true
		case KindJoin:
			if n.Join.RejectLink {
				// The reject record-set pins the join: its output is a
				// boundary, and any joins feeding it must stay in their own
				// upstream block (they cannot absorb this join's other
				// side). Inputs without joins of their own (sources,
				// pushed-down unary chains) need no extra boundary.
				cut[n.ID] = true
				for _, in := range n.Inputs {
					if containsJoin(g, in, cut) {
						cut[in] = true
					}
				}
			}
		case KindTransform:
			if pinnedTransform(g, n, schema, joinAttrs) {
				cut[n.ID] = true
			}
		}
	}

	// A block terminates at each cut node and at each sink's input chain.
	// Build blocks bottom-up in topological order so upstream blocks get
	// smaller indexes.
	built := make(map[NodeID]int) // terminal node -> block index
	for _, n := range order {
		terminal := cut[n.ID] || n.Kind == KindSink
		if !terminal {
			continue
		}
		root := n.ID
		if n.Kind == KindSink {
			// The sink itself stores nothing to optimize; the block ends at
			// its input unless that input already terminates a block.
			in := n.Inputs[0]
			if _, done := built[in]; done || cut[in] {
				continue
			}
			root = in
		}
		if _, done := built[root]; done {
			continue
		}
		b, err := buildBlock(g, cat, schema, cut, built, root, an)
		if err != nil {
			return nil, err
		}
		b.Index = len(an.Blocks)
		an.Blocks = append(an.Blocks, b)
		built[root] = b.Index
	}
	return an, nil
}

// registerDerived adds every transform output attribute to the catalog so
// histogram sizing works; the domain defaults to the (largest) input
// attribute's domain, a conservative bound for value-mapping UDFs.
func registerDerived(g *Graph, cat *Catalog) {
	for _, n := range g.Nodes {
		if n.Kind != KindTransform && n.Kind != KindAggregateUDF {
			continue
		}
		var dom int64 = 1
		for _, in := range n.Transform.Ins {
			if d, err := cat.Domain(in); err == nil && d > dom {
				dom = d
			}
		}
		if _, err := cat.Domain(n.Transform.Out); err != nil {
			cat.AddDerived(n.Transform.Out, dom)
		}
	}
}

// collectJoinAttrs returns the set of attributes used as a join key
// anywhere in the workflow.
func collectJoinAttrs(g *Graph) map[Attr]bool {
	out := make(map[Attr]bool)
	for _, n := range g.Nodes {
		if n.Kind == KindJoin {
			out[n.Join.Left] = true
			out[n.Join.Right] = true
		}
	}
	return out
}

// pinnedTransform reports whether a transform node forms a block boundary:
// its output is used as a downstream join attribute and its input subtree
// joins more than one base relation (so those relations must be joined
// before the downstream join can run).
func pinnedTransform(g *Graph, n *Node, schema map[NodeID][]Attr, joinAttrs map[Attr]bool) bool {
	if !joinAttrs[n.Transform.Out] {
		return false
	}
	return baseRelCount(g, n.Inputs[0]) > 1
}

// containsJoin reports whether the region below node id (stopping at
// already-cut nodes and sources) contains a join operator.
func containsJoin(g *Graph, id NodeID, cut map[NodeID]bool) bool {
	n := g.Node(id)
	if n == nil || n.Kind == KindSource || cut[id] {
		return false
	}
	if n.Kind == KindJoin {
		return true
	}
	for _, in := range n.Inputs {
		if containsJoin(g, in, cut) {
			return true
		}
	}
	return false
}

// baseRelCount counts the distinct base relations feeding node id.
func baseRelCount(g *Graph, id NodeID) int {
	seen := make(map[string]bool)
	var walk func(NodeID)
	walk = func(cur NodeID) {
		n := g.Node(cur)
		if n == nil {
			return
		}
		if n.Kind == KindSource {
			seen[n.Rel] = true
			return
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(id)
	return len(seen)
}

// unit is the working state while folding a subtree into block structure.
type unit struct {
	inputs []BlockInput
	joins  []BlockJoin
	tree   *JoinTree
	top    []*Node
}

func (u *unit) single() bool { return len(u.inputs) == 1 && len(u.joins) == 0 }

// buildBlock folds the subtree rooted at root (stopping at cut edges and at
// sources) into a Block.
func buildBlock(g *Graph, cat *Catalog, schema map[NodeID][]Attr, cut map[NodeID]bool, built map[NodeID]int, root NodeID, an *Analysis) (*Block, error) {
	var fold func(id NodeID, isRoot bool) (*unit, error)
	fold = func(id NodeID, isRoot bool) (*unit, error) {
		n := g.Node(id)
		if n == nil {
			return nil, fmt.Errorf("block build: unknown node %q", id)
		}
		// A cut node that is not this block's root is an upstream block's
		// terminal: it enters as a block input.
		if !isRoot && cut[id] {
			bi, ok := built[id]
			if !ok {
				return nil, fmt.Errorf("block build: upstream block for %q not built", id)
			}
			name := fmt.Sprintf("block%d", bi)
			return &unit{
				inputs: []BlockInput{{
					Name:      name,
					FromBlock: bi,
					EntryNode: id,
					Attrs:     schema[id],
				}},
				tree: &JoinTree{Leaf: 0, Join: -1},
			}, nil
		}
		switch n.Kind {
		case KindSource:
			return &unit{
				inputs: []BlockInput{{
					Name:      n.Rel,
					SourceRel: n.Rel,
					FromBlock: -1,
					EntryNode: id,
					Attrs:     schema[id],
				}},
				tree: &JoinTree{Leaf: 0, Join: -1},
			}, nil
		case KindJoin:
			lu, err := fold(n.Inputs[0], false)
			if err != nil {
				return nil, err
			}
			ru, err := fold(n.Inputs[1], false)
			if err != nil {
				return nil, err
			}
			return mergeJoin(n, lu, ru)
		case KindSelect, KindProject, KindTransform:
			u, err := fold(n.Inputs[0], false)
			if err != nil {
				return nil, err
			}
			applyUnary(u, n)
			return u, nil
		case KindGroupBy, KindAggregateUDF, KindMaterialize:
			u, err := fold(n.Inputs[0], false)
			if err != nil {
				return nil, err
			}
			u.top = append(u.top, n)
			return u, nil
		default:
			return nil, fmt.Errorf("block build: unexpected node kind %v at %q", n.Kind, id)
		}
	}

	u, err := fold(root, true)
	if err != nil {
		return nil, err
	}
	b := &Block{
		Inputs:   u.inputs,
		Joins:    u.joins,
		TopOps:   u.top,
		Terminal: root,
		OutAttrs: schema[root],
	}
	if len(u.joins) > 0 {
		b.Initial = u.tree
	}
	if n := g.Node(root); n.Kind == KindJoin && n.Join.RejectLink {
		b.RejectPinned = true
	}
	return b, nil
}

// applyUnary attaches a unary operator to a unit: pushed down onto the
// owning input when possible, otherwise kept as a top operator.
func applyUnary(u *unit, n *Node) {
	if u.single() {
		u.inputs[0].Ops = append(u.inputs[0].Ops, n)
		updateInputSchema(&u.inputs[0], n)
		return
	}
	switch n.Kind {
	case KindSelect:
		// A selection over a join result commutes with the join; push it
		// to the input that owns the predicate attribute.
		for i := range u.inputs {
			if attrIn(u.inputs[i].Attrs, n.Pred.Attr) {
				u.inputs[i].Ops = append(u.inputs[i].Ops, n)
				return
			}
		}
		u.top = append(u.top, n)
	case KindTransform:
		// A non-pinned transform whose inputs live on one join-graph input
		// can be pushed down; otherwise it floats above the joins.
		for i := range u.inputs {
			all := true
			for _, a := range n.Transform.Ins {
				if !attrIn(u.inputs[i].Attrs, a) {
					all = false
					break
				}
			}
			if all {
				u.inputs[i].Ops = append(u.inputs[i].Ops, n)
				updateInputSchema(&u.inputs[i], n)
				return
			}
		}
		u.top = append(u.top, n)
	default: // projects over join results stay on top
		u.top = append(u.top, n)
	}
}

// updateInputSchema extends or narrows a block input's schema after a
// pushed-down operator.
func updateInputSchema(in *BlockInput, n *Node) {
	switch n.Kind {
	case KindTransform:
		if !attrIn(in.Attrs, n.Transform.Out) {
			in.Attrs = SortAttrs(append(append([]Attr(nil), in.Attrs...), n.Transform.Out))
		}
	case KindProject:
		in.Attrs = SortAttrs(append([]Attr(nil), n.Cols...))
	}
}

// mergeJoin combines the two input units of a join node, re-indexing the
// right unit's inputs and join edges.
func mergeJoin(n *Node, lu, ru *unit) (*unit, error) {
	off := len(lu.inputs)
	out := &unit{
		inputs: append(append([]BlockInput(nil), lu.inputs...), ru.inputs...),
		joins:  append([]BlockJoin(nil), lu.joins...),
		top:    append(append([]*Node(nil), lu.top...), ru.top...),
	}
	for _, j := range ru.joins {
		j.LeftInput += off
		j.RightInput += off
		out.joins = append(out.joins, j)
	}
	la, ra := n.Join.Left, n.Join.Right
	li := ownerIndex(out.inputs[:off], la)
	ri := ownerIndex(out.inputs[off:], ra)
	if li < 0 && ri < 0 {
		// The designer may have written the attributes swapped relative to
		// the dataflow sides; joins are symmetric, so normalize.
		la, ra = ra, la
		li = ownerIndex(out.inputs[:off], la)
		ri = ownerIndex(out.inputs[off:], ra)
	}
	if li < 0 || ri < 0 {
		return nil, fmt.Errorf("join %q: cannot locate owners of %s / %s", n.ID, n.Join.Left, n.Join.Right)
	}
	edge := BlockJoin{
		LeftInput:  li,
		RightInput: off + ri,
		LeftAttr:   la,
		RightAttr:  ra,
		ForeignKey: n.Join.ForeignKey,
		Node:       n.ID,
	}
	out.joins = append(out.joins, edge)
	rt := shiftTree(ru.tree, off, len(lu.joins))
	out.tree = &JoinTree{Leaf: -1, Join: len(out.joins) - 1, Left: lu.tree, Right: rt}
	return out, nil
}

func ownerIndex(ins []BlockInput, a Attr) int {
	for i := range ins {
		if attrIn(ins[i].Attrs, a) {
			return i
		}
	}
	return -1
}

// shiftTree re-indexes a join tree after its unit's inputs were appended at
// offset leafOff and its join edges at offset joinOff.
func shiftTree(t *JoinTree, leafOff, joinOff int) *JoinTree {
	if t == nil {
		return nil
	}
	if t.IsLeaf() {
		return &JoinTree{Leaf: t.Leaf + leafOff, Join: -1}
	}
	return &JoinTree{
		Leaf:  -1,
		Join:  t.Join + joinOff,
		Left:  shiftTree(t.Left, leafOff, joinOff),
		Right: shiftTree(t.Right, leafOff, joinOff),
	}
}
