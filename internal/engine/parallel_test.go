package engine

import (
	"fmt"
	"testing"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/wftest"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// equalResults compares every externally visible part of two engine
// results: sinks, materialized side tables, observed statistics and the
// work metric. Row order within tables is not part of the contract.
func equalResults(t *testing.T, label string, seq, par *Result) {
	t.Helper()
	for name, tbl := range seq.Sinks {
		if !equalTables(tbl, par.Sinks[name]) {
			t.Errorf("%s: sink %q differs", label, name)
		}
	}
	if len(seq.Materialized) != len(par.Materialized) {
		t.Errorf("%s: materialized sets differ: %d vs %d", label, len(seq.Materialized), len(par.Materialized))
	}
	for name, tbl := range seq.Materialized {
		if !equalTables(tbl, par.Materialized[name]) {
			t.Errorf("%s: materialized %q differs", label, name)
		}
	}
	if (seq.Observed == nil) != (par.Observed == nil) {
		t.Errorf("%s: one result has no observations", label)
	} else if seq.Observed != nil && !equalStores(t, seq.Observed, par.Observed) {
		t.Errorf("%s: observed statistics differ", label)
	}
	if seq.Rows != par.Rows {
		t.Errorf("%s: work metric differs: %d vs %d", label, seq.Rows, par.Rows)
	}
}

// TestParallelMatchesSequentialRetail is the cheap smoke check: the retail
// workflow at Workers=4 must match Workers=1 on both engines.
func TestParallelMatchesSequentialRetail(t *testing.T) {
	db, cat := tinyDB()
	an, err := workflow.Analyze(retailGraph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	observe := res.ObservableStats()

	seqBatch, err := New(an, db, nil).RunObserved(res, observe)
	if err != nil {
		t.Fatalf("sequential batch: %v", err)
	}
	parBatch := New(an, db, nil)
	parBatch.Workers = 4
	outB, err := parBatch.RunObserved(res, observe)
	if err != nil {
		t.Fatalf("parallel batch: %v", err)
	}
	equalResults(t, "batch", seqBatch, outB)

	seqStream, err := NewStream(an, db, nil).RunObserved(res, observe)
	if err != nil {
		t.Fatalf("sequential stream: %v", err)
	}
	parStream := NewStream(an, db, nil)
	parStream.Workers = 4
	outS, err := parStream.RunObserved(res, observe)
	if err != nil {
		t.Fatalf("parallel stream: %v", err)
	}
	equalResults(t, "stream", seqStream, outS)
}

// TestParallelMatchesSequentialFuzz is the harsh version of the check:
// random workflows (including multi-block ones with reject links and
// chains), observing everything observable, at several worker counts.
func TestParallelMatchesSequentialFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz campaign skipped in -short mode")
	}
	for seed := int64(300); seed < 312; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g, cat, db := wftest.Generate(seed, wftest.Options{MaxCard: 90})
			an, err := workflow.Analyze(g, cat)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			res, err := css.Generate(an, css.DefaultOptions())
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			observe := res.ObservableStats()

			seqBatch, err := New(an, db, nil).RunObserved(res, observe)
			if err != nil {
				t.Fatalf("sequential batch: %v", err)
			}
			seqStream, err := NewStream(an, db, nil).RunObserved(res, observe)
			if err != nil {
				t.Fatalf("sequential stream: %v", err)
			}
			for _, w := range []int{2, 4} {
				eb := New(an, db, nil)
				eb.Workers = w
				outB, err := eb.RunObserved(res, observe)
				if err != nil {
					t.Fatalf("batch workers=%d: %v", w, err)
				}
				equalResults(t, fmt.Sprintf("batch workers=%d", w), seqBatch, outB)

				es := NewStream(an, db, nil)
				es.Workers = w
				outS, err := es.RunObserved(res, observe)
				if err != nil {
					t.Fatalf("stream workers=%d: %v", w, err)
				}
				equalResults(t, fmt.Sprintf("stream workers=%d", w), seqStream, outS)
			}
		})
	}
}

// multiBlockGraph builds a workflow whose analysis yields a block DAG with
// genuine parallelism: two independent source branches, each closed by a
// GroupBy (a block boundary), joined in a final block.
func multiBlockGraph() *workflow.Graph {
	b := workflow.NewBuilder("diamond")
	o := b.Source("Orders")
	g1 := b.GroupBy(o, workflow.Attr{Rel: "Orders", Col: "cid"})
	c := b.Source("Customer")
	g2 := b.GroupBy(c, workflow.Attr{Rel: "Customer", Col: "cid"})
	j := b.Join(g1, g2, workflow.Attr{Rel: "Orders", Col: "cid"}, workflow.Attr{Rel: "Customer", Col: "cid"})
	b.Sink(j, "out")
	return b.Graph()
}

// TestBlockDAGParallel checks the inter-block scheduler on a workflow whose
// first two blocks are mutually independent.
func TestBlockDAGParallel(t *testing.T) {
	db, cat := tinyDB()
	an, err := workflow.Analyze(multiBlockGraph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(an.Blocks) < 3 {
		t.Fatalf("want a multi-block analysis, got %d blocks", len(an.Blocks))
	}
	plan, err := physical.Compile(an, db, physical.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	deps := blockDeps(plan)
	independent := 0
	for _, blk := range an.Blocks {
		if len(deps[blk.Index]) == 0 {
			independent++
		}
	}
	if independent < 2 {
		t.Fatalf("want >= 2 independent blocks, got %d", independent)
	}
	seq, err := New(an, db, nil).Run()
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	for _, mk := range []func() interface {
		Run() (*Result, error)
	}{
		func() interface {
			Run() (*Result, error)
		} {
			e := New(an, db, nil)
			e.Workers = 4
			return e
		},
		func() interface {
			Run() (*Result, error)
		} {
			e := NewStream(an, db, nil)
			e.Workers = 4
			return e
		},
	} {
		out, err := mk().Run()
		if err != nil {
			t.Fatalf("parallel: %v", err)
		}
		equalResults(t, "dag", seq, out)
	}
}

// TestParallelErrorDeterministic: when several blocks fail, the reported
// error must be the lowest-index block's, independent of completion order.
func TestParallelErrorDeterministic(t *testing.T) {
	db, cat := tinyDB()
	delete(db, "Orders")
	delete(db, "Customer")
	an, err := workflow.Analyze(multiBlockGraph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	var first string
	for trial := 0; trial < 8; trial++ {
		e := New(an, db, nil)
		e.Workers = 4
		_, err := e.Run()
		if err == nil {
			t.Fatal("want error for missing relations")
		}
		if trial == 0 {
			first = err.Error()
			continue
		}
		if err.Error() != first {
			t.Fatalf("error varies across runs: %q vs %q", first, err.Error())
		}
	}
}

func TestPartitionChunks(t *testing.T) {
	rows := make([]data.Row, 10)
	for i := range rows {
		rows[i] = data.Row{int64(i)}
	}
	parts := partitionChunks(rows, 3)
	var back []data.Row
	for _, p := range parts {
		back = append(back, p...)
	}
	if len(back) != len(rows) {
		t.Fatalf("chunks lost rows: %d vs %d", len(back), len(rows))
	}
	for i := range rows {
		if back[i][0] != rows[i][0] {
			t.Fatalf("chunk concatenation reordered rows at %d", i)
		}
	}
}

func TestPartitionByKeyLocality(t *testing.T) {
	rows := make([]data.Row, 100)
	for i := range rows {
		rows[i] = data.Row{int64(i % 7)}
	}
	parts := partitionByKey(rows, 0, 4)
	total := 0
	owner := make(map[int64]int)
	for w, p := range parts {
		total += len(p)
		for _, r := range p {
			if prev, ok := owner[r[0]]; ok && prev != w {
				t.Fatalf("key %d split across workers %d and %d", r[0], prev, w)
			}
			owner[r[0]] = w
		}
	}
	if total != len(rows) {
		t.Fatalf("partition lost rows: %d vs %d", total, len(rows))
	}
}
