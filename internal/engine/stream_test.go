package engine

import (
	"fmt"
	"sort"
	"testing"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/wftest"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// multiset renders a table as a sorted multiset of rows for
// order-insensitive comparison.
func multiset(t *data.Table) []string {
	out := make([]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		out = append(out, fmt.Sprint([]int64(r)))
	}
	sort.Strings(out)
	return out
}

func equalTables(a, b *data.Table) bool {
	if a == nil || b == nil {
		return a == b
	}
	ma, mb := multiset(a), multiset(b)
	if len(ma) != len(mb) {
		return false
	}
	for i := range ma {
		if ma[i] != mb[i] {
			return false
		}
	}
	return true
}

// equalStores compares two observation stores value by value.
func equalStores(t *testing.T, a, b *stats.Store) bool {
	t.Helper()
	if a.Len() != b.Len() {
		t.Logf("store sizes differ: %d vs %d", a.Len(), b.Len())
		return false
	}
	for _, v := range a.Values() {
		if v.Hist == nil {
			got, err := b.Scalar(v.Stat)
			if err != nil || got != v.Scalar {
				t.Logf("scalar %v: %d vs %d (%v)", v.Stat.Key(), v.Scalar, got, err)
				return false
			}
			continue
		}
		h, err := b.Hist(v.Stat)
		if err != nil || h.Buckets() != v.Hist.Buckets() || h.Total() != v.Hist.Total() {
			t.Logf("hist %v differs", v.Stat.Key())
			return false
		}
		same := true
		v.Hist.Each(func(vals []int64, f int64) {
			if h.Freq(vals...) != f {
				same = false
			}
		})
		if !same {
			t.Logf("hist %v bucket mismatch", v.Stat.Key())
			return false
		}
	}
	return true
}

func TestStreamMatchesBatchRetail(t *testing.T) {
	db, cat := tinyDB()
	an, err := workflow.Analyze(retailGraph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	batch, err := New(an, db, nil).Run()
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	streamed, err := NewStream(an, db, nil).Run()
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if !equalTables(batch.Sinks["dw"], streamed.Sinks["dw"]) {
		t.Fatal("sink contents differ between batch and streaming")
	}
}

func TestStreamMatchesBatchObservation(t *testing.T) {
	db, cat := tinyDB()
	an, err := workflow.Analyze(retailGraph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Observe a representative mix: cards, histograms, distinct, chain
	// points, reject singleton, reject aux join.
	blk := an.Blocks[0]
	var o, p, c int
	for i, in := range blk.Inputs {
		switch in.SourceRel {
		case "Orders":
			o = i
		case "Product":
			p = i
		case "Customer":
			c = i
		}
	}
	f := -1
	for j, e := range blk.Joins {
		if e.LeftInput == o && e.RightInput == p || e.LeftInput == p && e.RightInput == o {
			f = j
		}
	}
	sp := res.Space(0)
	pid := sp.ClassOf(workflow.Attr{Rel: "Orders", Col: "pid"})
	cid := sp.ClassOf(workflow.Attr{Rel: "Orders", Col: "cid"})
	observe := []stats.Stat{
		stats.NewCard(stats.BlockSE(0, sp.Full())),
		stats.NewCard(stats.BlockSE(0, expr.NewSet(o, p))),
		stats.NewHist(stats.BlockSE(0, expr.NewSet(o, p)), cid),
		stats.NewHist(stats.BlockSE(0, expr.NewSet(o)), pid, cid),
		stats.NewDistinct(stats.BlockSE(0, expr.NewSet(c)), cid),
		stats.NewCard(stats.ChainPoint(0, o, 0)),
		stats.NewCard(stats.BlockRejectSE(0, expr.NewSet(o), o, f)),
		stats.NewHist(stats.BlockRejectSE(0, expr.NewSet(o), o, f), cid),
		stats.NewCard(stats.BlockRejectSE(0, expr.NewSet(o, c), o, f)),
	}
	batch, err := New(an, db, nil).RunObserved(res, observe)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	streamed, err := NewStream(an, db, nil).RunObserved(res, observe)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if !equalStores(t, batch.Observed, streamed.Observed) {
		t.Fatal("observed statistics differ between batch and streaming")
	}
}

func TestStreamMatchesBatchRejectLinkAndOps(t *testing.T) {
	db, cat := tinyDB()
	b := workflow.NewBuilder("mixed")
	or := b.Source("Orders")
	fsel := b.Select(or, workflow.Predicate{Attr: workflow.Attr{Rel: "Orders", Col: "pid"}, Op: workflow.CmpLt, Const: 95})
	pr := b.Source("Product")
	j1 := b.RejectJoin(fsel, pr, workflow.Attr{Rel: "Orders", Col: "pid"}, workflow.Attr{Rel: "Product", Col: "pid"})
	g := b.GroupBy(j1, workflow.Attr{Rel: "Orders", Col: "cid"})
	cu := b.Source("Customer")
	j2 := b.Join(g, cu, workflow.Attr{Rel: "Orders", Col: "cid"}, workflow.Attr{Rel: "Customer", Col: "cid"})
	x := b.Transform(j2, "bucket10", workflow.Attr{Rel: "X", Col: "bk"}, workflow.Attr{Rel: "Customer", Col: "region"})
	b.Sink(x, "out")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	batch, err := New(an, db, nil).Run()
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	streamed, err := NewStream(an, db, nil).Run()
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if !equalTables(batch.Sinks["out"], streamed.Sinks["out"]) {
		t.Fatal("sink differs")
	}
	// The materialized reject links must match too.
	if len(batch.Materialized) != len(streamed.Materialized) {
		t.Fatalf("materialized sets differ: %d vs %d", len(batch.Materialized), len(streamed.Materialized))
	}
	for name, tbl := range batch.Materialized {
		if !equalTables(tbl, streamed.Materialized[name]) {
			t.Errorf("materialized %q differs", name)
		}
	}
}

func TestStreamMatchesBatchAlternativePlan(t *testing.T) {
	db, cat := tinyDB()
	an, err := workflow.Analyze(retailGraph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	blk := an.Blocks[0]
	var o, p, c, eOP, eOC int
	for i, in := range blk.Inputs {
		switch in.SourceRel {
		case "Orders":
			o = i
		case "Product":
			p = i
		case "Customer":
			c = i
		}
	}
	for j, e := range blk.Joins {
		if e.LeftAttr.Col == "pid" || e.RightAttr.Col == "pid" {
			eOP = j
		} else {
			eOC = j
		}
	}
	alt := &workflow.JoinTree{
		Leaf: -1, Join: eOP,
		Left: &workflow.JoinTree{
			Leaf: -1, Join: eOC,
			Left:  &workflow.JoinTree{Leaf: o, Join: -1},
			Right: &workflow.JoinTree{Leaf: c, Join: -1},
		},
		Right: &workflow.JoinTree{Leaf: p, Join: -1},
	}
	plans := map[int]*workflow.JoinTree{0: alt}
	batch, err := New(an, db, nil).RunPlans(plans, nil, nil)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	streamed, err := NewStream(an, db, nil).RunPlans(plans, nil, nil)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if batch.Sinks["dw"].Card() != streamed.Sinks["dw"].Card() {
		t.Fatalf("reordered plan: %d vs %d rows", batch.Sinks["dw"].Card(), streamed.Sinks["dw"].Card())
	}
}

func TestStreamMatchesBatchFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz campaign skipped in -short mode")
	}
	for seed := int64(300); seed < 312; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g, cat, db := wftest.Generate(seed, wftest.Options{MaxCard: 90})
			an, err := workflow.Analyze(g, cat)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			res, err := css.Generate(an, css.DefaultOptions())
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			// Observe everything observable: the harshest comparison.
			observe := res.ObservableStats()
			batch, err := New(an, db, nil).RunObserved(res, observe)
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
			streamed, err := NewStream(an, db, nil).RunObserved(res, observe)
			if err != nil {
				t.Fatalf("stream: %v", err)
			}
			for name, tbl := range batch.Sinks {
				if !equalTables(tbl, streamed.Sinks[name]) {
					t.Errorf("sink %q differs", name)
				}
			}
			if !equalStores(t, batch.Observed, streamed.Observed) {
				t.Error("observed statistics differ")
			}
			if batch.Rows != streamed.Rows {
				t.Errorf("work metric differs: %d vs %d", batch.Rows, streamed.Rows)
			}
		})
	}
}
