package engine

import (
	"time"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/stats"
)

// collector records compiled taps into a statistic store. All routing —
// which statistic observes which operator output, with which physical
// columns — was decided by the physical-plan compiler; the collector only
// folds record-sets into scalars and histograms. A nil *collector is valid
// and collects nothing (uninstrumented runs).
type collector struct {
	store *stats.Store
}

func newCollector() *collector { return &collector{store: stats.NewStore()} }

// collect updates one tap's statistic from a whole record-set (the batch
// engine's table-at-a-time path). The store is write-once per statistic, so
// collection stays idempotent if a plan surfaces the same target twice.
func (c *collector) collect(tap physical.Tap, tbl *data.Table) {
	if c == nil || c.store.Has(tap.Stat) {
		return
	}
	switch tap.Stat.Kind {
	case stats.Card:
		c.store.PutScalarOnce(tap.Stat, tbl.Card())
	case stats.Distinct:
		seen := make(map[string]bool)
		var kbuf []byte
		key := make([]int64, len(tap.Cols))
		for _, r := range tbl.Rows {
			for i, col := range tap.Cols {
				key[i] = r[col]
			}
			kbuf = appendRowKey(kbuf[:0], key)
			if !seen[string(kbuf)] {
				seen[string(kbuf)] = true
			}
		}
		c.store.PutScalarOnce(tap.Stat, int64(len(seen)))
	case stats.Hist:
		h := stats.NewHistogram(tap.Stat.Attrs...)
		vals := make([]int64, len(tap.Cols))
		for _, r := range tbl.Rows {
			for i, col := range tap.Cols {
				vals[i] = r[col]
			}
			h.Inc(vals, 1)
		}
		c.store.PutHistOnce(tap.Stat, h)
	}
}

// auxState is a pending union–division auxiliary join: the misses of one
// input joined with each registered partner input after the block's
// pipeline drains (rule J4's counter).
type auxState struct {
	aux    []*physical.AuxJoin
	misses *data.Table
	// met, when non-nil, charges the auxiliary joins as tap overhead of
	// the owning join node. The streaming paths set it (auxes run after
	// the pipeline drains, outside any other timing window); the batch
	// engine leaves it nil because its per-join tap window already covers
	// reject collection.
	met *physical.Metrics
}

// run executes the auxiliary joins over the collected misses and feeds each
// statistic.
func (a *auxState) run(col *collector, inputs []*data.Table) {
	if a.met != nil {
		start := time.Now()
		defer func() { a.met.TapNanos += time.Since(start).Nanoseconds() }()
	}
	for _, aj := range a.aux {
		partner := inputs[aj.Partner]
		if partner == nil {
			continue
		}
		index := make(map[int64][]data.Row, len(partner.Rows))
		for _, r := range partner.Rows {
			index[r[aj.PartnerCol]] = append(index[r[aj.PartnerCol]], r)
		}
		joined := &data.Table{Rel: "aux", Attrs: aj.Attrs}
		for _, m := range a.misses.Rows {
			for _, p := range index[m[aj.MissCol]] {
				row := make(data.Row, 0, len(m)+len(p))
				row = append(append(row, m...), p...)
				joined.Rows = append(joined.Rows, row)
			}
		}
		col.collect(physical.Tap{Stat: aj.Stat, Cols: aj.Cols}, joined)
	}
}
