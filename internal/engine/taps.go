package engine

import (
	"sort"
	"sync"
	"time"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/stats"
)

// collector records compiled taps into a statistic store. All routing —
// which statistic observes which operator output, with which physical
// columns — was decided by the physical-plan compiler; the collector only
// folds record-sets into scalars and histograms. A nil *collector is valid
// and collects nothing (uninstrumented runs).
//
// Statistics whose observation fails permanently (an injected permanent tap
// fault, or a store/histogram rejection) are recorded in failed instead of
// aborting the run: the block completes without them and the caller sees
// them as Result.Degraded.
type collector struct {
	store *stats.Store

	mu     sync.Mutex
	failed map[stats.Key]FailedStat
}

func newCollector() *collector { return &collector{store: stats.NewStore()} }

// markFailed records a statistic as permanently unobservable this run.
// The first error per statistic wins (later duplicates are the same fault
// surfacing at another execution point).
func (c *collector) markFailed(s stats.Stat, err error) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed == nil {
		c.failed = make(map[stats.Key]FailedStat)
	}
	if _, ok := c.failed[s.Key()]; !ok {
		c.failed[s.Key()] = FailedStat{Stat: s, Err: err}
	}
}

// failedStats returns the degraded statistics in deterministic (canonical
// key) order.
func (c *collector) failedStats() []FailedStat {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.failed) == 0 {
		return nil
	}
	out := make([]FailedStat, 0, len(c.failed))
	for _, f := range c.failed {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		return stats.KeyLess(out[i].Stat.Key(), out[j].Stat.Key())
	})
	return out
}

// collect updates one tap's statistic from a whole record-set (the batch
// engine's table-at-a-time path). The store is write-once per statistic, so
// collection stays idempotent if a plan surfaces the same target twice.
func (c *collector) collect(tap physical.Tap, tbl *data.Table) {
	if c == nil || c.store.Has(tap.Stat) {
		return
	}
	switch tap.Stat.Kind {
	case stats.Card:
		if err := c.store.PutScalarOnce(tap.Stat, tbl.Card()); err != nil {
			c.markFailed(tap.Stat, err)
		}
	case stats.Distinct:
		seen := newKeySet()
		key := make([]int64, len(tap.Cols))
		for _, r := range tbl.Rows {
			for i, col := range tap.Cols {
				key[i] = r[col]
			}
			seen.add(key)
		}
		if err := c.store.PutScalarOnce(tap.Stat, int64(seen.len())); err != nil {
			c.markFailed(tap.Stat, err)
		}
	case stats.Hist:
		h := stats.NewHistogram(tap.Stat.Attrs...)
		vals := make([]int64, len(tap.Cols))
		for _, r := range tbl.Rows {
			for i, col := range tap.Cols {
				vals[i] = r[col]
			}
			if err := h.Inc(vals, 1); err != nil {
				c.markFailed(tap.Stat, err)
				return
			}
		}
		if err := c.store.PutHistOnce(tap.Stat, h); err != nil {
			c.markFailed(tap.Stat, err)
		}
	case stats.HLLDistinct:
		h := stats.NewHLL(stats.DefaultHLLP)
		vals := make([]int64, len(tap.Cols))
		for _, r := range tbl.Rows {
			for i, col := range tap.Cols {
				vals[i] = r[col]
			}
			h.Add(vals...)
		}
		if err := c.store.PutHLLOnce(tap.Stat, h); err != nil {
			c.markFailed(tap.Stat, err)
		}
	case stats.CMHist:
		cm := stats.NewCMH(tap.Spec, stats.DefaultCMDepth, stats.DefaultCMWidth)
		for _, r := range tbl.Rows {
			cm.Observe(r[tap.Cols[0]])
		}
		if err := c.store.PutCMOnce(tap.Stat, cm); err != nil {
			c.markFailed(tap.Stat, err)
		}
	}
}

// auxState is a pending union–division auxiliary join: the misses of one
// input joined with each registered partner input after the block's
// pipeline drains (rule J4's counter).
type auxState struct {
	aux    []*physical.AuxJoin
	misses *data.Table
	// met, when non-nil, charges the auxiliary joins as tap overhead of
	// the owning join node. The streaming paths set it (auxes run after
	// the pipeline drains, outside any other timing window); the batch
	// engine leaves it nil because its per-join tap window already covers
	// reject collection.
	met *physical.Metrics
}

// run executes the auxiliary joins over the collected misses and feeds each
// statistic.
func (a *auxState) run(col *collector, inputs []*data.Table) {
	if a.met != nil {
		start := time.Now()
		defer func() { a.met.TapNanos += time.Since(start).Nanoseconds() }()
	}
	for _, aj := range a.aux {
		partner := inputs[aj.Partner]
		if partner == nil {
			continue
		}
		index := make(map[int64][]data.Row, len(partner.Rows))
		for _, r := range partner.Rows {
			index[r[aj.PartnerCol]] = append(index[r[aj.PartnerCol]], r)
		}
		joined := &data.Table{Rel: "aux", Attrs: aj.Attrs}
		for _, m := range a.misses.Rows {
			for _, p := range index[m[aj.MissCol]] {
				row := make(data.Row, 0, len(m)+len(p))
				row = append(append(row, m...), p...)
				joined.Rows = append(joined.Rows, row)
			}
		}
		col.collect(physical.Tap{Stat: aj.Stat, Cols: aj.Cols}, joined)
	}
}
