package engine

import (
	"fmt"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// tapSet routes record-sets produced during execution to the statistic
// collectors the selection asked for. Points are keyed three ways: chain
// points (block, input, depth), cooked SEs (block, set), and reject
// singletons (block, input, edge).
type tapSet struct {
	res   *css.Result
	store *stats.Store

	chain  map[[3]int][]stats.Stat
	se     map[seKey][]stats.Stat
	reject map[[3]int][]stats.Stat
}

type seKey struct {
	block int
	set   expr.Set
}

// newTapSet indexes the observable statistics of the selection by
// observation point. Unless anyPoint is set, statistics not observable
// under the initial plan are skipped: they are derived later by the
// estimator. With anyPoint, every statistic is registered and collected if
// (and only if) the executed plans produce its target.
func newTapSet(res *css.Result, observe []stats.Stat, anyPoint bool) (*tapSet, error) {
	t := &tapSet{
		res:    res,
		store:  stats.NewStore(),
		chain:  make(map[[3]int][]stats.Stat),
		se:     make(map[seKey][]stats.Stat),
		reject: make(map[[3]int][]stats.Stat),
	}
	for _, s := range observe {
		if !anyPoint && !res.StatObservable(s) {
			continue
		}
		tgt := s.Target
		switch {
		case tgt.IsChainPoint():
			k := [3]int{tgt.Block, tgt.Set.Lowest(), tgt.Depth}
			t.chain[k] = append(t.chain[k], s)
		case tgt.IsReject():
			k := [3]int{tgt.Block, tgt.RejectInput, tgt.RejectEdge}
			t.reject[k] = append(t.reject[k], s)
		default:
			k := seKey{tgt.Block, tgt.Set}
			t.se[k] = append(t.se[k], s)
		}
	}
	return t, nil
}

// observeChainPoint feeds the collectors at chain point (block, input,
// depth). The cooked end of the chain doubles as the singleton SE.
func (t *tapSet) observeChainPoint(block, input, depth, chainLen int, tbl *data.Table) {
	for _, s := range t.chain[[3]int{block, input, depth}] {
		t.collect(s, tbl)
	}
	if depth == chainLen {
		t.observeSE(block, expr.NewSet(input), tbl)
	}
}

// observeSE feeds the collectors of a cooked SE.
func (t *tapSet) observeSE(block int, se expr.Set, tbl *data.Table) {
	for _, s := range t.se[seKey{block, se}] {
		t.collect(s, tbl)
	}
}

// observeReject feeds the collectors keyed on reject point (input, edge):
// singleton reject statistics collect directly over the miss rows, and
// two-input reject variants T̄t ⋈ r run the auxiliary join of the miss rows
// with the partner input first (the instrumentation the paper adds for rule
// J4's counter).
func (t *tapSet) observeReject(blk *workflow.Block, input, edge int, misses *data.Table, inputs []*data.Table) {
	block := blk.Index
	for _, s := range t.reject[[3]int{block, input, edge}] {
		rest := s.Target.Set.Without(expr.NewSet(input))
		if rest.Empty() {
			t.collect(s, misses)
			continue
		}
		if rest.Len() != 1 {
			continue // wider variants are derived, not observed
		}
		r := rest.Lowest()
		g := -1
		for j, e := range blk.Joins {
			if e.LeftInput == input && e.RightInput == r || e.LeftInput == r && e.RightInput == input {
				g = j
				break
			}
		}
		if g < 0 || inputs[r] == nil {
			continue
		}
		la, ra := blk.Joins[g].LeftAttr, blk.Joins[g].RightAttr
		if misses.Col(la) < 0 {
			la, ra = ra, la
		}
		joined, _, _, err := hashJoin(misses, inputs[r], la, ra)
		if err != nil {
			continue
		}
		t.collect(s, joined)
	}
}

// collect updates one statistic from a record-set. Histograms are recorded
// under class-representative attribute labels, so the estimation algebra
// composes histograms from different relations without renaming.
func (t *tapSet) collect(s stats.Stat, tbl *data.Table) {
	if t.store.Has(s) {
		return // a plan may produce the same SE once only; be idempotent
	}
	switch s.Kind {
	case stats.Card:
		t.store.PutScalarOnce(s, tbl.Card())
	case stats.Distinct:
		cols, err := t.columnsFor(s, tbl)
		if err != nil {
			return
		}
		seen := make(map[string]bool)
		key := make([]int64, len(cols))
		for _, r := range tbl.Rows {
			for i, c := range cols {
				key[i] = r[c]
			}
			seen[rowKey(key)] = true
		}
		t.store.PutScalarOnce(s, int64(len(seen)))
	case stats.Hist:
		cols, err := t.columnsFor(s, tbl)
		if err != nil {
			return
		}
		h := stats.NewHistogram(s.Attrs...)
		vals := make([]int64, len(cols))
		for _, r := range tbl.Rows {
			for i, c := range cols {
				vals[i] = r[c]
			}
			h.Inc(vals, 1)
		}
		t.store.PutHistOnce(s, h)
	}
}

// columnsFor resolves a statistic's class-representative attributes to
// physical columns of the record-set, in the order of s.Attrs (which
// matches the histogram's canonical attribute order).
func (t *tapSet) columnsFor(s stats.Stat, tbl *data.Table) ([]int, error) {
	return t.colsForSchema(s, tbl.Attrs)
}

// colsForSchema is columnsFor against a bare schema (the streaming engine
// resolves handlers before any rows exist).
func (t *tapSet) colsForSchema(s stats.Stat, attrs []workflow.Attr) ([]int, error) {
	phys, err := t.res.PhysicalAttrs(s)
	if err != nil {
		return nil, err
	}
	pos := func(a workflow.Attr) int {
		for i, x := range attrs {
			if x == a {
				return i
			}
		}
		return -1
	}
	cols := make([]int, len(phys))
	for i, a := range phys {
		cols[i] = pos(a)
		if cols[i] < 0 {
			// The class representative itself may be the physical column
			// (e.g. a derived attribute).
			cols[i] = pos(s.Attrs[i])
		}
		if cols[i] < 0 {
			return nil, fmt.Errorf("attribute %s not present at observation point (schema %v)", phys[i], attrs)
		}
	}
	return cols, nil
}
