package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/faults"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Inter-block parallelism. An ETL workflow's optimizable blocks form a DAG:
// block B depends on block A exactly when one of B's inputs reads A's
// boundary output (BlockInput.FromBlock). Blocks with no path between them
// touch disjoint state, so they can execute on separate goroutines. The
// scheduler below runs the compiled block plans with a bounded worker pool;
// every block writes its side effects (materialized tables, the row-work
// counter) into a private blockSink that the scheduler folds into the
// shared Result under its own lock, so block execution itself never touches
// shared maps.
//
// With workers <= 1 the scheduler degenerates to the plain topological loop
// the engines always used, reproducing sequential behavior exactly.

// rowBudget is the shared intermediate-cardinality guard: every counted row
// of the run charges it, across blocks and workers. A nil budget (MaxRows
// <= 0) never trips.
//
// Block retry builds a child budget per attempt: the child tracks what the
// attempt charged (so a failed attempt can refund it) and forwards every
// charge to the run's root budget, where the limit lives. The injected
// budget fault, when armed, rides on the child so it fires exactly once per
// attempt in whichever engine counts the first row — the same semantics at
// every worker count.
type rowBudget struct {
	limit  int64
	used   atomic.Int64
	parent *rowBudget
	// inject, when non-nil, is returned by the first add (simulated budget
	// exhaustion from the fault injector).
	inject     error
	injectOnce atomic.Bool
}

func newRowBudget(limit int64) *rowBudget {
	if limit <= 0 {
		return nil
	}
	return &rowBudget{limit: limit}
}

// child derives a per-attempt budget. With neither a parent limit nor an
// injected fault there is nothing to track, so nil (the free fast path)
// comes back.
func (b *rowBudget) child(inject error) *rowBudget {
	if b == nil && inject == nil {
		return nil
	}
	return &rowBudget{parent: b, inject: inject}
}

// add charges n rows and fails once the limit is crossed (or the injected
// exhaustion fires).
func (b *rowBudget) add(n int64) error {
	if b == nil {
		return nil
	}
	if b.inject != nil && b.injectOnce.CompareAndSwap(false, true) {
		return b.inject
	}
	used := b.used.Add(n)
	if b.parent != nil {
		return b.parent.add(n)
	}
	if b.limit > 0 && used > b.limit {
		return fmt.Errorf("intermediate-cardinality guard: run exceeded MaxRows=%d intermediate rows (join blowup from data skew or a bad join order; raise MaxRows or set 0 to disable)", b.limit)
	}
	return nil
}

// release refunds this child's accumulated charge from every ancestor, so
// a retried attempt starts from the budget state the failed attempt found.
func (b *rowBudget) release() {
	if b == nil || b.parent == nil {
		return
	}
	n := b.used.Load()
	for p := b.parent; p != nil; p = p.parent {
		p.used.Add(-n)
	}
}

// blockSink collects one block's side effects during execution. upstream
// holds the boundary outputs of the blocks this block reads from (complete
// before the block is scheduled), so chains never read the shared Result.
//
// The sink also carries the attempt's fault-tolerance state: the run
// context (polled at operator boundaries), the fault injector and the
// attempt number the injector's decisions key on. All nil/zero for plain
// runs — the interpreters' fast paths stay branch-cheap.
type blockSink struct {
	upstream     map[int]*data.Table
	materialized map[string]*data.Table
	rows         int64
	budget       *rowBudget

	ctx     context.Context
	flt     *faults.Injector
	attempt int
	block   int
}

func newBlockSink(budget *rowBudget) *blockSink {
	return &blockSink{materialized: make(map[string]*data.Table), budget: budget}
}

// count adds n rows to the block's work metric and charges the run's row
// budget.
func (s *blockSink) count(n int64) error {
	s.rows += n
	return s.budget.add(n)
}

// blockRunner executes one compiled block against its sink and returns the
// block's boundary output.
type blockRunner func(bp *physical.BlockPlan, sink *blockSink) (*data.Table, error)

// blockDeps returns the upstream block indices each block reads from.
func blockDeps(plan *physical.Plan) map[int][]int {
	deps := make(map[int][]int, len(plan.Blocks))
	for _, bp := range plan.Blocks {
		var d []int
		for _, in := range bp.Block.Inputs {
			if in.FromBlock >= 0 {
				d = append(d, in.FromBlock)
			}
		}
		deps[bp.Block.Index] = d
	}
	return deps
}

// runBlocksDAG executes every compiled block, respecting the block
// dependency DAG, with at most `workers` blocks in flight. Block outputs,
// materialized tables and row counters land in out. When several blocks are
// ready the lowest block index starts first, and on failure the error of
// the lowest failing block index is returned (as a *BlockFailure carrying
// the checkpoint of what did complete), so error reporting is deterministic
// regardless of goroutine timing.
//
// Blocks whose output is already present in out (a checkpoint seeded by
// Resume) are skipped: only the missing blocks — the failed block and its
// downstream cone — execute.
func runBlocksDAG(plan *physical.Plan, workers int, env *runEnv, out *Result, run blockRunner) error {
	deps := blockDeps(plan)
	upstreamOf := func(bp *physical.BlockPlan) map[int]*data.Table {
		up := make(map[int]*data.Table, len(deps[bp.Block.Index]))
		for _, d := range deps[bp.Block.Index] {
			up[d] = out.BlockOut[d]
		}
		return up
	}

	if workers <= 1 || len(plan.Blocks) <= 1 || env.adapt != nil {
		// Sequential: plan.Blocks is topologically ordered, so every
		// dependency is already in out.BlockOut when its reader runs. An
		// AdaptCheck also forces this path — the boundary-check sequence
		// must not depend on goroutine timing (see adapt.go).
		done := make(map[int]bool, len(plan.Blocks))
		for i := range out.BlockOut {
			done[i] = true
		}
		for bi, bp := range plan.Blocks {
			if _, ok := out.BlockOut[bp.Block.Index]; ok {
				continue // checkpointed
			}
			tbl, sink, err := env.runBlock(bp, upstreamOf(bp), run)
			if err != nil {
				return &BlockFailure{
					Block:      bp.Block.Index,
					Checkpoint: checkpointOf(out, []int{bp.Block.Index}),
					Err:        err,
				}
			}
			out.BlockOut[bp.Block.Index] = tbl
			for k, v := range sink.materialized {
				out.Materialized[k] = v
			}
			out.Rows += sink.rows
			done[bp.Block.Index] = true
			// The boundary check: with blocks still pending, ask whether the
			// actuals committed so far refute the estimates behind them.
			if env.adapt != nil && bi+1 < len(plan.Blocks) && env.adapt(plan, bp.Block.Index, done) {
				return &ReplanSignal{
					Block:      bp.Block.Index,
					Checkpoint: checkpointOf(out, nil),
				}
			}
		}
		return nil
	}

	if workers > len(plan.Blocks) {
		workers = len(plan.Blocks)
	}
	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		started = make(map[int]bool, len(plan.Blocks))
		done    = make(map[int]bool, len(plan.Blocks))
		errs    = make(map[int]error)
		left    = len(plan.Blocks)
	)
	for _, bp := range plan.Blocks {
		if _, ok := out.BlockOut[bp.Block.Index]; ok {
			started[bp.Block.Index] = true
			done[bp.Block.Index] = true
			left--
		}
	}
	// nextReady picks the lowest-index block whose dependencies completed.
	nextReady := func() *physical.BlockPlan {
		for _, bp := range plan.Blocks {
			if started[bp.Block.Index] {
				continue
			}
			ready := true
			for _, d := range deps[bp.Block.Index] {
				if !done[d] {
					ready = false
					break
				}
			}
			if ready {
				return bp
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	worker := func() {
		defer wg.Done()
		mu.Lock()
		defer mu.Unlock()
		for {
			if len(errs) > 0 || left == 0 {
				return
			}
			bp := nextReady()
			if bp == nil {
				// Everything runnable is in flight (the topological order
				// guarantees progress while blocks remain and none failed).
				cond.Wait()
				continue
			}
			started[bp.Block.Index] = true
			upstream := upstreamOf(bp)
			mu.Unlock()
			tbl, sink, err := env.runBlock(bp, upstream, run)
			mu.Lock()
			if err != nil {
				errs[bp.Block.Index] = err
			} else {
				out.BlockOut[bp.Block.Index] = tbl
				for k, v := range sink.materialized {
					out.Materialized[k] = v
				}
				out.Rows += sink.rows
				done[bp.Block.Index] = true
			}
			left--
			cond.Broadcast()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if len(errs) > 0 {
		idxs := make([]int, 0, len(errs))
		for i := range errs {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		return &BlockFailure{
			Block:      idxs[0],
			Checkpoint: checkpointOf(out, idxs),
			Err:        errs[idxs[0]],
		}
	}
	return nil
}

// routeSinks fills out.Sinks from the block outputs (shared by both
// engines' RunPlans).
func routeSinks(an *workflow.Analysis, out *Result) error {
	for _, sink := range an.Graph.Sinks() {
		blk := an.BlockOf(sink.Inputs[0])
		if blk == nil {
			// The sink's input is a block terminal.
			for _, b := range an.Blocks {
				if b.Terminal == sink.Inputs[0] {
					blk = b
					break
				}
			}
		}
		if blk == nil {
			return fmt.Errorf("sink %q: cannot locate producing block", sink.ID)
		}
		out.Sinks[sink.Rel] = out.BlockOut[blk.Index]
	}
	return nil
}

// splitmix64 mixes a 64-bit value; the partitioner uses it so that skewed
// join keys still spread across workers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// partitionByKey splits rows across w partitions by hash of the key column.
// All rows sharing a join-key value land in the same partition, and within
// a partition rows keep their relative order.
func partitionByKey(rows []data.Row, col, w int) [][]data.Row {
	parts := make([][]data.Row, w)
	for _, r := range rows {
		p := int(splitmix64(uint64(r[col])) % uint64(w))
		parts[p] = append(parts[p], r)
	}
	return parts
}

// partitionChunks splits rows into w contiguous chunks (order-preserving:
// concatenating the chunks reproduces rows exactly).
func partitionChunks(rows []data.Row, w int) [][]data.Row {
	parts := make([][]data.Row, w)
	n := len(rows)
	for i := 0; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		parts[i] = rows[lo:hi]
	}
	return parts
}
