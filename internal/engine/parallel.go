package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Inter-block parallelism. An ETL workflow's optimizable blocks form a DAG:
// block B depends on block A exactly when one of B's inputs reads A's
// boundary output (BlockInput.FromBlock). Blocks with no path between them
// touch disjoint state, so they can execute on separate goroutines. The
// scheduler below runs the compiled block plans with a bounded worker pool;
// every block writes its side effects (materialized tables, the row-work
// counter) into a private blockSink that the scheduler folds into the
// shared Result under its own lock, so block execution itself never touches
// shared maps.
//
// With workers <= 1 the scheduler degenerates to the plain topological loop
// the engines always used, reproducing sequential behavior exactly.

// rowBudget is the shared intermediate-cardinality guard: every counted row
// of the run charges it, across blocks and workers. A nil budget (MaxRows
// <= 0) never trips.
type rowBudget struct {
	limit int64
	used  atomic.Int64
}

func newRowBudget(limit int64) *rowBudget {
	if limit <= 0 {
		return nil
	}
	return &rowBudget{limit: limit}
}

// add charges n rows and fails once the limit is crossed.
func (b *rowBudget) add(n int64) error {
	if b == nil {
		return nil
	}
	if b.used.Add(n) > b.limit {
		return fmt.Errorf("intermediate-cardinality guard: run exceeded MaxRows=%d intermediate rows (join blowup from data skew or a bad join order; raise MaxRows or set 0 to disable)", b.limit)
	}
	return nil
}

// blockSink collects one block's side effects during execution. upstream
// holds the boundary outputs of the blocks this block reads from (complete
// before the block is scheduled), so chains never read the shared Result.
type blockSink struct {
	upstream     map[int]*data.Table
	materialized map[string]*data.Table
	rows         int64
	budget       *rowBudget
}

func newBlockSink(budget *rowBudget) *blockSink {
	return &blockSink{materialized: make(map[string]*data.Table), budget: budget}
}

// count adds n rows to the block's work metric and charges the run's row
// budget.
func (s *blockSink) count(n int64) error {
	s.rows += n
	return s.budget.add(n)
}

// blockRunner executes one compiled block against its sink and returns the
// block's boundary output.
type blockRunner func(bp *physical.BlockPlan, sink *blockSink) (*data.Table, error)

// blockDeps returns the upstream block indices each block reads from.
func blockDeps(plan *physical.Plan) map[int][]int {
	deps := make(map[int][]int, len(plan.Blocks))
	for _, bp := range plan.Blocks {
		var d []int
		for _, in := range bp.Block.Inputs {
			if in.FromBlock >= 0 {
				d = append(d, in.FromBlock)
			}
		}
		deps[bp.Block.Index] = d
	}
	return deps
}

// runBlocksDAG executes every compiled block, respecting the block
// dependency DAG, with at most `workers` blocks in flight. Block outputs,
// materialized tables and row counters land in out. When several blocks are
// ready the lowest block index starts first, and on failure the error of
// the lowest failing block index is returned, so error reporting is
// deterministic regardless of goroutine timing.
func runBlocksDAG(plan *physical.Plan, workers int, budget *rowBudget, out *Result, run blockRunner) error {
	deps := blockDeps(plan)

	if workers <= 1 || len(plan.Blocks) <= 1 {
		// Sequential: plan.Blocks is topologically ordered, so every
		// dependency is already in out.BlockOut when its reader runs.
		for _, bp := range plan.Blocks {
			sink := newBlockSink(budget)
			sink.upstream = make(map[int]*data.Table, len(deps[bp.Block.Index]))
			for _, d := range deps[bp.Block.Index] {
				sink.upstream[d] = out.BlockOut[d]
			}
			tbl, err := run(bp, sink)
			if err != nil {
				return fmt.Errorf("block %d: %w", bp.Block.Index, err)
			}
			out.BlockOut[bp.Block.Index] = tbl
			for k, v := range sink.materialized {
				out.Materialized[k] = v
			}
			out.Rows += sink.rows
		}
		return nil
	}

	if workers > len(plan.Blocks) {
		workers = len(plan.Blocks)
	}
	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		started = make(map[int]bool, len(plan.Blocks))
		done    = make(map[int]bool, len(plan.Blocks))
		errs    = make(map[int]error)
		left    = len(plan.Blocks)
	)
	// nextReady picks the lowest-index block whose dependencies completed.
	nextReady := func() *physical.BlockPlan {
		for _, bp := range plan.Blocks {
			if started[bp.Block.Index] {
				continue
			}
			ready := true
			for _, d := range deps[bp.Block.Index] {
				if !done[d] {
					ready = false
					break
				}
			}
			if ready {
				return bp
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	worker := func() {
		defer wg.Done()
		mu.Lock()
		defer mu.Unlock()
		for {
			if len(errs) > 0 || left == 0 {
				return
			}
			bp := nextReady()
			if bp == nil {
				// Everything runnable is in flight (the topological order
				// guarantees progress while blocks remain and none failed).
				cond.Wait()
				continue
			}
			started[bp.Block.Index] = true
			sink := newBlockSink(budget)
			sink.upstream = make(map[int]*data.Table, len(deps[bp.Block.Index]))
			for _, d := range deps[bp.Block.Index] {
				sink.upstream[d] = out.BlockOut[d]
			}
			mu.Unlock()
			tbl, err := run(bp, sink)
			mu.Lock()
			if err != nil {
				errs[bp.Block.Index] = err
			} else {
				out.BlockOut[bp.Block.Index] = tbl
				for k, v := range sink.materialized {
					out.Materialized[k] = v
				}
				out.Rows += sink.rows
				done[bp.Block.Index] = true
			}
			left--
			cond.Broadcast()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if len(errs) > 0 {
		idxs := make([]int, 0, len(errs))
		for i := range errs {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		return fmt.Errorf("block %d: %w", idxs[0], errs[idxs[0]])
	}
	return nil
}

// routeSinks fills out.Sinks from the block outputs (shared by both
// engines' RunPlans).
func routeSinks(an *workflow.Analysis, out *Result) error {
	for _, sink := range an.Graph.Sinks() {
		blk := an.BlockOf(sink.Inputs[0])
		if blk == nil {
			// The sink's input is a block terminal.
			for _, b := range an.Blocks {
				if b.Terminal == sink.Inputs[0] {
					blk = b
					break
				}
			}
		}
		if blk == nil {
			return fmt.Errorf("sink %q: cannot locate producing block", sink.ID)
		}
		out.Sinks[sink.Rel] = out.BlockOut[blk.Index]
	}
	return nil
}

// splitmix64 mixes a 64-bit value; the partitioner uses it so that skewed
// join keys still spread across workers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// partitionByKey splits rows across w partitions by hash of the key column.
// All rows sharing a join-key value land in the same partition, and within
// a partition rows keep their relative order.
func partitionByKey(rows []data.Row, col, w int) [][]data.Row {
	parts := make([][]data.Row, w)
	for _, r := range rows {
		p := int(splitmix64(uint64(r[col])) % uint64(w))
		parts[p] = append(parts[p], r)
	}
	return parts
}

// partitionChunks splits rows into w contiguous chunks (order-preserving:
// concatenating the chunks reproduces rows exactly).
func partitionChunks(rows []data.Row, w int) [][]data.Row {
	parts := make([][]data.Row, w)
	n := len(rows)
	for i := 0; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		parts[i] = rows[lo:hi]
	}
	return parts
}
