package engine

import (
	"fmt"
	"sort"
	"sync"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Inter-block parallelism. An ETL workflow's optimizable blocks form a DAG:
// block B depends on block A exactly when one of B's inputs reads A's
// boundary output (BlockInput.FromBlock). Blocks with no path between them
// touch disjoint state, so they can execute on separate goroutines. The
// scheduler below runs the DAG with a bounded worker pool; every block
// writes its side effects (materialized tables, the row-work counter) into
// a private blockSink that the scheduler folds into the shared Result under
// its own lock, so block execution itself never touches shared maps.
//
// With workers <= 1 the scheduler degenerates to the plain topological loop
// the engines always used, reproducing sequential behavior exactly.

// blockSink collects one block's side effects during execution. upstream
// holds the boundary outputs of the blocks this block reads from (complete
// before the block is scheduled), so chains never read the shared Result.
type blockSink struct {
	upstream     map[int]*data.Table
	materialized map[string]*data.Table
	rows         int64
}

func newBlockSink() *blockSink {
	return &blockSink{materialized: make(map[string]*data.Table)}
}

// blockRunner executes one block against its sink and returns the block's
// boundary output.
type blockRunner func(blk *workflow.Block, tree *workflow.JoinTree, sink *blockSink) (*data.Table, error)

// blockDeps returns the upstream block indices each block reads from.
func blockDeps(an *workflow.Analysis) map[int][]int {
	deps := make(map[int][]int, len(an.Blocks))
	for _, blk := range an.Blocks {
		var d []int
		for _, in := range blk.Inputs {
			if in.FromBlock >= 0 {
				d = append(d, in.FromBlock)
			}
		}
		deps[blk.Index] = d
	}
	return deps
}

// runBlocksDAG executes every block of the analysis, respecting the block
// dependency DAG, with at most `workers` blocks in flight. Block outputs,
// materialized tables and row counters land in out. When several blocks are
// ready the lowest block index starts first, and on failure the error of
// the lowest failing block index is returned, so error reporting is
// deterministic regardless of goroutine timing.
func runBlocksDAG(an *workflow.Analysis, plans map[int]*workflow.JoinTree, workers int, out *Result, run blockRunner) error {
	treeOf := func(blk *workflow.Block) *workflow.JoinTree {
		tree := blk.Initial
		if plans != nil {
			if t, ok := plans[blk.Index]; ok && t != nil {
				tree = t
			}
		}
		return tree
	}
	deps := blockDeps(an)

	if workers <= 1 || len(an.Blocks) <= 1 {
		// Sequential: an.Blocks is topologically ordered, so every
		// dependency is already in out.BlockOut when its reader runs.
		for _, blk := range an.Blocks {
			sink := newBlockSink()
			sink.upstream = make(map[int]*data.Table, len(deps[blk.Index]))
			for _, d := range deps[blk.Index] {
				sink.upstream[d] = out.BlockOut[d]
			}
			tbl, err := run(blk, treeOf(blk), sink)
			if err != nil {
				return fmt.Errorf("block %d: %w", blk.Index, err)
			}
			out.BlockOut[blk.Index] = tbl
			for k, v := range sink.materialized {
				out.Materialized[k] = v
			}
			out.Rows += sink.rows
		}
		return nil
	}

	if workers > len(an.Blocks) {
		workers = len(an.Blocks)
	}
	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		started = make(map[int]bool, len(an.Blocks))
		done    = make(map[int]bool, len(an.Blocks))
		errs    = make(map[int]error)
		left    = len(an.Blocks)
	)
	// nextReady picks the lowest-index block whose dependencies completed.
	nextReady := func() *workflow.Block {
		for _, blk := range an.Blocks {
			if started[blk.Index] {
				continue
			}
			ready := true
			for _, d := range deps[blk.Index] {
				if !done[d] {
					ready = false
					break
				}
			}
			if ready {
				return blk
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	worker := func() {
		defer wg.Done()
		mu.Lock()
		defer mu.Unlock()
		for {
			if len(errs) > 0 || left == 0 {
				return
			}
			blk := nextReady()
			if blk == nil {
				// Everything runnable is in flight (the topological order
				// guarantees progress while blocks remain and none failed).
				cond.Wait()
				continue
			}
			started[blk.Index] = true
			sink := newBlockSink()
			sink.upstream = make(map[int]*data.Table, len(deps[blk.Index]))
			for _, d := range deps[blk.Index] {
				sink.upstream[d] = out.BlockOut[d]
			}
			mu.Unlock()
			tbl, err := run(blk, treeOf(blk), sink)
			mu.Lock()
			if err != nil {
				errs[blk.Index] = err
			} else {
				out.BlockOut[blk.Index] = tbl
				for k, v := range sink.materialized {
					out.Materialized[k] = v
				}
				out.Rows += sink.rows
				done[blk.Index] = true
			}
			left--
			cond.Broadcast()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if len(errs) > 0 {
		idxs := make([]int, 0, len(errs))
		for i := range errs {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		return fmt.Errorf("block %d: %w", idxs[0], errs[idxs[0]])
	}
	return nil
}

// routeSinks fills out.Sinks from the block outputs (shared by both
// engines' RunPlans).
func routeSinks(an *workflow.Analysis, out *Result) error {
	for _, sink := range an.Graph.Sinks() {
		blk := an.BlockOf(sink.Inputs[0])
		if blk == nil {
			// The sink's input is a block terminal.
			for _, b := range an.Blocks {
				if b.Terminal == sink.Inputs[0] {
					blk = b
					break
				}
			}
		}
		if blk == nil {
			return fmt.Errorf("sink %q: cannot locate producing block", sink.ID)
		}
		out.Sinks[sink.Rel] = out.BlockOut[blk.Index]
	}
	return nil
}

// splitmix64 mixes a 64-bit value; the partitioner uses it so that skewed
// join keys still spread across workers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// partitionByKey splits rows across w partitions by hash of the key column.
// All rows sharing a join-key value land in the same partition, and within
// a partition rows keep their relative order.
func partitionByKey(rows []data.Row, col, w int) [][]data.Row {
	parts := make([][]data.Row, w)
	for _, r := range rows {
		p := int(splitmix64(uint64(r[col])) % uint64(w))
		parts[p] = append(parts[p], r)
	}
	return parts
}

// partitionChunks splits rows into w contiguous chunks (order-preserving:
// concatenating the chunks reproduces rows exactly).
func partitionChunks(rows []data.Row, w int) [][]data.Row {
	parts := make([][]data.Row, w)
	n := len(rows)
	for i := 0; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		parts[i] = rows[lo:hi]
	}
	return parts
}
