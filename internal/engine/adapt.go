package engine

// Mid-run adaptive re-optimization hook. The block scheduler calls an
// AdaptCheck after every block it commits; when the check decides the
// evidence collected so far refutes the estimates that justified the
// not-yet-executed cone, the run stops at that boundary with a
// *ReplanSignal carrying the checkpoint. The caller (internal/core's
// adaptive driver) re-optimizes the remaining blocks, recompiles them and
// resumes from the checkpoint — completed blocks never re-run.
//
// Setting an AdaptCheck forces sequential block scheduling regardless of
// the worker count: the check sequence, and therefore every replan
// decision, must be deterministic, and with concurrent blocks the set of
// completed blocks at each boundary would depend on goroutine timing.
// Intra-block parallelism (chunk/probe partitioning, stream stages) is
// unaffected, so worker counts still exercise the shard-then-merge
// discipline inside every block.

import (
	"github.com/essential-stats/etlopt/internal/physical"
)

// AdaptCheck inspects the run after `block` committed its boundary output.
// done maps every completed block index to its output; returning true stops
// the run at this boundary with a *ReplanSignal.
type AdaptCheck func(plan *physical.Plan, block int, done map[int]bool) bool

// ReplanSignal is the error a run returns when its AdaptCheck requested a
// mid-run replan. It is a clean stop, not a failure: the checkpoint holds
// every completed block's boundary output and the statistics observed so
// far, ready for Resume under a re-optimized plan.
type ReplanSignal struct {
	// Block is the boundary block after which the check fired.
	Block int
	// Checkpoint restores the completed blocks on Resume.
	Checkpoint *Checkpoint
}

func (r *ReplanSignal) Error() string {
	return "replan requested at block boundary"
}
