package engine

import (
	"fmt"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/stats"
)

// rowObserver is a per-tuple statistic handler; finish records the
// completed statistic into the store at end of stream. A finish that the
// store rejects marks the statistic degraded on the collector rather than
// failing the pipeline — by then the data work is already done.
type rowObserver interface {
	observe(data.Row)
	finish()
}

// cardObserver counts tuples.
type cardObserver struct {
	col  *collector
	stat stats.Stat
	n    int64
}

func (c *cardObserver) observe(data.Row) { c.n++ }
func (c *cardObserver) finish() {
	if err := c.col.store.PutScalarOnce(c.stat, c.n); err != nil {
		c.col.markFailed(c.stat, err)
	}
}

// histObserver builds an exact frequency histogram.
type histObserver struct {
	col  *collector
	stat stats.Stat
	cols []int
	h    *stats.Histogram
	vals []int64
	err  error
}

func (h *histObserver) observe(r data.Row) {
	for i, c := range h.cols {
		h.vals[i] = r[c]
	}
	if err := h.h.Inc(h.vals, 1); err != nil && h.err == nil {
		h.err = err
	}
}
func (h *histObserver) finish() {
	if h.err != nil {
		h.col.markFailed(h.stat, h.err)
		return
	}
	if err := h.col.store.PutHistOnce(h.stat, h.h); err != nil {
		h.col.markFailed(h.stat, err)
	}
}

// distinctObserver counts distinct combinations.
type distinctObserver struct {
	col  *collector
	stat stats.Stat
	cols []int
	set  keySet
	vals []int64
}

func (d *distinctObserver) observe(r data.Row) {
	for i, c := range d.cols {
		d.vals[i] = r[c]
	}
	d.set.add(d.vals)
}
func (d *distinctObserver) finish() {
	if err := d.col.store.PutScalarOnce(d.stat, int64(d.set.len())); err != nil {
		d.col.markFailed(d.stat, err)
	}
}

// hllObserver sketches a distinct count with a fixed register budget. Each
// worker shard hashes its rows into its own registers; the register-max
// merge makes the final sketch identical to a sequential observation at
// any worker count.
type hllObserver struct {
	col  *collector
	stat stats.Stat
	cols []int
	h    *stats.HLL
	vals []int64
}

func (o *hllObserver) observe(r data.Row) {
	for i, c := range o.cols {
		o.vals[i] = r[c]
	}
	o.h.Add(o.vals...)
}
func (o *hllObserver) finish() {
	if err := o.col.store.PutHLLOnce(o.stat, o.h); err != nil {
		o.col.markFailed(o.stat, err)
	}
}

// cmObserver sketches a single-attribute frequency distribution with a
// count-min over the tap's compile-time bucket spec.
type cmObserver struct {
	col    *collector
	stat   stats.Stat
	colIdx int
	cm     *stats.CMH
}

func (o *cmObserver) observe(r data.Row) { o.cm.Observe(r[o.colIdx]) }
func (o *cmObserver) finish() {
	if err := o.col.store.PutCMOnce(o.stat, o.cm); err != nil {
		o.col.markFailed(o.stat, err)
	}
}

// mergeObserver folds another shard of the same statistic into this one.
// The parallel engine gives each worker its own observer shard (so per-row
// observation never contends) and merges the shards after the operator
// drains; because counts, bucket frequencies and distinct sets are
// order-insensitive, the merged value is identical to a sequential
// observation.
func (c *cardObserver) mergeShard(o rowObserver) error {
	s, ok := o.(*cardObserver)
	if !ok {
		return fmt.Errorf("merge shard: card vs %T", o)
	}
	c.n += s.n
	return nil
}

func (h *histObserver) mergeShard(o rowObserver) error {
	s, ok := o.(*histObserver)
	if !ok {
		return fmt.Errorf("merge shard: hist vs %T", o)
	}
	if s.err != nil && h.err == nil {
		h.err = s.err
	}
	return h.h.Merge(s.h)
}

func (d *distinctObserver) mergeShard(o rowObserver) error {
	s, ok := o.(*distinctObserver)
	if !ok {
		return fmt.Errorf("merge shard: distinct vs %T", o)
	}
	d.set.union(&s.set)
	return nil
}

func (o *hllObserver) mergeShard(other rowObserver) error {
	s, ok := other.(*hllObserver)
	if !ok {
		return fmt.Errorf("merge shard: hll vs %T", other)
	}
	return o.h.Merge(s.h)
}

func (o *cmObserver) mergeShard(other rowObserver) error {
	s, ok := other.(*cmObserver)
	if !ok {
		return fmt.Errorf("merge shard: cm vs %T", other)
	}
	return o.cm.Merge(s.cm)
}

// shardMerger is implemented by every built-in observer; external test
// observers need not implement it (they are never sharded).
type shardMerger interface {
	mergeShard(rowObserver) error
}

// mergeShards folds the worker shards (one []rowObserver per worker, all
// built from the same tap list) into the first shard and finishes it,
// recording the merged statistics into the store.
func mergeShards(shards [][]rowObserver) error {
	if len(shards) == 0 {
		return nil
	}
	base := shards[0]
	for _, shard := range shards[1:] {
		if len(shard) != len(base) {
			return fmt.Errorf("merge shards: observer count mismatch (%d vs %d)", len(shard), len(base))
		}
		for i, o := range shard {
			m, ok := base[i].(shardMerger)
			if !ok {
				return fmt.Errorf("merge shards: %T cannot merge", base[i])
			}
			if err := m.mergeShard(o); err != nil {
				return err
			}
		}
	}
	for _, o := range base {
		o.finish()
	}
	return nil
}

// observersFor builds the per-row handlers for compiled taps. The physical
// compiler already bound every tap's columns, so construction cannot fail;
// a nil collector yields no observers.
func observersFor(col *collector, taps []physical.Tap) []rowObserver {
	if col == nil {
		return nil
	}
	var out []rowObserver
	for _, t := range taps {
		switch t.Stat.Kind {
		case stats.Card:
			out = append(out, &cardObserver{col: col, stat: t.Stat})
		case stats.Hist:
			out = append(out, &histObserver{
				col: col, stat: t.Stat, cols: t.Cols,
				h: stats.NewHistogram(t.Stat.Attrs...), vals: make([]int64, len(t.Cols)),
			})
		case stats.Distinct:
			out = append(out, &distinctObserver{
				col: col, stat: t.Stat, cols: t.Cols,
				set: newKeySet(), vals: make([]int64, len(t.Cols)),
			})
		case stats.HLLDistinct:
			out = append(out, &hllObserver{
				col: col, stat: t.Stat, cols: t.Cols,
				h: stats.NewHLL(stats.DefaultHLLP), vals: make([]int64, len(t.Cols)),
			})
		case stats.CMHist:
			out = append(out, &cmObserver{
				col: col, stat: t.Stat, colIdx: t.Cols[0],
				cm: stats.NewCMH(t.Spec, stats.DefaultCMDepth, stats.DefaultCMWidth),
			})
		}
	}
	return out
}
