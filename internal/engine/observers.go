package engine

import (
	"fmt"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// rowObserver is a per-tuple statistic handler; finish records the
// completed statistic into the store at end of stream.
type rowObserver interface {
	observe(data.Row)
	finish()
}

// cardObserver counts tuples.
type cardObserver struct {
	taps *tapSet
	stat stats.Stat
	n    int64
}

func (c *cardObserver) observe(data.Row) { c.n++ }
func (c *cardObserver) finish() {
	c.taps.store.PutScalarOnce(c.stat, c.n)
}

// histObserver builds an exact frequency histogram.
type histObserver struct {
	taps *tapSet
	stat stats.Stat
	cols []int
	h    *stats.Histogram
	vals []int64
}

func (h *histObserver) observe(r data.Row) {
	for i, c := range h.cols {
		h.vals[i] = r[c]
	}
	h.h.Inc(h.vals, 1)
}
func (h *histObserver) finish() {
	h.taps.store.PutHistOnce(h.stat, h.h)
}

// distinctObserver counts distinct combinations.
type distinctObserver struct {
	taps *tapSet
	stat stats.Stat
	cols []int
	seen map[string]bool
	vals []int64
}

func (d *distinctObserver) observe(r data.Row) {
	for i, c := range d.cols {
		d.vals[i] = r[c]
	}
	d.seen[rowKey(d.vals)] = true
}
func (d *distinctObserver) finish() {
	d.taps.store.PutScalarOnce(d.stat, int64(len(d.seen)))
}

// mergeObserver folds another shard of the same statistic into this one.
// The parallel engine gives each worker its own observer shard (so per-row
// observation never contends) and merges the shards after the operator
// drains; because counts, bucket frequencies and distinct sets are
// order-insensitive, the merged value is identical to a sequential
// observation.
func (c *cardObserver) mergeShard(o rowObserver) error {
	s, ok := o.(*cardObserver)
	if !ok {
		return fmt.Errorf("merge shard: card vs %T", o)
	}
	c.n += s.n
	return nil
}

func (h *histObserver) mergeShard(o rowObserver) error {
	s, ok := o.(*histObserver)
	if !ok {
		return fmt.Errorf("merge shard: hist vs %T", o)
	}
	return h.h.Merge(s.h)
}

func (d *distinctObserver) mergeShard(o rowObserver) error {
	s, ok := o.(*distinctObserver)
	if !ok {
		return fmt.Errorf("merge shard: distinct vs %T", o)
	}
	for k := range s.seen {
		d.seen[k] = true
	}
	return nil
}

// shardMerger is implemented by every built-in observer; external test
// observers need not implement it (they are never sharded).
type shardMerger interface {
	mergeShard(rowObserver) error
}

// mergeShards folds the worker shards (one []rowObserver per worker, all
// built from the same statistic list) into the first shard and finishes it,
// recording the merged statistics into the store.
func mergeShards(shards [][]rowObserver) error {
	if len(shards) == 0 {
		return nil
	}
	base := shards[0]
	for _, shard := range shards[1:] {
		if len(shard) != len(base) {
			return fmt.Errorf("merge shards: observer count mismatch (%d vs %d)", len(shard), len(base))
		}
		for i, o := range shard {
			m, ok := base[i].(shardMerger)
			if !ok {
				return fmt.Errorf("merge shards: %T cannot merge", base[i])
			}
			if err := m.mergeShard(o); err != nil {
				return err
			}
		}
	}
	for _, o := range base {
		o.finish()
	}
	return nil
}

// observersFor builds the per-row handlers for the given statistics against
// a record-set schema.
func observersFor(taps *tapSet, list []stats.Stat, attrs []workflow.Attr) ([]rowObserver, error) {
	var out []rowObserver
	for _, s := range list {
		switch s.Kind {
		case stats.Card:
			out = append(out, &cardObserver{taps: taps, stat: s})
		case stats.Hist:
			cols, err := taps.colsForSchema(s, attrs)
			if err != nil {
				return nil, err
			}
			out = append(out, &histObserver{
				taps: taps, stat: s, cols: cols,
				h: stats.NewHistogram(s.Attrs...), vals: make([]int64, len(cols)),
			})
		case stats.Distinct:
			cols, err := taps.colsForSchema(s, attrs)
			if err != nil {
				return nil, err
			}
			out = append(out, &distinctObserver{
				taps: taps, stat: s, cols: cols,
				seen: make(map[string]bool), vals: make([]int64, len(cols)),
			})
		}
	}
	return out, nil
}
