package engine

import (
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// rowObserver is a per-tuple statistic handler; finish records the
// completed statistic into the store at end of stream.
type rowObserver interface {
	observe(data.Row)
	finish()
}

// cardObserver counts tuples.
type cardObserver struct {
	taps *tapSet
	stat stats.Stat
	n    int64
}

func (c *cardObserver) observe(data.Row) { c.n++ }
func (c *cardObserver) finish() {
	if !c.taps.store.Has(c.stat) {
		c.taps.store.PutScalar(c.stat, c.n)
	}
}

// histObserver builds an exact frequency histogram.
type histObserver struct {
	taps *tapSet
	stat stats.Stat
	cols []int
	h    *stats.Histogram
	vals []int64
}

func (h *histObserver) observe(r data.Row) {
	for i, c := range h.cols {
		h.vals[i] = r[c]
	}
	h.h.Inc(h.vals, 1)
}
func (h *histObserver) finish() {
	if !h.taps.store.Has(h.stat) {
		h.taps.store.PutHist(h.stat, h.h)
	}
}

// distinctObserver counts distinct combinations.
type distinctObserver struct {
	taps *tapSet
	stat stats.Stat
	cols []int
	seen map[string]bool
	vals []int64
}

func (d *distinctObserver) observe(r data.Row) {
	for i, c := range d.cols {
		d.vals[i] = r[c]
	}
	d.seen[rowKey(d.vals)] = true
}
func (d *distinctObserver) finish() {
	if !d.taps.store.Has(d.stat) {
		d.taps.store.PutScalar(d.stat, int64(len(d.seen)))
	}
}

// observersFor builds the per-row handlers for the given statistics against
// a record-set schema.
func observersFor(taps *tapSet, list []stats.Stat, attrs []workflow.Attr) ([]rowObserver, error) {
	var out []rowObserver
	for _, s := range list {
		switch s.Kind {
		case stats.Card:
			out = append(out, &cardObserver{taps: taps, stat: s})
		case stats.Hist:
			cols, err := taps.colsForSchema(s, attrs)
			if err != nil {
				return nil, err
			}
			out = append(out, &histObserver{
				taps: taps, stat: s, cols: cols,
				h: stats.NewHistogram(s.Attrs...), vals: make([]int64, len(cols)),
			})
		case stats.Distinct:
			cols, err := taps.colsForSchema(s, attrs)
			if err != nil {
				return nil, err
			}
			out = append(out, &distinctObserver{
				taps: taps, stat: s, cols: cols,
				seen: make(map[string]bool), vals: make([]int64, len(cols)),
			})
		}
	}
	return out, nil
}
