package engine

import (
	"context"
	"fmt"
	"time"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/faults"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// StreamEngine executes compiled physical plans in pipelined (Volcano)
// mode: tuples flow through operator iterators, statistic handlers fire per
// tuple, and only hash-join build sides, block inputs and block outputs are
// materialized. It interprets the same physical IR as the batch Engine —
// operator semantics, tap placement and reject routing are decided once, by
// the compiler — so its results and observations are row-for-row identical
// to Engine's (the tests cross-check), and either mode can back the
// optimization loop.
type StreamEngine struct {
	An  *workflow.Analysis
	DB  DB
	Reg Registry
	// Workers bounds block-level concurrency and, within each block,
	// partitions chain and join-probe pipelines across goroutines with
	// per-worker statistic shards (merged after the operator drains, so
	// observed values are identical to a sequential run). Values <= 1 run
	// the classic single-goroutine iterators.
	Workers int
	// MaxRows caps the total intermediate rows one run may produce (the
	// work metric Result.Rows); exceeding it aborts the run with a clear
	// error instead of letting a skewed join order blow up memory. 0 (the
	// default) runs unguarded.
	MaxRows int64
	// CollectMetrics populates per-operator runtime metrics
	// (physical.Node.Metrics) during the run and attaches the snapshot to
	// Result.Metrics. Off by default: the hot paths skip all timing work.
	CollectMetrics bool
	// Faults injects deterministic failures at operator, source, tap and
	// budget sites (nil, the default, injects nothing and costs nothing).
	// Sites are engine-independent, so the same injector produces the same
	// fault pattern here and in the batch Engine.
	Faults *faults.Injector
	// RetryMax bounds per-block attempts when a transient fault aborts one
	// (0 = the default of 3).
	RetryMax int
	// RetryBackoff is the base delay between attempts, doubling per retry,
	// capped at 100ms (0 = the default of 1ms).
	RetryBackoff time.Duration
	// RowMode selects the legacy row-at-a-time iterators instead of the
	// default columnar chunk pipeline. The row interpreter is the reference
	// implementation the equivalence suite diffs the columnar executor
	// against on every workflow.
	RowMode bool
	// AdaptCheck, when non-nil, is consulted after every committed block;
	// returning true stops the run with a *ReplanSignal. Forces sequential
	// block scheduling (see adapt.go).
	AdaptCheck AdaptCheck
	// Dispatch, when non-nil, schedules blocks onto remote workers through
	// the dispatcher instead of local goroutines (see dispatch.go). An
	// AdaptCheck takes precedence: adaptive runs need the sequential local
	// scheduler, so a run with both set executes locally.
	Dispatch BlockDispatcher
}

// NewStream returns a streaming engine.
func NewStream(an *workflow.Analysis, db DB, reg Registry) *StreamEngine {
	if reg == nil {
		reg = DefaultRegistry()
	}
	return &StreamEngine{An: an, DB: db, Reg: reg}
}

// Run executes the workflow with each block's initial join tree.
func (e *StreamEngine) Run() (*Result, error) { return e.RunPlans(nil, nil, nil) }

// RunObserved executes the initial plan instrumented with the given
// statistics.
func (e *StreamEngine) RunObserved(res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.RunPlans(nil, res, observe)
}

// RunPlans mirrors Engine.RunPlans in streaming mode.
func (e *StreamEngine) RunPlans(plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.runPlans(context.Background(), nil, plans, res, observe, false)
}

// RunPlansCtx is RunPlans under a context: cancellation stops the run
// promptly; on error the partial result rides alongside.
func (e *StreamEngine) RunPlansCtx(ctx context.Context, plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.runPlans(ctx, nil, plans, res, observe, false)
}

// RunPlansObserving is RunPlans without the initial-plan observability
// filter (see Engine.RunPlansObserving).
func (e *StreamEngine) RunPlansObserving(plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.runPlans(context.Background(), nil, plans, res, observe, true)
}

// RunPlansObservingCtx is RunPlansObserving under a context.
func (e *StreamEngine) RunPlansObservingCtx(ctx context.Context, plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.runPlans(ctx, nil, plans, res, observe, true)
}

// Resume continues a run from a checkpoint, re-executing only the missing
// blocks (see Engine.Resume — the checkpoint format is engine-independent).
func (e *StreamEngine) Resume(ctx context.Context, cp *Checkpoint, plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.runPlans(ctx, cp, plans, res, observe, false)
}

// ResumeObserving is Resume without the initial-plan observability filter —
// the adaptive driver's splice path, where the re-optimized cone's plans no
// longer match the initial plan's observation points.
func (e *StreamEngine) ResumeObserving(ctx context.Context, cp *Checkpoint, plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.runPlans(ctx, cp, plans, res, observe, true)
}

func (e *StreamEngine) runPlans(ctx context.Context, cp *Checkpoint, plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat, anyPoint bool) (*Result, error) {
	plan, err := physical.Compile(e.An, e.DB, physical.Options{
		Plans: plans, Res: res, Observe: observe, AnyPoint: anyPoint, Reg: e.Reg,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{
		BlockOut:     make(map[int]*data.Table),
		Sinks:        make(map[string]*data.Table),
		Materialized: make(map[string]*data.Table),
	}
	seedFrom(out, cp)
	var col *collector
	if res != nil {
		col = newCollector()
		if cp != nil && cp.Observed != nil {
			col.store = cp.Observed
		}
		out.Observed = col.store
	}
	env := newRunEnv(ctx, newRowBudget(e.MaxRows), e.Faults, e.RetryMax, e.RetryBackoff)
	env.adapt = e.AdaptCheck
	runner := func(bp *physical.BlockPlan, sink *blockSink) (*data.Table, error) {
		return e.runVecStreamBlock(bp, col, sink)
	}
	if e.RowMode {
		runner = func(bp *physical.BlockPlan, sink *blockSink) (*data.Table, error) {
			return e.runStreamBlock(bp, col, sink)
		}
	}
	if e.Dispatch != nil && env.adapt == nil {
		err = runBlocksDist(plan, e.Workers, env, out, col, e.Dispatch, &DispatchSpec{
			Plans: plans, Observe: observe, Instrument: res != nil, AnyPoint: anyPoint,
		}, runner)
	} else {
		err = runBlocksDAG(plan, e.Workers, env, out, runner)
	}
	out.Retries = env.retries.Load()
	out.Degraded = col.failedStats()
	if e.CollectMetrics {
		out.Metrics = plan.MetricsSnapshot()
	}
	if err != nil {
		return out, err
	}
	if err := routeSinks(e.An, out); err != nil {
		return out, err
	}
	return out, nil
}

// metOf returns the node's metrics accumulator when collection is on, nil
// otherwise (a nil accumulator keeps every hot path timing-free).
func metOf(n *physical.Node, on bool) *physical.Metrics {
	if !on {
		return nil
	}
	return &n.Metrics
}

// stream pairs an iterator with its schema.
type stream struct {
	it    Iterator
	attrs []workflow.Attr
}

// runStreamBlock pipelines one compiled block: every input chain streams
// into a materialized cooked input, the join DAG probes along its streamed
// spine, and the pinned top operators stream over the joined output.
func (e *StreamEngine) runStreamBlock(bp *physical.BlockPlan, col *collector, out *blockSink) (*data.Table, error) {
	inputs := make([]*data.Table, len(bp.Chains))
	for i, chain := range bp.Chains {
		tbl, err := e.runStreamChain(bp, chain, col, out)
		if err != nil {
			return nil, fmt.Errorf("input %d (%s): %w", i, bp.Block.Inputs[i].Name, err)
		}
		inputs[i] = tbl
	}
	var result *data.Table
	switch {
	case bp.JoinRoot == nil:
		// Join-free block: the compiler guarantees a single input.
		result = inputs[0]
	case bp.JoinRoot.Kind != physical.OpHashJoin:
		// Single-leaf tree: the root is the cooked chain end, already
		// tapped and counted by the chain pipeline.
		result = inputs[bp.JoinRoot.ChainInput]
	case e.Workers > 1:
		tbl, err := e.runSpine(bp.JoinRoot, inputs, col, out, "block")
		if err != nil {
			return nil, err
		}
		result = tbl
	default:
		st, auxes, err := e.buildStream(bp.JoinRoot, inputs, col, out)
		if err != nil {
			return nil, err
		}
		tbl, err := drain(st.it, "block", st.attrs)
		if err != nil {
			return nil, err
		}
		// Post-stream auxiliary reject joins (union–division counters).
		for _, a := range auxes {
			a.run(col, inputs)
		}
		result = tbl
	}
	for _, n := range bp.TopNodes {
		if err := out.ctxErr(); err != nil {
			return nil, err
		}
		if err := out.opFault(n); err != nil {
			return nil, err
		}
		if n.Kind == physical.OpMaterialize {
			out.materialized[n.Rel] = result
			continue
		}
		st := opIter(n, &stream{it: &scanIter{tbl: result}, attrs: result.Attrs})
		st, err := tapFor(n, st, col, out, metOf(n, e.CollectMetrics))
		if err != nil {
			return nil, err
		}
		tbl, err := drain(st.it, result.Rel, st.attrs)
		if err != nil {
			return nil, fmt.Errorf("top op %s: %w", n.Label, err)
		}
		result = tbl
	}
	return result, nil
}

// runStreamChain streams one input chain into a materialized table, tapping
// every chain point per tuple.
func (e *StreamEngine) runStreamChain(bp *physical.BlockPlan, chain []*physical.Node, col *collector, out *blockSink) (*data.Table, error) {
	// Fault sites are checked up front for the whole chain — same sites,
	// same order as the batch interpreter's node loop.
	for _, n := range chain {
		if err := out.opFault(n); err != nil {
			return nil, err
		}
	}
	scan := chain[0]
	base := scan.Src
	if scan.FromBlock >= 0 {
		up, ok := out.upstream[scan.FromBlock]
		if !ok {
			return nil, fmt.Errorf("upstream block %d not yet executed", scan.FromBlock)
		}
		base = up
	}
	if e.Workers > 1 && len(base.Rows) >= 2*e.Workers && perRowChain(chain) {
		return e.runChainParallel(bp, chain, base, col, out)
	}
	st := &stream{it: &scanIter{tbl: base}, attrs: scan.Attrs}
	st, err := tapFor(scan, st, col, out, metOf(scan, e.CollectMetrics))
	if err != nil {
		return nil, err
	}
	for _, n := range chain[1:] {
		st = opIter(n, st)
		st, err = tapFor(n, st, col, out, metOf(n, e.CollectMetrics))
		if err != nil {
			return nil, err
		}
	}
	return drain(st.it, bp.Block.Inputs[scan.ChainInput].Name, st.attrs)
}

// opIter wraps one unary physical operator around a stream. The compiler
// already resolved columns and functions, so construction cannot fail;
// scans and materializations pass through.
func opIter(n *physical.Node, src *stream) *stream {
	switch n.Kind {
	case physical.OpFilter:
		return &stream{it: &filterIter{src: src.it, col: n.PredCol, pred: n.Pred}, attrs: n.Attrs}
	case physical.OpProject:
		return &stream{it: &projectIter{src: src.it, cols: n.Cols}, attrs: n.Attrs}
	case physical.OpTransform:
		return &stream{it: &transformIter{src: src.it, fn: n.Fn, ins: n.FnIns}, attrs: n.Attrs}
	case physical.OpGroupBy:
		return &stream{it: &groupByIter{src: src.it, cols: n.Cols}, attrs: n.Attrs}
	case physical.OpAggregateUDF:
		return &stream{it: &aggUDFIter{src: src.it, fn: n.Fn, ins: n.FnIns}, attrs: n.Attrs}
	default:
		return src
	}
}

// tapFor wraps a node's output with its compiled taps, the block's work
// counter and the run's row budget — the streaming counterpart of the batch
// engine's per-node count-and-collect. met (nil when metrics are off) is
// the node's metrics accumulator. Taps the fault injector fails permanently
// are dropped (degraded); a transient tap fault aborts the attempt.
func tapFor(n *physical.Node, src *stream, col *collector, out *blockSink, met *physical.Metrics) (*stream, error) {
	obs, err := out.observersFor(col, n.Taps)
	if err != nil {
		return nil, err
	}
	return &stream{it: &tapIter{
		src:       src.it,
		observers: obs,
		rows:      &out.rows,
		budget:    out.budget,
		ctx:       out.ctx,
		at:        n.Label,
		met:       met,
	}, attrs: src.attrs}, nil
}

// buildStream assembles the streaming pipeline for a join subtree: the
// right side of each hash join is materialized (the build), the left side
// streams and probes. Reject instrumentation and reject links ride on the
// join's miss callbacks.
func (e *StreamEngine) buildStream(n *physical.Node, inputs []*data.Table, col *collector, out *blockSink) (*stream, []*auxState, error) {
	if n.Kind != physical.OpHashJoin {
		// A chain-end leaf: already cooked, tapped and counted.
		tbl := inputs[n.ChainInput]
		return &stream{it: &scanIter{tbl: tbl}, attrs: tbl.Attrs}, nil, nil
	}
	if err := out.opFault(n); err != nil {
		return nil, nil, err
	}
	left, aux, err := e.buildStream(n.Left, inputs, col, out)
	if err != nil {
		return nil, nil, err
	}
	var right *data.Table
	if n.Right.Kind != physical.OpHashJoin {
		right = inputs[n.Right.ChainInput]
	} else {
		rs, rAux, err := e.buildStream(n.Right, inputs, col, out)
		if err != nil {
			return nil, nil, err
		}
		aux = append(aux, rAux...)
		right, err = drain(rs.it, "build", rs.attrs)
		if err != nil {
			return nil, nil, err
		}
	}
	join := &hashJoinIter{left: left.it, right: right, lc: n.LeftCol, rc: n.RightCol}
	met := metOf(n, e.CollectMetrics)

	// Streamed-side misses surface per tuple; build-side misses at Close.
	var leftSink *auxState
	var leftObs []rowObserver
	if n.LeftReject != nil {
		leftSink, leftObs, err = rejectState(n.LeftReject, n.Left.Attrs, col, out)
		if err != nil {
			return nil, nil, err
		}
		if leftSink != nil {
			leftSink.met = met
			aux = append(aux, leftSink)
		}
	}
	var link *data.Table
	if n.RejectLink != "" {
		// A designed reject link materializes the left side's misses.
		link = &data.Table{Rel: "reject", Attrs: n.Left.Attrs}
		out.materialized[n.RejectLink] = link
	}
	if leftObs != nil || leftSink != nil || link != nil {
		join.onLeftMiss = func(r data.Row) {
			observeMisses(leftObs, r, met)
			if leftSink != nil {
				leftSink.misses.Rows = append(leftSink.misses.Rows, r)
			}
			if link != nil {
				link.Rows = append(link.Rows, r)
			}
		}
		join.leftMissFinish = leftObs
	}
	if n.RightReject != nil {
		sink, obs, err := rejectState(n.RightReject, n.Right.Attrs, col, out)
		if err != nil {
			return nil, nil, err
		}
		if sink != nil {
			sink.met = met
			aux = append(aux, sink)
		}
		join.onRightMiss = func(r data.Row) {
			observeMisses(obs, r, met)
			if sink != nil {
				sink.misses.Rows = append(sink.misses.Rows, r)
			}
		}
		join.rightMissFinish = obs
	}
	// Tap the join output: SE handlers per tuple, work counter, row budget.
	st, err := tapFor(n, &stream{it: join, attrs: n.Attrs}, col, out, met)
	if err != nil {
		return nil, nil, err
	}
	return st, aux, nil
}

// observeMisses feeds one miss row to the reject observers, timing the
// observation as tap overhead when metrics are on.
func observeMisses(obs []rowObserver, r data.Row, met *physical.Metrics) {
	if met != nil && len(obs) > 0 {
		tapStart := time.Now()
		for _, o := range obs {
			o.observe(r)
		}
		met.TapNanos += time.Since(tapStart).Nanoseconds()
		return
	}
	for _, o := range obs {
		o.observe(r)
	}
}

// rejectState prepares one join side's reject instrumentation: per-row
// observers for the singleton statistics and, when two-input variants were
// compiled, a miss sink feeding the post-stream auxiliary joins. Both lists
// pass through the fault injector first.
func rejectState(rt *physical.RejectTaps, missAttrs []workflow.Attr, col *collector, out *blockSink) (*auxState, []rowObserver, error) {
	obs, err := out.observersFor(col, rt.Singles)
	if err != nil {
		return nil, nil, err
	}
	aux, err := out.liveAux(col, rt.Aux)
	if err != nil {
		return nil, nil, err
	}
	var sink *auxState
	if len(aux) > 0 {
		sink = &auxState{aux: aux, misses: &data.Table{Rel: "miss", Attrs: missAttrs}}
	}
	return sink, obs, nil
}
