package engine

import (
	"fmt"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// StreamEngine executes workflows in pipelined (Volcano) mode: tuples flow
// through operator iterators, statistic handlers fire per tuple, and only
// hash-join build sides, block inputs and block outputs are materialized.
// Its results and observations are row-for-row identical to Engine's (the
// tests cross-check), so either mode can back the optimization loop.
type StreamEngine struct {
	An  *workflow.Analysis
	DB  DB
	Reg Registry
	// Workers bounds block-level concurrency and, within each block,
	// partitions chain and join-probe pipelines across goroutines with
	// per-worker statistic shards (merged after the operator drains, so
	// observed values are identical to a sequential run). Values <= 1 run
	// the classic single-goroutine iterators.
	Workers int
}

// NewStream returns a streaming engine.
func NewStream(an *workflow.Analysis, db DB, reg Registry) *StreamEngine {
	if reg == nil {
		reg = DefaultRegistry()
	}
	return &StreamEngine{An: an, DB: db, Reg: reg}
}

// Run executes the workflow with each block's initial join tree.
func (e *StreamEngine) Run() (*Result, error) { return e.RunPlans(nil, nil, nil) }

// RunObserved executes the initial plan instrumented with the given
// statistics.
func (e *StreamEngine) RunObserved(res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.RunPlans(nil, res, observe)
}

// RunPlans mirrors Engine.RunPlans in streaming mode.
func (e *StreamEngine) RunPlans(plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error) {
	out := &Result{
		BlockOut:     make(map[int]*data.Table),
		Sinks:        make(map[string]*data.Table),
		Materialized: make(map[string]*data.Table),
	}
	var taps *tapSet
	if res != nil {
		var err error
		taps, err = newTapSet(res, observe, false)
		if err != nil {
			return nil, err
		}
		out.Observed = taps.store
	}
	err := runBlocksDAG(e.An, plans, e.Workers, out, func(blk *workflow.Block, tree *workflow.JoinTree, sink *blockSink) (*data.Table, error) {
		return e.runBlock(blk, tree, taps, sink)
	})
	if err != nil {
		return nil, err
	}
	if err := routeSinks(e.An, out); err != nil {
		return nil, err
	}
	return out, nil
}

// stream pairs an iterator with its schema.
type stream struct {
	it    Iterator
	attrs []workflow.Attr
}

func (e *StreamEngine) runBlock(blk *workflow.Block, tree *workflow.JoinTree, taps *tapSet, out *blockSink) (*data.Table, error) {
	// Materialize inputs through streaming chains (chain-point handlers
	// fire per tuple on the way).
	inputs := make([]*data.Table, len(blk.Inputs))
	for i := range blk.Inputs {
		tbl, err := e.runChain(blk, i, taps, out)
		if err != nil {
			return nil, fmt.Errorf("input %d (%s): %w", i, blk.Inputs[i].Name, err)
		}
		inputs[i] = tbl
	}
	var result *data.Table
	if tree == nil {
		if len(inputs) != 1 {
			return nil, fmt.Errorf("join-free block with %d inputs", len(inputs))
		}
		result = inputs[0]
	} else if e.Workers > 1 && !tree.IsLeaf() {
		tbl, err := e.runTreeParallel(blk, tree, inputs, taps, out)
		if err != nil {
			return nil, err
		}
		result = tbl
	} else {
		st, se, aux, err := e.buildTree(blk, tree, inputs, taps, out)
		if err != nil {
			return nil, err
		}
		_ = se
		// The root's rows were already counted by its output tap.
		tbl, err := drain(st.it, "block", st.attrs)
		if err != nil {
			return nil, err
		}
		result = tbl
		// Post-stream auxiliary reject joins (union–division counters).
		for _, a := range aux {
			a.run(blk, taps, inputs)
		}
	}
	for _, op := range blk.TopOps {
		if op.Kind == workflow.KindMaterialize {
			out.materialized[op.Rel] = result
			continue
		}
		st, err := e.opStream(&stream{it: &scanIter{tbl: result}, attrs: result.Attrs}, op)
		if err != nil {
			return nil, fmt.Errorf("top op %q: %w", op.ID, err)
		}
		tbl, err := drain(st.it, result.Rel, st.attrs)
		if err != nil {
			return nil, err
		}
		out.rows += tbl.Card()
		result = tbl
	}
	return result, nil
}

// runChain streams one block input's pushed-down operators into a
// materialized table, tapping every chain point per tuple.
func (e *StreamEngine) runChain(blk *workflow.Block, i int, taps *tapSet, out *blockSink) (*data.Table, error) {
	in := blk.Inputs[i]
	var base *data.Table
	switch {
	case in.SourceRel != "":
		src, ok := e.DB[in.SourceRel]
		if !ok {
			return nil, fmt.Errorf("relation %q not in database", in.SourceRel)
		}
		base = src
	case in.FromBlock >= 0:
		up, ok := out.upstream[in.FromBlock]
		if !ok {
			return nil, fmt.Errorf("upstream block %d not yet executed", in.FromBlock)
		}
		base = up
	default:
		return nil, fmt.Errorf("input %d has neither source nor upstream block", i)
	}
	if e.Workers > 1 && len(base.Rows) >= 2*e.Workers {
		return e.runChainParallel(blk, i, base, taps, out)
	}
	st := &stream{it: &scanIter{tbl: base}, attrs: base.Attrs}
	st, err := e.tapChainPoint(st, blk, i, 0, len(in.Ops), taps, out)
	if err != nil {
		return nil, err
	}
	for d, op := range in.Ops {
		st, err = e.opStream(st, op)
		if err != nil {
			return nil, fmt.Errorf("chain op %q: %w", op.ID, err)
		}
		st, err = e.tapChainPoint(st, blk, i, d+1, len(in.Ops), taps, out)
		if err != nil {
			return nil, err
		}
	}
	tbl, err := drain(st.it, in.Name, st.attrs)
	if err != nil {
		return nil, err
	}
	return tbl, nil
}

// tapChainPoint wraps a stream with the observers registered at a chain
// point (the cooked end doubles as the singleton SE) and the work counter.
func (e *StreamEngine) tapChainPoint(st *stream, blk *workflow.Block, input, depth, chainLen int, taps *tapSet, out *blockSink) (*stream, error) {
	obs, err := observersFor(taps, chainPointStats(taps, blk, input, depth, chainLen), st.attrs)
	if err != nil {
		return nil, err
	}
	return &stream{it: &tapIter{src: st.it, observers: obs, rows: &out.rows}, attrs: st.attrs}, nil
}

// chainPointStats lists the statistics registered at a chain point (the
// cooked end doubles as the singleton SE). Nil taps yield nil.
func chainPointStats(taps *tapSet, blk *workflow.Block, input, depth, chainLen int) []stats.Stat {
	if taps == nil {
		return nil
	}
	var out []stats.Stat
	out = append(out, taps.chain[[3]int{blk.Index, input, depth}]...)
	if depth == chainLen {
		out = append(out, taps.se[seKey{blk.Index, expr.NewSet(input)}]...)
	}
	return out
}

// auxReject remembers a pending union–division auxiliary join: the misses
// of input t (w.r.t. edge f) joined with a single partner input.
type auxReject struct {
	t, f   int
	misses *data.Table
}

// run executes the auxiliary joins for every registered two-input reject
// statistic at (t, f).
func (a *auxReject) run(blk *workflow.Block, taps *tapSet, inputs []*data.Table) {
	for _, s := range taps.reject[[3]int{blk.Index, a.t, a.f}] {
		rest := s.Target.Set.Without(expr.NewSet(a.t))
		if rest.Len() != 1 {
			continue
		}
		r := rest.Lowest()
		g := -1
		for j, e := range blk.Joins {
			if e.LeftInput == a.t && e.RightInput == r || e.LeftInput == r && e.RightInput == a.t {
				g = j
				break
			}
		}
		if g < 0 || inputs[r] == nil {
			continue
		}
		la, ra := blk.Joins[g].LeftAttr, blk.Joins[g].RightAttr
		if a.misses.Col(la) < 0 {
			la, ra = ra, la
		}
		joined, _, _, err := hashJoin(a.misses, inputs[r], la, ra)
		if err != nil {
			continue
		}
		taps.collect(s, joined)
	}
}

// buildTree assembles the streaming join pipeline for a join tree: the
// right side of each join is materialized (the hash build), the left side
// streams.
func (e *StreamEngine) buildTree(blk *workflow.Block, t *workflow.JoinTree, inputs []*data.Table, taps *tapSet, out *blockSink) (*stream, expr.Set, []*auxReject, error) {
	if t.IsLeaf() {
		tbl := inputs[t.Leaf]
		// Chain taps already observed the cooked input; the leaf stream
		// needs no further handlers.
		return &stream{it: &scanIter{tbl: tbl}, attrs: tbl.Attrs}, expr.NewSet(t.Leaf), nil, nil
	}
	left, lse, lAux, err := e.buildTree(blk, t.Left, inputs, taps, out)
	if err != nil {
		return nil, 0, nil, err
	}
	rightStream, rse, rAux, err := e.buildTree(blk, t.Right, inputs, taps, out)
	if err != nil {
		return nil, 0, nil, err
	}
	aux := append(lAux, rAux...)
	// Materialize the build side.
	right, err := drain(rightStream.it, "build", rightStream.attrs)
	if err != nil {
		return nil, 0, nil, err
	}
	edge := blk.Joins[t.Join]
	la, ra := edge.LeftAttr, edge.RightAttr
	lc, err := colsOf(left.attrs, []workflow.Attr{la})
	if err != nil {
		la, ra = ra, la
		lc, err = colsOf(left.attrs, []workflow.Attr{la})
		if err != nil {
			return nil, 0, nil, fmt.Errorf("join %q: %w", edge.Node, err)
		}
	}
	rc, err := colsOf(right.Attrs, []workflow.Attr{ra})
	if err != nil {
		return nil, 0, nil, fmt.Errorf("join %q: %w", edge.Node, err)
	}

	join := &hashJoinIter{left: left.it, right: right, lc: lc[0], rc: rc[0]}
	se := lse.Union(rse)

	// Reject handlers: streamed-side misses surface per tuple; build-side
	// misses at Close.
	var missSinks []*auxReject
	if taps != nil {
		if lse.Len() == 1 {
			tIdx := lse.Lowest()
			sink, obs, err := rejectHandlers(blk, taps, tIdx, t.Join, left.attrs)
			if err != nil {
				return nil, 0, nil, err
			}
			if sink != nil {
				missSinks = append(missSinks, sink)
			}
			if obs != nil || sink != nil {
				join.onLeftMiss = func(r data.Row) {
					for _, o := range obs {
						o.observe(r)
					}
					if sink != nil {
						sink.misses.Rows = append(sink.misses.Rows, r)
					}
				}
				join.leftMissFinish = obs
			}
		}
		if rse.Len() == 1 {
			tIdx := rse.Lowest()
			sink, obs, err := rejectHandlers(blk, taps, tIdx, t.Join, right.Attrs)
			if err != nil {
				return nil, 0, nil, err
			}
			if sink != nil {
				missSinks = append(missSinks, sink)
			}
			if obs != nil || sink != nil {
				join.onRightMiss = func(r data.Row) {
					for _, o := range obs {
						o.observe(r)
					}
					if sink != nil {
						sink.misses.Rows = append(sink.misses.Rows, r)
					}
				}
				join.rightMissFinish = obs
			}
		}
	}
	// A designed reject link materializes the left side's misses.
	if n := e.An.Graph.Node(edge.Node); n != nil && n.Join != nil && n.Join.RejectLink {
		sink := &data.Table{Rel: "reject", Attrs: left.attrs}
		prev := join.onLeftMiss
		join.onLeftMiss = func(r data.Row) {
			if prev != nil {
				prev(r)
			}
			sink.Rows = append(sink.Rows, r)
		}
		out.materialized[string(edge.Node)+".reject"] = sink
	}
	aux = append(aux, missSinks...)

	attrs := append(append([]workflow.Attr(nil), left.attrs...), right.Attrs...)
	// Tap the join output: SE handlers per tuple + work counter.
	var obs []rowObserver
	if taps != nil {
		var err error
		obs, err = observersFor(taps, taps.se[seKey{blk.Index, se}], attrs)
		if err != nil {
			return nil, 0, nil, err
		}
	}
	return &stream{it: &tapIter{src: join, observers: obs, rows: &out.rows}, attrs: attrs}, se, aux, nil
}

// rejectHandlers prepares the per-row observers for singleton reject
// statistics at (t, f) and, when two-input reject statistics are
// registered, a miss sink feeding the post-stream auxiliary join.
func rejectHandlers(blk *workflow.Block, taps *tapSet, t, f int, attrs []workflow.Attr) (*auxReject, []rowObserver, error) {
	var singles []stats.Stat
	needAux := false
	for _, s := range taps.reject[[3]int{blk.Index, t, f}] {
		if s.Target.Set.Len() == 1 {
			singles = append(singles, s)
		} else {
			needAux = true
		}
	}
	obs, err := observersFor(taps, singles, attrs)
	if err != nil {
		return nil, nil, err
	}
	var sink *auxReject
	if needAux {
		sink = &auxReject{t: t, f: f, misses: &data.Table{Rel: "miss", Attrs: attrs}}
	}
	return sink, obs, nil
}

// opStream wraps one unary operator around a stream.
func (e *StreamEngine) opStream(st *stream, op *workflow.Node) (*stream, error) {
	switch op.Kind {
	case workflow.KindSelect:
		cols, err := colsOf(st.attrs, []workflow.Attr{op.Pred.Attr})
		if err != nil {
			return nil, err
		}
		return &stream{it: &filterIter{src: st.it, col: cols[0], pred: op.Pred}, attrs: st.attrs}, nil
	case workflow.KindProject:
		cols, err := colsOf(st.attrs, op.Cols)
		if err != nil {
			return nil, err
		}
		return &stream{it: &projectIter{src: st.it, cols: cols}, attrs: append([]workflow.Attr(nil), op.Cols...)}, nil
	case workflow.KindTransform:
		fn, ok := e.Reg[op.Transform.Fn]
		if !ok {
			return nil, fmt.Errorf("unknown UDF %q", op.Transform.Fn)
		}
		cols, err := colsOf(st.attrs, op.Transform.Ins)
		if err != nil {
			return nil, err
		}
		attrs := append(append([]workflow.Attr(nil), st.attrs...), op.Transform.Out)
		return &stream{it: &transformIter{src: st.it, fn: fn, ins: cols}, attrs: attrs}, nil
	case workflow.KindGroupBy:
		cols, err := colsOf(st.attrs, op.Cols)
		if err != nil {
			return nil, err
		}
		return &stream{it: &groupByIter{src: st.it, cols: cols}, attrs: append([]workflow.Attr(nil), op.Cols...)}, nil
	case workflow.KindAggregateUDF:
		fn, ok := e.Reg[op.Transform.Fn]
		if !ok {
			return nil, fmt.Errorf("unknown aggregate UDF %q", op.Transform.Fn)
		}
		cols, err := colsOf(st.attrs, op.Transform.Ins)
		if err != nil {
			return nil, err
		}
		attrs := make([]workflow.Attr, 0, len(op.Transform.Ins)+1)
		attrs = append(attrs, op.Transform.Ins...)
		attrs = append(attrs, op.Transform.Out)
		return &stream{it: &aggUDFIter{src: st.it, fn: fn, ins: cols}, attrs: attrs}, nil
	case workflow.KindMaterialize:
		// Handled by the caller: the drained result is recorded.
		return st, nil
	default:
		return nil, fmt.Errorf("unexpected operator kind %v", op.Kind)
	}
}
