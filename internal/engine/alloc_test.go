package engine

import (
	"testing"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Regression tests for the group-by allocation bug: both row interpreters
// used to allocate a fresh key row for every input row, so grouping N rows
// cost at least N allocations regardless of how few distinct keys existed.
// The fixed paths reuse one scratch key and clone only on first-seen
// insert, so steady-state allocation scales with the distinct count, not
// the row count.

const (
	allocRows     = 8192
	allocDistinct = 32
)

func groupInput() *data.Table {
	tbl := &data.Table{
		Rel:   "G",
		Attrs: []workflow.Attr{{Rel: "G", Col: "a"}, {Rel: "G", Col: "b"}, {Rel: "G", Col: "c"}},
	}
	for i := 0; i < allocRows; i++ {
		tbl.Rows = append(tbl.Rows, data.Row{int64(i % allocDistinct), int64(i % 4), int64(i)})
	}
	return tbl
}

// TestGroupByAllocsBatch pins the batch interpreter's group-by path. The
// bound is generous (map growth, output slice growth, key-byte copies) but
// far below one allocation per input row — the bug this guards against.
func TestGroupByAllocsBatch(t *testing.T) {
	in := groupInput()
	input := &physical.Node{ID: 0}
	n := &physical.Node{
		ID: 1, Kind: physical.OpGroupBy, Label: "groupby",
		Cols:  []int{0, 1},
		Attrs: in.Attrs[:2],
		Input: input,
	}
	tables := []*data.Table{in, nil}
	sink := newBlockSink(nil)
	allocs := testing.AllocsPerRun(5, func() {
		tbl, err := evalNode(nil, n, tables, nil, sink, nil)
		if err != nil {
			t.Fatalf("evalNode: %v", err)
		}
		if len(tbl.Rows) != allocDistinct {
			t.Fatalf("groups = %d, want %d", len(tbl.Rows), allocDistinct)
		}
	})
	if allocs > allocRows/8 {
		t.Fatalf("batch group-by allocates %.0f per run over %d rows; scaling with rows, not groups", allocs, allocRows)
	}
}

// TestGroupByAllocsStream pins the streaming iterator's group-by path.
func TestGroupByAllocsStream(t *testing.T) {
	in := groupInput()
	allocs := testing.AllocsPerRun(5, func() {
		g := &groupByIter{src: &scanIter{tbl: in}, cols: []int{0, 1}}
		if err := g.Open(); err != nil {
			t.Fatalf("Open: %v", err)
		}
		if len(g.out) != allocDistinct {
			t.Fatalf("groups = %d, want %d", len(g.out), allocDistinct)
		}
	})
	if allocs > allocRows/8 {
		t.Fatalf("stream group-by allocates %.0f per run over %d rows; scaling with rows, not groups", allocs, allocRows)
	}
}
