package engine

import (
	"github.com/essential-stats/etlopt/internal/batch"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/stats"
)

// Columnar tap collection. These are the batch-at-a-time counterparts of
// collector.collect and auxState.run: same store-once semantics, same
// failure handling, operating over column vectors with selection instead of
// row slices. Counts, distinct sets and histogram frequencies are exact, so
// the recorded values are bit-identical to the row paths'.

// collectVec updates one tap's statistic from a whole batch. The store is
// write-once per statistic, so collection stays idempotent if a plan
// surfaces the same target twice.
func (c *collector) collectVec(tap physical.Tap, b *batch.Batch) {
	if c == nil || c.store.Has(tap.Stat) {
		return
	}
	switch tap.Stat.Kind {
	case stats.Card:
		if err := c.store.PutScalarOnce(tap.Stat, int64(b.Rows())); err != nil {
			c.markFailed(tap.Stat, err)
		}
	case stats.Distinct:
		var n int64
		if len(tap.Cols) == 1 {
			// Single-attribute distinct (the common case): hash the values
			// directly, no key encoding.
			col := b.Cols[tap.Cols[0]]
			seen := make(map[int64]struct{})
			if b.Sel != nil {
				for _, ri := range b.Sel {
					seen[col[ri]] = struct{}{}
				}
			} else {
				for ri := 0; ri < b.N; ri++ {
					seen[col[ri]] = struct{}{}
				}
			}
			n = int64(len(seen))
		} else {
			seen := newKeySet()
			key := make([]int64, len(tap.Cols))
			gatherRow := func(ri int32) {
				for i, col := range tap.Cols {
					key[i] = b.Cols[col][ri]
				}
				seen.add(key)
			}
			if b.Sel != nil {
				for _, ri := range b.Sel {
					gatherRow(ri)
				}
			} else {
				for ri := 0; ri < b.N; ri++ {
					gatherRow(int32(ri))
				}
			}
			n = int64(seen.len())
		}
		if err := c.store.PutScalarOnce(tap.Stat, n); err != nil {
			c.markFailed(tap.Stat, err)
		}
	case stats.Hist:
		h := stats.NewHistogram(tap.Stat.Attrs...)
		vals := make([]int64, len(tap.Cols))
		inc := func(ri int32) error {
			for i, col := range tap.Cols {
				vals[i] = b.Cols[col][ri]
			}
			return h.Inc(vals, 1)
		}
		if b.Sel != nil {
			for _, ri := range b.Sel {
				if err := inc(ri); err != nil {
					c.markFailed(tap.Stat, err)
					return
				}
			}
		} else {
			for ri := 0; ri < b.N; ri++ {
				if err := inc(int32(ri)); err != nil {
					c.markFailed(tap.Stat, err)
					return
				}
			}
		}
		if err := c.store.PutHistOnce(tap.Stat, h); err != nil {
			c.markFailed(tap.Stat, err)
		}
	case stats.HLLDistinct:
		h := stats.NewHLL(stats.DefaultHLLP)
		if len(tap.Cols) == 1 {
			col := b.Cols[tap.Cols[0]]
			if b.Sel != nil {
				for _, ri := range b.Sel {
					h.Add(col[ri])
				}
			} else {
				for ri := 0; ri < b.N; ri++ {
					h.Add(col[ri])
				}
			}
		} else {
			vals := make([]int64, len(tap.Cols))
			add := func(ri int32) {
				for i, col := range tap.Cols {
					vals[i] = b.Cols[col][ri]
				}
				h.Add(vals...)
			}
			if b.Sel != nil {
				for _, ri := range b.Sel {
					add(ri)
				}
			} else {
				for ri := 0; ri < b.N; ri++ {
					add(int32(ri))
				}
			}
		}
		if err := c.store.PutHLLOnce(tap.Stat, h); err != nil {
			c.markFailed(tap.Stat, err)
		}
	case stats.CMHist:
		cm := stats.NewCMH(tap.Spec, stats.DefaultCMDepth, stats.DefaultCMWidth)
		col := b.Cols[tap.Cols[0]]
		if b.Sel != nil {
			for _, ri := range b.Sel {
				cm.Observe(col[ri])
			}
		} else {
			for ri := 0; ri < b.N; ri++ {
				cm.Observe(col[ri])
			}
		}
		if err := c.store.PutCMOnce(tap.Stat, cm); err != nil {
			c.markFailed(tap.Stat, err)
		}
	}
}

// collectAux runs one union–division auxiliary join columnar — the misses
// of one input joined with the registered partner's cooked batch — and
// feeds the statistic. The joined batch's schema is miss columns then
// partner columns, matching the row path's row concatenation, so aj.Cols
// indexes land on the same attributes.
func (c *collector) collectAux(aj *physical.AuxJoin, misses, partner *batch.Batch, a *batch.Arena) {
	if c == nil || c.store.Has(aj.Stat) {
		return
	}
	ix := batch.NewJoinIndex(partner.Cols[aj.PartnerCol], partner.Sel, partner.N, a)
	missCol := misses.Cols[aj.MissCol]
	var midx, pidx []int32
	probe := func(mi int32) {
		for r := ix.First(missCol[mi]); r >= 0; r = ix.Next(r) {
			midx = append(midx, mi)
			pidx = append(pidx, r)
		}
	}
	if misses.Sel != nil {
		for _, mi := range misses.Sel {
			probe(mi)
		}
	} else {
		for mi := 0; mi < misses.N; mi++ {
			probe(int32(mi))
		}
	}
	m := len(midx)
	wM, wP := len(misses.Cols), len(partner.Cols)
	cols := make([][]int64, wM+wP)
	for col := 0; col < wM; col++ {
		cols[col] = a.Int64(m)
		batch.Gather(cols[col], misses.Cols[col], midx)
	}
	for col := 0; col < wP; col++ {
		cols[wM+col] = a.Int64(m)
		batch.Gather(cols[wM+col], partner.Cols[col], pidx)
	}
	c.collectVec(physical.Tap{Stat: aj.Stat, Cols: aj.Cols}, &batch.Batch{Cols: cols, N: m})
}
