package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/faults"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// TestSleepSaturatesAtCap pins the backoff overflow fix: `backoff <<
// attempt` overflows to a non-positive duration for large attempt counts,
// which fired the timer instantly and turned the capped backoff into a hot
// retry loop. The doubling must saturate at the cap instead.
func TestSleepSaturatesAtCap(t *testing.T) {
	env := newRunEnv(context.Background(), nil, nil, 0, time.Millisecond)
	for _, attempt := range []int{62, 63, 64, 200} {
		start := time.Now()
		if err := env.sleep(attempt); err != nil {
			t.Fatalf("sleep(%d): %v", attempt, err)
		}
		if d := time.Since(start); d < maxRetryBackoff/2 {
			t.Fatalf("sleep(%d) returned after %v; overflowed past the %v cap", attempt, d, maxRetryBackoff)
		}
	}
}

// TestSleepCancelledBeforeWait: an already-cancelled context returns the
// context error without arming the timer at all.
func TestSleepCancelledBeforeWait(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env := newRunEnv(ctx, nil, nil, 0, maxRetryBackoff)
	start := time.Now()
	err := env.sleep(0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sleep on cancelled context = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > maxRetryBackoff/2 {
		t.Fatalf("cancelled sleep still waited %v", d)
	}
}

// TestRetryBackoffCancelPrompt cancels a run mid-backoff: a transient
// fault storm with the backoff pinned at the cap would wait most of a
// second across retries, but cancellation must surface the context error
// promptly. Run under -race: the interesting failures are racy ones.
func TestRetryBackoffCancelPrompt(t *testing.T) {
	db, cat := bigDB(2000)
	an, err := workflow.Analyze(retailGraph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}

	for _, stream := range []bool{false, true} {
		name := "batch"
		if stream {
			name = "stream"
		}
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			inj := faults.New(1, 1, 8, faults.Operator)
			var run func() (*Result, error)
			if stream {
				e := NewStream(an, db, nil)
				e.Faults, e.RetryMax, e.RetryBackoff = inj, 10, maxRetryBackoff
				run = func() (*Result, error) {
					return e.RunPlansCtx(ctx, nil, res, res.ObservableStats())
				}
			} else {
				e := New(an, db, nil)
				e.Faults, e.RetryMax, e.RetryBackoff = inj, 10, maxRetryBackoff
				run = func() (*Result, error) {
					return e.RunPlansCtx(ctx, nil, res, res.ObservableStats())
				}
			}
			time.AfterFunc(5*time.Millisecond, cancel)
			start := time.Now()
			_, err := run()
			elapsed := time.Since(start)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			// Sitting out even half the retry storm's backoffs (8 waits at
			// the 100ms cap per faulted block) would blow well past this.
			if elapsed > 400*time.Millisecond {
				t.Fatalf("cancellation took %v; backoff did not yield to the context", elapsed)
			}
		})
	}
}
