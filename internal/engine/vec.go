package engine

import (
	"fmt"
	"math"
	"time"

	"github.com/essential-stats/etlopt/internal/batch"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/physical"
)

// Columnar batch-engine interpreter. It executes the same compiled block
// plans as runBatchBlock, but over typed column vectors instead of row
// slices: filters mark rows in arena-allocated selection vectors, projects
// share column pointers, joins gather matched rows through a chained hash
// index, and every operator-lifetime vector comes from one arena per block
// attempt. Observable behavior — block outputs, materialized tables,
// observed statistics, the work metric, deterministic metrics, fault sites
// — is identical to the row interpreter; the equivalence suite enforces it.

// vecJoinChunk is how many pending join-output rows accumulate between row
// budget charges and cancellation polls (matches the row interpreter, so
// budget faults and MaxRows aborts fire after identical counted prefixes).
const vecJoinChunk = 4096

// vecBlock is one block attempt's columnar evaluation state.
type vecBlock struct {
	bp      *physical.BlockPlan
	col     *collector
	out     *blockSink
	metrics bool
	arena   *batch.Arena
	// batches and rels hold each evaluated node's output by node ID.
	batches []*batch.Batch
	rels    []string
}

// runVecBlock interprets one compiled block columnar batch-at-a-time: every
// node evaluates in topological order over vectors, feeding its taps over
// the whole output batch at once. All vectors live in one arena scoped to
// the attempt; only block outputs, materialized tables and statistic values
// are copied out.
func runVecBlock(bp *physical.BlockPlan, col *collector, out *blockSink, metrics bool) (*data.Table, error) {
	a := batch.GetArena()
	defer batch.PutArena(a)
	v := &vecBlock{
		bp: bp, col: col, out: out, metrics: metrics, arena: a,
		batches: make([]*batch.Batch, len(bp.Nodes)),
		rels:    make([]string, len(bp.Nodes)),
	}
	for _, n := range bp.Nodes {
		b, err := v.evalVec(n)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", n.Label, err)
		}
		v.batches[n.ID] = b
	}
	root := bp.Root
	// The boundary output outlives the arena: copy it out.
	return v.batches[root.ID].Table(v.rels[root.ID], root.Attrs), nil
}

// evalVec evaluates one physical node over its input batches, counts its
// output rows against the work metric and row budget, and feeds its taps.
// Mirrors evalNode's structure (including metric attribution: operator time
// exclusive, tap observation timed separately).
func (v *vecBlock) evalVec(n *physical.Node) (*batch.Batch, error) {
	if err := v.out.ctxErr(); err != nil {
		return nil, err
	}
	if err := v.out.opFault(n); err != nil {
		return nil, err
	}
	var start time.Time
	var met *physical.Metrics
	if v.metrics {
		met = &n.Metrics
		start = time.Now()
	}
	var b *batch.Batch
	switch n.Kind {
	case physical.OpScan:
		src := n.Src
		if n.FromBlock >= 0 {
			up, ok := v.out.upstream[n.FromBlock]
			if !ok {
				return nil, fmt.Errorf("upstream block %d not yet executed", n.FromBlock)
			}
			src = up
		}
		var err error
		if b, err = batch.FromTable(src, v.arena); err != nil {
			return nil, err
		}
		v.rels[n.ID] = src.Rel
	case physical.OpFilter, physical.OpProject, physical.OpTransform,
		physical.OpGroupBy, physical.OpAggregateUDF:
		b = vecApplyOp(n, v.batches[n.Input.ID], v.arena)
		v.rels[n.ID] = v.rels[n.Input.ID]
	case physical.OpHashJoin:
		return v.evalVecJoin(n, met, start)
	case physical.OpMaterialize:
		in := v.batches[n.Input.ID]
		// The materialized table outlives the arena: copy the live rows out.
		v.out.materialized[n.Rel] = in.Table(v.rels[n.Input.ID], n.Attrs)
		v.rels[n.ID] = v.rels[n.Input.ID]
		// Materialization moves no rows: not counted, never tapped.
		return in, nil
	default:
		return nil, fmt.Errorf("unexpected physical operator %v", n.Kind)
	}
	if err := v.out.count(int64(b.Rows())); err != nil {
		return nil, err
	}
	taps, err := v.out.liveTaps(v.col, n.Taps)
	if err != nil {
		return nil, err
	}
	if met != nil {
		met.WallNanos += time.Since(start).Nanoseconds()
		met.Calls++
		met.RowsOut += int64(b.Rows())
		if len(taps) > 0 {
			tapStart := time.Now()
			for _, t := range taps {
				v.col.collectVec(t, b)
			}
			met.TapNanos += time.Since(tapStart).Nanoseconds()
		}
		return b, nil
	}
	for _, t := range taps {
		v.col.collectVec(t, b)
	}
	return b, nil
}

// vecApplyOp evaluates one per-row or blocking unary operator over a batch,
// allocating from the arena. The compiler already resolved columns and
// functions, so evaluation cannot fail. Shared by the batch and streaming
// columnar interpreters (the streaming one applies it per worker chunk).
func vecApplyOp(n *physical.Node, in *batch.Batch, a *batch.Arena) *batch.Batch {
	switch n.Kind {
	case physical.OpFilter:
		sel := batch.SelectPred(in.Cols[n.PredCol], in.Sel, in.N,
			n.Pred.Op, n.Pred.Const, a.Int32(in.Rows()))
		return &batch.Batch{Cols: in.Cols, N: in.N, Sel: sel}
	case physical.OpProject:
		// Zero copy: the projection is a column-pointer subset.
		cols := make([][]int64, len(n.Cols))
		for i, c := range n.Cols {
			cols[i] = in.Cols[c]
		}
		return &batch.Batch{Cols: cols, N: in.N, Sel: in.Sel}
	case physical.OpTransform:
		derived := a.Int64(in.N)
		buf := make([]int64, len(n.FnIns))
		if in.Sel != nil {
			for _, ri := range in.Sel {
				for i, c := range n.FnIns {
					buf[i] = in.Cols[c][ri]
				}
				derived[ri] = n.Fn(buf)
			}
		} else {
			for ri := 0; ri < in.N; ri++ {
				for i, c := range n.FnIns {
					buf[i] = in.Cols[c][ri]
				}
				derived[ri] = n.Fn(buf)
			}
		}
		cols := make([][]int64, len(in.Cols)+1)
		copy(cols, in.Cols)
		cols[len(in.Cols)] = derived
		return &batch.Batch{Cols: cols, N: in.N, Sel: in.Sel}
	case physical.OpGroupBy:
		return vecDedup(in, n.Cols, nil, a)
	case physical.OpAggregateUDF:
		return vecDedup(in, n.FnIns, n.Fn, a)
	default:
		return in
	}
}

// vecDedup emits one output row per distinct combination of the input's key
// columns, in first-seen order; with fn non-nil it appends the UDF value as
// a trailing column (the aggregate-UDF shape). Output vectors are
// arena-allocated at the worst-case size (every live row distinct) and
// sliced to the emitted count.
func vecDedup(in *batch.Batch, keyCols []int, fn UDF, a *batch.Arena) *batch.Batch {
	live := in.Rows()
	w := len(keyCols)
	outW := w
	if fn != nil {
		outW++
	}
	cols := make([][]int64, outW)
	for i := range cols {
		cols[i] = a.Int64(live)
	}
	seen := newKeySet()
	scratch := make([]int64, w)
	k := 0
	emit := func(ri int32) {
		for i, c := range keyCols {
			scratch[i] = in.Cols[c][ri]
		}
		if !seen.add(scratch) {
			return
		}
		for i := range scratch {
			cols[i][k] = scratch[i]
		}
		if fn != nil {
			cols[w][k] = fn(scratch)
		}
		k++
	}
	if in.Sel != nil {
		for _, ri := range in.Sel {
			emit(ri)
		}
	} else {
		for ri := 0; ri < in.N; ri++ {
			emit(int32(ri))
		}
	}
	for i := range cols {
		cols[i] = cols[i][:k]
	}
	return &batch.Batch{Cols: cols, N: k}
}

// evalVecJoin evaluates a hash-join node columnar: build a chained index on
// the right, probe with the left's live rows, gather the matched pairs into
// fresh arena vectors. Misses stay selection vectors over the input batches
// — collecting both sides' rejects costs no row materialization. The row
// budget is charged while the match set grows, so a blowing-up join aborts
// before gathering output columns.
func (v *vecBlock) evalVecJoin(n *physical.Node, met *physical.Metrics, start time.Time) (*batch.Batch, error) {
	left, right := v.batches[n.Left.ID], v.batches[n.Right.ID]
	lcol := left.Cols[n.LeftCol]
	ix := batch.NewJoinIndex(right.Cols[n.RightCol], right.Sel, right.N, v.arena)
	// marks flags matched build rows; every row of a matched key gets set
	// during the chain walk, making the unmarked set identical to the row
	// interpreter's key-based right-miss set. Allocated only when the plan
	// observes right rejects.
	var marks []bool
	if n.RightReject != nil {
		marks = make([]bool, right.N)
	}
	missSel := v.arena.Int32(left.Rows())
	nMiss := 0
	lidx := make([]int32, 0, left.Rows())
	ridx := make([]int32, 0, left.Rows())
	var pending int64
	probe := func(li int32) error {
		r := ix.First(lcol[li])
		if r < 0 {
			missSel[nMiss] = li
			nMiss++
			return nil
		}
		for ; r >= 0; r = ix.Next(r) {
			lidx = append(lidx, li)
			ridx = append(ridx, r)
			if marks != nil {
				marks[r] = true
			}
			pending++
		}
		if pending >= vecJoinChunk {
			if err := v.out.count(pending); err != nil {
				return err
			}
			pending = 0
			if err := v.out.ctxErr(); err != nil {
				return err
			}
			if len(lidx) > math.MaxInt32 {
				return fmt.Errorf("join output beyond the int32 selection-vector limit")
			}
		}
		return nil
	}
	if left.Sel != nil {
		for _, li := range left.Sel {
			if err := probe(li); err != nil {
				return nil, err
			}
		}
	} else {
		for li := 0; li < left.N; li++ {
			if err := probe(int32(li)); err != nil {
				return nil, err
			}
		}
	}
	if err := v.out.count(pending); err != nil {
		return nil, err
	}
	// Gather matched pairs into output vectors.
	m := len(lidx)
	wL, wR := len(left.Cols), len(right.Cols)
	cols := make([][]int64, wL+wR)
	for c := 0; c < wL; c++ {
		cols[c] = v.arena.Int64(m)
		batch.Gather(cols[c], left.Cols[c], lidx)
	}
	for c := 0; c < wR; c++ {
		cols[wL+c] = v.arena.Int64(m)
		batch.Gather(cols[wL+c], right.Cols[c], ridx)
	}
	joined := &batch.Batch{Cols: cols, N: m}
	v.rels[n.ID] = v.rels[n.Left.ID] + "⋈" + v.rels[n.Right.ID]
	leftMiss := &batch.Batch{Cols: left.Cols, N: left.N, Sel: missSel[:nMiss]}
	taps, err := v.out.liveTaps(v.col, n.Taps)
	if err != nil {
		return nil, err
	}
	var tapStart time.Time
	if met != nil {
		// Miss collection above is part of the join's own work; only the
		// statistic observation below counts as tap overhead.
		met.WallNanos += time.Since(start).Nanoseconds()
		met.Calls++
		met.RowsOut += int64(m)
		tapStart = time.Now()
	}
	for _, t := range taps {
		v.col.collectVec(t, joined)
	}
	if n.LeftReject != nil {
		if err := v.collectVecReject(n.LeftReject, leftMiss); err != nil {
			return nil, err
		}
	}
	if n.RightReject != nil {
		rightMissSel := v.arena.Int32(right.Rows())
		nr := 0
		if right.Sel != nil {
			for _, ri := range right.Sel {
				if !marks[ri] {
					rightMissSel[nr] = ri
					nr++
				}
			}
		} else {
			for ri := 0; ri < right.N; ri++ {
				if !marks[ri] {
					rightMissSel[nr] = int32(ri)
					nr++
				}
			}
		}
		rightMiss := &batch.Batch{Cols: right.Cols, N: right.N, Sel: rightMissSel[:nr]}
		if err := v.collectVecReject(n.RightReject, rightMiss); err != nil {
			return nil, err
		}
	}
	if met != nil {
		met.TapNanos += time.Since(tapStart).Nanoseconds()
	}
	if n.RejectLink != "" {
		// The reject link outlives the arena: copy the miss rows out.
		v.out.materialized[n.RejectLink] = leftMiss.Table(v.rels[n.Left.ID]+"!", n.Left.Attrs)
	}
	return joined, nil
}

// collectVecReject feeds one side's reject statistics: singletons over the
// miss batch directly, two-input variants through their auxiliary joins
// with the partner's cooked (chain-end) batch.
func (v *vecBlock) collectVecReject(rt *physical.RejectTaps, misses *batch.Batch) error {
	singles, err := v.out.liveTaps(v.col, rt.Singles)
	if err != nil {
		return err
	}
	for _, t := range singles {
		v.col.collectVec(t, misses)
	}
	aux, err := v.out.liveAux(v.col, rt.Aux)
	if err != nil {
		return err
	}
	for _, aj := range aux {
		ch := v.bp.Chains[aj.Partner]
		partner := v.batches[ch[len(ch)-1].ID]
		if partner == nil {
			continue
		}
		v.col.collectAux(aj, misses, partner, v.arena)
	}
	return nil
}
