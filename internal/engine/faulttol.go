package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/faults"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/stats"
)

// Fault tolerance for both engines. Three mechanisms compose here:
//
//   - Cancellation: every run threads a context.Context; the interpreters
//     poll it at operator boundaries (batch) or every budgetChunk rows
//     (streaming), so a run stops promptly without leaking goroutines and
//     without leaving half-observed statistics in the store (observers only
//     record at end of stream).
//   - Block retry: a block whose attempt fails with a transient fault
//     re-runs from its (materialized) upstream inputs with capped
//     exponential backoff. Each attempt works against a private row-budget
//     child and a private sink, so a failed attempt refunds its budget and
//     leaves no partial side effects.
//   - Checkpoints: block boundary outputs plus the observed-statistics
//     store form a restartable checkpoint. A permanent failure returns a
//     *BlockFailure carrying the checkpoint of everything that did
//     complete; Resume re-runs only the missing blocks (the failed block's
//     downstream cone), skipping completed ones entirely.
//
// All of it is zero-cost when unused: nil context checks, nil injector and
// nil checkpoint keep the hot paths on their PR-3 fast paths.

// defaultRetryMax bounds per-block attempts (first try + retries).
const defaultRetryMax = 3

// defaultRetryBackoff is the base delay before the first retry; it doubles
// per attempt, capped at 100ms.
const defaultRetryBackoff = time.Millisecond

// FailedStat records one statistic whose observation failed permanently
// during a run (an injected permanent tap fault, or a store rejection).
// The run itself completes; the selector can re-plan around the gap.
type FailedStat struct {
	Stat stats.Stat
	Err  error
}

// Checkpoint is the restartable state of a partially completed run: every
// finished block's boundary output and side effects, plus the statistics
// observed so far. It is engine-independent (both engines produce and
// accept it, since both execute the same physical plan).
type Checkpoint struct {
	// BlockOut holds the boundary outputs of completed blocks.
	BlockOut map[int]*data.Table
	// Materialized holds completed blocks' materialized targets.
	Materialized map[string]*data.Table
	// Rows is the work metric accumulated by completed blocks.
	Rows int64
	// Observed holds the statistics collected so far (nil when the run was
	// uninstrumented).
	Observed *stats.Store
	// Failed lists the block indices whose execution failed (ascending).
	Failed []int
}

// BlockFailure is returned when a block fails permanently (after retries).
// It carries the checkpoint of everything that did complete, so the caller
// can resume instead of restarting from scratch.
type BlockFailure struct {
	// Block is the lowest failing block index.
	Block int
	// Checkpoint restores the completed blocks on Resume.
	Checkpoint *Checkpoint
	// Err is the block's final error.
	Err error
}

func (b *BlockFailure) Error() string { return fmt.Sprintf("block %d: %v", b.Block, b.Err) }
func (b *BlockFailure) Unwrap() error { return b.Err }

// runEnv carries the per-run fault-tolerance state shared by the block
// scheduler: cancellation, the shared row budget, the fault injector and
// the retry policy.
type runEnv struct {
	ctx      context.Context
	budget   *rowBudget
	flt      *faults.Injector
	retryMax int
	backoff  time.Duration
	retries  atomic.Int64
	// adapt, when non-nil, is consulted at block boundaries and forces
	// sequential block scheduling (see adapt.go).
	adapt AdaptCheck
}

func newRunEnv(ctx context.Context, budget *rowBudget, flt *faults.Injector, retryMax int, backoff time.Duration) *runEnv {
	if ctx == nil {
		ctx = context.Background()
	}
	if retryMax <= 0 {
		retryMax = defaultRetryMax
	}
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}
	return &runEnv{ctx: ctx, budget: budget, flt: flt, retryMax: retryMax, backoff: backoff}
}

// runBlock executes one block with per-attempt isolation and transient
// retry. Each attempt gets a fresh sink over a child row budget; a failed
// attempt refunds the child's charge before retrying, so retries never
// double-charge the run's MaxRows guard.
func (env *runEnv) runBlock(bp *physical.BlockPlan, upstream map[int]*data.Table, run blockRunner) (*data.Table, *blockSink, error) {
	idx := bp.Block.Index
	for attempt := 0; ; attempt++ {
		if err := env.ctx.Err(); err != nil {
			return nil, nil, err
		}
		if attempt > 0 {
			// A retry re-runs the whole block; whatever metrics the failed
			// attempt accumulated on this block's nodes would double-count
			// its rows (and corrupt the boundary actuals the adaptive check
			// reads), so the attempt starts from zero.
			for _, n := range bp.Nodes {
				n.Metrics = physical.Metrics{}
			}
		}
		var inject error
		if env.flt != nil {
			inject = env.flt.At(faults.Budget, fmt.Sprintf("budget:%d", idx), attempt)
		}
		sink := newBlockSink(env.budget.child(inject))
		sink.upstream = upstream
		sink.ctx = env.ctx
		sink.flt = env.flt
		sink.attempt = attempt
		sink.block = idx
		tbl, err := run(bp, sink)
		if err == nil {
			return tbl, sink, nil
		}
		sink.budget.release()
		if !faults.IsTransient(err) || attempt+1 >= env.retryMax {
			return nil, nil, err
		}
		env.retries.Add(1)
		if serr := env.sleep(attempt); serr != nil {
			return nil, nil, serr
		}
	}
}

// maxRetryBackoff caps the exponential backoff between attempts.
const maxRetryBackoff = 100 * time.Millisecond

// sleep waits out the capped exponential backoff before retry `attempt`+1,
// returning early if the run is cancelled. The doubling saturates at the
// cap instead of shifting: `backoff << attempt` overflows to a negative
// duration for large attempt counts, which would fire the timer instantly
// and turn the backoff into a hot retry loop. An already-cancelled context
// returns before the timer is even armed.
func (env *runEnv) sleep(attempt int) error {
	if err := env.ctx.Err(); err != nil {
		return err
	}
	d := env.backoff
	for i := 0; i < attempt && d < maxRetryBackoff; i++ {
		d <<= 1
	}
	if d > maxRetryBackoff || d <= 0 {
		d = maxRetryBackoff
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-env.ctx.Done():
		return env.ctx.Err()
	case <-t.C:
		return nil
	}
}

// ctxErr polls the run's cancellation; the batch interpreter calls it at
// every operator boundary.
func (s *blockSink) ctxErr() error {
	if s.ctx == nil {
		return nil
	}
	return s.ctx.Err()
}

// opFault asks the injector whether this node's evaluation fails on the
// current attempt. Sites are keyed by block and node ID, which the
// deterministic compiler assigns identically across engines and worker
// counts, so both engines fail (and recover) at the same points.
func (s *blockSink) opFault(n *physical.Node) error {
	if s.flt == nil {
		return nil
	}
	kind := faults.Operator
	if n.Kind == physical.OpScan {
		kind = faults.SourceRead
	}
	return s.flt.At(kind, fmt.Sprintf("op:%d:%d", s.block, n.ID), s.attempt)
}

// liveTaps filters a tap list through the fault injector: a transient tap
// fault fails the attempt (the retry re-observes), a permanent one marks
// the statistic degraded in the collector and drops the tap so the block
// still completes. With no injector or no instrumentation the input slice
// is returned untouched.
func (s *blockSink) liveTaps(col *collector, taps []physical.Tap) ([]physical.Tap, error) {
	if s.flt == nil || col == nil || len(taps) == 0 {
		return taps, nil
	}
	live := taps[:0:0]
	for _, t := range taps {
		// Tap faults model the observation side-memory exhausting; sketch
		// taps hold a fixed few hundred bytes no matter what flows past, so
		// the injector is never consulted for them — they are the rung the
		// degradation ladder retreats to when exact taps keep failing.
		if t.Stat.Kind.Approx() {
			live = append(live, t)
			continue
		}
		err := s.flt.At(faults.Tap, tapSite(t.Stat), s.attempt)
		if err == nil {
			live = append(live, t)
			continue
		}
		if faults.IsTransient(err) {
			return nil, err
		}
		col.markFailed(t.Stat, err)
	}
	return live, nil
}

// liveAux is liveTaps for compiled auxiliary reject joins.
func (s *blockSink) liveAux(col *collector, aux []*physical.AuxJoin) ([]*physical.AuxJoin, error) {
	if s.flt == nil || col == nil || len(aux) == 0 {
		return aux, nil
	}
	live := aux[:0:0]
	for _, a := range aux {
		if a.Stat.Kind.Approx() {
			live = append(live, a)
			continue
		}
		err := s.flt.At(faults.Tap, tapSite(a.Stat), s.attempt)
		if err == nil {
			live = append(live, a)
			continue
		}
		if faults.IsTransient(err) {
			return nil, err
		}
		col.markFailed(a.Stat, err)
	}
	return live, nil
}

// observersFor builds row observers for the node's taps that survive fault
// filtering.
func (s *blockSink) observersFor(col *collector, taps []physical.Tap) ([]rowObserver, error) {
	live, err := s.liveTaps(col, taps)
	if err != nil {
		return nil, err
	}
	return observersFor(col, live), nil
}

// tapSite renders a statistic's engine-independent fault site: the
// comparable statistic key, identical however the plan is executed.
func tapSite(s stats.Stat) string { return fmt.Sprintf("tap:%v", s.Key()) }

// checkpointOf snapshots a quiescent partial result as a checkpoint.
func checkpointOf(out *Result, failed []int) *Checkpoint {
	return &Checkpoint{
		BlockOut:     out.BlockOut,
		Materialized: out.Materialized,
		Rows:         out.Rows,
		Observed:     out.Observed,
		Failed:       failed,
	}
}

// seedFrom pre-loads a result with a checkpoint's completed state; the
// block scheduler then skips every block that already has an output.
func seedFrom(out *Result, cp *Checkpoint) {
	if cp == nil {
		return
	}
	for k, v := range cp.BlockOut {
		out.BlockOut[k] = v
	}
	for k, v := range cp.Materialized {
		out.Materialized[k] = v
	}
	out.Rows += cp.Rows
}
