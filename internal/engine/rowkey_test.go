package engine

import (
	"testing"
)

// rowKey is the allocating convenience form of appendRowKey. It lives in
// test code on purpose: hot paths must reach for keySet (or a reused
// appendRowKey buffer), never this form, which allocates a slice and a
// string per call.
func rowKey(r []int64) string {
	return string(appendRowKey(make([]byte, 0, len(r)*8), r))
}

// TestAppendRowKey pins the encoding contract: fixed-width little-endian,
// injective over rows of equal arity, and identical to the allocating form.
func TestAppendRowKey(t *testing.T) {
	rows := [][]int64{
		{},
		{0},
		{1, 2, 3},
		{-1, 1 << 40, -(1 << 40)},
		{256, 1}, // distinct from {1, 256} — order matters
		{1, 256},
	}
	seen := map[string][]int64{}
	var buf []byte
	for _, r := range rows {
		buf = appendRowKey(buf[:0], r)
		if len(buf) != 8*len(r) {
			t.Fatalf("row %v: key length %d, want %d", r, len(buf), 8*len(r))
		}
		if got, want := string(buf), rowKey(r); got != want {
			t.Fatalf("row %v: appendRowKey and rowKey disagree", r)
		}
		if prev, dup := seen[string(buf)]; dup {
			t.Fatalf("rows %v and %v collide on %q", prev, r, buf)
		}
		seen[string(buf)] = r
	}
}

// benchRows is a deterministic workload shaped like the group-by hot path:
// many rows, three key columns, moderate duplication.
func benchRows() [][]int64 {
	rows := make([][]int64, 4096)
	for i := range rows {
		rows[i] = []int64{int64(i % 97), int64(i % 31), int64(i)}
	}
	return rows
}

// BenchmarkRowKey measures the allocating form: one fresh byte slice and one
// string conversion per row.
func BenchmarkRowKey(b *testing.B) {
	rows := benchRows()
	seen := make(map[string]bool, len(rows))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clear(seen)
		for _, r := range rows {
			k := rowKey(r)
			if !seen[k] {
				seen[k] = true
			}
		}
	}
}

// BenchmarkAppendRowKey measures the reused-buffer form the engines use:
// the map lookup's string(buf) conversion is elided by the compiler, so
// steady-state lookups are allocation-free and only insertions copy the key.
func BenchmarkAppendRowKey(b *testing.B) {
	rows := benchRows()
	seen := make(map[string]bool, len(rows))
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clear(seen)
		for _, r := range rows {
			buf = appendRowKey(buf[:0], r)
			if !seen[string(buf)] {
				seen[string(buf)] = true
			}
		}
	}
}
