package engine

import (
	"fmt"

	"github.com/essential-stats/etlopt/internal/batch"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/stats"
)

// vecObserver is a batch-at-a-time statistic handler — the columnar
// counterpart of rowObserver. The streaming columnar interpreter gives each
// worker its own shard (so per-chunk observation never contends) and folds
// the shards after the pipeline drains; counts, bucket frequencies and
// distinct sets are order-insensitive, so the merged value is identical to
// a sequential observation.
type vecObserver interface {
	observeVec(*batch.Batch)
	finish()
	mergeVec(vecObserver) error
}

// vecCardObserver counts live rows.
type vecCardObserver struct {
	col  *collector
	stat stats.Stat
	n    int64
}

func (c *vecCardObserver) observeVec(b *batch.Batch) { c.n += int64(b.Rows()) }
func (c *vecCardObserver) finish() {
	if err := c.col.store.PutScalarOnce(c.stat, c.n); err != nil {
		c.col.markFailed(c.stat, err)
	}
}
func (c *vecCardObserver) mergeVec(o vecObserver) error {
	s, ok := o.(*vecCardObserver)
	if !ok {
		return fmt.Errorf("merge vec shard: card vs %T", o)
	}
	c.n += s.n
	return nil
}

// vecHistObserver builds an exact frequency histogram.
type vecHistObserver struct {
	col  *collector
	stat stats.Stat
	cols []int
	h    *stats.Histogram
	vals []int64
	err  error
}

func (h *vecHistObserver) observeVec(b *batch.Batch) {
	inc := func(ri int32) {
		for i, c := range h.cols {
			h.vals[i] = b.Cols[c][ri]
		}
		if err := h.h.Inc(h.vals, 1); err != nil && h.err == nil {
			h.err = err
		}
	}
	if b.Sel != nil {
		for _, ri := range b.Sel {
			inc(ri)
		}
	} else {
		for ri := 0; ri < b.N; ri++ {
			inc(int32(ri))
		}
	}
}
func (h *vecHistObserver) finish() {
	if h.err != nil {
		h.col.markFailed(h.stat, h.err)
		return
	}
	if err := h.col.store.PutHistOnce(h.stat, h.h); err != nil {
		h.col.markFailed(h.stat, err)
	}
}
func (h *vecHistObserver) mergeVec(o vecObserver) error {
	s, ok := o.(*vecHistObserver)
	if !ok {
		return fmt.Errorf("merge vec shard: hist vs %T", o)
	}
	if s.err != nil && h.err == nil {
		h.err = s.err
	}
	return h.h.Merge(s.h)
}

// vecDistinctObserver counts distinct combinations. Single-attribute taps
// (the common case) hash values directly; wider taps go through keySet's
// encoded keys.
type vecDistinctObserver struct {
	col    *collector
	stat   stats.Stat
	cols   []int
	single map[int64]struct{}
	set    keySet
	vals   []int64
}

func newVecDistinct(col *collector, stat stats.Stat, cols []int) *vecDistinctObserver {
	d := &vecDistinctObserver{col: col, stat: stat, cols: cols}
	if len(cols) == 1 {
		d.single = make(map[int64]struct{})
	} else {
		d.set = newKeySet()
		d.vals = make([]int64, len(cols))
	}
	return d
}

func (d *vecDistinctObserver) observeVec(b *batch.Batch) {
	if d.single != nil {
		col := b.Cols[d.cols[0]]
		if b.Sel != nil {
			for _, ri := range b.Sel {
				d.single[col[ri]] = struct{}{}
			}
		} else {
			for ri := 0; ri < b.N; ri++ {
				d.single[col[ri]] = struct{}{}
			}
		}
		return
	}
	add := func(ri int32) {
		for i, c := range d.cols {
			d.vals[i] = b.Cols[c][ri]
		}
		d.set.add(d.vals)
	}
	if b.Sel != nil {
		for _, ri := range b.Sel {
			add(ri)
		}
	} else {
		for ri := 0; ri < b.N; ri++ {
			add(int32(ri))
		}
	}
}
func (d *vecDistinctObserver) count() int64 {
	if d.single != nil {
		return int64(len(d.single))
	}
	return int64(d.set.len())
}
func (d *vecDistinctObserver) finish() {
	if err := d.col.store.PutScalarOnce(d.stat, d.count()); err != nil {
		d.col.markFailed(d.stat, err)
	}
}
func (d *vecDistinctObserver) mergeVec(o vecObserver) error {
	s, ok := o.(*vecDistinctObserver)
	if !ok {
		return fmt.Errorf("merge vec shard: distinct vs %T", o)
	}
	if d.single != nil {
		for v := range s.single {
			d.single[v] = struct{}{}
		}
		return nil
	}
	d.set.union(&s.set)
	return nil
}

// vecHLLObserver sketches a distinct count over batches. The register-max
// merge makes the folded sketch identical to a sequential observation at
// any worker count.
type vecHLLObserver struct {
	col  *collector
	stat stats.Stat
	cols []int
	h    *stats.HLL
	vals []int64
}

func (o *vecHLLObserver) observeVec(b *batch.Batch) {
	if len(o.cols) == 1 {
		col := b.Cols[o.cols[0]]
		if b.Sel != nil {
			for _, ri := range b.Sel {
				o.h.Add(col[ri])
			}
		} else {
			for ri := 0; ri < b.N; ri++ {
				o.h.Add(col[ri])
			}
		}
		return
	}
	add := func(ri int32) {
		for i, c := range o.cols {
			o.vals[i] = b.Cols[c][ri]
		}
		o.h.Add(o.vals...)
	}
	if b.Sel != nil {
		for _, ri := range b.Sel {
			add(ri)
		}
	} else {
		for ri := 0; ri < b.N; ri++ {
			add(int32(ri))
		}
	}
}
func (o *vecHLLObserver) finish() {
	if err := o.col.store.PutHLLOnce(o.stat, o.h); err != nil {
		o.col.markFailed(o.stat, err)
	}
}
func (o *vecHLLObserver) mergeVec(other vecObserver) error {
	s, ok := other.(*vecHLLObserver)
	if !ok {
		return fmt.Errorf("merge vec shard: hll vs %T", other)
	}
	return o.h.Merge(s.h)
}

// vecCMObserver sketches a single-attribute distribution over batches.
type vecCMObserver struct {
	col    *collector
	stat   stats.Stat
	colIdx int
	cm     *stats.CMH
}

func (o *vecCMObserver) observeVec(b *batch.Batch) {
	col := b.Cols[o.colIdx]
	if b.Sel != nil {
		for _, ri := range b.Sel {
			o.cm.Observe(col[ri])
		}
	} else {
		for ri := 0; ri < b.N; ri++ {
			o.cm.Observe(col[ri])
		}
	}
}
func (o *vecCMObserver) finish() {
	if err := o.col.store.PutCMOnce(o.stat, o.cm); err != nil {
		o.col.markFailed(o.stat, err)
	}
}
func (o *vecCMObserver) mergeVec(other vecObserver) error {
	s, ok := other.(*vecCMObserver)
	if !ok {
		return fmt.Errorf("merge vec shard: cm vs %T", other)
	}
	return o.cm.Merge(s.cm)
}

// vecObserversFor builds batch handlers for compiled taps (which must
// already be fault-filtered); a nil collector yields no observers.
func vecObserversFor(col *collector, taps []physical.Tap) []vecObserver {
	if col == nil {
		return nil
	}
	var out []vecObserver
	for _, t := range taps {
		switch t.Stat.Kind {
		case stats.Card:
			out = append(out, &vecCardObserver{col: col, stat: t.Stat})
		case stats.Hist:
			out = append(out, &vecHistObserver{
				col: col, stat: t.Stat, cols: t.Cols,
				h: stats.NewHistogram(t.Stat.Attrs...), vals: make([]int64, len(t.Cols)),
			})
		case stats.Distinct:
			out = append(out, newVecDistinct(col, t.Stat, t.Cols))
		case stats.HLLDistinct:
			out = append(out, &vecHLLObserver{
				col: col, stat: t.Stat, cols: t.Cols,
				h: stats.NewHLL(stats.DefaultHLLP), vals: make([]int64, len(t.Cols)),
			})
		case stats.CMHist:
			out = append(out, &vecCMObserver{
				col: col, stat: t.Stat, colIdx: t.Cols[0],
				cm: stats.NewCMH(t.Spec, stats.DefaultCMDepth, stats.DefaultCMWidth),
			})
		}
	}
	return out
}

// mergeVecShards folds the worker shards (one []vecObserver per worker, all
// built from the same tap list) into the first shard and finishes it,
// recording the merged statistics into the store.
func mergeVecShards(shards [][]vecObserver) error {
	if len(shards) == 0 {
		return nil
	}
	base := shards[0]
	for _, shard := range shards[1:] {
		if len(shard) != len(base) {
			return fmt.Errorf("merge vec shards: observer count mismatch (%d vs %d)", len(shard), len(base))
		}
		for i, o := range shard {
			if err := base[i].mergeVec(o); err != nil {
				return err
			}
		}
	}
	for _, o := range base {
		o.finish()
	}
	return nil
}
