package engine

import (
	"context"
	"fmt"
	"time"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// This file implements a Volcano-style streaming execution mode. Commercial
// ETL engines (the paper's substrate included) are pipelined: tuples flow
// through operator chains without materializing intermediate join results,
// and statistic handlers fire per tuple at the instrumented points — which
// is exactly the paper's Section 3.2.5 instrumentation model. The streaming
// engine shares the batch engine's semantics (the tests cross-check them
// row for row) while keeping only hash-join build sides materialized.

// Iterator is a pull-based row stream.
type Iterator interface {
	// Open prepares the stream (blocking operators consume their input
	// here).
	Open() error
	// Next returns the next row; ok is false at end of stream.
	Next() (row data.Row, ok bool, err error)
	// Close releases resources; it runs end-of-stream observers.
	Close() error
}

// scanIter streams a materialized table.
type scanIter struct {
	tbl *data.Table
	pos int
}

func (s *scanIter) Open() error { s.pos = 0; return nil }
func (s *scanIter) Next() (data.Row, bool, error) {
	if s.pos >= len(s.tbl.Rows) {
		return nil, false, nil
	}
	r := s.tbl.Rows[s.pos]
	s.pos++
	return r, true, nil
}
func (s *scanIter) Close() error { return nil }

// filterIter applies a selection predicate.
type filterIter struct {
	src  Iterator
	col  int
	pred *workflow.Predicate
}

func (f *filterIter) Open() error { return f.src.Open() }
func (f *filterIter) Next() (data.Row, bool, error) {
	for {
		r, ok, err := f.src.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.pred.Matches(r[f.col]) {
			return r, true, nil
		}
	}
}
func (f *filterIter) Close() error { return f.src.Close() }

// projectIter keeps a column subset.
type projectIter struct {
	src  Iterator
	cols []int
}

func (p *projectIter) Open() error { return p.src.Open() }
func (p *projectIter) Next() (data.Row, bool, error) {
	r, ok, err := p.src.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(data.Row, len(p.cols))
	for i, c := range p.cols {
		out[i] = r[c]
	}
	return out, true, nil
}
func (p *projectIter) Close() error { return p.src.Close() }

// transformIter appends a derived column.
type transformIter struct {
	src Iterator
	fn  UDF
	ins []int
	buf []int64
}

func (t *transformIter) Open() error { t.buf = make([]int64, len(t.ins)); return t.src.Open() }
func (t *transformIter) Next() (data.Row, bool, error) {
	r, ok, err := t.src.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	for i, c := range t.ins {
		t.buf[i] = r[c]
	}
	out := make(data.Row, 0, len(r)+1)
	out = append(append(out, r...), t.fn(t.buf))
	return out, true, nil
}
func (t *transformIter) Close() error { return t.src.Close() }

// groupByIter is blocking: it drains its input on Open and emits one row
// per distinct key combination.
type groupByIter struct {
	src  Iterator
	cols []int
	out  []data.Row
	pos  int
}

func (g *groupByIter) Open() error {
	if err := g.src.Open(); err != nil {
		return err
	}
	seen := newKeySet()
	// One scratch key, cloned only on first-seen insert: duplicate rows
	// (the common case under grouping) must not allocate.
	scratch := make(data.Row, len(g.cols))
	for {
		r, ok, err := g.src.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for i, c := range g.cols {
			scratch[i] = r[c]
		}
		if seen.add(scratch) {
			g.out = append(g.out, append(data.Row(nil), scratch...))
		}
	}
	g.pos = 0
	return g.src.Close()
}
func (g *groupByIter) Next() (data.Row, bool, error) {
	if g.pos >= len(g.out) {
		return nil, false, nil
	}
	r := g.out[g.pos]
	g.pos++
	return r, true, nil
}
func (g *groupByIter) Close() error { return nil }

// aggUDFIter is blocking: one output row per distinct input-attribute
// combination, carrying the UDF value.
type aggUDFIter struct {
	src Iterator
	fn  UDF
	ins []int
	out []data.Row
	pos int
}

func (a *aggUDFIter) Open() error {
	if err := a.src.Open(); err != nil {
		return err
	}
	seen := newKeySet()
	buf := make([]int64, len(a.ins))
	for {
		r, ok, err := a.src.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for i, c := range a.ins {
			buf[i] = r[c]
		}
		if !seen.add(buf) {
			continue
		}
		row := make(data.Row, 0, len(buf)+1)
		row = append(append(row, buf...), a.fn(buf))
		a.out = append(a.out, row)
	}
	a.pos = 0
	return a.src.Close()
}
func (a *aggUDFIter) Next() (data.Row, bool, error) {
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	r := a.out[a.pos]
	a.pos++
	return r, true, nil
}
func (a *aggUDFIter) Close() error { return nil }

// hashJoinIter builds a hash table over the (materialized) right input on
// Open and streams the left input through it. Misses on the streamed side
// surface immediately through onLeftMiss; right-side misses are computed at
// Close from the matched-key set.
type hashJoinIter struct {
	left        Iterator
	right       *data.Table
	lc, rc      int
	onLeftMiss  func(data.Row)
	onRightMiss func(data.Row)
	// leftMissFinish and rightMissFinish run after the stream ends, so
	// per-row miss observers can record their totals.
	leftMissFinish, rightMissFinish []rowObserver

	index   map[int64][]data.Row
	matched map[int64]bool
	pending []data.Row
	cur     data.Row
}

func (h *hashJoinIter) Open() error {
	h.index = make(map[int64][]data.Row)
	for _, r := range h.right.Rows {
		h.index[r[h.rc]] = append(h.index[r[h.rc]], r)
	}
	h.matched = make(map[int64]bool)
	return h.left.Open()
}

func (h *hashJoinIter) Next() (data.Row, bool, error) {
	for {
		if len(h.pending) > 0 {
			rrow := h.pending[0]
			h.pending = h.pending[1:]
			out := make(data.Row, 0, len(h.cur)+len(rrow))
			out = append(append(out, h.cur...), rrow...)
			return out, true, nil
		}
		lrow, ok, err := h.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		matches := h.index[lrow[h.lc]]
		if len(matches) == 0 {
			if h.onLeftMiss != nil {
				h.onLeftMiss(lrow)
			}
			continue
		}
		h.matched[lrow[h.lc]] = true
		h.cur = lrow
		h.pending = matches
	}
}

func (h *hashJoinIter) Close() error {
	if h.onRightMiss != nil {
		for _, r := range h.right.Rows {
			if !h.matched[r[h.rc]] {
				h.onRightMiss(r)
			}
		}
	}
	for _, o := range h.leftMissFinish {
		o.finish()
	}
	for _, o := range h.rightMissFinish {
		o.finish()
	}
	return h.left.Close()
}

// tapIter invokes per-row observers — the paper's "user defined handlers
// invoked for every tuple that passes through that point". When a row
// budget is attached, every passing row charges it, so a blowing-up
// pipeline aborts with a clear error naming the point.
type tapIter struct {
	src       Iterator
	observers []rowObserver
	rows      *int64
	budget    *rowBudget
	at        string
	// ctx, when non-nil, is polled every budgetChunk rows so a cancelled
	// run stops promptly without a per-row atomic load.
	ctx  context.Context
	tick int64
	// met, when non-nil, accumulates the node's metrics: upstream pull
	// time into WallNanos (pipelines interleave, so a streaming node's
	// wall is cumulative along its pipeline), observer time into TapNanos,
	// emitted rows into RowsOut. Nil keeps the hot path timing-free.
	met *physical.Metrics
}

// pollCtx checks for cancellation every budgetChunk passing rows.
func (t *tapIter) pollCtx() error {
	if t.ctx == nil {
		return nil
	}
	t.tick++
	if t.tick%budgetChunk != 0 {
		return nil
	}
	return t.ctx.Err()
}

func (t *tapIter) Open() error {
	if t.met == nil {
		return t.src.Open()
	}
	// Blocking operators (group-by, aggregate, the join build) do their
	// work in Open; time it like a pull.
	t.met.Calls++
	start := time.Now()
	err := t.src.Open()
	t.met.WallNanos += time.Since(start).Nanoseconds()
	return err
}
func (t *tapIter) Next() (data.Row, bool, error) {
	if t.met != nil {
		return t.nextMetered()
	}
	r, ok, err := t.src.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	if err := t.pollCtx(); err != nil {
		return nil, false, err
	}
	for _, o := range t.observers {
		o.observe(r)
	}
	if t.rows != nil {
		*t.rows++
	}
	if t.budget != nil {
		if err := t.budget.add(1); err != nil {
			return nil, false, fmt.Errorf("%s: %w", t.at, err)
		}
	}
	return r, true, nil
}
func (t *tapIter) nextMetered() (data.Row, bool, error) {
	start := time.Now()
	r, ok, err := t.src.Next()
	t.met.WallNanos += time.Since(start).Nanoseconds()
	if err != nil || !ok {
		return nil, false, err
	}
	if err := t.pollCtx(); err != nil {
		return nil, false, err
	}
	t.met.RowsOut++
	if len(t.observers) > 0 {
		tapStart := time.Now()
		for _, o := range t.observers {
			o.observe(r)
		}
		t.met.TapNanos += time.Since(tapStart).Nanoseconds()
	}
	if t.rows != nil {
		*t.rows++
	}
	if t.budget != nil {
		if err := t.budget.add(1); err != nil {
			return nil, false, fmt.Errorf("%s: %w", t.at, err)
		}
	}
	return r, true, nil
}
func (t *tapIter) Close() error {
	if t.met != nil && len(t.observers) > 0 {
		tapStart := time.Now()
		for _, o := range t.observers {
			o.finish()
		}
		t.met.TapNanos += time.Since(tapStart).Nanoseconds()
		return t.src.Close()
	}
	for _, o := range t.observers {
		o.finish()
	}
	return t.src.Close()
}

// drain materializes an iterator into a table with the given schema.
func drain(it Iterator, rel string, attrs []workflow.Attr) (*data.Table, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	out := &data.Table{Rel: rel, Attrs: attrs}
	for {
		r, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out.Rows = append(out.Rows, r)
	}
	return out, it.Close()
}

// colsOf maps attributes to positions within a schema.
func colsOf(attrs []workflow.Attr, want []workflow.Attr) ([]int, error) {
	out := make([]int, len(want))
	for i, a := range want {
		out[i] = -1
		for j, x := range attrs {
			if x == a {
				out[i] = j
				break
			}
		}
		if out[i] < 0 {
			return nil, fmt.Errorf("attribute %s not in schema %v", a, attrs)
		}
	}
	return out, nil
}
