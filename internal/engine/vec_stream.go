package engine

import (
	"fmt"
	"sync"

	"github.com/essential-stats/etlopt/internal/batch"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/physical"
)

// Columnar streaming interpreter. It executes the same compiled block plans
// as runStreamBlock, chunk-at-a-time over column vectors: input chains
// split into contiguous ranges processed through vectorized operators with
// per-worker statistic shards, and join trees execute as a probe cascade
// along the streamed spine — the base input partitioned by hash of the
// first probe key, each worker driving vector chunks through every probe
// stage with per-worker observers, miss accumulators and match marks.
// Workers <= 1 runs the same code over a single partition. All observable
// behavior matches the row streaming interpreter; the equivalence suite
// enforces it at several worker counts.

// vecStream is one block attempt's columnar streaming state.
type vecStream struct {
	e       *StreamEngine
	bp      *physical.BlockPlan
	col     *collector
	out     *blockSink
	metrics bool
	// arena is the block-attempt arena; worker goroutines take their own
	// chunk arenas and copy results out before releasing them.
	arena  *batch.Arena
	inputs []*batch.Batch
}

// runVecStreamBlock pipelines one compiled block columnar: chains cook
// their inputs chunk-at-a-time, the join spine probes vector chunks through
// every stage, and the pinned top operators evaluate whole-batch.
func (e *StreamEngine) runVecStreamBlock(bp *physical.BlockPlan, col *collector, out *blockSink) (*data.Table, error) {
	a := batch.GetArena()
	defer batch.PutArena(a)
	v := &vecStream{e: e, bp: bp, col: col, out: out, metrics: e.CollectMetrics, arena: a}
	v.inputs = make([]*batch.Batch, len(bp.Chains))
	for i, chain := range bp.Chains {
		b, err := v.runVecChain(chain)
		if err != nil {
			return nil, fmt.Errorf("input %d (%s): %w", i, bp.Block.Inputs[i].Name, err)
		}
		v.inputs[i] = b
	}
	var result *batch.Batch
	switch {
	case bp.JoinRoot == nil:
		// Join-free block: the compiler guarantees a single input.
		result = v.inputs[0]
	case bp.JoinRoot.Kind != physical.OpHashJoin:
		// Single-leaf tree: the root is the cooked chain end, already
		// tapped and counted by the chain pipeline.
		result = v.inputs[bp.JoinRoot.ChainInput]
	default:
		var err error
		if result, err = v.runVecSpine(bp.JoinRoot); err != nil {
			return nil, err
		}
	}
	for _, n := range bp.TopNodes {
		if err := v.out.ctxErr(); err != nil {
			return nil, err
		}
		if err := v.out.opFault(n); err != nil {
			return nil, err
		}
		if n.Kind == physical.OpMaterialize {
			// The materialized table outlives the arena: copy it out.
			v.out.materialized[n.Rel] = result.Table(n.Rel, n.Attrs)
			continue
		}
		next := vecApplyOp(n, result, v.arena)
		if err := v.out.count(int64(next.Rows())); err != nil {
			return nil, fmt.Errorf("top op %s: %w", n.Label, err)
		}
		taps, err := v.out.liveTaps(v.col, n.Taps)
		if err != nil {
			return nil, err
		}
		for _, t := range taps {
			v.col.collectVec(t, next)
		}
		if v.metrics {
			n.Metrics.Calls++
			n.Metrics.RowsOut += int64(next.Rows())
		}
		result = next
	}
	// The boundary output outlives the arena: copy it out.
	return result.Table("block", bp.Root.Attrs), nil
}

// runVecChain cooks one input chain into a batch, observing every chain
// point. Large bases with per-row chains fan out across workers in
// contiguous chunks, exactly like the row interpreter's parallel path.
func (v *vecStream) runVecChain(chain []*physical.Node) (*batch.Batch, error) {
	// Fault sites are checked up front for the whole chain — same sites,
	// same order as the row interpreters.
	for _, n := range chain {
		if err := v.out.opFault(n); err != nil {
			return nil, err
		}
	}
	scan := chain[0]
	base := scan.Src
	if scan.FromBlock >= 0 {
		up, ok := v.out.upstream[scan.FromBlock]
		if !ok {
			return nil, fmt.Errorf("upstream block %d not yet executed", scan.FromBlock)
		}
		base = up
	}
	// Fault-filter every node's taps once, before any fan-out, so the
	// injector's decision is made exactly once per site per attempt no
	// matter the worker count.
	liveTaps := make([][]physical.Tap, len(chain))
	for i, n := range chain {
		lt, err := v.out.liveTaps(v.col, n.Taps)
		if err != nil {
			return nil, err
		}
		liveTaps[i] = lt
	}
	if v.e.Workers > 1 && len(base.Rows) >= 2*v.e.Workers && perRowChain(chain) {
		return v.runVecChainParallel(chain, base, liveTaps)
	}
	b, err := batch.FromTable(base, v.arena)
	if err != nil {
		return nil, err
	}
	for i, n := range chain {
		if err := v.out.ctxErr(); err != nil {
			return nil, err
		}
		if i > 0 {
			b = vecApplyOp(n, b, v.arena)
		}
		live := int64(b.Rows())
		if err := v.out.count(live); err != nil {
			return nil, fmt.Errorf("%s: %w", n.Label, err)
		}
		for _, t := range liveTaps[i] {
			v.col.collectVec(t, b)
		}
		if v.metrics {
			n.Metrics.Calls++
			n.Metrics.RowsOut += live
		}
	}
	return b, nil
}

// runVecChainParallel runs a per-row chain over contiguous chunks of the
// base relation, one worker per chunk, each observing into private shards.
// Chunk outputs concatenate in order, so the cooked input's row order
// matches the sequential path exactly.
func (v *vecStream) runVecChainParallel(chain []*physical.Node, base *data.Table, liveTaps [][]physical.Tap) (*batch.Batch, error) {
	full, err := batch.FromTable(base, v.arena)
	if err != nil {
		return nil, err
	}
	w := v.e.Workers
	type chainShard struct {
		rows    int64
		obs     [][]vecObserver // per chain node, in depth order
		mets    []physical.Metrics
		outCols [][]int64 // chunk output, copied off the worker arena
		outN    int
		err     error
	}
	shards := make([]*chainShard, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		shard := &chainShard{
			obs:  make([][]vecObserver, len(chain)),
			mets: make([]physical.Metrics, len(chain)),
		}
		for i := range chain {
			shard.obs[i] = vecObserversFor(v.col, liveTaps[i])
		}
		shards[wi] = shard
		lo, hi := wi*full.N/w, (wi+1)*full.N/w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ca := batch.GetArena()
			defer batch.PutArena(ca)
			// The worker's chunk is a free view: column slices of the
			// shared base vectors.
			cols := make([][]int64, len(full.Cols))
			for c := range cols {
				cols[c] = full.Cols[c][lo:hi]
			}
			b := &batch.Batch{Cols: cols, N: hi - lo}
			var pend int64
			for i, n := range chain {
				if v.out.ctx != nil {
					if err := v.out.ctx.Err(); err != nil {
						shard.err = err
						return
					}
				}
				if i > 0 {
					b = vecApplyOp(n, b, ca)
				}
				live := int64(b.Rows())
				shard.rows += live
				shard.mets[i].Calls = 1
				shard.mets[i].RowsOut += live
				for _, o := range shard.obs[i] {
					o.observeVec(b)
				}
				if v.out.budget != nil {
					pend += live
					if pend >= budgetChunk {
						if err := v.out.budget.add(pend); err != nil {
							shard.err = fmt.Errorf("%s: %w", n.Label, err)
							return
						}
						pend = 0
					}
				}
			}
			if v.out.budget != nil && pend > 0 {
				if err := v.out.budget.add(pend); err != nil {
					shard.err = fmt.Errorf("%s: %w", chain[len(chain)-1].Label, err)
					return
				}
			}
			// The chunk output references the worker arena: copy the live
			// rows out before the arena is released.
			shard.outCols = batch.AppendLive(make([][]int64, len(b.Cols)), b)
			shard.outN = b.Rows()
		}()
	}
	wg.Wait()
	for _, shard := range shards {
		if shard.err != nil {
			return nil, shard.err
		}
	}
	// Concatenate chunk outputs in order, merge the statistic shards per
	// chain point, and fold the per-worker row counters (the budget was
	// already charged by the workers).
	width := len(shards[0].outCols)
	cat := make([][]int64, width)
	total := 0
	for _, shard := range shards {
		v.out.rows += shard.rows
		total += shard.outN
	}
	for c := 0; c < width; c++ {
		cat[c] = make([]int64, 0, total)
		for _, shard := range shards {
			cat[c] = append(cat[c], shard.outCols[c]...)
		}
	}
	for d, n := range chain {
		group := make([][]vecObserver, w)
		for wi, shard := range shards {
			group[wi] = shard.obs[d]
		}
		if err := mergeVecShards(group); err != nil {
			return nil, err
		}
		if v.metrics {
			for _, shard := range shards {
				n.Metrics.Merge(&shard.mets[d])
			}
		}
	}
	return &batch.Batch{Cols: cat, N: total}, nil
}

// vecSpineStage is one hash join along the streamed spine: the compiled
// node plus the indexed build side and the fault-filtered tap lists (made
// once at stage build, so every worker shares one injector decision per
// site).
type vecSpineStage struct {
	jn           *physical.Node
	right        *batch.Batch
	ix           *batch.JoinIndex
	taps         []physical.Tap
	leftSingles  []physical.Tap
	rightSingles []physical.Tap
	leftAux      []*physical.AuxJoin
	rightAux     []*physical.AuxJoin
	// needLeftMiss: the stage's left misses must be accumulated (reject
	// statistics, auxiliary joins or a designed reject link consume them).
	needLeftMiss bool
	// width is the cascade row width entering this stage.
	width int
}

// runVecSpine executes a join subtree as a partitioned columnar probe
// cascade: build sides indexed once, the base input's live rows partitioned
// by hash of the first probe key, each worker driving vector chunks through
// every stage. Workers <= 1 uses a single partition (preserving base
// order); the merged result is identical either way.
func (v *vecStream) runVecSpine(root *physical.Node) (*batch.Batch, error) {
	// Collect the streamed spine bottom-up; the spine leaf is the base
	// input every probe partition starts from.
	var joins []*physical.Node
	cur := root
	for cur.Kind == physical.OpHashJoin {
		joins = append(joins, cur)
		cur = cur.Left
	}
	for i, j := 0, len(joins)-1; i < j; i, j = i+1, j-1 {
		joins[i], joins[j] = joins[j], joins[i]
	}
	base := v.inputs[cur.ChainInput]

	stages := make([]*vecSpineStage, 0, len(joins))
	width := len(base.Cols)
	for _, jn := range joins {
		if err := v.out.ctxErr(); err != nil {
			return nil, err
		}
		if err := v.out.opFault(jn); err != nil {
			return nil, err
		}
		var right *batch.Batch
		if jn.Right.Kind == physical.OpHashJoin {
			var err error
			if right, err = v.runVecSpine(jn.Right); err != nil {
				return nil, err
			}
		} else {
			right = v.inputs[jn.Right.ChainInput]
		}
		st := &vecSpineStage{jn: jn, right: right, width: width}
		st.ix = batch.NewJoinIndex(right.Cols[jn.RightCol], right.Sel, right.N, v.arena)
		var err error
		if st.taps, err = v.out.liveTaps(v.col, jn.Taps); err != nil {
			return nil, err
		}
		if jn.LeftReject != nil {
			if st.leftSingles, err = v.out.liveTaps(v.col, jn.LeftReject.Singles); err != nil {
				return nil, err
			}
			if st.leftAux, err = v.out.liveAux(v.col, jn.LeftReject.Aux); err != nil {
				return nil, err
			}
		}
		if jn.RightReject != nil {
			if st.rightSingles, err = v.out.liveTaps(v.col, jn.RightReject.Singles); err != nil {
				return nil, err
			}
			if st.rightAux, err = v.out.liveAux(v.col, jn.RightReject.Aux); err != nil {
				return nil, err
			}
		}
		st.needLeftMiss = len(st.leftSingles) > 0 || len(st.leftAux) > 0 || jn.RejectLink != ""
		width += len(right.Cols)
		stages = append(stages, st)
	}

	w := v.e.Workers
	if w < 1 {
		w = 1
	}
	// Partition the base's live rows by hash of the first probe key: all
	// rows of one key land on one worker, rows keep relative order within a
	// partition.
	parts := make([][]int32, w)
	keyCol := base.Cols[stages[0].jn.LeftCol]
	addPart := func(ri int32) {
		p := int(splitmix64(uint64(keyCol[ri])) % uint64(w))
		parts[p] = append(parts[p], ri)
	}
	if base.Sel != nil {
		for _, ri := range base.Sel {
			addPart(ri)
		}
	} else {
		for ri := 0; ri < base.N; ri++ {
			addPart(int32(ri))
		}
	}

	type stageShard struct {
		seObs    []vecObserver
		missCols [][]int64 // accumulated left-miss rows (heap)
		missN    int
		marks    []bool // matched build rows (nil unless RightReject)
	}
	type spineShard struct {
		rows    int64
		outCols [][]int64
		outN    int
		stages  []stageShard
		mets    []physical.Metrics
		err     error
	}
	finalWidth := width
	shards := make([]*spineShard, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		shard := &spineShard{
			outCols: make([][]int64, finalWidth),
			stages:  make([]stageShard, len(stages)),
			mets:    make([]physical.Metrics, len(stages)),
		}
		for si, st := range stages {
			shard.stages[si].seObs = vecObserversFor(v.col, st.taps)
			if st.needLeftMiss {
				shard.stages[si].missCols = make([][]int64, st.width)
			}
			if st.jn.RightReject != nil {
				shard.stages[si].marks = make([]bool, st.right.N)
			}
		}
		shards[wi] = shard
		part := parts[wi]
		wg.Add(1)
		go func() {
			defer wg.Done()
			ca := batch.GetArena()
			defer batch.PutArena(ca)
			var lidx, ridx []int32
			var pend int64
			for start := 0; start < len(part); start += vecJoinChunk {
				if v.out.ctx != nil {
					if err := v.out.ctx.Err(); err != nil {
						shard.err = err
						return
					}
				}
				end := start + vecJoinChunk
				if end > len(part) {
					end = len(part)
				}
				cur := &batch.Batch{Cols: base.Cols, N: base.N, Sel: part[start:end]}
				for si, st := range stages {
					ss := &shard.stages[si]
					lidx, ridx = lidx[:0], ridx[:0]
					missSel := ca.Int32(cur.Rows())
					nMiss := 0
					probeCol := cur.Cols[st.jn.LeftCol]
					probe := func(li int32) {
						r := st.ix.First(probeCol[li])
						if r < 0 {
							missSel[nMiss] = li
							nMiss++
							return
						}
						for ; r >= 0; r = st.ix.Next(r) {
							lidx = append(lidx, li)
							ridx = append(ridx, r)
							if ss.marks != nil {
								ss.marks[r] = true
							}
						}
					}
					if cur.Sel != nil {
						for _, li := range cur.Sel {
							probe(li)
						}
					} else {
						for li := 0; li < cur.N; li++ {
							probe(int32(li))
						}
					}
					if nMiss > 0 && st.needLeftMiss {
						miss := &batch.Batch{Cols: cur.Cols, N: cur.N, Sel: missSel[:nMiss]}
						ss.missCols = batch.AppendLive(ss.missCols, miss)
						ss.missN += nMiss
					}
					// Gather matched pairs into the next cascade batch.
					m := len(lidx)
					wL, wR := len(cur.Cols), len(st.right.Cols)
					cols := make([][]int64, wL+wR)
					for c := 0; c < wL; c++ {
						cols[c] = ca.Int64(m)
						batch.Gather(cols[c], cur.Cols[c], lidx)
					}
					for c := 0; c < wR; c++ {
						cols[wL+c] = ca.Int64(m)
						batch.Gather(cols[wL+c], st.right.Cols[c], ridx)
					}
					cur = &batch.Batch{Cols: cols, N: m}
					for _, o := range ss.seObs {
						o.observeVec(cur)
					}
					shard.rows += int64(m)
					shard.mets[si].Calls = 1
					shard.mets[si].RowsOut += int64(m)
					if v.out.budget != nil {
						pend += int64(m)
						if pend >= budgetChunk {
							if err := v.out.budget.add(pend); err != nil {
								shard.err = fmt.Errorf("%s: %w", st.jn.Label, err)
								return
							}
							pend = 0
						}
					}
				}
				shard.outCols = batch.AppendLive(shard.outCols, cur)
				shard.outN += cur.Rows()
				ca.Reset()
			}
			if v.out.budget != nil && pend > 0 {
				if err := v.out.budget.add(pend); err != nil {
					shard.err = fmt.Errorf("%s: %w", stages[len(stages)-1].jn.Label, err)
				}
			}
		}()
	}
	wg.Wait()
	for _, shard := range shards {
		if shard.err != nil {
			return nil, shard.err
		}
	}

	// Merge: worker outputs concatenate, observer shards fold into the
	// store, miss accumulators concatenate (reject statistics, auxiliary
	// joins, reject links), match marks union so build-side misses are
	// computed once.
	cat := make([][]int64, finalWidth)
	total := 0
	for _, shard := range shards {
		v.out.rows += shard.rows
		total += shard.outN
	}
	for c := 0; c < finalWidth; c++ {
		cat[c] = make([]int64, 0, total)
		for _, shard := range shards {
			cat[c] = append(cat[c], shard.outCols[c]...)
		}
	}
	for si, st := range stages {
		jn := st.jn
		if v.metrics {
			for _, shard := range shards {
				jn.Metrics.Merge(&shard.mets[si])
			}
		}
		seGroup := make([][]vecObserver, w)
		for wi, shard := range shards {
			seGroup[wi] = shard.stages[si].seObs
		}
		if err := mergeVecShards(seGroup); err != nil {
			return nil, err
		}
		if st.needLeftMiss {
			missCols := make([][]int64, st.width)
			missN := 0
			for _, shard := range shards {
				missN += shard.stages[si].missN
			}
			for c := 0; c < st.width; c++ {
				missCols[c] = make([]int64, 0, missN)
				for _, shard := range shards {
					missCols[c] = append(missCols[c], shard.stages[si].missCols[c]...)
				}
			}
			miss := &batch.Batch{Cols: missCols, N: missN}
			for _, t := range st.leftSingles {
				v.col.collectVec(t, miss)
			}
			for _, aj := range st.leftAux {
				v.col.collectAux(aj, miss, v.inputs[aj.Partner], v.arena)
			}
			if jn.RejectLink != "" {
				v.out.materialized[jn.RejectLink] = miss.Table("reject", jn.Left.Attrs)
			}
		}
		if jn.RightReject != nil {
			marks := shards[0].stages[si].marks
			for _, shard := range shards[1:] {
				for r, m := range shard.stages[si].marks {
					if m {
						marks[r] = true
					}
				}
			}
			missSel := v.arena.Int32(st.right.Rows())
			nMiss := 0
			sweep := func(ri int32) {
				if !marks[ri] {
					missSel[nMiss] = ri
					nMiss++
				}
			}
			if st.right.Sel != nil {
				for _, ri := range st.right.Sel {
					sweep(ri)
				}
			} else {
				for ri := 0; ri < st.right.N; ri++ {
					sweep(int32(ri))
				}
			}
			miss := &batch.Batch{Cols: st.right.Cols, N: st.right.N, Sel: missSel[:nMiss]}
			for _, t := range st.rightSingles {
				v.col.collectVec(t, miss)
			}
			for _, aj := range st.rightAux {
				v.col.collectAux(aj, miss, v.inputs[aj.Partner], v.arena)
			}
		}
	}
	return &batch.Batch{Cols: cat, N: total}, nil
}
