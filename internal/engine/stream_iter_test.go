package engine

import (
	"testing"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/workflow"
)

func tbl2(rel string, cols []string, rows ...[]int64) *data.Table {
	t := &data.Table{Rel: rel}
	for _, c := range cols {
		t.Attrs = append(t.Attrs, workflow.Attr{Rel: rel, Col: c})
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, data.Row(r))
	}
	return t
}

func drainAll(t *testing.T, it Iterator) []data.Row {
	t.Helper()
	if err := it.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	var out []data.Row
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		out = append(out, r)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return out
}

func TestScanIter(t *testing.T) {
	src := tbl2("T", []string{"a"}, []int64{1}, []int64{2}, []int64{3})
	rows := drainAll(t, &scanIter{tbl: src})
	if len(rows) != 3 || rows[2][0] != 3 {
		t.Fatalf("rows = %v", rows)
	}
	// Re-open restarts the scan.
	it := &scanIter{tbl: src}
	_ = drainAll(t, it)
	again := drainAll(t, it)
	if len(again) != 3 {
		t.Fatalf("reopened scan returned %d rows", len(again))
	}
}

func TestFilterIter(t *testing.T) {
	src := tbl2("T", []string{"a"}, []int64{1}, []int64{5}, []int64{9})
	pred := &workflow.Predicate{Attr: workflow.Attr{Rel: "T", Col: "a"}, Op: workflow.CmpGt, Const: 3}
	rows := drainAll(t, &filterIter{src: &scanIter{tbl: src}, col: 0, pred: pred})
	if len(rows) != 2 || rows[0][0] != 5 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestProjectAndTransformIter(t *testing.T) {
	src := tbl2("T", []string{"a", "b"}, []int64{1, 10}, []int64{2, 20})
	proj := &projectIter{src: &scanIter{tbl: src}, cols: []int{1}}
	rows := drainAll(t, proj)
	if len(rows) != 2 || rows[1][0] != 20 {
		t.Fatalf("project rows = %v", rows)
	}
	double := func(v []int64) int64 { return v[0] * 2 }
	tr := &transformIter{src: &scanIter{tbl: src}, fn: double, ins: []int{0}}
	rows = drainAll(t, tr)
	if len(rows) != 2 || rows[0][2] != 2 || rows[1][2] != 4 {
		t.Fatalf("transform rows = %v", rows)
	}
}

func TestGroupByIter(t *testing.T) {
	src := tbl2("T", []string{"a", "b"}, []int64{1, 1}, []int64{1, 2}, []int64{2, 1})
	g := &groupByIter{src: &scanIter{tbl: src}, cols: []int{0}}
	rows := drainAll(t, g)
	if len(rows) != 2 {
		t.Fatalf("groups = %v", rows)
	}
}

func TestHashJoinIterMisses(t *testing.T) {
	left := tbl2("L", []string{"k"}, []int64{1}, []int64{2}, []int64{3})
	right := tbl2("R", []string{"k"}, []int64{2}, []int64{2}, []int64{4})
	var lMiss, rMiss []int64
	j := &hashJoinIter{
		left: &scanIter{tbl: left}, right: right, lc: 0, rc: 0,
		onLeftMiss:  func(r data.Row) { lMiss = append(lMiss, r[0]) },
		onRightMiss: func(r data.Row) { rMiss = append(rMiss, r[0]) },
	}
	rows := drainAll(t, j)
	if len(rows) != 2 { // key 2 matches twice
		t.Fatalf("joined = %v", rows)
	}
	if len(lMiss) != 2 || len(rMiss) != 1 || rMiss[0] != 4 {
		t.Fatalf("misses: left %v right %v", lMiss, rMiss)
	}
}

func TestTapIterCountsAndObserves(t *testing.T) {
	src := tbl2("T", []string{"a"}, []int64{7}, []int64{7}, []int64{8})
	var rows int64
	counter := &countingObserver{}
	it := &tapIter{src: &scanIter{tbl: src}, observers: []rowObserver{counter}, rows: &rows}
	_ = drainAll(t, it)
	if rows != 3 || counter.n != 3 || !counter.finished {
		t.Fatalf("rows=%d observer=%+v", rows, counter)
	}
}

type countingObserver struct {
	n        int
	finished bool
}

func (c *countingObserver) observe(data.Row) { c.n++ }
func (c *countingObserver) finish()          { c.finished = true }
