package engine

import (
	"context"
	"errors"
	"testing"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/faults"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// resumableEngine is the surface the checkpoint/resume edge-case tests
// exercise on both engines.
type resumableEngine interface {
	RunPlans(plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error)
	RunPlansObserving(plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error)
	Resume(ctx context.Context, cp *Checkpoint, plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error)
	ResumeObserving(ctx context.Context, cp *Checkpoint, plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error)
}

// resumeFixture holds the shared multi-block workflow under test.
type resumeFixture struct {
	an      *workflow.Analysis
	db      DB
	res     *css.Result
	observe []stats.Stat
}

func newResumeFixture(t *testing.T) *resumeFixture {
	t.Helper()
	db, cat := tinyDB()
	an, err := workflow.Analyze(multiBlockGraph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(an.Blocks) < 3 {
		t.Fatalf("want a multi-block analysis, got %d blocks", len(an.Blocks))
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return &resumeFixture{an: an, db: db, res: res, observe: res.ObservableStats()}
}

// engine builds a batch or stream engine over the fixture, optionally
// faulted.
func (f *resumeFixture) engine(stream bool, flt *faults.Injector) resumableEngine {
	if stream {
		e := NewStream(f.an, f.db, nil)
		e.Faults = flt
		return e
	}
	e := New(f.an, f.db, nil)
	e.Faults = flt
	return e
}

// run executes the instrumented initial plan, with or without the
// initial-plan observability filter.
func (f *resumeFixture) run(e resumableEngine, anyPoint bool) (*Result, error) {
	if anyPoint {
		return e.RunPlansObserving(nil, f.res, f.observe)
	}
	return e.RunPlans(nil, f.res, f.observe)
}

// resume continues from a checkpoint with the matching observation mode.
func (f *resumeFixture) resume(e resumableEngine, cp *Checkpoint, anyPoint bool) (*Result, error) {
	if anyPoint {
		return e.ResumeObserving(context.Background(), cp, nil, f.res, f.observe)
	}
	return e.Resume(context.Background(), cp, nil, f.res, f.observe)
}

// failingCheckpoint finds (deterministically — the injector is a pure
// function of its seed) a permanent fault pattern that fails the run after
// at least one block completed, and returns the *BlockFailure checkpoint.
func (f *resumeFixture) failingCheckpoint(t *testing.T, stream, anyPoint bool) *Checkpoint {
	t.Helper()
	for seed := uint64(1); seed <= 200; seed++ {
		inj := faults.New(seed, 0.5, 0, faults.SourceRead|faults.Operator)
		_, err := f.run(f.engine(stream, inj), anyPoint)
		var bf *BlockFailure
		if errors.As(err, &bf) && len(bf.Checkpoint.BlockOut) > 0 {
			return bf.Checkpoint
		}
	}
	t.Fatal("no seed in 1..200 produced a mid-run permanent failure")
	return nil
}

// TestResumeEmptyPendingCone resumes a checkpoint that already contains
// every block: nothing re-executes, and the result — sinks routed from the
// checkpointed outputs, work metric, observed statistics — must equal the
// original run on both engines and in both observation modes.
func TestResumeEmptyPendingCone(t *testing.T) {
	f := newResumeFixture(t)
	for _, stream := range []bool{false, true} {
		for _, anyPoint := range []bool{false, true} {
			name := engineLabel(stream) + observeLabel(anyPoint)
			clean, err := f.run(f.engine(stream, nil), anyPoint)
			if err != nil {
				t.Fatalf("%s: clean run: %v", name, err)
			}
			cp := &Checkpoint{
				BlockOut:     clean.BlockOut,
				Materialized: clean.Materialized,
				Rows:         clean.Rows,
				Observed:     clean.Observed,
			}
			resumed, err := f.resume(f.engine(stream, nil), cp, anyPoint)
			if err != nil {
				t.Fatalf("%s: resume of a complete checkpoint: %v", name, err)
			}
			equalResults(t, name+"/complete-checkpoint", clean, resumed)
			if resumed.Retries != 0 {
				t.Errorf("%s: resume of a complete checkpoint retried %d times", name, resumed.Retries)
			}
		}
	}
}

// TestResumeSameCheckpointTwice resumes one failure checkpoint twice (and
// across engines): both resumes must complete and match the clean run —
// the write-once statistics store and the block-skip logic make resumption
// idempotent.
func TestResumeSameCheckpointTwice(t *testing.T) {
	f := newResumeFixture(t)
	for _, stream := range []bool{false, true} {
		for _, anyPoint := range []bool{false, true} {
			name := engineLabel(stream) + observeLabel(anyPoint)
			clean, err := f.run(f.engine(stream, nil), anyPoint)
			if err != nil {
				t.Fatalf("%s: clean run: %v", name, err)
			}
			cp := f.failingCheckpoint(t, stream, anyPoint)
			first, err := f.resume(f.engine(stream, nil), cp, anyPoint)
			if err != nil {
				t.Fatalf("%s: first resume: %v", name, err)
			}
			equalResults(t, name+"/first-resume", clean, first)
			second, err := f.resume(f.engine(stream, nil), cp, anyPoint)
			if err != nil {
				t.Fatalf("%s: second resume of the same checkpoint: %v", name, err)
			}
			equalResults(t, name+"/second-resume", clean, second)
		}
	}
}

// TestResumeCrossEngine pins the Checkpoint's engine independence: a
// checkpoint produced by the batch engine resumes on the stream engine
// (and vice versa) with identical results.
func TestResumeCrossEngine(t *testing.T) {
	f := newResumeFixture(t)
	for _, fromStream := range []bool{false, true} {
		name := "from-" + engineLabel(fromStream)
		clean, err := f.run(f.engine(!fromStream, nil), false)
		if err != nil {
			t.Fatalf("%s: clean run: %v", name, err)
		}
		cp := f.failingCheckpoint(t, fromStream, false)
		got, err := f.resume(f.engine(!fromStream, nil), cp, false)
		if err != nil {
			t.Fatalf("%s: cross-engine resume: %v", name, err)
		}
		equalResults(t, name, clean, got)
	}
}

func engineLabel(stream bool) string {
	if stream {
		return "stream"
	}
	return "batch"
}

func observeLabel(anyPoint bool) string {
	if anyPoint {
		return "/observing"
	}
	return "/filtered"
}
