package engine

import (
	"context"
	"errors"
	"sort"
	"sync"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Distributed block dispatch. A run with Engine.Dispatch (or
// StreamEngine.Dispatch) set schedules its blocks through a
// BlockDispatcher — in practice internal/serve's Coordinator, which leases
// each block to a worker process over HTTP — instead of executing them on
// local goroutines. The engine keeps everything else: the compiled plan
// and its dependency DAG, the Result layout, checkpoint seeding, sink
// routing, and the commit discipline. A remote block returns its boundary
// output, materialized tables, work-metric rows and a private statistics
// shard; the scheduler commits each block exactly once and merges the
// shard into the run's store the same way the in-process engines merge
// per-worker tap shards, so observed statistics are byte-identical however
// the blocks were placed.
//
// Robustness is structural, not best-effort: a dispatcher signals
// unrecoverable infrastructure loss with ErrWorkersLost, and the scheduler
// then degrades gracefully — it stops dispatching, treats the committed
// blocks as a checkpoint, and finishes the remaining cone in-process with
// the run's own blockRunner. The caller always gets either a complete
// Result or a typed *BlockFailure; never a silently partial one.

// ErrWorkersLost is the dispatcher's terminal signal: every worker is dead
// or unreachable past the dispatcher's retry budget. The scheduler reacts
// by falling back to in-process execution from the last checkpoint.
var ErrWorkersLost = errors.New("engine: all workers lost")

// DispatchSpec tells the dispatcher what run its workers must reproduce:
// the per-block join trees (nil = initial plans), the statistics to
// observe, and the observability mode. Workers reconstruct workflow, data
// and compiled plan deterministically on their side; the spec carries only
// what varies per run.
type DispatchSpec struct {
	// Plans maps block index to the join tree to execute (nil map or
	// missing entry = the block's initial tree).
	Plans map[int]*workflow.JoinTree
	// Observe lists the statistics to collect; empty for uninstrumented
	// runs.
	Observe []stats.Stat
	// Instrument reports whether the run is instrumented at all (a run can
	// be instrumented with an empty tap set on some blocks).
	Instrument bool
	// AnyPoint lifts the initial-plan observability filter (see
	// Engine.RunPlansObserving).
	AnyPoint bool
}

// RemoteBlock is one block's execution outcome as returned by a worker:
// exactly the state an in-process blockSink accumulates, plus the
// statistics shard the block's taps observed.
type RemoteBlock struct {
	// Out is the block's boundary output.
	Out *data.Table
	// Materialized holds the block's materialized targets (reject links,
	// explicit materializations).
	Materialized map[string]*data.Table
	// Rows is the block's work-metric contribution.
	Rows int64
	// Observed is the block's statistics shard (nil when uninstrumented).
	Observed *stats.Store
	// Degraded lists statistics whose observation failed permanently on
	// the worker.
	Degraded []FailedStat
	// Retries counts worker-side block attempts repeated after transient
	// faults.
	Retries int64
}

// DistSummary is the dispatcher's own accounting of a finished run.
type DistSummary struct {
	// Reassigned counts dispatch attempts that were retried, on the same
	// or another worker, after a lease expired or a request failed.
	Reassigned int64
	// LostWorkers lists worker addresses marked dead during the run.
	LostWorkers []string
}

// RunDispatch is one run's dispatch session.
type RunDispatch interface {
	// RunBlock executes one block remotely. The upstream map carries the
	// boundary outputs of every block this block reads from. An error
	// wrapping ErrWorkersLost means dispatch is permanently unavailable;
	// any other error is the block's own (deterministic) execution error.
	RunBlock(ctx context.Context, block int, upstream map[int]*data.Table) (*RemoteBlock, error)
	// Slots bounds how many blocks the scheduler keeps in flight.
	Slots() int
	// Summary reports the session's fault-handling accounting so far.
	Summary() DistSummary
}

// BlockDispatcher opens dispatch sessions; internal/serve's Coordinator
// implements it.
type BlockDispatcher interface {
	DispatchRun(ctx context.Context, spec *DispatchSpec) (RunDispatch, error)
}

// DistReport records how a distributed run was actually placed; it rides
// on Result.Dist.
type DistReport struct {
	// Remote lists blocks executed on workers (ascending).
	Remote []int
	// Local lists blocks executed in-process after a fallback (ascending).
	Local []int
	// Reassigned counts dispatch attempts retried after lease expiry or
	// request failure.
	Reassigned int64
	// LostWorkers lists worker addresses marked dead during the run.
	LostWorkers []string
	// FellBack reports that the run degraded to in-process execution for
	// at least one block (all workers lost); the run still completed.
	FellBack bool
	// Reason is the fallback trigger, empty unless FellBack.
	Reason string
}

// runBlocksDist schedules the compiled blocks through a dispatch session,
// mirroring runBlocksDAG's commit discipline: ready blocks dispatch
// concurrently (bounded by the session's slots), the lowest-index ready
// block first, and on a permanent block error the lowest failing index is
// reported as a *BlockFailure carrying the checkpoint of what completed.
// When the session reports ErrWorkersLost, the remaining blocks — the
// pending cone — execute in-process from the committed state via the
// local runner, and the report marks the run degraded.
func runBlocksDist(plan *physical.Plan, localWorkers int, env *runEnv, out *Result, col *collector, disp BlockDispatcher, spec *DispatchSpec, local blockRunner) error {
	report := &DistReport{}
	out.Dist = report
	rd, err := disp.DispatchRun(env.ctx, spec)
	if err != nil {
		// The session could not even open (no reachable worker): the whole
		// run degrades to in-process execution.
		report.FellBack = true
		report.Reason = err.Error()
		err := runBlocksDAG(plan, localWorkers, env, out, local)
		report.Local = blocksRun(plan, out, nil)
		return err
	}

	deps := blockDeps(plan)
	slots := rd.Slots()
	if slots < 1 {
		slots = 1
	}
	if slots > len(plan.Blocks) {
		slots = len(plan.Blocks)
	}
	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		started = make(map[int]bool, len(plan.Blocks))
		done    = make(map[int]bool, len(plan.Blocks))
		errs    = make(map[int]error)
		lost    error
		left    = len(plan.Blocks)
		preDone = make(map[int]bool, len(plan.Blocks))
	)
	for _, bp := range plan.Blocks {
		if _, ok := out.BlockOut[bp.Block.Index]; ok {
			started[bp.Block.Index] = true
			done[bp.Block.Index] = true
			preDone[bp.Block.Index] = true
			left--
		}
	}
	nextReady := func() *physical.BlockPlan {
		for _, bp := range plan.Blocks {
			if started[bp.Block.Index] {
				continue
			}
			ready := true
			for _, d := range deps[bp.Block.Index] {
				if !done[d] {
					ready = false
					break
				}
			}
			if ready {
				return bp
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	dispatcher := func() {
		defer wg.Done()
		mu.Lock()
		defer mu.Unlock()
		for {
			if len(errs) > 0 || lost != nil || left == 0 {
				return
			}
			bp := nextReady()
			if bp == nil {
				cond.Wait()
				continue
			}
			idx := bp.Block.Index
			started[idx] = true
			upstream := make(map[int]*data.Table, len(deps[idx]))
			for _, d := range deps[idx] {
				upstream[d] = out.BlockOut[d]
			}
			mu.Unlock()
			rb, err := rd.RunBlock(env.ctx, idx, upstream)
			mu.Lock()
			switch {
			case err != nil && errors.Is(err, ErrWorkersLost):
				// Infrastructure loss, not a block error: hand the block
				// back so the local fallback re-runs it.
				started[idx] = false
				lost = err
			case err != nil:
				errs[idx] = err
				left--
			default:
				commitRemote(out, col, env, idx, rb)
				report.Remote = append(report.Remote, idx)
				done[idx] = true
				left--
			}
			cond.Broadcast()
		}
	}
	wg.Add(slots)
	for i := 0; i < slots; i++ {
		go dispatcher()
	}
	wg.Wait()
	sort.Ints(report.Remote)
	sum := rd.Summary()
	report.Reassigned = sum.Reassigned
	report.LostWorkers = sum.LostWorkers

	if len(errs) > 0 {
		idxs := make([]int, 0, len(errs))
		for i := range errs {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		return &BlockFailure{
			Block:      idxs[0],
			Checkpoint: checkpointOf(out, idxs),
			Err:        errs[idxs[0]],
		}
	}
	if lost != nil {
		// Graceful degradation: everything committed so far is a
		// checkpoint; the pending cone completes in-process. The result is
		// whole — only the placement degraded.
		report.FellBack = true
		report.Reason = lost.Error()
		if err := env.ctx.Err(); err != nil {
			return err
		}
		err := runBlocksDAG(plan, localWorkers, env, out, local)
		report.Local = blocksRun(plan, out, remoteOrSeeded(report.Remote, preDone))
		return err
	}
	return nil
}

// commitRemote folds one remote block's outcome into the run — the single
// commit point. Duplicate deliveries (a retried dispatch whose first
// response was lost) are impossible past the scheduler's started map, but
// the guard keeps the commit idempotent regardless.
func commitRemote(out *Result, col *collector, env *runEnv, idx int, rb *RemoteBlock) {
	if _, ok := out.BlockOut[idx]; ok {
		return
	}
	out.BlockOut[idx] = rb.Out
	for k, v := range rb.Materialized {
		out.Materialized[k] = v
	}
	out.Rows += rb.Rows
	env.retries.Add(rb.Retries)
	if col != nil {
		if rb.Observed != nil {
			col.store.Merge(rb.Observed)
		}
		for _, fs := range rb.Degraded {
			col.markFailed(fs.Stat, fs.Err)
		}
	}
}

// remoteOrSeeded builds the set of blocks that did not run locally: the
// remotely committed ones plus those already present from a checkpoint.
func remoteOrSeeded(remote []int, preDone map[int]bool) map[int]bool {
	m := make(map[int]bool, len(remote)+len(preDone))
	for _, i := range remote {
		m[i] = true
	}
	for i := range preDone {
		m[i] = true
	}
	return m
}

// blocksRun lists the blocks present in out that are not in skip,
// ascending — the blocks the local fallback actually executed.
func blocksRun(plan *physical.Plan, out *Result, skip map[int]bool) []int {
	var idxs []int
	for _, bp := range plan.Blocks {
		i := bp.Block.Index
		if skip[i] {
			continue
		}
		if _, ok := out.BlockOut[i]; ok {
			idxs = append(idxs, i)
		}
	}
	sort.Ints(idxs)
	return idxs
}

// RunBlockCtx executes exactly one block of the workflow — the worker side
// of distributed dispatch. The caller supplies the boundary outputs of
// every upstream block; the engine compiles the same deterministic
// physical plan a full run would, executes just the requested block (with
// the usual per-attempt isolation, transient retry and fault injection),
// and returns the block's outcome plus a private statistics shard holding
// only what this block's taps observed.
func (e *Engine) RunBlockCtx(ctx context.Context, block int, plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat, anyPoint bool, upstream map[int]*data.Table) (*RemoteBlock, error) {
	plan, err := physical.Compile(e.An, e.DB, physical.Options{
		Plans: plans, Res: res, Observe: observe, AnyPoint: anyPoint, Reg: e.Reg,
	})
	if err != nil {
		return nil, err
	}
	runner := func(bp *physical.BlockPlan, sink *blockSink) (*data.Table, error) {
		return runVecBlock(bp, nil, sink, false)
	}
	var col *collector
	if res != nil {
		col = newCollector()
		if e.RowMode {
			runner = func(bp *physical.BlockPlan, sink *blockSink) (*data.Table, error) {
				return runBatchBlock(bp, col, sink, false)
			}
		} else {
			runner = func(bp *physical.BlockPlan, sink *blockSink) (*data.Table, error) {
				return runVecBlock(bp, col, sink, false)
			}
		}
	} else if e.RowMode {
		runner = func(bp *physical.BlockPlan, sink *blockSink) (*data.Table, error) {
			return runBatchBlock(bp, nil, sink, false)
		}
	}
	env := newRunEnv(ctx, newRowBudget(e.MaxRows), e.Faults, e.RetryMax, e.RetryBackoff)
	return runOneBlock(plan, block, col, env, upstream, runner)
}

// RunBlockCtx is the streaming engine's single-block worker entry point
// (see Engine.RunBlockCtx — the outcome is engine-independent).
func (e *StreamEngine) RunBlockCtx(ctx context.Context, block int, plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat, anyPoint bool, upstream map[int]*data.Table) (*RemoteBlock, error) {
	plan, err := physical.Compile(e.An, e.DB, physical.Options{
		Plans: plans, Res: res, Observe: observe, AnyPoint: anyPoint, Reg: e.Reg,
	})
	if err != nil {
		return nil, err
	}
	var col *collector
	if res != nil {
		col = newCollector()
	}
	runner := func(bp *physical.BlockPlan, sink *blockSink) (*data.Table, error) {
		return e.runVecStreamBlock(bp, col, sink)
	}
	if e.RowMode {
		runner = func(bp *physical.BlockPlan, sink *blockSink) (*data.Table, error) {
			return e.runStreamBlock(bp, col, sink)
		}
	}
	env := newRunEnv(ctx, newRowBudget(e.MaxRows), e.Faults, e.RetryMax, e.RetryBackoff)
	return runOneBlock(plan, block, col, env, upstream, runner)
}

// runOneBlock finds the compiled block, runs it with the shared
// fault-tolerance machinery, and snapshots the sink into a RemoteBlock.
func runOneBlock(plan *physical.Plan, block int, col *collector, env *runEnv, upstream map[int]*data.Table, run blockRunner) (*RemoteBlock, error) {
	var bp *physical.BlockPlan
	for _, b := range plan.Blocks {
		if b.Block.Index == block {
			bp = b
			break
		}
	}
	if bp == nil {
		return nil, errors.New("engine: no such block in compiled plan")
	}
	for _, d := range blockDeps(plan)[block] {
		if upstream[d] == nil {
			return nil, errors.New("engine: missing upstream boundary output for block dispatch")
		}
	}
	tbl, sink, err := env.runBlock(bp, upstream, run)
	if err != nil {
		return nil, err
	}
	rb := &RemoteBlock{
		Out:          tbl,
		Materialized: sink.materialized,
		Rows:         sink.rows,
		Degraded:     col.failedStats(),
		Retries:      env.retries.Load(),
	}
	if col != nil {
		rb.Observed = col.store
	}
	return rb, nil
}
