package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/physical"
)

// Intra-operator parallelism for the streaming engine. With Workers > 1 a
// block's scan→filter→probe pipelines are partitioned across goroutines:
//
//   - Input chains split into contiguous row chunks; each worker runs the
//     compiled operator chain over its chunk with private statistic shards.
//     Concatenating the chunk outputs in order reproduces the sequential
//     row order exactly (chains carry only per-row operators).
//   - Join trees execute as a probe cascade along the streamed (left)
//     spine: every build side is materialized once and indexed, the base
//     input is partitioned by hash of the first probe key (splitmix64, so
//     all rows of one key land on one worker), and each worker drives its
//     rows through every probe stage with per-worker observers, miss sinks
//     and matched-key sets.
//
// After a pipeline drains, the per-worker shards merge (counts add,
// histogram buckets add, distinct sets union) and the merged observer
// records into the store — so every observed statistic is identical to the
// sequential run's, which the cross-check tests assert at Workers=4.
//
// The run's row budget is shared across workers; shards charge it in
// chunks so the guard stays cheap under contention while still aborting a
// blowing-up cascade promptly.

// budgetChunk is how many rows a worker accumulates locally before charging
// the shared row budget.
const budgetChunk = 1024

// shardTapIter is tapIter without the end-of-stream finish: worker shards
// are finished exactly once, by the merge step, not per worker. Its row
// counter is shard-private; only the budget is shared (charged in chunks).
type shardTapIter struct {
	src       Iterator
	observers []rowObserver
	rows      *int64
	budget    *rowBudget
	at        string
	pend      int64
	// ctx, when non-nil, is polled once per budget chunk so cancellation
	// reaches every worker promptly.
	ctx  context.Context
	tick int64
	// met is this worker's private metrics shard for the node (merged by
	// the coordinating goroutine after the pipeline drains, like the
	// observer shards); nil keeps the hot path timing-free.
	met *physical.Metrics
}

// pollCtx checks for cancellation every budgetChunk passing rows.
func (t *shardTapIter) pollCtx() error {
	if t.ctx == nil {
		return nil
	}
	t.tick++
	if t.tick%budgetChunk != 0 {
		return nil
	}
	return t.ctx.Err()
}

func (t *shardTapIter) Open() error {
	if t.met != nil {
		t.met.Calls++
	}
	return t.src.Open()
}
func (t *shardTapIter) Next() (data.Row, bool, error) {
	if t.met != nil {
		return t.nextMetered()
	}
	r, ok, err := t.src.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	if err := t.pollCtx(); err != nil {
		return nil, false, err
	}
	for _, o := range t.observers {
		o.observe(r)
	}
	if t.rows != nil {
		*t.rows++
	}
	if t.budget != nil {
		t.pend++
		if t.pend >= budgetChunk {
			if err := t.budget.add(t.pend); err != nil {
				return nil, false, fmt.Errorf("%s: %w", t.at, err)
			}
			t.pend = 0
		}
	}
	return r, true, nil
}

// nextMetered mirrors tapIter.nextMetered with the shard's chunked budget.
func (t *shardTapIter) nextMetered() (data.Row, bool, error) {
	start := time.Now()
	r, ok, err := t.src.Next()
	t.met.WallNanos += time.Since(start).Nanoseconds()
	if err != nil || !ok {
		return nil, false, err
	}
	if err := t.pollCtx(); err != nil {
		return nil, false, err
	}
	t.met.RowsOut++
	if len(t.observers) > 0 {
		tapStart := time.Now()
		for _, o := range t.observers {
			o.observe(r)
		}
		t.met.TapNanos += time.Since(tapStart).Nanoseconds()
	}
	if t.rows != nil {
		*t.rows++
	}
	if t.budget != nil {
		t.pend++
		if t.pend >= budgetChunk {
			if err := t.budget.add(t.pend); err != nil {
				return nil, false, fmt.Errorf("%s: %w", t.at, err)
			}
			t.pend = 0
		}
	}
	return r, true, nil
}
func (t *shardTapIter) Close() error {
	if t.budget != nil && t.pend > 0 {
		if err := t.budget.add(t.pend); err != nil {
			return fmt.Errorf("%s: %w", t.at, err)
		}
		t.pend = 0
	}
	return t.src.Close()
}

// perRowChain reports whether every chain operator past the scan is per-row
// (filter, project, transform): only then can chunks run independently.
// Block analysis cuts chains at blocking operators, so this always holds
// today; the check keeps the fallback honest if that ever changes.
func perRowChain(chain []*physical.Node) bool {
	for _, n := range chain[1:] {
		switch n.Kind {
		case physical.OpFilter, physical.OpProject, physical.OpTransform:
		default:
			return false
		}
	}
	return true
}

// runChainParallel is runStreamChain's Workers>1 path: contiguous chunks of
// the base relation stream through per-worker copies of the compiled chain.
func (e *StreamEngine) runChainParallel(bp *physical.BlockPlan, chain []*physical.Node, base *data.Table, col *collector, out *blockSink) (*data.Table, error) {
	w := e.Workers
	parts := partitionChunks(base.Rows, w)
	name := bp.Block.Inputs[chain[0].ChainInput].Name

	// Fault-filter every node's taps once, before the fan-out, so the
	// injector's decision is made exactly once per site per attempt no
	// matter the worker count.
	liveTaps := make([][]physical.Tap, len(chain))
	for i, n := range chain {
		lt, err := out.liveTaps(col, n.Taps)
		if err != nil {
			return nil, err
		}
		liveTaps[i] = lt
	}

	type chainShard struct {
		rows int64
		obs  [][]rowObserver // per chain node, in depth order
		mets []physical.Metrics
		out  *data.Table
		err  error
	}
	shards := make([]*chainShard, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		shard := &chainShard{mets: make([]physical.Metrics, len(chain))}
		shards[wi] = shard
		part := parts[wi]
		wg.Add(1)
		go func() {
			defer wg.Done()
			chunk := &data.Table{Rel: base.Rel, Attrs: base.Attrs, Rows: part}
			st := &stream{it: &scanIter{tbl: chunk}, attrs: chain[0].Attrs}
			tap := func(depth int, n *physical.Node) {
				obs := observersFor(col, liveTaps[depth])
				shard.obs = append(shard.obs, obs)
				ti := &shardTapIter{
					src: st.it, observers: obs, rows: &shard.rows,
					budget: out.budget, ctx: out.ctx, at: n.Label,
				}
				if e.CollectMetrics {
					ti.met = &shard.mets[len(shard.obs)-1]
				}
				st = &stream{it: ti, attrs: st.attrs}
			}
			tap(0, chain[0])
			for di, n := range chain[1:] {
				st = opIter(n, st)
				tap(di+1, n)
			}
			tbl, err := drain(st.it, name, st.attrs)
			if err != nil {
				shard.err = err
				return
			}
			shard.out = tbl
		}()
	}
	wg.Wait()
	for _, shard := range shards {
		if shard.err != nil {
			return nil, shard.err
		}
	}
	// Concatenate chunk outputs in order, merge the statistic shards per
	// chain point, and fold the per-worker row counters (the budget was
	// already charged by the shard iterators).
	result := &data.Table{Rel: name, Attrs: shards[0].out.Attrs}
	for _, shard := range shards {
		result.Rows = append(result.Rows, shard.out.Rows...)
		out.rows += shard.rows
	}
	for d := range chain {
		group := make([][]rowObserver, w)
		for wi, shard := range shards {
			group[wi] = shard.obs[d]
		}
		if err := mergeShards(group); err != nil {
			return nil, err
		}
		if e.CollectMetrics {
			for _, shard := range shards {
				chain[d].Metrics.Merge(&shard.mets[d])
			}
		}
	}
	return result, nil
}

// spineStage is one hash join along the streamed spine of a join DAG: the
// compiled node plus the materialized, indexed build side and the shared
// miss sinks the merge phase fills. The tap lists are fault-filtered once
// at stage build, so every worker sees the same surviving taps and the
// injector decides each site exactly once per attempt.
type spineStage struct {
	jn           *physical.Node
	right        *data.Table
	index        map[int64][]data.Row
	taps         []physical.Tap
	leftSingles  []physical.Tap
	rightSingles []physical.Tap
	leftAux      *auxState
	rightAux     *auxState
}

// stageState is one worker's private view of one stage.
type stageState struct {
	seObs      []rowObserver
	leftObs    []rowObserver
	leftMisses []data.Row
	linkRows   []data.Row
	matched    map[int64]bool
	// met is the worker's private metrics shard for the stage's join node
	// (RowsOut and TapNanos; the cascade's wall time is attributed to the
	// root stage at merge because probe stages interleave per row).
	met physical.Metrics
}

// runSpine executes a join subtree with partitioned probe pipelines,
// returning the joined output (rel matches the sequential drain).
func (e *StreamEngine) runSpine(root *physical.Node, inputs []*data.Table, col *collector, out *blockSink, rel string) (*data.Table, error) {
	// Collect the streamed spine bottom-up; the spine leaf is the base
	// input every probe partition starts from.
	var joins []*physical.Node
	cur := root
	for cur.Kind == physical.OpHashJoin {
		joins = append(joins, cur)
		cur = cur.Left
	}
	for i, j := 0, len(joins)-1; i < j; i, j = i+1, j-1 {
		joins[i], joins[j] = joins[j], joins[i]
	}
	base := inputs[cur.ChainInput]

	var stages []*spineStage
	var auxes []*auxState
	for _, jn := range joins {
		if err := out.ctxErr(); err != nil {
			return nil, err
		}
		if err := out.opFault(jn); err != nil {
			return nil, err
		}
		var right *data.Table
		if jn.Right.Kind == physical.OpHashJoin {
			var err error
			right, err = e.runSpine(jn.Right, inputs, col, out, "build")
			if err != nil {
				return nil, err
			}
		} else {
			right = inputs[jn.Right.ChainInput]
		}
		st := &spineStage{jn: jn, right: right}
		st.index = make(map[int64][]data.Row, len(right.Rows))
		for _, r := range right.Rows {
			st.index[r[jn.RightCol]] = append(st.index[r[jn.RightCol]], r)
		}
		// Fault-filter the stage's taps once, here, so every worker shares
		// one injector decision per site.
		var err error
		if st.taps, err = out.liveTaps(col, jn.Taps); err != nil {
			return nil, err
		}
		if jn.LeftReject != nil {
			if st.leftSingles, err = out.liveTaps(col, jn.LeftReject.Singles); err != nil {
				return nil, err
			}
			aux, err := out.liveAux(col, jn.LeftReject.Aux)
			if err != nil {
				return nil, err
			}
			if len(aux) > 0 {
				st.leftAux = &auxState{aux: aux, misses: &data.Table{Rel: "miss", Attrs: jn.Left.Attrs}, met: metOf(jn, e.CollectMetrics)}
				auxes = append(auxes, st.leftAux)
			}
		}
		if jn.RightReject != nil {
			if st.rightSingles, err = out.liveTaps(col, jn.RightReject.Singles); err != nil {
				return nil, err
			}
			aux, err := out.liveAux(col, jn.RightReject.Aux)
			if err != nil {
				return nil, err
			}
			if len(aux) > 0 {
				st.rightAux = &auxState{aux: aux, misses: &data.Table{Rel: "miss", Attrs: right.Attrs}, met: metOf(jn, e.CollectMetrics)}
				auxes = append(auxes, st.rightAux)
			}
		}
		stages = append(stages, st)
	}

	w := e.Workers
	parts := partitionByKey(base.Rows, stages[0].jn.LeftCol, w)

	metrics := e.CollectMetrics
	type treeShard struct {
		rows   int64
		wall   int64
		out    []data.Row
		stages []stageState
		err    error
	}
	shards := make([]*treeShard, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		shard := &treeShard{stages: make([]stageState, len(stages))}
		shards[wi] = shard
		part := parts[wi]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si, st := range stages {
				ss := &shard.stages[si]
				ss.matched = make(map[int64]bool)
				ss.seObs = observersFor(col, st.taps)
				if st.jn.LeftReject != nil {
					ss.leftObs = observersFor(col, st.leftSingles)
				}
				if metrics {
					ss.met.Calls = 1
				}
			}
			var pend int64
			var emit func(row data.Row, si int) error
			emit = func(row data.Row, si int) error {
				if si == len(stages) {
					shard.out = append(shard.out, row)
					return nil
				}
				st := stages[si]
				ss := &shard.stages[si]
				matches := st.index[row[st.jn.LeftCol]]
				if len(matches) == 0 {
					if metrics && len(ss.leftObs) > 0 {
						tapStart := time.Now()
						for _, o := range ss.leftObs {
							o.observe(row)
						}
						ss.met.TapNanos += time.Since(tapStart).Nanoseconds()
					} else {
						for _, o := range ss.leftObs {
							o.observe(row)
						}
					}
					if st.leftAux != nil {
						ss.leftMisses = append(ss.leftMisses, row)
					}
					if st.jn.RejectLink != "" {
						ss.linkRows = append(ss.linkRows, row)
					}
					return nil
				}
				ss.matched[row[st.jn.LeftCol]] = true
				for _, rrow := range matches {
					joined := make(data.Row, 0, len(row)+len(rrow))
					joined = append(append(joined, row...), rrow...)
					if metrics {
						ss.met.RowsOut++
						if len(ss.seObs) > 0 {
							tapStart := time.Now()
							for _, o := range ss.seObs {
								o.observe(joined)
							}
							ss.met.TapNanos += time.Since(tapStart).Nanoseconds()
						}
					} else {
						for _, o := range ss.seObs {
							o.observe(joined)
						}
					}
					shard.rows++
					pend++
					if pend >= budgetChunk {
						if err := out.budget.add(pend); err != nil {
							return fmt.Errorf("%s: %w", st.jn.Label, err)
						}
						pend = 0
					}
					if err := emit(joined, si+1); err != nil {
						return err
					}
				}
				return nil
			}
			var cascStart time.Time
			if metrics {
				cascStart = time.Now()
			}
			var tick int64
			for _, r := range part {
				if out.ctx != nil {
					if tick++; tick%budgetChunk == 0 {
						if err := out.ctx.Err(); err != nil {
							shard.err = err
							return
						}
					}
				}
				if err := emit(r, 0); err != nil {
					shard.err = err
					return
				}
			}
			if metrics {
				shard.wall = time.Since(cascStart).Nanoseconds()
			}
			if pend > 0 {
				if err := out.budget.add(pend); err != nil {
					shard.err = err
				}
			}
		}()
	}
	wg.Wait()
	for _, shard := range shards {
		if shard.err != nil {
			return nil, shard.err
		}
	}

	// Merge: worker outputs concatenate, observer shards fold into the
	// store, matched-key sets union so build-side misses are computed once.
	result := &data.Table{Rel: rel, Attrs: root.Attrs}
	for _, shard := range shards {
		result.Rows = append(result.Rows, shard.out...)
		out.rows += shard.rows
	}
	if metrics {
		// Stage metrics merge like observer shards. Probe stages
		// interleave per row inside one cascade pass, so each worker's
		// cascade wall time (minus its separately-timed tap work) is
		// attributed to the root join.
		rootMet := &stages[len(stages)-1].jn.Metrics
		for _, shard := range shards {
			var tap int64
			for si := range stages {
				ss := &shard.stages[si]
				stages[si].jn.Metrics.Merge(&ss.met)
				tap += ss.met.TapNanos
			}
			rootMet.WallNanos += shard.wall - tap
		}
	}
	for si, st := range stages {
		jn := st.jn
		seGroup := make([][]rowObserver, w)
		leftGroup := make([][]rowObserver, w)
		for wi, shard := range shards {
			seGroup[wi] = shard.stages[si].seObs
			leftGroup[wi] = shard.stages[si].leftObs
		}
		if err := mergeShards(seGroup); err != nil {
			return nil, err
		}
		if err := mergeShards(leftGroup); err != nil {
			return nil, err
		}
		if st.leftAux != nil {
			for _, shard := range shards {
				st.leftAux.misses.Rows = append(st.leftAux.misses.Rows, shard.stages[si].leftMisses...)
			}
		}
		if jn.RejectLink != "" {
			link := &data.Table{Rel: "reject", Attrs: jn.Left.Attrs}
			for _, shard := range shards {
				link.Rows = append(link.Rows, shard.stages[si].linkRows...)
			}
			out.materialized[jn.RejectLink] = link
		}
		if jn.RightReject != nil {
			// The whole build-side miss sweep exists only for reject
			// statistics, so with metrics on it counts as tap overhead.
			var tapStart time.Time
			if metrics {
				tapStart = time.Now()
			}
			matched := make(map[int64]bool)
			for _, shard := range shards {
				for k := range shard.stages[si].matched {
					matched[k] = true
				}
			}
			obs := observersFor(col, st.rightSingles)
			for _, r := range st.right.Rows {
				if matched[r[jn.RightCol]] {
					continue
				}
				for _, o := range obs {
					o.observe(r)
				}
				if st.rightAux != nil {
					st.rightAux.misses.Rows = append(st.rightAux.misses.Rows, r)
				}
			}
			for _, o := range obs {
				o.finish()
			}
			if metrics {
				jn.Metrics.TapNanos += time.Since(tapStart).Nanoseconds()
			}
		}
	}
	// Auxiliary reject joins (two-input union–division counters) run after
	// the cascade, exactly like the sequential engine runs them after the
	// root drains.
	for _, a := range auxes {
		a.run(col, inputs)
	}
	return result, nil
}
