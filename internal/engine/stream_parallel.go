package engine

import (
	"fmt"
	"sync"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Intra-operator parallelism for the streaming engine. With Workers > 1 a
// block's scan→filter→probe pipelines are partitioned across goroutines:
//
//   - Input chains split into contiguous row chunks; each worker runs the
//     full operator chain over its chunk with private statistic shards.
//     Concatenating the chunk outputs in order reproduces the sequential
//     row order exactly (chains carry only per-row operators).
//   - Join trees execute as a probe cascade along the streamed (left)
//     spine: every build side is materialized once and indexed, the base
//     input is partitioned by hash of the first probe key (splitmix64, so
//     all rows of one key land on one worker), and each worker drives its
//     rows through every probe stage with per-worker observers, miss sinks
//     and matched-key sets.
//
// After a pipeline drains, the per-worker shards merge (counts add,
// histogram buckets add, distinct sets union) and the merged observer
// records into the store — so every observed statistic is identical to the
// sequential run's, which the cross-check tests assert at Workers=4.

// shardTapIter is tapIter without the end-of-stream finish: worker shards
// are finished exactly once, by the merge step, not per worker.
type shardTapIter struct {
	src       Iterator
	observers []rowObserver
	rows      *int64
}

func (t *shardTapIter) Open() error { return t.src.Open() }
func (t *shardTapIter) Next() (data.Row, bool, error) {
	r, ok, err := t.src.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	for _, o := range t.observers {
		o.observe(r)
	}
	if t.rows != nil {
		*t.rows++
	}
	return r, true, nil
}
func (t *shardTapIter) Close() error { return t.src.Close() }

// perRowChain reports whether every chain operator is per-row (select,
// project, transform): only then can chunks run independently. Block
// analysis cuts chains at blocking operators, so this always holds today;
// the check keeps the fallback honest if that ever changes.
func perRowChain(ops []*workflow.Node) bool {
	for _, op := range ops {
		switch op.Kind {
		case workflow.KindSelect, workflow.KindProject, workflow.KindTransform:
		default:
			return false
		}
	}
	return true
}

// runChainParallel is runChain's Workers>1 path: contiguous chunks of the
// base relation stream through per-worker copies of the operator chain.
func (e *StreamEngine) runChainParallel(blk *workflow.Block, i int, base *data.Table, taps *tapSet, out *blockSink) (*data.Table, error) {
	in := blk.Inputs[i]
	if !perRowChain(in.Ops) {
		return e.runChainSequential(blk, i, base, taps, out)
	}
	w := e.Workers
	parts := partitionChunks(base.Rows, w)

	type chainShard struct {
		rows int64
		obs  [][]rowObserver // per chain point, in depth order
		out  *data.Table
		err  error
	}
	shards := make([]*chainShard, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		shard := &chainShard{}
		shards[wi] = shard
		part := parts[wi]
		wg.Add(1)
		go func() {
			defer wg.Done()
			chunk := &data.Table{Rel: base.Rel, Attrs: base.Attrs, Rows: part}
			st := &stream{it: &scanIter{tbl: chunk}, attrs: base.Attrs}
			tap := func(depth int) error {
				obs, err := observersFor(taps, chainPointStats(taps, blk, i, depth, len(in.Ops)), st.attrs)
				if err != nil {
					return err
				}
				shard.obs = append(shard.obs, obs)
				st = &stream{it: &shardTapIter{src: st.it, observers: obs, rows: &shard.rows}, attrs: st.attrs}
				return nil
			}
			if err := tap(0); err != nil {
				shard.err = err
				return
			}
			for d, op := range in.Ops {
				next, err := e.opStream(st, op)
				if err != nil {
					shard.err = fmt.Errorf("chain op %q: %w", op.ID, err)
					return
				}
				st = next
				if err := tap(d + 1); err != nil {
					shard.err = err
					return
				}
			}
			tbl, err := drain(st.it, in.Name, st.attrs)
			if err != nil {
				shard.err = err
				return
			}
			shard.out = tbl
		}()
	}
	wg.Wait()
	for _, shard := range shards {
		if shard.err != nil {
			return nil, shard.err
		}
	}
	// Concatenate chunk outputs in order, merge the statistic shards per
	// chain point, and fold the per-worker row counters.
	result := &data.Table{Rel: in.Name, Attrs: shards[0].out.Attrs}
	for _, shard := range shards {
		result.Rows = append(result.Rows, shard.out.Rows...)
		out.rows += shard.rows
	}
	for d := 0; d <= len(in.Ops); d++ {
		group := make([][]rowObserver, w)
		for wi, shard := range shards {
			group[wi] = shard.obs[d]
		}
		if err := mergeShards(group); err != nil {
			return nil, err
		}
	}
	return result, nil
}

// runChainSequential is the classic single-goroutine chain over an already
// resolved base table (the fallback for non-per-row chains).
func (e *StreamEngine) runChainSequential(blk *workflow.Block, i int, base *data.Table, taps *tapSet, out *blockSink) (*data.Table, error) {
	in := blk.Inputs[i]
	st := &stream{it: &scanIter{tbl: base}, attrs: base.Attrs}
	st, err := e.tapChainPoint(st, blk, i, 0, len(in.Ops), taps, out)
	if err != nil {
		return nil, err
	}
	for d, op := range in.Ops {
		st, err = e.opStream(st, op)
		if err != nil {
			return nil, fmt.Errorf("chain op %q: %w", op.ID, err)
		}
		st, err = e.tapChainPoint(st, blk, i, d+1, len(in.Ops), taps, out)
		if err != nil {
			return nil, err
		}
	}
	return drain(st.it, in.Name, st.attrs)
}

// probeStage is one hash join along the streamed spine of a join tree: a
// materialized, indexed build side plus the statistic and reject wiring the
// sequential pipeline would attach at the same point.
type probeStage struct {
	edge    int // index into blk.Joins
	right   *data.Table
	index   map[int64][]data.Row
	lc, rc  int
	inAttrs []workflow.Attr // streamed-side schema entering the stage
	attrs   []workflow.Attr // output schema (inAttrs + right.Attrs)
	seStats []stats.Stat    // observers on the stage's join output

	leftSingles  []stats.Stat // singleton reject stats over left misses
	leftAux      *auxReject   // two-input reject variants over left misses
	rightSingles []stats.Stat
	rightAux     *auxReject
	rejectLink   string // non-empty: materialize left misses under this name
}

// stageState is one worker's private view of one stage.
type stageState struct {
	seObs      []rowObserver
	leftObs    []rowObserver
	leftMisses []data.Row
	linkRows   []data.Row
	matched    map[int64]bool
}

// runTreeParallel executes a join tree with partitioned probe pipelines,
// returning the block's joined output (root rel name matches the
// sequential drain).
func (e *StreamEngine) runTreeParallel(blk *workflow.Block, t *workflow.JoinTree, inputs []*data.Table, taps *tapSet, out *blockSink) (*data.Table, error) {
	tbl, _, err := e.runSpine(blk, t, inputs, taps, out, "block")
	return tbl, err
}

// evalSubtree materializes a join-tree node: leaves are the (already
// cooked) block inputs, internal nodes run their own partitioned spine.
func (e *StreamEngine) evalSubtree(blk *workflow.Block, t *workflow.JoinTree, inputs []*data.Table, taps *tapSet, out *blockSink) (*data.Table, expr.Set, error) {
	if t.IsLeaf() {
		return inputs[t.Leaf], expr.NewSet(t.Leaf), nil
	}
	return e.runSpine(blk, t, inputs, taps, out, "build")
}

func (e *StreamEngine) runSpine(blk *workflow.Block, t *workflow.JoinTree, inputs []*data.Table, taps *tapSet, out *blockSink, rel string) (*data.Table, expr.Set, error) {
	// Collect the streamed spine bottom-up; the spine leaf is the base
	// input every probe partition starts from.
	var nodes []*workflow.JoinTree
	cur := t
	for !cur.IsLeaf() {
		nodes = append(nodes, cur)
		cur = cur.Left
	}
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	base := inputs[cur.Leaf]
	lse := expr.NewSet(cur.Leaf)
	leftAttrs := base.Attrs

	var stages []*probeStage
	var auxes []*auxReject
	for _, nd := range nodes {
		right, rse, err := e.evalSubtree(blk, nd.Right, inputs, taps, out)
		if err != nil {
			return nil, 0, err
		}
		edge := blk.Joins[nd.Join]
		la, ra := edge.LeftAttr, edge.RightAttr
		lc, err := colsOf(leftAttrs, []workflow.Attr{la})
		if err != nil {
			la, ra = ra, la
			lc, err = colsOf(leftAttrs, []workflow.Attr{la})
			if err != nil {
				return nil, 0, fmt.Errorf("join %q: %w", edge.Node, err)
			}
		}
		rc, err := colsOf(right.Attrs, []workflow.Attr{ra})
		if err != nil {
			return nil, 0, fmt.Errorf("join %q: %w", edge.Node, err)
		}
		st := &probeStage{
			edge:    nd.Join,
			right:   right,
			lc:      lc[0],
			rc:      rc[0],
			inAttrs: leftAttrs,
			attrs:   append(append([]workflow.Attr(nil), leftAttrs...), right.Attrs...),
		}
		st.index = make(map[int64][]data.Row, len(right.Rows))
		for _, r := range right.Rows {
			st.index[r[st.rc]] = append(st.index[r[st.rc]], r)
		}
		if taps != nil {
			st.seStats = taps.se[seKey{blk.Index, lse.Union(rse)}]
			if lse.Len() == 1 {
				sink, singles := rejectStats(blk, taps, lse.Lowest(), nd.Join)
				st.leftSingles = singles
				st.leftAux = sink
				if sink != nil {
					sink.misses = &data.Table{Rel: "miss", Attrs: leftAttrs}
					auxes = append(auxes, sink)
				}
			}
			if rse.Len() == 1 {
				sink, singles := rejectStats(blk, taps, rse.Lowest(), nd.Join)
				st.rightSingles = singles
				st.rightAux = sink
				if sink != nil {
					sink.misses = &data.Table{Rel: "miss", Attrs: right.Attrs}
					auxes = append(auxes, sink)
				}
			}
		}
		if n := e.An.Graph.Node(edge.Node); n != nil && n.Join != nil && n.Join.RejectLink {
			st.rejectLink = string(edge.Node) + ".reject"
		}
		leftAttrs = st.attrs
		lse = lse.Union(rse)
		stages = append(stages, st)
	}

	w := e.Workers
	parts := partitionByKey(base.Rows, stages[0].lc, w)

	type treeShard struct {
		rows   int64
		out    []data.Row
		stages []stageState
		err    error
	}
	shards := make([]*treeShard, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		shard := &treeShard{stages: make([]stageState, len(stages))}
		shards[wi] = shard
		part := parts[wi]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si, st := range stages {
				ss := &shard.stages[si]
				ss.matched = make(map[int64]bool)
				var err error
				if ss.seObs, err = observersFor(taps, st.seStats, st.attrs); err != nil {
					shard.err = err
					return
				}
				if ss.leftObs, err = observersFor(taps, st.leftSingles, st.inAttrs); err != nil {
					shard.err = err
					return
				}
			}
			var emit func(row data.Row, si int)
			emit = func(row data.Row, si int) {
				if si == len(stages) {
					shard.out = append(shard.out, row)
					return
				}
				st := stages[si]
				ss := &shard.stages[si]
				matches := st.index[row[st.lc]]
				if len(matches) == 0 {
					for _, o := range ss.leftObs {
						o.observe(row)
					}
					if st.leftAux != nil {
						ss.leftMisses = append(ss.leftMisses, row)
					}
					if st.rejectLink != "" {
						ss.linkRows = append(ss.linkRows, row)
					}
					return
				}
				ss.matched[row[st.lc]] = true
				for _, rrow := range matches {
					joined := make(data.Row, 0, len(row)+len(rrow))
					joined = append(append(joined, row...), rrow...)
					for _, o := range ss.seObs {
						o.observe(joined)
					}
					shard.rows++
					emit(joined, si+1)
				}
			}
			for _, r := range part {
				emit(r, 0)
			}
		}()
	}
	wg.Wait()
	for _, shard := range shards {
		if shard.err != nil {
			return nil, 0, shard.err
		}
	}

	// Merge: worker outputs concatenate, observer shards fold into the
	// store, matched-key sets union so build-side misses are computed once.
	result := &data.Table{Rel: rel, Attrs: leftAttrs}
	for _, shard := range shards {
		result.Rows = append(result.Rows, shard.out...)
		out.rows += shard.rows
	}
	for si, st := range stages {
		seGroup := make([][]rowObserver, w)
		leftGroup := make([][]rowObserver, w)
		for wi, shard := range shards {
			seGroup[wi] = shard.stages[si].seObs
			leftGroup[wi] = shard.stages[si].leftObs
		}
		if err := mergeShards(seGroup); err != nil {
			return nil, 0, err
		}
		if err := mergeShards(leftGroup); err != nil {
			return nil, 0, err
		}
		if st.leftAux != nil {
			for _, shard := range shards {
				st.leftAux.misses.Rows = append(st.leftAux.misses.Rows, shard.stages[si].leftMisses...)
			}
		}
		if st.rejectLink != "" {
			link := &data.Table{Rel: "reject", Attrs: st.inAttrs}
			for _, shard := range shards {
				link.Rows = append(link.Rows, shard.stages[si].linkRows...)
			}
			out.materialized[st.rejectLink] = link
		}
		if st.rightSingles != nil || st.rightAux != nil {
			matched := make(map[int64]bool)
			for _, shard := range shards {
				for k := range shard.stages[si].matched {
					matched[k] = true
				}
			}
			obs, err := observersFor(taps, st.rightSingles, st.right.Attrs)
			if err != nil {
				return nil, 0, err
			}
			for _, r := range st.right.Rows {
				if matched[r[st.rc]] {
					continue
				}
				for _, o := range obs {
					o.observe(r)
				}
				if st.rightAux != nil {
					st.rightAux.misses.Rows = append(st.rightAux.misses.Rows, r)
				}
			}
			for _, o := range obs {
				o.finish()
			}
		}
	}
	// Auxiliary reject joins (two-input union–division counters) run after
	// the cascade, exactly like the sequential engine runs them after the
	// root drains.
	for _, a := range auxes {
		a.run(blk, taps, inputs)
	}
	return result, lse, nil
}

// rejectStats splits the reject statistics registered at (input t, edge f)
// into per-row singleton stats and (when two-input variants exist) an
// auxiliary-join sink, mirroring rejectHandlers without building observers.
func rejectStats(blk *workflow.Block, taps *tapSet, t, f int) (*auxReject, []stats.Stat) {
	var singles []stats.Stat
	needAux := false
	for _, s := range taps.reject[[3]int{blk.Index, t, f}] {
		if s.Target.Set.Len() == 1 {
			singles = append(singles, s)
		} else {
			needAux = true
		}
	}
	if !needAux {
		return nil, singles
	}
	return &auxReject{t: t, f: f}, singles
}
