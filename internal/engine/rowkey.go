package engine

// appendRowKey encodes a row of values into dst as fixed-width
// little-endian bytes and returns the extended slice. Hot paths (hash
// aggregation, distinct counting) reuse one buffer across rows and look up
// maps with string(buf) — the compiler elides that conversion's allocation
// for map access, so steady-state deduplication allocates only when a new
// key is inserted.
func appendRowKey(dst []byte, vals []int64) []byte {
	for _, v := range vals {
		dst = append(dst,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return dst
}

// rowKey is the allocating convenience form of appendRowKey.
func rowKey(r []int64) string {
	return string(appendRowKey(make([]byte, 0, len(r)*8), r))
}
