package engine

// appendRowKey encodes a row of values into dst as fixed-width
// little-endian bytes and returns the extended slice. Hot paths (hash
// aggregation, distinct counting) reuse one buffer across rows and look up
// maps with string(buf) — the compiler elides that conversion's allocation
// for map access, so steady-state deduplication allocates only when a new
// key is inserted.
func appendRowKey(dst []byte, vals []int64) []byte {
	for _, v := range vals {
		dst = append(dst,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return dst
}

// keySet deduplicates rows of int64 values by their fixed-width encoding.
// It centralizes the reused-buffer idiom every hash-dedup path shares: the
// lookup uses string(kbuf), whose conversion the compiler elides for map
// access, and the guarded assignment in add runs only for first-seen keys —
// an unconditional `seen[string(kbuf)] = true` would copy the key bytes on
// every duplicate row, since map *assignment* conversions are never elided.
type keySet struct {
	seen map[string]bool
	kbuf []byte
}

func newKeySet() keySet { return keySet{seen: make(map[string]bool)} }

// add records vals' key, reporting whether it was first seen.
func (s *keySet) add(vals []int64) bool {
	s.kbuf = appendRowKey(s.kbuf[:0], vals)
	if s.seen[string(s.kbuf)] {
		return false
	}
	s.seen[string(s.kbuf)] = true
	return true
}

// len returns the number of distinct keys recorded.
func (s *keySet) len() int { return len(s.seen) }

// union folds another set's keys into s (the shard-merge path).
func (s *keySet) union(o *keySet) {
	for k := range o.seen {
		s.seen[k] = true
	}
}
