package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// bigDB scales the retail schema up far enough that a full run takes many
// milliseconds on any engine — long enough for a cancellation to land
// mid-execution rather than after the finish line.
func bigDB(n int) (DB, *workflow.Catalog) {
	const customers, products = 500, 300
	orders := &data.Table{Rel: "Orders", Attrs: []workflow.Attr{
		{Rel: "Orders", Col: "cid"}, {Rel: "Orders", Col: "oid"}, {Rel: "Orders", Col: "pid"},
	}}
	orders.Rows = make([]data.Row, n)
	for i := range orders.Rows {
		orders.Rows[i] = data.Row{int64(i%customers + 1), int64(i), int64(i%products + 1)}
	}
	product := &data.Table{Rel: "Product", Attrs: []workflow.Attr{
		{Rel: "Product", Col: "pid"}, {Rel: "Product", Col: "price"},
	}}
	product.Rows = make([]data.Row, products)
	for i := range product.Rows {
		product.Rows[i] = data.Row{int64(i + 1), int64((i + 1) * 10)}
	}
	customer := &data.Table{Rel: "Customer", Attrs: []workflow.Attr{
		{Rel: "Customer", Col: "cid"}, {Rel: "Customer", Col: "region"},
	}}
	customer.Rows = make([]data.Row, customers)
	for i := range customer.Rows {
		customer.Rows[i] = data.Row{int64(i + 1), int64(i%10 + 1)}
	}
	cat := &workflow.Catalog{Relations: []*workflow.Relation{
		{Name: "Orders", Card: int64(n), Columns: []workflow.Column{
			{Name: "cid", Domain: customers + 1}, {Name: "oid", Domain: int64(n)}, {Name: "pid", Domain: products + 1},
		}},
		{Name: "Product", Card: products, Columns: []workflow.Column{
			{Name: "pid", Domain: products + 1}, {Name: "price", Domain: 10000},
		}},
		{Name: "Customer", Card: customers, Columns: []workflow.Column{
			{Name: "cid", Domain: customers + 1}, {Name: "region", Domain: 11},
		}},
	}}
	return DB{"Orders": orders, "Product": product, "Customer": customer}, cat
}

// waitGoroutines polls until the live goroutine count drops back to the
// baseline captured before the cancelled run — the manual leak check (no
// external leak-detector dependency).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancellation: %d live, baseline %d", n, baseline)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCancellationAllConfigs cancels instrumented runs mid-flight in all
// four engine configurations (batch/stream × sequential/parallel) and
// checks the three cancellation guarantees:
//
//   - the run returns the context's error (wrapped, errors.Is-visible) plus
//     a partial result;
//   - no goroutines leak — the count returns to its pre-run baseline;
//   - no torn observations: every statistic present in the partial store is
//     byte-identical to the fault-free golden value (observers commit only
//     complete observations, and the store is write-once).
//
// Run it under -race: the interesting failures are racy ones.
func TestCancellationAllConfigs(t *testing.T) {
	db, cat := bigDB(150_000)
	an, err := workflow.Analyze(retailGraph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	observe := res.ObservableStats()
	golden, err := New(an, db, nil).RunObserved(res, observe)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}

	type runner interface {
		RunPlansCtx(ctx context.Context, plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error)
	}
	for _, cfg := range []struct {
		name    string
		stream  bool
		workers int
	}{
		{"batch/w1", false, 1},
		{"batch/w4", false, 4},
		{"stream/w1", true, 1},
		{"stream/w4", true, 4},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			cancelled := false
			for attempt := 0; attempt < 8 && !cancelled; attempt++ {
				var eng runner
				if cfg.stream {
					e := NewStream(an, db, nil)
					e.Workers = cfg.workers
					eng = e
				} else {
					e := New(an, db, nil)
					e.Workers = cfg.workers
					eng = e
				}
				ctx, cancel := context.WithCancel(context.Background())
				delay := time.Duration(attempt+1) * 500 * time.Microsecond
				timer := time.AfterFunc(delay, cancel)
				out, err := eng.RunPlansCtx(ctx, nil, res, observe)
				timer.Stop()
				cancel()
				if err == nil {
					continue // finished before the cancel landed; try again
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("attempt %d: want context.Canceled, got %v", attempt, err)
				}
				cancelled = true
				if out == nil {
					t.Fatal("cancelled run returned no partial result")
				}
				if out.Observed != nil {
					for _, v := range out.Observed.Values() {
						if !golden.Observed.Has(v.Stat) {
							t.Fatalf("partial store holds %v, absent from golden run", v.Stat.Key())
						}
						if v.Hist != nil {
							continue // histograms are checked whole below
						}
						want, err := golden.Observed.Scalar(v.Stat)
						if err != nil || want != v.Scalar {
							t.Fatalf("torn observation %v: partial %d, golden %d (%v)",
								v.Stat.Key(), v.Scalar, want, err)
						}
					}
				}
			}
			if !cancelled {
				t.Fatal("every attempt completed before cancellation; fixture too small")
			}
			waitGoroutines(t, baseline)
		})
	}
}
