package engine

import (
	"testing"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// tinyDB builds a deterministic three-table database small enough to verify
// by hand.
func tinyDB() (DB, *workflow.Catalog) {
	orders := &data.Table{Rel: "Orders", Attrs: []workflow.Attr{
		{Rel: "Orders", Col: "cid"}, {Rel: "Orders", Col: "oid"}, {Rel: "Orders", Col: "pid"},
	}}
	// (cid, oid, pid)
	orders.Rows = []data.Row{
		{1, 1, 10}, {1, 2, 10}, {2, 3, 20}, {2, 4, 30}, {3, 5, 99},
	}
	product := &data.Table{Rel: "Product", Attrs: []workflow.Attr{
		{Rel: "Product", Col: "pid"}, {Rel: "Product", Col: "price"},
	}}
	product.Rows = []data.Row{{10, 100}, {20, 200}, {30, 300}}
	customer := &data.Table{Rel: "Customer", Attrs: []workflow.Attr{
		{Rel: "Customer", Col: "cid"}, {Rel: "Customer", Col: "region"},
	}}
	customer.Rows = []data.Row{{1, 1}, {2, 2}}
	cat := &workflow.Catalog{Relations: []*workflow.Relation{
		{Name: "Orders", Card: 5, Columns: []workflow.Column{
			{Name: "cid", Domain: 5}, {Name: "oid", Domain: 10}, {Name: "pid", Domain: 100},
		}},
		{Name: "Product", Card: 3, Columns: []workflow.Column{
			{Name: "pid", Domain: 100}, {Name: "price", Domain: 1000},
		}},
		{Name: "Customer", Card: 2, Columns: []workflow.Column{
			{Name: "cid", Domain: 5}, {Name: "region", Domain: 10},
		}},
	}}
	return DB{"Orders": orders, "Product": product, "Customer": customer}, cat
}

func retailGraph() *workflow.Graph {
	b := workflow.NewBuilder("retail")
	o := b.Source("Orders")
	p := b.Source("Product")
	c := b.Source("Customer")
	j1 := b.Join(o, p, workflow.Attr{Rel: "Orders", Col: "pid"}, workflow.Attr{Rel: "Product", Col: "pid"})
	j2 := b.Join(j1, c, workflow.Attr{Rel: "Orders", Col: "cid"}, workflow.Attr{Rel: "Customer", Col: "cid"})
	b.Sink(j2, "dw")
	return b.Graph()
}

func TestRunRetailInitialPlan(t *testing.T) {
	db, cat := tinyDB()
	an, err := workflow.Analyze(retailGraph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	e := New(an, db, nil)
	res, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Orders⋈Product: orders 1-4 match (pid 10,10,20,30), order 5 (99)
	// doesn't: 4 rows. Then ⋈Customer: cids 1,1,2,2 all match: 4 rows.
	sink := res.Sinks["dw"]
	if sink == nil {
		t.Fatal("sink dw missing")
	}
	if sink.Card() != 4 {
		t.Fatalf("sink cardinality = %d, want 4", sink.Card())
	}
	// Full schema: 3 + 2 + 2 attrs.
	if len(sink.Attrs) != 7 {
		t.Fatalf("sink schema width = %d, want 7", len(sink.Attrs))
	}
}

func TestRunAlternativePlansSameResult(t *testing.T) {
	db, cat := tinyDB()
	an, err := workflow.Analyze(retailGraph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	e := New(an, db, nil)
	initial, err := e.Run()
	if err != nil {
		t.Fatalf("Run(initial): %v", err)
	}
	// Alternative: (Orders⋈Customer)⋈Product.
	blk := an.Blocks[0]
	var oIdx, pIdx, cIdx, eOP, eOC int
	for i, in := range blk.Inputs {
		switch in.SourceRel {
		case "Orders":
			oIdx = i
		case "Product":
			pIdx = i
		case "Customer":
			cIdx = i
		}
	}
	for j, e := range blk.Joins {
		if e.LeftAttr.Col == "pid" || e.RightAttr.Col == "pid" {
			eOP = j
		} else {
			eOC = j
		}
	}
	alt := &workflow.JoinTree{
		Leaf: -1, Join: eOP,
		Left: &workflow.JoinTree{
			Leaf: -1, Join: eOC,
			Left:  &workflow.JoinTree{Leaf: oIdx, Join: -1},
			Right: &workflow.JoinTree{Leaf: cIdx, Join: -1},
		},
		Right: &workflow.JoinTree{Leaf: pIdx, Join: -1},
	}
	reordered, err := e.RunPlans(map[int]*workflow.JoinTree{0: alt}, nil, nil)
	if err != nil {
		t.Fatalf("Run(alt): %v", err)
	}
	if got, want := reordered.Sinks["dw"].Card(), initial.Sinks["dw"].Card(); got != want {
		t.Fatalf("reordered plan output %d rows, initial %d", got, want)
	}
}

func TestRunChainOps(t *testing.T) {
	db, cat := tinyDB()
	b := workflow.NewBuilder("chain")
	o := b.Source("Orders")
	f := b.Select(o, workflow.Predicate{Attr: workflow.Attr{Rel: "Orders", Col: "pid"}, Op: workflow.CmpLt, Const: 50})
	x := b.Transform(f, "bucket10", workflow.Attr{Rel: "X", Col: "b"}, workflow.Attr{Rel: "Orders", Col: "pid"})
	p := b.Project(x, workflow.Attr{Rel: "Orders", Col: "oid"}, workflow.Attr{Rel: "X", Col: "b"})
	b.Sink(p, "out")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := New(an, db, nil).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := res.Sinks["out"]
	if out.Card() != 4 { // order with pid 99 filtered
		t.Fatalf("card = %d, want 4", out.Card())
	}
	if len(out.Attrs) != 2 {
		t.Fatalf("schema = %v, want 2 attrs", out.Attrs)
	}
	// bucket10(pid): 10→1, 20→1, 30→1 per function (v%10+1 = 1 for all).
	for _, r := range out.Rows {
		if r[out.Col(workflow.Attr{Rel: "X", Col: "b"})] != 1 {
			t.Fatalf("bucket value wrong: %v", r)
		}
	}
}

func TestRunGroupBy(t *testing.T) {
	db, cat := tinyDB()
	b := workflow.NewBuilder("gby")
	o := b.Source("Orders")
	g := b.GroupBy(o, workflow.Attr{Rel: "Orders", Col: "cid"})
	b.Sink(g, "out")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := New(an, db, nil).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Sinks["out"].Card() != 3 { // cids 1,2,3
		t.Fatalf("groups = %d, want 3", res.Sinks["out"].Card())
	}
}

func TestRunRejectLinkMaterialized(t *testing.T) {
	db, cat := tinyDB()
	b := workflow.NewBuilder("rej")
	o := b.Source("Orders")
	p := b.Source("Product")
	j := b.RejectJoin(o, p, workflow.Attr{Rel: "Orders", Col: "pid"}, workflow.Attr{Rel: "Product", Col: "pid"})
	b.Sink(j, "out")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := New(an, db, nil).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Sinks["out"].Card() != 4 {
		t.Fatalf("joined = %d, want 4", res.Sinks["out"].Card())
	}
	var rejects *data.Table
	for name, tbl := range res.Materialized {
		if len(name) > 7 && name[len(name)-7:] == ".reject" {
			rejects = tbl
		}
	}
	if rejects == nil {
		t.Fatal("reject link not materialized")
	}
	if rejects.Card() != 1 { // the pid=99 order
		t.Fatalf("rejects = %d, want 1", rejects.Card())
	}
}

func TestRunMissingRelation(t *testing.T) {
	_, cat := tinyDB()
	an, err := workflow.Analyze(retailGraph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	e := New(an, DB{}, nil)
	if _, err := e.Run(); err == nil {
		t.Fatal("missing relation: want error")
	}
}

func TestRunUnknownUDF(t *testing.T) {
	db, cat := tinyDB()
	b := workflow.NewBuilder("badudf")
	o := b.Source("Orders")
	x := b.Transform(o, "no-such-fn", workflow.Attr{Rel: "X", Col: "y"}, workflow.Attr{Rel: "Orders", Col: "pid"})
	b.Sink(x, "out")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if _, err := New(an, db, nil).Run(); err == nil {
		t.Fatal("unknown UDF: want error")
	}
}

func TestHashJoinRejects(t *testing.T) {
	left := &data.Table{Rel: "L", Attrs: []workflow.Attr{{Rel: "L", Col: "k"}},
		Rows: []data.Row{{1}, {2}, {3}}}
	right := &data.Table{Rel: "R", Attrs: []workflow.Attr{{Rel: "R", Col: "k"}},
		Rows: []data.Row{{2}, {2}, {4}}}
	j, lm, rm, err := hashJoin(left, right, workflow.Attr{Rel: "L", Col: "k"}, workflow.Attr{Rel: "R", Col: "k"})
	if err != nil {
		t.Fatalf("hashJoin: %v", err)
	}
	if j.Card() != 2 {
		t.Fatalf("join = %d rows, want 2", j.Card())
	}
	if lm.Card() != 2 { // 1 and 3
		t.Fatalf("left misses = %d, want 2", lm.Card())
	}
	if rm.Card() != 1 { // 4
		t.Fatalf("right misses = %d, want 1", rm.Card())
	}
}
