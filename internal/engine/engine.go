// Package engine executes ETL workflows over materialized tables, the way
// a batch ETL runtime does. Both engines in this package are thin
// executors of the shared physical-plan IR (internal/physical): the
// compiler lowers each optimizable block's input chains, join tree (the
// designed initial order or any reordering supplied by the optimizer) and
// pinned top operators into a typed operator DAG with statistic taps
// already bound to their observation points; the batch engine interprets
// that DAG table-at-a-time, the streaming engine row-at-a-time.
//
// The engines realize Sections 3.2.5–3.2.6 of the paper: execution can be
// instrumented with per-point statistic collectors (tuple counters,
// distinct counters, exact frequency histograms, and reject-link
// observation) so a single execution of the initial plan gathers the
// statistics chosen by the selector.
package engine

import (
	"context"
	"fmt"
	"time"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/faults"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// DB maps base relation names to materialized tables.
type DB = physical.DB

// UDF is a scalar transformation function applied per tuple.
type UDF = physical.UDF

// Registry resolves transform function names to implementations.
type Registry = physical.Registry

// DefaultRegistry returns the built-in UDFs used by the examples and the
// benchmark suite.
func DefaultRegistry() Registry { return physical.DefaultRegistry() }

// Engine executes workflows in batch (table-at-a-time) mode.
type Engine struct {
	An  *workflow.Analysis
	DB  DB
	Reg Registry
	// Workers bounds how many independent blocks execute concurrently
	// (the block dependency DAG is derived from the analysis). Values <= 1
	// run the classic sequential loop.
	Workers int
	// MaxRows caps the total intermediate rows one run may produce (the
	// work metric Result.Rows); exceeding it aborts the run with a clear
	// error instead of letting a skewed join order blow up memory. 0 (the
	// default) runs unguarded.
	MaxRows int64
	// CollectMetrics populates per-operator runtime metrics
	// (physical.Node.Metrics) during the run and attaches the snapshot to
	// Result.Metrics. Off by default: the hot paths skip all timing work.
	CollectMetrics bool
	// Faults injects deterministic failures at operator, source, tap and
	// budget sites (nil, the default, injects nothing and costs nothing).
	Faults *faults.Injector
	// RetryMax bounds per-block attempts when a transient fault aborts one
	// (0 = the default of 3: the first try plus two retries).
	RetryMax int
	// RetryBackoff is the base delay between attempts, doubling per retry,
	// capped at 100ms (0 = the default of 1ms).
	RetryBackoff time.Duration
	// RowMode selects the legacy row-at-a-time interpreter instead of the
	// default columnar one. The row interpreter is the reference
	// implementation: the equivalence suite diffs the columnar executor's
	// sinks, materialized tables, observed statistics, work metric and
	// deterministic metrics against it on every workflow.
	RowMode bool
	// AdaptCheck, when non-nil, is consulted after every committed block;
	// returning true stops the run with a *ReplanSignal. Forces sequential
	// block scheduling (see adapt.go).
	AdaptCheck AdaptCheck
	// Dispatch, when non-nil, schedules blocks onto remote workers through
	// the dispatcher instead of local goroutines (see dispatch.go). An
	// AdaptCheck takes precedence: adaptive runs need the sequential local
	// scheduler, so a run with both set executes locally.
	Dispatch BlockDispatcher
}

// New returns an engine for the analyzed workflow over the database.
func New(an *workflow.Analysis, db DB, reg Registry) *Engine {
	if reg == nil {
		reg = DefaultRegistry()
	}
	return &Engine{An: an, DB: db, Reg: reg}
}

// Result is the outcome of one workflow execution.
type Result struct {
	// BlockOut holds each block's boundary output.
	BlockOut map[int]*data.Table
	// Sinks holds the target record-sets by name.
	Sinks map[string]*data.Table
	// Materialized holds explicitly materialized intermediate results by
	// target name, including the reject links of reject joins.
	Materialized map[string]*data.Table
	// Observed holds the collected statistics when the run was
	// instrumented (nil otherwise).
	Observed *stats.Store
	// Rows counts tuples processed across all operators (a simple work
	// metric used to compare plan costs empirically).
	Rows int64
	// Metrics is the per-operator metrics snapshot when the engine ran
	// with CollectMetrics (nil otherwise).
	Metrics *physical.RunMetrics
	// Degraded lists statistics whose observation failed permanently (the
	// run itself completed); empty on a clean run. Ordered canonically.
	Degraded []FailedStat
	// Retries counts block attempts repeated after transient faults.
	Retries int64
	// Dist records block placement when the run executed through a
	// dispatcher (nil for purely local runs).
	Dist *DistReport
}

// Run executes the workflow with each block using its initial join tree.
func (e *Engine) Run() (*Result, error) {
	return e.RunPlans(nil, nil, nil)
}

// RunObserved executes the initial plan instrumented to collect the given
// statistics (which must be observable; others are silently skipped).
func (e *Engine) RunObserved(res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.RunPlans(nil, res, observe)
}

// RunPlans executes the workflow using the supplied join tree per block
// (nil map or missing entry = the initial tree), instrumented with the
// given statistics when res is non-nil. Statistics not observable under
// the initial plan are skipped; use RunPlansObserving for re-ordered plans
// that expose different sub-expressions (the pay-as-you-go baseline).
func (e *Engine) RunPlans(plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.runPlans(context.Background(), nil, plans, res, observe, false)
}

// RunPlansCtx is RunPlans under a context: cancellation (or deadline
// expiry) stops the run promptly. On error the partial result — completed
// metrics and block outputs — is returned alongside it, so callers can
// flush what the run did finish.
func (e *Engine) RunPlansCtx(ctx context.Context, plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.runPlans(ctx, nil, plans, res, observe, false)
}

// RunPlansObserving is RunPlans without the initial-plan observability
// filter: any statistic whose target the executed plans actually produce is
// collected. Targets the plans do not produce are silently absent from the
// store.
func (e *Engine) RunPlansObserving(plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.runPlans(context.Background(), nil, plans, res, observe, true)
}

// RunPlansObservingCtx is RunPlansObserving under a context.
func (e *Engine) RunPlansObservingCtx(ctx context.Context, plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.runPlans(ctx, nil, plans, res, observe, true)
}

// Resume continues a run from a checkpoint (a *BlockFailure's Checkpoint
// field): completed blocks are restored, only the failed block's downstream
// cone re-executes, and already-observed statistics are kept (the store is
// write-once, so re-surfaced taps are no-ops).
func (e *Engine) Resume(ctx context.Context, cp *Checkpoint, plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.runPlans(ctx, cp, plans, res, observe, false)
}

// ResumeObserving is Resume without the initial-plan observability filter —
// the adaptive driver's splice path, where the re-optimized cone's plans no
// longer match the initial plan's observation points.
func (e *Engine) ResumeObserving(ctx context.Context, cp *Checkpoint, plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.runPlans(ctx, cp, plans, res, observe, true)
}

func (e *Engine) runPlans(ctx context.Context, cp *Checkpoint, plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat, anyPoint bool) (*Result, error) {
	plan, err := physical.Compile(e.An, e.DB, physical.Options{
		Plans: plans, Res: res, Observe: observe, AnyPoint: anyPoint, Reg: e.Reg,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{
		BlockOut:     make(map[int]*data.Table),
		Sinks:        make(map[string]*data.Table),
		Materialized: make(map[string]*data.Table),
	}
	seedFrom(out, cp)
	var col *collector
	if res != nil {
		col = newCollector()
		if cp != nil && cp.Observed != nil {
			col.store = cp.Observed
		}
		out.Observed = col.store
	}
	env := newRunEnv(ctx, newRowBudget(e.MaxRows), e.Faults, e.RetryMax, e.RetryBackoff)
	env.adapt = e.AdaptCheck
	runner := func(bp *physical.BlockPlan, sink *blockSink) (*data.Table, error) {
		return runVecBlock(bp, col, sink, e.CollectMetrics)
	}
	if e.RowMode {
		runner = func(bp *physical.BlockPlan, sink *blockSink) (*data.Table, error) {
			return runBatchBlock(bp, col, sink, e.CollectMetrics)
		}
	}
	if e.Dispatch != nil && env.adapt == nil {
		err = runBlocksDist(plan, e.Workers, env, out, col, e.Dispatch, &DispatchSpec{
			Plans: plans, Observe: observe, Instrument: res != nil, AnyPoint: anyPoint,
		}, runner)
	} else {
		err = runBlocksDAG(plan, e.Workers, env, out, runner)
	}
	out.Retries = env.retries.Load()
	out.Degraded = col.failedStats()
	if e.CollectMetrics {
		out.Metrics = plan.MetricsSnapshot()
	}
	if err != nil {
		// The partial result rides along: completed block outputs, the
		// metrics of finished operators, the statistics observed so far.
		return out, err
	}
	if err := routeSinks(e.An, out); err != nil {
		return out, err
	}
	return out, nil
}

// runBatchBlock interprets one compiled block table-at-a-time: every node
// of the plan evaluates in topological order, feeding its taps over the
// whole output table at once.
func runBatchBlock(bp *physical.BlockPlan, col *collector, out *blockSink, metrics bool) (*data.Table, error) {
	tables := make([]*data.Table, len(bp.Nodes))
	for _, n := range bp.Nodes {
		var met *physical.Metrics
		if metrics {
			met = &n.Metrics
		}
		tbl, err := evalNode(bp, n, tables, col, out, met)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", n.Label, err)
		}
		tables[n.ID] = tbl
	}
	return tables[bp.Root.ID], nil
}

// evalNode evaluates one physical node over its input tables, counts its
// output rows against the work metric and row budget, and feeds its taps.
// When met is non-nil the node's metrics are populated: operator time is
// exclusive (inputs are already materialized), and tap observation is timed
// separately so observation overhead never inflates operator time.
func evalNode(bp *physical.BlockPlan, n *physical.Node, tables []*data.Table, col *collector, out *blockSink, met *physical.Metrics) (*data.Table, error) {
	if err := out.ctxErr(); err != nil {
		return nil, err
	}
	if err := out.opFault(n); err != nil {
		return nil, err
	}
	var start time.Time
	if met != nil {
		start = time.Now()
	}
	var tbl *data.Table
	switch n.Kind {
	case physical.OpScan:
		tbl = n.Src
		if n.FromBlock >= 0 {
			up, ok := out.upstream[n.FromBlock]
			if !ok {
				return nil, fmt.Errorf("upstream block %d not yet executed", n.FromBlock)
			}
			tbl = up
		}
	case physical.OpFilter:
		in := tables[n.Input.ID]
		tbl = &data.Table{Rel: in.Rel, Attrs: n.Attrs}
		for _, r := range in.Rows {
			if n.Pred.Matches(r[n.PredCol]) {
				tbl.Rows = append(tbl.Rows, r)
			}
		}
	case physical.OpProject:
		in := tables[n.Input.ID]
		tbl = &data.Table{Rel: in.Rel, Attrs: n.Attrs}
		for _, r := range in.Rows {
			row := make(data.Row, len(n.Cols))
			for i, c := range n.Cols {
				row[i] = r[c]
			}
			tbl.Rows = append(tbl.Rows, row)
		}
	case physical.OpTransform:
		in := tables[n.Input.ID]
		tbl = &data.Table{Rel: in.Rel, Attrs: n.Attrs}
		buf := make([]int64, len(n.FnIns))
		for _, r := range in.Rows {
			for i, c := range n.FnIns {
				buf[i] = r[c]
			}
			row := make(data.Row, 0, len(r)+1)
			row = append(append(row, r...), n.Fn(buf))
			tbl.Rows = append(tbl.Rows, row)
		}
	case physical.OpGroupBy:
		in := tables[n.Input.ID]
		tbl = &data.Table{Rel: in.Rel, Attrs: n.Attrs}
		seen := newKeySet()
		// One scratch key, cloned only on first-seen insert: duplicate rows
		// (the common case under grouping) must not allocate.
		scratch := make(data.Row, len(n.Cols))
		for _, r := range in.Rows {
			for i, c := range n.Cols {
				scratch[i] = r[c]
			}
			if seen.add(scratch) {
				tbl.Rows = append(tbl.Rows, append(data.Row(nil), scratch...))
			}
		}
	case physical.OpAggregateUDF:
		in := tables[n.Input.ID]
		tbl = &data.Table{Rel: in.Rel, Attrs: n.Attrs}
		seen := newKeySet()
		buf := make([]int64, len(n.FnIns))
		for _, r := range in.Rows {
			for i, c := range n.FnIns {
				buf[i] = r[c]
			}
			if !seen.add(buf) {
				continue
			}
			row := make(data.Row, 0, len(buf)+1)
			row = append(append(row, buf...), n.Fn(buf))
			tbl.Rows = append(tbl.Rows, row)
		}
	case physical.OpHashJoin:
		return evalJoin(bp, n, tables, col, out, met, start)
	case physical.OpMaterialize:
		tbl = tables[n.Input.ID]
		out.materialized[n.Rel] = tbl
		// Materialization moves no rows: not counted, and its taps (none
		// are ever attached) would see the input unchanged.
		return tbl, nil
	default:
		return nil, fmt.Errorf("unexpected physical operator %v", n.Kind)
	}
	if err := out.count(tbl.Card()); err != nil {
		return nil, err
	}
	taps, err := out.liveTaps(col, n.Taps)
	if err != nil {
		return nil, err
	}
	if met != nil {
		met.WallNanos += time.Since(start).Nanoseconds()
		met.Calls++
		met.RowsOut += tbl.Card()
		if len(taps) > 0 {
			tapStart := time.Now()
			for _, t := range taps {
				col.collect(t, tbl)
			}
			met.TapNanos += time.Since(tapStart).Nanoseconds()
		}
		return tbl, nil
	}
	for _, t := range taps {
		col.collect(t, tbl)
	}
	return tbl, nil
}

// evalJoin evaluates a hash-join node: build on the right, probe with the
// left, collecting both sides' misses for reject statistics and reject
// links. The row budget is checked while the output grows, so a blowing-up
// join aborts before exhausting memory.
func evalJoin(bp *physical.BlockPlan, n *physical.Node, tables []*data.Table, col *collector, out *blockSink, met *physical.Metrics, start time.Time) (*data.Table, error) {
	left, right := tables[n.Left.ID], tables[n.Right.ID]
	index := make(map[int64][]data.Row, len(right.Rows))
	for _, r := range right.Rows {
		index[r[n.RightCol]] = append(index[r[n.RightCol]], r)
	}
	joined := &data.Table{Rel: left.Rel + "⋈" + right.Rel, Attrs: n.Attrs}
	leftMiss := &data.Table{Rel: left.Rel + "!", Attrs: left.Attrs}
	matched := make(map[int64]bool)
	var pending int64
	for _, lrow := range left.Rows {
		matches := index[lrow[n.LeftCol]]
		if len(matches) == 0 {
			leftMiss.Rows = append(leftMiss.Rows, lrow)
			continue
		}
		matched[lrow[n.LeftCol]] = true
		for _, rrow := range matches {
			row := make(data.Row, 0, len(lrow)+len(rrow))
			row = append(append(row, lrow...), rrow...)
			joined.Rows = append(joined.Rows, row)
		}
		pending += int64(len(matches))
		if pending >= 4096 {
			if err := out.count(pending); err != nil {
				return nil, err
			}
			pending = 0
			if err := out.ctxErr(); err != nil {
				return nil, err
			}
		}
	}
	if err := out.count(pending); err != nil {
		return nil, err
	}
	rightMiss := &data.Table{Rel: right.Rel + "!", Attrs: right.Attrs}
	for _, rrow := range right.Rows {
		if !matched[rrow[n.RightCol]] {
			rightMiss.Rows = append(rightMiss.Rows, rrow)
		}
	}
	taps, err := out.liveTaps(col, n.Taps)
	if err != nil {
		return nil, err
	}
	var tapStart time.Time
	if met != nil {
		// Miss collection above is part of the join's own work (reject
		// links need it regardless of instrumentation); only the
		// statistic observation below counts as tap overhead.
		met.WallNanos += time.Since(start).Nanoseconds()
		met.Calls++
		met.RowsOut += joined.Card()
		tapStart = time.Now()
	}
	for _, t := range taps {
		col.collect(t, joined)
	}
	if n.LeftReject != nil {
		if err := collectReject(bp, n.LeftReject, leftMiss, tables, col, out); err != nil {
			return nil, err
		}
	}
	if n.RightReject != nil {
		if err := collectReject(bp, n.RightReject, rightMiss, tables, col, out); err != nil {
			return nil, err
		}
	}
	if met != nil {
		met.TapNanos += time.Since(tapStart).Nanoseconds()
	}
	if n.RejectLink != "" {
		out.materialized[n.RejectLink] = leftMiss
	}
	return joined, nil
}

// collectReject feeds one side's reject statistics: singletons over the
// miss rows directly, two-input variants through their auxiliary joins with
// the partner's cooked input.
func collectReject(bp *physical.BlockPlan, rt *physical.RejectTaps, misses *data.Table, tables []*data.Table, col *collector, out *blockSink) error {
	singles, err := out.liveTaps(col, rt.Singles)
	if err != nil {
		return err
	}
	for _, t := range singles {
		col.collect(t, misses)
	}
	aux, err := out.liveAux(col, rt.Aux)
	if err != nil {
		return err
	}
	if len(aux) == 0 {
		return nil
	}
	st := &auxState{aux: aux, misses: misses}
	st.run(col, chainEnds(bp, tables))
	return nil
}

// chainEnds returns each input's cooked table (the chain-end node outputs).
func chainEnds(bp *physical.BlockPlan, tables []*data.Table) []*data.Table {
	out := make([]*data.Table, len(bp.Chains))
	for i, ch := range bp.Chains {
		out[i] = tables[ch[len(ch)-1].ID]
	}
	return out
}

// hashJoin equi-joins two tables, also returning each side's non-matching
// rows (the reject sets). It is the reference join the auxiliary
// union–division counters and the tests use.
func hashJoin(left, right *data.Table, la, ra workflow.Attr) (joined, leftMiss, rightMiss *data.Table, err error) {
	lc := left.Col(la)
	rc := right.Col(ra)
	if lc < 0 || rc < 0 {
		return nil, nil, nil, fmt.Errorf("join attrs %s/%s not found (schemas %v / %v)", la, ra, left.Attrs, right.Attrs)
	}
	index := make(map[int64][]data.Row)
	for _, r := range right.Rows {
		index[r[rc]] = append(index[r[rc]], r)
	}
	joined = &data.Table{
		Rel:   left.Rel + "⋈" + right.Rel,
		Attrs: append(append([]workflow.Attr(nil), left.Attrs...), right.Attrs...),
	}
	leftMiss = &data.Table{Rel: left.Rel + "!", Attrs: left.Attrs}
	matchedRight := make(map[int64]bool)
	for _, lrow := range left.Rows {
		matches := index[lrow[lc]]
		if len(matches) == 0 {
			leftMiss.Rows = append(leftMiss.Rows, lrow)
			continue
		}
		matchedRight[lrow[lc]] = true
		for _, rrow := range matches {
			row := make(data.Row, 0, len(lrow)+len(rrow))
			row = append(append(row, lrow...), rrow...)
			joined.Rows = append(joined.Rows, row)
		}
	}
	rightMiss = &data.Table{Rel: right.Rel + "!", Attrs: right.Attrs}
	for _, rrow := range right.Rows {
		if !matchedRight[rrow[rc]] {
			rightMiss.Rows = append(rightMiss.Rows, rrow)
		}
	}
	return joined, leftMiss, rightMiss, nil
}
