// Package engine executes ETL workflows over materialized tables, the way
// a batch ETL runtime does: each optimizable block's input chains run
// first, then its join tree (either the designed initial order or any
// reordering supplied by the optimizer), then its pinned top operators; the
// block output feeds downstream blocks until the sinks are written.
//
// The engine realizes Sections 3.2.5–3.2.6 of the paper: it can be
// instrumented with per-point statistic collectors (tuple counters,
// distinct counters, exact frequency histograms, and reject-link
// observation) so a single execution of the initial plan gathers the
// statistics chosen by the selector.
package engine

import (
	"fmt"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// DB maps base relation names to materialized tables.
type DB map[string]*data.Table

// UDF is a scalar transformation function applied per tuple.
type UDF func(vals []int64) int64

// Registry resolves transform function names to implementations.
type Registry map[string]UDF

// DefaultRegistry returns the built-in UDFs used by the examples and the
// benchmark suite.
func DefaultRegistry() Registry {
	return Registry{
		// identity passes the first input through.
		"identity": func(v []int64) int64 { return v[0] },
		// bucket10 maps values into ten buckets.
		"bucket10": func(v []int64) int64 { return v[0]%10 + 1 },
		// sum adds all inputs.
		"sum": func(v []int64) int64 {
			var t int64
			for _, x := range v {
				t += x
			}
			return t
		},
		// scramble is a cheap value scrambler standing in for opaque
		// cleansing code.
		"scramble": func(v []int64) int64 { return (v[0]*2654435761 + 17) % 100003 },
	}
}

// Engine executes workflows.
type Engine struct {
	An  *workflow.Analysis
	DB  DB
	Reg Registry
	// Workers bounds how many independent blocks execute concurrently
	// (the block dependency DAG is derived from the analysis). Values <= 1
	// run the classic sequential loop.
	Workers int
}

// New returns an engine for the analyzed workflow over the database.
func New(an *workflow.Analysis, db DB, reg Registry) *Engine {
	if reg == nil {
		reg = DefaultRegistry()
	}
	return &Engine{An: an, DB: db, Reg: reg}
}

// Result is the outcome of one workflow execution.
type Result struct {
	// BlockOut holds each block's boundary output.
	BlockOut map[int]*data.Table
	// Sinks holds the target record-sets by name.
	Sinks map[string]*data.Table
	// Materialized holds explicitly materialized intermediate results by
	// target name, including the reject links of reject joins.
	Materialized map[string]*data.Table
	// Observed holds the collected statistics when the run was
	// instrumented (nil otherwise).
	Observed *stats.Store
	// Rows counts tuples processed across all operators (a simple work
	// metric used to compare plan costs empirically).
	Rows int64
}

// Run executes the workflow with each block using its initial join tree.
func (e *Engine) Run() (*Result, error) {
	return e.RunPlans(nil, nil, nil)
}

// RunObserved executes the initial plan instrumented to collect the given
// statistics (which must be observable; others are silently skipped).
func (e *Engine) RunObserved(res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.RunPlans(nil, res, observe)
}

// RunPlans executes the workflow using the supplied join tree per block
// (nil map or missing entry = the initial tree), instrumented with the
// given statistics when res is non-nil. Statistics not observable under
// the initial plan are skipped; use RunPlansObserving for re-ordered plans
// that expose different sub-expressions (the pay-as-you-go baseline).
func (e *Engine) RunPlans(plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.runPlans(plans, res, observe, false)
}

// RunPlansObserving is RunPlans without the initial-plan observability
// filter: any statistic whose target the executed plans actually produce is
// collected. Targets the plans do not produce are silently absent from the
// store.
func (e *Engine) RunPlansObserving(plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat) (*Result, error) {
	return e.runPlans(plans, res, observe, true)
}

func (e *Engine) runPlans(plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat, anyPoint bool) (*Result, error) {
	out := &Result{
		BlockOut:     make(map[int]*data.Table),
		Sinks:        make(map[string]*data.Table),
		Materialized: make(map[string]*data.Table),
	}
	var taps *tapSet
	if res != nil {
		var err error
		taps, err = newTapSet(res, observe, anyPoint)
		if err != nil {
			return nil, err
		}
		out.Observed = taps.store
	}
	err := runBlocksDAG(e.An, plans, e.Workers, out, func(blk *workflow.Block, tree *workflow.JoinTree, sink *blockSink) (*data.Table, error) {
		return e.runBlock(blk, tree, taps, sink)
	})
	if err != nil {
		return nil, err
	}
	if err := routeSinks(e.An, out); err != nil {
		return nil, err
	}
	return out, nil
}

// runBlock executes one block: input chains, join tree, top operators.
func (e *Engine) runBlock(blk *workflow.Block, tree *workflow.JoinTree, taps *tapSet, out *blockSink) (*data.Table, error) {
	// Materialize the inputs.
	inputs := make([]*data.Table, len(blk.Inputs))
	for i := range blk.Inputs {
		tbl, err := e.runChain(blk, i, taps, out)
		if err != nil {
			return nil, fmt.Errorf("input %d (%s): %w", i, blk.Inputs[i].Name, err)
		}
		inputs[i] = tbl
	}
	var result *data.Table
	if tree == nil {
		if len(inputs) != 1 {
			return nil, fmt.Errorf("join-free block with %d inputs", len(inputs))
		}
		result = inputs[0]
	} else {
		var err error
		result, _, err = e.runTree(blk, tree, inputs, taps, out)
		if err != nil {
			return nil, err
		}
	}
	// Top operators.
	for _, op := range blk.TopOps {
		var err error
		result, err = e.applyOp(result, op, out)
		if err != nil {
			return nil, fmt.Errorf("top op %q: %w", op.ID, err)
		}
	}
	// A reject-pinned block's terminal join already ran inside the tree;
	// its materialized reject link is recorded there.
	return result, nil
}

// runChain materializes input i of the block and applies its pushed-down
// operators, feeding chain-point taps at every depth.
func (e *Engine) runChain(blk *workflow.Block, i int, taps *tapSet, out *blockSink) (*data.Table, error) {
	in := blk.Inputs[i]
	var tbl *data.Table
	switch {
	case in.SourceRel != "":
		src, ok := e.DB[in.SourceRel]
		if !ok {
			return nil, fmt.Errorf("relation %q not in database", in.SourceRel)
		}
		tbl = src
	case in.FromBlock >= 0:
		up, ok := out.upstream[in.FromBlock]
		if !ok {
			return nil, fmt.Errorf("upstream block %d not yet executed", in.FromBlock)
		}
		tbl = up
	default:
		return nil, fmt.Errorf("input %d has neither source nor upstream block", i)
	}
	if taps != nil {
		taps.observeChainPoint(blk.Index, i, 0, len(in.Ops), tbl)
	}
	out.rows += tbl.Card()
	for d, op := range in.Ops {
		var err error
		tbl, err = e.applyOp(tbl, op, out)
		if err != nil {
			return nil, fmt.Errorf("chain op %q: %w", op.ID, err)
		}
		if taps != nil {
			taps.observeChainPoint(blk.Index, i, d+1, len(in.Ops), tbl)
		}
	}
	return tbl, nil
}

// runTree evaluates a join tree bottom-up, returning the result table and
// the SE it represents, feeding SE taps and reject taps along the way.
func (e *Engine) runTree(blk *workflow.Block, t *workflow.JoinTree, inputs []*data.Table, taps *tapSet, out *blockSink) (*data.Table, expr.Set, error) {
	if t.IsLeaf() {
		se := expr.NewSet(t.Leaf)
		if taps != nil {
			taps.observeSE(blk.Index, se, inputs[t.Leaf])
		}
		return inputs[t.Leaf], se, nil
	}
	left, lse, err := e.runTree(blk, t.Left, inputs, taps, out)
	if err != nil {
		return nil, 0, err
	}
	right, rse, err := e.runTree(blk, t.Right, inputs, taps, out)
	if err != nil {
		return nil, 0, err
	}
	edge := blk.Joins[t.Join]
	la, ra := edge.LeftAttr, edge.RightAttr
	// Normalize the attributes to the sides as executed.
	if left.Col(la) < 0 {
		la, ra = ra, la
	}
	joined, leftMisses, rightMisses, err := hashJoin(left, right, la, ra)
	if err != nil {
		return nil, 0, fmt.Errorf("join %q: %w", edge.Node, err)
	}
	out.rows += joined.Card()
	se := lse.Union(rse)
	if taps != nil {
		taps.observeSE(blk.Index, se, joined)
		// Union–division reject observation: a side that is a bare input
		// joined over this edge can feed reject-singleton taps.
		if lse.Len() == 1 {
			taps.observeReject(blk, lse.Lowest(), t.Join, leftMisses, inputs)
		}
		if rse.Len() == 1 {
			taps.observeReject(blk, rse.Lowest(), t.Join, rightMisses, inputs)
		}
	}
	// A designed reject link materializes the left side's misses.
	if n := e.An.Graph.Node(edge.Node); n != nil && n.Join != nil && n.Join.RejectLink {
		name := string(edge.Node) + ".reject"
		out.materialized[name] = leftMisses
	}
	return joined, se, nil
}

// hashJoin equi-joins two tables, also returning each side's non-matching
// rows (the reject sets).
func hashJoin(left, right *data.Table, la, ra workflow.Attr) (joined, leftMiss, rightMiss *data.Table, err error) {
	lc := left.Col(la)
	rc := right.Col(ra)
	if lc < 0 || rc < 0 {
		return nil, nil, nil, fmt.Errorf("join attrs %s/%s not found (schemas %v / %v)", la, ra, left.Attrs, right.Attrs)
	}
	index := make(map[int64][]data.Row)
	for _, r := range right.Rows {
		index[r[rc]] = append(index[r[rc]], r)
	}
	joined = &data.Table{
		Rel:   left.Rel + "⋈" + right.Rel,
		Attrs: append(append([]workflow.Attr(nil), left.Attrs...), right.Attrs...),
	}
	leftMiss = &data.Table{Rel: left.Rel + "!", Attrs: left.Attrs}
	matchedRight := make(map[int64]bool)
	for _, lrow := range left.Rows {
		matches := index[lrow[lc]]
		if len(matches) == 0 {
			leftMiss.Rows = append(leftMiss.Rows, lrow)
			continue
		}
		matchedRight[lrow[lc]] = true
		for _, rrow := range matches {
			row := make(data.Row, 0, len(lrow)+len(rrow))
			row = append(append(row, lrow...), rrow...)
			joined.Rows = append(joined.Rows, row)
		}
	}
	rightMiss = &data.Table{Rel: right.Rel + "!", Attrs: right.Attrs}
	for _, rrow := range right.Rows {
		if !matchedRight[rrow[rc]] {
			rightMiss.Rows = append(rightMiss.Rows, rrow)
		}
	}
	return joined, leftMiss, rightMiss, nil
}

// applyOp executes one unary operator.
func (e *Engine) applyOp(tbl *data.Table, op *workflow.Node, out *blockSink) (*data.Table, error) {
	switch op.Kind {
	case workflow.KindSelect:
		c := tbl.Col(op.Pred.Attr)
		if c < 0 {
			return nil, fmt.Errorf("select attr %s not in schema", op.Pred.Attr)
		}
		res := &data.Table{Rel: tbl.Rel, Attrs: tbl.Attrs}
		for _, r := range tbl.Rows {
			if op.Pred.Matches(r[c]) {
				res.Rows = append(res.Rows, r)
			}
		}
		out.rows += res.Card()
		return res, nil
	case workflow.KindProject:
		cols := make([]int, len(op.Cols))
		for i, a := range op.Cols {
			cols[i] = tbl.Col(a)
			if cols[i] < 0 {
				return nil, fmt.Errorf("project attr %s not in schema", a)
			}
		}
		res := &data.Table{Rel: tbl.Rel, Attrs: append([]workflow.Attr(nil), op.Cols...)}
		for _, r := range tbl.Rows {
			row := make(data.Row, len(cols))
			for i, c := range cols {
				row[i] = r[c]
			}
			res.Rows = append(res.Rows, row)
		}
		out.rows += res.Card()
		return res, nil
	case workflow.KindTransform:
		fn, ok := e.Reg[op.Transform.Fn]
		if !ok {
			return nil, fmt.Errorf("unknown UDF %q", op.Transform.Fn)
		}
		ins := make([]int, len(op.Transform.Ins))
		for i, a := range op.Transform.Ins {
			ins[i] = tbl.Col(a)
			if ins[i] < 0 {
				return nil, fmt.Errorf("transform attr %s not in schema", a)
			}
		}
		res := &data.Table{Rel: tbl.Rel, Attrs: append(append([]workflow.Attr(nil), tbl.Attrs...), op.Transform.Out)}
		buf := make([]int64, len(ins))
		for _, r := range tbl.Rows {
			for i, c := range ins {
				buf[i] = r[c]
			}
			row := make(data.Row, 0, len(r)+1)
			row = append(append(row, r...), fn(buf))
			res.Rows = append(res.Rows, row)
		}
		out.rows += res.Card()
		return res, nil
	case workflow.KindGroupBy:
		cols := make([]int, len(op.Cols))
		for i, a := range op.Cols {
			cols[i] = tbl.Col(a)
			if cols[i] < 0 {
				return nil, fmt.Errorf("group-by attr %s not in schema", a)
			}
		}
		res := &data.Table{Rel: tbl.Rel, Attrs: append([]workflow.Attr(nil), op.Cols...)}
		seen := make(map[string]bool)
		for _, r := range tbl.Rows {
			key := make(data.Row, len(cols))
			for i, c := range cols {
				key[i] = r[c]
			}
			k := rowKey(key)
			if !seen[k] {
				seen[k] = true
				res.Rows = append(res.Rows, key)
			}
		}
		out.rows += res.Card()
		return res, nil
	case workflow.KindAggregateUDF:
		fn, ok := e.Reg[op.Transform.Fn]
		if !ok {
			return nil, fmt.Errorf("unknown aggregate UDF %q", op.Transform.Fn)
		}
		ins := make([]int, len(op.Transform.Ins))
		for i, a := range op.Transform.Ins {
			ins[i] = tbl.Col(a)
			if ins[i] < 0 {
				return nil, fmt.Errorf("aggregate attr %s not in schema", a)
			}
		}
		// The opaque aggregate groups by its input attributes and emits
		// one row per group: (inputs..., fn(inputs)).
		attrs := make([]workflow.Attr, 0, len(op.Transform.Ins)+1)
		attrs = append(attrs, op.Transform.Ins...)
		attrs = append(attrs, op.Transform.Out)
		res := &data.Table{Rel: tbl.Rel, Attrs: attrs}
		seen := make(map[string]bool)
		buf := make([]int64, len(ins))
		for _, r := range tbl.Rows {
			for i, c := range ins {
				buf[i] = r[c]
			}
			k := rowKey(buf)
			if seen[k] {
				continue
			}
			seen[k] = true
			row := make(data.Row, 0, len(buf)+1)
			row = append(append(row, buf...), fn(buf))
			res.Rows = append(res.Rows, row)
		}
		out.rows += res.Card()
		return res, nil
	case workflow.KindMaterialize:
		out.materialized[op.Rel] = tbl
		return tbl, nil
	default:
		return nil, fmt.Errorf("unexpected operator kind %v in block", op.Kind)
	}
}

func rowKey(r []int64) string {
	buf := make([]byte, 0, len(r)*8)
	for _, v := range r {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(v>>s))
		}
	}
	return string(buf)
}
