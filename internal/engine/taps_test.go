package engine

import (
	"testing"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

func findInput(t *testing.T, blk *workflow.Block, rel string) int {
	t.Helper()
	for i, in := range blk.Inputs {
		if in.SourceRel == rel {
			return i
		}
	}
	t.Fatalf("input %s missing", rel)
	return -1
}

func TestTapCardAndHistogram(t *testing.T) {
	db, cat := tinyDB()
	g := retailGraph()
	an, err := workflow.Analyze(g, cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	blk := an.Blocks[0]
	sp := res.Space(0)
	o := findInput(t, blk, "Orders")
	p := findInput(t, blk, "Product")
	pidClass := sp.ClassOf(workflow.Attr{Rel: "Orders", Col: "pid"})

	cardOP := stats.NewCard(stats.BlockSE(0, expr.NewSet(o, p)))
	histO := stats.NewHist(stats.BlockSE(0, expr.NewSet(o)), pidClass)
	distO := stats.NewDistinct(stats.BlockSE(0, expr.NewSet(o)), pidClass)
	run, err := New(an, db, nil).RunObserved(res, []stats.Stat{cardOP, histO, distO})
	if err != nil {
		t.Fatalf("RunObserved: %v", err)
	}
	store := run.Observed
	v, err := store.Scalar(cardOP)
	if err != nil || v != 4 {
		t.Fatalf("|O⋈P| = %d, %v; want 4", v, err)
	}
	h, err := store.Hist(histO)
	if err != nil {
		t.Fatalf("hist: %v", err)
	}
	// Orders pids: 10,10,20,30,99.
	if h.Freq(10) != 2 || h.Freq(20) != 1 || h.Freq(99) != 1 {
		t.Fatalf("histogram wrong: %v buckets", h.Buckets())
	}
	d, err := store.Scalar(distO)
	if err != nil || d != 4 {
		t.Fatalf("distinct = %d, %v; want 4 (10,20,30,99)", d, err)
	}
}

func TestTapRejectSingleton(t *testing.T) {
	db, cat := tinyDB()
	g := retailGraph()
	an, err := workflow.Analyze(g, cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	blk := an.Blocks[0]
	o := findInput(t, blk, "Orders")
	p := findInput(t, blk, "Product")
	// Edge joining Orders and Product.
	f := -1
	for j, e := range blk.Joins {
		if e.LeftInput == o && e.RightInput == p || e.LeftInput == p && e.RightInput == o {
			f = j
		}
	}
	if f < 0 {
		t.Fatal("no O-P edge")
	}
	rejCard := stats.NewCard(stats.BlockRejectSE(0, expr.NewSet(o), o, f))
	if !res.StatObservable(rejCard) {
		t.Fatal("reject singleton should be observable (O joined directly with P)")
	}
	run, err := New(an, db, nil).RunObserved(res, []stats.Stat{rejCard})
	if err != nil {
		t.Fatalf("RunObserved: %v", err)
	}
	v, err := run.Observed.Scalar(rejCard)
	if err != nil || v != 1 { // order with pid=99 has no product
		t.Fatalf("|T̄O| = %d, %v; want 1", v, err)
	}
}

func TestTapRejectAuxiliaryJoin(t *testing.T) {
	// The union–division counter |T̄O ⋈ Customer|: rejects of Orders w.r.t.
	// Product, joined with Customer via the auxiliary join.
	db, cat := tinyDB()
	g := retailGraph()
	an, err := workflow.Analyze(g, cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	blk := an.Blocks[0]
	o := findInput(t, blk, "Orders")
	p := findInput(t, blk, "Product")
	c := findInput(t, blk, "Customer")
	f := -1
	for j, e := range blk.Joins {
		if e.LeftInput == o && e.RightInput == p || e.LeftInput == p && e.RightInput == o {
			f = j
		}
	}
	rejJoin := stats.NewCard(stats.BlockRejectSE(0, expr.NewSet(o, c), o, f))
	if !res.Observable[rejJoin.Key()] {
		t.Fatal("two-input reject variant should be observable")
	}
	if !res.NeedsRejectLink[rejJoin.Key()] {
		t.Fatal("reject variant should be marked NeedsRejectLink")
	}
	run, err := New(an, db, nil).RunObserved(res, []stats.Stat{rejJoin})
	if err != nil {
		t.Fatalf("RunObserved: %v", err)
	}
	// The rejected order is (cid=3, oid=5, pid=99); Customer has cids 1,2:
	// the auxiliary join is empty.
	v, err := run.Observed.Scalar(rejJoin)
	if err != nil || v != 0 {
		t.Fatalf("|T̄O⋈C| = %d, %v; want 0", v, err)
	}
}

func TestTapChainPoint(t *testing.T) {
	db, cat := tinyDB()
	b := workflow.NewBuilder("chain")
	o := b.Source("Orders")
	f := b.Select(o, workflow.Predicate{Attr: workflow.Attr{Rel: "Orders", Col: "pid"}, Op: workflow.CmpLt, Const: 50})
	p := b.Source("Product")
	j := b.Join(f, p, workflow.Attr{Rel: "Orders", Col: "pid"}, workflow.Attr{Rel: "Product", Col: "pid"})
	b.Sink(j, "out")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	blk := an.Blocks[0]
	oIdx := findInput(t, blk, "Orders")
	// Raw chain point (before the select): card must be the full 5 rows;
	// the cooked SE card is 4 (pid 99 filtered).
	rawCard := stats.NewCard(stats.ChainPoint(0, oIdx, 0))
	cookedCard := stats.NewCard(stats.BlockSE(0, expr.NewSet(oIdx)))
	run, err := New(an, db, nil).RunObserved(res, []stats.Stat{rawCard, cookedCard})
	if err != nil {
		t.Fatalf("RunObserved: %v", err)
	}
	if v, _ := run.Observed.Scalar(rawCard); v != 5 {
		t.Fatalf("raw card = %d, want 5", v)
	}
	if v, _ := run.Observed.Scalar(cookedCard); v != 4 {
		t.Fatalf("cooked card = %d, want 4", v)
	}
}

func TestTapSkipsNonObservable(t *testing.T) {
	db, cat := tinyDB()
	g := retailGraph()
	an, err := workflow.Analyze(g, cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	blk := an.Blocks[0]
	o := findInput(t, blk, "Orders")
	c := findInput(t, blk, "Customer")
	// O⋈C is not produced by the initial plan: asking for it must not
	// record anything (and must not fail).
	unobservable := stats.NewCard(stats.BlockSE(0, expr.NewSet(o, c)))
	run, err := New(an, db, nil).RunObserved(res, []stats.Stat{unobservable})
	if err != nil {
		t.Fatalf("RunObserved: %v", err)
	}
	if run.Observed.Has(unobservable) {
		t.Fatal("unobservable statistic was recorded")
	}
}
