package batch

import "sync"

// slabElems is the default slab size in elements. One slab holds 64Ki
// values (512KiB for int64) — large enough that a typical operator output
// costs zero allocations once the arena is warm, small enough that a run
// over tiny tables does not pin megabytes.
const slabElems = 1 << 16

// slabs is a bump allocator over a list of reusable slabs of one element
// type. Alloc carves from the current slab and appends a fresh slab (sized
// max(slabElems, n)) only when nothing already held fits; Reset rewinds the
// carve pointer without releasing the slabs, so steady-state allocation is
// pointer arithmetic.
type slabs[T int64 | int32] struct {
	all [][]T
	cur int // slab being carved
	off int // carve offset within all[cur]
}

func (s *slabs[T]) alloc(n int) []T {
	if n == 0 {
		return nil
	}
	for s.cur < len(s.all) {
		if slab := s.all[s.cur]; s.off+n <= len(slab) {
			out := slab[s.off : s.off+n : s.off+n]
			s.off += n
			return out
		}
		s.cur++
		s.off = 0
	}
	size := n
	if size < slabElems {
		size = slabElems
	}
	slab := make([]T, size)
	s.all = append(s.all, slab)
	s.off = n
	return slab[:n:n]
}

func (s *slabs[T]) reset() { s.cur, s.off = 0, 0 }

// Arena is a slab allocator for column vectors and selection vectors. The
// engines allocate every operator-lifetime vector from an arena and Reset it
// when the owning scope (a block attempt, or one streaming chunk) ends, so a
// run's steady-state allocation count is independent of row count.
//
// Lifetime rule: nothing allocated from an arena may outlive its Reset.
// Everything that crosses an arena boundary — block outputs, materialized
// tables, reject links, statistic values — is copied out first (Table and
// the statistic stores own their memory).
//
// An Arena is not safe for concurrent use; parallel workers take one each.
type Arena struct {
	i64 slabs[int64]
	i32 slabs[int32]
}

// Int64 returns an uninitialized int64 vector of length n, valid until
// Reset. The vector has full capacity n and must not be appended to.
func (a *Arena) Int64(n int) []int64 { return a.i64.alloc(n) }

// Int32 returns an uninitialized int32 vector (selection vectors, row
// indexes) of length n, valid until Reset.
func (a *Arena) Int32(n int) []int32 { return a.i32.alloc(n) }

// Reset reclaims every vector handed out since the last Reset, keeping the
// slabs for reuse.
func (a *Arena) Reset() {
	a.i64.reset()
	a.i32.reset()
}

// arenaPool recycles arenas (and therefore their slabs) across block
// attempts and runs.
var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// GetArena returns a reset arena from the pool.
func GetArena() *Arena { return arenaPool.Get().(*Arena) }

// PutArena resets the arena and returns it to the pool. The caller must not
// retain any vector allocated from it.
func PutArena(a *Arena) {
	a.Reset()
	arenaPool.Put(a)
}
