package batch

import (
	"testing"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/workflow"
)

func testTable(rows ...[]int64) *data.Table {
	t := &data.Table{Rel: "T", Attrs: []workflow.Attr{{Rel: "T", Col: "a"}, {Rel: "T", Col: "b"}}}
	for _, r := range rows {
		t.Rows = append(t.Rows, data.Row(r))
	}
	return t
}

func TestFromTableRoundTrip(t *testing.T) {
	a := GetArena()
	defer PutArena(a)
	tbl := testTable([]int64{1, 10}, []int64{2, 20}, []int64{3, 30})
	b, err := FromTable(tbl, a)
	if err != nil {
		t.Fatalf("FromTable: %v", err)
	}
	if b.Rows() != 3 || len(b.Cols) != 2 {
		t.Fatalf("batch shape %dx%d, want 3x2", b.Rows(), len(b.Cols))
	}
	back := b.Table(tbl.Rel, tbl.Attrs)
	if len(back.Rows) != 3 {
		t.Fatalf("round trip rows = %d, want 3", len(back.Rows))
	}
	for i, r := range back.Rows {
		for c, v := range r {
			if v != tbl.Rows[i][c] {
				t.Fatalf("round trip [%d][%d] = %d, want %d", i, c, v, tbl.Rows[i][c])
			}
		}
	}
}

func TestSelectionSemantics(t *testing.T) {
	a := GetArena()
	defer PutArena(a)
	tbl := testTable([]int64{1, 10}, []int64{2, 20}, []int64{3, 30}, []int64{2, 40})
	b, _ := FromTable(tbl, a)

	// a == 2 selects physical rows 1 and 3.
	sel := SelectPred(b.Cols[0], nil, b.N, workflow.CmpEq, 2, a.Int32(b.Rows()))
	if len(sel) != 2 || sel[0] != 1 || sel[1] != 3 {
		t.Fatalf("sel = %v, want [1 3]", sel)
	}
	filtered := &Batch{Cols: b.Cols, N: b.N, Sel: sel}
	if filtered.Rows() != 2 {
		t.Fatalf("filtered rows = %d, want 2", filtered.Rows())
	}
	// Chained predicate over the selection: b >= 40 keeps only row 3.
	sel2 := SelectPred(b.Cols[1], sel, b.N, workflow.CmpGe, 40, a.Int32(filtered.Rows()))
	if len(sel2) != 1 || sel2[0] != 3 {
		t.Fatalf("chained sel = %v, want [3]", sel2)
	}
	// Materializing honors the selection in order.
	out := (&Batch{Cols: b.Cols, N: b.N, Sel: sel}).Table("f", tbl.Attrs)
	if len(out.Rows) != 2 || out.Rows[0][1] != 20 || out.Rows[1][1] != 40 {
		t.Fatalf("materialized selection = %v", out.Rows)
	}
}

func TestSelectPredOps(t *testing.T) {
	a := GetArena()
	defer PutArena(a)
	col := []int64{1, 2, 3, 4, 5}
	cases := []struct {
		op   workflow.CmpOp
		c    int64
		want int
	}{
		{workflow.CmpEq, 3, 1}, {workflow.CmpNe, 3, 4},
		{workflow.CmpLt, 3, 2}, {workflow.CmpLe, 3, 3},
		{workflow.CmpGt, 3, 2}, {workflow.CmpGe, 3, 3},
	}
	for _, tc := range cases {
		got := SelectPred(col, nil, len(col), tc.op, tc.c, a.Int32(len(col)))
		if len(got) != tc.want {
			t.Errorf("op %v const %d: %d rows, want %d", tc.op, tc.c, len(got), tc.want)
		}
		p := workflow.Predicate{Op: tc.op, Const: tc.c}
		for _, ri := range got {
			if !p.Matches(col[ri]) {
				t.Errorf("op %v const %d selected non-matching value %d", tc.op, tc.c, col[ri])
			}
		}
	}
}

func TestJoinIndexChains(t *testing.T) {
	a := GetArena()
	defer PutArena(a)
	col := []int64{7, 5, 7, 9, 7}
	ix := NewJoinIndex(col, nil, len(col), a)
	// Chains surface build rows in ascending physical order.
	var got []int32
	for r := ix.First(7); r >= 0; r = ix.Next(r) {
		got = append(got, r)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("chain for 7 = %v, want [0 2 4]", got)
	}
	if r := ix.First(5); r != 1 || ix.Next(r) != -1 {
		t.Fatalf("chain for 5 starts at %d", r)
	}
	if ix.First(42) != -1 {
		t.Fatal("missing key should yield -1")
	}
	// A selection hides unselected build rows.
	ix2 := NewJoinIndex(col, []int32{0, 3}, len(col), a)
	if r := ix2.First(7); r != 0 || ix2.Next(r) != -1 {
		t.Fatalf("selected chain for 7 = %d, want only row 0", r)
	}
}

func TestArenaReuse(t *testing.T) {
	var a Arena
	v1 := a.Int64(100)
	if len(v1) != 100 || cap(v1) != 100 {
		t.Fatalf("len/cap = %d/%d, want 100/100", len(v1), cap(v1))
	}
	v2 := a.Int64(100)
	v2[0] = 42
	if &v1[0] == &v2[0] {
		t.Fatal("distinct allocations share backing")
	}
	a.Reset()
	v3 := a.Int64(100)
	if &v3[0] != &v1[0] {
		t.Fatal("reset should rewind to the first slab")
	}
	// Oversized requests get their own slab and don't disturb carving.
	big := a.Int64(slabElems * 2)
	if len(big) != slabElems*2 {
		t.Fatalf("oversized alloc len = %d", len(big))
	}
}

func TestAppendLive(t *testing.T) {
	b := &Batch{Cols: [][]int64{{1, 2, 3}, {10, 20, 30}}, N: 3, Sel: []int32{0, 2}}
	dst := batchAppend(nil, b)
	if len(dst[0]) != 2 || dst[0][1] != 3 || dst[1][1] != 30 {
		t.Fatalf("AppendLive with sel = %v", dst)
	}
	dst = batchAppend(dst, &Batch{Cols: [][]int64{{4}, {40}}, N: 1})
	if len(dst[0]) != 3 || dst[0][2] != 4 {
		t.Fatalf("AppendLive concat = %v", dst)
	}
}

func batchAppend(dst [][]int64, b *Batch) [][]int64 {
	if dst == nil {
		dst = make([][]int64, len(b.Cols))
	}
	return AppendLive(dst, b)
}

// BenchmarkFilterBatch pins the allocation profile of the columnar filter
// path: one selection vector from a warm arena, zero per-row allocations.
func BenchmarkFilterBatch(b *testing.B) {
	a := GetArena()
	defer PutArena(a)
	n := 1 << 14
	col := make([]int64, n)
	for i := range col {
		col[i] = int64(i % 100)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Reset()
		sel := SelectPred(col, nil, n, workflow.CmpLt, 50, a.Int32(n))
		if len(sel) != n/2 {
			b.Fatalf("selected %d, want %d", len(sel), n/2)
		}
	}
}
