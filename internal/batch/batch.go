// Package batch is the columnar execution core: typed column vectors, slab
// arenas and selection vectors. The engines interpret the physical IR
// batch-at-a-time over these vectors instead of row-at-a-time over
// map/slice rows — filters mark rows in a selection vector instead of
// materializing new tables, operators allocate their output vectors from a
// per-scope arena, and only results that cross an engine boundary (block
// outputs, materialized targets, statistic values) are copied out.
package batch

import (
	"fmt"
	"math"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Batch is a columnar record batch: one int64 vector per schema column, all
// of physical length N, plus an optional selection vector. When Sel is
// non-nil only the rows it lists (in order) are live; values at unselected
// positions are garbage and must never be read. Sel indexes are positions
// in [0, N).
type Batch struct {
	Cols [][]int64
	N    int
	Sel  []int32
}

// Rows returns the live row count.
func (b *Batch) Rows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// FromTable transposes a row-major table into a columnar batch with every
// column allocated from the arena.
func FromTable(t *data.Table, a *Arena) (*Batch, error) {
	n, w := len(t.Rows), len(t.Attrs)
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("batch: table %s has %d rows, beyond the int32 selection-vector limit", t.Rel, n)
	}
	b := &Batch{Cols: make([][]int64, w), N: n}
	for c := range b.Cols {
		b.Cols[c] = a.Int64(n)
	}
	for i, r := range t.Rows {
		for c, v := range r {
			b.Cols[c][i] = v
		}
	}
	return b, nil
}

// Table materializes the live rows into a row-major table. All rows share
// one flat backing array, so the conversion costs three allocations however
// many rows it copies.
func (b *Batch) Table(rel string, attrs []workflow.Attr) *data.Table {
	n, w := b.Rows(), len(b.Cols)
	t := &data.Table{Rel: rel, Attrs: attrs}
	if n == 0 {
		return t
	}
	backing := make([]int64, n*w)
	t.Rows = make([]data.Row, n)
	if b.Sel != nil {
		for i, ri := range b.Sel {
			row := backing[i*w : (i+1)*w : (i+1)*w]
			for c := 0; c < w; c++ {
				row[c] = b.Cols[c][ri]
			}
			t.Rows[i] = row
		}
		return t
	}
	for i := 0; i < n; i++ {
		row := backing[i*w : (i+1)*w : (i+1)*w]
		for c := 0; c < w; c++ {
			row[c] = b.Cols[c][i]
		}
		t.Rows[i] = row
	}
	return t
}

// AppendLive appends every live row of b column-wise onto dst (growing each
// column with the regular append machinery — accumulators persist beyond
// arena resets). dst must have len(b.Cols) columns; it is returned for
// chaining.
func AppendLive(dst [][]int64, b *Batch) [][]int64 {
	if b.Sel != nil {
		for c, col := range b.Cols {
			out := dst[c]
			for _, ri := range b.Sel {
				out = append(out, col[ri])
			}
			dst[c] = out
		}
		return dst
	}
	for c, col := range b.Cols {
		dst[c] = append(dst[c], col[:b.N]...)
	}
	return dst
}

// SelectPred evaluates the single-attribute predicate over the column and
// returns the selection vector of matching rows, written into out (which
// must have capacity for every candidate row). sel/n describe the input's
// live rows, exactly as on Batch.
func SelectPred(col []int64, sel []int32, n int, op workflow.CmpOp, c int64, out []int32) []int32 {
	k := 0
	if sel == nil {
		switch op {
		case workflow.CmpEq:
			for i := 0; i < n; i++ {
				if col[i] == c {
					out[k] = int32(i)
					k++
				}
			}
		case workflow.CmpNe:
			for i := 0; i < n; i++ {
				if col[i] != c {
					out[k] = int32(i)
					k++
				}
			}
		case workflow.CmpLt:
			for i := 0; i < n; i++ {
				if col[i] < c {
					out[k] = int32(i)
					k++
				}
			}
		case workflow.CmpLe:
			for i := 0; i < n; i++ {
				if col[i] <= c {
					out[k] = int32(i)
					k++
				}
			}
		case workflow.CmpGt:
			for i := 0; i < n; i++ {
				if col[i] > c {
					out[k] = int32(i)
					k++
				}
			}
		case workflow.CmpGe:
			for i := 0; i < n; i++ {
				if col[i] >= c {
					out[k] = int32(i)
					k++
				}
			}
		}
		return out[:k]
	}
	switch op {
	case workflow.CmpEq:
		for _, i := range sel {
			if col[i] == c {
				out[k] = i
				k++
			}
		}
	case workflow.CmpNe:
		for _, i := range sel {
			if col[i] != c {
				out[k] = i
				k++
			}
		}
	case workflow.CmpLt:
		for _, i := range sel {
			if col[i] < c {
				out[k] = i
				k++
			}
		}
	case workflow.CmpLe:
		for _, i := range sel {
			if col[i] <= c {
				out[k] = i
				k++
			}
		}
	case workflow.CmpGt:
		for _, i := range sel {
			if col[i] > c {
				out[k] = i
				k++
			}
		}
	case workflow.CmpGe:
		for _, i := range sel {
			if col[i] >= c {
				out[k] = i
				k++
			}
		}
	}
	return out[:k]
}

// Gather writes dst[i] = src[idx[i]] for every index.
func Gather(dst, src []int64, idx []int32) {
	for i, ri := range idx {
		dst[i] = src[ri]
	}
}

// JoinIndex is a chained hash index over one build column: head maps a key
// to its first live build row, next links rows sharing the key in ascending
// physical order (so probe matches surface in build order, like the row
// engines' bucket slices).
type JoinIndex struct {
	head map[int64]int32
	next []int32
}

// NewJoinIndex indexes the live rows of a build column. The next-chain is
// arena-allocated; the head map is sized for the live count up front.
func NewJoinIndex(col []int64, sel []int32, n int, a *Arena) *JoinIndex {
	live := n
	if sel != nil {
		live = len(sel)
	}
	ix := &JoinIndex{head: make(map[int64]int32, live), next: a.Int32(n)}
	// Prepending while iterating in reverse leaves each chain in ascending
	// row order.
	if sel != nil {
		for i := len(sel) - 1; i >= 0; i-- {
			ri := sel[i]
			v := col[ri]
			if first, ok := ix.head[v]; ok {
				ix.next[ri] = first
			} else {
				ix.next[ri] = -1
			}
			ix.head[v] = ri
		}
		return ix
	}
	for i := n - 1; i >= 0; i-- {
		v := col[i]
		if first, ok := ix.head[v]; ok {
			ix.next[i] = int32(first)
		} else {
			ix.next[i] = -1
		}
		ix.head[v] = int32(i)
	}
	return ix
}

// First returns the first build row holding the key, or -1.
func (ix *JoinIndex) First(v int64) int32 {
	if r, ok := ix.head[v]; ok {
		return r
	}
	return -1
}

// Next returns the next build row sharing r's key, or -1.
func (ix *JoinIndex) Next(r int32) int32 { return ix.next[r] }
