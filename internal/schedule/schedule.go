// Package schedule realizes the multi-run observation plans of Section 6.1
// as executable artifacts: given a per-run memory budget, it asks the
// selector which statistics each run should gather, then constructs the
// concrete re-ordered join trees that make each run's statistics observable
// and executes the whole sequence, merging the observations. The paper
// leaves "determining the optimal statistics with plan re-ordering" as a
// future extension (Section 7.2); this package provides a working, honest
// realization: when one run's statistics cannot all coexist in a single
// plan, the run splits.
package schedule

import (
	"context"
	"fmt"
	"sync"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/payg"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Run is one scheduled execution: the statistics it observes and the join
// tree per block that exposes them (nil tree = the initial plan).
type Run struct {
	Observe []stats.Stat
	Trees   map[int]*workflow.JoinTree
}

// Plan is the executable multi-run schedule.
type Plan struct {
	Runs []*Run
	// Budget echoes the per-run memory limit the schedule honors.
	Budget int64
}

// Build turns a selector budget plan into executable runs. The first
// budgeted run uses the initial plan (its statistics are initial-observable
// by construction); each later run is realized by one or more executions
// whose join trees expose the targets. An error is returned when a target
// cannot be exposed by any plan (cannot happen for ordinary SE targets).
func Build(u *selector.Universe, budget int64) (*Plan, error) {
	bp, err := selector.PlanWithBudget(u, budget)
	if err != nil {
		return nil, err
	}
	plan := &Plan{Budget: budget}
	for runIdx, picks := range bp.Runs {
		statsOf := make([]stats.Stat, 0, len(picks))
		for _, i := range picks {
			statsOf = append(statsOf, u.Stats[i])
		}
		if runIdx == 0 {
			// Initial plan: everything the first run picked is observable
			// under it.
			plan.Runs = append(plan.Runs, &Run{Observe: statsOf})
			continue
		}
		subRuns, err := realize(u.Res, statsOf)
		if err != nil {
			return nil, err
		}
		plan.Runs = append(plan.Runs, subRuns...)
	}
	return plan, nil
}

// realize splits a statistic list into executions whose join trees expose
// every target.
func realize(res *css.Result, list []stats.Stat) ([]*Run, error) {
	pending := append([]stats.Stat(nil), list...)
	var out []*Run
	for guard := 0; len(pending) > 0; guard++ {
		if guard > 1024 {
			return nil, fmt.Errorf("schedule: realization did not converge")
		}
		run := &Run{Trees: make(map[int]*workflow.JoinTree)}
		var rest []stats.Stat
		for _, s := range pending {
			if compatible(res, run, s) {
				run.Observe = append(run.Observe, s)
				continue
			}
			rest = append(rest, s)
		}
		if len(run.Observe) == 0 {
			return nil, fmt.Errorf("schedule: statistic %v cannot be exposed by any plan", rest[0].Key())
		}
		out = append(out, run)
		pending = rest
	}
	return out, nil
}

// compatible tries to fit statistic s into the run, extending or creating
// the run's per-block tree when needed. It returns false when s conflicts
// with what the run's trees already expose.
func compatible(res *css.Result, run *Run, s stats.Stat) bool {
	t := s.Target
	blk := res.Analysis.Blocks[t.Block]
	sp := res.Space(t.Block)
	// Chain points are exposed by every plan.
	if t.IsChainPoint() || t.Set.Len() == 1 && !t.IsReject() {
		return true
	}
	cur, has := run.Trees[t.Block]
	switch {
	case t.IsReject():
		// Needs a tree joining {t} directly over the reject edge; a
		// two-input variant additionally needs the aux partner, which the
		// engine joins off-plan, so the same condition suffices.
		ti := t.RejectInput
		e := blk.Joins[t.RejectEdge]
		k := e.LeftInput
		if k == ti {
			k = e.RightInput
		}
		order := append([]int{ti, k}, others(blk, ti, k)...)
		order = connectOrder(blk, order)
		if order == nil {
			return false
		}
		tree := payg.LeftDeepTree(blk, order)
		if has && !sameExposure(sp, cur, tree) {
			return exposesReject(sp, cur, ti, t.RejectEdge)
		}
		run.Trees[t.Block] = tree
		return true
	default:
		// An SE target: the tree must produce t.Set as a node.
		if has {
			return exposesSE(cur, t.Set)
		}
		order := seOrder(blk, sp, t.Set)
		if order == nil {
			return false
		}
		run.Trees[t.Block] = payg.LeftDeepTree(blk, order)
		return true
	}
}

// seOrder builds a full connected order whose prefix realizes the SE.
func seOrder(blk *workflow.Block, sp *expr.Space, se expr.Set) []int {
	members := se.Members()
	order := connectOrder(blk, members)
	if order == nil {
		return nil
	}
	return connectOrder(blk, append(order, others(blk, order...)...))
}

// others lists the block inputs not in the given set.
func others(blk *workflow.Block, in ...int) []int {
	used := make(map[int]bool, len(in))
	for _, i := range in {
		used[i] = true
	}
	var out []int
	for i := 0; i < blk.NumInputs(); i++ {
		if !used[i] {
			out = append(out, i)
		}
	}
	return out
}

// connectOrder reorders candidates so every prefix is connected (keeping
// the first element first); nil when impossible.
func connectOrder(blk *workflow.Block, candidates []int) []int {
	if len(candidates) == 0 {
		return nil
	}
	remaining := append([]int(nil), candidates[1:]...)
	order := []int{candidates[0]}
	cur := expr.NewSet(candidates[0])
	for len(remaining) > 0 {
		found := -1
		for idx, c := range remaining {
			if edgeTo(blk, cur, c) {
				found = idx
				break
			}
		}
		if found < 0 {
			return nil
		}
		c := remaining[found]
		remaining = append(remaining[:found], remaining[found+1:]...)
		order = append(order, c)
		cur = cur.Add(c)
	}
	return order
}

func edgeTo(blk *workflow.Block, in expr.Set, i int) bool {
	for _, e := range blk.Joins {
		if in.Has(e.LeftInput) && e.RightInput == i || in.Has(e.RightInput) && e.LeftInput == i {
			return true
		}
	}
	return false
}

// exposesSE reports whether the tree produces the SE as a node.
func exposesSE(t *workflow.JoinTree, se expr.Set) bool {
	if t == nil {
		return false
	}
	if expr.NewSet(t.Inputs()...) == se {
		return true
	}
	if t.IsLeaf() {
		return false
	}
	return exposesSE(t.Left, se) || exposesSE(t.Right, se)
}

// exposesReject reports whether the tree joins {ti} directly over edge f.
func exposesReject(sp *expr.Space, t *workflow.JoinTree, ti, f int) bool {
	if t == nil || t.IsLeaf() {
		return false
	}
	if t.Join == f {
		if t.Left.IsLeaf() && t.Left.Leaf == ti || t.Right.IsLeaf() && t.Right.Leaf == ti {
			return true
		}
	}
	return exposesReject(sp, t.Left, ti, f) || exposesReject(sp, t.Right, ti, f)
}

// sameExposure reports whether two trees expose the same SE set (cheap
// structural check used before rejecting a conflicting tree request).
func sameExposure(sp *expr.Space, a, b *workflow.JoinTree) bool {
	return render(a) == render(b)
}

func render(t *workflow.JoinTree) string {
	if t == nil {
		return ""
	}
	return t.String()
}

// Execute runs the schedule and merges the observations. Later runs observe
// under re-ordered plans, so the engine's unfiltered observation mode is
// used; statistics a run's plans fail to expose simply stay absent and are
// reported as an error at the end.
//
// Runs are independent full executions, so when the engine is configured
// with Workers > 1 they execute concurrently (bounded by Workers). Stores
// merge in run order, so the merged result is identical to a sequential
// execution regardless of completion order.
func Execute(eng *engine.Engine, res *css.Result, plan *Plan) (*stats.Store, error) {
	return ExecuteCtx(context.Background(), eng, res, plan)
}

// ExecuteCtx is Execute under a context: cancellation (or deadline expiry)
// stops every in-flight run promptly — concurrent runs all poll the same
// context — and the first run's cancellation error is returned.
func ExecuteCtx(ctx context.Context, eng *engine.Engine, res *css.Result, plan *Plan) (*stats.Store, error) {
	merged := stats.NewStore()
	workers := eng.Workers
	if workers > len(plan.Runs) {
		workers = len(plan.Runs)
	}
	if workers > 1 {
		results := make([]*engine.Result, len(plan.Runs))
		errs := make([]error, len(plan.Runs))
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, run := range plan.Runs {
			wg.Add(1)
			go func(i int, run *Run) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i], errs[i] = eng.RunPlansObservingCtx(ctx, run.Trees, res, run.Observe)
			}(i, run)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("schedule: run %d: %w", i+1, err)
			}
		}
		for _, result := range results {
			merged.Merge(result.Observed)
		}
	} else {
		for i, run := range plan.Runs {
			result, err := eng.RunPlansObservingCtx(ctx, run.Trees, res, run.Observe)
			if err != nil {
				return nil, fmt.Errorf("schedule: run %d: %w", i+1, err)
			}
			merged.Merge(result.Observed)
		}
	}
	for _, run := range plan.Runs {
		for _, s := range run.Observe {
			if !merged.Has(s) {
				return nil, fmt.Errorf("schedule: statistic %v was never exposed", s.Key())
			}
		}
	}
	return merged, nil
}
