package schedule

import (
	"testing"

	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/estimate"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/suite"
	"github.com/essential-stats/etlopt/internal/wftest"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// buildUniverse prepares the selection universe for a suite workflow.
func buildUniverse(t *testing.T, id int) (*selector.Universe, *css.Result, *workflow.Analysis, engine.DB) {
	t.Helper()
	w := suite.MustGet(id)
	an, err := w.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := css.Generate(an, css.DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	coster := costmodel.NewMemoryCoster(res, an.Cat)
	u, err := selector.NewUniverse(res, coster)
	if err != nil {
		t.Fatalf("NewUniverse: %v", err)
	}
	return u, res, an, w.Data(0.002)
}

func TestBuildRespectsBudgetAndRealizes(t *testing.T) {
	u, res, _, _ := buildUniverse(t, 3)
	// Tight budget: multiple runs with re-ordered plans.
	plan, err := Build(u, 64)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(plan.Runs) < 2 {
		t.Fatalf("runs = %d, want >= 2 under a tight budget", len(plan.Runs))
	}
	// Per-run memory within budget.
	for r, run := range plan.Runs {
		var mem int64
		for _, s := range run.Observe {
			i, ok := u.Index[s.Key()]
			if !ok {
				t.Fatalf("run %d observes unknown stat %v", r, s.Key())
			}
			mem += u.Mem[i]
		}
		if mem > 64 {
			t.Errorf("run %d uses %d units, above budget 64", r, mem)
		}
	}
	// Later runs must carry explicit trees for targets the initial plan
	// does not expose.
	sawTree := false
	for _, run := range plan.Runs[1:] {
		if len(run.Trees) > 0 {
			sawTree = true
		}
	}
	if !sawTree {
		t.Error("no re-ordered trees in later runs")
	}
	_ = res
}

func TestExecuteScheduleCoversAndEstimates(t *testing.T) {
	u, res, an, db := buildUniverse(t, 3)
	plan, err := Build(u, 64)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	eng := engine.New(an, db, nil)
	store, err := Execute(eng, res, plan)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// The merged observations must let the estimator derive every SE
	// cardinality, and the derived values must match a direct run of the
	// reordered plan.
	est := estimate.New(res, store)
	for bi, sp := range res.Spaces {
		for _, se := range sp.SEs {
			if _, err := est.CardOf(bi, se); err != nil {
				t.Errorf("CardOf(block %d, %v): %v", bi, se, err)
			}
		}
	}
	// Cross-check one learned value against direct observation.
	full := res.Space(0).Full()
	want, err := eng.Run()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	got, err := est.CardOf(0, full)
	if err != nil {
		t.Fatalf("CardOf(full): %v", err)
	}
	if got != want.BlockOut[0].Card() {
		t.Fatalf("full card %d != reference %d", got, want.BlockOut[0].Card())
	}
}

// TestExecuteParallelMatchesSequential: with Workers > 1 the runs of a
// schedule execute concurrently; the merged store must be identical to
// the sequential execution.
func TestExecuteParallelMatchesSequential(t *testing.T) {
	u, res, an, db := buildUniverse(t, 3)
	plan, err := Build(u, 64)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	seqEng := engine.New(an, db, nil)
	seq, err := Execute(seqEng, res, plan)
	if err != nil {
		t.Fatalf("sequential Execute: %v", err)
	}
	parEng := engine.New(an, db, nil)
	parEng.Workers = 4
	par, err := Execute(parEng, res, plan)
	if err != nil {
		t.Fatalf("parallel Execute: %v", err)
	}
	if seq.Len() != par.Len() {
		t.Fatalf("store sizes differ: %d vs %d", seq.Len(), par.Len())
	}
	for _, v := range seq.Values() {
		if v.Hist != nil {
			h, err := par.Hist(v.Stat)
			if err != nil || h.Total() != v.Hist.Total() || h.Buckets() != v.Hist.Buckets() {
				t.Errorf("hist %v differs (%v)", v.Stat.Key(), err)
			}
			continue
		}
		got, err := par.Scalar(v.Stat)
		if err != nil || got != v.Scalar {
			t.Errorf("scalar %v: %d vs %d (%v)", v.Stat.Key(), v.Scalar, got, err)
		}
	}
}

func TestGenerousBudgetSingleRun(t *testing.T) {
	u, _, _, _ := buildUniverse(t, 3)
	plan, err := Build(u, 1<<40)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(plan.Runs) != 1 {
		t.Fatalf("runs = %d, want 1 under a generous budget", len(plan.Runs))
	}
	if len(plan.Runs[0].Trees) != 0 {
		t.Fatal("the single run must use the initial plan")
	}
}

func TestScheduleFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz skipped in -short mode")
	}
	for seed := int64(500); seed < 512; seed++ {
		g, cat, db := wftest.Generate(seed, wftest.Options{MaxCard: 90})
		an, err := workflow.Analyze(g, cat)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := css.Generate(an, css.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		coster := costmodel.NewMemoryCoster(res, an.Cat)
		u, err := selector.NewUniverse(res, coster)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		plan, err := Build(u, 48)
		if err != nil {
			t.Fatalf("seed %d: Build: %v", seed, err)
		}
		eng := engine.New(an, engine.DB(db), nil)
		store, err := Execute(eng, res, plan)
		if err != nil {
			t.Fatalf("seed %d: Execute: %v", seed, err)
		}
		est := estimate.New(res, store)
		for bi, sp := range res.Spaces {
			for _, se := range sp.SEs {
				if _, err := est.CardOf(bi, se); err != nil {
					t.Errorf("seed %d: CardOf(block %d, %v): %v", seed, bi, se, err)
				}
			}
		}
	}
}
