//go:build race

package adaptive

// raceDetector reports whether this test binary was built with -race.
// The splice matrix uses it to drop the sequential legs: adaptive runs
// force sequential block scheduling, so only the intra-block
// worker-parallel paths can race, and those run in the w4 legs.
const raceDetector = true
