// Package adaptive holds the suite-wide contract tests for mid-run
// adaptive re-optimization. They live outside package suite so the full
// 30-workflow × 8-configuration splice matrix gets its own go test
// package budget instead of eating the cross-engine goldens'.
package adaptive

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/essential-stats/etlopt/internal/core"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/faults"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/suite"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// engineConfig is one engine × interpreter × worker-count combination.
type engineConfig struct {
	name    string
	rowMode bool
	stream  bool
	workers int
}

// engineConfigs mirrors the cross-engine golden's matrix: legacy
// row-at-a-time and columnar, batch and streaming, sequential and
// worker-parallel.
var engineConfigs = []engineConfig{
	{"row batch w1", true, false, 1},
	{"row batch w4", true, false, 4},
	{"row stream w1", true, true, 1},
	{"row stream w4", true, true, 4},
	{"vec batch w1", false, false, 1},
	{"vec batch w4", false, false, 4},
	{"vec stream w1", false, true, 1},
	{"vec stream w4", false, true, 4},
}

// forcedSkew provokes a replan at the first block boundary: q=4 against the
// default threshold of 2 trips on any non-vacuous block-0 actual.
var forcedSkew = map[int]float64{0: 4}

// runPlansConfig executes the given per-block trees cold under one engine
// configuration, instrumented the way the adaptive driver instruments its
// segments (any-point observation of the selected statistics).
func runPlansConfig(cfg engineConfig, an *workflow.Analysis, db engine.DB, plans map[int]*workflow.JoinTree, res *css.Result, observe []stats.Stat, inj *faults.Injector) (*engine.Result, error) {
	if cfg.stream {
		e := engine.NewStream(an, db, nil)
		e.RowMode, e.Workers, e.CollectMetrics, e.Faults = cfg.rowMode, cfg.workers, true, inj
		return e.RunPlansObserving(plans, res, observe)
	}
	e := engine.New(an, db, nil)
	e.RowMode, e.Workers, e.CollectMetrics, e.Faults = cfg.rowMode, cfg.workers, true, inj
	return e.RunPlansObserving(plans, res, observe)
}

// TestAdaptiveEquivalenceGolden is the adaptive splice contract over the
// whole suite: for every workflow under every engine configuration, a run
// with a forced mid-run replan (estimate skew on block 0) must be
// externally identical to a cold run of the plans the adaptive run finished
// under. Single-block workflows exercise the inert path (no boundary, no
// replan); multi-block ones replan at the first boundary and splice the
// re-optimized cone through the resume path. The replan count must also
// agree across all configurations — the decision is part of the
// deterministic contract, not an execution-strategy artifact.
func TestAdaptiveEquivalenceGolden(t *testing.T) {
	const scale = 0.001
	replanned := 0
	for _, w := range suite.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			db := w.Data(scale)
			refReplans := -1
			for _, cfg := range engineConfigs {
				if raceDetector && cfg.workers == 1 {
					// Same split as the engine golden: sequential legs run in
					// the unraced job.
					continue
				}
				c := core.DefaultConfig()
				c.RowMode, c.Streaming, c.Workers = cfg.rowMode, cfg.stream, cfg.workers
				cy, err := core.Run(w.Graph, w.Catalog, db, c)
				if err != nil {
					t.Fatalf("%s: Run: %v", cfg.name, err)
				}
				singleBlock := len(cy.Analysis.Blocks) == 1
				ar, err := cy.RunOptimizedAdaptive(core.AdaptiveOptions{Skew: forcedSkew})
				if err != nil {
					t.Fatalf("%s: RunOptimizedAdaptive: %v", cfg.name, err)
				}
				if singleBlock && len(ar.Replans) != 0 {
					t.Errorf("%s: single-block workflow replanned", cfg.name)
				}
				if refReplans == -1 {
					refReplans = len(ar.Replans)
					if refReplans > 0 {
						replanned++
					}
				} else if len(ar.Replans) != refReplans {
					t.Errorf("%s: %d replan(s), other configs had %d", cfg.name, len(ar.Replans), refReplans)
				}
				cold, err := runPlansConfig(cfg, cy.Analysis, db, ar.Plans, cy.CSS, cy.Selection.Observe, nil)
				if err != nil {
					t.Fatalf("%s: cold run: %v", cfg.name, err)
				}
				diffAdaptive(t, cfg.name, cold, ar.Run)
				if singleBlock {
					// No boundary to check: one configuration pins the inert
					// path, the remaining seven add nothing.
					break
				}
			}
		})
	}
	if replanned == 0 {
		t.Error("no suite workflow tripped the forced replan — the skew knob is dead")
	}
}

// TestAdaptiveLateBlockSkew forces the replan deep into the run: the skew
// sits on block 1 of a three-block chain, so block 0's boundary check
// passes (its estimates are exact), the trip happens only after block 1
// commits, and just the final block is re-optimized — with two completed
// blocks spliced through untouched.
func TestAdaptiveLateBlockSkew(t *testing.T) {
	w := suite.MustGet(8)
	db := w.Data(0.001)
	cy, err := core.Run(w.Graph, w.Catalog, db, core.DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n := len(cy.Analysis.Blocks); n != 3 {
		t.Fatalf("wf08 has %d blocks, want 3", n)
	}
	ar, err := cy.RunOptimizedAdaptive(core.AdaptiveOptions{Skew: map[int]float64{1: 4}})
	if err != nil {
		t.Fatalf("RunOptimizedAdaptive: %v", err)
	}
	if len(ar.Replans) != 1 {
		t.Fatalf("replans = %d, want 1", len(ar.Replans))
	}
	rec := ar.Replans[0]
	if rec.AtBlock != 1 || rec.Trigger.Block != 1 {
		t.Fatalf("replan at block %d (trigger block %d), want the block-1 boundary", rec.AtBlock, rec.Trigger.Block)
	}
	if len(rec.Reoptimized) != 1 || rec.Reoptimized[0] != 2 {
		t.Fatalf("reoptimized %v, want only the final block [2]", rec.Reoptimized)
	}
	cold, err := runPlansConfig(engineConfigs[4], cy.Analysis, db, ar.Plans, cy.CSS, cy.Selection.Observe, nil)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	diffAdaptive(t, "late-block skew", cold, ar.Run)
}

// TestAdaptiveReplanUnderFaults crosses the adaptive splice with the fault
// ladder's bottom rung: transient faults retried transparently. The fault
// decisions are a pure function of (seed, kind, site, attempt), so a run
// that replans mid-way and a cold run of its final plans face identical
// faults — their outputs must still match, and the retry accounting must
// show the faults actually fired.
func TestAdaptiveReplanUnderFaults(t *testing.T) {
	const scale = 0.001
	inj := faults.New(1, 1, 1, 0)
	for _, id := range []int{8, 13, 24} { // multi-block workflows
		w := suite.MustGet(id)
		for _, stream := range []bool{false, true} {
			label := fmt.Sprintf("%s stream=%v", w.Name, stream)
			c := core.DefaultConfig()
			c.Streaming = stream
			c.Faults = inj
			cy, err := core.Run(w.Graph, w.Catalog, w.Data(scale), c)
			if err != nil {
				t.Fatalf("%s: Run: %v", label, err)
			}
			ar, err := cy.RunOptimizedAdaptive(core.AdaptiveOptions{Skew: forcedSkew})
			if err != nil {
				t.Fatalf("%s: adaptive run under faults: %v", label, err)
			}
			if len(ar.Replans) == 0 {
				t.Fatalf("%s: forced replan did not fire", label)
			}
			cfg := engineConfig{name: label, rowMode: false, stream: stream, workers: 1}
			cold, err := runPlansConfig(cfg, cy.Analysis, w.Data(scale), ar.Plans, cy.CSS, cy.Selection.Observe, inj)
			if err != nil {
				t.Fatalf("%s: cold run under faults: %v", label, err)
			}
			if cold.Retries == 0 {
				t.Fatalf("%s: injector fired no transient faults — the matrix is vacuous", label)
			}
			diffAdaptive(t, label, cold, ar.Run)
		}
	}
}

// diffAdaptive asserts the spliced adaptive result is externally identical
// to a cold result: sinks, materialized tables, observed statistics and the
// work metric (whose equality proves no completed block re-ran and the cone
// did not double-execute). Per-operator metrics are excluded — the resume
// segments legitimately report zero counts for checkpoint-skipped blocks.
func diffAdaptive(t *testing.T, label string, cold, got *engine.Result) {
	t.Helper()
	if len(cold.Sinks) != len(got.Sinks) {
		t.Errorf("%s: sink count %d vs %d", label, len(got.Sinks), len(cold.Sinks))
	}
	for name, tbl := range cold.Sinks {
		if !sameTable(tbl, got.Sinks[name]) {
			t.Errorf("%s: sink %q differs", label, name)
		}
	}
	if len(cold.Materialized) != len(got.Materialized) {
		t.Errorf("%s: materialized count %d vs %d", label, len(got.Materialized), len(cold.Materialized))
	}
	for name, tbl := range cold.Materialized {
		if !sameTable(tbl, got.Materialized[name]) {
			t.Errorf("%s: materialized %q differs", label, name)
		}
	}
	if got.Rows != cold.Rows {
		t.Errorf("%s: work metric %d, want %d — a block re-ran across the splice", label, got.Rows, cold.Rows)
	}
	diffStores(t, label, cold.Observed, got.Observed)
}

// diffStores compares two observation stores value by value, including
// sketch state at the byte level (register-max and counter-add merges are
// order-independent, so spliced and cold runs must land on identical
// sketches).
func diffStores(t *testing.T, label string, ref, got *stats.Store) {
	t.Helper()
	if (ref == nil) != (got == nil) {
		t.Errorf("%s: one result has no observations", label)
		return
	}
	if ref == nil {
		return
	}
	if got.Len() != ref.Len() {
		t.Errorf("%s: store sizes differ: %d vs %d", label, got.Len(), ref.Len())
	}
	for _, v := range ref.Values() {
		if v.HLL != nil {
			g, err := got.HLLSketch(v.Stat)
			if err != nil {
				t.Errorf("%s: hll %v: %v", label, v.Stat.Key(), err)
				continue
			}
			if g.P != v.HLL.P || !bytes.Equal(g.Regs, v.HLL.Regs) {
				t.Errorf("%s: hll %v registers differ", label, v.Stat.Key())
			}
			continue
		}
		if v.CM != nil {
			g, err := got.CMSketch(v.Stat)
			if err != nil {
				t.Errorf("%s: cm %v: %v", label, v.Stat.Key(), err)
				continue
			}
			if g.Spec != v.CM.Spec || g.Depth != v.CM.Depth || g.Width != v.CM.Width {
				t.Errorf("%s: cm %v layout differs", label, v.Stat.Key())
				continue
			}
			same := len(g.Counters) == len(v.CM.Counters)
			for i := 0; same && i < len(g.Counters); i++ {
				same = g.Counters[i] == v.CM.Counters[i]
			}
			if !same {
				t.Errorf("%s: cm %v counters differ", label, v.Stat.Key())
			}
			continue
		}
		if v.Hist == nil {
			g, err := got.Scalar(v.Stat)
			if err != nil || g != v.Scalar {
				t.Errorf("%s: scalar %v = %d, want %d (%v)", label, v.Stat.Key(), g, v.Scalar, err)
			}
			continue
		}
		h, err := got.Hist(v.Stat)
		if err != nil || h.Buckets() != v.Hist.Buckets() || h.Total() != v.Hist.Total() {
			t.Errorf("%s: hist %v differs", label, v.Stat.Key())
			continue
		}
		same := true
		v.Hist.Each(func(vals []int64, f int64) {
			if h.Freq(vals...) != f {
				same = false
			}
		})
		if !same {
			t.Errorf("%s: hist %v bucket mismatch", label, v.Stat.Key())
		}
	}
}

// sameTable compares two tables as row multisets (row order within a table
// is not part of the contract — the parallel probe cascade interleaves
// partitions).
func sameTable(a, b *data.Table) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	ka, kb := rowKeys(a), rowKeys(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func rowKeys(tbl *data.Table) []string {
	keys := make([]string, len(tbl.Rows))
	for i, r := range tbl.Rows {
		var sb strings.Builder
		for _, v := range r {
			fmt.Fprintf(&sb, "%d,", v)
		}
		keys[i] = sb.String()
	}
	sort.Strings(keys)
	return keys
}
