//go:build !race

package adaptive

// raceDetector is false in ordinary builds; see race_test.go.
const raceDetector = false
