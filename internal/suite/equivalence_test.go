package suite

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/faults"
	"github.com/essential-stats/etlopt/internal/physical"
	"github.com/essential-stats/etlopt/internal/stats"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// engineConfigs enumerates every interpreter the contract covers: legacy
// row-at-a-time and columnar, batch and streaming, sequential and
// worker-parallel. The row batch sequential run is the golden reference.
var engineConfigs = []struct {
	name    string
	rowMode bool
	stream  bool
	workers int
}{
	{"row batch w1", true, false, 1},
	{"row batch w4", true, false, 4},
	{"row stream w1", true, true, 1},
	{"row stream w4", true, true, 4},
	{"vec batch w1", false, false, 1},
	{"vec batch w4", false, false, 4},
	{"vec stream w1", false, true, 1},
	{"vec stream w4", false, true, 4},
}

// runConfig executes one compiled plan under one engine configuration.
func runConfig(cfg struct {
	name    string
	rowMode bool
	stream  bool
	workers int
}, an *workflow.Analysis, db engine.DB, res *css.Result, observe []stats.Stat, metrics bool, inj *faults.Injector) (*engine.Result, error) {
	if cfg.stream {
		e := engine.NewStream(an, db, nil)
		e.RowMode, e.Workers, e.CollectMetrics, e.Faults = cfg.rowMode, cfg.workers, metrics, inj
		return e.RunObserved(res, observe)
	}
	e := engine.New(an, db, nil)
	e.RowMode, e.Workers, e.CollectMetrics, e.Faults = cfg.rowMode, cfg.workers, metrics, inj
	return e.RunObserved(res, observe)
}

// TestEngineEquivalenceGolden is the cross-engine contract check: over
// every suite workflow, the row-at-a-time and columnar interpreters of both
// engines — sequential and worker-parallel — must produce identical sinks,
// materialized tables, observed statistics and work metric from one
// compiled physical plan. The legacy row batch sequential run is the
// golden; any divergence means an interpreter strayed from the shared IR's
// semantics. A second pass repeats the matrix with metrics collection off,
// since the columnar paths skip per-node accounting entirely in that mode.
func TestEngineEquivalenceGolden(t *testing.T) {
	const scale = 0.001
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			an, err := w.Analyze()
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			res, err := css.Generate(an, css.DefaultOptions())
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			observe := res.ObservableStats()
			db := w.Data(scale)

			for _, metrics := range []bool{true, false} {
				ref, err := runConfig(engineConfigs[0], an, db, res, observe, metrics, nil)
				if err != nil {
					t.Fatalf("%s (metrics=%v): %v", engineConfigs[0].name, metrics, err)
				}
				for _, cfg := range engineConfigs[1:] {
					if !metrics && cfg.rowMode {
						// The metrics-off pass targets the columnar
						// interpreters' accounting-free branches; the row
						// interpreters barely branch on the flag and their
						// metrics-on runs already pin them above.
						continue
					}
					if raceDetector && cfg.workers == 1 {
						// Under the race detector only the worker-parallel
						// legs can race; the sequential ones run in the
						// unraced test job and would push this package past
						// its timeout on single-core hosts.
						continue
					}
					got, err := runConfig(cfg, an, db, res, observe, metrics, nil)
					if err != nil {
						t.Fatalf("%s (metrics=%v): %v", cfg.name, metrics, err)
					}
					diffResults(t, fmt.Sprintf("%s (metrics=%v)", cfg.name, metrics), ref, got)
				}
			}
		})
	}
}

// diffResults asserts two engine results are externally identical. Row
// order within a table is not part of the contract (the parallel probe
// cascade interleaves partitions), so tables compare as multisets.
func diffResults(t *testing.T, label string, ref, got *engine.Result) {
	t.Helper()
	if len(ref.Sinks) != len(got.Sinks) {
		t.Errorf("%s: sink count %d vs %d", label, len(got.Sinks), len(ref.Sinks))
	}
	for name, tbl := range ref.Sinks {
		if !sameTable(tbl, got.Sinks[name]) {
			t.Errorf("%s: sink %q differs", label, name)
		}
	}
	if len(ref.Materialized) != len(got.Materialized) {
		t.Errorf("%s: materialized count %d vs %d", label, len(got.Materialized), len(ref.Materialized))
	}
	for name, tbl := range ref.Materialized {
		if !sameTable(tbl, got.Materialized[name]) {
			t.Errorf("%s: materialized %q differs", label, name)
		}
	}
	if got.Rows != ref.Rows {
		t.Errorf("%s: work metric %d, want %d", label, got.Rows, ref.Rows)
	}
	diffStores(t, label, ref.Observed, got.Observed)
	diffMetrics(t, label, ref.Metrics, got.Metrics)
}

// diffMetrics compares the deterministic projection of two metrics
// snapshots: node identity and row counts must be bit-identical across
// engines and worker counts (timings and call counts are
// execution-strategy-dependent and excluded from the contract).
func diffMetrics(t *testing.T, label string, ref, got *physical.RunMetrics) {
	t.Helper()
	if (ref == nil) != (got == nil) {
		t.Errorf("%s: one result has no metrics", label)
		return
	}
	if ref == nil {
		return
	}
	if len(got.Nodes) != len(ref.Nodes) {
		t.Errorf("%s: metrics node count %d, want %d", label, len(got.Nodes), len(ref.Nodes))
		return
	}
	for i, rn := range ref.Nodes {
		gn := got.Nodes[i]
		if gn.Block != rn.Block || gn.Node != rn.Node || gn.Op != rn.Op || gn.Label != rn.Label {
			t.Errorf("%s: metrics node %d identity %v/%v %q, want %v/%v %q",
				label, i, gn.Block, gn.Node, gn.Op, rn.Block, rn.Node, rn.Op)
			continue
		}
		if gn.RowsIn != rn.RowsIn || gn.RowsOut != rn.RowsOut {
			t.Errorf("%s: metrics node %d (%s %q) rows %d→%d, want %d→%d",
				label, i, gn.Op, gn.Label, gn.RowsIn, gn.RowsOut, rn.RowsIn, rn.RowsOut)
		}
	}
}

// diffStores compares two observation stores value by value.
func diffStores(t *testing.T, label string, ref, got *stats.Store) {
	t.Helper()
	if (ref == nil) != (got == nil) {
		t.Errorf("%s: one result has no observations", label)
		return
	}
	if ref == nil {
		return
	}
	if got.Len() != ref.Len() {
		t.Errorf("%s: store sizes differ: %d vs %d", label, got.Len(), ref.Len())
	}
	for _, v := range ref.Values() {
		// Sketch shapes are part of the merge contract at the byte level:
		// register-max and counter-add merges are order-independent, so any
		// engine at any worker count must land on identical state.
		if v.HLL != nil {
			g, err := got.HLLSketch(v.Stat)
			if err != nil {
				t.Errorf("%s: hll %v: %v", label, v.Stat.Key(), err)
				continue
			}
			if g.P != v.HLL.P || !bytes.Equal(g.Regs, v.HLL.Regs) {
				t.Errorf("%s: hll %v registers differ", label, v.Stat.Key())
			}
			continue
		}
		if v.CM != nil {
			g, err := got.CMSketch(v.Stat)
			if err != nil {
				t.Errorf("%s: cm %v: %v", label, v.Stat.Key(), err)
				continue
			}
			if g.Spec != v.CM.Spec || g.Depth != v.CM.Depth || g.Width != v.CM.Width {
				t.Errorf("%s: cm %v layout differs", label, v.Stat.Key())
				continue
			}
			same := len(g.Counters) == len(v.CM.Counters)
			for i := 0; same && i < len(g.Counters); i++ {
				same = g.Counters[i] == v.CM.Counters[i]
			}
			if !same {
				t.Errorf("%s: cm %v counters differ", label, v.Stat.Key())
			}
			continue
		}
		if v.Hist == nil {
			g, err := got.Scalar(v.Stat)
			if err != nil || g != v.Scalar {
				t.Errorf("%s: scalar %v = %d, want %d (%v)", label, v.Stat.Key(), g, v.Scalar, err)
			}
			continue
		}
		h, err := got.Hist(v.Stat)
		if err != nil || h.Buckets() != v.Hist.Buckets() || h.Total() != v.Hist.Total() {
			t.Errorf("%s: hist %v differs", label, v.Stat.Key())
			continue
		}
		same := true
		v.Hist.Each(func(vals []int64, f int64) {
			if h.Freq(vals...) != f {
				same = false
			}
		})
		if !same {
			t.Errorf("%s: hist %v bucket mismatch", label, v.Stat.Key())
		}
	}
}

// sameTable compares two tables as row multisets.
func sameTable(a, b *data.Table) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	ka, kb := rowKeys(a), rowKeys(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func rowKeys(tbl *data.Table) []string {
	keys := make([]string, len(tbl.Rows))
	for i, r := range tbl.Rows {
		var sb strings.Builder
		for _, v := range r {
			fmt.Fprintf(&sb, "%d,", v)
		}
		keys[i] = sb.String()
	}
	sort.Strings(keys)
	return keys
}

// TestMaxRowsGuard pins the intermediate-cardinality guard on the suite's
// known blowup case: wf24's Zipf-skewed join keys collide on hot values, so
// at larger scales its chain joins multiply far beyond the independence
// estimate. Both engines must abort promptly with the guard's error instead
// of materializing the blowup.
func TestMaxRowsGuard(t *testing.T) {
	w := MustGet(24)
	an, err := w.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	db := w.Data(0.01)
	const limit = 500_000
	for _, tc := range []struct {
		label string
		run   func() (*engine.Result, error)
	}{
		{"batch w1", func() (*engine.Result, error) {
			e := engine.New(an, db, nil)
			e.MaxRows = limit
			return e.Run()
		}},
		{"batch w4", func() (*engine.Result, error) {
			e := engine.New(an, db, nil)
			e.Workers, e.MaxRows = 4, limit
			return e.Run()
		}},
		{"stream w1", func() (*engine.Result, error) {
			e := engine.NewStream(an, db, nil)
			e.MaxRows = limit
			return e.Run()
		}},
		{"stream w4", func() (*engine.Result, error) {
			e := engine.NewStream(an, db, nil)
			e.Workers, e.MaxRows = 4, limit
			return e.Run()
		}},
	} {
		_, err := tc.run()
		if err == nil {
			t.Errorf("%s: want a guard error, got success", tc.label)
			continue
		}
		if !strings.Contains(err.Error(), "intermediate-cardinality guard") {
			t.Errorf("%s: error %q does not mention the guard", tc.label, err)
		}
	}
	// The guard must not trip where the budget is ample: the same workflow
	// at the suite's default scale stays far below the limit.
	small := w.Data(0.002)
	e := engine.New(an, small, nil)
	e.MaxRows = 100_000_000
	if _, err := e.Run(); err != nil {
		t.Errorf("ample budget: %v", err)
	}
}
