// Package suite defines the 30-workflow benchmark used by the paper's
// evaluation (Section 7): a representative set of ETL workflows motivated
// by a draft of the TPC-DI benchmark, ranging from simple linear flows with
// a single execution plan to complex workflows with 8-way joins, multiple
// transformations, reject links and aggregation boundaries. Workflows are
// fully deterministic (construction and synthetic data), so every
// experiment in the repository reproduces bit-identical results.
//
// Several workflows mirror anecdotes from the paper:
//
//	wf03 — union–division reduces the memory optimum dramatically
//	       (the paper reports 1,811,197 → 29,922 units);
//	wf16 — the optimum costs on the order of 70,000 units;
//	wf21 — the most complex flow: an 8-input join with transformations
//	       (trivial-CSS lower bound 41 executions);
//	wf23 — union–division CSSs exist but lose and are not chosen
//	       (the paper reports 3,444 vs 6,951 units);
//	wf30 — a 6-input join (trivial-CSS lower bound 14 executions).
package suite

import (
	"fmt"
	"math/rand"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/engine"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Workflow is one suite entry: the graph, its catalog, and the data
// generation specs for its source relations.
type Workflow struct {
	// ID is the 1-based workflow number (matches figure x-axes).
	ID int
	// Name is "wf01".."wf30".
	Name string
	// Note describes the workflow's shape and which paper anecdote it
	// mirrors, if any.
	Note string
	// Graph is the workflow DAG.
	Graph *workflow.Graph
	// Catalog carries relation cardinalities and attribute domains.
	Catalog *workflow.Catalog
	// Specs generate the source relations.
	Specs []data.TableSpec
	// Seed drives the data generation.
	Seed int64
}

// Analyze runs block analysis on the workflow.
func (w *Workflow) Analyze() (*workflow.Analysis, error) {
	return workflow.Analyze(w.Graph, w.Catalog)
}

// Data materializes the workflow's source relations at the given scale
// (1.0 = the catalog cardinalities; smaller scales shrink cardinalities
// proportionally with a floor of 32 rows, for quick executions).
func (w *Workflow) Data(scale float64) engine.DB {
	db := engine.DB{}
	for i, spec := range w.Specs {
		s := spec
		if scale != 1.0 {
			s.Card = int64(float64(s.Card) * scale)
			if s.Card < 32 {
				s.Card = 32
			}
		}
		db[s.Rel] = data.Generate(s, w.Seed+int64(i)*101)
	}
	return db
}

// All returns the 30 workflows in order.
func All() []*Workflow {
	out := make([]*Workflow, 0, 30)
	for id := 1; id <= 30; id++ {
		out = append(out, MustGet(id))
	}
	return out
}

// MinID and MaxID bound the valid workflow ids.
const (
	MinID = 1
	MaxID = 30
)

// UnknownWorkflowError reports a workflow id outside the suite.
type UnknownWorkflowError struct {
	// ID is the requested id.
	ID int
}

func (e *UnknownWorkflowError) Error() string {
	return fmt.Sprintf("suite: no workflow %d (valid ids %d..%d)", e.ID, MinID, MaxID)
}

// Get builds workflow id (1..30); an id outside the suite returns an
// *UnknownWorkflowError.
func Get(id int) (*Workflow, error) {
	b, ok := builders[id-1]
	if !ok {
		return nil, &UnknownWorkflowError{ID: id}
	}
	w := b(id)
	w.ID = id
	w.Name = fmt.Sprintf("wf%02d", id)
	w.Seed = int64(id) * 7919
	return w, nil
}

// MustGet is Get for callers with statically valid ids (tests, benchmarks,
// the experiment loops); it panics on an unknown id.
func MustGet(id int) *Workflow {
	w, err := Get(id)
	if err != nil {
		panic(err)
	}
	return w
}

var builders = map[int]func(id int) *Workflow{}

func register(id int, f func(id int) *Workflow) bool {
	builders[id-1] = f
	return true
}

// sizer draws cardinalities and domain sizes in the paper's ranges
// (cardinalities 3,342–417,874; unique values 102–417,874), deterministic
// per workflow.
type sizer struct{ rng *rand.Rand }

func newSizer(id int) *sizer { return &sizer{rng: rand.New(rand.NewSource(int64(id) * 104729))} }

// card draws a relation cardinality, skewed toward the lower end like the
// paper's median (52,234 vs mean 104,466).
func (s *sizer) card() int64 {
	base := 3342 + s.rng.Int63n(50000)
	if s.rng.Intn(3) == 0 { // occasionally large
		base += s.rng.Int63n(360000)
	}
	return base
}

// dom draws an attribute domain in [102, hi].
func (s *sizer) dom(hi int64) int64 {
	if hi <= 102 {
		return 102
	}
	return 102 + s.rng.Int63n(hi-102)
}

// wfBuilder accumulates relations, a graph and data specs.
type wfBuilder struct {
	id    int
	sz    *sizer
	b     *workflow.Builder
	cat   *workflow.Catalog
	specs []data.TableSpec
	// last holds the most recently produced dataflow node.
	last workflow.NodeID
}

func newWF(id int, name string) *wfBuilder {
	return &wfBuilder{
		id:  id,
		sz:  newSizer(id),
		b:   workflow.NewBuilder(name),
		cat: &workflow.Catalog{},
	}
}

// relation registers a relation with the given join-key columns (name →
// domain) plus a serial id column and one payload column, and returns its
// source node.
func (w *wfBuilder) relation(name string, card int64, keys map[string]int64) workflow.NodeID {
	spec := data.TableSpec{Rel: name, Card: card}
	rel := &workflow.Relation{Name: name, Card: card}
	spec.Columns = append(spec.Columns, data.ColumnSpec{Name: "id", Serial: true})
	rel.Columns = append(rel.Columns, workflow.Column{Name: "id", Domain: card})
	// Deterministic key order.
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, k := range names {
		d := keys[k]
		// Join keys get mild skew: heavy skew on both sides of an
		// equi-join multiplies cardinalities at every join and the chain
		// blows up.
		spec.Columns = append(spec.Columns, data.ColumnSpec{Name: k, Domain: d, Skew: 1.05 + float64(w.sz.rng.Intn(4))/20})
		rel.Columns = append(rel.Columns, workflow.Column{Name: k, Domain: d})
	}
	// The payload column carries the paper's "high skew": its unique-value
	// counts fall far below the cardinalities, like the Section 7 table.
	payloadDom := w.sz.dom(1000)
	spec.Columns = append(spec.Columns, data.ColumnSpec{Name: "val", Domain: payloadDom, Skew: 1.9})
	rel.Columns = append(rel.Columns, workflow.Column{Name: "val", Domain: payloadDom})
	w.cat.Relations = append(w.cat.Relations, rel)
	w.specs = append(w.specs, spec)
	return w.b.Source(name)
}

func (w *wfBuilder) attr(rel, col string) workflow.Attr { return workflow.Attr{Rel: rel, Col: col} }

// lookupRelation registers a dimension for a foreign-key look-up join: its
// key column enumerates the domain exactly once (serial 1..domain), so
// every fact row matches exactly one dimension row and the FK metadata rule
// holds on the generated data too.
func (w *wfBuilder) lookupRelation(name string, domain int64, key string) workflow.NodeID {
	spec := data.TableSpec{Rel: name, Card: domain}
	rel := &workflow.Relation{Name: name, Card: domain}
	spec.Columns = append(spec.Columns, data.ColumnSpec{Name: key, Serial: true})
	rel.Columns = append(rel.Columns, workflow.Column{Name: key, Domain: domain})
	payloadDom := w.sz.dom(1000)
	spec.Columns = append(spec.Columns, data.ColumnSpec{Name: "val", Domain: payloadDom})
	rel.Columns = append(rel.Columns, workflow.Column{Name: "val", Domain: payloadDom})
	w.cat.Relations = append(w.cat.Relations, rel)
	w.specs = append(w.specs, spec)
	return w.b.Source(name)
}

// done wires the last node to a sink and packages the workflow.
func (w *wfBuilder) done(note string) *Workflow {
	w.b.Sink(w.last, "warehouse")
	return &Workflow{Note: note, Graph: w.b.Graph(), Catalog: w.cat, Specs: w.specs}
}
