package suite

import (
	"errors"
	"strings"
	"testing"

	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/selector"
	"github.com/essential-stats/etlopt/internal/workflow"
)

func TestAllWorkflowsAnalyze(t *testing.T) {
	wfs := All()
	if len(wfs) != 30 {
		t.Fatalf("suite has %d workflows, want 30", len(wfs))
	}
	for _, w := range wfs {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if err := w.Graph.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			an, err := w.Analyze()
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if len(an.Blocks) == 0 {
				t.Fatal("no blocks")
			}
		})
	}
}

func TestAllWorkflowsGenerateAndSelect(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			an, err := w.Analyze()
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			for _, opt := range []css.Options{{}, css.DefaultOptions()} {
				res, err := css.Generate(an, opt)
				if err != nil {
					t.Fatalf("Generate(%+v): %v", opt, err)
				}
				if res.NumSEs() == 0 {
					t.Fatal("no SEs")
				}
				coster := costmodel.NewMemoryCoster(res, an.Cat)
				sel, err := selector.Select(res, coster, selector.Options{Method: selector.MethodGreedy})
				if err != nil {
					t.Fatalf("Select(greedy, %+v): %v", opt, err)
				}
				if len(sel.Observe) == 0 {
					t.Fatal("empty selection")
				}
			}
		})
	}
}

func TestWorkflowDeterminism(t *testing.T) {
	a := MustGet(21)
	b := MustGet(21)
	if len(a.Graph.Nodes) != len(b.Graph.Nodes) {
		t.Fatal("nondeterministic graph construction")
	}
	da := a.Data(0.01)
	db := b.Data(0.01)
	for rel, ta := range da {
		tb := db[rel]
		if tb == nil || ta.Card() != tb.Card() {
			t.Fatalf("nondeterministic data for %s", rel)
		}
		for i := range ta.Rows {
			for j := range ta.Rows[i] {
				if ta.Rows[i][j] != tb.Rows[i][j] {
					t.Fatalf("row mismatch in %s", rel)
				}
			}
		}
	}
}

func TestAnecdoteShapes(t *testing.T) {
	// wf21 is the widest join in the suite (8 inputs in one block).
	an21, err := MustGet(21).Analyze()
	if err != nil {
		t.Fatalf("Analyze(21): %v", err)
	}
	max21 := 0
	for _, b := range an21.Blocks {
		if b.NumInputs() > max21 {
			max21 = b.NumInputs()
		}
	}
	if max21 != 8 {
		t.Fatalf("wf21 widest block = %d inputs, want 8", max21)
	}
	// wf30 has a 6-input block.
	an30, err := MustGet(30).Analyze()
	if err != nil {
		t.Fatalf("Analyze(30): %v", err)
	}
	max30 := 0
	for _, b := range an30.Blocks {
		if b.NumInputs() > max30 {
			max30 = b.NumInputs()
		}
	}
	if max30 != 6 {
		t.Fatalf("wf30 widest block = %d inputs, want 6", max30)
	}
	// wf08 (Figure 3) has three blocks.
	an8, err := MustGet(8).Analyze()
	if err != nil {
		t.Fatalf("Analyze(8): %v", err)
	}
	if len(an8.Blocks) != 3 {
		t.Fatalf("wf08 has %d blocks, want 3", len(an8.Blocks))
	}
	// wf01 and wf02 are linear: exactly one plan each.
	for _, id := range []int{1, 2} {
		an, err := MustGet(id).Analyze()
		if err != nil {
			t.Fatalf("Analyze(%d): %v", id, err)
		}
		for _, b := range an.Blocks {
			if len(b.Joins) != 0 {
				t.Errorf("wf%02d should be join-free", id)
			}
		}
	}
}

func TestGetOutOfRange(t *testing.T) {
	for _, id := range []int{0, -1, 31, 100} {
		w, err := Get(id)
		if w != nil || err == nil {
			t.Fatalf("Get(%d) = %v, %v; want nil, error", id, w, err)
		}
		var ue *UnknownWorkflowError
		if !errors.As(err, &ue) || ue.ID != id {
			t.Fatalf("Get(%d) error = %v; want *UnknownWorkflowError", id, err)
		}
		if !strings.Contains(err.Error(), "1..30") {
			t.Fatalf("Get(%d) error %q does not name the valid range", id, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet(31) should panic")
		}
	}()
	MustGet(31)
}

func TestSuiteJSONRoundTrip(t *testing.T) {
	// Every suite workflow must survive the interchange format and analyze
	// to the same block structure afterwards.
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			doc := &workflow.Document{Workflow: w.Graph, Catalog: w.Catalog}
			raw, err := doc.Marshal()
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			back, err := workflow.Unmarshal(raw)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			an1, err := w.Analyze()
			if err != nil {
				t.Fatalf("Analyze original: %v", err)
			}
			an2, err := workflow.Analyze(back.Workflow, back.Catalog)
			if err != nil {
				t.Fatalf("Analyze round-tripped: %v", err)
			}
			if len(an1.Blocks) != len(an2.Blocks) {
				t.Fatalf("blocks changed: %d vs %d", len(an1.Blocks), len(an2.Blocks))
			}
			for i := range an1.Blocks {
				if len(an1.Blocks[i].Inputs) != len(an2.Blocks[i].Inputs) ||
					len(an1.Blocks[i].Joins) != len(an2.Blocks[i].Joins) {
					t.Fatalf("block %d structure changed", i)
				}
			}
		})
	}
}

// TestSuiteGoldenStructure pins each workflow's analyzed shape: block
// count, widest join, and total join edges. Any unintended change to the
// suite (which every figure depends on) fails here first.
func TestSuiteGoldenStructure(t *testing.T) {
	type shape struct{ blocks, widest, joins int }
	golden := map[int]shape{}
	for _, w := range All() {
		an, err := w.Analyze()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		s := shape{blocks: len(an.Blocks)}
		for _, b := range an.Blocks {
			if b.NumInputs() > s.widest {
				s.widest = b.NumInputs()
			}
			s.joins += len(b.Joins)
		}
		golden[w.ID] = s
	}
	want := map[int]shape{
		1: {1, 1, 0}, 2: {1, 1, 0}, 3: {1, 3, 2}, 4: {1, 4, 3}, 5: {1, 4, 3},
		6: {2, 2, 2}, 7: {2, 2, 2}, 8: {3, 2, 3}, 9: {1, 5, 4}, 10: {1, 5, 4},
		11: {1, 3, 2}, 12: {1, 6, 5}, 13: {2, 2, 2}, 14: {2, 2, 2}, 15: {2, 3, 3},
		16: {1, 6, 5}, 17: {1, 5, 4}, 18: {2, 4, 4}, 19: {1, 6, 5}, 20: {1, 7, 6},
		21: {1, 8, 7}, 22: {1, 5, 4}, 23: {1, 3, 2}, 24: {3, 4, 5}, 25: {2, 4, 5},
		26: {1, 7, 6}, 27: {1, 5, 4}, 28: {1, 6, 5}, 29: {2, 6, 6}, 30: {1, 6, 5},
	}
	for id, g := range golden {
		w, ok := want[id]
		if !ok {
			t.Errorf("wf%02d: no golden shape recorded: %+v", id, g)
			continue
		}
		if g != w {
			t.Errorf("wf%02d: shape %+v, golden %+v", id, g, w)
		}
	}
}
