//go:build !race

package suite

// raceDetector is false in ordinary builds; see race_test.go.
const raceDetector = false
