package suite

import (
	"bytes"
	"testing"

	"github.com/essential-stats/etlopt/internal/core"
	"github.com/essential-stats/etlopt/internal/costmodel"
	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/faults"
	"github.com/essential-stats/etlopt/internal/stats"
)

// sketchObserve returns the sketch-backed variants (HLLDistinct, CMHist) of
// every observable statistic in the result, deduplicated, in universe order.
func sketchObserve(res *css.Result) []stats.Stat {
	seen := make(map[stats.Key]bool)
	var out []stats.Stat
	for _, s := range res.ObservableStats() {
		v, ok := stats.ApproxVariant(s)
		if !ok || !res.StatObservable(v) {
			continue
		}
		if k := v.Key(); !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}

// TestSketchEquivalenceGolden extends the cross-engine contract to the
// approximate tier: observing every sketch-backed variant over every suite
// workflow, all eight engine configurations — row and columnar, batch and
// streaming, sequential and worker-parallel — must merge to byte-identical
// sketch state (HLL registers, count-min counters). Register-max and
// counter-add merges are order-independent, so per-worker shards must not
// introduce any drift at all, not merely bounded drift.
func TestSketchEquivalenceGolden(t *testing.T) {
	const scale = 0.001
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			an, err := w.Analyze()
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			res, err := css.Generate(an, css.DefaultOptions())
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			observe := sketchObserve(res)
			if len(observe) == 0 {
				t.Skip("no sketch-backed statistics in this workflow")
			}
			db := w.Data(scale)

			ref, err := runConfig(engineConfigs[0], an, db, res, observe, false, nil)
			if err != nil {
				t.Fatalf("%s: %v", engineConfigs[0].name, err)
			}
			var sketches int
			for _, v := range ref.Observed.Values() {
				if v.HLL != nil || v.CM != nil {
					sketches++
				}
			}
			if sketches != len(observe) {
				t.Fatalf("golden run observed %d sketches, want %d", sketches, len(observe))
			}

			for _, cfg := range engineConfigs[1:] {
				if raceDetector && cfg.workers == 1 {
					// See TestEngineEquivalenceGolden: sequential legs cannot
					// race and are covered by the unraced CI jobs.
					continue
				}
				got, err := runConfig(cfg, an, db, res, observe, false, nil)
				if err != nil {
					t.Fatalf("%s: %v", cfg.name, err)
				}
				diffResults(t, cfg.name, ref, got)
			}
		})
	}
}

// TestFaultMatrixSketchRung is the fault-matrix leg for the approximate
// tier: under permanent tap faults, some injector seed must complete a suite
// workflow's cycle on the degradation ladder's sketch rung — every failed
// exact statistic recovered through its bounded-memory sibling, no
// pay-as-you-go runs, no blocks abandoned to their initial plans.
func TestFaultMatrixSketchRung(t *testing.T) {
	const scale = 0.002
	for _, wfID := range []int{3, 1, 8} {
		w := MustGet(wfID)
		db := w.Data(scale)
		for seed := uint64(1); seed <= 48; seed++ {
			cfg := core.DefaultConfig()
			cfg.Faults = faults.New(seed, 0.3, 0, faults.Tap)
			cy, err := core.Run(w.Graph, w.Catalog, db, cfg)
			if err != nil {
				t.Fatalf("%s seed %d: Run aborted: %v", w.Name, seed, err)
			}
			deg := cy.Degradation
			if deg == nil || deg.Mode != "sketch" {
				continue
			}
			if deg.SketchRuns != 1 || deg.PaygRuns != 0 {
				t.Fatalf("%s seed %d: sketch mode with %d sketch / %d payg runs",
					w.Name, seed, deg.SketchRuns, deg.PaygRuns)
			}
			store := cy.Observed.Observed
			for _, f := range deg.Failed {
				v, ok := stats.ApproxVariant(f.Stat)
				if !ok || !store.Has(v) {
					t.Fatalf("%s seed %d: failed statistic %v not covered by a sketch",
						w.Name, seed, f.Stat.Key())
				}
			}
			if n := len(deg.FallbackBlocks); n != 0 {
				t.Fatalf("%s seed %d: sketch rung left %d fallback blocks", w.Name, seed, n)
			}
			t.Logf("%s seed %d: sketch rung recovered %d failed statistic(s)",
				w.Name, seed, len(deg.Failed))
			return
		}
	}
	t.Fatal("no (workflow, seed) pair completed via the sketch rung")
}

// TestApproxTierAcceptance pins the tentpole's payoff: switching the cycle
// to -stats-tier=approx must cut both the observation CPU cost (per the
// Section 5.4 model: tuples past the tap × per-kind update weight) and the
// statistics upload payload — the bytes /v1/observe receives — by at least
// 5x in aggregate, while the q-error of the derived cardinalities stays
// within the calibrated threshold of the sketches' analytical accuracy.
//
// The aggregate runs over the suite workflows whose observable statistics
// are (near-)fully sketch-coverable — single-attribute distributions and
// distinct counts. Workflows dominated by joint distributions keep paying
// the exact price in both tiers (a single-attribute sketch cannot replace
// a joint histogram, by design), so they dilute the ratio without testing
// the tier; TestSketchEquivalenceGolden still covers them for correctness.
// Scales are per-workflow: large enough that the exact histograms dwarf
// the sketches' fixed footprint, small enough to keep the run fast.
func TestApproxTierAcceptance(t *testing.T) {
	cases := []struct {
		id    int
		scale float64
	}{{3, 0.02}, {11, 0.2}, {29, 0.1}}
	var exactCPU, approxCPU float64
	var exactBytes, approxBytes int64
	var worstQ, worstExactQ float64
	for _, tc := range cases {
		w := MustGet(tc.id)
		an, err := w.Analyze()
		if err != nil {
			t.Fatalf("%s: Analyze: %v", w.Name, err)
		}
		res, err := css.Generate(an, css.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: Generate: %v", w.Name, err)
		}
		coster := costmodel.NewMemoryCoster(res, an.Cat)
		db := w.Data(tc.scale)

		run := func(tier core.StatsTier) (cpu float64, payload int64, maxQ float64) {
			cfg := core.DefaultConfig()
			cfg.CollectMetrics = true
			cfg.StatsTier = tier
			cy, err := core.Run(w.Graph, w.Catalog, db, cfg)
			if err != nil {
				t.Fatalf("%s (%s): Run: %v", w.Name, tier, err)
			}
			for _, s := range cy.Selection.Observe {
				cpu += coster.CPU(s)
			}
			var buf bytes.Buffer
			if err := cy.SaveStats(&buf); err != nil {
				t.Fatalf("%s (%s): SaveStats: %v", w.Name, tier, err)
			}
			if cy.Feedback != nil {
				maxQ = cy.Feedback.MaxQ
			}
			return cpu, int64(buf.Len()), maxQ
		}

		eCPU, eBytes, eQ := run(core.TierExact)
		aCPU, aBytes, aQ := run(core.TierApprox)
		t.Logf("%s: cpu %.0f→%.0f (%.1fx), payload %d→%d (%.1fx), maxQ %.3f→%.3f",
			w.Name, eCPU, aCPU, eCPU/aCPU, eBytes, aBytes,
			float64(eBytes)/float64(aBytes), eQ, aQ)
		exactCPU += eCPU
		approxCPU += aCPU
		exactBytes += eBytes
		approxBytes += aBytes
		if aQ > worstQ {
			worstQ = aQ
		}
		if eQ > worstExactQ {
			worstExactQ = eQ
		}
	}
	cpuRatio := exactCPU / approxCPU
	byteRatio := float64(exactBytes) / float64(approxBytes)
	t.Logf("suite aggregate: cpu %.1fx, payload %.1fx, worst maxQ exact %.3f approx %.3f",
		cpuRatio, byteRatio, worstExactQ, worstQ)
	if cpuRatio < 5 {
		t.Errorf("approx tier cut observation CPU cost only %.2fx, want >= 5x", cpuRatio)
	}
	if byteRatio < 5 {
		t.Errorf("approx tier cut observe payload bytes only %.2fx, want >= 5x", byteRatio)
	}
	// The calibrated threshold: the sketches guarantee ~95% accuracy
	// (1 − 1.04/√m for HLL, 1 − e/w for count-min), so derived cardinalities
	// may drift a few percent beyond whatever error the exact tier already
	// carries (independence-assumption rules), but not collapse.
	if threshold := 2*worstExactQ + 0.5; worstQ > threshold {
		t.Errorf("approx-tier worst q-error %.3f exceeds calibrated threshold %.3f", worstQ, threshold)
	}
}
