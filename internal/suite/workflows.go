package suite

import (
	"fmt"

	"github.com/essential-stats/etlopt/internal/data"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// --- shape helpers -------------------------------------------------------

// starJoin joins a fact relation with n-1 dimensions, each on its own key.
// It sets w.last to the final join.
func starJoin(w *wfBuilder, n int, domHi int64, fk bool) {
	keys := map[string]int64{}
	doms := make([]int64, n-1)
	for i := 1; i < n; i++ {
		doms[i-1] = w.sz.dom(domHi)
		keys[fmt.Sprintf("k%d", i)] = doms[i-1]
	}
	fact := w.relation("Fact", w.sz.card(), keys)
	cur := fact
	for i := 1; i < n; i++ {
		name := fmt.Sprintf("Dim%d", i)
		var dim workflow.NodeID
		if fk {
			dim = w.lookupRelation(name, doms[i-1], "k")
		} else {
			dim = w.relation(name, w.sz.dom(doms[i-1])+102, map[string]int64{"k": doms[i-1]})
		}
		fa := w.attr("Fact", fmt.Sprintf("k%d", i))
		da := w.attr(name, "k")
		if fk {
			cur = w.b.FKJoin(cur, dim, fa, da)
		} else {
			cur = w.b.Join(cur, dim, fa, da)
		}
	}
	w.last = cur
}

// chainJoin joins R0-R1-...-R(n-1) along a path.
func chainJoin(w *wfBuilder, n int, domHi int64) {
	doms := make([]int64, n)
	for i := range doms {
		doms[i] = w.sz.dom(domHi)
	}
	var cur workflow.NodeID
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("R%d", i)
		keys := map[string]int64{}
		if i > 0 {
			keys[fmt.Sprintf("p%d", i)] = doms[i-1] // joins previous
		}
		if i < n-1 {
			keys[fmt.Sprintf("n%d", i)] = doms[i] // joins next
		}
		src := w.relation(name, w.sz.card(), keys)
		if i == 0 {
			cur = src
			continue
		}
		prev := fmt.Sprintf("R%d", i-1)
		cur = w.b.Join(cur, src, w.attr(prev, fmt.Sprintf("n%d", i-1)), w.attr(name, fmt.Sprintf("p%d", i)))
	}
	w.last = cur
}

// --- the thirty workflows ------------------------------------------------

var _ = register(1, func(id int) *Workflow {
	w := newWF(id, "wf01-linear-filter")
	src := w.relation("Trade", w.sz.card(), map[string]int64{"sym": w.sz.dom(5000)})
	w.last = w.b.Select(src, workflow.Predicate{Attr: w.attr("Trade", "sym"), Op: workflow.CmpLe, Const: 1000})
	return w.done("linear single-relation filter; exactly one plan")
})

var _ = register(2, func(id int) *Workflow {
	w := newWF(id, "wf02-linear-cleanse")
	src := w.relation("CustomerRaw", w.sz.card(), map[string]int64{"region": w.sz.dom(500)})
	f := w.b.Select(src, workflow.Predicate{Attr: w.attr("CustomerRaw", "region"), Op: workflow.CmpGt, Const: 10})
	x := w.b.Transform(f, "scramble", w.attr("X", "clean"), w.attr("CustomerRaw", "val"))
	w.last = w.b.Project(x, w.attr("CustomerRaw", "id"), w.attr("X", "clean"))
	return w.done("linear cleanse chain: select, UDF, project; one plan")
})

var _ = register(3, func(id int) *Workflow {
	// Union–division showcase: T1 joins T3 on a tiny key and T2 on a huge
	// key. The initial plan is (T1⋈T3)⋈T2, so |T1⋈T2| is unobservable;
	// without union–division it needs the huge-key histograms, with it a
	// tiny histogram pair plus a reject counter suffices.
	w := newWF(id, "wf03-union-division-win")
	t1 := w.relation("T1", 180000, map[string]int64{"j13": 150, "j12": 400000})
	t3 := w.relation("T3", 4000, map[string]int64{"j13": 150})
	t2 := w.relation("T2", 90000, map[string]int64{"j12": 400000})
	j1 := w.b.Join(t1, t3, w.attr("T1", "j13"), w.attr("T3", "j13"))
	w.last = w.b.Join(j1, t2, w.attr("T1", "j12"), w.attr("T2", "j12"))
	return w.done("3-way join with a huge join-key domain; union–division slashes the memory optimum (paper: 1,811,197 → 29,922)")
})

var _ = register(4, func(id int) *Workflow {
	w := newWF(id, "wf04-star-lookups")
	starJoin(w, 4, 4000, true)
	return w.done("4-way star of foreign-key look-ups")
})

var _ = register(5, func(id int) *Workflow {
	w := newWF(id, "wf05-chain4")
	chainJoin(w, 4, 800)
	return w.done("4-way chain join")
})

var _ = register(6, func(id int) *Workflow {
	w := newWF(id, "wf06-aggregate-boundary")
	t1 := w.relation("Orders", w.sz.card(), map[string]int64{"pid": w.sz.dom(2000), "cid": w.sz.dom(1500)})
	t2 := w.relation("Product", w.sz.dom(3000)+102, map[string]int64{"pid": w.sz.dom(2000)})
	t3 := w.relation("Customer", w.sz.dom(2500)+102, map[string]int64{"cid": w.sz.dom(1500)})
	// Product/Orders domains must match for the join: reuse catalog values.
	pidDom := w.cat.Relation("Orders").Column("pid").Domain
	cidDom := w.cat.Relation("Orders").Column("cid").Domain
	w.cat.Relation("Product").Column("pid").Domain = pidDom
	w.specs[1].Columns[1].Domain = pidDom
	w.cat.Relation("Customer").Column("cid").Domain = cidDom
	w.specs[2].Columns[1].Domain = cidDom
	j1 := w.b.Join(t1, t2, w.attr("Orders", "pid"), w.attr("Product", "pid"))
	g := w.b.GroupBy(j1, w.attr("Orders", "cid"))
	w.last = w.b.Join(g, t3, w.attr("Orders", "cid"), w.attr("Customer", "cid"))
	return w.done("group-by boundary between two joins: two optimizable blocks, G1/G2 rules apply")
})

var _ = register(7, func(id int) *Workflow {
	w := newWF(id, "wf07-reject-link")
	dom := w.sz.dom(2000)
	d2 := w.sz.dom(1200)
	t1 := w.relation("Feed", w.sz.card(), map[string]int64{"k": dom, "m": d2})
	t2 := w.relation("Ref", w.sz.dom(4000)+102, map[string]int64{"k": dom})
	t3 := w.relation("Hist", w.sz.card(), map[string]int64{"m": d2})
	j1 := w.b.RejectJoin(t1, t2, w.attr("Feed", "k"), w.attr("Ref", "k"))
	w.last = w.b.Join(j1, t3, w.attr("Feed", "m"), w.attr("Hist", "m"))
	return w.done("materialized reject link pins the first join; two blocks")
})

var _ = register(8, func(id int) *Workflow {
	// Figure 3 of the paper: reject join, then a join, then a UDF deriving
	// a downstream join attribute: three optimizable blocks.
	w := newWF(id, "wf08-figure3")
	aDom := w.sz.dom(1500)
	bDom := w.sz.dom(1200)
	cDom := w.sz.dom(900)
	t1 := w.relation("T1", w.sz.card(), map[string]int64{"a": aDom, "b": bDom})
	t2 := w.relation("T2", w.sz.dom(5000)+102, map[string]int64{"a": aDom})
	t3 := w.relation("T3", w.sz.dom(4000)+102, map[string]int64{"b": bDom})
	t4 := w.relation("T4", w.sz.dom(3000)+102, map[string]int64{"c": cDom})
	j1 := w.b.RejectJoin(t1, t2, w.attr("T1", "a"), w.attr("T2", "a"))
	j2 := w.b.Join(j1, t3, w.attr("T1", "b"), w.attr("T3", "b"))
	x := w.b.Transform(j2, "bucket10", w.attr("U", "c"), w.attr("T1", "val"), w.attr("T2", "val"))
	w.cat.AddDerived(w.attr("U", "c"), cDom)
	w.last = w.b.Join(x, t4, w.attr("U", "c"), w.attr("T4", "c"))
	return w.done("the paper's Figure 3: reject link + pinned UDF ⇒ three blocks")
})

var _ = register(9, func(id int) *Workflow {
	w := newWF(id, "wf09-star5-filtered")
	starJoin(w, 5, 120, false)
	// Filter two dimensions (selects push down to their inputs).
	g := w.b.Graph()
	d1 := w.cat.Relation("Dim1")
	_ = d1
	f1 := w.b.Select(w.last, workflow.Predicate{Attr: w.attr("Dim1", "val"), Op: workflow.CmpGt, Const: 50})
	f2 := w.b.Select(f1, workflow.Predicate{Attr: w.attr("Dim2", "val"), Op: workflow.CmpLe, Const: 800})
	w.last = f2
	_ = g
	return w.done("5-way star with selections pushed onto two dimensions")
})

var _ = register(10, func(id int) *Workflow {
	w := newWF(id, "wf10-chain5-transforms")
	chainJoin(w, 5, 600)
	x := w.b.Transform(w.last, "sum", w.attr("U", "total"), w.attr("R0", "val"), w.attr("R4", "val"))
	w.last = x
	return w.done("5-way chain with a floating (non-pinned) transform on top")
})

var _ = register(11, func(id int) *Workflow {
	// Figure 7's amortization: T1 joins T2 and T3 on the SAME attribute, so
	// H^a_{T1} is shared between the two join estimates.
	w := newWF(id, "wf11-shared-key")
	dom := w.sz.dom(3000)
	t1 := w.relation("Hub", w.sz.card(), map[string]int64{"a": dom})
	t2 := w.relation("SatA", w.sz.dom(6000)+102, map[string]int64{"a": dom})
	t3 := w.relation("SatB", w.sz.dom(6000)+102, map[string]int64{"a": dom})
	j1 := w.b.Join(t1, t2, w.attr("Hub", "a"), w.attr("SatA", "a"))
	w.last = w.b.Join(j1, t3, w.attr("Hub", "a"), w.attr("SatB", "a"))
	return w.done("shared join attribute: the Figure 7 cost-amortization case")
})

var _ = register(12, func(id int) *Workflow {
	w := newWF(id, "wf12-snowflake6")
	starJoin(w, 4, 400, false)
	// Hang a chain off Dim1 and Dim2 (snowflake arms).
	arm1Dom := w.sz.dom(1000)
	arm2Dom := w.sz.dom(800)
	w.cat.Relation("Dim1").Columns = append(w.cat.Relation("Dim1").Columns, workflow.Column{Name: "sub", Domain: arm1Dom})
	w.specs[1].Columns = append(w.specs[1].Columns, colSpec("sub", arm1Dom))
	w.cat.Relation("Dim2").Columns = append(w.cat.Relation("Dim2").Columns, workflow.Column{Name: "sub", Domain: arm2Dom})
	w.specs[2].Columns = append(w.specs[2].Columns, colSpec("sub", arm2Dom))
	a1 := w.relation("Arm1", w.sz.dom(3000)+102, map[string]int64{"sub": arm1Dom})
	a2 := w.relation("Arm2", w.sz.dom(3000)+102, map[string]int64{"sub": arm2Dom})
	j1 := w.b.Join(w.last, a1, w.attr("Dim1", "sub"), w.attr("Arm1", "sub"))
	w.last = w.b.Join(j1, a2, w.attr("Dim2", "sub"), w.attr("Arm2", "sub"))
	return w.done("6-way snowflake: star with two chained arms")
})

var _ = register(13, func(id int) *Workflow {
	// Two independent pipelines feeding two sinks: two disjoint blocks.
	w := newWF(id, "wf13-two-pipelines")
	aDom := w.sz.dom(1500)
	t1 := w.relation("A1", w.sz.card(), map[string]int64{"k": aDom})
	t2 := w.relation("A2", w.sz.dom(5000)+102, map[string]int64{"k": aDom})
	j1 := w.b.Join(t1, t2, w.attr("A1", "k"), w.attr("A2", "k"))
	w.b.Sink(j1, "mart_a")
	bDom := w.sz.dom(900)
	t3 := w.relation("B1", w.sz.card(), map[string]int64{"k": bDom})
	t4 := w.relation("B2", w.sz.dom(4000)+102, map[string]int64{"k": bDom})
	j2 := w.b.Join(t3, t4, w.attr("B1", "k"), w.attr("B2", "k"))
	w.last = j2
	return w.done("two independent pipelines, two sinks, two blocks")
})

var _ = register(14, func(id int) *Workflow {
	w := newWF(id, "wf14-aggudf")
	dom := w.sz.dom(1800)
	cDom := w.sz.dom(600)
	t1 := w.relation("Clicks", w.sz.card(), map[string]int64{"uid": dom})
	t2 := w.relation("Users", w.sz.dom(6000)+102, map[string]int64{"uid": dom, "grp": cDom})
	t3 := w.relation("Groups", w.sz.dom(2000)+102, map[string]int64{"grp": cDom})
	j1 := w.b.Join(t1, t2, w.attr("Clicks", "uid"), w.attr("Users", "uid"))
	agg := w.b.AggregateUDF(j1, "sum", w.attr("U", "score"), w.attr("Users", "grp"))
	w.last = w.b.Join(agg, t3, w.attr("Users", "grp"), w.attr("Groups", "grp"))
	return w.done("opaque aggregate UDF boundary between joins")
})

var _ = register(15, func(id int) *Workflow {
	w := newWF(id, "wf15-materialized-staging")
	chainJoin(w, 3, 900)
	m := w.b.Materialize(w.last, "staging")
	extraDom := w.sz.dom(1400)
	w.cat.Relation("R2").Columns = append(w.cat.Relation("R2").Columns, workflow.Column{Name: "x", Domain: extraDom})
	w.specs[2].Columns = append(w.specs[2].Columns, colSpec("x", extraDom))
	t4 := w.relation("R3", w.sz.card(), map[string]int64{"x": extraDom})
	w.last = w.b.Join(m, t4, w.attr("R2", "x"), w.attr("R3", "x"))
	return w.done("explicitly materialized staging table splits the flow")
})

var _ = register(16, func(id int) *Workflow {
	// Tuned so the memory optimum lands near the paper's ~70,000 units for
	// workflow 16: a 6-relation chain whose interior joint histograms cost
	// a few tens of thousands of units each.
	w := newWF(id, "wf16-seventy-thousand")
	chainJoin(w, 6, 171)
	return w.done("6-way chain tuned so the optimum is on the order of 70,000 units (paper's wf16)")
})

var _ = register(17, func(id int) *Workflow {
	w := newWF(id, "wf17-chain5-selective")
	chainJoin(w, 5, 500)
	f := w.b.Select(w.last, workflow.Predicate{Attr: w.attr("R0", "val"), Op: workflow.CmpLt, Const: 200})
	f2 := w.b.Select(f, workflow.Predicate{Attr: w.attr("R3", "val"), Op: workflow.CmpGe, Const: 100})
	w.last = f2
	return w.done("5-way chain with selections over two relations")
})

var _ = register(18, func(id int) *Workflow {
	w := newWF(id, "wf18-reject-then-star")
	kDom := w.sz.dom(1200)
	t1 := w.relation("Load", w.sz.card(), map[string]int64{"k": kDom})
	t2 := w.relation("Valid", w.sz.dom(4000)+102, map[string]int64{"k": kDom})
	j1 := w.b.RejectJoin(t1, t2, w.attr("Load", "k"), w.attr("Valid", "k"))
	// Downstream: a 4-way star block over the validated output.
	d1 := w.sz.dom(900)
	d2 := w.sz.dom(700)
	d3 := w.sz.dom(500)
	w.cat.Relation("Load").Columns = append(w.cat.Relation("Load").Columns,
		workflow.Column{Name: "a", Domain: d1}, workflow.Column{Name: "b", Domain: d2}, workflow.Column{Name: "c", Domain: d3})
	w.specs[0].Columns = append(w.specs[0].Columns, colSpec("a", d1), colSpec("b", d2), colSpec("c", d3))
	da := w.relation("DA", w.sz.dom(2000)+102, map[string]int64{"a": d1})
	db := w.relation("DB", w.sz.dom(2000)+102, map[string]int64{"b": d2})
	dc := w.relation("DC", w.sz.dom(2000)+102, map[string]int64{"c": d3})
	j2 := w.b.Join(j1, da, w.attr("Load", "a"), w.attr("DA", "a"))
	j3 := w.b.Join(j2, db, w.attr("Load", "b"), w.attr("DB", "b"))
	w.last = w.b.Join(j3, dc, w.attr("Load", "c"), w.attr("DC", "c"))
	return w.done("validation reject link followed by a 4-way star block")
})

var _ = register(19, func(id int) *Workflow {
	w := newWF(id, "wf19-star6-fk")
	starJoin(w, 6, 3500, true)
	return w.done("6-way star of foreign-key look-ups; the FK metadata rule prunes statistics")
})

var _ = register(20, func(id int) *Workflow {
	w := newWF(id, "wf20-wide7")
	starJoin(w, 5, 120, false)
	// Extend with a chain of two more relations off Dim3.
	subDom := w.sz.dom(1100)
	w.cat.Relation("Dim3").Columns = append(w.cat.Relation("Dim3").Columns, workflow.Column{Name: "sub", Domain: subDom})
	w.specs[3].Columns = append(w.specs[3].Columns, colSpec("sub", subDom))
	e1 := w.relation("Ext1", w.sz.dom(2500)+102, map[string]int64{"sub": subDom, "leaf": w.sz.dom(700)})
	leafDom := w.cat.Relation("Ext1").Column("leaf").Domain
	e2 := w.relation("Ext2", w.sz.dom(1500)+102, map[string]int64{"leaf": leafDom})
	j1 := w.b.Join(w.last, e1, w.attr("Dim3", "sub"), w.attr("Ext1", "sub"))
	j2 := w.b.Join(j1, e2, w.attr("Ext1", "leaf"), w.attr("Ext2", "leaf"))
	x := w.b.Transform(j2, "scramble", w.attr("U", "norm"), w.attr("Fact", "val"))
	w.last = x
	return w.done("7-way star+chain hybrid with a floating transform")
})

var _ = register(21, func(id int) *Workflow {
	// The paper's most complex workflow: an 8-input join with multiple
	// transformations. Trivial-CSS coverage needs ≥41 executions.
	w := newWF(id, "wf21-eightway")
	starJoin(w, 8, 2000, true)
	x1 := w.b.Transform(w.last, "scramble", w.attr("U", "clean1"), w.attr("Fact", "val"))
	x2 := w.b.Transform(x1, "bucket10", w.attr("U", "band"), w.attr("Dim1", "val"))
	x3 := w.b.Transform(x2, "sum", w.attr("U", "score"), w.attr("U", "clean1"), w.attr("U", "band"))
	w.last = x3
	return w.done("8-input join with multiple transformations (paper's wf21; formula bound 41 executions)")
})

var _ = register(22, func(id int) *Workflow {
	w := newWF(id, "wf22-star5-groupby")
	starJoin(w, 5, 100, false)
	w.last = w.b.GroupBy(w.last, w.attr("Fact", "k1"), w.attr("Fact", "k2"))
	return w.done("5-way star aggregated at the top")
})

var _ = register(23, func(id int) *Workflow {
	// Union–division CSSs are generated but lose: the interposed relation's
	// join key domain is far larger than the target's, so the divide route
	// costs about twice the direct one and the solver skips it
	// (paper: 3,444 vs 6,951 units).
	w := newWF(id, "wf23-union-division-loses")
	t1 := w.relation("T1", 120000, map[string]int64{"j13": 3475, "j12": 1722})
	t3 := w.relation("T3", 30000, map[string]int64{"j13": 3475})
	t2 := w.relation("T2", 45000, map[string]int64{"j12": 1722})
	j1 := w.b.Join(t1, t3, w.attr("T1", "j13"), w.attr("T3", "j13"))
	w.last = w.b.Join(j1, t2, w.attr("T1", "j12"), w.attr("T2", "j12"))
	return w.done("union–division generated but unprofitable; direct histograms win (paper: 3,444 vs 6,951)")
})

var _ = register(24, func(id int) *Workflow {
	w := newWF(id, "wf24-chain6-reject")
	chainJoin(w, 4, 700)
	// Reject-join the chain result against a reference, then one more join.
	refDom := w.sz.dom(1000)
	w.cat.Relation("R3").Columns = append(w.cat.Relation("R3").Columns, workflow.Column{Name: "r", Domain: refDom})
	w.specs[3].Columns = append(w.specs[3].Columns, colSpec("r", refDom))
	ref := w.relation("Ref", w.sz.dom(3000)+102, map[string]int64{"r": refDom})
	j := w.b.RejectJoin(w.last, ref, w.attr("R3", "r"), w.attr("Ref", "r"))
	tailDom := w.sz.dom(800)
	w.cat.Relation("Ref").Columns = append(w.cat.Relation("Ref").Columns, workflow.Column{Name: "t", Domain: tailDom})
	w.specs[4].Columns = append(w.specs[4].Columns, colSpec("t", tailDom))
	tail := w.relation("Tail", w.sz.dom(2000)+102, map[string]int64{"t": tailDom})
	w.last = w.b.Join(j, tail, w.attr("Ref", "t"), w.attr("Tail", "t"))
	return w.done("4-way chain, then a pinned reject join, then a final join: three blocks")
})

var _ = register(25, func(id int) *Workflow {
	w := newWF(id, "wf25-two-join-blocks")
	chainJoin(w, 4, 700)
	agg := w.b.AggregateUDF(w.last, "sum", w.attr("U", "rollup"), w.attr("R0", "val"))
	// Downstream block: join the aggregate with two more relations.
	vDom := w.cat.Relation("R0").Column("val").Domain
	s1 := w.relation("S1", w.sz.dom(2500)+102, map[string]int64{"val": vDom, "z": w.sz.dom(600)})
	zDom := w.cat.Relation("S1").Column("z").Domain
	s2 := w.relation("S2", w.sz.dom(1200)+102, map[string]int64{"z": zDom})
	j1 := w.b.Join(agg, s1, w.attr("R0", "val"), w.attr("S1", "val"))
	w.last = w.b.Join(j1, s2, w.attr("S1", "z"), w.attr("S2", "z"))
	return w.done("two join-bearing blocks separated by an opaque aggregate")
})

var _ = register(26, func(id int) *Workflow {
	w := newWF(id, "wf26-star7")
	starJoin(w, 7, 1800, true)
	return w.done("7-way star join")
})

var _ = register(27, func(id int) *Workflow {
	w := newWF(id, "wf27-hub-and-spokes-shared")
	// Hub joins four spokes, two of them on the same shared key.
	shared := w.sz.dom(400)
	o1 := w.sz.dom(150)
	o2 := w.sz.dom(120)
	hub := w.relation("Hub", w.sz.card(), map[string]int64{"s": shared, "o1": o1, "o2": o2})
	a := w.relation("SpokeA", w.sz.dom(4000)+102, map[string]int64{"s": shared})
	bb := w.relation("SpokeB", w.sz.dom(4000)+102, map[string]int64{"s": shared})
	c := w.relation("SpokeC", w.sz.dom(3000)+102, map[string]int64{"o1": o1})
	d := w.relation("SpokeD", w.sz.dom(3000)+102, map[string]int64{"o2": o2})
	j1 := w.b.Join(hub, a, w.attr("Hub", "s"), w.attr("SpokeA", "s"))
	j2 := w.b.Join(j1, bb, w.attr("Hub", "s"), w.attr("SpokeB", "s"))
	j3 := w.b.Join(j2, c, w.attr("Hub", "o1"), w.attr("SpokeC", "o1"))
	w.last = w.b.Join(j3, d, w.attr("Hub", "o2"), w.attr("SpokeD", "o2"))
	return w.done("5-way hub with a shared key across two spokes (amortization at scale)")
})

var _ = register(28, func(id int) *Workflow {
	w := newWF(id, "wf28-snowflake6-deep")
	starJoin(w, 3, 900, false)
	// Chain three more levels off Dim1.
	cur := w.last
	prevRel := "Dim1"
	prevCol := "lvl"
	lvlDom := w.sz.dom(1200)
	w.cat.Relation("Dim1").Columns = append(w.cat.Relation("Dim1").Columns, workflow.Column{Name: "lvl", Domain: lvlDom})
	w.specs[1].Columns = append(w.specs[1].Columns, colSpec("lvl", lvlDom))
	for lvl := 1; lvl <= 3; lvl++ {
		name := fmt.Sprintf("Lvl%d", lvl)
		nextDom := w.sz.dom(1000)
		keys := map[string]int64{prevCol: lvlDom}
		if lvl < 3 {
			keys["next"] = nextDom
		}
		n := w.relation(name, w.sz.dom(2500)+102, keys)
		cur = w.b.Join(cur, n, w.attr(prevRel, prevCol), w.attr(name, prevCol))
		prevRel, prevCol, lvlDom = name, "next", nextDom
	}
	w.last = cur
	return w.done("6-way deep snowflake: star plus a three-level dimension hierarchy")
})

var _ = register(29, func(id int) *Workflow {
	w := newWF(id, "wf29-snowflake7-agg")
	starJoin(w, 5, 1500, true)
	subDom := w.sz.dom(800)
	w.cat.Relation("Dim4").Columns = append(w.cat.Relation("Dim4").Columns, workflow.Column{Name: "sub", Domain: subDom})
	w.specs[4].Columns = append(w.specs[4].Columns, colSpec("sub", subDom))
	e1 := w.relation("Leaf1", w.sz.dom(2000)+102, map[string]int64{"sub": subDom})
	j := w.b.Join(w.last, e1, w.attr("Dim4", "sub"), w.attr("Leaf1", "sub"))
	g := w.b.GroupBy(j, w.attr("Fact", "k1"))
	// Downstream block joins the aggregate with a final reference.
	k1Dom := w.cat.Relation("Fact").Column("k1").Domain
	ref := w.relation("Band", w.sz.dom(1500)+102, map[string]int64{"k1": k1Dom})
	w.last = w.b.Join(g, ref, w.attr("Fact", "k1"), w.attr("Band", "k1"))
	return w.done("6-way snowflake aggregated, then joined downstream: two join-bearing blocks")
})

var _ = register(30, func(id int) *Workflow {
	// A 6-input join: the paper's workflow 30, whose trivial-CSS-only
	// coverage needs at least 14 executions.
	w := newWF(id, "wf30-sixway")
	starJoin(w, 6, 2400, true)
	return w.done("6-input star join (paper's wf30; formula bound 14 executions)")
})

// colSpec builds a Zipfian data column spec matching the catalog column.
func colSpec(name string, dom int64) data.ColumnSpec {
	return data.ColumnSpec{Name: name, Domain: dom, Skew: 1.4}
}
