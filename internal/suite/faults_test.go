package suite

import (
	"testing"

	"github.com/essential-stats/etlopt/internal/css"
	"github.com/essential-stats/etlopt/internal/faults"
)

// TestEngineEquivalenceUnderFaults is the fault-matrix contract: with an
// injector forcing one transient fault at every site (rate=1, transient=1 —
// every block's first attempt fails and every retry succeeds), every engine
// configuration — row and columnar, batch and streaming, sequential and
// worker-parallel — must still produce results identical to a fault-free
// golden run over every suite workflow. Retries are invisible: per-attempt
// sinks and row budgets isolate failed attempts, so nothing a failed
// attempt did leaks into the committed result.
func TestEngineEquivalenceUnderFaults(t *testing.T) {
	const scale = 0.001
	inj := faults.New(1, 1, 1, 0) // seed 1, every site, one transient failure, all kinds
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			an, err := w.Analyze()
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			res, err := css.Generate(an, css.DefaultOptions())
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			observe := res.ObservableStats()
			db := w.Data(scale)

			clean, err := runConfig(engineConfigs[0], an, db, res, observe, false, nil)
			if err != nil {
				t.Fatalf("fault-free golden: %v", err)
			}
			if clean.Retries != 0 {
				t.Fatalf("fault-free run recorded %d retries", clean.Retries)
			}

			for _, cfg := range engineConfigs {
				if raceDetector && cfg.workers == 1 {
					// See TestEngineEquivalenceGolden: sequential legs
					// cannot race and are covered by the unraced CI jobs.
					continue
				}
				got, err := runConfig(cfg, an, db, res, observe, false, inj)
				if err != nil {
					t.Fatalf("%s under faults: %v", cfg.name, err)
				}
				if got.Retries == 0 {
					t.Errorf("%s: rate-1 injector caused no retries", cfg.name)
				}
				if len(got.Degraded) != 0 {
					t.Errorf("%s: transient faults degraded %d statistics", cfg.name, len(got.Degraded))
				}
				diffResults(t, cfg.name, clean, got)
			}
		})
	}
}
