//go:build race

package suite

// raceDetector reports whether this test binary was built with -race.
// The equivalence matrix uses it to drop comparison legs that cannot
// race (sequential, single-worker runs): the detector's ~8x slowdown
// over 30 workflows × 8 configurations × 2 passes outgrows any sane
// package timeout on small hosts, and the w1 legs it drops are pinned
// by the unraced test and fault CI jobs anyway.
const raceDetector = true
