package stats

import (
	"sync"
	"testing"

	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// TestValueDriftMixedRepresentation verifies that a statistic whose
// representation changed between runs (scalar one run, histogram the
// other) counts as full drift in both orderings, instead of silently
// comparing the histogram value's zero Scalar.
func TestValueDriftMixedRepresentation(t *testing.T) {
	a := workflow.Attr{Rel: "T", Col: "a"}
	h := NewHistogram(a)
	h.Inc([]int64{1}, 50)
	scalar := &Value{Scalar: 50}
	hist := &Value{Hist: h}

	if got := valueDrift(scalar, hist); got != 1 {
		t.Fatalf("valueDrift(scalar, hist) = %v, want 1 (full drift)", got)
	}
	if got := valueDrift(hist, scalar); got != 1 {
		t.Fatalf("valueDrift(hist, scalar) = %v, want 1 (full drift)", got)
	}
	// Same representation still compares by value, not by the guard.
	if got := valueDrift(scalar, &Value{Scalar: 50}); got != 0 {
		t.Fatalf("valueDrift(scalar, scalar) = %v, want 0", got)
	}
}

// TestMeasureDriftConcurrent is the -race regression for MeasureDrift
// reading store maps without locks: it measures drift in both argument
// orders (exercising the fixed-order lockPair against deadlock) while
// writers are still feeding both stores, the way a drift check against a
// mid-observation instrumented run would. Merge runs both directions too,
// as it shares the same two-store lock ordering.
func TestMeasureDriftConcurrent(t *testing.T) {
	a := NewStore()
	b := NewStore()
	var wg sync.WaitGroup

	// Writers: feed both stores throughout.
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := NewCard(BlockSE(g, expr.NewSet(i%8)))
				a.PutScalar(s, int64(i))
				b.PutScalar(s, int64(i+1))
			}
		}()
	}
	// Readers: drift in both orders (and degenerate same-store).
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				MeasureDrift(a, b)
				MeasureDrift(b, a)
				MeasureDrift(a, a)
			}
		}()
	}
	// Mergers: two-store writes in both orders, same lock-ordering path.
	wg.Add(2)
	go func() {
		defer wg.Done()
		other := NewStore()
		other.PutScalar(NewCard(BlockSE(99, expr.NewSet(0))), 1)
		for i := 0; i < 100; i++ {
			a.Merge(other)
		}
	}()
	go func() {
		defer wg.Done()
		other := NewStore()
		other.PutScalar(NewCard(BlockSE(98, expr.NewSet(0))), 1)
		for i := 0; i < 100; i++ {
			b.Merge(other)
		}
	}()
	// A lock-ordering bug deadlocks here; an unlocked map read fails the
	// -race run.
	wg.Wait()

	d := MeasureDrift(a, b)
	if d.Shared == 0 {
		t.Fatal("stores share keys by construction; drift saw none")
	}
}
