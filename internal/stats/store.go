package stats

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/essential-stats/etlopt/internal/workflow"
)

// Value is an observed statistic value. Exactly one representation is
// populated, matching the kind's registered shape: a scalar for
// cardinalities and distinct counts, a histogram for distributions, a
// sketch for the approximate kinds.
type Value struct {
	Stat   Stat
	Scalar int64
	Hist   *Histogram
	HLL    *HLL
	CM     *CMH
	// Approx marks values whose figure came through the sketch tier —
	// either a sketch itself or a scalar/histogram derived from one — so
	// estimation feedback can tag its source tier.
	Approx bool
}

// Store holds observed (or derived) statistic values keyed by statistic
// identity. It is the hand-off point between the instrumented execution of
// the initial plan and the optimizer's estimation layer.
//
// A store is safe for concurrent use: the parallel execution engine feeds
// it from several block goroutines at once (each block writes disjoint
// keys, but the underlying map still needs synchronization).
type Store struct {
	mu sync.RWMutex
	m  map[Key]*Value
	// id is a process-unique ordering token: operations that must lock
	// two stores (MeasureDrift, Merge) acquire the locks in ascending id
	// order so concurrent two-store operations cannot deadlock.
	id uint64
}

// storeIDs issues the per-store lock-ordering tokens.
var storeIDs atomic.Uint64

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{m: make(map[Key]*Value), id: storeIDs.Add(1)}
}

// lockPair acquires both stores' locks in ascending id order — a for
// reading, b for writing when wr is set (a == b takes a single lock).
// The returned function releases them.
func lockPair(a, b *Store, wr bool) func() {
	lock := func(s *Store, write bool) {
		if write {
			s.mu.Lock()
		} else {
			s.mu.RLock()
		}
	}
	unlock := func(s *Store, write bool) {
		if write {
			s.mu.Unlock()
		} else {
			s.mu.RUnlock()
		}
	}
	if a == b {
		lock(a, wr)
		return func() { unlock(a, wr) }
	}
	first, fw, second, sw := a, false, b, wr
	if b.id < a.id {
		first, fw, second, sw = b, wr, a, false
	}
	lock(first, fw)
	lock(second, sw)
	return func() {
		unlock(second, sw)
		unlock(first, fw)
	}
}

// Len returns the number of stored statistics.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.m)
}

// Has reports whether the statistic is present.
func (st *Store) Has(s Stat) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	_, ok := st.m[s.Key()]
	return ok
}

// KindError reports a put whose value shape does not match the statistic
// kind's registered shape (a scalar for a histogram statistic, a histogram
// for a sketch, ...). It is a typed error so the observation layer can mark
// the statistic degraded and keep the run alive instead of crashing it.
type KindError struct {
	// Stat is the mis-declared statistic.
	Stat Stat
	// Op names the rejected operation ("PutScalar", "PutHistOnce", ...).
	Op string
}

func (e *KindError) Error() string {
	return fmt.Sprintf("stats: %s on %s-shaped statistic %v", e.Op, e.Stat.Kind.Shape(), e.Stat.Key())
}

// checkShape validates a put against the kind registry.
func checkShape(s Stat, want Shape, op string) error {
	if !s.Kind.Valid() || s.Kind.Shape() != want {
		return &KindError{Stat: s, Op: op}
	}
	return nil
}

// put stores a value, optionally only when absent.
func (st *Store) put(v *Value, once bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	k := v.Stat.Key()
	if once {
		if _, ok := st.m[k]; ok {
			return
		}
	}
	st.m[k] = v
}

// PutScalar records a cardinality or distinct-count observation.
func (st *Store) PutScalar(s Stat, v int64) error {
	if err := checkShape(s, ShapeScalar, "PutScalar"); err != nil {
		return err
	}
	st.put(&Value{Stat: s, Scalar: v}, false)
	return nil
}

// PutHist records a histogram observation.
func (st *Store) PutHist(s Stat, h *Histogram) error {
	if err := checkShape(s, ShapeHist, "PutHist"); err != nil {
		return err
	}
	st.put(&Value{Stat: s, Hist: h}, false)
	return nil
}

// PutScalarOnce records the scalar unless the statistic is already present,
// atomically (the check-then-put the collectors rely on).
func (st *Store) PutScalarOnce(s Stat, v int64) error {
	if err := checkShape(s, ShapeScalar, "PutScalarOnce"); err != nil {
		return err
	}
	st.put(&Value{Stat: s, Scalar: v}, true)
	return nil
}

// PutHistOnce records the histogram unless the statistic is already
// present, atomically.
func (st *Store) PutHistOnce(s Stat, h *Histogram) error {
	if err := checkShape(s, ShapeHist, "PutHistOnce"); err != nil {
		return err
	}
	st.put(&Value{Stat: s, Hist: h}, true)
	return nil
}

// PutHLL records a HyperLogLog sketch observation.
func (st *Store) PutHLL(s Stat, h *HLL) error {
	if err := checkShape(s, ShapeHLL, "PutHLL"); err != nil {
		return err
	}
	st.put(&Value{Stat: s, HLL: h, Approx: true}, false)
	return nil
}

// PutHLLOnce records the sketch unless the statistic is already present.
func (st *Store) PutHLLOnce(s Stat, h *HLL) error {
	if err := checkShape(s, ShapeHLL, "PutHLLOnce"); err != nil {
		return err
	}
	st.put(&Value{Stat: s, HLL: h, Approx: true}, true)
	return nil
}

// PutCM records a count-min sketch observation.
func (st *Store) PutCM(s Stat, c *CMH) error {
	if err := checkShape(s, ShapeCM, "PutCM"); err != nil {
		return err
	}
	st.put(&Value{Stat: s, CM: c, Approx: true}, false)
	return nil
}

// PutCMOnce records the sketch unless the statistic is already present.
func (st *Store) PutCMOnce(s Stat, c *CMH) error {
	if err := checkShape(s, ShapeCM, "PutCMOnce"); err != nil {
		return err
	}
	st.put(&Value{Stat: s, CM: c, Approx: true}, true)
	return nil
}

// Scalar returns the scalar value of a cardinality or distinct statistic.
func (st *Store) Scalar(s Stat) (int64, error) {
	st.mu.RLock()
	v, ok := st.m[s.Key()]
	st.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("statistic not in store: %v", s.Key())
	}
	if s.Kind.Valid() && s.Kind.Shape() != ShapeScalar {
		return 0, fmt.Errorf("statistic %v is %s-shaped, not scalar", s.Key(), s.Kind.Shape())
	}
	return v.Scalar, nil
}

// Hist returns the histogram value of a distribution statistic.
func (st *Store) Hist(s Stat) (*Histogram, error) {
	st.mu.RLock()
	v, ok := st.m[s.Key()]
	st.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("statistic not in store: %v", s.Key())
	}
	if v.Hist == nil {
		return nil, fmt.Errorf("statistic %v is not a histogram", s.Key())
	}
	return v.Hist, nil
}

// HLLSketch returns the HyperLogLog value of an HLLDistinct statistic.
func (st *Store) HLLSketch(s Stat) (*HLL, error) {
	st.mu.RLock()
	v, ok := st.m[s.Key()]
	st.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("statistic not in store: %v", s.Key())
	}
	if v.HLL == nil {
		return nil, fmt.Errorf("statistic %v is not an HLL sketch", s.Key())
	}
	return v.HLL, nil
}

// CMSketch returns the count-min value of a CMHist statistic.
func (st *Store) CMSketch(s Stat) (*CMH, error) {
	st.mu.RLock()
	v, ok := st.m[s.Key()]
	st.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("statistic not in store: %v", s.Key())
	}
	if v.CM == nil {
		return nil, fmt.Errorf("statistic %v is not a count-min sketch", s.Key())
	}
	return v.CM, nil
}

// Lookup returns the stored value for a statistic, if present.
func (st *Store) Lookup(s Stat) (*Value, bool) {
	st.mu.RLock()
	v, ok := st.m[s.Key()]
	st.mu.RUnlock()
	return v, ok
}

// Values returns all stored values in a deterministic order.
func (st *Store) Values() []*Value {
	st.mu.RLock()
	out := make([]*Value, 0, len(st.m))
	for _, v := range st.m {
		out = append(out, v)
	}
	st.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i].Stat.Key(), out[j].Stat.Key()) })
	return out
}

// KeyLess orders statistic keys canonically (the order Values uses), so
// callers can sort their own statistic lists deterministically.
func KeyLess(a, b Key) bool { return keyLess(a, b) }

func keyLess(a, b Key) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Block != b.Block {
		return a.Block < b.Block
	}
	if a.Set != b.Set {
		return a.Set < b.Set
	}
	if a.Depth != b.Depth {
		return a.Depth < b.Depth
	}
	if a.RejectInput != b.RejectInput {
		return a.RejectInput < b.RejectInput
	}
	if a.RejectEdge != b.RejectEdge {
		return a.RejectEdge < b.RejectEdge
	}
	return a.Attrs < b.Attrs
}

// Merge copies every value from other that st does not already hold;
// the pay-as-you-go baseline accumulates observations across runs with it.
func (st *Store) Merge(other *Store) {
	if st == other {
		return
	}
	defer lockPair(other, st, true)()
	for k, v := range other.m {
		if _, ok := st.m[k]; !ok {
			st.m[k] = v
		}
	}
}

// MemoryUnits returns the actual memory footprint of the stored statistics
// in abstract integer units: one per scalar, one per histogram bucket. The
// a-priori cost model of Section 5.4 bounds this by domain-size products;
// this accessor reports what the observation actually used.
func (st *Store) MemoryUnits() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var total int64
	for _, v := range st.m {
		switch {
		case v.Hist != nil:
			total += int64(v.Hist.Buckets())
		case v.HLL != nil:
			total += v.HLL.MemoryUnits()
		case v.CM != nil:
			total += v.CM.MemoryUnits()
		default:
			total++
		}
	}
	return total
}

// Dump renders the store's contents for debugging and reports.
func (st *Store) Dump(b *workflow.Block) string {
	out := ""
	for _, v := range st.Values() {
		switch {
		case v.Hist != nil:
			out += fmt.Sprintf("%s: %d buckets, total %d\n", v.Stat.Label(b), v.Hist.Buckets(), v.Hist.Total())
		case v.HLL != nil:
			out += fmt.Sprintf("%s ≈ %d (hll 2^%d)\n", v.Stat.Label(b), v.HLL.Estimate(), v.HLL.P)
		case v.CM != nil:
			out += fmt.Sprintf("%s: ~%d buckets, total %d (cm %dx%d)\n", v.Stat.Label(b), v.CM.Spec.N, v.CM.Total(), v.CM.Depth, v.CM.Width)
		default:
			out += fmt.Sprintf("%s = %d\n", v.Stat.Label(b), v.Scalar)
		}
	}
	return out
}
