package stats

import (
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/essential-stats/etlopt/internal/workflow"
)

func TestMulInt64(t *testing.T) {
	ok := []struct{ a, b, want int64 }{
		{0, math.MaxInt64, 0},
		{math.MinInt64, 0, 0},
		{3, 7, 21},
		{-4, 5, -20},
		{math.MaxInt64, 1, math.MaxInt64},
		{math.MinInt64, 1, math.MinInt64},
		{1 << 31, 1 << 31, 1 << 62},
	}
	for _, tc := range ok {
		got, err := MulInt64(tc.a, tc.b)
		if err != nil || got != tc.want {
			t.Errorf("MulInt64(%d, %d) = %d, %v; want %d", tc.a, tc.b, got, err, tc.want)
		}
	}
	bad := [][2]int64{
		{math.MaxInt64, 2},
		{2, math.MaxInt64},
		{math.MinInt64, -1},
		{-1, math.MinInt64},
		{math.MinInt64, 2},
		{1 << 32, 1 << 32},
		{-(1 << 32), 1 << 32},
	}
	for _, tc := range bad {
		if _, err := MulInt64(tc[0], tc[1]); !errors.Is(err, ErrOverflow) {
			t.Errorf("MulInt64(%d, %d): want ErrOverflow, got %v", tc[0], tc[1], err)
		}
	}
}

func TestAddInt64(t *testing.T) {
	ok := []struct{ a, b, want int64 }{
		{math.MaxInt64, 0, math.MaxInt64},
		{math.MaxInt64 - 1, 1, math.MaxInt64},
		{math.MinInt64, 0, math.MinInt64},
		{math.MinInt64 + 1, -1, math.MinInt64},
		{-5, 5, 0},
	}
	for _, tc := range ok {
		got, err := AddInt64(tc.a, tc.b)
		if err != nil || got != tc.want {
			t.Errorf("AddInt64(%d, %d) = %d, %v; want %d", tc.a, tc.b, got, err, tc.want)
		}
	}
	bad := [][2]int64{
		{math.MaxInt64, 1},
		{1, math.MaxInt64},
		{math.MinInt64, -1},
		{-1, math.MinInt64},
	}
	for _, tc := range bad {
		if _, err := AddInt64(tc[0], tc[1]); !errors.Is(err, ErrOverflow) {
			t.Errorf("AddInt64(%d, %d): want ErrOverflow, got %v", tc[0], tc[1], err)
		}
	}
}

func TestFloat64FromInt64(t *testing.T) {
	ok := []int64{0, 1, -1, MaxExactInt64, -MaxExactInt64, MaxExactInt64 - 1}
	for _, v := range ok {
		got, err := Float64FromInt64(v)
		if err != nil || got != float64(v) {
			t.Errorf("Float64FromInt64(%d) = %v, %v; want exact conversion", v, got, err)
		}
	}
	// 2^53 is the last exactly-representable integer; one past it (in
	// either direction) must error instead of silently rounding.
	bad := []int64{MaxExactInt64 + 1, -MaxExactInt64 - 1, math.MaxInt64, math.MinInt64}
	for _, v := range bad {
		if _, err := Float64FromInt64(v); !errors.Is(err, ErrPrecision) {
			t.Errorf("Float64FromInt64(%d): want ErrPrecision, got %v", v, err)
		}
	}
}

func TestDotProductOverflowError(t *testing.T) {
	a := workflow.Attr{Rel: "R", Col: "k"}
	h1 := NewHistogram(a)
	h2 := NewHistogram(a)
	h1.Inc([]int64{1}, math.MaxInt64)
	h2.Inc([]int64{1}, 2)
	if _, err := DotProduct(h1, h2); !errors.Is(err, ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := workflow.Attr{Rel: "R", Col: "k"}
	b := workflow.Attr{Rel: "R", Col: "v"}
	h1 := NewHistogram(a, b)
	h2 := NewHistogram(a, b)
	h1.Inc([]int64{1, 10}, 3)
	h1.Inc([]int64{2, 20}, 1)
	h2.Inc([]int64{1, 10}, 4)
	h2.Inc([]int64{3, 30}, 5)
	h2.Inc([]int64{2, 20}, -1) // cancels h1's bucket
	if err := h1.Merge(h2); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if got := h1.Freq(1, 10); got != 7 {
		t.Errorf("bucket (1,10) = %d, want 7", got)
	}
	if got := h1.Freq(3, 30); got != 5 {
		t.Errorf("bucket (3,30) = %d, want 5", got)
	}
	if got := h1.Buckets(); got != 2 {
		t.Errorf("%d buckets after merge, want 2 (zero bucket pruned)", got)
	}

	other := NewHistogram(a)
	if err := h1.Merge(other); err == nil || !strings.Contains(err.Error(), "attribute sets differ") {
		t.Fatalf("want attribute mismatch error, got %v", err)
	}
}
