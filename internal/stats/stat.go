// Package stats defines the statistic descriptors of the paper — relation
// cardinalities |T|, distinct counts |a_T| and attribute distributions
// (exact frequency histograms) H_T^a — together with the histogram algebra
// the candidate-statistics rules evaluate: dot products (rule J1), join
// projections (J2/J3), marginalization (I1/I2) and the bucket-wise multiply
// and divide of the union–division method (J4/J5).
package stats

import (
	"fmt"
	"strings"

	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Kind is the type of a statistic.
type Kind uint8

// Statistic kinds.
const (
	// Card is a sub-expression cardinality |T|.
	Card Kind = iota
	// Distinct is the number of distinct values |a_T| of an attribute set
	// in a sub-expression.
	Distinct
	// Hist is an exact frequency distribution H_T^a over an attribute set.
	Hist
	// HLLDistinct is the sketch-backed approximate counterpart of Distinct:
	// a HyperLogLog register file whose estimate stands in for |a_T|.
	HLLDistinct
	// CMHist is the sketch-backed approximate counterpart of Hist: a
	// count-min sketch over the buckets of a BucketSpec, standing in for a
	// bucketized H_T^a.
	CMHist
)

// Shape is the value representation a kind stores: the registry that
// replaced the old hard-coded scalar-or-histogram union.
type Shape uint8

// Value shapes.
const (
	// ShapeScalar is a single int64 (cardinalities, distinct counts).
	ShapeScalar Shape = iota
	// ShapeHist is an exact frequency histogram.
	ShapeHist
	// ShapeHLL is a HyperLogLog register file.
	ShapeHLL
	// ShapeCM is a count-min sketch over histogram buckets.
	ShapeCM
)

// String names the shape.
func (sh Shape) String() string {
	switch sh {
	case ShapeScalar:
		return "scalar"
	case ShapeHist:
		return "hist"
	case ShapeHLL:
		return "hll"
	case ShapeCM:
		return "cm"
	default:
		return fmt.Sprintf("Shape(%d)", int(sh))
	}
}

// kindInfo is one row of the kind registry.
type kindInfo struct {
	name  string
	shape Shape
	// approx marks sketch-backed kinds; exact names the exact kind an
	// approximate one stands in for (itself for exact kinds).
	approx bool
	exact  Kind
	// bounded marks kinds whose observers use constant-size side memory
	// (a counter or a fixed register file) rather than memory growing with
	// the observed record set. The fault model exempts them from tap
	// (side-memory exhaustion) faults.
	bounded bool
}

// kindRegistry declares every statistic kind: name, value shape, and the
// exact/approximate pairing the selector and degradation ladder navigate.
var kindRegistry = [...]kindInfo{
	Card:        {name: "card", shape: ShapeScalar, exact: Card, bounded: true},
	Distinct:    {name: "distinct", shape: ShapeScalar, exact: Distinct},
	Hist:        {name: "hist", shape: ShapeHist, exact: Hist},
	HLLDistinct: {name: "hll-distinct", shape: ShapeHLL, approx: true, exact: Distinct, bounded: true},
	CMHist:      {name: "cm-hist", shape: ShapeCM, approx: true, exact: Hist, bounded: true},
}

// NumKinds is the number of registered statistic kinds; kind bytes at or
// beyond it are unknown (possibly from a future format version).
const NumKinds = len(kindRegistry)

// Valid reports whether the kind is registered.
func (k Kind) Valid() bool { return int(k) < NumKinds }

// Shape returns the kind's value representation.
func (k Kind) Shape() Shape { return kindRegistry[k].shape }

// Approx reports whether the kind is a sketch-backed approximation.
func (k Kind) Approx() bool { return kindRegistry[k].approx }

// ExactKind returns the exact kind an approximate kind stands in for
// (the kind itself when already exact).
func (k Kind) ExactKind() Kind { return kindRegistry[k].exact }

// BoundedMemory reports whether the kind's observer uses constant-size
// side memory at the tap.
func (k Kind) BoundedMemory() bool { return kindRegistry[k].bounded }

// String names the kind.
func (k Kind) String() string {
	if k.Valid() {
		return kindRegistry[k].name
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Target identifies the relation a statistic describes. The common case is
// a (block, SE) pair. Two refinements serve specific rules:
//
//   - Depth ≥ 0 addresses a point inside a single input's pushed-down
//     operator chain: Depth d is the record-set after the first d chain
//     operators, with Depth 0 the raw source (or upstream block output).
//     The fully-cooked input — the SE itself — uses Depth -1.
//   - RejectInput/RejectEdge describe the union–division targets (J4/J5):
//     the SE with one input replaced by its reject rows with respect to a
//     join predicate (written T̄ᵢ in the paper).
type Target struct {
	// Block is the optimizable-block index the SE belongs to.
	Block int
	// Set is the SE's input bitset within the block.
	Set expr.Set
	// Depth addresses a chain point of a single-input SE; -1 means the
	// fully-cooked SE.
	Depth int
	// RejectInput is the input index whose reject rows stand in for the
	// input, or -1 for an ordinary SE.
	RejectInput int
	// RejectEdge indexes Block.Joins: the predicate defining the rejects.
	// -1 for ordinary SEs.
	RejectEdge int
}

// SE returns an ordinary (non-reject) target for the given SE in block 0;
// use BlockSE for multi-block workflows.
func SE(s expr.Set) Target { return BlockSE(0, s) }

// BlockSE returns an ordinary target for the given SE of the given block.
func BlockSE(block int, s expr.Set) Target {
	return Target{Block: block, Set: s, Depth: -1, RejectInput: -1, RejectEdge: -1}
}

// ChainPoint returns the target addressing input i of the block after its
// first depth chain operators (depth 0 = the raw source or upstream block
// output).
func ChainPoint(block, input, depth int) Target {
	return Target{Block: block, Set: expr.NewSet(input), Depth: depth, RejectInput: -1, RejectEdge: -1}
}

// RejectSE returns a target in which input rej's rows are those rejected by
// join edge e, within the given block.
func RejectSE(s expr.Set, rej, e int) Target {
	return Target{Set: s, Depth: -1, RejectInput: rej, RejectEdge: e}
}

// BlockRejectSE is RejectSE scoped to a block.
func BlockRejectSE(block int, s expr.Set, rej, e int) Target {
	return Target{Block: block, Set: s, Depth: -1, RejectInput: rej, RejectEdge: e}
}

// IsReject reports whether the target involves a reject set.
func (t Target) IsReject() bool { return t.RejectInput >= 0 }

// IsChainPoint reports whether the target addresses an intermediate point
// of an input's operator chain.
func (t Target) IsChainPoint() bool { return t.Depth >= 0 }

// Label renders the target using block input names, e.g. "Orders⋈Customer"
// or "!T1(e0)⋈T2"; chain points carry an "@depth" suffix.
func (t Target) Label(b *workflow.Block) string {
	if t.IsChainPoint() {
		return fmt.Sprintf("%s@%d", t.Set.Label(b), t.Depth)
	}
	if !t.IsReject() {
		return t.Set.Label(b)
	}
	parts := make([]string, 0, t.Set.Len())
	for _, i := range t.Set.Members() {
		name := fmt.Sprintf("R%d", i)
		if b != nil && i < len(b.Inputs) {
			name = b.Inputs[i].Name
		}
		if i == t.RejectInput {
			name = "!" + name + fmt.Sprintf("(e%d)", t.RejectEdge)
		}
		parts = append(parts, name)
	}
	return strings.Join(parts, "⋈")
}

// Stat is a statistic descriptor: the kind, the target relation, and — for
// distinct counts and histograms — the attribute set, canonicalized to
// join-equivalence class representatives so that, e.g., H_{T1}^{J12} and
// H_{T1}^{J13} coincide when T1 joins T2 and T3 on the same column.
type Stat struct {
	Kind   Kind
	Target Target
	// Attrs are the class-representative attributes, in canonical order.
	// Empty for cardinalities.
	Attrs []workflow.Attr
}

// NewCard returns the cardinality statistic |se|.
func NewCard(t Target) Stat { return Stat{Kind: Card, Target: t} }

// NewDistinct returns the distinct-count statistic |attrs_se|.
func NewDistinct(t Target, attrs ...workflow.Attr) Stat {
	return Stat{Kind: Distinct, Target: t, Attrs: canonAttrs(attrs)}
}

// NewHist returns the histogram statistic H_se^attrs.
func NewHist(t Target, attrs ...workflow.Attr) Stat {
	return Stat{Kind: Hist, Target: t, Attrs: canonAttrs(attrs)}
}

// NewHLLDistinct returns the HyperLogLog approximation of |attrs_se|.
func NewHLLDistinct(t Target, attrs ...workflow.Attr) Stat {
	return Stat{Kind: HLLDistinct, Target: t, Attrs: canonAttrs(attrs)}
}

// NewCMHist returns the count-min approximation of H_se^attrs.
func NewCMHist(t Target, attrs ...workflow.Attr) Stat {
	return Stat{Kind: CMHist, Target: t, Attrs: canonAttrs(attrs)}
}

// ApproxVariant returns the sketch-backed counterpart of an exact
// statistic, when one exists: any distinct count has an HLL variant; a
// histogram has a count-min variant only for single-attribute non-reject
// targets (the bucketizable case the estimation algebra's J1 consumes —
// joint distributions and reject-side auxiliary joins stay exact).
func ApproxVariant(s Stat) (Stat, bool) {
	switch s.Kind {
	case Distinct:
		return Stat{Kind: HLLDistinct, Target: s.Target, Attrs: s.Attrs}, true
	case Hist:
		if len(s.Attrs) != 1 || s.Target.IsReject() {
			return Stat{}, false
		}
		return Stat{Kind: CMHist, Target: s.Target, Attrs: s.Attrs}, true
	}
	return Stat{}, false
}

// ExactVariant returns the exact statistic an approximate one stands in
// for; ok is false when s is already exact.
func ExactVariant(s Stat) (Stat, bool) {
	if !s.Kind.Approx() {
		return Stat{}, false
	}
	return Stat{Kind: s.Kind.ExactKind(), Target: s.Target, Attrs: s.Attrs}, true
}

// canonAttrs sorts and de-duplicates an attribute list (rule composition
// can mention the same class twice, e.g. J5 when the carried attribute is
// the join attribute itself).
func canonAttrs(attrs []workflow.Attr) []workflow.Attr {
	cp := append([]workflow.Attr(nil), attrs...)
	workflow.SortAttrs(cp)
	out := cp[:0]
	for i, a := range cp {
		if i == 0 || cp[i-1] != a {
			out = append(out, a)
		}
	}
	return out
}

// Key is a comparable identity for a statistic, usable as a map key.
type Key struct {
	Kind        Kind
	Block       int16
	Set         expr.Set
	Depth       int16
	RejectInput int16
	RejectEdge  int16
	Attrs       string
}

// Key returns the statistic's comparable identity.
func (s Stat) Key() Key {
	return Key{
		Kind:        s.Kind,
		Block:       int16(s.Target.Block),
		Set:         s.Target.Set,
		Depth:       int16(s.Target.Depth),
		RejectInput: int16(s.Target.RejectInput),
		RejectEdge:  int16(s.Target.RejectEdge),
		Attrs:       workflow.AttrsString(s.Attrs),
	}
}

// Label renders the statistic in the paper's notation, e.g.
// "|Orders⋈Product|" or "H^{Orders.cid}_{Orders}".
func (s Stat) Label(b *workflow.Block) string {
	switch s.Kind {
	case Card:
		return "|" + s.Target.Label(b) + "|"
	case Distinct:
		return "|" + workflow.AttrsString(s.Attrs) + "_{" + s.Target.Label(b) + "}|"
	case HLLDistinct:
		return "|~" + workflow.AttrsString(s.Attrs) + "_{" + s.Target.Label(b) + "}|"
	case CMHist:
		return "~H^{" + workflow.AttrsString(s.Attrs) + "}_{" + s.Target.Label(b) + "}"
	default:
		return "H^{" + workflow.AttrsString(s.Attrs) + "}_{" + s.Target.Label(b) + "}"
	}
}

// CSS is a candidate statistics set: a minimal set of statistics sufficient
// to compute some other statistic (Section 3.1). Rule records which rule
// produced it; Join carries the join-attribute class for the join rules so
// the estimation layer can evaluate the rule numerically.
type CSS struct {
	// Rule is the producing rule's name ("J1", "J4", "I2(J1)", ...).
	Rule string
	// Inputs are the statistics that together compute the target. Their
	// order is rule-specific (e.g. J4: super-SE histogram, joined-relation
	// histogram, reject-variant statistic).
	Inputs []Stat
	// Join is the join-attribute class for the J and R rules (zero value
	// otherwise).
	Join workflow.Attr
}

// Keys returns the input statistics' keys.
func (c CSS) Keys() []Key {
	out := make([]Key, len(c.Inputs))
	for i, s := range c.Inputs {
		out[i] = s.Key()
	}
	return out
}

// Label renders the CSS as "rule{stat, stat, ...}".
func (c CSS) Label(b *workflow.Block) string {
	parts := make([]string, len(c.Inputs))
	for i, s := range c.Inputs {
		parts[i] = s.Label(b)
	}
	return c.Rule + "{" + strings.Join(parts, ", ") + "}"
}
