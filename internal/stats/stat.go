// Package stats defines the statistic descriptors of the paper — relation
// cardinalities |T|, distinct counts |a_T| and attribute distributions
// (exact frequency histograms) H_T^a — together with the histogram algebra
// the candidate-statistics rules evaluate: dot products (rule J1), join
// projections (J2/J3), marginalization (I1/I2) and the bucket-wise multiply
// and divide of the union–division method (J4/J5).
package stats

import (
	"fmt"
	"strings"

	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Kind is the type of a statistic.
type Kind uint8

// Statistic kinds.
const (
	// Card is a sub-expression cardinality |T|.
	Card Kind = iota
	// Distinct is the number of distinct values |a_T| of an attribute set
	// in a sub-expression.
	Distinct
	// Hist is an exact frequency distribution H_T^a over an attribute set.
	Hist
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Card:
		return "card"
	case Distinct:
		return "distinct"
	case Hist:
		return "hist"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Target identifies the relation a statistic describes. The common case is
// a (block, SE) pair. Two refinements serve specific rules:
//
//   - Depth ≥ 0 addresses a point inside a single input's pushed-down
//     operator chain: Depth d is the record-set after the first d chain
//     operators, with Depth 0 the raw source (or upstream block output).
//     The fully-cooked input — the SE itself — uses Depth -1.
//   - RejectInput/RejectEdge describe the union–division targets (J4/J5):
//     the SE with one input replaced by its reject rows with respect to a
//     join predicate (written T̄ᵢ in the paper).
type Target struct {
	// Block is the optimizable-block index the SE belongs to.
	Block int
	// Set is the SE's input bitset within the block.
	Set expr.Set
	// Depth addresses a chain point of a single-input SE; -1 means the
	// fully-cooked SE.
	Depth int
	// RejectInput is the input index whose reject rows stand in for the
	// input, or -1 for an ordinary SE.
	RejectInput int
	// RejectEdge indexes Block.Joins: the predicate defining the rejects.
	// -1 for ordinary SEs.
	RejectEdge int
}

// SE returns an ordinary (non-reject) target for the given SE in block 0;
// use BlockSE for multi-block workflows.
func SE(s expr.Set) Target { return BlockSE(0, s) }

// BlockSE returns an ordinary target for the given SE of the given block.
func BlockSE(block int, s expr.Set) Target {
	return Target{Block: block, Set: s, Depth: -1, RejectInput: -1, RejectEdge: -1}
}

// ChainPoint returns the target addressing input i of the block after its
// first depth chain operators (depth 0 = the raw source or upstream block
// output).
func ChainPoint(block, input, depth int) Target {
	return Target{Block: block, Set: expr.NewSet(input), Depth: depth, RejectInput: -1, RejectEdge: -1}
}

// RejectSE returns a target in which input rej's rows are those rejected by
// join edge e, within the given block.
func RejectSE(s expr.Set, rej, e int) Target {
	return Target{Set: s, Depth: -1, RejectInput: rej, RejectEdge: e}
}

// BlockRejectSE is RejectSE scoped to a block.
func BlockRejectSE(block int, s expr.Set, rej, e int) Target {
	return Target{Block: block, Set: s, Depth: -1, RejectInput: rej, RejectEdge: e}
}

// IsReject reports whether the target involves a reject set.
func (t Target) IsReject() bool { return t.RejectInput >= 0 }

// IsChainPoint reports whether the target addresses an intermediate point
// of an input's operator chain.
func (t Target) IsChainPoint() bool { return t.Depth >= 0 }

// Label renders the target using block input names, e.g. "Orders⋈Customer"
// or "!T1(e0)⋈T2"; chain points carry an "@depth" suffix.
func (t Target) Label(b *workflow.Block) string {
	if t.IsChainPoint() {
		return fmt.Sprintf("%s@%d", t.Set.Label(b), t.Depth)
	}
	if !t.IsReject() {
		return t.Set.Label(b)
	}
	parts := make([]string, 0, t.Set.Len())
	for _, i := range t.Set.Members() {
		name := fmt.Sprintf("R%d", i)
		if b != nil && i < len(b.Inputs) {
			name = b.Inputs[i].Name
		}
		if i == t.RejectInput {
			name = "!" + name + fmt.Sprintf("(e%d)", t.RejectEdge)
		}
		parts = append(parts, name)
	}
	return strings.Join(parts, "⋈")
}

// Stat is a statistic descriptor: the kind, the target relation, and — for
// distinct counts and histograms — the attribute set, canonicalized to
// join-equivalence class representatives so that, e.g., H_{T1}^{J12} and
// H_{T1}^{J13} coincide when T1 joins T2 and T3 on the same column.
type Stat struct {
	Kind   Kind
	Target Target
	// Attrs are the class-representative attributes, in canonical order.
	// Empty for cardinalities.
	Attrs []workflow.Attr
}

// NewCard returns the cardinality statistic |se|.
func NewCard(t Target) Stat { return Stat{Kind: Card, Target: t} }

// NewDistinct returns the distinct-count statistic |attrs_se|.
func NewDistinct(t Target, attrs ...workflow.Attr) Stat {
	return Stat{Kind: Distinct, Target: t, Attrs: canonAttrs(attrs)}
}

// NewHist returns the histogram statistic H_se^attrs.
func NewHist(t Target, attrs ...workflow.Attr) Stat {
	return Stat{Kind: Hist, Target: t, Attrs: canonAttrs(attrs)}
}

// canonAttrs sorts and de-duplicates an attribute list (rule composition
// can mention the same class twice, e.g. J5 when the carried attribute is
// the join attribute itself).
func canonAttrs(attrs []workflow.Attr) []workflow.Attr {
	cp := append([]workflow.Attr(nil), attrs...)
	workflow.SortAttrs(cp)
	out := cp[:0]
	for i, a := range cp {
		if i == 0 || cp[i-1] != a {
			out = append(out, a)
		}
	}
	return out
}

// Key is a comparable identity for a statistic, usable as a map key.
type Key struct {
	Kind        Kind
	Block       int16
	Set         expr.Set
	Depth       int16
	RejectInput int16
	RejectEdge  int16
	Attrs       string
}

// Key returns the statistic's comparable identity.
func (s Stat) Key() Key {
	return Key{
		Kind:        s.Kind,
		Block:       int16(s.Target.Block),
		Set:         s.Target.Set,
		Depth:       int16(s.Target.Depth),
		RejectInput: int16(s.Target.RejectInput),
		RejectEdge:  int16(s.Target.RejectEdge),
		Attrs:       workflow.AttrsString(s.Attrs),
	}
}

// Label renders the statistic in the paper's notation, e.g.
// "|Orders⋈Product|" or "H^{Orders.cid}_{Orders}".
func (s Stat) Label(b *workflow.Block) string {
	switch s.Kind {
	case Card:
		return "|" + s.Target.Label(b) + "|"
	case Distinct:
		return "|" + workflow.AttrsString(s.Attrs) + "_{" + s.Target.Label(b) + "}|"
	default:
		return "H^{" + workflow.AttrsString(s.Attrs) + "}_{" + s.Target.Label(b) + "}"
	}
}

// CSS is a candidate statistics set: a minimal set of statistics sufficient
// to compute some other statistic (Section 3.1). Rule records which rule
// produced it; Join carries the join-attribute class for the join rules so
// the estimation layer can evaluate the rule numerically.
type CSS struct {
	// Rule is the producing rule's name ("J1", "J4", "I2(J1)", ...).
	Rule string
	// Inputs are the statistics that together compute the target. Their
	// order is rule-specific (e.g. J4: super-SE histogram, joined-relation
	// histogram, reject-variant statistic).
	Inputs []Stat
	// Join is the join-attribute class for the J and R rules (zero value
	// otherwise).
	Join workflow.Attr
}

// Keys returns the input statistics' keys.
func (c CSS) Keys() []Key {
	out := make([]Key, len(c.Inputs))
	for i, s := range c.Inputs {
		out[i] = s.Key()
	}
	return out
}

// Label renders the CSS as "rule{stat, stat, ...}".
func (c CSS) Label(b *workflow.Block) string {
	parts := make([]string, len(c.Inputs))
	for i, s := range c.Inputs {
		parts[i] = s.Label(b)
	}
	return c.Rule + "{" + strings.Join(parts, ", ") + "}"
}
