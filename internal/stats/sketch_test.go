package stats

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// TestHLLEstimateAccuracy: at the default precision (512 registers) the
// estimate must land within ~3 standard errors of truth across a range of
// cardinalities.
func TestHLLEstimateAccuracy(t *testing.T) {
	for _, n := range []int64{0, 1, 10, 100, 1000, 10000, 200000} {
		h := NewHLL(DefaultHLLP)
		for i := int64(0); i < n; i++ {
			h.Add(i * 7)
		}
		est := h.Estimate()
		if n == 0 {
			if est != 0 {
				t.Fatalf("empty sketch estimates %d", est)
			}
			continue
		}
		relErr := math.Abs(float64(est)-float64(n)) / float64(n)
		tol := 3 * 1.04 / math.Sqrt(float64(len(h.Regs)))
		if n < 100 {
			tol = 0.25 // linear-counting range on tiny counts
		}
		if relErr > tol {
			t.Errorf("n=%d: estimate %d (rel err %.3f > %.3f)", n, est, relErr, tol)
		}
	}
}

// TestHLLMergeDeterministic: merging shards in any order and any
// partitioning must produce byte-identical registers to observing the
// stream in one sketch.
func TestHLLMergeDeterministic(t *testing.T) {
	whole := NewHLL(DefaultHLLP)
	shards := []*HLL{NewHLL(DefaultHLLP), NewHLL(DefaultHLLP), NewHLL(DefaultHLLP), NewHLL(DefaultHLLP)}
	for i := int64(0); i < 5000; i++ {
		whole.Add(i, i%97)
		shards[i%4].Add(i, i%97)
	}
	// Merge in two different orders.
	fwd := NewHLL(DefaultHLLP)
	for _, s := range shards {
		if err := fwd.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	rev := NewHLL(DefaultHLLP)
	for i := len(shards) - 1; i >= 0; i-- {
		if err := rev.Merge(shards[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(fwd.Regs, whole.Regs) || !bytes.Equal(rev.Regs, whole.Regs) {
		t.Fatal("sharded merges are not bit-identical to the unsharded sketch")
	}
	if err := fwd.Merge(NewHLL(DefaultHLLP + 1)); err == nil {
		t.Fatal("precision mismatch merged silently")
	}
}

// TestCMHMergeDeterministic is the counter-add analogue.
func TestCMHMergeDeterministic(t *testing.T) {
	spec := CMSpecFor(1, 1000)
	whole := NewCMH(spec, DefaultCMDepth, DefaultCMWidth)
	shards := []*CMH{NewCMH(spec, DefaultCMDepth, DefaultCMWidth), NewCMH(spec, DefaultCMDepth, DefaultCMWidth), NewCMH(spec, DefaultCMDepth, DefaultCMWidth)}
	for i := int64(0); i < 9000; i++ {
		v := i%1000 + 1
		whole.Observe(v)
		shards[i%3].Observe(v)
	}
	fwd := NewCMH(spec, DefaultCMDepth, DefaultCMWidth)
	for _, s := range shards {
		if err := fwd.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	rev := NewCMH(spec, DefaultCMDepth, DefaultCMWidth)
	for i := len(shards) - 1; i >= 0; i-- {
		if err := rev.Merge(shards[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range whole.Counters {
		if fwd.Counters[i] != whole.Counters[i] || rev.Counters[i] != whole.Counters[i] {
			t.Fatalf("counter %d differs across merge orders", i)
		}
	}
	if whole.Total() != 9000 {
		t.Fatalf("total %d, want 9000", whole.Total())
	}
	if err := fwd.Merge(NewCMH(spec, DefaultCMDepth+1, DefaultCMWidth)); err == nil {
		t.Fatal("layout mismatch merged silently")
	}
}

// TestCMHBucketEstimates: count-min only over-estimates, and the dot
// product tracks the exact bucketized dot product within the collision
// overhead.
func TestCMHBucketEstimates(t *testing.T) {
	spec := CMSpecFor(1, 640)
	cm := NewCMH(spec, DefaultCMDepth, DefaultCMWidth)
	h := NewHistogram(workflow.Attr{Rel: "T", Col: "a"})
	for i := int64(0); i < 6400; i++ {
		v := i%640 + 1
		cm.Observe(v)
		h.Add(v)
	}
	ex, err := Bucketize(h, spec)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < spec.N; b++ {
		if est := float64(cm.BucketEstimate(b)); est < ex.Totals[b] {
			t.Errorf("bucket %d: count-min under-estimated %v < %v", b, est, ex.Totals[b])
		}
	}
	exact, err := ApproxDotProduct(ex, ex)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := CMDotProduct(cm, cm)
	if err != nil {
		t.Fatal(err)
	}
	if approx < exact {
		t.Fatalf("cm dot product %v below exact bucketized %v", approx, exact)
	}
	if approx > 4*exact {
		t.Fatalf("cm dot product %v unusably above exact bucketized %v", approx, exact)
	}
}

// TestStoreSketchShapes: the registry-driven puts enforce kind/shape
// agreement in both directions.
func TestStoreSketchShapes(t *testing.T) {
	a := workflow.Attr{Rel: "T", Col: "a"}
	st := NewStore()
	hllStat := NewHLLDistinct(SE(expr.NewSet(0)), a)
	cmStat := NewCMHist(SE(expr.NewSet(0)), a)
	var ke *KindError
	if err := st.PutScalar(hllStat, 1); !errors.As(err, &ke) {
		t.Fatalf("PutScalar on hll stat: %v", err)
	}
	if err := st.PutHLL(NewDistinct(SE(expr.NewSet(0)), a), NewHLL(DefaultHLLP)); !errors.As(err, &ke) {
		t.Fatalf("PutHLL on distinct stat: %v", err)
	}
	if err := st.PutHLLOnce(hllStat, NewHLL(DefaultHLLP)); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCMOnce(cmStat, NewCMH(CMSpecFor(1, 10), 2, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.HLLSketch(hllStat); err != nil {
		t.Fatal(err)
	}
	if _, err := st.CMSketch(cmStat); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Scalar(hllStat); err == nil {
		t.Fatal("Scalar read of an HLL value succeeded")
	}
	if st.MemoryUnits() != (1<<DefaultHLLP)/8+2*8 {
		t.Fatalf("memory units %d", st.MemoryUnits())
	}
}

// TestApproxVariant pins the exact↔approx pairing rules.
func TestApproxVariant(t *testing.T) {
	a := workflow.Attr{Rel: "T", Col: "a"}
	b := workflow.Attr{Rel: "T", Col: "b"}
	if _, ok := ApproxVariant(NewCard(SE(expr.NewSet(0)))); ok {
		t.Fatal("card has no sketch variant")
	}
	v, ok := ApproxVariant(NewDistinct(SE(expr.NewSet(0)), a, b))
	if !ok || v.Kind != HLLDistinct || len(v.Attrs) != 2 {
		t.Fatalf("distinct variant = %+v, %v", v, ok)
	}
	if back, ok := ExactVariant(v); !ok || back.Kind != Distinct {
		t.Fatalf("exact variant = %+v, %v", back, ok)
	}
	if _, ok := ApproxVariant(NewHist(SE(expr.NewSet(0)), a, b)); ok {
		t.Fatal("joint histogram must not have a cm variant")
	}
	if _, ok := ApproxVariant(NewHist(RejectSE(expr.NewSet(0, 1), 0, 0), a)); ok {
		t.Fatal("reject-target histogram must not have a cm variant")
	}
	if hv, ok := ApproxVariant(NewHist(SE(expr.NewSet(0)), a)); !ok || hv.Kind != CMHist {
		t.Fatalf("single-attr histogram variant = %+v, %v", hv, ok)
	}
}

// TestDriftCrossTier: drift between a sketch generation and an exact
// generation of the same target pairs the sibling kinds — in both
// orderings — instead of reporting disjoint stores.
func TestDriftCrossTier(t *testing.T) {
	a := workflow.Attr{Rel: "T", Col: "a"}
	tgt := SE(expr.NewSet(0))

	exact := NewStore()
	exact.PutScalar(NewDistinct(tgt, a), 1000)
	h := NewHistogram(a)
	for i := int64(1); i <= 500; i++ {
		h.Inc([]int64{i}, 4)
	}
	exact.PutHist(NewHist(tgt, a), h)

	approx := NewStore()
	hll := NewHLL(DefaultHLLP)
	for i := int64(0); i < 1000; i++ {
		hll.Add(i)
	}
	approx.PutHLL(NewHLLDistinct(tgt, a), hll)
	cm := NewCMH(CMSpecFor(1, 500), DefaultCMDepth, DefaultCMWidth)
	for i := int64(1); i <= 500; i++ {
		cm.Inc(i, 4)
	}
	approx.PutCM(NewCMHist(tgt, a), cm)

	for _, tc := range []struct {
		name     string
		old, new *Store
	}{
		{"exact-then-sketch", exact, approx},
		{"sketch-then-exact", approx, exact},
	} {
		d := MeasureDrift(tc.old, tc.new)
		if d.Shared != 2 || d.OnlyOld != 0 || d.OnlyNew != 0 {
			t.Fatalf("%s: shared=%d onlyOld=%d onlyNew=%d, want 2/0/0", tc.name, d.Shared, d.OnlyOld, d.OnlyNew)
		}
		// The same data observed through both tiers: drift must be small
		// (sketch error only), far below the reoptimization threshold.
		if d.MaxRel > 0.2 {
			t.Fatalf("%s: cross-tier drift %.3f on identical data", tc.name, d.MaxRel)
		}
	}

	// A genuinely shifted sketch generation must still register drift.
	shifted := NewStore()
	hll2 := NewHLL(DefaultHLLP)
	for i := int64(0); i < 100; i++ {
		hll2.Add(i)
	}
	shifted.PutHLL(NewHLLDistinct(tgt, a), hll2)
	if d := MeasureDrift(exact, shifted); d.MaxRel < 0.5 {
		t.Fatalf("10x distinct shift reports drift %.3f", d.MaxRel)
	}
}

// TestPersistSketchRoundTrip: version-2 streams round-trip sketches
// bit-identically, and v1 streams still load.
func TestPersistSketchRoundTrip(t *testing.T) {
	st := sampleSketchStore()
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != st.Len() {
		t.Fatalf("lost values: %d vs %d", back.Len(), st.Len())
	}
	for _, v := range st.Values() {
		got, ok := back.Lookup(v.Stat)
		if !ok {
			t.Fatalf("missing %v", v.Stat.Key())
		}
		switch {
		case v.HLL != nil:
			if got.HLL == nil || got.HLL.P != v.HLL.P || !bytes.Equal(got.HLL.Regs, v.HLL.Regs) {
				t.Fatalf("hll %v not bit-identical", v.Stat.Key())
			}
			if !got.Approx {
				t.Fatalf("hll %v lost its approx tag", v.Stat.Key())
			}
		case v.CM != nil:
			if got.CM == nil || got.CM.Spec != v.CM.Spec || got.CM.Depth != v.CM.Depth || got.CM.Width != v.CM.Width {
				t.Fatalf("cm %v layout differs", v.Stat.Key())
			}
			for i := range v.CM.Counters {
				if got.CM.Counters[i] != v.CM.Counters[i] {
					t.Fatalf("cm %v counter %d differs", v.Stat.Key(), i)
				}
			}
		}
	}
}

// TestPersistUnknownKindTyped: the forward-compatibility rejection carries
// the unknown kind byte and the stream version.
func TestPersistUnknownKindTyped(t *testing.T) {
	// v2 header, one statistic, kind byte 9, padded past the minimal value
	// length so the size pre-check does not fire first.
	in := append([]byte("ETLSTAT\x02\x00\x00\x00\x01\x00\x00\x00\x09"), make([]byte, 64)...)
	_, err := ReadStore(bytes.NewReader(in))
	var fe *FormatError
	if !errors.As(err, &fe) || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want *FormatError wrapping ErrCorrupt, got %v", err)
	}
	if fe.BadKind != 9 || fe.Version != 2 {
		t.Fatalf("FormatError carries kind %d version %d, want 9/2", fe.BadKind, fe.Version)
	}
	// A sketch kind in a v1 stream is plain corruption, not a future kind.
	in = append([]byte("ETLSTAT\x01\x00\x00\x00\x01\x00\x00\x00\x03"), make([]byte, 64)...)
	_, err = ReadStore(bytes.NewReader(in))
	if !errors.As(err, &fe) {
		t.Fatalf("want *FormatError, got %v", err)
	}
	if fe.BadKind != -1 {
		t.Fatalf("v1 sketch-kind rejection claims unknown kind %d", fe.BadKind)
	}
}
