package stats

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/iotest"
	"testing/quick"

	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/workflow"
)

func sampleStore() *Store {
	a := workflow.Attr{Rel: "Orders", Col: "cid"}
	b := workflow.Attr{Rel: "Orders", Col: "pid"}
	st := NewStore()
	st.PutScalar(NewCard(SE(expr.NewSet(0))), 12345)
	st.PutScalar(NewCard(BlockSE(2, expr.NewSet(0, 1))), 77)
	st.PutScalar(NewDistinct(SE(expr.NewSet(1)), a), 42)
	st.PutScalar(NewCard(BlockRejectSE(0, expr.NewSet(0, 2), 0, 1)), 9)
	st.PutScalar(NewCard(ChainPoint(1, 0, 2)), 3)
	h := NewHistogram(a, b)
	h.Inc([]int64{1, 10}, 5)
	h.Inc([]int64{-3, 20}, 2)
	h.Inc([]int64{7, 10}, 1)
	st.PutHist(NewHist(SE(expr.NewSet(0)), a, b), h)
	return st
}

// sampleSketchStore mixes exact values with both version-2 sketch shapes.
func sampleSketchStore() *Store {
	a := workflow.Attr{Rel: "Orders", Col: "cid"}
	st := NewStore()
	st.PutScalar(NewCard(SE(expr.NewSet(0))), 12345)
	hll := NewHLL(DefaultHLLP)
	for i := int64(0); i < 200; i++ {
		hll.Add(i)
	}
	st.PutHLL(NewHLLDistinct(SE(expr.NewSet(0)), a), hll)
	cm := NewCMH(CMSpecFor(1, 500), DefaultCMDepth, DefaultCMWidth)
	for i := int64(0); i < 300; i++ {
		cm.Observe(i%500 + 1)
	}
	st.PutCM(NewCMHist(SE(expr.NewSet(1)), a), cm)
	return st
}

func TestPersistRoundTrip(t *testing.T) {
	st := sampleStore()
	var buf bytes.Buffer
	n, err := st.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadStore(&buf)
	if err != nil {
		t.Fatalf("ReadStore: %v", err)
	}
	if back.Len() != st.Len() {
		t.Fatalf("round trip lost values: %d vs %d", back.Len(), st.Len())
	}
	for _, v := range st.Values() {
		if v.Hist == nil {
			got, err := back.Scalar(v.Stat)
			if err != nil || got != v.Scalar {
				t.Errorf("scalar %v: got %d, %v; want %d", v.Stat.Key(), got, err, v.Scalar)
			}
			continue
		}
		got, err := back.Hist(v.Stat)
		if err != nil {
			t.Errorf("hist %v: %v", v.Stat.Key(), err)
			continue
		}
		if got.Buckets() != v.Hist.Buckets() || got.Total() != v.Hist.Total() {
			t.Errorf("hist %v: %d/%d buckets, %d/%d total",
				v.Stat.Key(), got.Buckets(), v.Hist.Buckets(), got.Total(), v.Hist.Total())
		}
		v.Hist.Each(func(vals []int64, f int64) {
			if got.Freq(vals...) != f {
				t.Errorf("hist %v: bucket %v = %d, want %d", v.Stat.Key(), vals, got.Freq(vals...), f)
			}
		})
	}
}

func TestPersistDeterministic(t *testing.T) {
	st := sampleStore()
	var a, b bytes.Buffer
	if _, err := st.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialization not deterministic")
	}
}

func TestPersistErrors(t *testing.T) {
	if _, err := ReadStore(strings.NewReader("")); err == nil {
		t.Fatal("empty input: want error")
	}
	if _, err := ReadStore(strings.NewReader("NOTMAGIC-----")); err == nil {
		t.Fatal("bad magic: want error")
	}
	// Truncated stream after a valid header.
	st := sampleStore()
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadStore(bytes.NewReader(truncated)); err == nil {
		t.Fatal("truncated input: want error")
	}
}

// validStream serializes the sample store.
func validStream(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := sampleStore().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// wantCorrupt asserts the stream is rejected with a typed FormatError.
func wantCorrupt(t *testing.T, in []byte, what string) *FormatError {
	t.Helper()
	_, err := ReadStore(bytes.NewReader(in))
	if err == nil {
		t.Fatalf("%s: want error, got nil", what)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("%s: error not tagged ErrCorrupt: %v", what, err)
	}
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("%s: error is not a *FormatError: %v", what, err)
	}
	return fe
}

func TestReadStoreRejectsCorruptStreams(t *testing.T) {
	valid := validStream(t)

	// Typed truncation errors at every prefix length.
	for cut := 0; cut < len(valid); cut++ {
		fe := wantCorrupt(t, valid[:cut], "truncation")
		if fe.Offset > int64(cut) {
			t.Fatalf("cut %d: offset %d past available bytes", cut, fe.Offset)
		}
	}

	// Trailing data after the declared values.
	wantCorrupt(t, append(append([]byte{}, valid...), 0), "trailing byte")

	// A count header larger than the stream can possibly hold is rejected
	// immediately (seekable/sized input), at the header, before any value
	// parsing.
	hostile := append([]byte{}, valid...)
	hostile[11], hostile[12], hostile[13], hostile[14] = 0xff, 0xff, 0x00, 0x00 // count = 65535
	fe := wantCorrupt(t, hostile, "oversized count")
	if fe.Offset != 15 {
		t.Fatalf("oversized count detected at byte %d, want 15 (end of header)", fe.Offset)
	}
	if !strings.Contains(fe.Msg, "count 65535") {
		t.Fatalf("oversized count message %q does not name the count", fe.Msg)
	}

	// Counts beyond the absolute cap fail even when the size is unknown.
	capped := append([]byte("ETLSTAT\x01\x00\x00\x00"), 0xff, 0xff, 0xff, 0xff)
	if _, err := ReadStore(iotest.OneByteReader(bytes.NewReader(capped))); err == nil {
		t.Fatal("capped count on size-unknown stream: want error")
	}

	// Unknown statistic kind.
	bad := append([]byte{}, valid...)
	bad[15] = 0x7f
	wantCorrupt(t, bad, "unknown kind")

	// Duplicate / out-of-order values: duplicate the first value bytes in
	// a two-value stream.
	st := NewStore()
	st.PutScalar(NewCard(SE(expr.NewSet(0))), 1)
	var one bytes.Buffer
	if _, err := st.WriteTo(&one); err != nil {
		t.Fatal(err)
	}
	val := one.Bytes()[15:] // the single value's encoding
	dup := append([]byte("ETLSTAT\x01\x00\x00\x00\x02\x00\x00\x00"), val...)
	dup = append(dup, val...)
	wantCorrupt(t, dup, "duplicate statistic")
}

func TestReadStoreRejectsNonCanonicalForm(t *testing.T) {
	// Zero-frequency bucket: hand-craft a single-histogram stream and zero
	// the frequency of its only bucket.
	a := workflow.Attr{Rel: "T", Col: "a"}
	st := NewStore()
	h := NewHistogram(a)
	h.Inc([]int64{5}, 3)
	st.PutHist(NewHist(SE(expr.NewSet(0)), a), h)
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// The frequency is the last 8 bytes.
	zeroed := append([]byte{}, b...)
	copy(zeroed[len(zeroed)-8:], make([]byte, 8))
	wantCorrupt(t, zeroed, "zero-frequency bucket")

	// Shape flag contradicting the kind: flip the histogram statistic's
	// shape flag (the byte before the bucket count, i.e. 13 bytes from the
	// end: flag + count + one bucket value + freq).
	flipped := append([]byte{}, b...)
	flipped[len(flipped)-21] = 0
	wantCorrupt(t, flipped, "shape flag contradiction")
}

// TestReadStoreCanonical: the reader accepts exactly the canonical
// encoding, so read-then-write reproduces the input bytes.
func TestReadStoreCanonical(t *testing.T) {
	valid := validStream(t)
	st, err := ReadStore(bytes.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := st.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), valid) {
		t.Fatal("read-then-write changed the stream")
	}
}

// TestReadStoreSizeUnknown: the same valid stream parses through a reader
// that exposes neither Len nor Seek.
func TestReadStoreSizeUnknown(t *testing.T) {
	valid := validStream(t)
	st, err := ReadStore(iotest.OneByteReader(bytes.NewReader(valid)))
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != sampleStore().Len() {
		t.Fatalf("size-unknown parse lost values: %d", st.Len())
	}
}

// failAfterWriter accepts the first limit bytes, then fails every write.
type failAfterWriter struct {
	limit int
	n     int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		room := w.limit - w.n
		if room < 0 {
			room = 0
		}
		w.n += room
		return room, errFull
	}
	w.n += len(p)
	return len(p), nil
}

var errFull = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "device full" }

func TestWriteToPropagatesWriteError(t *testing.T) {
	st := sampleStore()
	var ref bytes.Buffer
	if _, err := st.WriteTo(&ref); err != nil {
		t.Fatal(err)
	}
	// Fail at every prefix length: the error must always surface, and the
	// reported byte count must match what the sink actually accepted —
	// buffered-but-unflushed bytes must not be counted.
	for limit := 0; limit < ref.Len(); limit += 7 {
		w := &failAfterWriter{limit: limit}
		n, err := st.WriteTo(w)
		if err == nil {
			t.Fatalf("limit %d: want write error, got nil", limit)
		}
		if n != int64(w.n) {
			t.Fatalf("limit %d: WriteTo reported %d bytes, sink accepted %d", limit, n, w.n)
		}
	}
}

func TestPersistQuickScalars(t *testing.T) {
	f := func(vals []int64) bool {
		st := NewStore()
		for i, v := range vals {
			if i > 30 {
				break
			}
			st.PutScalar(NewCard(BlockSE(i%3, expr.NewSet(i%8))), v)
		}
		var buf bytes.Buffer
		if _, err := st.WriteTo(&buf); err != nil {
			return false
		}
		back, err := ReadStore(&buf)
		if err != nil || back.Len() != st.Len() {
			return false
		}
		for _, v := range st.Values() {
			got, err := back.Scalar(v.Stat)
			if err != nil || got != v.Scalar {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDriftMeasurement(t *testing.T) {
	a := workflow.Attr{Rel: "T", Col: "a"}
	mk := func(card int64, histVals map[int64]int64) *Store {
		st := NewStore()
		st.PutScalar(NewCard(SE(expr.NewSet(0))), card)
		h := NewHistogram(a)
		for v, f := range histVals {
			h.Inc([]int64{v}, f)
		}
		st.PutHist(NewHist(SE(expr.NewSet(0)), a), h)
		return st
	}
	old := mk(100, map[int64]int64{1: 50, 2: 50})

	// Identical stores: zero drift.
	d := MeasureDrift(old, mk(100, map[int64]int64{1: 50, 2: 50}))
	if d.MaxRel != 0 || d.Shared != 2 {
		t.Fatalf("identical drift = %+v", d)
	}
	if d.Exceeds(0.01) {
		t.Fatal("identical stores should not exceed any threshold")
	}

	// Cardinality doubled: 0.5 relative change.
	d = MeasureDrift(old, mk(200, map[int64]int64{1: 50, 2: 50}))
	if d.MaxRel != 0.5 {
		t.Fatalf("doubled card drift = %v, want 0.5", d.MaxRel)
	}
	if !d.Exceeds(0.3) {
		t.Fatal("0.5 drift must exceed 0.3")
	}

	// Completely shifted distribution: histogram drift near 1.
	d = MeasureDrift(old, mk(100, map[int64]int64{7: 50, 8: 50}))
	if d.MaxRel < 0.99 {
		t.Fatalf("disjoint hist drift = %v, want ≈1", d.MaxRel)
	}

	// Differing instrumentation is counted, not compared.
	other := NewStore()
	other.PutScalar(NewCard(SE(expr.NewSet(5))), 1)
	d = MeasureDrift(old, other)
	if d.Shared != 0 || d.OnlyOld != 2 || d.OnlyNew != 1 {
		t.Fatalf("disjoint stores drift = %+v", d)
	}
}
