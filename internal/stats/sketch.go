package stats

import (
	"fmt"
	"math"
)

// The sketch tier: bounded-memory approximate observers whose merges are
// deterministic and order-independent, so the engines' shard-then-merge
// discipline produces bit-identical sketches at any worker count.
//
//   - HLL is a HyperLogLog register file backing the HLLDistinct kind;
//     shards combine by register-wise max.
//   - CMH is a count-min sketch over the buckets of a BucketSpec backing
//     the CMHist kind; shards combine by counter-wise add.
//
// Both hash through the same deterministic FNV-1a/splitmix pipeline with
// no per-process seeding, so a sketch observed on one host equals the
// sketch observed on another.

// DefaultHLLP is the default HyperLogLog precision: 2^9 = 512 single-byte
// registers (~4.6% standard error), small enough that an HLL upload stays
// far below an exact distinct observation's per-value footprint.
const DefaultHLLP = 9

// Count-min defaults: the sketch bucketizes values through a BucketSpec of
// DefaultCMBuckets buckets and maintains DefaultCMDepth hashed counter rows
// of DefaultCMWidth columns each.
const (
	DefaultCMDepth   = 3
	DefaultCMWidth   = 64
	DefaultCMBuckets = 64
)

// hashVals hashes an attribute tuple deterministically: FNV-1a over the
// little-endian bytes of each value, finished with the splitmix64 mixer so
// the low bits HLL consumes are well distributed.
func hashVals(vals []int64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range vals {
		x := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= (x >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// HLL is a HyperLogLog distinct-count sketch: 2^P single-byte registers,
// each holding the maximum leading-zero rank observed in its substream.
type HLL struct {
	// P is the precision (register-index bits); 2^P registers.
	P uint8
	// Regs holds one rank byte per register.
	Regs []byte
}

// hllPMin/hllPMax bound the accepted precision (16 to 65536 registers).
const (
	hllPMin = 4
	hllPMax = 16
)

// NewHLL returns an empty sketch with 2^p registers; p is clamped to the
// supported range.
func NewHLL(p uint8) *HLL {
	if p < hllPMin {
		p = hllPMin
	}
	if p > hllPMax {
		p = hllPMax
	}
	return &HLL{P: p, Regs: make([]byte, 1<<p)}
}

// AddHash folds one pre-hashed observation into the sketch.
func (h *HLL) AddHash(x uint64) {
	idx := x >> (64 - h.P)
	rest := x<<h.P | 1<<(h.P-1) // low bits; sentinel caps the rank
	rank := byte(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > h.Regs[idx] {
		h.Regs[idx] = rank
	}
}

// Add folds one attribute tuple into the sketch.
func (h *HLL) Add(vals ...int64) { h.AddHash(hashVals(vals)) }

// Merge folds another sketch in by register-wise max — commutative,
// associative and idempotent, so shard merge order never matters.
func (h *HLL) Merge(o *HLL) error {
	if o == nil {
		return nil
	}
	if h.P != o.P || len(h.Regs) != len(o.Regs) {
		return fmt.Errorf("stats: HLL precision mismatch: 2^%d vs 2^%d registers", h.P, o.P)
	}
	for i, r := range o.Regs {
		if r > h.Regs[i] {
			h.Regs[i] = r
		}
	}
	return nil
}

// Estimate returns the sketch's distinct-count estimate: the standard
// HyperLogLog harmonic mean with linear counting for the small range.
func (h *HLL) Estimate() int64 {
	m := float64(len(h.Regs))
	var sum float64
	zeros := 0
	for _, r := range h.Regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Linear counting: more accurate while registers are sparse.
		est = m * math.Log(m/float64(zeros))
	}
	if est < 0 {
		return 0
	}
	return int64(est + 0.5)
}

// Clone returns a deep copy.
func (h *HLL) Clone() *HLL {
	cp := &HLL{P: h.P, Regs: make([]byte, len(h.Regs))}
	copy(cp.Regs, h.Regs)
	return cp
}

// MemoryUnits prices the sketch in the cost model's 8-byte units.
func (h *HLL) MemoryUnits() int64 { return int64((len(h.Regs) + 7) / 8) }

// CMH is a count-min sketch over histogram buckets: values map through
// Spec to a bucket index, and each of Depth hashed rows of Width counters
// accumulates the bucket's frequency. Point queries take the row minimum,
// so collisions only ever over-estimate.
type CMH struct {
	// Spec is the equi-width bucketization the sketch summarizes.
	Spec BucketSpec
	// Depth and Width are the counter-matrix dimensions.
	Depth, Width int
	// Counters holds Depth rows of Width int64 counters, row-major.
	Counters []int64
}

// NewCMH returns an empty sketch over the given bucketization.
func NewCMH(spec BucketSpec, depth, width int) *CMH {
	if depth < 1 {
		depth = 1
	}
	if width < 1 {
		width = 1
	}
	return &CMH{Spec: spec, Depth: depth, Width: width, Counters: make([]int64, depth*width)}
}

// CMSpecFor returns the default bucketization for a value domain [lo, hi]:
// DefaultCMBuckets equi-width buckets (fewer when the domain is smaller).
func CMSpecFor(lo, hi int64) BucketSpec { return NewBucketSpec(lo, hi, DefaultCMBuckets) }

// cmCol maps a bucket index to row d's counter column. Each row uses a
// distinct deterministic permutation seed.
func (c *CMH) cmCol(d, b int) int {
	return int(mix64(uint64(b)*0x9e3779b97f4a7c15+uint64(d)+1) % uint64(c.Width))
}

// Observe folds one value into the sketch.
func (c *CMH) Observe(v int64) { c.Inc(v, 1) }

// Inc adds delta to the value's bucket in every row.
func (c *CMH) Inc(v, delta int64) {
	b := c.Spec.Bucket(v)
	for d := 0; d < c.Depth; d++ {
		c.Counters[d*c.Width+c.cmCol(d, b)] += delta
	}
}

// BucketEstimate returns the count-min estimate for one bucket: the
// minimum of the bucket's counters across rows.
func (c *CMH) BucketEstimate(b int) int64 {
	min := c.Counters[c.cmCol(0, b)]
	for d := 1; d < c.Depth; d++ {
		if v := c.Counters[d*c.Width+c.cmCol(d, b)]; v < min {
			min = v
		}
	}
	return min
}

// Total returns the exact total frequency (every row sums all increments,
// so any row's sum is the total).
func (c *CMH) Total() int64 {
	var t int64
	for i := 0; i < c.Width; i++ {
		t += c.Counters[i]
	}
	return t
}

// Merge folds another sketch in by counter-wise add — commutative and
// associative, so shard merge order never matters.
func (c *CMH) Merge(o *CMH) error {
	if o == nil {
		return nil
	}
	if c.Spec != o.Spec || c.Depth != o.Depth || c.Width != o.Width {
		return fmt.Errorf("stats: count-min layout mismatch: %v/%dx%d vs %v/%dx%d",
			c.Spec, c.Depth, c.Width, o.Spec, o.Depth, o.Width)
	}
	for i, v := range o.Counters {
		c.Counters[i] += v
	}
	return nil
}

// Clone returns a deep copy.
func (c *CMH) Clone() *CMH {
	cp := &CMH{Spec: c.Spec, Depth: c.Depth, Width: c.Width, Counters: make([]int64, len(c.Counters))}
	copy(cp.Counters, c.Counters)
	return cp
}

// MemoryUnits prices the sketch in the cost model's 8-byte units.
func (c *CMH) MemoryUnits() int64 { return int64(c.Depth) * int64(c.Width) }

// Approx expands the sketch into its bucketized-histogram view: one total
// per bucket, queryable by the same ApproxDotProduct the experiments use.
func (c *CMH) Approx() *Approx {
	a := NewApprox(c.Spec)
	for b := 0; b < c.Spec.N; b++ {
		a.Totals[b] = float64(c.BucketEstimate(b))
	}
	return a
}

// CMDotProduct evaluates rule J1 over two count-min sketches of the same
// bucketization: the bucket-wise product divided by bucket width, exactly
// as ApproxDotProduct does for exact bucketized histograms.
func CMDotProduct(c1, c2 *CMH) (float64, error) {
	if c1.Spec != c2.Spec {
		return 0, fmt.Errorf("stats: dot product over mismatched bucket specs %v vs %v", c1.Spec, c2.Spec)
	}
	return ApproxDotProduct(c1.Approx(), c2.Approx())
}
