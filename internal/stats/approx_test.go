package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/essential-stats/etlopt/internal/workflow"
)

func TestBucketSpec(t *testing.T) {
	spec := NewBucketSpec(1, 100, 10)
	if spec.N != 10 || spec.Width() != 10 {
		t.Fatalf("spec = %+v width %v", spec, spec.Width())
	}
	if spec.Bucket(1) != 0 || spec.Bucket(10) != 0 || spec.Bucket(11) != 1 || spec.Bucket(100) != 9 {
		t.Fatalf("bucket boundaries wrong: %d %d %d %d",
			spec.Bucket(1), spec.Bucket(10), spec.Bucket(11), spec.Bucket(100))
	}
	// Out-of-range clamps.
	if spec.Bucket(-5) != 0 || spec.Bucket(1000) != 9 {
		t.Fatal("clamping broken")
	}
	// More buckets than values collapses to the domain size.
	small := NewBucketSpec(1, 5, 100)
	if small.N != 5 {
		t.Fatalf("N = %d, want 5", small.N)
	}
	// Swapped bounds normalize.
	sw := NewBucketSpec(10, 1, 3)
	if sw.Lo != 1 || sw.Hi != 10 {
		t.Fatalf("swapped bounds not normalized: %+v", sw)
	}
}

// TestBucketSpecExtremeDomains: hi-lo+1 overflows int64 for extreme
// domains; the spec must keep the requested bucket count, a positive
// finite width, and well-ordered bucketing rather than clamping N through
// a wrapped (negative) size.
func TestBucketSpecExtremeDomains(t *testing.T) {
	specs := []BucketSpec{
		NewBucketSpec(math.MinInt64, math.MaxInt64, 10), // full int64 domain
		NewBucketSpec(math.MinInt64, 0, 7),              // hi-lo+1 = MinInt64 (wraps)
		NewBucketSpec(math.MinInt64, -2, 5),
		NewBucketSpec(-1, math.MaxInt64, 4),
		NewBucketSpec(0, math.MaxInt64, 16), // size = MaxInt64+1 (wraps)
	}
	wantN := []int{10, 7, 5, 4, 16}
	for i, spec := range specs {
		if spec.N != wantN[i] {
			t.Fatalf("spec %d: N = %d, want %d (overflowed clamp?)", i, spec.N, wantN[i])
		}
		w := spec.Width()
		if !(w > 0) || math.IsInf(w, 0) || math.IsNaN(w) {
			t.Fatalf("spec %d: width = %v", i, w)
		}
		if got := spec.Bucket(spec.Lo); got != 0 {
			t.Fatalf("spec %d: Bucket(Lo) = %d, want 0", i, got)
		}
		if got := spec.Bucket(spec.Hi); got != spec.N-1 {
			t.Fatalf("spec %d: Bucket(Hi) = %d, want %d", i, got, spec.N-1)
		}
		// Bucketing is monotone and in range across the domain.
		probes := []int64{spec.Lo, spec.Lo + 1, spec.Lo/2 + spec.Hi/2, spec.Hi - 1, spec.Hi}
		prev := 0
		for _, v := range probes {
			idx := spec.Bucket(v)
			if idx < 0 || idx >= spec.N {
				t.Fatalf("spec %d: Bucket(%d) = %d out of [0,%d)", i, v, idx, spec.N)
			}
			if idx < prev {
				t.Fatalf("spec %d: bucketing not monotone at %d: %d < %d", i, v, idx, prev)
			}
			prev = idx
		}
	}

	// Degenerate single-value domains at the extremes collapse to one
	// bucket.
	for _, v := range []int64{math.MinInt64, math.MaxInt64, 0} {
		s := NewBucketSpec(v, v, 42)
		if s.N != 1 {
			t.Fatalf("single-value domain at %d: N = %d, want 1", v, s.N)
		}
		if s.Bucket(v) != 0 {
			t.Fatalf("single-value domain at %d: Bucket = %d", v, s.Bucket(v))
		}
	}

	// Non-positive requested counts still clamp up to 1.
	if s := NewBucketSpec(math.MinInt64, math.MaxInt64, -3); s.N != 1 {
		t.Fatalf("negative N on extreme domain: N = %d, want 1", s.N)
	}
}

func TestSubInt64(t *testing.T) {
	cases := []struct {
		a, b int64
		want int64
		err  bool
	}{
		{5, 3, 2, false},
		{3, 5, -2, false},
		{math.MaxInt64, math.MaxInt64, 0, false},
		{math.MinInt64, math.MinInt64, 0, false},
		{math.MaxInt64, math.MinInt64, 0, true},
		{math.MinInt64, math.MaxInt64, 0, true},
		{math.MinInt64, 1, 0, true},
		{0, math.MinInt64, 0, true},
		{-2, math.MaxInt64, 0, true},
		{math.MaxInt64, -1, 0, true},
		{math.MaxInt64 - 1, -1, math.MaxInt64, false},
	}
	for _, c := range cases {
		got, err := SubInt64(c.a, c.b)
		if c.err {
			if err == nil {
				t.Errorf("SubInt64(%d, %d): want overflow, got %d", c.a, c.b, got)
			} else if !errors.Is(err, ErrOverflow) {
				t.Errorf("SubInt64(%d, %d): error not tagged ErrOverflow: %v", c.a, c.b, err)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("SubInt64(%d, %d) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
	}
}

func TestBucketizeAndTotals(t *testing.T) {
	a := workflow.Attr{Rel: "T", Col: "a"}
	h := NewHistogram(a)
	for v := int64(1); v <= 100; v++ {
		h.Inc([]int64{v}, v%3+1)
	}
	spec := NewBucketSpec(1, 100, 4)
	ap, err := Bucketize(h, spec)
	if err != nil {
		t.Fatalf("Bucketize: %v", err)
	}
	if ap.Total() != float64(h.Total()) {
		t.Fatalf("Total = %v, want %v", ap.Total(), h.Total())
	}
	if ap.Memory() != 4 {
		t.Fatalf("Memory = %d, want 4", ap.Memory())
	}
	h2 := NewHistogram(a, workflow.Attr{Rel: "T", Col: "b"})
	if _, err := Bucketize(h2, spec); err == nil {
		t.Fatal("Bucketize of 2-attr histogram: want error")
	}
}

func TestApproxDotProductExactAtFullResolution(t *testing.T) {
	// One bucket per value ⇒ the approximate estimate equals rule J1.
	a := workflow.Attr{Rel: "T", Col: "a"}
	rng := rand.New(rand.NewSource(5))
	h1 := NewHistogram(a)
	h2 := NewHistogram(a)
	for i := 0; i < 3000; i++ {
		h1.Add(int64(rng.Intn(50) + 1))
		h2.Add(int64(rng.Intn(50) + 1))
	}
	spec := NewBucketSpec(1, 50, 50)
	a1, _ := Bucketize(h1, spec)
	a2, _ := Bucketize(h2, spec)
	est, err := ApproxDotProduct(a1, a2)
	if err != nil {
		t.Fatalf("ApproxDotProduct: %v", err)
	}
	exact, _ := DotProduct(h1, h2)
	if math.Abs(est-float64(exact)) > 1e-6 {
		t.Fatalf("full-resolution estimate %v != exact %v", est, exact)
	}
}

func TestApproxErrorShrinksWithBuckets(t *testing.T) {
	// On skewed data the estimate improves monotonically-ish as buckets
	// grow; at least the coarsest must be worse than the finest.
	a := workflow.Attr{Rel: "T", Col: "a"}
	rng := rand.New(rand.NewSource(9))
	h1 := NewHistogram(a)
	h2 := NewHistogram(a)
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(100)*rng.Intn(100)/100 + 1) // skewed toward low values
		h1.Add(v)
		h2.Add(int64(rng.Intn(100) + 1))
	}
	exact, _ := DotProduct(h1, h2)
	var errs []float64
	for _, n := range []int{2, 100} {
		spec := NewBucketSpec(1, 100, n)
		a1, _ := Bucketize(h1, spec)
		a2, _ := Bucketize(h2, spec)
		est, err := ApproxDotProduct(a1, a2)
		if err != nil {
			t.Fatalf("ApproxDotProduct(%d): %v", n, err)
		}
		errs = append(errs, RelativeError(est, exact))
	}
	if errs[1] > errs[0] {
		t.Fatalf("error grew with resolution: %v", errs)
	}
	if errs[1] > 1e-9 {
		t.Fatalf("full resolution should be exact, err = %v", errs[1])
	}
}

func TestApproxSpecMismatch(t *testing.T) {
	a1 := NewApprox(NewBucketSpec(1, 10, 2))
	a2 := NewApprox(NewBucketSpec(1, 20, 2))
	if _, err := ApproxDotProduct(a1, a2); err == nil {
		t.Fatal("mismatched specs: want error")
	}
}

func TestApproxStreamingAdd(t *testing.T) {
	spec := NewBucketSpec(1, 10, 5)
	ap := NewApprox(spec)
	for v := int64(1); v <= 10; v++ {
		ap.Add(v)
	}
	if ap.Total() != 10 {
		t.Fatalf("Total = %v", ap.Total())
	}
	for i, f := range ap.Totals {
		if f != 2 {
			t.Fatalf("bucket %d = %v, want 2", i, f)
		}
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(110, 100) != 0.1 {
		t.Fatal("basic relative error wrong")
	}
	if RelativeError(0, 0) != 0 {
		t.Fatal("0/0 should be 0")
	}
	if !math.IsInf(RelativeError(5, 0), 1) {
		t.Fatal("x/0 should be +Inf")
	}
}

func TestBucketTotalPreservationProperty(t *testing.T) {
	a := workflow.Attr{Rel: "T", Col: "a"}
	f := func(vals []uint8, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		h := NewHistogram(a)
		for _, v := range vals {
			h.Add(int64(v%50) + 1)
		}
		spec := NewBucketSpec(1, 50, n)
		ap, err := Bucketize(h, spec)
		if err != nil {
			return false
		}
		return ap.Total() == float64(h.Total())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
