package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/essential-stats/etlopt/internal/workflow"
)

func TestBucketSpec(t *testing.T) {
	spec := NewBucketSpec(1, 100, 10)
	if spec.N != 10 || spec.Width() != 10 {
		t.Fatalf("spec = %+v width %v", spec, spec.Width())
	}
	if spec.Bucket(1) != 0 || spec.Bucket(10) != 0 || spec.Bucket(11) != 1 || spec.Bucket(100) != 9 {
		t.Fatalf("bucket boundaries wrong: %d %d %d %d",
			spec.Bucket(1), spec.Bucket(10), spec.Bucket(11), spec.Bucket(100))
	}
	// Out-of-range clamps.
	if spec.Bucket(-5) != 0 || spec.Bucket(1000) != 9 {
		t.Fatal("clamping broken")
	}
	// More buckets than values collapses to the domain size.
	small := NewBucketSpec(1, 5, 100)
	if small.N != 5 {
		t.Fatalf("N = %d, want 5", small.N)
	}
	// Swapped bounds normalize.
	sw := NewBucketSpec(10, 1, 3)
	if sw.Lo != 1 || sw.Hi != 10 {
		t.Fatalf("swapped bounds not normalized: %+v", sw)
	}
}

func TestBucketizeAndTotals(t *testing.T) {
	a := workflow.Attr{Rel: "T", Col: "a"}
	h := NewHistogram(a)
	for v := int64(1); v <= 100; v++ {
		h.Inc([]int64{v}, v%3+1)
	}
	spec := NewBucketSpec(1, 100, 4)
	ap, err := Bucketize(h, spec)
	if err != nil {
		t.Fatalf("Bucketize: %v", err)
	}
	if ap.Total() != float64(h.Total()) {
		t.Fatalf("Total = %v, want %v", ap.Total(), h.Total())
	}
	if ap.Memory() != 4 {
		t.Fatalf("Memory = %d, want 4", ap.Memory())
	}
	h2 := NewHistogram(a, workflow.Attr{Rel: "T", Col: "b"})
	if _, err := Bucketize(h2, spec); err == nil {
		t.Fatal("Bucketize of 2-attr histogram: want error")
	}
}

func TestApproxDotProductExactAtFullResolution(t *testing.T) {
	// One bucket per value ⇒ the approximate estimate equals rule J1.
	a := workflow.Attr{Rel: "T", Col: "a"}
	rng := rand.New(rand.NewSource(5))
	h1 := NewHistogram(a)
	h2 := NewHistogram(a)
	for i := 0; i < 3000; i++ {
		h1.Add(int64(rng.Intn(50) + 1))
		h2.Add(int64(rng.Intn(50) + 1))
	}
	spec := NewBucketSpec(1, 50, 50)
	a1, _ := Bucketize(h1, spec)
	a2, _ := Bucketize(h2, spec)
	est, err := ApproxDotProduct(a1, a2)
	if err != nil {
		t.Fatalf("ApproxDotProduct: %v", err)
	}
	exact, _ := DotProduct(h1, h2)
	if math.Abs(est-float64(exact)) > 1e-6 {
		t.Fatalf("full-resolution estimate %v != exact %v", est, exact)
	}
}

func TestApproxErrorShrinksWithBuckets(t *testing.T) {
	// On skewed data the estimate improves monotonically-ish as buckets
	// grow; at least the coarsest must be worse than the finest.
	a := workflow.Attr{Rel: "T", Col: "a"}
	rng := rand.New(rand.NewSource(9))
	h1 := NewHistogram(a)
	h2 := NewHistogram(a)
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(100)*rng.Intn(100)/100 + 1) // skewed toward low values
		h1.Add(v)
		h2.Add(int64(rng.Intn(100) + 1))
	}
	exact, _ := DotProduct(h1, h2)
	var errs []float64
	for _, n := range []int{2, 100} {
		spec := NewBucketSpec(1, 100, n)
		a1, _ := Bucketize(h1, spec)
		a2, _ := Bucketize(h2, spec)
		est, err := ApproxDotProduct(a1, a2)
		if err != nil {
			t.Fatalf("ApproxDotProduct(%d): %v", n, err)
		}
		errs = append(errs, RelativeError(est, exact))
	}
	if errs[1] > errs[0] {
		t.Fatalf("error grew with resolution: %v", errs)
	}
	if errs[1] > 1e-9 {
		t.Fatalf("full resolution should be exact, err = %v", errs[1])
	}
}

func TestApproxSpecMismatch(t *testing.T) {
	a1 := NewApprox(NewBucketSpec(1, 10, 2))
	a2 := NewApprox(NewBucketSpec(1, 20, 2))
	if _, err := ApproxDotProduct(a1, a2); err == nil {
		t.Fatal("mismatched specs: want error")
	}
}

func TestApproxStreamingAdd(t *testing.T) {
	spec := NewBucketSpec(1, 10, 5)
	ap := NewApprox(spec)
	for v := int64(1); v <= 10; v++ {
		ap.Add(v)
	}
	if ap.Total() != 10 {
		t.Fatalf("Total = %v", ap.Total())
	}
	for i, f := range ap.Totals {
		if f != 2 {
			t.Fatalf("bucket %d = %v, want 2", i, f)
		}
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(110, 100) != 0.1 {
		t.Fatal("basic relative error wrong")
	}
	if RelativeError(0, 0) != 0 {
		t.Fatal("0/0 should be 0")
	}
	if !math.IsInf(RelativeError(5, 0), 1) {
		t.Fatal("x/0 should be +Inf")
	}
}

func TestBucketTotalPreservationProperty(t *testing.T) {
	a := workflow.Attr{Rel: "T", Col: "a"}
	f := func(vals []uint8, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		h := NewHistogram(a)
		for _, v := range vals {
			h.Add(int64(v%50) + 1)
		}
		spec := NewBucketSpec(1, 50, n)
		ap, err := Bucketize(h, spec)
		if err != nil {
			return false
		}
		return ap.Total() == float64(h.Total())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
