package stats

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/essential-stats/etlopt/internal/workflow"
)

var (
	aA = workflow.Attr{Rel: "T1", Col: "a"}
	aB = workflow.Attr{Rel: "T1", Col: "b"}
	aC = workflow.Attr{Rel: "T2", Col: "c"}
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(aA)
	h.Add(1)
	h.Add(1)
	h.Add(2)
	if got := h.Freq(1); got != 2 {
		t.Fatalf("Freq(1) = %d, want 2", got)
	}
	if got := h.Total(); got != 3 {
		t.Fatalf("Total = %d, want 3", got)
	}
	if got := h.Buckets(); got != 2 {
		t.Fatalf("Buckets = %d, want 2", got)
	}
	h.Inc([]int64{2}, -1)
	if got := h.Buckets(); got != 1 {
		t.Fatalf("Buckets after removal = %d, want 1", got)
	}
}

func TestHistogramArityError(t *testing.T) {
	err := NewHistogram(aA).Add(1, 2)
	if err == nil {
		t.Fatal("Add with wrong arity should error")
	}
	var ae *ArityError
	if !errors.As(err, &ae) || ae.Want != 1 || ae.Got != 2 {
		t.Fatalf("want *ArityError{1,2}, got %v", err)
	}
}

func TestHistogramAttrsCanonicalOrder(t *testing.T) {
	h := NewHistogram(aB, aA) // constructor sorts
	if h.Attrs[0] != aA || h.Attrs[1] != aB {
		t.Fatalf("Attrs = %v, want sorted [a b]", h.Attrs)
	}
}

func TestMarginal(t *testing.T) {
	h := NewHistogram(aA, aB)
	h.Add(1, 10)
	h.Add(1, 20)
	h.Add(2, 10)
	m, err := h.Marginal(aA)
	if err != nil {
		t.Fatalf("Marginal: %v", err)
	}
	if m.Freq(1) != 2 || m.Freq(2) != 1 {
		t.Fatalf("Marginal freqs wrong: %v", m.m)
	}
	if m.Total() != h.Total() {
		t.Fatalf("Marginal total %d != %d", m.Total(), h.Total())
	}
	if _, err := h.Marginal(aC); err == nil {
		t.Fatal("Marginal over missing attr: want error")
	}
}

func TestDotProductMatchesJoin(t *testing.T) {
	// |T1 ⋈ T2| computed by J1 must equal the brute-force join size.
	rng := rand.New(rand.NewSource(7))
	h1 := NewHistogram(aA)
	h2 := NewHistogram(aA)
	var t1, t2 []int64
	for i := 0; i < 500; i++ {
		v := int64(rng.Intn(20))
		t1 = append(t1, v)
		h1.Add(v)
	}
	for i := 0; i < 300; i++ {
		v := int64(rng.Intn(20))
		t2 = append(t2, v)
		h2.Add(v)
	}
	var brute int64
	for _, x := range t1 {
		for _, y := range t2 {
			if x == y {
				brute++
			}
		}
	}
	got, err := DotProduct(h1, h2)
	if err != nil {
		t.Fatalf("DotProduct: %v", err)
	}
	if got != brute {
		t.Fatalf("DotProduct = %d, brute force = %d", got, brute)
	}
}

func TestDotProductArityError(t *testing.T) {
	h1 := NewHistogram(aA, aB)
	h2 := NewHistogram(aA)
	if _, err := DotProduct(h1, h2); err == nil {
		t.Fatal("DotProduct with multi-attr input: want error")
	}
}

// twoTables builds random tables T1(a,b) and T2(a,c) plus their exact
// histograms, for cross-checking the algebra against brute-force joins.
func twoTables(seed int64, n1, n2 int) (rows1, rows2 [][2]int64, h1ab, h1a, h2ac, h2a *Histogram) {
	rng := rand.New(rand.NewSource(seed))
	h1ab = NewHistogram(aA, aB)
	h1a = NewHistogram(aA)
	h2ac = NewHistogram(aA, aC)
	h2a = NewHistogram(aA)
	for i := 0; i < n1; i++ {
		a, b := int64(rng.Intn(10)), int64(rng.Intn(5))
		rows1 = append(rows1, [2]int64{a, b})
		h1ab.Add(a, b)
		h1a.Add(a)
	}
	for i := 0; i < n2; i++ {
		a, c := int64(rng.Intn(10)), int64(rng.Intn(4))
		rows2 = append(rows2, [2]int64{a, c})
		h2ac.Add(a, c)
		h2a.Add(a)
	}
	return
}

func TestJoinRuleJ2(t *testing.T) {
	// H^b of T1 ⋈a T2 from H^{a,b}_{T1} and H^a_{T2} (rule J2).
	rows1, rows2, h1ab, _, _, h2a := twoTables(11, 400, 250)
	got, err := Join(h1ab, h2a, aA, []workflow.Attr{aB})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	want := NewHistogram(aB)
	for _, r1 := range rows1 {
		for _, r2 := range rows2 {
			if r1[0] == r2[0] {
				want.Add(r1[1])
			}
		}
	}
	assertHistEqual(t, got, want)
}

func TestJoinRuleJ3(t *testing.T) {
	// H^a of T1 ⋈a T2 is the bucket-wise product (rule J3).
	rows1, rows2, _, h1a, _, h2a := twoTables(13, 300, 200)
	got, err := Join(h1a, h2a, aA, []workflow.Attr{aA})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	want := NewHistogram(aA)
	for _, r1 := range rows1 {
		for _, r2 := range rows2 {
			if r1[0] == r2[0] {
				want.Add(r1[0])
			}
		}
	}
	assertHistEqual(t, got, want)
	// And it must agree with Multiply.
	mul, err := Multiply(h1a, h2a)
	if err != nil {
		t.Fatalf("Multiply: %v", err)
	}
	assertHistEqual(t, got, mul)
}

func TestJoinCrossSideOutputs(t *testing.T) {
	// Generalized J2: output attributes drawn from both sides at once.
	rows1, rows2, h1ab, _, h2ac, _ := twoTables(17, 200, 150)
	got, err := Join(h1ab, h2ac, aA, []workflow.Attr{aB, aC})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	want := NewHistogram(aB, aC)
	for _, r1 := range rows1 {
		for _, r2 := range rows2 {
			if r1[0] == r2[0] {
				want.Add(r1[1], r2[1])
			}
		}
	}
	assertHistEqual(t, got, want)
}

func TestJoinErrors(t *testing.T) {
	h1 := NewHistogram(aA, aB)
	h2 := NewHistogram(aA)
	if _, err := Join(h1, h2, aC, []workflow.Attr{aB}); err == nil {
		t.Fatal("Join on attr absent from inputs: want error")
	}
	if _, err := Join(h1, h2, aA, []workflow.Attr{aC}); err == nil {
		t.Fatal("Join with output attr in neither input: want error")
	}
}

func TestMultiplyDivideRoundTrip(t *testing.T) {
	f := func(freqs []uint8) bool {
		h1 := NewHistogram(aA)
		h2 := NewHistogram(aA)
		for i, fq := range freqs {
			if fq == 0 {
				continue
			}
			h1.Inc([]int64{int64(i)}, int64(fq))
			h2.Inc([]int64{int64(i)}, int64(fq%7)+1)
		}
		prod, err := Multiply(h1, h2)
		if err != nil {
			return false
		}
		back, err := Divide(prod, h2)
		if err != nil {
			return false
		}
		return histEqual(back, h1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDivideErrors(t *testing.T) {
	h1 := NewHistogram(aA)
	h1.Add(1)
	h2 := NewHistogram(aA) // empty: zero denominator
	if _, err := Divide(h1, h2); err == nil {
		t.Fatal("Divide by zero bucket: want error")
	}
	h3 := NewHistogram(aA)
	h3.Inc([]int64{1}, 2)
	if _, err := Divide(h1, h3); err == nil {
		t.Fatal("Divide with non-divisible bucket: want error")
	}
	hb := NewHistogram(aB)
	if _, err := Divide(h1, hb); err == nil {
		t.Fatal("Divide with mismatched attrs: want error")
	}
}

func TestDivideProject(t *testing.T) {
	// Numerator over (a,b), denominator over (a): per-bucket divide on a.
	num := NewHistogram(aA, aB)
	num.Inc([]int64{1, 10}, 6)
	num.Inc([]int64{1, 20}, 4)
	num.Inc([]int64{2, 10}, 9)
	den := NewHistogram(aA)
	den.Inc([]int64{1}, 2)
	den.Inc([]int64{2}, 3)
	got, err := DivideProject(num, den)
	if err != nil {
		t.Fatalf("DivideProject: %v", err)
	}
	if got.Freq(1, 10) != 3 || got.Freq(1, 20) != 2 || got.Freq(2, 10) != 3 {
		t.Fatalf("DivideProject wrong: %v", got.m)
	}
	// Union–division consistency: Join then DivideProject recovers the
	// original joint distribution.
	_, _, h1ab, _, _, h2a := twoTables(23, 300, 200)
	joined, err := Join(h1ab, h2a, aA, []workflow.Attr{aA, aB})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	// joined^(a,b) = h1ab ⊙ h2a on a; dividing by h2a recovers the
	// restriction of h1ab to a-values present in T2.
	back, err := DivideProject(joined, h2a)
	if err != nil {
		t.Fatalf("DivideProject: %v", err)
	}
	want := NewHistogram(aA, aB)
	h1ab.Each(func(vals []int64, f int64) {
		if h2a.Freq(vals[0]) > 0 {
			want.Inc(vals, f)
		}
	})
	assertHistEqual(t, back, want)
}

func TestAddHist(t *testing.T) {
	h1 := NewHistogram(aA)
	h1.Add(1)
	h2 := NewHistogram(aA)
	h2.Add(1)
	h2.Add(2)
	sum, err := AddHist(h1, h2)
	if err != nil {
		t.Fatalf("AddHist: %v", err)
	}
	if sum.Freq(1) != 2 || sum.Freq(2) != 1 {
		t.Fatalf("AddHist wrong: %v", sum.m)
	}
	hb := NewHistogram(aB)
	if _, err := AddHist(h1, hb); err == nil {
		t.Fatal("AddHist with mismatched attrs: want error")
	}
}

func TestMarginalTotalProperty(t *testing.T) {
	// I1: |T| equals the total of any marginal.
	f := func(pairs []uint16) bool {
		h := NewHistogram(aA, aB)
		for _, p := range pairs {
			h.Add(int64(p%16), int64(p/16%8))
		}
		m, err := h.Marginal(aB)
		if err != nil {
			return false
		}
		return m.Total() == h.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeValuesRoundTrip(t *testing.T) {
	// Value encoding must be loss-free for negative values too.
	h := NewHistogram(aA)
	h.Add(-42)
	found := false
	h.Each(func(vals []int64, f int64) {
		if vals[0] == -42 && f == 1 {
			found = true
		}
	})
	if !found {
		t.Fatal("negative value lost in encoding")
	}
}

func TestEachSortedDeterministic(t *testing.T) {
	h := NewHistogram(aA)
	for _, v := range []int64{5, 3, 9, 1} {
		h.Add(v)
	}
	var got []int64
	h.EachSorted(func(vals []int64, _ int64) { got = append(got, vals[0]) })
	want := []int64{1, 3, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EachSorted order = %v, want %v", got, want)
		}
	}
}

func histEqual(a, b *Histogram) bool {
	if len(a.m) != len(b.m) {
		return false
	}
	for k, v := range a.m {
		if p, ok := b.m[k]; !ok || *p != *v {
			return false
		}
	}
	return true
}

func assertHistEqual(t *testing.T, got, want *Histogram) {
	t.Helper()
	if !histEqual(got, want) {
		t.Fatalf("histograms differ:\n got: %v\nwant: %v", got.m, want.m)
	}
}
