package stats

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/essential-stats/etlopt/internal/workflow"
)

// Histogram is an exact frequency distribution over a tuple of attributes:
// for each distinct value combination it stores the number of tuples
// carrying it. The paper's framework assumes histograms that estimate
// cardinalities accurately (Section 3.1); exact per-value counts realize
// that assumption, and bucketized approximations are future work there as
// here.
type Histogram struct {
	// Attrs are the attributes the distribution ranges over, in canonical
	// order. Values passed to Add/Freq must follow this order.
	Attrs []workflow.Attr
	// m holds bucket counts behind pointers so the per-row observation
	// path can increment an existing bucket without re-materializing its
	// key: a map *lookup* keyed by string(kbuf) is allocation-free, but a
	// map *assignment* is not, so Inc only assigns (and only then copies
	// the key) when a bucket is first seen.
	m    map[string]*int64
	kbuf []byte
}

// NewHistogram returns an empty histogram over the given attributes.
func NewHistogram(attrs ...workflow.Attr) *Histogram {
	return &Histogram{Attrs: workflow.SortAttrs(attrs), m: make(map[string]*int64)}
}

func encodeVals(vals []int64) string {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint64(buf[i*8:], uint64(v))
	}
	return string(buf)
}

func decodeVals(key string) []int64 {
	out := make([]int64, len(key)/8)
	for i := range out {
		out[i] = int64(binary.BigEndian.Uint64([]byte(key[i*8 : i*8+8])))
	}
	return out
}

// Arity returns the number of attributes.
func (h *Histogram) Arity() int { return len(h.Attrs) }

// ArityError reports a value tuple whose length does not match the
// histogram's attribute arity — a mis-declared statistic, surfaced as a
// typed error so the observation layer can degrade instead of crash.
type ArityError struct {
	// Want is the histogram's arity, Got the offered tuple length.
	Want, Got int
}

func (e *ArityError) Error() string {
	return fmt.Sprintf("histogram arity %d, got %d values", e.Want, e.Got)
}

// Add increments the bucket for the value tuple by one.
func (h *Histogram) Add(vals ...int64) error { return h.Inc(vals, 1) }

// Inc increments the bucket for the value tuple by delta. Buckets that
// reach zero are removed. Incrementing an existing bucket allocates
// nothing; the key string is materialized only on first insert.
func (h *Histogram) Inc(vals []int64, delta int64) error {
	if len(vals) != len(h.Attrs) {
		return &ArityError{Want: len(h.Attrs), Got: len(vals)}
	}
	h.kbuf = h.kbuf[:0]
	for _, v := range vals {
		h.kbuf = binary.BigEndian.AppendUint64(h.kbuf, uint64(v))
	}
	if p, ok := h.m[string(h.kbuf)]; ok {
		*p += delta
		if *p == 0 {
			delete(h.m, string(h.kbuf))
		}
		return nil
	}
	if delta != 0 {
		h.inc(string(h.kbuf), delta)
	}
	return nil
}

// inc adds delta to the bucket for an encoded key, inserting or removing
// the bucket as needed.
func (h *Histogram) inc(k string, delta int64) {
	if p, ok := h.m[k]; ok {
		*p += delta
		if *p == 0 {
			delete(h.m, k)
		}
		return
	}
	if delta != 0 {
		v := delta
		h.m[k] = &v
	}
}

// Freq returns the frequency of the value tuple.
func (h *Histogram) Freq(vals ...int64) int64 {
	if p, ok := h.m[encodeVals(vals)]; ok {
		return *p
	}
	return 0
}

// Total returns the sum of all bucket frequencies; for a histogram observed
// on relation T this equals |T| (identity rule I1).
func (h *Histogram) Total() int64 {
	var t int64
	for _, f := range h.m {
		t += *f
	}
	return t
}

// Buckets returns the number of non-empty buckets, i.e. the number of
// distinct value combinations |a_T|.
func (h *Histogram) Buckets() int { return len(h.m) }

// Each calls f for every bucket in an unspecified order.
func (h *Histogram) Each(f func(vals []int64, freq int64)) {
	for k, v := range h.m {
		f(decodeVals(k), *v)
	}
}

// EachSorted calls f for every bucket in ascending value order; used where
// deterministic output matters (reports, tests).
func (h *Histogram) EachSorted(f func(vals []int64, freq int64)) {
	keys := make([]string, 0, len(h.m))
	for k := range h.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f(decodeVals(k), *h.m[k])
	}
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	out := &Histogram{Attrs: append([]workflow.Attr(nil), h.Attrs...), m: make(map[string]*int64, len(h.m))}
	for k, v := range h.m {
		f := *v
		out.m[k] = &f
	}
	return out
}

// Merge folds every bucket of other into h. Both histograms must range
// over the same attribute set. The parallel engine gives each worker a
// private histogram shard and merges the shards after the operator drains;
// because bucket counts are integers, addition is associative and the
// merged histogram is bit-identical to a sequential observation.
func (h *Histogram) Merge(other *Histogram) error {
	if workflow.AttrsString(h.Attrs) != workflow.AttrsString(other.Attrs) {
		return fmt.Errorf("merge: attribute sets differ: %s vs %s",
			workflow.AttrsString(h.Attrs), workflow.AttrsString(other.Attrs))
	}
	for k, f := range other.m {
		h.inc(k, *f)
	}
	return nil
}

// attrPos returns the positions of want within h.Attrs, or an error when an
// attribute is missing.
func (h *Histogram) attrPos(want []workflow.Attr) ([]int, error) {
	pos := make([]int, len(want))
	for i, a := range want {
		pos[i] = -1
		for j, b := range h.Attrs {
			if a == b {
				pos[i] = j
				break
			}
		}
		if pos[i] < 0 {
			return nil, fmt.Errorf("histogram over %s has no attribute %s", workflow.AttrsString(h.Attrs), a)
		}
	}
	return pos, nil
}

// Marginal aggregates the histogram down to the given attribute subset
// (identity rule I2: a histogram on (a,b) yields the histogram on a by
// summing over b).
func (h *Histogram) Marginal(attrs ...workflow.Attr) (*Histogram, error) {
	attrs = workflow.SortAttrs(append([]workflow.Attr(nil), attrs...))
	pos, err := h.attrPos(attrs)
	if err != nil {
		return nil, err
	}
	out := NewHistogram(attrs...)
	var rerr error
	h.Each(func(vals []int64, freq int64) {
		if rerr != nil {
			return
		}
		sub := make([]int64, len(pos))
		for i, p := range pos {
			sub[i] = vals[p]
		}
		rerr = out.Inc(sub, freq)
	})
	if rerr != nil {
		return nil, rerr
	}
	return out, nil
}

// DotProduct implements rule J1: the cardinality of an equi-join is the dot
// product of the two single-attribute join-column distributions,
// |T1 ⋈a T2| = Σ_v H1[v]·H2[v].
func DotProduct(h1, h2 *Histogram) (int64, error) {
	if h1.Arity() != 1 || h2.Arity() != 1 {
		return 0, fmt.Errorf("dot product needs single-attribute histograms, got arity %d and %d", h1.Arity(), h2.Arity())
	}
	var total int64
	small, large := h1, h2
	if large.Buckets() < small.Buckets() {
		small, large = large, small
	}
	for k, f := range small.m {
		var lf int64
		if p, ok := large.m[k]; ok {
			lf = *p
		}
		p, err := MulInt64(*f, lf)
		if err != nil {
			return 0, fmt.Errorf("dot product: bucket %v: %w", decodeVals(k), err)
		}
		total, err = AddInt64(total, p)
		if err != nil {
			return 0, fmt.Errorf("dot product: %w", err)
		}
	}
	return total, nil
}

// Join implements the generalized J2/J3 computation: given the left input's
// distribution over {join attribute} ∪ B1 and the right input's over
// {join attribute} ∪ B2, it returns the join result's distribution over
// out. The join attribute must be the same (class-canonical) attribute in
// both inputs; out may include the join attribute itself (rule J3) or any
// mix of B1 and B2 attributes (rule J2 and its multi-attribute extension).
func Join(h1, h2 *Histogram, join workflow.Attr, out []workflow.Attr) (*Histogram, error) {
	p1, err := h1.attrPos([]workflow.Attr{join})
	if err != nil {
		return nil, fmt.Errorf("join: %w", err)
	}
	p2, err := h2.attrPos([]workflow.Attr{join})
	if err != nil {
		return nil, fmt.Errorf("join: %w", err)
	}
	outAttrs := workflow.SortAttrs(append([]workflow.Attr(nil), out...))
	res := NewHistogram(outAttrs...)

	// For each output attribute decide which side supplies it; the join
	// attribute can come from either.
	type src struct {
		side int // 1 or 2
		pos  int
	}
	srcs := make([]src, len(outAttrs))
	for i, a := range outAttrs {
		if pos, err := h1.attrPos([]workflow.Attr{a}); err == nil {
			srcs[i] = src{1, pos[0]}
			continue
		}
		if pos, err := h2.attrPos([]workflow.Attr{a}); err == nil {
			srcs[i] = src{2, pos[0]}
			continue
		}
		return nil, fmt.Errorf("join: output attribute %s in neither input", a)
	}

	// Group the right side's buckets by join value.
	group2 := make(map[int64][]string)
	for k := range h2.m {
		v := decodeVals(k)
		group2[v[p2[0]]] = append(group2[v[p2[0]]], k)
	}
	for k1, f1 := range h1.m {
		v1 := decodeVals(k1)
		for _, k2 := range group2[v1[p1[0]]] {
			v2 := decodeVals(k2)
			f2 := *h2.m[k2]
			vals := make([]int64, len(srcs))
			for i, s := range srcs {
				if s.side == 1 {
					vals[i] = v1[s.pos]
				} else {
					vals[i] = v2[s.pos]
				}
			}
			f, err := MulInt64(*f1, f2)
			if err != nil {
				return nil, fmt.Errorf("join: bucket %v: %w", vals, err)
			}
			if err := res.Inc(vals, f); err != nil {
				return nil, fmt.Errorf("join: %w", err)
			}
		}
	}
	return res, nil
}

// Multiply implements the paper's ⟨H1|H2⟩ operator: bucket-wise product of
// two histograms over the same attribute set.
func Multiply(h1, h2 *Histogram) (*Histogram, error) {
	if workflow.AttrsString(h1.Attrs) != workflow.AttrsString(h2.Attrs) {
		return nil, fmt.Errorf("multiply: attribute sets differ: %s vs %s",
			workflow.AttrsString(h1.Attrs), workflow.AttrsString(h2.Attrs))
	}
	out := NewHistogram(h1.Attrs...)
	for k, f1 := range h1.m {
		if f2, ok := h2.m[k]; ok && *f2 != 0 {
			f, err := MulInt64(*f1, *f2)
			if err != nil {
				return nil, fmt.Errorf("multiply: bucket %v: %w", decodeVals(k), err)
			}
			out.inc(k, f)
		}
	}
	return out, nil
}

// Divide implements the paper's H1/H2 operator used by union–division
// (Equation 2): bucket-wise division. Every non-zero bucket of the
// numerator must have a non-zero, evenly dividing denominator bucket; the
// union–division derivation guarantees this when the inputs come from the
// instrumented plan, so a violation indicates a misapplied rule and is
// reported as an error.
func Divide(num, den *Histogram) (*Histogram, error) {
	if workflow.AttrsString(num.Attrs) != workflow.AttrsString(den.Attrs) {
		return nil, fmt.Errorf("divide: attribute sets differ: %s vs %s",
			workflow.AttrsString(num.Attrs), workflow.AttrsString(den.Attrs))
	}
	out := NewHistogram(num.Attrs...)
	for k, f := range num.m {
		var d int64
		if p, ok := den.m[k]; ok {
			d = *p
		}
		if d == 0 {
			return nil, fmt.Errorf("divide: bucket %v has zero denominator", decodeVals(k))
		}
		if *f%d != 0 {
			return nil, fmt.Errorf("divide: bucket %v: %d not divisible by %d", decodeVals(k), *f, d)
		}
		out.inc(k, *f/d)
	}
	return out, nil
}

// DivideProject is Divide for the J5 case where the numerator carries extra
// attributes beyond the denominator's: the denominator bucket is looked up
// on the shared attributes only.
func DivideProject(num, den *Histogram) (*Histogram, error) {
	pos, err := num.attrPos(den.Attrs)
	if err != nil {
		return nil, fmt.Errorf("divide-project: %w", err)
	}
	out := NewHistogram(num.Attrs...)
	var rerr error
	num.Each(func(vals []int64, f int64) {
		if rerr != nil {
			return
		}
		sub := make([]int64, len(pos))
		for i, p := range pos {
			sub[i] = vals[p]
		}
		d := den.Freq(sub...)
		if d == 0 {
			rerr = fmt.Errorf("divide-project: bucket %v has zero denominator", vals)
			return
		}
		if f%d != 0 {
			rerr = fmt.Errorf("divide-project: bucket %v: %d not divisible by %d", vals, f, d)
			return
		}
		rerr = out.Inc(vals, f/d)
	})
	if rerr != nil {
		return nil, rerr
	}
	return out, nil
}

// AddHist returns the bucket-wise sum of two histograms over the same
// attribute set (the ∪ step of union–division).
func AddHist(h1, h2 *Histogram) (*Histogram, error) {
	if workflow.AttrsString(h1.Attrs) != workflow.AttrsString(h2.Attrs) {
		return nil, fmt.Errorf("add: attribute sets differ: %s vs %s",
			workflow.AttrsString(h1.Attrs), workflow.AttrsString(h2.Attrs))
	}
	out := h1.Clone()
	for k, f := range h2.m {
		out.inc(k, *f)
	}
	return out, nil
}
