package stats

import (
	"sync"
	"testing"

	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// TestStoreConcurrentPutOnce exercises the store from many goroutines the
// way parallel block execution does: racing PutScalarOnce/PutHistOnce on
// the same keys, reads, and merges. Run under -race this doubles as the
// data-race check; the assertions verify keep-first semantics.
func TestStoreConcurrentPutOnce(t *testing.T) {
	st := NewStore()
	a := workflow.Attr{Rel: "R", Col: "k"}
	scalarStat := NewCard(BlockSE(0, expr.NewSet(0)))
	histStat := NewHist(BlockSE(1, expr.NewSet(0)), a)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st.PutScalarOnce(scalarStat, int64(g*1000+i))
				h := NewHistogram(a)
				h.Inc([]int64{int64(g)}, 1)
				st.PutHistOnce(histStat, h)
				st.PutScalarOnce(NewCard(BlockSE(g, expr.NewSet(1))), int64(i))
				st.Has(scalarStat)
				st.Len()
				if _, err := st.Scalar(scalarStat); err != nil {
					t.Errorf("Scalar: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Keep-first: whichever write won, the value must be one of the
	// written ones and stable now.
	v1, err := st.Scalar(scalarStat)
	if err != nil {
		t.Fatalf("Scalar: %v", err)
	}
	v2, _ := st.Scalar(scalarStat)
	if v1 != v2 {
		t.Fatalf("scalar unstable after writers finished: %d vs %d", v1, v2)
	}
	h, err := st.Hist(histStat)
	if err != nil {
		t.Fatalf("Hist: %v", err)
	}
	if h.Total() != 1 {
		t.Fatalf("hist total = %d, want 1 (exactly one PutHistOnce must win)", h.Total())
	}
}

// TestStoreConcurrentMerge races Merge against writers on disjoint stores.
func TestStoreConcurrentMerge(t *testing.T) {
	dst := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := NewStore()
			for i := 0; i < 50; i++ {
				src.PutScalar(NewCard(BlockSE(g, expr.NewSet(i%3))), int64(i))
			}
			dst.Merge(src)
		}()
	}
	wg.Wait()
	if dst.Len() == 0 {
		t.Fatal("merged store is empty")
	}
	// Self-merge must not deadlock or corrupt.
	before := dst.Len()
	dst.Merge(dst)
	if dst.Len() != before {
		t.Fatalf("self-merge changed size: %d vs %d", dst.Len(), before)
	}
}
