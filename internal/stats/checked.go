package stats

import (
	"fmt"
	"math"
)

// Checked int64 arithmetic for cardinality and frequency math. Exact
// histograms multiply per-bucket frequencies (rules J1–J3) and adversarial
// inputs can push those products past int64; silently wrapping would
// surface as a negative cardinality deep inside the estimator, so every
// product goes through these helpers and overflow is reported as a
// descriptive error at the point it happens.

// ErrOverflow tags arithmetic overflow errors so callers can detect them
// with errors.Is.
var ErrOverflow = fmt.Errorf("int64 overflow")

// MulInt64 returns a*b, or an error when the product does not fit in int64.
func MulInt64(a, b int64) (int64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	// MinInt64 * -1 wraps back to MinInt64 and would pass the division
	// check below (Go defines MinInt64 / -1 == MinInt64), so reject it
	// explicitly.
	if (a == math.MinInt64 && b == -1) || (a == -1 && b == math.MinInt64) {
		return 0, fmt.Errorf("%w: %d * %d", ErrOverflow, a, b)
	}
	p := a * b
	if p/b != a {
		return 0, fmt.Errorf("%w: %d * %d", ErrOverflow, a, b)
	}
	return p, nil
}

// AddInt64 returns a+b, or an error when the sum does not fit in int64.
func AddInt64(a, b int64) (int64, error) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, fmt.Errorf("%w: %d + %d", ErrOverflow, a, b)
	}
	return s, nil
}

// SubInt64 returns a-b, or an error when the difference does not fit in
// int64 (e.g. MaxInt64 - MinInt64).
func SubInt64(a, b int64) (int64, error) {
	d := a - b
	if (b > 0 && d > a) || (b < 0 && d < a) {
		return 0, fmt.Errorf("%w: %d - %d", ErrOverflow, a, b)
	}
	return d, nil
}

// MaxExactInt64 is the largest magnitude an int64 can reach and still have
// every integer up to it exactly representable as a float64 (2^53).
const MaxExactInt64 = int64(1) << 53

// ErrPrecision tags conversions that would silently round, so callers can
// detect them with errors.Is.
var ErrPrecision = fmt.Errorf("int64 exceeds exact float64 range")

// Float64FromInt64 converts a cardinality to float64, erroring instead of
// silently rounding when |v| exceeds 2^53 (float64's exact-integer range).
// Cost models compare plans by small margins; feeding them a rounded
// cardinality would make those comparisons quietly wrong.
func Float64FromInt64(v int64) (float64, error) {
	if v > MaxExactInt64 || v < -MaxExactInt64 {
		return 0, fmt.Errorf("%w: %d", ErrPrecision, v)
	}
	return float64(v), nil
}
