package stats

import (
	"fmt"
	"math"
)

// This file implements the bucketized-histogram extension the paper leaves
// as future work (Sections 3.1 and 8): real systems cap histogram memory by
// grouping values into equi-width buckets and storing only per-bucket
// totals, trading exactness for space. The approximate algebra below
// supports the error-vs-memory experiment (cmd/experiments -exp=error).

// BucketSpec describes an equi-width bucketization of an integer value
// domain [Lo, Hi] into N buckets.
type BucketSpec struct {
	Lo, Hi int64
	N      int
}

// maxInt is the largest value of the platform's int (the bucket count's
// type), so 32-bit targets clamp correctly too.
const maxInt = int64(^uint(0) >> 1)

// NewBucketSpec builds an equi-width spec; it clamps N to at least 1 and at
// most the domain size (more buckets than values adds nothing). The domain
// size hi-lo+1 is computed with checked arithmetic: extreme domains (e.g.
// Lo = math.MinInt64) overflow int64 — and would truncate through int on
// 32-bit targets — which used to clamp N to a garbage (possibly negative)
// width; such domains are simply larger than any bucket count, so no
// clamping applies.
func NewBucketSpec(lo, hi int64, n int) BucketSpec {
	if hi < lo {
		lo, hi = hi, lo
	}
	if n < 1 {
		n = 1
	}
	if size, ok := domainSize(lo, hi); ok && int64(n) > size {
		n = int(size)
	}
	return BucketSpec{Lo: lo, Hi: hi, N: n}
}

// domainSize returns hi-lo+1 when it fits both int64 and the platform int;
// ok is false for domains too large to matter for clamping.
func domainSize(lo, hi int64) (int64, bool) {
	d, err := SubInt64(hi, lo)
	if err != nil {
		return 0, false
	}
	size, err := AddInt64(d, 1)
	if err != nil || size > maxInt {
		return 0, false
	}
	return size, true
}

// span returns hi-lo as an exact unsigned difference (hi >= lo after the
// constructor's swap), which cannot overflow the way int64 subtraction can.
func (b BucketSpec) span() uint64 {
	return uint64(b.Hi) - uint64(b.Lo)
}

// Width returns the (fractional) width of each bucket.
func (b BucketSpec) Width() float64 {
	return (float64(b.span()) + 1) / float64(b.N)
}

// Bucket maps a value to its bucket index (values outside the range clamp
// to the edge buckets, as real histogram implementations do).
func (b BucketSpec) Bucket(v int64) int {
	if v < b.Lo {
		return 0
	}
	if v > b.Hi {
		return b.N - 1
	}
	off := uint64(v) - uint64(b.Lo)
	idx := int(float64(off) / b.Width())
	if idx >= b.N {
		idx = b.N - 1
	}
	return idx
}

// Approx is a bucketized single-attribute histogram: per-bucket total
// frequencies under the uniform-within-bucket assumption. Its memory
// footprint is Spec.N counters regardless of the attribute domain.
type Approx struct {
	Spec    BucketSpec
	Totals  []float64
	rawRows int64
}

// NewApprox returns an empty bucketized histogram.
func NewApprox(spec BucketSpec) *Approx {
	return &Approx{Spec: spec, Totals: make([]float64, spec.N)}
}

// Bucketize compresses an exact single-attribute histogram into buckets.
func Bucketize(h *Histogram, spec BucketSpec) (*Approx, error) {
	if h.Arity() != 1 {
		return nil, fmt.Errorf("stats: bucketize needs a single-attribute histogram, got arity %d", h.Arity())
	}
	a := NewApprox(spec)
	h.Each(func(vals []int64, f int64) {
		a.Totals[spec.Bucket(vals[0])] += float64(f)
		a.rawRows += f
	})
	return a, nil
}

// Add records one observed value (streaming observation).
func (a *Approx) Add(v int64) {
	a.Totals[a.Spec.Bucket(v)]++
	a.rawRows++
}

// Total returns the summed frequencies (= |T| when observed on T).
func (a *Approx) Total() float64 {
	var t float64
	for _, f := range a.Totals {
		t += f
	}
	return t
}

// Memory returns the footprint in integer units (one per bucket).
func (a *Approx) Memory() int64 { return int64(a.Spec.N) }

// ApproxDotProduct estimates |T1 ⋈a T2| from two bucketized histograms over
// the same spec: within each bucket, values are assumed uniformly spread
// over the bucket's width, so the expected number of matching pairs is
// f1·f2/width — the classical equi-width join estimate. Compare rule J1,
// which is exact when the buckets are single values.
func ApproxDotProduct(a1, a2 *Approx) (float64, error) {
	if a1.Spec != a2.Spec {
		return 0, fmt.Errorf("stats: bucket specs differ: %+v vs %+v", a1.Spec, a2.Spec)
	}
	width := a1.Spec.Width()
	if width < 1 {
		width = 1
	}
	var est float64
	for i := range a1.Totals {
		est += a1.Totals[i] * a2.Totals[i] / width
	}
	return est, nil
}

// RelativeError returns |est−truth|/truth (0 when both are zero; +Inf when
// only the truth is zero).
func RelativeError(est float64, truth int64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-float64(truth)) / float64(truth)
}
