package stats

import (
	"errors"
	"testing"

	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/workflow"
)

func TestStatKeyIdentity(t *testing.T) {
	a := workflow.Attr{Rel: "T1", Col: "a"}
	b := workflow.Attr{Rel: "T1", Col: "b"}
	s1 := NewHist(SE(expr.NewSet(0, 1)), a, b)
	s2 := NewHist(SE(expr.NewSet(0, 1)), b, a) // order must not matter
	if s1.Key() != s2.Key() {
		t.Fatalf("keys differ for same stat: %v vs %v", s1.Key(), s2.Key())
	}
	s3 := NewHist(SE(expr.NewSet(0)), a, b)
	if s1.Key() == s3.Key() {
		t.Fatal("different SEs must have different keys")
	}
	s4 := NewCard(SE(expr.NewSet(0, 1)))
	if s1.Key() == s4.Key() {
		t.Fatal("different kinds must have different keys")
	}
	s5 := NewHist(RejectSE(expr.NewSet(0, 1), 0, 2), a, b)
	if s1.Key() == s5.Key() {
		t.Fatal("reject targets must have different keys")
	}
}

func TestTargetLabel(t *testing.T) {
	blk := &workflow.Block{Inputs: []workflow.BlockInput{
		{Name: "T1"}, {Name: "T2"}, {Name: "T3"},
	}}
	if got := SE(expr.NewSet(0, 2)).Label(blk); got != "T1⋈T3" {
		t.Fatalf("Label = %q", got)
	}
	rej := RejectSE(expr.NewSet(0, 1), 0, 3)
	if got := rej.Label(blk); got != "!T1(e3)⋈T2" {
		t.Fatalf("reject label = %q", got)
	}
	if !rej.IsReject() || SE(expr.NewSet(0)).IsReject() {
		t.Fatal("IsReject broken")
	}
}

func TestStatLabel(t *testing.T) {
	blk := &workflow.Block{Inputs: []workflow.BlockInput{{Name: "Orders"}, {Name: "Customer"}}}
	a := workflow.Attr{Rel: "Orders", Col: "cid"}
	if got := NewCard(SE(expr.NewSet(0, 1))).Label(blk); got != "|Orders⋈Customer|" {
		t.Fatalf("card label = %q", got)
	}
	if got := NewHist(SE(expr.NewSet(0)), a).Label(blk); got != "H^{Orders.cid}_{Orders}" {
		t.Fatalf("hist label = %q", got)
	}
	if got := NewDistinct(SE(expr.NewSet(0)), a).Label(blk); got != "|Orders.cid_{Orders}|" {
		t.Fatalf("distinct label = %q", got)
	}
}

func TestCSSLabelAndKeys(t *testing.T) {
	blk := &workflow.Block{Inputs: []workflow.BlockInput{{Name: "A"}, {Name: "B"}}}
	a := workflow.Attr{Rel: "A", Col: "x"}
	css := CSS{Rule: "J1", Inputs: []Stat{
		NewHist(SE(expr.NewSet(0)), a),
		NewHist(SE(expr.NewSet(1)), a),
	}}
	if got := css.Label(blk); got != "J1{H^{A.x}_{A}, H^{A.x}_{B}}" {
		t.Fatalf("CSS label = %q", got)
	}
	if got := len(css.Keys()); got != 2 {
		t.Fatalf("Keys len = %d", got)
	}
}

func TestStoreScalarHist(t *testing.T) {
	st := NewStore()
	card := NewCard(SE(expr.NewSet(0)))
	st.PutScalar(card, 42)
	v, err := st.Scalar(card)
	if err != nil || v != 42 {
		t.Fatalf("Scalar = %d, %v", v, err)
	}
	a := workflow.Attr{Rel: "T", Col: "a"}
	hs := NewHist(SE(expr.NewSet(0)), a)
	h := NewHistogram(a)
	h.Add(1)
	st.PutHist(hs, h)
	got, err := st.Hist(hs)
	if err != nil || got.Total() != 1 {
		t.Fatalf("Hist: %v, %v", got, err)
	}
	if !st.Has(card) || !st.Has(hs) {
		t.Fatal("Has broken")
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	if _, err := st.Scalar(NewCard(SE(expr.NewSet(5)))); err == nil {
		t.Fatal("Scalar of missing stat: want error")
	}
	if _, err := st.Hist(NewHist(SE(expr.NewSet(5)), a)); err == nil {
		t.Fatal("Hist of missing stat: want error")
	}
	if _, err := st.Scalar(hs); err == nil {
		t.Fatal("Scalar of histogram stat: want error")
	}
	// Memory: one scalar + one bucket = 2 units.
	if got := st.MemoryUnits(); got != 2 {
		t.Fatalf("MemoryUnits = %d, want 2", got)
	}
}

func TestStoreValuesDeterministic(t *testing.T) {
	st := NewStore()
	for i := 5; i >= 0; i-- {
		st.PutScalar(NewCard(SE(expr.NewSet(i))), int64(i))
	}
	vals := st.Values()
	for i := 1; i < len(vals); i++ {
		if !keyLess(vals[i-1].Stat.Key(), vals[i].Stat.Key()) {
			t.Fatal("Values not sorted")
		}
	}
}

func TestStorePutKindErrors(t *testing.T) {
	st := NewStore()
	a := workflow.Attr{Rel: "T", Col: "a"}
	var ke *KindError
	if err := st.PutScalar(NewHist(SE(expr.NewSet(0)), a), 1); !errors.As(err, &ke) || ke.Op != "PutScalar" {
		t.Errorf("PutScalar(hist stat) = %v, want *KindError", err)
	}
	if err := st.PutHist(NewCard(SE(expr.NewSet(0))), NewHistogram(a)); !errors.As(err, &ke) || ke.Op != "PutHist" {
		t.Errorf("PutHist(card stat) = %v, want *KindError", err)
	}
	if err := st.PutScalarOnce(NewHist(SE(expr.NewSet(0)), a), 1); !errors.As(err, &ke) || ke.Op != "PutScalarOnce" {
		t.Errorf("PutScalarOnce(hist stat) = %v, want *KindError", err)
	}
	if err := st.PutHistOnce(NewCard(SE(expr.NewSet(0))), NewHistogram(a)); !errors.As(err, &ke) || ke.Op != "PutHistOnce" {
		t.Errorf("PutHistOnce(card stat) = %v, want *KindError", err)
	}
	// A rejected put must leave the store untouched.
	if st.Len() != 0 {
		t.Errorf("store holds %d values after rejected puts", st.Len())
	}
}
