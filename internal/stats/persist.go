package stats

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Statistics persistence: an ETL workflow runs on a schedule, usually in a
// fresh process each time, so the statistics observed in one run must
// survive to optimize the next (the design-once / execute-repeatedly loop
// of the paper). The format is a compact little-endian binary stream with a
// version header; it is deterministic for a given store (values are written
// in canonical statistic order, histogram buckets in sorted value order).

const (
	persistMagic   = "ETLSTAT"
	persistVersion = 1

	// persistHeaderLen is magic + version + count.
	persistHeaderLen = len(persistMagic) + 4 + 4
	// minValueLen is the smallest encoding of one value: kind, five target
	// fields, attribute count, shape flag, scalar.
	minValueLen = 1 + 5*8 + 2 + 1 + 8
	// minAttrLen is the smallest encoding of one attribute (two empty
	// strings).
	minAttrLen = 2 + 2
	// bucketLen is the encoding of one histogram bucket of the given arity.
	// (arity value int64s plus the frequency).
	//
	// maxStatCount and maxHistBuckets bound the declared element counts
	// when the stream size is unknown (a pure io.Reader): a hostile header
	// cannot commit the reader to unbounded work up front, it can only make
	// it parse until the actual bytes run out. When the size is known
	// (files, byte buffers) the tighter bytes-remaining check below applies
	// instead.
	maxStatCount   = 1 << 24
	maxHistBuckets = 1 << 30
)

// ErrCorrupt tags statistics streams rejected as structurally invalid —
// bad magic, truncation, counts that exceed the stream, values out of
// range, non-canonical encodings. Detect it with errors.Is.
var ErrCorrupt = errors.New("corrupt statistics stream")

// FormatError reports where and why a statistics stream was rejected. It
// wraps ErrCorrupt.
type FormatError struct {
	// Offset is the byte offset at which the problem was detected.
	Offset int64
	// Msg describes the problem.
	Msg string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("stats: corrupt statistics stream at byte %d: %s", e.Offset, e.Msg)
}

func (e *FormatError) Unwrap() error { return ErrCorrupt }

// WriteTo serializes the store. It implements io.WriterTo: the returned
// count is the number of bytes actually written to w, so the counter sits
// under the buffer (counting flushed bytes), not over it — and the final
// Flush error is propagated, which is where buffered write errors surface.
func (st *Store) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	if err := writeHeader(bw, st.Len()); err != nil {
		return cw.n, err
	}
	for _, v := range st.Values() {
		if err := writeValue(bw, v); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadStore deserializes a store written by WriteTo.
//
// The reader defends against corrupt or hostile streams: every declared
// count (statistics, attributes, histogram buckets) is validated against
// the remaining stream size when the size is knowable (files, byte
// buffers) and against hard caps when it is not; allocations grow with
// bytes actually consumed, never with declared counts alone; and the
// stream must be in the exact canonical form WriteTo produces (sorted
// attributes, sorted non-zero buckets, no duplicate statistics, no
// trailing bytes). Structural rejections are typed: errors.Is(err,
// ErrCorrupt) holds and the *FormatError carries the byte offset.
func ReadStore(r io.Reader) (*Store, error) {
	sr := &statReader{br: bufio.NewReader(r), size: streamSize(r)}
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(sr, magic); err != nil {
		return nil, sr.readErr("header", err)
	}
	if string(magic) != persistMagic {
		return nil, sr.corrupt("bad magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(sr, binary.LittleEndian, &version); err != nil {
		return nil, sr.readErr("version", err)
	}
	if version != persistVersion {
		return nil, sr.corrupt("unsupported version %d", version)
	}
	if err := binary.Read(sr, binary.LittleEndian, &count); err != nil {
		return nil, sr.readErr("count", err)
	}
	if count > maxStatCount {
		return nil, sr.corrupt("statistic count %d exceeds limit %d", count, maxStatCount)
	}
	if err := sr.checkRemaining(int64(count), minValueLen, "statistic"); err != nil {
		return nil, err
	}
	st := NewStore()
	var prev Key
	for i := uint32(0); i < count; i++ {
		v, err := readValue(sr)
		if err != nil {
			return nil, fmt.Errorf("stats: value %d: %w", i, err)
		}
		// The writer emits values in strictly ascending canonical key
		// order; this both rejects duplicates and keeps acceptance
		// equivalent to "WriteTo could have produced this".
		k := v.Stat.Key()
		if i > 0 && !keyLess(prev, k) {
			return nil, sr.corrupt("value %d: statistics not in canonical order (%v then %v)", i, prev, k)
		}
		prev = k
		if v.Hist != nil {
			err = st.PutHist(v.Stat, v.Hist)
		} else {
			err = st.PutScalar(v.Stat, v.Scalar)
		}
		if err != nil {
			return nil, fmt.Errorf("stats: value %d: %w", i, err)
		}
	}
	if _, err := sr.br.ReadByte(); err != io.EOF {
		return nil, sr.corrupt("trailing data after %d value(s)", count)
	}
	return st, nil
}

// statReader tracks the byte offset of the parse and the total stream size
// when it is knowable, so declared counts can be validated before they
// drive any allocation or long parse.
type statReader struct {
	br   *bufio.Reader
	off  int64
	size int64 // total bytes in the stream, or -1 when unknowable
}

func (r *statReader) Read(p []byte) (int, error) {
	n, err := r.br.Read(p)
	r.off += int64(n)
	return n, err
}

// corrupt builds a typed FormatError at the current offset.
func (r *statReader) corrupt(format string, args ...any) error {
	return &FormatError{Offset: r.off, Msg: fmt.Sprintf(format, args...)}
}

// readErr converts a low-level read failure: EOF mid-structure is a
// truncation (corrupt stream), anything else is a real I/O error and
// passes through wrapped.
func (r *statReader) readErr(what string, err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return r.corrupt("truncated %s", what)
	}
	return fmt.Errorf("stats: read %s at byte %d: %w", what, r.off, err)
}

// checkRemaining rejects a declared element count whose minimal encoding
// cannot fit in the bytes the stream still has (only when the total size
// is knowable).
func (r *statReader) checkRemaining(n, minLen int64, what string) error {
	if r.size < 0 {
		return nil
	}
	if need := n * minLen; need > r.size-r.off {
		return r.corrupt("%s count %d needs at least %d more byte(s), stream has %d",
			what, n, need, r.size-r.off)
	}
	return nil
}

// streamSize reports the total number of bytes the reader will deliver
// when that is knowable without consuming it: -1 otherwise.
func streamSize(r io.Reader) int64 {
	type lenner interface{ Len() int }
	switch v := r.(type) {
	case lenner: // bytes.Reader, bytes.Buffer, strings.Reader
		return int64(v.Len())
	case io.Seeker: // *os.File and friends
		cur, err := v.Seek(0, io.SeekCurrent)
		if err != nil {
			return -1
		}
		end, err := v.Seek(0, io.SeekEnd)
		if err != nil {
			return -1
		}
		if _, err := v.Seek(cur, io.SeekStart); err != nil {
			return -1
		}
		return end - cur
	}
	return -1
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeHeader(w io.Writer, count int) error {
	if _, err := io.WriteString(w, persistMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(persistVersion)); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, uint32(count))
}

func writeValue(w io.Writer, v *Value) error {
	s := v.Stat
	if err := binary.Write(w, binary.LittleEndian, uint8(s.Kind)); err != nil {
		return err
	}
	t := s.Target
	for _, x := range []int64{int64(t.Block), int64(t.Set), int64(t.Depth), int64(t.RejectInput), int64(t.RejectEdge)} {
		if err := binary.Write(w, binary.LittleEndian, x); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s.Attrs))); err != nil {
		return err
	}
	for _, a := range s.Attrs {
		if err := writeString(w, a.Rel); err != nil {
			return err
		}
		if err := writeString(w, a.Col); err != nil {
			return err
		}
	}
	if v.Hist == nil {
		if err := binary.Write(w, binary.LittleEndian, uint8(0)); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, v.Scalar)
	}
	if err := binary.Write(w, binary.LittleEndian, uint8(1)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(v.Hist.Buckets())); err != nil {
		return err
	}
	var werr error
	v.Hist.EachSorted(func(vals []int64, freq int64) {
		if werr != nil {
			return
		}
		for _, x := range vals {
			if werr = binary.Write(w, binary.LittleEndian, x); werr != nil {
				return
			}
		}
		werr = binary.Write(w, binary.LittleEndian, freq)
	})
	return werr
}

// intFieldRange is the valid range of the target's int fields. Statistic
// keys narrow them to int16 (Key), so anything wider would silently alias
// distinct statistics; nothing the writer produces comes close.
const (
	minTargetField = -1
	maxTargetField = 1<<15 - 1
)

func readValue(r *statReader) (*Value, error) {
	var kind uint8
	if err := binary.Read(r, binary.LittleEndian, &kind); err != nil {
		return nil, r.readErr("kind", err)
	}
	if Kind(kind) > Hist {
		return nil, r.corrupt("unknown statistic kind %d", kind)
	}
	var block, set, depth, rejIn, rejEdge int64
	for _, f := range []struct {
		p    *int64
		name string
	}{{&block, "block"}, {&set, "set"}, {&depth, "depth"}, {&rejIn, "reject input"}, {&rejEdge, "reject edge"}} {
		if err := binary.Read(r, binary.LittleEndian, f.p); err != nil {
			return nil, r.readErr("target "+f.name, err)
		}
		if f.name != "set" && (*f.p < minTargetField || *f.p > maxTargetField) {
			return nil, r.corrupt("target %s %d out of range", f.name, *f.p)
		}
	}
	if block < 0 {
		return nil, r.corrupt("negative block %d", block)
	}
	var nAttrs uint16
	if err := binary.Read(r, binary.LittleEndian, &nAttrs); err != nil {
		return nil, r.readErr("attribute count", err)
	}
	if err := r.checkRemaining(int64(nAttrs), minAttrLen, "attribute"); err != nil {
		return nil, err
	}
	// Grow with bytes consumed, not with the declared count: a lying count
	// on a size-unknown stream fails at EOF having allocated almost
	// nothing.
	attrs := make([]workflow.Attr, 0, min(int(nAttrs), 16))
	for i := 0; i < int(nAttrs); i++ {
		rel, err := readString(r)
		if err != nil {
			return nil, err
		}
		col, err := readString(r)
		if err != nil {
			return nil, err
		}
		a := workflow.Attr{Rel: rel, Col: col}
		// The writer emits canonical (sorted, de-duplicated) attribute
		// lists; anything else is not a stream WriteTo produced.
		if i > 0 && !attrs[i-1].Less(a) {
			return nil, r.corrupt("attributes not in canonical order (%v then %v)", attrs[i-1], a)
		}
		attrs = append(attrs, a)
	}
	target := Target{
		Block:       int(block),
		Set:         expr.Set(set),
		Depth:       int(depth),
		RejectInput: int(rejIn),
		RejectEdge:  int(rejEdge),
	}
	s := Stat{Kind: Kind(kind), Target: target, Attrs: attrs}
	var hasHist uint8
	if err := binary.Read(r, binary.LittleEndian, &hasHist); err != nil {
		return nil, r.readErr("shape flag", err)
	}
	if hasHist > 1 {
		return nil, r.corrupt("shape flag %d (want 0 or 1)", hasHist)
	}
	if (s.Kind == Hist) != (hasHist == 1) {
		return nil, r.corrupt("shape flag %d contradicts statistic kind %v", hasHist, s.Kind)
	}
	if hasHist == 0 {
		var scalar int64
		if err := binary.Read(r, binary.LittleEndian, &scalar); err != nil {
			return nil, r.readErr("scalar", err)
		}
		return &Value{Stat: s, Scalar: scalar}, nil
	}
	var buckets uint32
	if err := binary.Read(r, binary.LittleEndian, &buckets); err != nil {
		return nil, r.readErr("bucket count", err)
	}
	if buckets > maxHistBuckets {
		return nil, r.corrupt("bucket count %d exceeds limit %d", buckets, maxHistBuckets)
	}
	bucketLen := int64(len(s.Attrs)+1) * 8
	if err := r.checkRemaining(int64(buckets), bucketLen, "bucket"); err != nil {
		return nil, err
	}
	h := NewHistogram(s.Attrs...)
	vals := make([]int64, len(s.Attrs))
	var prevKey string
	for b := uint32(0); b < buckets; b++ {
		for i := range vals {
			if err := binary.Read(r, binary.LittleEndian, &vals[i]); err != nil {
				return nil, r.readErr("bucket value", err)
			}
		}
		var freq int64
		if err := binary.Read(r, binary.LittleEndian, &freq); err != nil {
			return nil, r.readErr("bucket frequency", err)
		}
		if freq == 0 {
			return nil, r.corrupt("zero-frequency bucket %v", vals)
		}
		// The writer emits buckets in strictly ascending value order;
		// out-of-order or duplicate buckets are not a WriteTo stream.
		k := encodeVals(vals)
		if b > 0 && k <= prevKey {
			return nil, r.corrupt("buckets not in canonical order at %v", vals)
		}
		prevKey = k
		if err := h.Inc(vals, freq); err != nil {
			return nil, r.corrupt("bucket %v: %v", vals, err)
		}
	}
	return &Value{Stat: s, Hist: h}, nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("stats: string too long (%d bytes)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r *statReader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", r.readErr("string length", err)
	}
	if err := r.checkRemaining(int64(n), 1, "string byte"); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", r.readErr("string", err)
	}
	return string(buf), nil
}
