package stats

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Statistics persistence: an ETL workflow runs on a schedule, usually in a
// fresh process each time, so the statistics observed in one run must
// survive to optimize the next (the design-once / execute-repeatedly loop
// of the paper). The format is a compact little-endian binary stream with a
// version header; it is deterministic for a given store (values are written
// in canonical statistic order, histogram buckets in sorted value order).

const (
	persistMagic   = "ETLSTAT"
	persistVersion = 1
)

// WriteTo serializes the store. It implements io.WriterTo: the returned
// count is the number of bytes actually written to w, so the counter sits
// under the buffer (counting flushed bytes), not over it — and the final
// Flush error is propagated, which is where buffered write errors surface.
func (st *Store) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	if err := writeHeader(bw, st.Len()); err != nil {
		return cw.n, err
	}
	for _, v := range st.Values() {
		if err := writeValue(bw, v); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadStore deserializes a store written by WriteTo.
func ReadStore(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("stats: read header: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("stats: bad magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("stats: read version: %w", err)
	}
	if version != persistVersion {
		return nil, fmt.Errorf("stats: unsupported version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("stats: read count: %w", err)
	}
	st := NewStore()
	for i := uint32(0); i < count; i++ {
		v, err := readValue(br)
		if err != nil {
			return nil, fmt.Errorf("stats: value %d: %w", i, err)
		}
		if v.Hist != nil {
			err = st.PutHist(v.Stat, v.Hist)
		} else {
			err = st.PutScalar(v.Stat, v.Scalar)
		}
		if err != nil {
			return nil, fmt.Errorf("stats: value %d: %w", i, err)
		}
	}
	return st, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeHeader(w io.Writer, count int) error {
	if _, err := io.WriteString(w, persistMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(persistVersion)); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, uint32(count))
}

func writeValue(w io.Writer, v *Value) error {
	s := v.Stat
	if err := binary.Write(w, binary.LittleEndian, uint8(s.Kind)); err != nil {
		return err
	}
	t := s.Target
	for _, x := range []int64{int64(t.Block), int64(t.Set), int64(t.Depth), int64(t.RejectInput), int64(t.RejectEdge)} {
		if err := binary.Write(w, binary.LittleEndian, x); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s.Attrs))); err != nil {
		return err
	}
	for _, a := range s.Attrs {
		if err := writeString(w, a.Rel); err != nil {
			return err
		}
		if err := writeString(w, a.Col); err != nil {
			return err
		}
	}
	if v.Hist == nil {
		if err := binary.Write(w, binary.LittleEndian, uint8(0)); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, v.Scalar)
	}
	if err := binary.Write(w, binary.LittleEndian, uint8(1)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(v.Hist.Buckets())); err != nil {
		return err
	}
	var werr error
	v.Hist.EachSorted(func(vals []int64, freq int64) {
		if werr != nil {
			return
		}
		for _, x := range vals {
			if werr = binary.Write(w, binary.LittleEndian, x); werr != nil {
				return
			}
		}
		werr = binary.Write(w, binary.LittleEndian, freq)
	})
	return werr
}

func readValue(r io.Reader) (*Value, error) {
	var kind uint8
	if err := binary.Read(r, binary.LittleEndian, &kind); err != nil {
		return nil, err
	}
	var block, set, depth, rejIn, rejEdge int64
	for _, p := range []*int64{&block, &set, &depth, &rejIn, &rejEdge} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	var nAttrs uint16
	if err := binary.Read(r, binary.LittleEndian, &nAttrs); err != nil {
		return nil, err
	}
	attrs := make([]workflow.Attr, nAttrs)
	for i := range attrs {
		rel, err := readString(r)
		if err != nil {
			return nil, err
		}
		col, err := readString(r)
		if err != nil {
			return nil, err
		}
		attrs[i] = workflow.Attr{Rel: rel, Col: col}
	}
	target := Target{
		Block:       int(block),
		Set:         expr.Set(set),
		Depth:       int(depth),
		RejectInput: int(rejIn),
		RejectEdge:  int(rejEdge),
	}
	s := Stat{Kind: Kind(kind), Target: target, Attrs: canonAttrs(attrs)}
	var hasHist uint8
	if err := binary.Read(r, binary.LittleEndian, &hasHist); err != nil {
		return nil, err
	}
	if hasHist == 0 {
		var scalar int64
		if err := binary.Read(r, binary.LittleEndian, &scalar); err != nil {
			return nil, err
		}
		return &Value{Stat: s, Scalar: scalar}, nil
	}
	var buckets uint32
	if err := binary.Read(r, binary.LittleEndian, &buckets); err != nil {
		return nil, err
	}
	h := NewHistogram(s.Attrs...)
	vals := make([]int64, len(s.Attrs))
	for b := uint32(0); b < buckets; b++ {
		for i := range vals {
			if err := binary.Read(r, binary.LittleEndian, &vals[i]); err != nil {
				return nil, err
			}
		}
		var freq int64
		if err := binary.Read(r, binary.LittleEndian, &freq); err != nil {
			return nil, err
		}
		if err := h.Inc(vals, freq); err != nil {
			return nil, err
		}
	}
	return &Value{Stat: s, Hist: h}, nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("stats: string too long (%d bytes)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
