package stats

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/essential-stats/etlopt/internal/expr"
	"github.com/essential-stats/etlopt/internal/workflow"
)

// Statistics persistence: an ETL workflow runs on a schedule, usually in a
// fresh process each time, so the statistics observed in one run must
// survive to optimize the next (the design-once / execute-repeatedly loop
// of the paper). The format is a compact little-endian binary stream with a
// version header; it is deterministic for a given store (values are written
// in canonical statistic order, histogram buckets in sorted value order).

const (
	persistMagic = "ETLSTAT"
	// persistVersion is the version WriteTo emits. Version 1 carried the
	// two-shape scalar/histogram union; version 2 added the sketch shapes
	// (HLL register files, count-min counter matrices). ReadStore accepts
	// both.
	persistVersion = 2
	// persistVersionMin is the oldest version ReadStore accepts.
	persistVersionMin = 1

	// persistHeaderLen is magic + version + count.
	persistHeaderLen = len(persistMagic) + 4 + 4
	// minValueLen is the smallest encoding of one value: kind, five target
	// fields, attribute count, shape flag, scalar.
	minValueLen = 1 + 5*8 + 2 + 1 + 8
	// minAttrLen is the smallest encoding of one attribute (two empty
	// strings).
	minAttrLen = 2 + 2
	// bucketLen is the encoding of one histogram bucket of the given arity.
	// (arity value int64s plus the frequency).
	//
	// maxStatCount and maxHistBuckets bound the declared element counts
	// when the stream size is unknown (a pure io.Reader): a hostile header
	// cannot commit the reader to unbounded work up front, it can only make
	// it parse until the actual bytes run out. When the size is known
	// (files, byte buffers) the tighter bytes-remaining check below applies
	// instead.
	maxStatCount   = 1 << 24
	maxHistBuckets = 1 << 30
)

// ErrCorrupt tags statistics streams rejected as structurally invalid —
// bad magic, truncation, counts that exceed the stream, values out of
// range, non-canonical encodings. Detect it with errors.Is.
var ErrCorrupt = errors.New("corrupt statistics stream")

// FormatError reports where and why a statistics stream was rejected. It
// wraps ErrCorrupt.
type FormatError struct {
	// Offset is the byte offset at which the problem was detected.
	Offset int64
	// Msg describes the problem.
	Msg string
	// Version is the stream's declared format version (0 before the header
	// is parsed).
	Version uint32
	// BadKind is the unregistered statistic-kind byte that caused the
	// rejection, or -1 when the problem is not an unknown kind. Callers can
	// distinguish "stream from a future format" from plain corruption.
	BadKind int
}

func (e *FormatError) Error() string {
	s := fmt.Sprintf("stats: corrupt statistics stream at byte %d: %s", e.Offset, e.Msg)
	if e.BadKind >= 0 {
		s += fmt.Sprintf(" (unknown kind byte %d in version-%d stream)", e.BadKind, e.Version)
	}
	return s
}

func (e *FormatError) Unwrap() error { return ErrCorrupt }

// WriteTo serializes the store. It implements io.WriterTo: the returned
// count is the number of bytes actually written to w, so the counter sits
// under the buffer (counting flushed bytes), not over it — and the final
// Flush error is propagated, which is where buffered write errors surface.
func (st *Store) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	if err := writeHeader(bw, st.Len()); err != nil {
		return cw.n, err
	}
	for _, v := range st.Values() {
		if err := writeValue(bw, v); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadStore deserializes a store written by WriteTo.
//
// The reader defends against corrupt or hostile streams: every declared
// count (statistics, attributes, histogram buckets) is validated against
// the remaining stream size when the size is knowable (files, byte
// buffers) and against hard caps when it is not; allocations grow with
// bytes actually consumed, never with declared counts alone; and the
// stream must be in the exact canonical form WriteTo produces (sorted
// attributes, sorted non-zero buckets, no duplicate statistics, no
// trailing bytes). Structural rejections are typed: errors.Is(err,
// ErrCorrupt) holds and the *FormatError carries the byte offset.
func ReadStore(r io.Reader) (*Store, error) {
	sr := &statReader{br: bufio.NewReader(r), size: streamSize(r)}
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(sr, magic); err != nil {
		return nil, sr.readErr("header", err)
	}
	if string(magic) != persistMagic {
		return nil, sr.corrupt("bad magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(sr, binary.LittleEndian, &version); err != nil {
		return nil, sr.readErr("version", err)
	}
	if version < persistVersionMin || version > persistVersion {
		return nil, sr.corrupt("unsupported version %d", version)
	}
	sr.version = version
	if err := binary.Read(sr, binary.LittleEndian, &count); err != nil {
		return nil, sr.readErr("count", err)
	}
	if count > maxStatCount {
		return nil, sr.corrupt("statistic count %d exceeds limit %d", count, maxStatCount)
	}
	if err := sr.checkRemaining(int64(count), minValueLen, "statistic"); err != nil {
		return nil, err
	}
	st := NewStore()
	var prev Key
	for i := uint32(0); i < count; i++ {
		v, err := readValue(sr)
		if err != nil {
			return nil, fmt.Errorf("stats: value %d: %w", i, err)
		}
		// The writer emits values in strictly ascending canonical key
		// order; this both rejects duplicates and keeps acceptance
		// equivalent to "WriteTo could have produced this".
		k := v.Stat.Key()
		if i > 0 && !keyLess(prev, k) {
			return nil, sr.corrupt("value %d: statistics not in canonical order (%v then %v)", i, prev, k)
		}
		prev = k
		switch {
		case v.Hist != nil:
			err = st.PutHist(v.Stat, v.Hist)
		case v.HLL != nil:
			err = st.PutHLL(v.Stat, v.HLL)
		case v.CM != nil:
			err = st.PutCM(v.Stat, v.CM)
		default:
			err = st.PutScalar(v.Stat, v.Scalar)
		}
		if err != nil {
			return nil, fmt.Errorf("stats: value %d: %w", i, err)
		}
	}
	if _, err := sr.br.ReadByte(); err != io.EOF {
		return nil, sr.corrupt("trailing data after %d value(s)", count)
	}
	return st, nil
}

// statReader tracks the byte offset of the parse and the total stream size
// when it is knowable, so declared counts can be validated before they
// drive any allocation or long parse.
type statReader struct {
	br   *bufio.Reader
	off  int64
	size int64 // total bytes in the stream, or -1 when unknowable
	// version is the stream's declared format version once the header has
	// been parsed; per-value decoding branches on it.
	version uint32
}

func (r *statReader) Read(p []byte) (int, error) {
	n, err := r.br.Read(p)
	r.off += int64(n)
	return n, err
}

// ReadByte keeps the offset accurate for varint decoding, which consumes
// the stream byte-wise through binary.ReadUvarint.
func (r *statReader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err == nil {
		r.off++
	}
	return b, err
}

// readUvarint decodes one canonical (minimal-length) unsigned varint. The
// format stays "WriteTo could have produced this": an over-long encoding
// of a small value is rejected, so every accepted stream re-serializes to
// identical bytes.
func (r *statReader) readUvarint(what string) (uint64, error) {
	start := r.off
	v, err := binary.ReadUvarint(r)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, r.corrupt("truncated %s", what)
		}
		return 0, r.corrupt("invalid %s varint: %v", what, err)
	}
	if n := r.off - start; n > 1 && v < 1<<(7*uint(n-1)) {
		return 0, r.corrupt("non-minimal varint for %s", what)
	}
	return v, nil
}

// corrupt builds a typed FormatError at the current offset.
func (r *statReader) corrupt(format string, args ...any) error {
	return &FormatError{Offset: r.off, Msg: fmt.Sprintf(format, args...), Version: r.version, BadKind: -1}
}

// unknownKind builds the forward-compatibility rejection: a kind byte the
// registry does not know, carrying the byte and the stream version so a
// caller can tell a future-format stream from corruption.
func (r *statReader) unknownKind(kind uint8) error {
	return &FormatError{
		Offset:  r.off,
		Msg:     "unregistered statistic kind",
		Version: r.version,
		BadKind: int(kind),
	}
}

// readErr converts a low-level read failure: EOF mid-structure is a
// truncation (corrupt stream), anything else is a real I/O error and
// passes through wrapped.
func (r *statReader) readErr(what string, err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return r.corrupt("truncated %s", what)
	}
	return fmt.Errorf("stats: read %s at byte %d: %w", what, r.off, err)
}

// checkRemaining rejects a declared element count whose minimal encoding
// cannot fit in the bytes the stream still has (only when the total size
// is knowable).
func (r *statReader) checkRemaining(n, minLen int64, what string) error {
	if r.size < 0 {
		return nil
	}
	if need := n * minLen; need > r.size-r.off {
		return r.corrupt("%s count %d needs at least %d more byte(s), stream has %d",
			what, n, need, r.size-r.off)
	}
	return nil
}

// streamSize reports the total number of bytes the reader will deliver
// when that is knowable without consuming it: -1 otherwise.
func streamSize(r io.Reader) int64 {
	type lenner interface{ Len() int }
	switch v := r.(type) {
	case lenner: // bytes.Reader, bytes.Buffer, strings.Reader
		return int64(v.Len())
	case io.Seeker: // *os.File and friends
		cur, err := v.Seek(0, io.SeekCurrent)
		if err != nil {
			return -1
		}
		end, err := v.Seek(0, io.SeekEnd)
		if err != nil {
			return -1
		}
		if _, err := v.Seek(cur, io.SeekStart); err != nil {
			return -1
		}
		return end - cur
	}
	return -1
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeHeader(w io.Writer, count int) error {
	if _, err := io.WriteString(w, persistMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(persistVersion)); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, uint32(count))
}

func writeValue(w io.Writer, v *Value) error {
	s := v.Stat
	if err := binary.Write(w, binary.LittleEndian, uint8(s.Kind)); err != nil {
		return err
	}
	t := s.Target
	for _, x := range []int64{int64(t.Block), int64(t.Set), int64(t.Depth), int64(t.RejectInput), int64(t.RejectEdge)} {
		if err := binary.Write(w, binary.LittleEndian, x); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s.Attrs))); err != nil {
		return err
	}
	for _, a := range s.Attrs {
		if err := writeString(w, a.Rel); err != nil {
			return err
		}
		if err := writeString(w, a.Col); err != nil {
			return err
		}
	}
	// The shape byte mirrors the kind registry: 0 scalar, 1 histogram,
	// 2 HLL register file, 3 count-min matrix (2 and 3 are version-2
	// encodings).
	switch {
	case v.Hist != nil:
		if err := binary.Write(w, binary.LittleEndian, uint8(ShapeHist)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(v.Hist.Buckets())); err != nil {
			return err
		}
		var werr error
		v.Hist.EachSorted(func(vals []int64, freq int64) {
			if werr != nil {
				return
			}
			for _, x := range vals {
				if werr = binary.Write(w, binary.LittleEndian, x); werr != nil {
					return
				}
			}
			werr = binary.Write(w, binary.LittleEndian, freq)
		})
		return werr
	case v.HLL != nil:
		if err := binary.Write(w, binary.LittleEndian, uint8(ShapeHLL)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, v.HLL.P); err != nil {
			return err
		}
		return writeHLLRegs(w, v.HLL)
	case v.CM != nil:
		if err := binary.Write(w, binary.LittleEndian, uint8(ShapeCM)); err != nil {
			return err
		}
		cm := v.CM
		for _, x := range []int64{cm.Spec.Lo, cm.Spec.Hi} {
			if err := binary.Write(w, binary.LittleEndian, x); err != nil {
				return err
			}
		}
		for _, x := range []uint32{uint32(cm.Spec.N), uint32(cm.Depth), uint32(cm.Width)} {
			if err := binary.Write(w, binary.LittleEndian, x); err != nil {
				return err
			}
		}
		for _, c := range cm.Counters {
			if err := writeUvarint(w, uint64(c)); err != nil {
				return err
			}
		}
		return nil
	default:
		if err := binary.Write(w, binary.LittleEndian, uint8(ShapeScalar)); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, v.Scalar)
	}
}

// intFieldRange is the valid range of the target's int fields. Statistic
// keys narrow them to int16 (Key), so anything wider would silently alias
// distinct statistics; nothing the writer produces comes close.
const (
	minTargetField = -1
	maxTargetField = 1<<15 - 1
)

func readValue(r *statReader) (*Value, error) {
	var kind uint8
	if err := binary.Read(r, binary.LittleEndian, &kind); err != nil {
		return nil, r.readErr("kind", err)
	}
	if !Kind(kind).Valid() {
		return nil, r.unknownKind(kind)
	}
	if r.version < 2 && Kind(kind) > Hist {
		// Sketch kinds did not exist in version 1; a v1 stream carrying one
		// is not a stream any writer produced.
		return nil, r.corrupt("statistic kind %v requires format version 2, stream is version %d", Kind(kind), r.version)
	}
	var block, set, depth, rejIn, rejEdge int64
	for _, f := range []struct {
		p    *int64
		name string
	}{{&block, "block"}, {&set, "set"}, {&depth, "depth"}, {&rejIn, "reject input"}, {&rejEdge, "reject edge"}} {
		if err := binary.Read(r, binary.LittleEndian, f.p); err != nil {
			return nil, r.readErr("target "+f.name, err)
		}
		if f.name != "set" && (*f.p < minTargetField || *f.p > maxTargetField) {
			return nil, r.corrupt("target %s %d out of range", f.name, *f.p)
		}
	}
	if block < 0 {
		return nil, r.corrupt("negative block %d", block)
	}
	var nAttrs uint16
	if err := binary.Read(r, binary.LittleEndian, &nAttrs); err != nil {
		return nil, r.readErr("attribute count", err)
	}
	if err := r.checkRemaining(int64(nAttrs), minAttrLen, "attribute"); err != nil {
		return nil, err
	}
	// Grow with bytes consumed, not with the declared count: a lying count
	// on a size-unknown stream fails at EOF having allocated almost
	// nothing.
	attrs := make([]workflow.Attr, 0, min(int(nAttrs), 16))
	for i := 0; i < int(nAttrs); i++ {
		rel, err := readString(r)
		if err != nil {
			return nil, err
		}
		col, err := readString(r)
		if err != nil {
			return nil, err
		}
		a := workflow.Attr{Rel: rel, Col: col}
		// The writer emits canonical (sorted, de-duplicated) attribute
		// lists; anything else is not a stream WriteTo produced.
		if i > 0 && !attrs[i-1].Less(a) {
			return nil, r.corrupt("attributes not in canonical order (%v then %v)", attrs[i-1], a)
		}
		attrs = append(attrs, a)
	}
	target := Target{
		Block:       int(block),
		Set:         expr.Set(set),
		Depth:       int(depth),
		RejectInput: int(rejIn),
		RejectEdge:  int(rejEdge),
	}
	s := Stat{Kind: Kind(kind), Target: target, Attrs: attrs}
	var shape uint8
	if err := binary.Read(r, binary.LittleEndian, &shape); err != nil {
		return nil, r.readErr("shape flag", err)
	}
	maxShape := uint8(ShapeHist)
	if r.version >= 2 {
		maxShape = uint8(ShapeCM)
	}
	if shape > maxShape {
		return nil, r.corrupt("shape flag %d (version %d allows at most %d)", shape, r.version, maxShape)
	}
	if Shape(shape) != s.Kind.Shape() {
		return nil, r.corrupt("shape flag %d contradicts statistic kind %v", shape, s.Kind)
	}
	switch Shape(shape) {
	case ShapeScalar:
		var scalar int64
		if err := binary.Read(r, binary.LittleEndian, &scalar); err != nil {
			return nil, r.readErr("scalar", err)
		}
		return &Value{Stat: s, Scalar: scalar}, nil
	case ShapeHLL:
		return r.readHLLValue(s)
	case ShapeCM:
		return r.readCMValue(s)
	}
	var buckets uint32
	if err := binary.Read(r, binary.LittleEndian, &buckets); err != nil {
		return nil, r.readErr("bucket count", err)
	}
	if buckets > maxHistBuckets {
		return nil, r.corrupt("bucket count %d exceeds limit %d", buckets, maxHistBuckets)
	}
	bucketLen := int64(len(s.Attrs)+1) * 8
	if err := r.checkRemaining(int64(buckets), bucketLen, "bucket"); err != nil {
		return nil, err
	}
	h := NewHistogram(s.Attrs...)
	vals := make([]int64, len(s.Attrs))
	var prevKey string
	for b := uint32(0); b < buckets; b++ {
		for i := range vals {
			if err := binary.Read(r, binary.LittleEndian, &vals[i]); err != nil {
				return nil, r.readErr("bucket value", err)
			}
		}
		var freq int64
		if err := binary.Read(r, binary.LittleEndian, &freq); err != nil {
			return nil, r.readErr("bucket frequency", err)
		}
		if freq == 0 {
			return nil, r.corrupt("zero-frequency bucket %v", vals)
		}
		// The writer emits buckets in strictly ascending value order;
		// out-of-order or duplicate buckets are not a WriteTo stream.
		k := encodeVals(vals)
		if b > 0 && k <= prevKey {
			return nil, r.corrupt("buckets not in canonical order at %v", vals)
		}
		prevKey = k
		if err := h.Inc(vals, freq); err != nil {
			return nil, r.corrupt("bucket %v: %v", vals, err)
		}
	}
	return &Value{Stat: s, Hist: h}, nil
}

// hllSparse decides the register-file encoding: a register file whose
// occupancy is below a quarter writes smaller as (index, rank) pairs —
// each pair costs at most 4 bytes (a ≤3-byte index varint plus the rank) —
// while a fuller one writes smaller dense. The rule depends only on the
// nonzero-register count, so the reader can re-check it and keep the
// stream canonical.
func hllSparse(nonzero, regs int) bool { return 4*nonzero < regs }

// writeHLLRegs encodes an HLL register file: a mode byte (0 dense, 1
// sparse), then either all 2^p rank bytes or a varint pair count followed
// by ascending (varint index, rank byte) pairs for the nonzero registers.
func writeHLLRegs(w io.Writer, h *HLL) error {
	nonzero := 0
	for _, reg := range h.Regs {
		if reg != 0 {
			nonzero++
		}
	}
	if !hllSparse(nonzero, len(h.Regs)) {
		if err := binary.Write(w, binary.LittleEndian, uint8(0)); err != nil {
			return err
		}
		_, err := w.Write(h.Regs)
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint8(1)); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(nonzero)); err != nil {
		return err
	}
	for i, reg := range h.Regs {
		if reg == 0 {
			continue
		}
		if err := writeUvarint(w, uint64(i)); err != nil {
			return err
		}
		if _, err := w.Write([]byte{reg}); err != nil {
			return err
		}
	}
	return nil
}

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	_, err := w.Write(buf[:binary.PutUvarint(buf[:], v)])
	return err
}

func writeString(w io.Writer, s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("stats: string too long (%d bytes)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// readHLLValue decodes an HLL register file: precision byte, then 2^p
// registers (each a rank in [0, 65-p]).
func (r *statReader) readHLLValue(s Stat) (*Value, error) {
	var p uint8
	if err := binary.Read(r, binary.LittleEndian, &p); err != nil {
		return nil, r.readErr("hll precision", err)
	}
	if p < hllPMin || p > hllPMax {
		return nil, r.corrupt("hll precision %d out of range [%d, %d]", p, hllPMin, hllPMax)
	}
	n := int64(1) << p
	var mode uint8
	if err := binary.Read(r, binary.LittleEndian, &mode); err != nil {
		return nil, r.readErr("hll register mode", err)
	}
	maxRank := byte(65 - p)
	switch mode {
	case 0: // dense: 2^p raw rank bytes
		if err := r.checkRemaining(n, 1, "hll register"); err != nil {
			return nil, err
		}
		regs := make([]byte, n)
		if _, err := io.ReadFull(r, regs); err != nil {
			return nil, r.readErr("hll registers", err)
		}
		nonzero := 0
		for i, reg := range regs {
			if reg > maxRank {
				return nil, r.corrupt("hll register %d holds impossible rank %d", i, reg)
			}
			if reg != 0 {
				nonzero++
			}
		}
		if hllSparse(nonzero, len(regs)) {
			return nil, r.corrupt("dense hll encoding of %d/%d registers (writer emits sparse)", nonzero, len(regs))
		}
		return &Value{Stat: s, HLL: &HLL{P: p, Regs: regs}, Approx: true}, nil
	case 1: // sparse: pair count, ascending (index, rank) pairs
		pairs, err := r.readUvarint("hll pair count")
		if err != nil {
			return nil, err
		}
		if !hllSparse(int(pairs), int(n)) || int64(pairs) > n {
			return nil, r.corrupt("sparse hll encoding of %d/%d registers (writer emits dense)", pairs, n)
		}
		if err := r.checkRemaining(int64(pairs), 2, "hll register pair"); err != nil {
			return nil, err
		}
		regs := make([]byte, n)
		prev := int64(-1)
		for i := uint64(0); i < pairs; i++ {
			idx, err := r.readUvarint("hll register index")
			if err != nil {
				return nil, err
			}
			if int64(idx) >= n {
				return nil, r.corrupt("hll register index %d out of range", idx)
			}
			if int64(idx) <= prev {
				return nil, r.corrupt("hll register indexes not ascending at %d", idx)
			}
			prev = int64(idx)
			var rank [1]byte
			if _, err := io.ReadFull(r, rank[:]); err != nil {
				return nil, r.readErr("hll register rank", err)
			}
			if rank[0] == 0 || rank[0] > maxRank {
				return nil, r.corrupt("hll register %d holds impossible rank %d", idx, rank[0])
			}
			regs[idx] = rank[0]
		}
		return &Value{Stat: s, HLL: &HLL{P: p, Regs: regs}, Approx: true}, nil
	default:
		return nil, r.corrupt("hll register mode %d", mode)
	}
}

// maxCMDim bounds the declared count-min dimensions; nothing the writer
// produces comes close, and depth*width*8 drives the allocation.
const maxCMDim = 1 << 12

// readCMValue decodes a count-min matrix: bucket spec (lo, hi, n), depth,
// width, then depth*width counters.
func (r *statReader) readCMValue(s Stat) (*Value, error) {
	var lo, hi int64
	if err := binary.Read(r, binary.LittleEndian, &lo); err != nil {
		return nil, r.readErr("cm bucket lo", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &hi); err != nil {
		return nil, r.readErr("cm bucket hi", err)
	}
	var n, depth, width uint32
	for _, f := range []struct {
		p    *uint32
		name string
	}{{&n, "cm bucket count"}, {&depth, "cm depth"}, {&width, "cm width"}} {
		if err := binary.Read(r, binary.LittleEndian, f.p); err != nil {
			return nil, r.readErr(f.name, err)
		}
	}
	spec := BucketSpec{Lo: lo, Hi: hi, N: int(n)}
	// Acceptance stays "WriteTo could have produced this": the spec must be
	// in the canonical form NewBucketSpec returns.
	if n == 0 || n > maxCMDim || spec != NewBucketSpec(lo, hi, int(n)) {
		return nil, r.corrupt("non-canonical cm bucket spec [%d, %d]/%d", lo, hi, n)
	}
	if depth == 0 || depth > maxCMDim || width == 0 || width > maxCMDim {
		return nil, r.corrupt("cm dimensions %dx%d out of range", depth, width)
	}
	cells := int64(depth) * int64(width)
	if err := r.checkRemaining(cells, 1, "cm counter"); err != nil {
		return nil, err
	}
	counters := make([]int64, cells)
	for i := range counters {
		c, err := r.readUvarint("cm counter")
		if err != nil {
			return nil, err
		}
		if c > math.MaxInt64 {
			return nil, r.corrupt("cm counter %d overflows at cell %d", c, i)
		}
		counters[i] = int64(c)
	}
	return &Value{Stat: s, CM: &CMH{Spec: spec, Depth: int(depth), Width: int(width), Counters: counters}, Approx: true}, nil
}

func readString(r *statReader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", r.readErr("string length", err)
	}
	if err := r.checkRemaining(int64(n), 1, "string byte"); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", r.readErr("string", err)
	}
	return string(buf), nil
}
