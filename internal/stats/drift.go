package stats

import "math"

// Drift quantifies how far the data under a workflow has moved between two
// observation stores (typically consecutive runs). The paper's loop
// re-collects statistics and re-optimizes "at each run or at some other
// user defined interval" (Section 3.2); drift gives that interval a
// data-driven trigger: re-optimize when the statistics that justified the
// current plan have shifted beyond a threshold.
type Drift struct {
	// MaxRel is the largest relative change of any statistic present in
	// both stores (scalars by value, histograms by L1 distance over their
	// total mass).
	MaxRel float64
	// MeanRel is the mean relative change across shared statistics.
	MeanRel float64
	// Shared counts statistics present in both stores.
	Shared int
	// OnlyOld and OnlyNew count statistics present in one store only
	// (differing instrumentation between the runs).
	OnlyOld, OnlyNew int
}

// MeasureDrift compares two stores. Both stores are read-locked (in a
// fixed order, so concurrent two-store operations cannot deadlock):
// measuring drift against a store that is still being fed by an
// instrumented run is safe.
func MeasureDrift(old, new *Store) Drift {
	defer lockPair(old, new, false)()
	var d Drift
	var sum float64
	for k, ov := range old.m {
		nv, ok := new.m[k]
		if !ok {
			d.OnlyOld++
			continue
		}
		d.Shared++
		rel := valueDrift(ov, nv)
		sum += rel
		if rel > d.MaxRel {
			d.MaxRel = rel
		}
	}
	for k := range new.m {
		if _, ok := old.m[k]; !ok {
			d.OnlyNew++
		}
	}
	if d.Shared > 0 {
		d.MeanRel = sum / float64(d.Shared)
	}
	return d
}

// valueDrift returns the relative change between two observations of the
// same statistic.
func valueDrift(ov, nv *Value) float64 {
	if (ov.Hist == nil) != (nv.Hist == nil) {
		// The representation itself changed between runs (scalar one run,
		// histogram the other, e.g. differing instrumentation): comparing
		// the zero Scalar against a real one would report spurious
		// agreement, so count it as full drift.
		return 1
	}
	if ov.Hist == nil {
		return relChange(float64(ov.Scalar), float64(nv.Scalar))
	}
	// Histograms: L1 distance of the bucket vectors, normalized by the
	// larger total mass — 0 for identical distributions, up to 2 for
	// disjoint supports; halve into [0, 1].
	var l1 float64
	ov.Hist.Each(func(vals []int64, f int64) {
		l1 += math.Abs(float64(f) - float64(nv.Hist.Freq(vals...)))
	})
	nv.Hist.Each(func(vals []int64, f int64) {
		if ov.Hist.Freq(vals...) == 0 {
			l1 += float64(f)
		}
	})
	denom := math.Max(float64(ov.Hist.Total()), float64(nv.Hist.Total()))
	if denom == 0 {
		if l1 == 0 {
			return 0
		}
		return 1
	}
	return l1 / (2 * denom)
}

func relChange(a, b float64) float64 {
	if a == b {
		return 0
	}
	denom := math.Max(math.Abs(a), math.Abs(b))
	if denom == 0 {
		return 0
	}
	return math.Abs(a-b) / denom
}

// Exceeds reports whether any statistic moved beyond the threshold
// (relative change in [0, 1]).
func (d Drift) Exceeds(threshold float64) bool { return d.MaxRel > threshold }
