package stats

import "math"

// Drift quantifies how far the data under a workflow has moved between two
// observation stores (typically consecutive runs). The paper's loop
// re-collects statistics and re-optimizes "at each run or at some other
// user defined interval" (Section 3.2); drift gives that interval a
// data-driven trigger: re-optimize when the statistics that justified the
// current plan have shifted beyond a threshold.
type Drift struct {
	// MaxRel is the largest relative change of any statistic present in
	// both stores (scalars by value, histograms by L1 distance over their
	// total mass).
	MaxRel float64
	// MeanRel is the mean relative change across shared statistics.
	MeanRel float64
	// Shared counts statistics present in both stores.
	Shared int
	// OnlyOld and OnlyNew count statistics present in one store only
	// (differing instrumentation between the runs).
	OnlyOld, OnlyNew int
}

// MeasureDrift compares two stores. Both stores are read-locked (in a
// fixed order, so concurrent two-store operations cannot deadlock):
// measuring drift against a store that is still being fed by an
// instrumented run is safe.
//
// A sketch generation and an exact generation of the same target compare
// as siblings: a statistic present in one store only under its exact kind
// and in the other only under its approximate counterpart (same target and
// attributes) counts as Shared, with the sketch's estimate compared against
// the exact figure. Without this pairing, switching the observation tier
// between runs would report total drift on every statistic — the same
// mis-comparison the pre-PR3 mixed scalar/histogram bug made within a
// store.
func MeasureDrift(old, new *Store) Drift {
	defer lockPair(old, new, false)()
	var d Drift
	var sum float64
	// matchedNew tracks new-store keys consumed by sibling pairing so the
	// OnlyNew sweep does not double-count them.
	matchedNew := make(map[Key]bool)
	for k, ov := range old.m {
		nv, ok := new.m[k]
		if !ok {
			if sk, sok := siblingKey(k); sok {
				if sv, have := new.m[sk]; have {
					d.Shared++
					matchedNew[sk] = true
					rel := crossTierDrift(ov, sv)
					sum += rel
					if rel > d.MaxRel {
						d.MaxRel = rel
					}
					continue
				}
			}
			d.OnlyOld++
			continue
		}
		d.Shared++
		rel := valueDrift(ov, nv)
		sum += rel
		if rel > d.MaxRel {
			d.MaxRel = rel
		}
	}
	for k := range new.m {
		if _, ok := old.m[k]; !ok && !matchedNew[k] {
			d.OnlyNew++
		}
	}
	if d.Shared > 0 {
		d.MeanRel = sum / float64(d.Shared)
	}
	return d
}

// siblingKey toggles a key between a kind and its exact/approximate
// counterpart (Distinct ↔ HLLDistinct, Hist ↔ CMHist); ok is false for
// kinds without a counterpart.
func siblingKey(k Key) (Key, bool) {
	var sib Kind
	switch k.Kind {
	case Distinct:
		sib = HLLDistinct
	case HLLDistinct:
		sib = Distinct
	case Hist:
		sib = CMHist
	case CMHist:
		sib = Hist
	default:
		return Key{}, false
	}
	k.Kind = sib
	return k, true
}

// crossTierDrift compares a sketch observation against an exact one of the
// same target (either ordering).
func crossTierDrift(a, b *Value) float64 {
	// Normalize so x is exact and y approximate.
	x, y := a, b
	if x.Stat.Kind.Approx() {
		x, y = y, x
	}
	switch {
	case y.HLL != nil && x.Hist == nil && x.CM == nil:
		return relChange(float64(x.Scalar), float64(y.HLL.Estimate()))
	case y.CM != nil && x.Hist != nil:
		// Bucketize the exact histogram to the sketch's spec and compare
		// bucket vectors by normalized L1, mirroring valueDrift's exact
		// histogram comparison.
		ex, err := Bucketize(x.Hist, y.CM.Spec)
		if err != nil {
			return 1
		}
		ap := y.CM.Approx()
		var l1, exTotal, apTotal float64
		for i := 0; i < y.CM.Spec.N; i++ {
			l1 += math.Abs(ex.Totals[i] - ap.Totals[i])
			exTotal += ex.Totals[i]
			apTotal += ap.Totals[i]
		}
		denom := math.Max(exTotal, apTotal)
		if denom == 0 {
			if l1 == 0 {
				return 0
			}
			return 1
		}
		return math.Min(1, l1/(2*denom))
	}
	// Shapes that cannot be compared meaningfully: full drift.
	return 1
}

// valueDrift returns the relative change between two observations of the
// same statistic.
func valueDrift(ov, nv *Value) float64 {
	if ov.HLL != nil || nv.HLL != nil {
		// Two sketch generations of a distinct count: compare estimates.
		if ov.HLL == nil || nv.HLL == nil {
			return 1
		}
		return relChange(float64(ov.HLL.Estimate()), float64(nv.HLL.Estimate()))
	}
	if ov.CM != nil || nv.CM != nil {
		if ov.CM == nil || nv.CM == nil || ov.CM.Spec != nv.CM.Spec {
			return 1
		}
		a, b := ov.CM.Approx(), nv.CM.Approx()
		var l1, at, bt float64
		for i := 0; i < ov.CM.Spec.N; i++ {
			l1 += math.Abs(a.Totals[i] - b.Totals[i])
			at += a.Totals[i]
			bt += b.Totals[i]
		}
		denom := math.Max(at, bt)
		if denom == 0 {
			if l1 == 0 {
				return 0
			}
			return 1
		}
		return math.Min(1, l1/(2*denom))
	}
	if (ov.Hist == nil) != (nv.Hist == nil) {
		// The representation itself changed between runs (scalar one run,
		// histogram the other, e.g. differing instrumentation): comparing
		// the zero Scalar against a real one would report spurious
		// agreement, so count it as full drift.
		return 1
	}
	if ov.Hist == nil {
		return relChange(float64(ov.Scalar), float64(nv.Scalar))
	}
	// Histograms: L1 distance of the bucket vectors, normalized by the
	// larger total mass — 0 for identical distributions, up to 2 for
	// disjoint supports; halve into [0, 1].
	var l1 float64
	ov.Hist.Each(func(vals []int64, f int64) {
		l1 += math.Abs(float64(f) - float64(nv.Hist.Freq(vals...)))
	})
	nv.Hist.Each(func(vals []int64, f int64) {
		if ov.Hist.Freq(vals...) == 0 {
			l1 += float64(f)
		}
	})
	denom := math.Max(float64(ov.Hist.Total()), float64(nv.Hist.Total()))
	if denom == 0 {
		if l1 == 0 {
			return 0
		}
		return 1
	}
	return l1 / (2 * denom)
}

func relChange(a, b float64) float64 {
	if a == b {
		return 0
	}
	denom := math.Max(math.Abs(a), math.Abs(b))
	if denom == 0 {
		return 0
	}
	return math.Abs(a-b) / denom
}

// Exceeds reports whether any statistic moved beyond the threshold
// (relative change in [0, 1]).
func (d Drift) Exceeds(threshold float64) bool { return d.MaxRel > threshold }
