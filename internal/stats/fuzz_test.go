package stats

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadStore drives the statistics-stream reader with arbitrary bytes.
// The stream is the framework's durable interface between runs (the
// design-once / execute-repeatedly loop persists observations through it),
// and the serving daemon reads it straight off the network — so the reader
// must reject anything WriteTo could not have produced with a typed error,
// never a panic or an unbounded allocation, and everything it does accept
// must re-serialize to the identical bytes (the stream format is
// canonical).
func FuzzReadStore(f *testing.F) {
	// A genuine stream with scalars, a reject target, a chain point and a
	// two-attribute histogram.
	var valid bytes.Buffer
	if _, err := sampleStore().WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Truncations at interesting boundaries.
	f.Add(valid.Bytes()[:7])                     // magic only
	f.Add(valid.Bytes()[:11])                    // magic + version
	f.Add(valid.Bytes()[:15])                    // full header
	f.Add(valid.Bytes()[:valid.Len()/2])         // mid-value
	f.Add(valid.Bytes()[:valid.Len()-1])         // last byte missing
	f.Add(append(valid.Bytes(), 0))              // trailing byte
	f.Add([]byte{})                              // empty
	f.Add([]byte("ETLSTAT"))                     // bare magic
	f.Add([]byte("NOTMAGIC"))                    // wrong magic
	f.Add([]byte("ETLSTAT\x03\x00\x00\x00"))     // future version
	f.Add([]byte("ETLSTAT\x02\x00\x00\x00"))     // v2 header, truncated count
	// Header claiming 2^24 statistics with no bytes behind it.
	f.Add([]byte("ETLSTAT\x01\x00\x00\x00\x00\x00\x00\x01"))
	// Header count past the absolute cap.
	f.Add([]byte("ETLSTAT\x01\x00\x00\x00\xff\xff\xff\xff"))

	// Version-2 streams: a genuine store carrying both sketch shapes, and
	// its v1 downgrade (a valid v1 stream that must upgrade cleanly).
	var valid2 bytes.Buffer
	if _, err := sampleSketchStore().WriteTo(&valid2); err != nil {
		f.Fatal(err)
	}
	f.Add(valid2.Bytes())
	f.Add(valid2.Bytes()[:valid2.Len()-1]) // truncated sketch counters
	// Hostile v2 mutants: sketch kind in a v1 stream, out-of-range shape
	// byte, lying HLL precision, non-canonical count-min spec.
	v1Sketch := append([]byte(nil), valid2.Bytes()...)
	v1Sketch[7] = 1
	f.Add(v1Sketch)
	for _, off := range []int{16, 60, valid2.Len() / 2, valid2.Len() - 9} {
		mut := append([]byte(nil), valid2.Bytes()...)
		mut[off] ^= 0xff
		f.Add(mut)
	}
	f.Add([]byte("ETLSTAT\x02\x00\x00\x00\x01\x00\x00\x00\x05"))

	f.Fuzz(func(t *testing.T, in []byte) {
		st, err := ReadStore(bytes.NewReader(in))
		if err != nil {
			if st != nil {
				t.Fatal("non-nil store with error")
			}
			return // rejected cleanly — the property under test
		}
		if st == nil {
			t.Fatal("nil store with nil error")
		}
		// The format is canonical: anything accepted must re-serialize to
		// the exact input bytes, modulo the version field — the writer
		// always emits the current version, so an accepted version-1 stream
		// round-trips to its byte-identical version-2 upgrade.
		var out bytes.Buffer
		if _, err := st.WriteTo(&out); err != nil {
			t.Fatalf("re-serialize accepted stream: %v", err)
		}
		want := append([]byte(nil), in...)
		want[7] = persistVersion // version field follows the 7-byte magic
		if !bytes.Equal(out.Bytes(), want) {
			t.Fatalf("accepted stream is not canonical:\n in: %x\nout: %x", in, out.Bytes())
		}
		// A second read must agree, through a wrapper that hides the size
		// (exercising the size-unknown path).
		back, err := ReadStore(io.LimitReader(bytes.NewReader(in), int64(len(in))+1))
		if err != nil {
			t.Fatalf("re-read accepted stream: %v", err)
		}
		if back.Len() != st.Len() {
			t.Fatalf("re-read lost values: %d vs %d", back.Len(), st.Len())
		}
	})
}

// FuzzReadStore's sibling invariant, checked directly: every rejection is
// typed.
func FuzzReadStoreTypedErrors(f *testing.F) {
	f.Add([]byte("ETLSTAT\x01\x00\x00\x00\x01\x00\x00\x00\x03"))
	f.Fuzz(func(t *testing.T, in []byte) {
		_, err := ReadStore(bytes.NewReader(in))
		if err == nil {
			return
		}
		var fe *FormatError
		if !errors.Is(err, ErrCorrupt) || !errors.As(err, &fe) {
			t.Fatalf("rejection is not a typed FormatError: %v", err)
		}
		if fe.Offset < 0 || fe.Offset > int64(len(in)) {
			t.Fatalf("FormatError offset %d outside stream of %d bytes", fe.Offset, len(in))
		}
	})
}
