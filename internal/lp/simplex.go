// Package lp provides a two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    cᵀx
//	subject to  aᵢᵀx {≤,=,≥} bᵢ   for each row i
//	            x ≥ 0
//
// It is the substrate under the 0–1 integer program of Section 5.2 of the
// paper (the optimal-statistics selection), solved by branch and bound in
// package ilp. The implementation is a dense tableau simplex with Bland's
// anti-cycling rule engaged after a degeneracy streak; it favors clarity
// and robustness over raw speed, which suits the small-to-medium models the
// selection step produces.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a row's comparison operator.
type Op int

// Row comparison operators.
const (
	LE Op = iota // aᵀx ≤ b
	GE           // aᵀx ≥ b
	EQ           // aᵀx = b
)

// Row is one linear constraint with sparse coefficients.
type Row struct {
	// Coef maps variable index to coefficient.
	Coef map[int]float64
	Op   Op
	RHS  float64
	// Name optionally labels the constraint for diagnostics.
	Name string
}

// Problem is a linear program over variables x₀..x_{n-1} ≥ 0.
type Problem struct {
	// NumVars is n, the number of structural variables.
	NumVars int
	// C is the objective vector (length NumVars); missing tail entries are
	// treated as zero.
	C []float64
	// Rows are the constraints.
	Rows []Row
}

// AddRow appends a constraint and returns its index.
func (p *Problem) AddRow(op Op, rhs float64, coef map[int]float64) int {
	p.Rows = append(p.Rows, Row{Coef: coef, Op: op, RHS: rhs})
	return len(p.Rows) - 1
}

// Status describes the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
	// IterLimit means the pivot limit was exceeded.
	IterLimit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status Status
	// X holds the structural variable values (length NumVars).
	X []float64
	// Obj is the objective value cᵀx.
	Obj float64
	// Iters is the number of simplex pivots performed.
	Iters int
}

const eps = 1e-9

// ErrBadProblem reports a malformed problem.
var ErrBadProblem = errors.New("lp: malformed problem")

// Solve runs the two-phase simplex method on the problem.
func Solve(p *Problem) (*Solution, error) {
	return SolveLimit(p, 0)
}

// SolveLimit is Solve with an explicit pivot limit (0 means automatic:
// 200·(rows+cols) pivots).
func SolveLimit(p *Problem, maxIter int) (*Solution, error) {
	if p.NumVars <= 0 {
		return nil, fmt.Errorf("%w: NumVars = %d", ErrBadProblem, p.NumVars)
	}
	for i := range p.C {
		if i >= p.NumVars {
			return nil, fmt.Errorf("%w: objective longer than NumVars", ErrBadProblem)
		}
	}
	for ri, r := range p.Rows {
		for j := range r.Coef {
			if j < 0 || j >= p.NumVars {
				return nil, fmt.Errorf("%w: row %d references variable %d", ErrBadProblem, ri, j)
			}
		}
	}
	t := newTableau(p)
	if maxIter <= 0 {
		maxIter = 200 * (len(p.Rows) + t.cols)
	}
	sol := t.solve(maxIter)
	return sol, nil
}

// tableau is the dense simplex tableau: m rows of n columns plus RHS, with
// a basis index per row. Columns are ordered: structural vars, slack vars,
// artificial vars.
type tableau struct {
	p          *Problem
	m, n       int // structural rows/vars
	cols       int // total columns (structural + slack + artificial)
	numSlack   int
	numArt     int
	a          [][]float64 // m × cols
	b          []float64   // RHS, length m
	basis      []int       // basic variable per row
	artStart   int
	slackStart int
}

func newTableau(p *Problem) *tableau {
	m := len(p.Rows)
	n := p.NumVars
	numSlack := 0
	numArt := 0
	for _, r := range p.Rows {
		rhs := r.RHS
		op := r.Op
		if rhs < 0 { // normalize to nonnegative RHS
			op = flip(op)
		}
		switch op {
		case LE:
			numSlack++ // slack only; slack is basic
		case GE:
			numSlack++ // surplus
			numArt++
		case EQ:
			numArt++
		}
	}
	t := &tableau{
		p: p, m: m, n: n,
		numSlack: numSlack, numArt: numArt,
		cols:       n + numSlack + numArt,
		slackStart: n,
		artStart:   n + numSlack,
	}
	t.a = make([][]float64, m)
	t.b = make([]float64, m)
	t.basis = make([]int, m)
	slack := t.slackStart
	art := t.artStart
	for i, r := range p.Rows {
		row := make([]float64, t.cols)
		sign := 1.0
		rhs := r.RHS
		op := r.Op
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			op = flip(op)
		}
		for j, c := range r.Coef {
			row[j] += sign * c
		}
		t.b[i] = rhs
		switch op {
		case LE:
			row[slack] = 1
			t.basis[i] = slack
			slack++
		case GE:
			row[slack] = -1
			slack++
			row[art] = 1
			t.basis[i] = art
			art++
		case EQ:
			row[art] = 1
			t.basis[i] = art
			art++
		}
		t.a[i] = row
	}
	return t
}

func flip(op Op) Op {
	switch op {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// solve runs phase 1 (drive artificials to zero) then phase 2 (optimize
// the real objective).
func (t *tableau) solve(maxIter int) *Solution {
	iters := 0
	if t.numArt > 0 {
		// Phase 1 objective: minimize the sum of artificial variables.
		obj := make([]float64, t.cols)
		for j := t.artStart; j < t.cols; j++ {
			obj[j] = 1
		}
		st, used := t.optimize(obj, maxIter, true)
		iters += used
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iters: iters}
		}
		// Infeasible if artificials cannot reach zero.
		if t.phase1Value() > 1e-7 {
			return &Solution{Status: Infeasible, Iters: iters}
		}
		t.evictArtificials()
	}
	obj := make([]float64, t.cols)
	copy(obj, t.p.C)
	st, used := t.optimize(obj, maxIter-iters, false)
	iters += used
	sol := &Solution{Status: st, Iters: iters}
	if st != Optimal {
		return sol
	}
	x := make([]float64, t.n)
	for i, bi := range t.basis {
		if bi < t.n {
			x[bi] = t.b[i]
		}
	}
	var objVal float64
	for j, c := range t.p.C {
		objVal += c * x[j]
	}
	sol.X = x
	sol.Obj = objVal
	return sol
}

func (t *tableau) phase1Value() float64 {
	var v float64
	for i, bi := range t.basis {
		if bi >= t.artStart {
			v += t.b[i]
		}
	}
	return v
}

// evictArtificials pivots basic artificial variables (at zero level) out of
// the basis where possible so phase 2 ignores them.
func (t *tableau) evictArtificials() {
	for i, bi := range t.basis {
		if bi < t.artStart {
			continue
		}
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
	}
}

// optimize runs simplex pivots for the given objective until optimality,
// unboundedness, or the iteration limit. In phase 1, artificial columns
// stay eligible; in phase 2 they are barred from entering.
func (t *tableau) optimize(obj []float64, maxIter int, phase1 bool) (Status, int) {
	// Reduced costs are computed directly: r_j = obj_j − Σ_i obj_{basis_i}·a_{ij}.
	iters := 0
	degenerate := 0
	for {
		if iters >= maxIter {
			return IterLimit, iters
		}
		limit := t.cols
		if !phase1 {
			limit = t.artStart
		}
		// Compute simplex multipliers implicitly via basic objective row.
		enter := -1
		var bestR float64
		useBland := degenerate > 2*t.m
		for j := 0; j < limit; j++ {
			if t.isBasic(j) {
				continue
			}
			r := obj[j]
			for i := 0; i < t.m; i++ {
				if cb := obj[t.basis[i]]; cb != 0 {
					r -= cb * t.a[i][j]
				}
			}
			if r < -eps {
				if useBland {
					enter = j
					break
				}
				if enter < 0 || r < bestR {
					enter = j
					bestR = r
				}
			}
		}
		if enter < 0 {
			return Optimal, iters
		}
		// Ratio test.
		leave := -1
		var bestRatio float64
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij > eps {
				ratio := t.b[i] / aij
				if leave < 0 || ratio < bestRatio-eps ||
					(math.Abs(ratio-bestRatio) <= eps && t.basis[i] < t.basis[leave]) {
					leave = i
					bestRatio = ratio
				}
			}
		}
		if leave < 0 {
			return Unbounded, iters
		}
		if bestRatio < eps {
			degenerate++
		} else {
			degenerate = 0
		}
		t.pivot(leave, enter)
		iters++
	}
}

func (t *tableau) isBasic(j int) bool {
	for _, bi := range t.basis {
		if bi == j {
			return true
		}
	}
	return false
}

// pivot makes column j basic in row i.
func (t *tableau) pivot(i, j int) {
	piv := t.a[i][j]
	inv := 1 / piv
	row := t.a[i]
	for k := range row {
		row[k] *= inv
	}
	t.b[i] *= inv
	row[j] = 1 // fight drift
	for r := 0; r < t.m; r++ {
		if r == i {
			continue
		}
		f := t.a[r][j]
		if f == 0 {
			continue
		}
		ar := t.a[r]
		for k := range ar {
			ar[k] -= f * row[k]
		}
		ar[j] = 0
		t.b[r] -= f * t.b[i]
	}
	t.basis[i] = j
}
