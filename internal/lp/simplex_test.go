package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSolveBasicLE(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6  → min -(x+y); optimum at (8/5, 6/5).
	p := &Problem{NumVars: 2, C: []float64{-1, -1}}
	p.AddRow(LE, 4, map[int]float64{0: 1, 1: 2})
	p.AddRow(LE, 6, map[int]float64{0: 3, 1: 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Obj, -(8.0/5 + 6.0/5)) {
		t.Fatalf("obj = %v, want %v", s.Obj, -(8.0/5 + 6.0/5))
	}
	if !approx(s.X[0], 1.6) || !approx(s.X[1], 1.2) {
		t.Fatalf("x = %v", s.X)
	}
}

func TestSolveGEandEQ(t *testing.T) {
	// min 2x+3y s.t. x+y >= 10, x = 4 → y=6, obj=26.
	p := &Problem{NumVars: 2, C: []float64{2, 3}}
	p.AddRow(GE, 10, map[int]float64{0: 1, 1: 1})
	p.AddRow(EQ, 4, map[int]float64{0: 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Optimal || !approx(s.Obj, 26) {
		t.Fatalf("status=%v obj=%v, want optimal 26", s.Status, s.Obj)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &Problem{NumVars: 1, C: []float64{1}}
	p.AddRow(GE, 5, map[int]float64{0: 1})
	p.AddRow(LE, 3, map[int]float64{0: 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min -x s.t. x >= 1: unbounded below.
	p := &Problem{NumVars: 1, C: []float64{-1}}
	p.AddRow(GE, 1, map[int]float64{0: 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// -x <= -3  ⇔  x >= 3; min x → 3.
	p := &Problem{NumVars: 1, C: []float64{1}}
	p.AddRow(LE, -3, map[int]float64{0: -1})
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Optimal || !approx(s.Obj, 3) {
		t.Fatalf("status=%v obj=%v, want optimal 3", s.Status, s.Obj)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// A classically degenerate LP; Bland's rule must avoid cycling.
	p := &Problem{NumVars: 4, C: []float64{-0.75, 150, -0.02, 6}}
	p.AddRow(LE, 0, map[int]float64{0: 0.25, 1: -60, 2: -0.04, 3: 9})
	p.AddRow(LE, 0, map[int]float64{0: 0.5, 1: -90, 2: -0.02, 3: 3})
	p.AddRow(LE, 1, map[int]float64{2: 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Optimal || !approx(s.Obj, -0.05) {
		t.Fatalf("status=%v obj=%v, want optimal -0.05", s.Status, s.Obj)
	}
}

func TestSolveCoveringRelaxation(t *testing.T) {
	// Fractional set-cover relaxation: elements {1,2,3}, sets A={1,2},
	// B={2,3}, C={1,3}, all cost 1. LP optimum is 1.5 (each set at 0.5).
	p := &Problem{NumVars: 3, C: []float64{1, 1, 1}}
	p.AddRow(GE, 1, map[int]float64{0: 1, 2: 1})
	p.AddRow(GE, 1, map[int]float64{0: 1, 1: 1})
	p.AddRow(GE, 1, map[int]float64{1: 1, 2: 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Optimal || !approx(s.Obj, 1.5) {
		t.Fatalf("status=%v obj=%v, want optimal 1.5", s.Status, s.Obj)
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: 0}); err == nil {
		t.Fatal("empty problem: want error")
	}
	p := &Problem{NumVars: 1, C: []float64{1}}
	p.AddRow(LE, 1, map[int]float64{5: 1})
	if _, err := Solve(p); err == nil {
		t.Fatal("out-of-range variable: want error")
	}
}

func TestSolveEqualityOnly(t *testing.T) {
	// x + y = 5, x - y = 1 → x=3, y=2; min x+2y = 7.
	p := &Problem{NumVars: 2, C: []float64{1, 2}}
	p.AddRow(EQ, 5, map[int]float64{0: 1, 1: 1})
	p.AddRow(EQ, 1, map[int]float64{0: 1, 1: -1})
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Optimal || !approx(s.Obj, 7) || !approx(s.X[0], 3) || !approx(s.X[1], 2) {
		t.Fatalf("got %v %v", s.Status, s.X)
	}
}

// TestSolveRandomVsBruteForce cross-checks the simplex against brute-force
// vertex enumeration on small random feasible-bounded LPs.
func TestSolveRandomVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		// Two vars, box 0<=x,y<=U plus two random <= rows with positive
		// coefficients (keeps the region bounded and feasible at origin).
		p := &Problem{NumVars: 2, C: []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}}
		u := 1 + rng.Float64()*5
		p.AddRow(LE, u, map[int]float64{0: 1})
		p.AddRow(LE, u, map[int]float64{1: 1})
		rows := [][3]float64{}
		for k := 0; k < 2; k++ {
			a, b := rng.Float64()+0.1, rng.Float64()+0.1
			c := rng.Float64()*6 + 1
			p.AddRow(LE, c, map[int]float64{0: a, 1: b})
			rows = append(rows, [3]float64{a, b, c})
		}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			t.Fatalf("trial %d: %v %v", trial, err, s)
		}
		// Brute force: sample a fine grid.
		best := math.Inf(1)
		const N = 400
		for i := 0; i <= N; i++ {
			for j := 0; j <= N; j++ {
				x := u * float64(i) / N
				y := u * float64(j) / N
				ok := true
				for _, r := range rows {
					if r[0]*x+r[1]*y > r[2]+1e-9 {
						ok = false
						break
					}
				}
				if ok {
					v := p.C[0]*x + p.C[1]*y
					if v < best {
						best = v
					}
				}
			}
		}
		if s.Obj > best+1e-6 {
			t.Fatalf("trial %d: simplex obj %v worse than grid %v", trial, s.Obj, best)
		}
		if s.Obj < best-0.1 { // grid resolution tolerance
			t.Fatalf("trial %d: simplex obj %v implausibly below grid %v", trial, s.Obj, best)
		}
	}
}

func TestSolveIterationLimit(t *testing.T) {
	// A 20-var LP with a 1-pivot limit must report IterLimit.
	p := &Problem{NumVars: 20, C: make([]float64, 20)}
	for j := 0; j < 20; j++ {
		p.C[j] = -1
		p.AddRow(LE, 1, map[int]float64{j: 1})
	}
	s, err := SolveLimit(p, 1)
	if err != nil {
		t.Fatalf("SolveLimit: %v", err)
	}
	if s.Status != IterLimit {
		t.Fatalf("status = %v, want iteration-limit", s.Status)
	}
}

func TestStatusStrings(t *testing.T) {
	for st, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration-limit",
	} {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(st), st.String(), want)
		}
	}
}
