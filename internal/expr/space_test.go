package expr

import (
	"testing"
	"testing/quick"

	"github.com/essential-stats/etlopt/internal/workflow"
)

// chainBlock builds a block whose join graph is a path R0-R1-...-R(n-1),
// with the initial plan as the left-deep chain.
func chainBlock(t *testing.T, n int) *workflow.Block {
	t.Helper()
	cat := &workflow.Catalog{}
	b := workflow.NewBuilder("chain")
	var prev workflow.NodeID
	var prevRel string
	for i := 0; i < n; i++ {
		rel := relName(i)
		cat.Relations = append(cat.Relations, &workflow.Relation{
			Name: rel, Card: 100,
			Columns: []workflow.Column{{Name: "k", Domain: 10}, {Name: "j", Domain: 10}},
		})
		src := b.Source(rel)
		if i == 0 {
			prev, prevRel = src, rel
			continue
		}
		prev = b.Join(prev, src, workflow.Attr{Rel: prevRel, Col: "j"}, workflow.Attr{Rel: rel, Col: "k"})
		prevRel = rel
	}
	b.Sink(prev, "dw")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(an.Blocks) != 1 {
		t.Fatalf("chain: got %d blocks, want 1", len(an.Blocks))
	}
	return an.Blocks[0]
}

// starBlock builds a star join: center R0 joined to spokes R1..R(n-1), each
// on its own attribute of the center.
func starBlock(t *testing.T, n int) *workflow.Block {
	t.Helper()
	cat := &workflow.Catalog{}
	center := &workflow.Relation{Name: "R0", Card: 1000}
	for i := 1; i < n; i++ {
		center.Columns = append(center.Columns, workflow.Column{Name: fk(i), Domain: 10})
	}
	cat.Relations = append(cat.Relations, center)
	b := workflow.NewBuilder("star")
	prev := b.Source("R0")
	for i := 1; i < n; i++ {
		rel := relName(i)
		cat.Relations = append(cat.Relations, &workflow.Relation{
			Name: rel, Card: 10,
			Columns: []workflow.Column{{Name: "k", Domain: 10}},
		})
		src := b.Source(rel)
		prev = b.Join(prev, src, workflow.Attr{Rel: "R0", Col: fk(i)}, workflow.Attr{Rel: rel, Col: "k"})
	}
	b.Sink(prev, "dw")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return an.Blocks[0]
}

func relName(i int) string { return "R" + string(rune('0'+i)) }
func fk(i int) string      { return "f" + string(rune('0'+i)) }

func TestSetOps(t *testing.T) {
	s := NewSet(0, 2, 5)
	if !s.Has(2) || s.Has(1) {
		t.Fatal("Has broken")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Lowest() != 0 {
		t.Fatalf("Lowest = %d, want 0", s.Lowest())
	}
	if got := s.Add(1); got.Len() != 4 {
		t.Fatal("Add broken")
	}
	if got := s.Without(NewSet(0)); got != NewSet(2, 5) {
		t.Fatal("Without broken")
	}
	if !s.Contains(NewSet(0, 5)) || s.Contains(NewSet(0, 1)) {
		t.Fatal("Contains broken")
	}
	if !s.Intersects(NewSet(5)) || s.Intersects(NewSet(1, 3)) {
		t.Fatal("Intersects broken")
	}
	members := s.Members()
	want := []int{0, 2, 5}
	for i := range want {
		if members[i] != want[i] {
			t.Fatalf("Members = %v, want %v", members, want)
		}
	}
	if Set(0).Lowest() != -1 {
		t.Fatal("Lowest of empty should be -1")
	}
}

func TestSubsetsVisitsEachPartitionOnce(t *testing.T) {
	s := NewSet(0, 1, 2, 3)
	seen := make(map[Set]bool)
	s.Subsets(func(sub Set) {
		if !sub.Has(0) {
			t.Errorf("subset %b misses lowest member", sub)
		}
		if sub == s || sub.Empty() {
			t.Errorf("subset %b not proper", sub)
		}
		if seen[sub] {
			t.Errorf("subset %b visited twice", sub)
		}
		seen[sub] = true
	})
	// Proper nonempty subsets containing bit 0: 2^3 - 1 = 7.
	if len(seen) != 7 {
		t.Fatalf("visited %d subsets, want 7", len(seen))
	}
}

func TestSubsetsPropertyCount(t *testing.T) {
	f := func(raw uint16) bool {
		s := Set(raw)
		if s.Len() < 2 {
			return true
		}
		count := 0
		s.Subsets(func(Set) { count++ })
		want := 1<<(s.Len()-1) - 1
		return count == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerateChain3(t *testing.T) {
	// The retail example of the paper: SEs are O,P,C,OP,OC,OPC (PC is a
	// cross product and never generated).
	blk := chainBlock(t, 3)
	sp, err := Enumerate(blk)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if len(sp.SEs) != 6 {
		t.Fatalf("got %d SEs, want 6: %v", len(sp.SEs), sp.SEs)
	}
	full := sp.Full()
	if full.Len() != 3 {
		t.Fatalf("full = %v", full)
	}
	// OPC has exactly two plans: OP⋈C and OC⋈P (chain R0-R1, R1-R2: splits
	// {R0,R1}+{R2} and {R0}+{R1,R2}; {R0,R2} is disconnected).
	if got := len(sp.Plans[full]); got != 2 {
		t.Fatalf("full SE has %d plans, want 2: %+v", got, sp.Plans[full])
	}
	for _, p := range sp.Plans[full] {
		if !p.Left.Has(0) {
			t.Errorf("plan left %v must contain lowest input", p.Left)
		}
		if p.Left.Union(p.Right) != full || p.Left.Intersects(p.Right) {
			t.Errorf("plan %v/%v is not a partition", p.Left, p.Right)
		}
	}
}

func TestEnumerateChainSECounts(t *testing.T) {
	// A path of n relations has n(n+1)/2 connected subsets (intervals).
	for n := 2; n <= 6; n++ {
		blk := chainBlock(t, n)
		sp, err := Enumerate(blk)
		if err != nil {
			t.Fatalf("Enumerate(%d): %v", n, err)
		}
		want := n * (n + 1) / 2
		if len(sp.SEs) != want {
			t.Errorf("chain %d: got %d SEs, want %d", n, len(sp.SEs), want)
		}
	}
}

func TestEnumerateStarSECounts(t *testing.T) {
	// A star with center + k spokes has 2^k + k connected subsets.
	for n := 3; n <= 6; n++ {
		blk := starBlock(t, n)
		sp, err := Enumerate(blk)
		if err != nil {
			t.Fatalf("Enumerate(%d): %v", n, err)
		}
		k := n - 1
		want := 1<<k + k
		if len(sp.SEs) != want {
			t.Errorf("star %d: got %d SEs, want %d", n, len(sp.SEs), want)
		}
	}
}

func TestEnumerateInitialPlanObservable(t *testing.T) {
	blk := chainBlock(t, 4)
	sp, err := Enumerate(blk)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	// The left-deep initial plan makes R0, R1, R2, R3, R0R1, R0R1R2 and
	// the full SE observable: 7 SEs.
	if len(sp.Initial) != 7 {
		t.Fatalf("initial SEs = %d, want 7 (%v)", len(sp.Initial), sp.Initial)
	}
	if !sp.Initial[NewSet(0, 1)] || !sp.Initial[NewSet(0, 1, 2)] {
		t.Error("left-deep prefixes should be observable")
	}
	if sp.Initial[NewSet(1, 2)] {
		t.Error("R1⋈R2 is not produced by the initial plan")
	}
	// InitialTree records the composition of each internal SE.
	p, ok := sp.InitialTree[sp.Full()]
	if !ok {
		t.Fatal("initial tree missing full SE")
	}
	if p.Left != NewSet(0, 1, 2) || p.Right != NewSet(3) {
		t.Errorf("initial composition of full = %v ⋈ %v", p.Left, p.Right)
	}
}

func TestAttrClassesSharedKey(t *testing.T) {
	// T1 joins both T2 and T3 on the same attribute T1.a: all three join
	// attrs form one equivalence class (the J12 = J13 case of Figure 7).
	cat := &workflow.Catalog{Relations: []*workflow.Relation{
		{Name: "T1", Card: 10, Columns: []workflow.Column{{Name: "a", Domain: 5}}},
		{Name: "T2", Card: 10, Columns: []workflow.Column{{Name: "a", Domain: 5}}},
		{Name: "T3", Card: 10, Columns: []workflow.Column{{Name: "a", Domain: 5}}},
	}}
	b := workflow.NewBuilder("shared")
	t1 := b.Source("T1")
	t2 := b.Source("T2")
	t3 := b.Source("T3")
	j1 := b.Join(t1, t2, workflow.Attr{Rel: "T1", Col: "a"}, workflow.Attr{Rel: "T2", Col: "a"})
	j2 := b.Join(j1, t3, workflow.Attr{Rel: "T1", Col: "a"}, workflow.Attr{Rel: "T3", Col: "a"})
	b.Sink(j2, "dw")
	an, err := workflow.Analyze(b.Graph(), cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	sp, err := Enumerate(an.Blocks[0])
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	rep := sp.ClassOf(workflow.Attr{Rel: "T3", Col: "a"})
	if rep != (workflow.Attr{Rel: "T1", Col: "a"}) {
		t.Fatalf("ClassOf(T3.a) = %v, want T1.a", rep)
	}
	if got := len(sp.ClassMembers(workflow.Attr{Rel: "T2", Col: "a"})); got != 3 {
		t.Fatalf("class size = %d, want 3", got)
	}
	// With the shared key, T2⋈T3 IS connected through the equivalence
	// class in principle, but our join graph has no direct T2-T3 edge, so
	// it remains a non-SE; the full SE must still have 2 plans.
	if got := len(sp.Plans[sp.Full()]); got != 2 {
		t.Fatalf("full has %d plans, want 2", got)
	}
	// MemberIn finds a class member inside any SE touching the class.
	if m, ok := sp.MemberIn(NewSet(2), workflow.Attr{Rel: "T1", Col: "a"}); !ok || m != (workflow.Attr{Rel: "T3", Col: "a"}) {
		t.Fatalf("MemberIn({T3}, class a) = %v, %v", m, ok)
	}
	if _, ok := sp.MemberIn(NewSet(1), workflow.Attr{Rel: "T1", Col: "x"}); ok {
		t.Fatal("MemberIn should fail for attrs outside the SE")
	}
}

func TestEnumerateDisconnected(t *testing.T) {
	// Two inputs with no join edge: Analyze will build a block only if the
	// graph joins them, so fabricate a block directly.
	blk := &workflow.Block{
		Inputs: []workflow.BlockInput{{Name: "A"}, {Name: "B"}},
	}
	if _, err := Enumerate(blk); err == nil {
		t.Fatal("Enumerate(disconnected): want error")
	}
}

func TestEnumerateSingleInput(t *testing.T) {
	blk := &workflow.Block{Inputs: []workflow.BlockInput{{Name: "A"}}}
	sp, err := Enumerate(blk)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if len(sp.SEs) != 1 || !sp.Initial[NewSet(0)] {
		t.Fatalf("single-input space: %+v", sp)
	}
}

func TestConnectedProperty(t *testing.T) {
	// Every enumerated SE is connected and every subset not enumerated of
	// the full set is either disconnected or empty.
	blk := chainBlock(t, 5)
	sp, err := Enumerate(blk)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	enumerated := make(map[Set]bool, len(sp.SEs))
	for _, se := range sp.SEs {
		enumerated[se] = true
		if !sp.Connected(se) {
			t.Errorf("SE %v not connected", se)
		}
	}
	for v := Set(1); v <= sp.Full(); v++ {
		if sp.Full().Contains(v) && !enumerated[v] && sp.Connected(v) {
			t.Errorf("connected subset %v missing from SEs", v)
		}
	}
}

func TestPlanCountsLeftDeepInvariant(t *testing.T) {
	// For every SE of size ≥ 2 there is at least one plan, and every plan
	// joins two disjoint connected halves via a real edge.
	blk := starBlock(t, 6)
	sp, err := Enumerate(blk)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	for _, se := range sp.SEs {
		if se.Len() < 2 {
			continue
		}
		plans := sp.Plans[se]
		if len(plans) == 0 {
			t.Errorf("SE %v has no plans", se)
		}
		for _, p := range plans {
			if !sp.Connected(p.Left) || !sp.Connected(p.Right) {
				t.Errorf("plan %v/%v has disconnected side", p.Left, p.Right)
			}
			e := sp.Block.Joins[p.Edge]
			l, r := NewSet(e.LeftInput), NewSet(e.RightInput)
			sides := p.Left.Contains(l) && p.Right.Contains(r) ||
				p.Left.Contains(r) && p.Right.Contains(l)
			if !sides {
				t.Errorf("plan %v/%v edge %d does not link the halves", p.Left, p.Right, p.Edge)
			}
		}
	}
}

func TestLabel(t *testing.T) {
	blk := chainBlock(t, 3)
	sp, _ := Enumerate(blk)
	if got := sp.Full().Label(blk); got != "R0⋈R1⋈R2" {
		t.Fatalf("Label = %q", got)
	}
	if got := Set(0).Label(blk); got != "∅" {
		t.Fatalf("Label(empty) = %q", got)
	}
}

func TestJoinAttrsOf(t *testing.T) {
	blk := chainBlock(t, 3)
	sp, _ := Enumerate(blk)
	for _, p := range sp.Plans[sp.Full()] {
		l, r := sp.JoinAttrsOf(p)
		li := blk.InputIndexByAttr(l)
		ri := blk.InputIndexByAttr(r)
		if li < 0 || !p.Left.Has(li) {
			t.Errorf("left attr %v not owned by left side %v", l, p.Left)
		}
		if ri < 0 || !p.Right.Has(ri) {
			t.Errorf("right attr %v not owned by right side %v", r, p.Right)
		}
	}
}
