package expr

import (
	"fmt"
	"sort"

	"github.com/essential-stats/etlopt/internal/workflow"
)

// Plan is one way of composing an SE from two smaller SEs (Definition 1 of
// the paper): the join of Left and Right using join edge Edge of the block.
// Left always contains the lowest input index of the SE, so each unordered
// composition appears exactly once.
type Plan struct {
	Left, Right Set
	// Edge indexes Block.Joins: the predicate connecting Left and Right.
	Edge int
}

// Space is the plan space of one block: every SE any plan can produce,
// together with the plans the optimizer considers for it, the observable
// SEs of the initial (user-designed) plan, and the attribute equivalence
// classes induced by the join predicates.
type Space struct {
	Block *workflow.Block
	// SEs lists every sub-expression: all connected subsets of the join
	// graph (cross products are never generated), sorted by size then
	// value. Single-input SEs (the base inputs) come first.
	SEs []Set
	// Plans maps each SE of size ≥ 2 to its compositions.
	Plans map[Set][]Plan
	// Initial maps the SEs produced by the initial plan (those are the
	// observable intermediate results of the flow, plus the inputs and the
	// final output).
	Initial map[Set]bool
	// InitialTree is the initial plan rendered over SEs: for each
	// non-leaf SE of the initial plan, the composition used.
	InitialTree map[Set]Plan
	// classRep maps each join attribute to the canonical representative of
	// its equivalence class (attributes equated by join predicates).
	classRep map[workflow.Attr]workflow.Attr
	// full is the SE containing every input.
	full Set
}

// Full returns the SE covering all block inputs.
func (sp *Space) Full() Set { return sp.full }

// ClassOf returns the canonical representative of an attribute's
// join-equivalence class. Attributes not used in any join map to
// themselves.
func (sp *Space) ClassOf(a workflow.Attr) workflow.Attr {
	if rep, ok := sp.classRep[a]; ok {
		return rep
	}
	return a
}

// ClassMembers returns every attribute equated with a (including a itself),
// sorted canonically.
func (sp *Space) ClassMembers(a workflow.Attr) []workflow.Attr {
	rep := sp.ClassOf(a)
	var out []workflow.Attr
	for attr, r := range sp.classRep {
		if r == rep {
			out = append(out, attr)
		}
	}
	if len(out) == 0 {
		out = append(out, a)
	}
	return workflow.SortAttrs(out)
}

// MemberIn returns an attribute from a's equivalence class that exists in
// the schema of SE se, or false when the class does not touch se.
func (sp *Space) MemberIn(se Set, a workflow.Attr) (workflow.Attr, bool) {
	for _, m := range sp.ClassMembers(a) {
		if idx := sp.Block.InputIndexByAttr(m); idx >= 0 && se.Has(idx) {
			return m, true
		}
	}
	return workflow.Attr{}, false
}

// JoinAttrsOf returns, for plan p, the join attribute as owned by the left
// and right side respectively.
func (sp *Space) JoinAttrsOf(p Plan) (left, right workflow.Attr) {
	e := sp.Block.Joins[p.Edge]
	if p.Left.Has(e.LeftInput) {
		return e.LeftAttr, e.RightAttr
	}
	return e.RightAttr, e.LeftAttr
}

// Connected reports whether the subset s is connected in the block's join
// graph (an SE must be connected; a disconnected subset would be a cross
// product).
func (sp *Space) Connected(s Set) bool { return connected(sp.Block, s) }

func connected(b *workflow.Block, s Set) bool {
	if s.Empty() {
		return false
	}
	if s.Len() == 1 {
		return true
	}
	start := Set(1) << uint(s.Lowest())
	frontier := start
	reached := start
	for !frontier.Empty() {
		var next Set
		for _, e := range b.Joins {
			l, r := Set(1)<<uint(e.LeftInput), Set(1)<<uint(e.RightInput)
			if !s.Contains(l) || !s.Contains(r) {
				continue
			}
			if reached.Intersects(l) && !reached.Intersects(r) {
				next |= r
			}
			if reached.Intersects(r) && !reached.Intersects(l) {
				next |= l
			}
		}
		reached |= next
		frontier = next
	}
	return reached == s
}

// Enumerate builds the plan space of a block. It returns an error when the
// block has more than 64 inputs or a disconnected join graph (which would
// force cross products the optimizer never considers).
func Enumerate(b *workflow.Block) (*Space, error) {
	n := b.NumInputs()
	if n > 64 {
		return nil, fmt.Errorf("block has %d inputs; the bitset representation supports 64", n)
	}
	sp := &Space{
		Block:       b,
		Plans:       make(map[Set][]Plan),
		Initial:     make(map[Set]bool),
		InitialTree: make(map[Set]Plan),
		classRep:    attrClasses(b),
	}
	for i := 0; i < n; i++ {
		sp.full = sp.full.Add(i)
	}
	if n > 1 && !connected(b, sp.full) {
		return nil, fmt.Errorf("block join graph is disconnected; cross products are not supported")
	}

	// Enumerate connected subsets as SEs, smallest first.
	var all []Set
	for v := Set(1); v <= sp.full; v++ {
		if sp.full.Contains(v) && connected(b, v) {
			all = append(all, v)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Len() != all[j].Len() {
			return all[i].Len() < all[j].Len()
		}
		return all[i] < all[j]
	})
	sp.SEs = all

	// Build plans: each split into two connected halves linked by an edge.
	for _, se := range all {
		if se.Len() < 2 {
			continue
		}
		se.Subsets(func(left Set) {
			right := se.Without(left)
			if !connected(b, left) || !connected(b, right) {
				return
			}
			edge := joinEdgeBetween(b, left, right)
			if edge < 0 {
				return
			}
			sp.Plans[se] = append(sp.Plans[se], Plan{Left: left, Right: right, Edge: edge})
		})
	}

	// Mark observable SEs from the initial plan.
	if b.Initial != nil {
		markInitial(sp, b.Initial)
	} else if n == 1 {
		sp.Initial[NewSet(0)] = true
	}
	return sp, nil
}

// joinEdgeBetween returns the index of a join edge connecting the two
// disjoint sets, or -1. When several predicates connect them (a cyclic join
// graph), the lowest-indexed edge is returned as the representative; the
// estimation layer applies the remaining predicates as residual filters.
func joinEdgeBetween(b *workflow.Block, left, right Set) int {
	for j, e := range b.Joins {
		l, r := e.LeftInput, e.RightInput
		if left.Has(l) && right.Has(r) || left.Has(r) && right.Has(l) {
			return j
		}
	}
	return -1
}

// markInitial walks the initial join tree recording each produced SE and
// the composition that produced it.
func markInitial(sp *Space, t *workflow.JoinTree) Set {
	if t.IsLeaf() {
		s := NewSet(t.Leaf)
		sp.Initial[s] = true
		return s
	}
	l := markInitial(sp, t.Left)
	r := markInitial(sp, t.Right)
	s := l.Union(r)
	sp.Initial[s] = true
	left, right := l, r
	if !left.Has(s.Lowest()) {
		left, right = right, left
	}
	sp.InitialTree[s] = Plan{Left: left, Right: right, Edge: t.Join}
	return s
}

// attrClasses computes the join-attribute equivalence classes with a small
// union-find over the block's join predicates.
func attrClasses(b *workflow.Block) map[workflow.Attr]workflow.Attr {
	parent := make(map[workflow.Attr]workflow.Attr)
	var find func(a workflow.Attr) workflow.Attr
	find = func(a workflow.Attr) workflow.Attr {
		p, ok := parent[a]
		if !ok {
			parent[a] = a
			return a
		}
		if p == a {
			return a
		}
		root := find(p)
		parent[a] = root
		return root
	}
	union := func(a, b workflow.Attr) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Keep the lexicographically smaller attribute as representative
		// so class names are deterministic.
		if rb.Less(ra) {
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}
	for _, e := range b.Joins {
		union(e.LeftAttr, e.RightAttr)
	}
	out := make(map[workflow.Attr]workflow.Attr, len(parent))
	for a := range parent {
		out[a] = find(a)
	}
	return out
}
