// Package expr enumerates the sub-expressions (SEs) and the plan space of
// an optimizable block, per Section 3.2.2 and Definition 1 of Halasipuram
// et al. (EDBT 2014). An SE is identified by the set of block inputs it
// joins; the plan space records, for each SE, every way the optimizer can
// compose it from two smaller SEs.
package expr

import (
	"fmt"
	"math/bits"
	"strings"

	"github.com/essential-stats/etlopt/internal/workflow"
)

// Set is a bitset over the inputs of one block; bit i set means
// Block.Inputs[i] is part of the sub-expression. Blocks are limited to 64
// inputs, far beyond any practical ETL join.
type Set uint64

// NewSet returns a set containing the given input indexes.
func NewSet(idx ...int) Set {
	var s Set
	for _, i := range idx {
		s |= 1 << uint(i)
	}
	return s
}

// Has reports whether input i is in the set.
func (s Set) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// Add returns s with input i added.
func (s Set) Add(i int) Set { return s | 1<<uint(i) }

// Union returns the union of the two sets.
func (s Set) Union(o Set) Set { return s | o }

// Without returns s minus the members of o.
func (s Set) Without(o Set) Set { return s &^ o }

// Contains reports whether every member of o is in s.
func (s Set) Contains(o Set) bool { return s&o == o }

// Intersects reports whether the sets share a member.
func (s Set) Intersects(o Set) bool { return s&o != 0 }

// Len returns the number of members.
func (s Set) Len() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set has no members.
func (s Set) Empty() bool { return s == 0 }

// Lowest returns the smallest member index, or -1 for the empty set.
func (s Set) Lowest() int {
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(s))
}

// Members returns the member indexes in increasing order.
func (s Set) Members() []int {
	out := make([]int, 0, s.Len())
	for v := s; v != 0; {
		i := bits.TrailingZeros64(uint64(v))
		out = append(out, i)
		v &^= 1 << uint(i)
	}
	return out
}

// Subsets calls f for every non-empty proper subset of s that contains the
// lowest member of s (so each unordered 2-partition of s is visited exactly
// once, as (subset, complement)). Enumeration order is deterministic.
func (s Set) Subsets(f func(sub Set)) {
	if s.Len() < 2 {
		return
	}
	low := Set(1) << uint(s.Lowest())
	rest := s &^ low
	// Iterate subsets of rest via the standard sub = (sub-1) & rest trick,
	// adding the fixed lowest bit to each.
	for sub := rest; ; sub = (sub - 1) & rest {
		cand := sub | low
		if cand != s { // proper subset
			f(cand)
		}
		if sub == 0 {
			break
		}
	}
}

// Label renders the set using the block's input names, e.g.
// "Orders⋈Customer". The empty set renders as "∅".
func (s Set) Label(b *workflow.Block) string {
	if s == 0 {
		return "∅"
	}
	names := make([]string, 0, s.Len())
	for _, i := range s.Members() {
		if b != nil && i < len(b.Inputs) {
			names = append(names, b.Inputs[i].Name)
		} else {
			names = append(names, fmt.Sprintf("R%d", i))
		}
	}
	return strings.Join(names, "⋈")
}
